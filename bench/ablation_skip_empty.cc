// Ablation (footnote 5): skipping expressions for empty deltas.
//
// The common nightly reality: only the fact table changed.  The paper
// notes C1/C2 "can be extended to avoid using expressions that propagate
// and install δVi when δVi is empty"; this bench quantifies that extension
// on the TPC-D VDAG when only LINEITEM receives a batch:
//   * full MinWork strategy (propagates every source's (empty) delta);
//   * term-level skipping (empty-delta join terms dropped);
//   * strategy-level simplification (whole expressions dropped).
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/simplify.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Ablation (footnote 5): empty-delta skipping",
      "TPC-D SF=" + std::to_string(env.scale_factor) +
          "; only LINEITEM changes (10% deletions)");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  const Table& lineitem = *warehouse.catalog().MustGetTable(tpcd::kLineitem);
  warehouse.SetBaseDelta(tpcd::kLineitem,
                         tpcd::MakeDeletionDelta(lineitem, 0.10, env.seed));

  Strategy strategy = MinWork(warehouse.vdag(), warehouse.EstimatedSizes())
                          .strategy;

  auto run = [&](const char* label, ExecutorOptions options_in) {
    Warehouse clone = warehouse.Clone();
    Executor executor(&clone, options_in);
    // warmup on another clone
    {
      Warehouse w2 = warehouse.Clone();
      Executor e2(&w2, options_in);
      e2.Execute(strategy);
    }
    ExecutionReport report = executor.Execute(strategy);
    std::printf("  %-28s %8.3fs  work=%10lld  expressions=%zu\n", label,
                report.total_seconds,
                static_cast<long long>(report.total_linear_work),
                report.per_expression.size());
    return report;
  };

  ExecutorOptions plain;
  ExecutorOptions term_skip;
  term_skip.skip_empty_delta_terms = true;
  ExecutorOptions simplify;
  simplify.simplify_empty_deltas = true;
  ExecutorOptions both;
  both.skip_empty_delta_terms = true;
  both.simplify_empty_deltas = true;

  ExecutionReport full = run("full strategy", plain);
  ExecutionReport terms = run("+ term-level skipping", term_skip);
  ExecutionReport simplified = run("+ strategy simplification", simplify);
  ExecutionReport combined = run("+ both", both);

  std::printf("\n  work saved by simplification: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(combined.total_linear_work) /
                                 static_cast<double>(full.total_linear_work)));
  std::printf("  (skipped: Comps over the five unchanged base views and "
              "their Inst expressions)\n");
  return 0;
}
