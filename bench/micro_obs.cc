// Micro-benchmarks for the observability layer (src/obs), fault-point
// style (see micro_fault.cc): the acceptance criterion is that DISARMED
// instrumentation — the state every paper-fidelity bench runs in — costs
// one relaxed atomic load per WUW_METRIC_ADD / TraceSpan and stays within
// noise (<1%) of the pre-obs engine on the micro_engine pipelines.  Armed
// variants are measured alongside so the price of turning WUW_METRICS /
// WUW_TRACE on is visible instead of folklore.
#include <benchmark/benchmark.h>

#include "core/strategy_space.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A Q3 warehouse with a pending deletion batch, cloned per measured run.
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    for (const std::string& base : wh->vdag().BaseViews()) {
      wh->SetBaseDelta(base,
                       tpcd::MakeDeletionDelta(
                           *wh->catalog().MustGetTable(base), 0.05, 7));
    }
    return wh;
  }();
  return *w;
}

// The disarmed metric fast path: one relaxed load and a predicted branch.
// This is what every instrumented engine site pays when WUW_METRICS is
// unset — it must stay indistinguishable from a no-op.
void BM_ObsMetricAddDisarmed(benchmark::State& state) {
  obs::DisarmMetrics();
  for (auto _ : state) {
    WUW_METRIC_ADD("bench.micro.counter", obs::MetricClass::kWork, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsMetricAddDisarmed);

// Armed: one relaxed fetch_add on an interned counter (the registry lock
// is only taken on the first armed pass per call site).
void BM_ObsMetricAddArmed(benchmark::State& state) {
  obs::ArmMetrics();
  for (auto _ : state) {
    WUW_METRIC_ADD("bench.micro.counter", obs::MetricClass::kWork, 1);
  }
  state.SetItemsProcessed(state.iterations());
  obs::DisarmMetrics();
  obs::ResetMetrics();
}
BENCHMARK(BM_ObsMetricAddArmed);

// Disarmed span construction with a lazy name: the relaxed load short-
// circuits before the name callable is ever invoked, so no string is
// built and nothing is buffered.
void BM_ObsSpanDisarmed(benchmark::State& state) {
  obs::DisarmTracing();
  for (auto _ : state) {
    obs::TraceSpan span("bench", [] { return std::string("never built"); });
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisarmed);

// Armed: two steady_clock reads plus a mutex-guarded append.  Spans mark
// coarse scopes (strategies, expressions, terms), so this price is paid
// thousands of times per update window, not per row.  Past the buffer cap
// completions count as dropped, which only under-states the armed cost.
void BM_ObsSpanArmed(benchmark::State& state) {
  (void)obs::DrainTrace();
  obs::ArmTracing();
  for (auto _ : state) {
    obs::TraceSpan span("bench", "armed span");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
  obs::DisarmTracing();
  (void)obs::DrainTrace();
}
BENCHMARK(BM_ObsSpanArmed);

void RunStrategy() {
  Warehouse clone = BatchedWarehouse().Clone();
  Executor executor(&clone);
  executor.Execute(MakeDualStageVdagStrategy(clone.vdag()));
}

// Full dual-stage update window with everything disarmed — the default
// configuration of every experiment bench.  Compare against
// BM_ExecuteJournalOff in micro_fault (same fixture): the delta is the
// total cost of the compiled-in, disarmed obs instrumentation.
void BM_ExecuteObsDisarmed(benchmark::State& state) {
  obs::DisarmMetrics();
  obs::DisarmTracing();
  for (auto _ : state) RunStrategy();
}
BENCHMARK(BM_ExecuteObsDisarmed)->Unit(benchmark::kMillisecond);

// Same window with the counter registry armed (what WUW_METRICS costs).
void BM_ExecuteMetricsArmed(benchmark::State& state) {
  obs::ArmMetrics();
  for (auto _ : state) RunStrategy();
  obs::DisarmMetrics();
  obs::ResetMetrics();
}
BENCHMARK(BM_ExecuteMetricsArmed)->Unit(benchmark::kMillisecond);

// Same window with tracing armed too (what WUW_TRACE costs on top).
void BM_ExecuteTracingArmed(benchmark::State& state) {
  obs::ArmMetrics();
  obs::ArmTracing();
  for (auto _ : state) RunStrategy();
  obs::DisarmTracing();
  obs::DisarmMetrics();
  obs::ResetMetrics();
  (void)obs::DrainTrace();
}
BENCHMARK(BM_ExecuteTracingArmed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
