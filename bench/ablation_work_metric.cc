// Ablation (Section 7 Discussion): is the term-aware linear work metric
// the right cost model?
//
// The paper argues a plausible variant — summing each operand once per
// Comp instead of once per term — would rank the dual-stage strategy best,
// contradicting the measurements.  This bench computes both analytic
// rankings and compares them against measured update windows.
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "core/work_metric.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv();
  bench::PrintHeader(
      "Ablation: linear work metric vs operands-once variant",
      "Which analytic metric predicts the measured winner?");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
  SizeMap sizes = warehouse.EstimatedSizes();

  Strategy one_way = MinWork(warehouse.vdag(), sizes).strategy;
  Strategy dual = MakeDualStageVdagStrategy(warehouse.vdag());

  double lw_one = EstimateStrategyWork(warehouse.vdag(), one_way, sizes, {}).total;
  double lw_dual = EstimateStrategyWork(warehouse.vdag(), dual, sizes, {}).total;
  double v_one =
      EstimateStrategyWorkOperandsOnce(warehouse.vdag(), one_way, sizes, {})
          .total;
  double v_dual =
      EstimateStrategyWorkOperandsOnce(warehouse.vdag(), dual, sizes, {})
          .total;

  double m_one = bench::RunOnClone(warehouse, one_way).total_seconds;
  double m_dual = bench::RunOnClone(warehouse, dual).total_seconds;

  std::printf("  %-22s %16s %18s %12s\n", "strategy", "linear metric",
              "operands-once", "measured");
  std::printf("  %-22s %16.0f %18.0f %11.3fs\n", "MinWork (1-way)", lw_one,
              v_one, m_one);
  std::printf("  %-22s %16.0f %18.0f %11.3fs\n", "dual-stage", lw_dual,
              v_dual, m_dual);

  const char* lw_pick = lw_one < lw_dual ? "MinWork" : "dual-stage";
  const char* v_pick = v_one < v_dual ? "MinWork" : "dual-stage";
  const char* measured_pick = m_one < m_dual ? "MinWork" : "dual-stage";
  std::printf("\n  linear metric picks   : %s\n", lw_pick);
  std::printf("  operands-once picks   : %s\n", v_pick);
  std::printf("  measurement picks     : %s\n", measured_pick);
  std::printf("\n  (paper: operands-once would wrongly prefer dual-stage;\n"
              "   the term-aware linear metric tracks the real system)\n");
  return 0;
}
