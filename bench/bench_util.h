// Shared plumbing for the experiment-reproduction binaries.
//
// Each bench binary regenerates one table/figure of the paper: it builds a
// TPC-D warehouse, applies the experiment's change workload, executes the
// competing strategies on clones, and prints the measured update windows
// in the shape the paper reports.
//
// Environment knobs:
//   WUW_SF        scale factor (default 0.01 ~ 60k LINEITEM rows)
//   WUW_SEED      generator seed (default 42)
//   WUW_CACHE_MB  subplan-cache budget in MB; unset = no cache (the
//                 paper-fidelity eager path), 0 = attached but admits
//                 nothing, negative = unbounded
//   WUW_FAULT     fault-injection spec (fault/fault_injection.h grammar);
//                 unset = all points disarmed at zero cost
//   WUW_IO_FAULT  I/O fault spec (io/fault_env.h grammar) — wraps all
//                 durable I/O in a deterministic FaultEnv; unset = the
//                 plain POSIX env
//   WUW_WINDOW_BUDGET  per-window budget spec (exec/window_budget.h
//                 grammar, e.g. "2000" or "work=2000;deadline_ms=50");
//                 sequential executor runs auto-split into as many windows
//                 as the budget demands (always completing); unset = one
//                 window, zero cost.  FromEnv prints a notice when armed
//                 so split timings are never mistaken for baselines.
#ifndef WUW_BENCH_BENCH_UTIL_H_
#define WUW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/strategy.h"
#include "exec/executor.h"
#include "exec/warehouse.h"
#include "exec/window_budget.h"
#include "fault/fault_injection.h"
#include "io/fault_env.h"
#include "plan/subplan_cache.h"

namespace wuw {
namespace bench {

struct BenchEnv {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// WUW_CACHE_MB, when present.
  bool cache_set = false;
  int64_t cache_mb = 0;
};

inline BenchEnv FromEnv(double default_scale_factor = 0.01) {
  BenchEnv env;
  env.scale_factor = default_scale_factor;
  if (const char* sf = std::getenv("WUW_SF")) env.scale_factor = atof(sf);
  if (const char* seed = std::getenv("WUW_SEED")) {
    env.seed = strtoull(seed, nullptr, 10);
  }
  if (const char* mb = std::getenv("WUW_CACHE_MB")) {
    env.cache_set = true;
    env.cache_mb = strtoll(mb, nullptr, 10);
  }
  // Any experiment can run under injected faults without recompiling
  // (no-op when WUW_FAULT / WUW_IO_FAULT are unset).
  std::string fault_error = fault::ArmFromEnv();
  if (!fault_error.empty()) {
    std::fprintf(stderr, "%s\n", fault_error.c_str());
    std::exit(2);
  }
  std::string io_fault_error = io::InstallIoFaultFromEnv();
  if (!io_fault_error.empty()) {
    std::fprintf(stderr, "%s\n", io_fault_error.c_str());
    std::exit(2);
  }
  if (const WindowBudgetOptions* budget = EnvWindowBudget()) {
    std::printf(
        "  NOTE: WUW_WINDOW_BUDGET armed (work=%lld deadline=%.3fs) — "
        "sequential runs auto-split into budgeted windows; timings below "
        "include pause/resume overhead.\n",
        static_cast<long long>(budget->work_units),
        budget->deadline_seconds);
  }
  return env;
}

/// The WUW_CACHE_MB cache, or null when the knob is unset.  The cache
/// deliberately persists across every run of a bench process: clones of one
/// warehouse state agree on subplan keys, so later strategies/repetitions
/// reuse what earlier ones materialized (the cross-expression sharing the
/// plan layer exists for).
inline std::unique_ptr<SubplanCache> MakeCacheFromEnv(const BenchEnv& env) {
  if (!env.cache_set) return nullptr;
  SubplanCacheOptions options;
  options.byte_budget = env.cache_mb < 0 ? -1 : env.cache_mb << 20;
  return std::make_unique<SubplanCache>(options);
}

inline void PrintHeader(const std::string& title,
                        const std::string& subtitle) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("==============================================================\n");
}

/// A bar-chart row mirroring the paper's figures.
inline void PrintBar(const std::string& label, double seconds,
                     double max_seconds, int64_t linear_work) {
  int width = max_seconds > 0
                  ? static_cast<int>(40.0 * seconds / max_seconds)
                  : 0;
  std::string bar(static_cast<size_t>(width), '#');
  std::printf("  %-34s %9.3fs  %-40s work=%lld\n", label.c_str(), seconds,
              bar.c_str(), static_cast<long long>(linear_work));
}

/// Executes `strategy` against a clone of `base` (whose pending deltas are
/// cloned too) and returns the measured update window.  `options` lets a
/// bench attach a shared SubplanCache or flip executor policies.
inline ExecutionReport RunOnClone(const Warehouse& base,
                                  const Strategy& strategy,
                                  const ExecutorOptions& options = {}) {
  Warehouse clone = base.Clone();
  Executor executor(&clone, options);
  return executor.Execute(strategy);
}

/// Repeats RunOnClone `reps` times and keeps the fastest run — the same
/// noise discipline the paper's timed SQL Server runs needed.  Linear work
/// is deterministic across repetitions.
inline ExecutionReport RunOnCloneBest(const Warehouse& base,
                                      const Strategy& strategy, int reps = 3,
                                      const ExecutorOptions& options = {}) {
  ExecutionReport best = RunOnClone(base, strategy, options);
  for (int r = 1; r < reps; ++r) {
    ExecutionReport next = RunOnClone(base, strategy, options);
    if (next.total_seconds < best.total_seconds) best = std::move(next);
  }
  return best;
}

/// Measures several strategies with an untimed warmup pass and
/// round-robin-interleaved repetitions (min per strategy), cancelling the
/// slow drift (heap growth, page faults) that consecutive blocks of runs
/// would fold into whichever strategy ran last.
inline std::vector<ExecutionReport> MeasureInterleaved(
    const Warehouse& base, const std::vector<Strategy>& strategies,
    int reps = 3, const ExecutorOptions& options = {}) {
  std::vector<ExecutionReport> best(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    (void)RunOnClone(base, strategies[i], options);  // warmup
  }
  for (int r = 0; r < reps; ++r) {
    for (size_t i = 0; i < strategies.size(); ++i) {
      ExecutionReport next = RunOnClone(base, strategies[i], options);
      if (r == 0 || next.total_seconds < best[i].total_seconds) {
        best[i] = std::move(next);
      }
    }
  }
  return best;
}

/// One summary line for the shared cache attached to a bench's runs, plus
/// the total rows scanned across `reports` (the acceptance metric for the
/// memoization ablation).
inline void PrintCacheSummary(const BenchEnv& env, const SubplanCache* cache,
                              const std::vector<ExecutionReport>& reports) {
  int64_t rows_scanned = 0;
  for (const ExecutionReport& r : reports) {
    rows_scanned += r.totals.rows_scanned;
  }
  std::printf("\n  total rows scanned (reported runs): %lld\n",
              static_cast<long long>(rows_scanned));
  if (cache == nullptr) {
    std::printf("  subplan cache: off (set WUW_CACHE_MB to enable)\n");
    return;
  }
  SubplanCacheStats stats = cache->stats();
  std::printf("  subplan cache (%lld MB budget): %s\n",
              static_cast<long long>(env.cache_mb), stats.ToString().c_str());
}

}  // namespace bench
}  // namespace wuw

#endif  // WUW_BENCH_BENCH_UTIL_H_
