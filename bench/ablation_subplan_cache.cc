// Ablation: what does shared-subplan memoization buy on the paper's
// workloads?
//
// Re-runs the Experiment 1 (Q3 view strategies) and Experiment 4 (whole
// VDAG) workloads with the subplan cache off / budget 0 / tightly budgeted
// / 256MB / unbounded, and reports wall time, rows scanned, and hit rate
// per configuration.  The cache persists across a configuration's runs
// (clones of one state agree on subplan keys), so repetitions and
// different strategies feed each other — the realistic "several update
// windows against the same mart" shape.
//
// Correctness is not at stake here (the property tests pin ground truth
// bit-identically for every budget); this binary quantifies the
// scans-avoided / bytes-held trade-off.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/min_work_single.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace {

using namespace wuw;

struct Mode {
  std::string label;
  bool cache = false;
  int64_t byte_budget = 0;
};

struct ModeResult {
  double seconds = 0;
  int64_t rows_scanned = 0;
  SubplanCacheStats stats;
};

ModeResult RunWorkload(const Warehouse& warehouse,
                       const std::vector<Strategy>& strategies,
                       const Mode& mode, int reps) {
  std::unique_ptr<SubplanCache> cache;
  if (mode.cache) {
    cache = std::make_unique<SubplanCache>(
        SubplanCacheOptions{mode.byte_budget});
  }
  ExecutorOptions options;
  options.subplan_cache = cache.get();

  ModeResult result;
  for (int r = 0; r < reps; ++r) {
    for (const Strategy& s : strategies) {
      ExecutionReport report = bench::RunOnClone(warehouse, s, options);
      result.seconds += report.total_seconds;
      result.rows_scanned += report.totals.rows_scanned;
    }
  }
  if (cache != nullptr) result.stats = cache->stats();
  return result;
}

void RunAblation(const std::string& title, const Warehouse& warehouse,
                 const std::vector<Strategy>& strategies, int reps) {
  const std::vector<Mode> modes = {
      {"cache off", false, 0},
      {"budget 0 (admit nothing)", true, 0},
      {"budget 16MB", true, 16ll << 20},
      {"budget 256MB (default)", true, 256ll << 20},
      {"unbounded", true, -1},
  };

  std::printf("\n%s — %zu strategies x %d reps\n", title.c_str(),
              strategies.size(), reps);
  std::printf("  %-26s %10s %14s %8s %12s %10s\n", "mode", "wall s",
              "rows scanned", "hit%", "bytes held", "evictions");

  int64_t baseline_rows = 0;
  for (const Mode& mode : modes) {
    ModeResult r = RunWorkload(warehouse, strategies, mode, reps);
    if (!mode.cache) baseline_rows = r.rows_scanned;
    int64_t lookups = r.stats.hits + r.stats.misses;
    double hit_pct = lookups > 0 ? 100.0 * r.stats.hits / lookups : 0.0;
    std::printf("  %-26s %9.3fs %14lld %7.1f%% %12lld %10lld",
                mode.label.c_str(), r.seconds,
                static_cast<long long>(r.rows_scanned), hit_pct,
                static_cast<long long>(r.stats.bytes_in_use),
                static_cast<long long>(r.stats.evictions));
    if (mode.cache && baseline_rows > 0) {
      std::printf("  (%+.1f%% rows vs off)",
                  100.0 * (r.rows_scanned - baseline_rows) / baseline_rows);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Ablation: shared-subplan memoization",
      "TPC-D SF=" + std::to_string(env.scale_factor) +
          ", 10% deletions; cache off vs budgeted vs unbounded");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;

  {
    Warehouse warehouse = tpcd::MakeTpcdWarehouse(
        options, {"Q3"}, /*only_referenced_bases=*/true);
    tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
    std::vector<Strategy> strategies = {
        MinWorkSingle(warehouse.vdag(), "Q3", warehouse.EstimatedSizes()),
        MakeDualStageVdagStrategy(warehouse.vdag()),
    };
    RunAblation("Exp-1 workload (Q3)", warehouse, strategies, /*reps=*/3);
  }

  {
    Warehouse warehouse =
        tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
    tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
    std::vector<Strategy> strategies = {
        MinWork(warehouse.vdag(), warehouse.EstimatedSizes()).strategy,
        MakeDualStageVdagStrategy(warehouse.vdag()),
    };
    RunAblation("Exp-4 workload (Q3 + Q5 + Q10)", warehouse, strategies,
                /*reps=*/3);
  }
  return 0;
}
