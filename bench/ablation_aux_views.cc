// Ablation: persistent auxiliary views (plan/aux_view.h) — what does
// promoting hot shared join prefixes to incrementally-maintained
// materializations buy over (a) the eager baseline and (b) the in-window
// SubplanCache alone?
//
// A TPC-D warehouse absorbs a stream of coherent change batches
// (tpcd::SourceChangeStream) under the dual-stage strategy, per mode:
//
//   off        no cache, no aux views (paper-fidelity eager baseline)
//   cache      16MB SubplanCache (in-window memoization only; cold again
//              whenever extent versions move — i.e. every batch)
//   aux        WUW_AUX_VIEWS-style promotion (advisor + materialize +
//              substitute + incremental upkeep), no cache
//   aux+cache  both
//
// Batch 0 is the advisor's observation window (promotion lands at its
// commit) and is reported separately; the acceptance criterion is that
// every MEASURED batch (1..N) does strictly less linear work and scans
// strictly fewer rows under `aux` than under `off` — the aux upkeep
// (delta-joins against the small materialization) must pay for itself
// every window, not just in aggregate.  The binary exits non-zero if any
// measured batch regresses, so CI can keep the claim honest.
//
// Correctness is not at stake here: aux_view_property_test pins
// bit-identical convergence for armed vs unarmed at every pool size and
// cache budget.  tools/aux_bench.py runs this binary and commits the
// per-batch numbers to BENCH_mqo.json.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/strategy_space.h"
#include "plan/aux_view.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace {

using namespace wuw;

constexpr int kMeasuredBatches = 5;
constexpr double kDeleteFraction = 0.02;
constexpr double kInsertFraction = 0.01;

struct Mode {
  std::string label;
  bool aux = false;
  bool cache = false;
};

struct BatchRow {
  double seconds = 0;
  int64_t linear_work = 0;
  int64_t rows_scanned = 0;
};

struct ModeResult {
  std::vector<BatchRow> batches;  // [0] = warmup, [1..] measured
  size_t aux_views = 0;
};

ModeResult RunStream(const Warehouse& pristine,
                     const tpcd::GeneratorOptions& gen, const Mode& mode) {
  Warehouse w = pristine.Clone();
  if (mode.aux) {
    // One observation window before promoting: batch 0 tallies, its commit
    // materializes, batches 1..N run substituted.
    AuxViewOptions options;
    options.min_windows = 1;
    options.min_uses = 1;
    w.EnableAuxViews(options);
  }
  std::unique_ptr<SubplanCache> cache;
  if (mode.cache) {
    cache = std::make_unique<SubplanCache>(SubplanCacheOptions{16ll << 20});
  }
  tpcd::SourceChangeStream stream(w, gen);

  ModeResult result;
  for (int batch = 0; batch <= kMeasuredBatches; ++batch) {
    for (auto& [base, delta] :
         stream.NextBatch(kDeleteFraction, kInsertFraction)) {
      w.SetBaseDelta(base, std::move(delta));
    }
    // Rebuilt per batch: after a promotion the vdag has grown, and the
    // dual-stage strategy must maintain the aux view like any other.
    Strategy s = MakeDualStageVdagStrategy(w.vdag());
    ExecutorOptions options;
    options.subplan_cache = cache.get();
    ExecutionReport report = Executor(&w, options).Execute(s);
    result.batches.push_back(BatchRow{report.total_seconds,
                                      report.total_linear_work,
                                      report.totals.rows_scanned});
  }
  if (w.aux_views() != nullptr) result.aux_views = w.aux_views()->NumAuxViews();
  return result;
}

/// Runs all modes over one warehouse; returns false iff the per-batch
/// acceptance criterion (aux strictly below off on every measured batch)
/// fails.
bool RunWorkload(const std::string& title, const Warehouse& pristine,
                 const tpcd::GeneratorOptions& gen) {
  const std::vector<Mode> modes = {
      {"off", false, false},
      {"cache 16MB", false, true},
      {"aux", true, false},
      {"aux + cache 16MB", true, true},
  };

  std::printf("\n%s — %d measured batches after 1 warmup window\n",
              title.c_str(), kMeasuredBatches);
  std::printf("  %-18s %8s %10s %16s %16s %6s\n", "mode", "batch", "wall s",
              "linear work", "rows scanned", "aux");

  std::vector<ModeResult> results;
  for (const Mode& mode : modes) {
    ModeResult r = RunStream(pristine, gen, mode);
    for (size_t b = 0; b < r.batches.size(); ++b) {
      const BatchRow& row = r.batches[b];
      std::printf("  %-18s %7zu%s %9.3fs %16lld %16lld %6zu\n",
                  b == 0 ? mode.label.c_str() : "", b, b == 0 ? "*" : " ",
                  row.seconds, static_cast<long long>(row.linear_work),
                  static_cast<long long>(row.rows_scanned), r.aux_views);
    }
    results.push_back(std::move(r));
  }
  std::printf("  (* = warmup/observation window, excluded from the "
              "acceptance check)\n");

  const ModeResult& off = results[0];
  const ModeResult& aux = results[2];
  bool ok = aux.aux_views > 0;
  if (!ok) std::printf("  FAIL: no aux view was promoted\n");
  for (int b = 1; b <= kMeasuredBatches; ++b) {
    const BatchRow& base = off.batches[static_cast<size_t>(b)];
    const BatchRow& armed = aux.batches[static_cast<size_t>(b)];
    const bool batch_ok = armed.linear_work < base.linear_work &&
                          armed.rows_scanned < base.rows_scanned;
    if (!batch_ok) {
      std::printf(
          "  FAIL batch %d: aux work=%lld rows=%lld vs off work=%lld "
          "rows=%lld\n",
          b, static_cast<long long>(armed.linear_work),
          static_cast<long long>(armed.rows_scanned),
          static_cast<long long>(base.linear_work),
          static_cast<long long>(base.rows_scanned));
      ok = false;
    }
  }
  if (ok) {
    int64_t off_work = 0, aux_work = 0, off_rows = 0, aux_rows = 0;
    for (int b = 1; b <= kMeasuredBatches; ++b) {
      off_work += off.batches[static_cast<size_t>(b)].linear_work;
      aux_work += aux.batches[static_cast<size_t>(b)].linear_work;
      off_rows += off.batches[static_cast<size_t>(b)].rows_scanned;
      aux_rows += aux.batches[static_cast<size_t>(b)].rows_scanned;
    }
    std::printf(
        "  OK: aux views cut measured linear work %.1f%% and rows scanned "
        "%.1f%% (every batch individually cheaper)\n",
        100.0 * (off_work - aux_work) / off_work,
        100.0 * (off_rows - aux_rows) / off_rows);
  }
  return ok;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.01);
  bench::PrintHeader(
      "Ablation: persistent auxiliary views (hot shared join prefixes)",
      "TPC-D SF=" + std::to_string(env.scale_factor) +
          "; coherent 2% delete / 1% insert batches, dual-stage strategy");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;

  bool ok = true;
  {
    Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q5"});
    ok &= RunWorkload("Q5 (6-way join)", warehouse, options);
  }
  {
    Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
    ok &= RunWorkload("Q3 + Q5 + Q10 (shared customer/orders prefix)",
                      warehouse, options);
  }
  return ok ? 0 : 1;
}
