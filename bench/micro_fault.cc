// Micro-benchmarks for the fault-injection framework and the strategy
// journal: the acceptance criterion is that a DISARMED fault point and an
// unjournaled executor run cost what they did before the framework
// existed (one relaxed load per point; zero journal work).  Armed
// count-only and journaled runs are measured alongside so the price of
// turning the knobs on is visible, and replay-based resume is compared
// against live execution.
#include <benchmark/benchmark.h>

#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "fault/fault_injection.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A Q3 warehouse with a pending mixed batch, cloned per measured run.
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    for (const std::string& base : wh->vdag().BaseViews()) {
      wh->SetBaseDelta(base,
                       tpcd::MakeDeletionDelta(
                           *wh->catalog().MustGetTable(base), 0.05, 7));
    }
    return wh;
  }();
  return *w;
}

// The disarmed fast path: one relaxed atomic load per point.  This is the
// cost every executor step, plan-node eval, and installed row pays when no
// fault plan is armed — it must stay indistinguishable from a no-op.
void BM_FaultPointDisarmed(benchmark::State& state) {
  fault::Disarm();
  for (auto _ : state) {
    WUW_FAULT_POINT("bench.micro.point");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultPointDisarmed);

// Armed count-only: mutex + hash lookup per hit.  The enumeration pass of
// the kill-at-every-step suites runs at this speed.
void BM_FaultPointArmedCountOnly(benchmark::State& state) {
  fault::FaultPlan plan;
  plan.count_only = true;
  fault::ScopedFaultPlan scoped(plan);
  for (auto _ : state) {
    WUW_FAULT_POINT("bench.micro.point");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultPointArmedCountOnly);

void RunStrategy(bool journal) {
  Warehouse clone = BatchedWarehouse().Clone();
  ExecutorOptions options;
  options.journal = journal;
  Executor executor(&clone, options);
  executor.Execute(MakeDualStageVdagStrategy(clone.vdag()));
}

// Full dual-stage update window, journal off — the default executor path
// every bench and experiment uses.
void BM_ExecuteJournalOff(benchmark::State& state) {
  for (auto _ : state) RunStrategy(false);
}
BENCHMARK(BM_ExecuteJournalOff)->Unit(benchmark::kMillisecond);

// Same window with journaling on: the overhead is one COW Rows copy per
// Comp and one DeltaRelation copy per Inst.
void BM_ExecuteJournalOn(benchmark::State& state) {
  for (auto _ : state) RunStrategy(true);
}
BENCHMARK(BM_ExecuteJournalOn)->Unit(benchmark::kMillisecond);

// Pure-replay resume of a completed journal: reconstructs the final state
// from logged effects with no join work — the floor recovery pays after a
// crash at the last step.
void BM_ResumeReplayOnly(benchmark::State& state) {
  static Warehouse* victim = [] {
    auto* w = new Warehouse(BatchedWarehouse().Clone());
    ExecutorOptions options;
    options.journal = true;
    Executor executor(w, options);
    executor.Execute(MakeDualStageVdagStrategy(w->vdag()));
    return w;
  }();
  for (auto _ : state) {
    Warehouse restored = BatchedWarehouse().Clone();
    ResumeStrategy(victim->journal(), &restored);
  }
}
BENCHMARK(BM_ResumeReplayOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
