// Experiment 4 (Figure 15): whole-VDAG strategies on the TPC-D warehouse
// (Q3 + Q5 + Q10 over the six base views), 10% deletions.
//
// Competitors, as in the paper:
//  * MinWork (= Prune here: the TPC-D VDAG is uniform, so MinWork is
//    optimal and both produce the same-cost strategy; paper: 107.9s);
//  * RNSCOL: the 1-way strategy using the REVERSE of the desired view
//    ordering <R,N,S,C,O,L> (paper: 119.6s, ~11% worse);
//  * dual-stage (paper: 577.5s, 5-6x worse).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/expression_graph.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Experiment 4 (Figure 15): VDAG strategies (Q3 + Q5 + Q10)",
      "TPC-D SF=" + std::to_string(env.scale_factor) +
          ", 10% deletions; paper: MinWork 107.9s, RNSCOL 119.6s, "
          "dual 577.5s");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);

  SizeMap sizes = warehouse.EstimatedSizes();

  MinWorkResult mw = MinWork(warehouse.vdag(), sizes);
  std::printf("MinWork desired ordering:");
  for (const std::string& v : mw.ordering) std::printf(" %s", v.c_str());
  std::printf("  (modified: %s)\n", mw.used_modified_ordering ? "yes" : "no");

  // RNSCOL: reverse the desired ordering of the base views.
  std::vector<std::string> reversed(mw.ordering.rbegin(), mw.ordering.rend());
  ExpressionGraph eg =
      ExpressionGraph::ConstructEG(warehouse.vdag(), reversed);
  Strategy rnscol = *eg.TopologicalStrategy();  // uniform VDAG: acyclic

  Strategy dual = MakeDualStageVdagStrategy(warehouse.vdag());

  PruneResult prune = Prune(warehouse.vdag(), sizes);

  std::unique_ptr<SubplanCache> cache = bench::MakeCacheFromEnv(env);
  ExecutorOptions exec_options;
  exec_options.subplan_cache = cache.get();
  std::vector<ExecutionReport> reports = bench::MeasureInterleaved(
      warehouse, {mw.strategy, prune.strategy, rnscol, dual}, 3,
      exec_options);
  ExecutionReport& mw_report = reports[0];
  ExecutionReport& prune_report = reports[1];
  ExecutionReport& rn_report = reports[2];
  ExecutionReport& dual_report = reports[3];

  if (std::getenv("WUW_VERBOSE") != nullptr) {
    std::printf("\nMinWork per-expression:\n%s\n",
                mw_report.ToString().c_str());
    std::printf("RNSCOL per-expression:\n%s\n", rn_report.ToString().c_str());
  }

  double max_s = std::max({mw_report.total_seconds, rn_report.total_seconds,
                           dual_report.total_seconds});
  bench::PrintBar("MinWork", mw_report.total_seconds, max_s,
                  mw_report.total_linear_work);
  bench::PrintBar("Prune", prune_report.total_seconds, max_s,
                  prune_report.total_linear_work);
  bench::PrintBar("RNSCOL (reverse order)", rn_report.total_seconds, max_s,
                  rn_report.total_linear_work);
  bench::PrintBar("dual-stage", dual_report.total_seconds, max_s,
                  dual_report.total_linear_work);

  std::printf("\n  dual / MinWork   : %.2fx (paper: 5-6x)\n",
              dual_report.total_seconds / mw_report.total_seconds);
  std::printf("  RNSCOL / MinWork : %.2fx wall, %.2fx work (paper: ~1.11x)\n",
              rn_report.total_seconds / mw_report.total_seconds,
              static_cast<double>(rn_report.total_linear_work) /
                  static_cast<double>(mw_report.total_linear_work));
  std::printf("  Prune / MinWork  : %.2fx (uniform VDAG: both optimal)\n",
              prune_report.total_seconds / mw_report.total_seconds);
  std::printf("  Prune examined %lld orderings (m!=6!; n! would be 362880)\n",
              (long long)prune.orderings_examined);
  bench::PrintCacheSummary(env, cache.get(), reports);
  return 0;
}
