// Ablation (Section 6): Prune's search-space reduction.
//
// For the TPC-D VDAG, permuting only the m=6 views with parents examines
// 720 orderings instead of 9! = 362880 — with identical results.  This
// bench verifies the equivalence on a smaller VDAG where the full search
// is feasible, and times Prune's m! search on TPC-D.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/prune.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_generator.h"
#include "tpcd/tpcd_views.h"

namespace {

double Seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv();
  bench::PrintHeader("Ablation: Prune search-space optimization (m! vs n!)",
                     "");

  // Part 1: equivalence on a reduced VDAG (Q3 only: n=7, m=3).
  {
    tpcd::GeneratorOptions options;
    options.scale_factor = 0.002;
    options.seed = env.seed;
    Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3"});
    tpcd::ApplyPaperChangeWorkload(&w, 0.10, 0.0, env.seed);
    SizeMap sizes = w.EstimatedSizes();

    PruneOptions full;
    full.permute_only_views_with_parents = false;
    double t0 = Seconds();
    PruneResult opt = Prune(w.vdag(), sizes);
    double t1 = Seconds();
    PruneResult brute = Prune(w.vdag(), sizes, full);
    double t2 = Seconds();

    std::printf("  Q3-only VDAG (4 views, m=%zu):\n",
                w.vdag().ViewsWithParents().size());
    std::printf("    m! search: %6lld orderings, best work %.0f (%.4fs)\n",
                (long long)opt.orderings_examined, opt.work, t1 - t0);
    std::printf("    n! search: %6lld orderings, best work %.0f (%.4fs)\n",
                (long long)brute.orderings_examined, brute.work, t2 - t1);
    std::printf("    identical result: %s\n",
                opt.work == brute.work ? "yes" : "NO (BUG)");
  }

  // Part 2: the full TPC-D VDAG — m! = 720 (the paper's number).
  {
    tpcd::GeneratorOptions options;
    options.scale_factor = 0.002;
    options.seed = env.seed;
    Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
    tpcd::ApplyPaperChangeWorkload(&w, 0.10, 0.0, env.seed);
    double t0 = Seconds();
    PruneResult r = Prune(w.vdag(), w.EstimatedSizes());
    double t1 = Seconds();
    std::printf("\n  TPC-D VDAG (9 views, m=6):\n");
    std::printf("    Prune examined %lld orderings in %.3fs "
                "(vs 362880 without the optimization)\n",
                (long long)r.orderings_examined, t1 - t0);
    std::printf("    infeasible orderings (cyclic SEG): %lld\n",
                (long long)r.orderings_infeasible);
    std::printf("    winning ordering:");
    for (const std::string& v : r.ordering) std::printf(" %s", v.c_str());
    std::printf("\n");
  }
  return 0;
}
