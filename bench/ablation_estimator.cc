// Ablation (Section 5.5): does "standard result size estimation" suffice?
//
// MinWork needs |V'|-|V| per view.  The paper asserts standard estimation
// methods are enough; this bench compares the analytic first-order
// estimator against the exact oracle on the TPC-D warehouse across change
// profiles, and — the part that matters — checks whether estimate-driven
// MinWork picks a plan as good as oracle-driven MinWork.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.01);
  bench::PrintHeader("Ablation: analytic size estimation vs oracle",
                     "TPC-D SF=" + std::to_string(env.scale_factor));

  struct Profile {
    const char* label;
    double delete_fraction;
    double insert_fraction;
  };
  const Profile profiles[] = {
      {"deletions 10%", 0.10, 0.00},
      {"deletions 2%", 0.02, 0.00},
      {"inserts 10%", 0.00, 0.10},
      {"mixed 5%/5%", 0.05, 0.05},
      {"heavy 25%/10%", 0.25, 0.10},
  };

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});

  for (const Profile& p : profiles) {
    Warehouse warehouse = pristine.Clone();
    tpcd::ApplyPaperChangeWorkload(&warehouse, p.delete_fraction,
                                   p.insert_fraction, env.seed + p.label[0]);
    SizeMap est = warehouse.EstimatedSizes();
    SizeMap stats_est = warehouse.EstimatedSizesWithStats();
    SizeMap oracle = warehouse.OracleSizes();

    std::printf("\n%s\n", p.label);
    std::printf("  %-10s %13s %13s %12s\n", "view", "first-order",
                "stats-based", "|dV| oracle");
    double worst_ratio = 1.0;
    for (const std::string& name : warehouse.vdag().DerivedViewsBottomUp()) {
      double e = static_cast<double>(est.Get(name).delta_abs);
      double se = static_cast<double>(stats_est.Get(name).delta_abs);
      double o = static_cast<double>(oracle.Get(name).delta_abs);
      double ratio = o > 0 ? se / o : (se > 0 ? 99.0 : 1.0);
      worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
      std::printf("  %-10s %13.0f %13.0f %12.0f\n", name.c_str(), e, se, o);
    }

    MinWorkResult with_est = MinWork(warehouse.vdag(), stats_est);
    MinWorkResult with_oracle = MinWork(warehouse.vdag(), oracle);
    // Both plans priced under the ORACLE sizes: the regret of planning
    // with estimates.
    double est_cost = EstimateStrategyWork(warehouse.vdag(),
                                           with_est.strategy, oracle, {})
                          .total;
    double oracle_cost = EstimateStrategyWork(
                             warehouse.vdag(), with_oracle.strategy, oracle,
                             {})
                             .total;
    std::printf("  stats-based worst-case error: %.2fx\n", worst_ratio);
    std::printf("  plan regret (est-planned / oracle-planned work): %.4fx\n",
                est_cost / oracle_cost);
    std::printf("  same strategy chosen: %s\n",
                with_est.strategy == with_oracle.strategy ? "yes" : "no");
  }

  std::printf(
      "\n  The ordering only needs RELATIVE net changes, so even multi-x\n"
      "  absolute errors on derived deltas rarely change the plan —\n"
      "  Section 5.5's claim that standard estimation suffices.\n");
  return 0;
}
