// Micro-benchmarks for the optimizer algorithms themselves:
// MinWorkSingle O(n log n) (Theorem 4.3), MinWork O(n^3) (Section 5.4),
// Prune O(m! n^3) (Section 6).
#include <benchmark/benchmark.h>

#include "core/min_work.h"
#include "core/min_work_single.h"
#include "core/prune.h"
#include "graph/vdag.h"
#include "storage/schema.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

Schema TripleSchema(const std::string& name) {
  return Schema({{name + "_k", TypeId::kInt64},
                 {name + "_v", TypeId::kInt64},
                 {name + "_g", TypeId::kInt64}});
}

/// A star VDAG: one derived view over n bases.
Vdag StarVdag(size_t n) {
  Vdag vdag;
  ViewDefinitionBuilder b("V");
  std::vector<std::string> bases;
  for (size_t i = 0; i < n; ++i) {
    std::string base = "B" + std::to_string(i);
    vdag.AddBaseView(base, TripleSchema(base));
    b.From(base);
    bases.push_back(base);
  }
  for (size_t i = 1; i < n; ++i) b.JoinOn(bases[0] + "_k", bases[i] + "_k");
  b.SelectColumn(bases[0] + "_k", "V_k");
  vdag.AddDerivedView(b.Build());
  return vdag;
}

/// A layered VDAG: `layers` levels of `width` views, each view over two
/// views of the previous level.
Vdag LayeredVdag(size_t layers, size_t width) {
  Vdag vdag;
  std::vector<std::string> prev;
  for (size_t i = 0; i < width; ++i) {
    std::string base = "L0_" + std::to_string(i);
    vdag.AddBaseView(base, TripleSchema(base));
    prev.push_back(base);
  }
  for (size_t l = 1; l <= layers; ++l) {
    std::vector<std::string> cur;
    for (size_t i = 0; i < width; ++i) {
      std::string name = "L" + std::to_string(l) + "_" + std::to_string(i);
      std::string s0 = prev[i], s1 = prev[(i + 1) % width];
      vdag.AddDerivedView(ViewDefinitionBuilder(name)
                              .From(s0)
                              .From(s1)
                              .JoinOn(s0 + "_k", s1 + "_k")
                              .SelectColumn(s0 + "_k", name + "_k")
                              .SelectColumn(s0 + "_v", name + "_v")
                              .SelectColumn(s0 + "_g", name + "_g")
                              .Build());
      cur.push_back(name);
    }
    prev = cur;
  }
  return vdag;
}

SizeMap RandomSizes(const Vdag& vdag, uint64_t seed) {
  tpcd::Rng rng(seed);
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    int64_t size = rng.Range(100, 10000);
    int64_t minus = rng.Range(0, size / 5);
    int64_t plus = rng.Range(0, size / 5);
    sizes.Set(name, {size, plus + minus, plus - minus});
  }
  return sizes;
}

void BM_MinWorkSingle(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Vdag vdag = StarVdag(n);
  SizeMap sizes = RandomSizes(vdag, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinWorkSingle(vdag, "V", sizes));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MinWorkSingle)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_MinWorkLayered(benchmark::State& state) {
  size_t layers = static_cast<size_t>(state.range(0));
  Vdag vdag = LayeredVdag(layers, 4);
  SizeMap sizes = RandomSizes(vdag, layers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinWork(vdag, sizes));
  }
  state.SetComplexityN(static_cast<int64_t>(vdag.num_views()));
}
BENCHMARK(BM_MinWorkLayered)->DenseRange(1, 6)->Complexity();

void BM_PruneStar(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Vdag vdag = StarVdag(n);
  SizeMap sizes = RandomSizes(vdag, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Prune(vdag, sizes));
  }
}
BENCHMARK(BM_PruneStar)->DenseRange(2, 7);

void BM_PruneLayered(benchmark::State& state) {
  size_t width = static_cast<size_t>(state.range(0));
  Vdag vdag = LayeredVdag(1, width);  // m = width base views
  SizeMap sizes = RandomSizes(vdag, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Prune(vdag, sizes));
  }
}
BENCHMARK(BM_PruneLayered)->DenseRange(2, 6);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
