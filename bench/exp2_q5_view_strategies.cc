// Experiment 2 (Figure 13): Q5 (defined over all six TPC-D base views) —
// MinWorkSingle vs the dual-stage view strategy.
//
// The paper measured 69.65s vs 422.25s: dual-stage over 6x slower, versus
// "only" 2.2x for the simpler Q3.  The gap grows because Comp(Q5, all-6)
// expands to 2^6-1 = 63 maintenance terms, each rescanning base extents.
#include <cstdio>

#include "bench_util.h"
#include "core/min_work_single.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.05);
  bench::PrintHeader("Experiment 2 (Figure 13): Q5 view strategies",
                     "TPC-D SF=" + std::to_string(env.scale_factor) +
                         ", 10% deletions; paper ratio ~6.1x");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q5"});  // Q5 reads all 6 bases
  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);

  Strategy mws = MinWorkSingle(warehouse.vdag(), "Q5",
                               warehouse.EstimatedSizes());
  Strategy dual =
      MakeDualStageViewStrategy("Q5", warehouse.vdag().sources("Q5"));

  std::vector<ExecutionReport> reports =
      bench::MeasureInterleaved(warehouse, {mws, dual}, 3);
  ExecutionReport& mws_report = reports[0];
  ExecutionReport& dual_report = reports[1];

  double max_s = std::max(mws_report.total_seconds, dual_report.total_seconds);
  bench::PrintBar("MinWorkSingle (MWS)", mws_report.total_seconds, max_s,
                  mws_report.total_linear_work);
  bench::PrintBar("dual-stage [CGL+96]", dual_report.total_seconds, max_s,
                  dual_report.total_linear_work);

  std::printf("\n  dual-stage / MWS update window : %.2fx (paper: ~6.1x)\n",
              dual_report.total_seconds / mws_report.total_seconds);
  std::printf("  dual-stage / MWS linear work   : %.2fx\n",
              static_cast<double>(dual_report.total_linear_work) /
                  static_cast<double>(mws_report.total_linear_work));
  std::printf("  dual-stage Comp(Q5, all 6) expands to 63 terms; MWS runs 6\n"
              "  single-term Comps against shrinking extents.\n");
  return 0;
}
