// Extension of Experiment 1 to Q10: "Q10 has 75 view strategies"
// (Section 3.1 / Table 1).  All 75 are priced analytically under the
// linear work metric; the class extremes (best/worst 1-way, best/worst
// 2-way, best 3-way, dual-stage) plus MinWorkSingle are then measured by
// execution.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/exhaustive.h"
#include "core/min_work_single.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader("Experiment 1b: the 75-strategy space of Q10",
                     "TPC-D SF=" + std::to_string(env.scale_factor) +
                         ", 10% deletions");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q10"},
                                                /*only_referenced_bases=*/true);
  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
  SizeMap sizes = warehouse.EstimatedSizes();

  auto all = EnumerateAllViewStrategies(warehouse.vdag(), "Q10", sizes);
  std::printf("  enumerated %zu strategies (Table 1: 75 for n=4)\n\n",
              all.size());

  // Class statistics under the metric.
  auto max_block = [](const Strategy& s) {
    size_t m = 0;
    for (const Expression& e : s.expressions()) {
      if (e.is_comp()) m = std::max(m, e.over.size());
    }
    return m;
  };
  struct ClassStat {
    double best = 1e30, worst = 0;
    const Strategy* best_strategy = nullptr;
  };
  std::vector<ClassStat> classes(5);
  for (const EvaluatedStrategy& es : all) {
    ClassStat& c = classes[max_block(es.strategy)];
    if (es.work < c.best) {
      c.best = es.work;
      c.best_strategy = &es.strategy;
    }
    c.worst = std::max(c.worst, es.work);
  }

  Strategy mws = MinWorkSingle(warehouse.vdag(), "Q10", sizes);
  double mws_work =
      EstimateStrategyWork(warehouse.vdag(), mws, sizes, {}).total;

  std::printf("  %-12s %14s %14s\n", "class", "best work", "worst work");
  const char* labels[] = {"", "1-way", "2-way", "3-way", "dual-stage"};
  for (size_t k = 1; k <= 4; ++k) {
    std::printf("  %-12s %14.0f %14.0f\n", labels[k], classes[k].best,
                classes[k].worst);
  }
  std::printf("  MinWorkSingle work: %.0f (== best 1-way: %s)\n\n", mws_work,
              mws_work <= classes[1].best + 1e-6 ? "yes" : "NO");

  // Measure the class-best representatives plus dual-stage.
  std::vector<std::pair<std::string, Strategy>> to_measure;
  to_measure.emplace_back("MinWorkSingle", mws);
  for (size_t k = 2; k <= 4; ++k) {
    to_measure.emplace_back(std::string("best ") + labels[k],
                            *classes[k].best_strategy);
  }
  std::vector<Strategy> strategies;
  for (auto& [label, s] : to_measure) strategies.push_back(s);
  std::vector<ExecutionReport> reports =
      bench::MeasureInterleaved(warehouse, strategies, 3);

  double max_s = 0;
  for (const auto& r : reports) max_s = std::max(max_s, r.total_seconds);
  for (size_t i = 0; i < to_measure.size(); ++i) {
    bench::PrintBar(to_measure[i].first, reports[i].total_seconds, max_s,
                    reports[i].total_linear_work);
  }
  std::printf("\n  (paper shape generalizes from Q3: deeper partitions cost "
              "more)\n");
  return 0;
}
