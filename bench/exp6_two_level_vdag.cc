// Extension experiment: the two-level TPC-D VDAG ("derived views that
// further summarize Q3, Q5 and Q10 can also be defined", Section 2).
//
// Q3_BY_PRIORITY and Q10_BY_NATION roll level-1 views up to level 2;
// Q10_ORDER_STATUS joins Q10 back to ORDERS (levels 1 + 0), making the
// VDAG non-uniform, so MinWork's optimality guarantee no longer holds for
// every batch — the territory Sections 5.3/6 map out.  Compares MinWork,
// Prune, and dual-stage, and reports whether ModifyOrdering had to fire.
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Experiment 6: two-level TPC-D VDAG (rollups over Q3/Q10)",
      "TPC-D SF=" + std::to_string(env.scale_factor) + ", 10% deletions");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeExtendedTpcdWarehouse(options);
  std::printf("%s", warehouse.vdag().ToString().c_str());
  std::printf("tree=%s uniform=%s (12 views, m=%zu with parents)\n\n",
              warehouse.vdag().IsTree() ? "yes" : "no",
              warehouse.vdag().IsUniform() ? "yes" : "no",
              warehouse.vdag().ViewsWithParents().size());

  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
  SizeMap sizes = warehouse.EstimatedSizes();

  MinWorkResult mw = MinWork(warehouse.vdag(), sizes);
  std::printf("MinWork used ModifyOrdering: %s\n",
              mw.used_modified_ordering ? "yes (cyclic EG)" : "no");
  PruneResult pr = Prune(warehouse.vdag(), sizes);
  std::printf("Prune searched %lld orderings (%lld infeasible)\n\n",
              (long long)pr.orderings_examined,
              (long long)pr.orderings_infeasible);
  Strategy dual = MakeDualStageVdagStrategy(warehouse.vdag());

  std::vector<ExecutionReport> reports = bench::MeasureInterleaved(
      warehouse, {mw.strategy, pr.strategy, dual}, 3);
  double max_s = std::max({reports[0].total_seconds,
                           reports[1].total_seconds,
                           reports[2].total_seconds});
  bench::PrintBar("MinWork", reports[0].total_seconds, max_s,
                  reports[0].total_linear_work);
  bench::PrintBar("Prune", reports[1].total_seconds, max_s,
                  reports[1].total_linear_work);
  bench::PrintBar("dual-stage", reports[2].total_seconds, max_s,
                  reports[2].total_linear_work);

  double mw_work =
      EstimateStrategyWork(warehouse.vdag(), mw.strategy, sizes, {}).total;
  std::printf("\n  Prune/MinWork estimated work: %.4fx"
              " (Prune can only improve on MinWork's fallback)\n",
              pr.work / mw_work);
  std::printf("  dual / MinWork measured: %.2fx\n",
              reports[2].total_seconds / reports[0].total_seconds);
  return 0;
}
