// Experiment 8 (repro extension, not in the paper): reader throughput
// under maintenance.  The paper shrinks the update window so the
// warehouse is offline for less time; the snapshot-read layer removes the
// offline assumption entirely.  This bench quantifies both halves of that
// claim on the TPC-D Q3 fixture:
//
//   * BM_ReaderSessionsQuiesced   — session throughput with no window
//     running: the ceiling.
//   * BM_ReaderSessionsDuringMaintenance — session throughput while a
//     full dual-stage update window installs underneath the readers.
//     The ratio to the ceiling is the serving cost of a live window.
//   * BM_UpdateWindowQuiesced / BM_UpdateWindowWithReaders — the same
//     window timed alone and with a ReadDriver hammering snapshots: the
//     inflation readers impose on the window the paper wants short.
//
// Every measured session verifies isolation (no torn fingerprints, no
// epoch regressions) and the bench aborts on any violation, so the
// numbers are only reported for correct executions.  CI publishes the
// gbench JSON as BENCH_readers.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common/check.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "parallel/read_driver.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// An armed Q3 warehouse with a pending deletion batch, cloned per run
/// (clones of an armed warehouse republish their own state).
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    wh->EnableSnapshotReads();
    for (const std::string& base : wh->vdag().BaseViews()) {
      wh->SetBaseDelta(base,
                       tpcd::MakeDeletionDelta(
                           *wh->catalog().MustGetTable(base), 0.05, 7));
    }
    return wh;
  }();
  return *w;
}

ReadSessionOptions SessionOptions() {
  ReadSessionOptions options;
  options.sessions = 64;
  options.scans_per_session = 2;
  options.fingerprint_rows = 256;
  return options;
}

void CheckReport(const ReadSessionReport& report) {
  WUW_CHECK(report.ok(), "reader sessions observed an isolation violation");
}

// Ceiling: 64-session batches against a quiesced armed warehouse.
void BM_ReaderSessionsQuiesced(benchmark::State& state) {
  const Warehouse& w = BatchedWarehouse();
  const ReadSessionOptions options = SessionOptions();
  int64_t sessions = 0;
  for (auto _ : state) {
    ReadSessionReport report = RunReadSessions(w, options);
    CheckReport(report);
    sessions += report.sessions;
  }
  state.SetItemsProcessed(sessions);
}
BENCHMARK(BM_ReaderSessionsQuiesced)->Unit(benchmark::kMillisecond);

// Zero-downtime reads: the same session batches while a full dual-stage
// update window executes on a clone underneath them.  Sessions that land
// before the commit pin the pre-window state, sessions after it pin the
// post-window state; none block, none fail.
void BM_ReaderSessionsDuringMaintenance(benchmark::State& state) {
  int64_t sessions = 0;
  const ReadSessionOptions options = SessionOptions();
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    const Strategy strategy = MakeDualStageVdagStrategy(clone.vdag());
    state.ResumeTiming();
    std::atomic<bool> done{false};
    std::thread window([&] {
      Executor(&clone).Execute(strategy);
      done.store(true, std::memory_order_release);
    });
    ReadSessionReport report;
    do {  // keep batches overlapping the window until it commits
      report += RunReadSessions(clone, options);
    } while (!done.load(std::memory_order_acquire));
    window.join();
    CheckReport(report);
    sessions += report.sessions;
  }
  state.SetItemsProcessed(sessions);
}
BENCHMARK(BM_ReaderSessionsDuringMaintenance)->Unit(benchmark::kMillisecond);

// The update window alone: the quantity the paper minimizes.
void BM_UpdateWindowQuiesced(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    const Strategy strategy = MakeDualStageVdagStrategy(clone.vdag());
    state.ResumeTiming();
    Executor(&clone).Execute(strategy);
  }
}
BENCHMARK(BM_UpdateWindowQuiesced)->Unit(benchmark::kMillisecond);

// The update window with a ReadDriver continuously pinning snapshots and
// fingerprint-scanning them: how much serving live readers inflates the
// window.  COW detaches move from "free" to "one clone per extent".
void BM_UpdateWindowWithReaders(benchmark::State& state) {
  const ReadSessionOptions options = SessionOptions();
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    const Strategy strategy = MakeDualStageVdagStrategy(clone.vdag());
    ReadDriver driver;
    driver.Start(clone, options);
    state.ResumeTiming();
    Executor(&clone).Execute(strategy);
    state.PauseTiming();
    CheckReport(driver.Stop());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_UpdateWindowWithReaders)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
