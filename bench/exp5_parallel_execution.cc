// Section 9, measured: stage-parallel execution of update strategies with
// real worker threads.
//
// The paper stops at the trade-off ("the benefit ... may be offset by an
// increase in total work"); this bench runs it: the 1-way MinWork plan
// (least work, few stages usable), the dual-stage plan (more parallelism,
// ~5x work), both staged by conflict analysis and executed by a thread
// pool, across worker counts.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/parallel_executor.h"
#include "parallel/parallel_strategy.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Experiment 5 (Section 9, measured): stage-parallel execution",
      "TPC-D SF=" + std::to_string(env.scale_factor) + ", 10% deletions");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&pristine, 0.10, 0.0, env.seed);

  Strategy one_way =
      MinWork(pristine.vdag(), pristine.EstimatedSizes()).strategy;
  Strategy dual = MakeDualStageVdagStrategy(pristine.vdag());
  ParallelStrategy p_one = ParallelizeStrategy(pristine.vdag(), one_way);
  ParallelStrategy p_dual = ParallelizeStrategy(pristine.vdag(), dual);
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("  stages: 1-way=%zu  dual-stage=%zu   (machine cores: %u)\n",
              p_one.stages.size(), p_dual.stages.size(), cores);
  if (cores <= 1) {
    std::printf("  NOTE: single-core host — expect NO wall-clock speedup;\n"
                "  thread-safety/convergence is covered by "
                "parallel_executor_test.\n");
  }
  std::printf("\n");

  auto run = [&](const ParallelStrategy& stages, int workers,
                 int term_workers) {
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Warehouse clone = pristine.Clone();
      ParallelExecutorOptions exec_options;
      exec_options.workers = workers;
      exec_options.term_workers = term_workers;
      ParallelExecutor executor(&clone, exec_options);
      ParallelExecutionReport report = executor.Execute(stages);
      best = std::min(best, report.total_seconds);
    }
    return best;
  };

  std::printf("  %8s  %16s  %16s  %20s\n", "workers", "1-way (MinWork)",
              "dual-stage", "dual + term-par");
  double one_at_1 = 0, dual_at_1 = 0, dual_best = 1e30, one_best = 1e30;
  for (int workers : {1, 2, 4, 8}) {
    double one = run(p_one, workers, workers);
    double d = run(p_dual, workers, 1);
    double dt = run(p_dual, workers, workers);
    if (workers == 1) {
      one_at_1 = one;
      dual_at_1 = d;
    }
    one_best = std::min(one_best, one);
    dual_best = std::min(dual_best, std::min(d, dt));
    std::printf("  %8d  %15.3fs  %15.3fs  %19.3fs\n", workers, one, d, dt);
  }
  std::printf("\n  best dual-stage speedup vs its 1-worker run: %.2fx\n",
              dual_at_1 / dual_best);
  std::printf("  best 1-way speedup: %.2fx\n", one_at_1 / one_best);
  std::printf("  best dual / best 1-way: %.2fx\n", dual_best / one_best);
  std::printf(
      "  (Section 9: term-level parallelism rescues dual-stage's giant\n"
      "   Comp(Q5, all-6) = 63 independent terms, but its ~5x extra total\n"
      "   work keeps the 1-way plan ahead — \"any benefit ... may be\n"
      "   offset by an increase in total work\".)\n");
  return 0;
}
