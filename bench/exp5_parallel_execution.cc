// Section 9, measured: stage-parallel execution of update strategies with
// real worker threads.
//
// The paper stops at the trade-off ("the benefit ... may be offset by an
// increase in total work"); this bench runs it: the 1-way MinWork plan
// (least work, few stages usable), the dual-stage plan (more parallelism,
// ~5x work), both staged by conflict analysis and executed on the shared
// pool, across worker counts — each with intra-operator (morsel) kernels
// OFF and ON, so the two parallelism levels are separable in the writeup.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/parallel_executor.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Experiment 5 (Section 9, measured): stage-parallel execution",
      "TPC-D SF=" + std::to_string(env.scale_factor) + ", 10% deletions");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&pristine, 0.10, 0.0, env.seed);

  Strategy one_way =
      MinWork(pristine.vdag(), pristine.EstimatedSizes()).strategy;
  Strategy dual = MakeDualStageVdagStrategy(pristine.vdag());
  ParallelStrategy p_one = ParallelizeStrategy(pristine.vdag(), one_way);
  ParallelStrategy p_dual = ParallelizeStrategy(pristine.vdag(), dual);
  unsigned cores = std::thread::hardware_concurrency();
  // Intra-op OFF = a 1-thread pool (sequential kernels, the pre-morsel
  // executor); ON = the WUW_THREADS-sized global pool shared with the
  // stage/term workers.
  ThreadPool sequential_pool(1);
  ThreadPool& morsel_pool = ThreadPool::Global();
  std::printf(
      "  stages: 1-way=%zu  dual-stage=%zu   (machine cores: %u, "
      "WUW_THREADS pool: %d)\n",
      p_one.stages.size(), p_dual.stages.size(), cores,
      morsel_pool.parallelism());
  if (cores <= 1) {
    std::printf("  NOTE: single-core host — expect NO wall-clock speedup;\n"
                "  thread-safety/convergence is covered by "
                "parallel_executor_test.\n");
  }
  if (morsel_pool.parallelism() <= 1) {
    std::printf("  NOTE: WUW_THREADS=1 pool — intra-op ON == OFF below.\n");
  }
  std::printf("\n");

  auto run = [&](const ParallelStrategy& stages, int workers,
                 int term_workers, ThreadPool* pool) {
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Warehouse clone = pristine.Clone();
      ParallelExecutorOptions exec_options;
      exec_options.workers = workers;
      exec_options.term_workers = term_workers;
      exec_options.pool = pool;
      ParallelExecutor executor(&clone, exec_options);
      ParallelExecutionReport report = executor.Execute(stages);
      best = std::min(best, report.total_seconds);
    }
    return best;
  };

  std::printf("  %-22s | %-21s | %-21s\n", "", "1-way (MinWork)",
              "dual + term-par");
  std::printf("  %8s  %10s | %9s  %9s | %9s  %9s\n", "workers", "intra-op",
              "off", "on", "off", "on");
  double one_at_1 = 0, dual_at_1 = 0, dual_best = 1e30, one_best = 1e30;
  for (int workers : {1, 2, 4, 8}) {
    double one_off = run(p_one, workers, workers, &sequential_pool);
    double one_on = run(p_one, workers, workers, &morsel_pool);
    double dual_off = run(p_dual, workers, workers, &sequential_pool);
    double dual_on = run(p_dual, workers, workers, &morsel_pool);
    if (workers == 1) {
      one_at_1 = one_off;
      dual_at_1 = dual_off;
    }
    one_best = std::min(one_best, std::min(one_off, one_on));
    dual_best = std::min(dual_best, std::min(dual_off, dual_on));
    std::printf("  %8d  %10s | %8.3fs  %8.3fs | %8.3fs  %8.3fs\n", workers,
                "", one_off, one_on, dual_off, dual_on);
  }
  std::printf(
      "\n  best 1-way speedup vs 1-worker intra-op-off: %.2fx\n",
      one_at_1 / one_best);
  std::printf("  best dual-stage speedup vs its baseline: %.2fx\n",
              dual_at_1 / dual_best);
  std::printf("  best dual / best 1-way: %.2fx\n", dual_best / one_best);
  std::printf(
      "  (Section 9: term-level parallelism rescues dual-stage's giant\n"
      "   Comp(Q5, all-6) = 63 independent terms, and morsel-level\n"
      "   parallelism speeds the 1-way plan's few big expressions — but\n"
      "   dual's ~5x extra total work keeps the 1-way plan ahead: \"any\n"
      "   benefit ... may be offset by an increase in total work\".)\n");
  return 0;
}
