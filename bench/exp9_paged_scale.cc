// Experiment 9 (repro extension, not in the paper): beyond-RAM scale.
// The paper assumes the warehouse fits in memory; the WUW_MEM_MB paged
// tier (storage/paged_store.h) removes that assumption by keeping the
// resident extent set under a byte budget and hibernating the rest to
// CRC-framed page images, with grace-partition spills in the join and
// aggregation kernels.  This bench prices the whole spectrum on the
// TPC-D Q3/Q5/Q10 fixture under the paper's 10%-deletion workload:
//
//   * BM_UpdateWindowResident       — no pager: the in-memory baseline
//     every other configuration is differentially verified against.
//   * BM_UpdateWindowArmedResident  — pager armed at a budget above the
//     footprint: the cost of beyond-RAM *readiness* (per-touch LRU
//     bookkeeping, zero faults).
//   * BM_UpdateWindowPaged/N        — budget at 1/N of the resident
//     footprint: real hibernate/fault traffic plus operator spills, the
//     beyond-RAM operating points.
//
// Every measured window is verified ContentsEqual against the resident
// reference and the bench aborts on any divergence, so timings are only
// reported for bit-identical executions.  Per-iteration paged counters
// (faults, evictions, spilled partitions) are reported alongside wall
// time.  CI publishes the gbench JSON as BENCH_paged.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/check.h"
#include "core/min_work.h"
#include "exec/executor.h"
#include "storage/page.h"
#include "storage/paged_store.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.005;
  o.seed = 42;
  return o;
}

/// The Q3/Q5/Q10 warehouse with the paper's change workload pending,
/// cloned (deltas included) per measured window.
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(
        tpcd::MakeTpcdWarehouse(Options(), {"Q3", "Q5", "Q10"}));
    tpcd::ApplyPaperChangeWorkload(wh, 0.10, 0.0, Options().seed);
    return wh;
  }();
  return *w;
}

const Strategy& WindowStrategy() {
  static Strategy* s = new Strategy(
      MinWork(BatchedWarehouse().vdag(), BatchedWarehouse().EstimatedSizes())
          .strategy);
  return *s;
}

/// The resident ground truth: the strategy executed once with no pager.
const Warehouse& ResidentTruth() {
  static Warehouse* truth = [] {
    auto* t = new Warehouse(BatchedWarehouse().Clone());
    Executor(t).Execute(WindowStrategy());
    return t;
  }();
  return *truth;
}

/// Analytic image bytes of every extent — the footprint the budget
/// fractions divide (same costing the pager itself uses).
int64_t ResidentFootprintBytes() {
  static int64_t bytes = [] {
    const Catalog& catalog = BatchedWarehouse().catalog();
    int64_t total = 0;
    for (const std::string& name : catalog.table_names()) {
      total += paged::ApproxTableBytes(*catalog.MustGetTable(name));
    }
    return total;
  }();
  return bytes;
}

void VerifyAgainstTruth(Warehouse& w) {
  WUW_CHECK(w.catalog().ContentsEqual(ResidentTruth().catalog()),
            "paged window diverged from the resident reference");
}

// The in-memory baseline the paper's experiments assume.
void BM_UpdateWindowResident(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    state.ResumeTiming();
    Executor(&clone).Execute(WindowStrategy());
    state.PauseTiming();
    VerifyAgainstTruth(clone);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_UpdateWindowResident)->Unit(benchmark::kMillisecond);

// Pager armed at a budget comfortably above the footprint: pure
// bookkeeping, no faults, no spills — the readiness tax.
void BM_UpdateWindowArmedResident(benchmark::State& state) {
  paged::PagedOptions options;
  options.budget_bytes = int64_t{1} << 30;
  int64_t faults = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    clone.EnablePaging(options);
    state.ResumeTiming();
    Executor(&clone).Execute(WindowStrategy());
    state.PauseTiming();
    faults += clone.paged_store()->faults();
    VerifyAgainstTruth(clone);
    state.ResumeTiming();
  }
  state.counters["faults"] =
      benchmark::Counter(static_cast<double>(faults),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_UpdateWindowArmedResident)->Unit(benchmark::kMillisecond);

// Budget at footprint/N: extents hibernate and fault under LRU, and the
// spill threshold (budget/4 via ResolvedSpillBytes) pushes the large
// joins through their grace-partition paths.  state.range(0) is N.
void BM_UpdateWindowPaged(benchmark::State& state) {
  ResidentTruth();  // build the reference before arming spills
  const int64_t divisor = state.range(0);
  paged::PagedOptions options;
  options.budget_bytes =
      std::max<int64_t>(1, ResidentFootprintBytes() / divisor);
  options.page_bytes = 4 << 10;
  paged::ScopedOperatorSpill spill(options);
  int64_t faults = 0;
  int64_t evictions = 0;
  int64_t spilled = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Warehouse clone = BatchedWarehouse().Clone();
    clone.EnablePaging(options);
    const paged::PagedStatsSnapshot before = paged::GlobalPagedStats();
    state.ResumeTiming();
    Executor(&clone).Execute(WindowStrategy());
    state.PauseTiming();
    faults += clone.paged_store()->faults();
    evictions += clone.paged_store()->evictions();
    spilled +=
        paged::GlobalPagedStats().spilled_partitions -
        before.spilled_partitions;
    VerifyAgainstTruth(clone);
    state.ResumeTiming();
  }
  using benchmark::Counter;
  state.counters["faults"] = Counter(static_cast<double>(faults),
                                     Counter::kAvgIterations);
  state.counters["evictions"] = Counter(static_cast<double>(evictions),
                                        Counter::kAvgIterations);
  state.counters["spilled_partitions"] =
      Counter(static_cast<double>(spilled), Counter::kAvgIterations);
  state.counters["budget_bytes"] =
      Counter(static_cast<double>(options.budget_bytes));
}
BENCHMARK(BM_UpdateWindowPaged)
    ->Arg(2)    // half the footprint: moderate pressure
    ->Arg(8)    // an eighth: most extents live on disk
    ->Arg(64)   // deep beyond-RAM: everything pages, every big join spills
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
