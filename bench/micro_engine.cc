// Micro-benchmarks for the relational substrate: hash join, grouped
// aggregation, delta install, and maintenance-term evaluation on TPC-D
// data.
#include <benchmark/benchmark.h>

#include "algebra/aggregate.h"
#include "algebra/hash_join.h"
#include "delta/install.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"
#include "view/comp_term.h"
#include "view/recompute.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.005;
  o.seed = 42;
  return o;
}

const Warehouse& SharedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    return wh;
  }();
  return *w;
}

void BM_HashJoinOrdersLineitem(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows orders = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kOrders));
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  for (auto _ : state) {
    OperatorStats stats;
    Rows out = HashJoin(orders, lineitem,
                        JoinKeys{{"o_orderkey"}, {"l_orderkey"}}, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (orders.rows.size() + lineitem.rows.size()));
}
BENCHMARK(BM_HashJoinOrdersLineitem);

void BM_AggregateLineitemByOrder(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("l_extendedprice"), "s"},
      {AggFn::kCount, nullptr, "c"}};
  for (auto _ : state) {
    Rows out = AggregateSigned(lineitem, {"l_orderkey"}, aggs, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * lineitem.rows.size());
}
BENCHMARK(BM_AggregateLineitemByOrder);

void BM_InstallDelta(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  const Table& orders = *w.catalog().MustGetTable(tpcd::kOrders);
  DeltaRelation delta = tpcd::MakeDeletionDelta(orders, 0.1, 7);
  for (auto _ : state) {
    state.PauseTiming();
    Table copy(orders.schema());
    orders.ForEach([&](const Tuple& t, int64_t c) { copy.Add(t, c); });
    state.ResumeTiming();
    Install(delta, &copy, nullptr);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * delta.AbsCardinality());
}
BENCHMARK(BM_InstallDelta);

void BM_CompOneWayQ3(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  const Table& lineitem = *w.catalog().MustGetTable(tpcd::kLineitem);
  DeltaRelation delta = tpcd::MakeDeletionDelta(lineitem, 0.1, 9);
  DeltaProvider provider = [&](const std::string&) { return &delta; };
  const ViewDefinition& def = *w.vdag().definition("Q3");
  for (auto _ : state) {
    CompEvalResult r = EvalComp(def, {tpcd::kLineitem}, w.catalog(), provider,
                                {}, nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompOneWayQ3);

void BM_CompDualStageQ3(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  DeltaRelation dc = tpcd::MakeDeletionDelta(
      *w.catalog().MustGetTable(tpcd::kCustomer), 0.1, 11);
  DeltaRelation dor = tpcd::MakeDeletionDelta(
      *w.catalog().MustGetTable(tpcd::kOrders), 0.1, 12);
  DeltaRelation dl = tpcd::MakeDeletionDelta(
      *w.catalog().MustGetTable(tpcd::kLineitem), 0.1, 13);
  DeltaProvider provider = [&](const std::string& n) -> const DeltaRelation* {
    if (n == tpcd::kCustomer) return &dc;
    if (n == tpcd::kOrders) return &dor;
    return &dl;
  };
  const ViewDefinition& def = *w.vdag().definition("Q3");
  for (auto _ : state) {
    CompEvalResult r =
        EvalComp(def, {tpcd::kCustomer, tpcd::kOrders, tpcd::kLineitem},
                 w.catalog(), provider, {}, nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompDualStageQ3);

// Memory line for the flat open-addressing tuple index: rebuilds lineitem
// row by row (the Add-heavy path the index serves) and reports the index
// heap bytes total and per distinct row.
void BM_TableIndexFootprint(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  const Table& lineitem = *w.catalog().MustGetTable(tpcd::kLineitem);
  for (auto _ : state) {
    Table copy(lineitem.schema());
    lineitem.ForEach([&](const Tuple& t, int64_t c) { copy.Add(t, c); });
    benchmark::DoNotOptimize(copy);
    state.counters["index_bytes"] = static_cast<double>(copy.IndexBytes());
    state.counters["index_bytes_per_row"] =
        static_cast<double>(copy.IndexBytes()) /
        static_cast<double>(copy.distinct_size());
  }
  state.SetItemsProcessed(state.iterations() * lineitem.distinct_size());
}
BENCHMARK(BM_TableIndexFootprint);

void BM_RecomputeQ3(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  const ViewDefinition& def = *w.vdag().definition("Q3");
  for (auto _ : state) {
    Table t = RecomputeView(def, w.catalog(), nullptr);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RecomputeQ3);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
