// Micro-benchmarks for the snapshot-read layer (storage/read_snapshot.h,
// exec/warehouse.cc publish path), fault-point style (see micro_fault.cc,
// micro_obs.cc, micro_window.cc): the acceptance criterion is that a
// DISARMED OpenSnapshot — the state every warehouse runs in when
// WUW_READERS is unset and EnableSnapshotReads() was never called — costs
// a few ns (one disarmed metric load + a pointer/epoch copy), and that an
// ARMED open is one copy of the published shared_ptr under a mutex held
// for just that copy, with no allocation.  The publish and copy-on-write
// detach paths — paid
// once per commit / once per first-write-after-publish, never per read —
// are measured alongside so regressions in the expensive-but-rare half of
// the seam are visible too.
#include <benchmark/benchmark.h>

#include <string>

#include "core/strategy_space.h"
#include "exec/executor.h"
#include "parallel/read_driver.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A quiesced Q3 warehouse that never arms snapshots: the zero-cost
/// baseline configuration.
Warehouse& DisarmedWarehouse() {
  static Warehouse* w =
      new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
  return *w;
}

/// The same fixture with snapshot reads armed and one state published.
Warehouse& ArmedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    wh->EnableSnapshotReads();
    return wh;
  }();
  return *w;
}

// The disarmed open: live fallback handle (catalog pointer + epoch).  This
// is what tier-1 and every paper bench pay when WUW_READERS is unset — it
// must stay within a few ns of a no-op.
void BM_OpenSnapshotDisarmed(benchmark::State& state) {
  const Warehouse& w = DisarmedWarehouse();
  for (auto _ : state) {
    ReadSnapshot snapshot = w.OpenSnapshot();
    benchmark::DoNotOptimize(&snapshot);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenSnapshotDisarmed);

// The armed open: one locked copy of the published state, refcount bump.
// This is the per-session coordination cost readers pay while
// maintenance runs — the paper's "zero-downtime" claim in ns.
void BM_OpenSnapshotArmed(benchmark::State& state) {
  const Warehouse& w = ArmedWarehouse();
  for (auto _ : state) {
    ReadSnapshot snapshot = w.OpenSnapshot();
    benchmark::DoNotOptimize(&snapshot);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenSnapshotArmed);

// A full publish: snapshot-state rebuild (name/table vector copy, no row
// copies) + release store.  Paid once per committed window, never by
// readers.
void BM_PublishSnapshot(benchmark::State& state) {
  Warehouse& w = ArmedWarehouse();
  for (auto _ : state) {
    w.EnableSnapshotReads();  // idempotent arm + republish of current state
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PublishSnapshot);

// First write after a publish: the copy-on-write detach clones the extent
// so the pinned snapshot stays frozen.  Paid once per (extent, window) —
// the dominant cost of being armed, and the one to watch against table
// size.
void BM_CowDetachAfterPublish(benchmark::State& state) {
  Warehouse& w = ArmedWarehouse();
  const std::string base = w.vdag().BaseViews().front();
  for (auto _ : state) {
    w.EnableSnapshotReads();  // republish: marks every extent clean
    benchmark::DoNotOptimize(w.base_table(base));  // detaches a copy
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CowDetachAfterPublish)->Unit(benchmark::kMicrosecond);

// One full reader session against a pinned snapshot (fingerprint scans,
// no SQL): the unit of work exp8_reader_throughput drives in bulk.
void BM_ReaderSession(benchmark::State& state) {
  Warehouse& w = ArmedWarehouse();
  ReadSessionOptions options;
  options.sessions = 1;
  options.scans_per_session = 2;
  options.fingerprint_rows = 256;
  for (auto _ : state) {
    ReadSessionReport report = RunReadSessions(w, options);
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReaderSession)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
