// Micro-benchmarks for the io::Env seam (src/io/env.h), keep-it-honest
// style (see micro_obs.cc / micro_paged.cc): every durable artifact now
// routes through a virtual Env instead of hand-rolled stdio, and the
// acceptance criterion is that the disarmed seam — Env::Default() over the
// same stdio-buffered primitives — stays within noise of direct stream
// I/O for the buffered-write and whole-file-read shapes the snapshot,
// journal, and page layers actually use.  AtomicWriteFile is measured
// alongside so the price of the full crash discipline (fsync file, rename,
// fsync parent dir) is visible instead of folklore: those fsyncs are the
// whole point, not overhead to optimize away.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "io/env.h"

namespace wuw {
namespace {

constexpr size_t kChunk = 4 << 10;    // a journal-entry-sized append
constexpr int kChunksPerFile = 64;    // ~256 KiB per written file

std::string BenchPath(const char* name) {
  return "/tmp/wuw_micro_io_" + std::string(name);
}

const std::string& Payload() {
  static const std::string* payload = new std::string(kChunk, 'x');
  return *payload;
}

// Direct stdio append loop — what exec/journal.cc and io/snapshot.cc did
// before the seam.
void BM_DirectStreamWrite(benchmark::State& state) {
  const std::string path = BenchPath("direct_write");
  for (auto _ : state) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    for (int i = 0; i < kChunksPerFile; ++i) {
      std::fwrite(Payload().data(), 1, Payload().size(), f);
    }
    std::fclose(f);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kChunksPerFile * kChunk);
  std::remove(path.c_str());
}
BENCHMARK(BM_DirectStreamWrite);

// The same loop through Env::Default()->NewWritableFile: one virtual call
// per append on top of the identical stdio buffering.  Must be within
// noise of BM_DirectStreamWrite.
void BM_EnvWritableWrite(benchmark::State& state) {
  const std::string path = BenchPath("env_write");
  io::Env* env = io::Env::Default();
  for (auto _ : state) {
    std::unique_ptr<io::WritableFile> f;
    std::string error = env->NewWritableFile(path, &f);
    if (!error.empty()) state.SkipWithError(error.c_str());
    for (int i = 0; i < kChunksPerFile; ++i) (void)f->Append(Payload());
    (void)f->Close();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kChunksPerFile * kChunk);
  env->RemoveFile(path);
}
BENCHMARK(BM_EnvWritableWrite);

// Direct whole-file read via ifstream — the old LoadWarehouse/LoadJournal
// shape.
void BM_DirectStreamRead(benchmark::State& state) {
  const std::string path = BenchPath("direct_read");
  {
    std::ofstream out(path, std::ios::binary);
    for (int i = 0; i < kChunksPerFile; ++i) {
      out.write(Payload().data(),
                static_cast<std::streamsize>(Payload().size()));
    }
  }
  for (auto _ : state) {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    benchmark::DoNotOptimize(contents);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kChunksPerFile * kChunk);
  std::remove(path.c_str());
}
BENCHMARK(BM_DirectStreamRead);

// The same read through Env::Default()->ReadFileToString.
void BM_EnvReadFileToString(benchmark::State& state) {
  const std::string path = BenchPath("env_read");
  io::Env* env = io::Env::Default();
  {
    std::unique_ptr<io::WritableFile> f;
    (void)env->NewWritableFile(path, &f);
    for (int i = 0; i < kChunksPerFile; ++i) (void)f->Append(Payload());
    (void)f->Close();
  }
  for (auto _ : state) {
    std::string contents;
    std::string error = env->ReadFileToString(path, &contents);
    if (!error.empty()) state.SkipWithError(error.c_str());
    benchmark::DoNotOptimize(contents);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kChunksPerFile * kChunk);
  env->RemoveFile(path);
}
BENCHMARK(BM_EnvReadFileToString);

// The full crash-atomic discipline: write tmp, fsync, rename, fsync parent
// dir.  Dominated by the two fsyncs — this is the durable-commit price a
// snapshot/journal/image save pays per file, reported for visibility (it
// has no cheap baseline to match; skipping the fsyncs is the bug the seam
// exists to fix).
void BM_AtomicWriteFile(benchmark::State& state) {
  const std::string path = BenchPath("atomic_write");
  io::Env* env = io::Env::Default();
  std::string contents;
  for (int i = 0; i < kChunksPerFile; ++i) contents += Payload();
  for (auto _ : state) {
    std::string error;
    if (!io::AtomicWriteFile(env, path, contents, &error)) {
      state.SkipWithError(error.c_str());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kChunksPerFile * kChunk);
  env->RemoveFile(path);
}
BENCHMARK(BM_AtomicWriteFile)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
