// Experiment 3 (Figure 14): Q3 update window as the change fraction p
// sweeps 2%..10%, comparing MinWorkSingle, the best 2-way strategy (from
// Figure 12), and dual-stage.
//
// The paper's shape: MinWorkSingle dominates across the whole range, with
// all three series growing in p.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/min_work_single.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.05);
  bench::PrintHeader("Experiment 3 (Figure 14): Q3 under varying % changes",
                     "TPC-D SF=" + std::to_string(env.scale_factor) +
                         "; deletions of C, O, L by p%");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3"},
                                             /*only_referenced_bases=*/true);

  std::printf("  %4s  %22s  %22s  %22s\n", "p%",
              "MinWorkSingle (work)", "Best2Way (work)", "Dual-stage (work)");

  for (int p = 2; p <= 10; p += 2) {
    Warehouse warehouse = pristine.Clone();
    tpcd::ApplyPaperChangeWorkload(&warehouse, p / 100.0, 0.0,
                                   env.seed + p);

    SizeMap sizes = warehouse.EstimatedSizes();
    Strategy mws = MinWorkSingle(warehouse.vdag(), "Q3", sizes);

    // Best 2-way: enumerate the partitions with max block 2, pick the one
    // with the least estimated work (what a WHA armed with the metric
    // would do), then measure it.
    const auto& sources = warehouse.vdag().sources("Q3");
    Strategy best2;
    double best2_work = 0;
    bool have2 = false;
    for (const OrderedPartition& partition :
         EnumerateOrderedPartitions(sources.size())) {
      size_t max_block = 0;
      for (const auto& b : partition) max_block = std::max(max_block, b.size());
      if (max_block != 2) continue;
      Strategy s = MakeViewStrategy("Q3", sources, partition);
      double w = EstimateStrategyWork(warehouse.vdag(), s, sizes, {}).total;
      if (!have2 || w < best2_work) {
        have2 = true;
        best2_work = w;
        best2 = s;
      }
    }
    Strategy dual = MakeDualStageViewStrategy("Q3", sources);

    std::vector<ExecutionReport> reports =
        bench::MeasureInterleaved(warehouse, {mws, best2, dual}, 3);
    std::printf("  %4d  %9.3fs (%8lld)  %9.3fs (%8lld)  %9.3fs (%8lld)\n", p,
                reports[0].total_seconds,
                (long long)reports[0].total_linear_work,
                reports[1].total_seconds,
                (long long)reports[1].total_linear_work,
                reports[2].total_seconds,
                (long long)reports[2].total_linear_work);
  }
  std::printf("\n  (paper: MWS lowest across 2..10%%; gaps widen with p)\n");
  return 0;
}
