// Experiment 7 (system extension): the cost of SHRINKING the update
// window by splitting it.  The paper's premise is a warehouse that is
// offline while maintenance runs; window budgets bound each outage
// instead, pausing the strategy at a step boundary and carrying the rest
// into later windows (exec/window_budget.h).  This bench measures what
// that costs: one run of the MinWork plan split into k windows via a
// work budget of ceil(total/k), against the uninterrupted baseline.
//
// Two baselines separate the overhead sources: a limiting budget forces
// journaling (that is what makes the pause durable), so "journal on,
// 1 window" isolates the journal's share from the pause/resume chain's.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "exec/journal.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.02);
  bench::PrintHeader(
      "Experiment 7 (extension): k-way window splits under a work budget",
      "TPC-D SF=" + std::to_string(env.scale_factor) + ", 10% deletions");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&pristine, 0.10, 0.0, env.seed);
  Strategy plan = MinWork(pristine.vdag(), pristine.EstimatedSizes()).strategy;

  // Uninterrupted baselines (best of 3 each).
  ExecutionReport plain = bench::RunOnCloneBest(pristine, plan);
  ExecutorOptions journal_options;
  journal_options.journal = true;
  ExecutionReport journaled =
      bench::RunOnCloneBest(pristine, plan, 3, journal_options);
  const int64_t total_work = plain.total_linear_work;
  std::printf("  plan: %zu steps, linear work %lld\n", plan.size(),
              static_cast<long long>(total_work));
  std::printf("  %-26s %9.3fs\n", "baseline (no journal)",
              plain.total_seconds);
  std::printf("  %-26s %9.3fs  (+%.1f%%)\n\n", "baseline (journal on)",
              journaled.total_seconds,
              100.0 * (journaled.total_seconds / plain.total_seconds - 1.0));

  std::printf("  %6s | %8s | %10s | %10s | %9s | %8s\n", "k", "windows",
              "total", "vs plain", "carryover", "journal");
  for (int64_t k : {1, 2, 4, 8, 16}) {
    const int64_t budget_work = (total_work + k - 1) / k;
    double best_seconds = 1e30;
    int64_t windows = 0, carryover = 0, journal_bytes = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Warehouse clone = pristine.Clone();
      double seconds = 0;
      int64_t run_windows = 1, run_carryover = 0;
      {
        WindowBudget budget(WindowBudgetOptions{budget_work});
        ExecutorOptions run_options;
        run_options.budget = &budget;
        ExecutionReport first = Executor(&clone, run_options).Execute(plan);
        seconds += first.total_seconds;
        if (first.window_result == WindowResult::kCompleted) {
          journal_bytes = static_cast<int64_t>(
              SerializeJournal(clone.journal()).size());
        }
        while (first.window_result == WindowResult::kPaused) {
          journal_bytes = std::max(
              journal_bytes, static_cast<int64_t>(
                                 SerializeJournal(clone.journal()).size()));
          WindowBudget next(WindowBudgetOptions{budget_work});
          ExecutorOptions resume_options;
          resume_options.budget = &next;
          ResumeReport resumed =
              ResumeStrategy(clone.journal(), &clone, resume_options,
                             ResumeMode::kContinueInPlace);
          seconds += resumed.execution.total_seconds;
          run_carryover += resumed.execution.total_linear_work;
          ++run_windows;
          first.window_result = resumed.window_result;
        }
      }
      if (seconds < best_seconds) {
        best_seconds = seconds;
        windows = run_windows;
        carryover = run_carryover;
      }
    }
    std::printf("  %6lld | %8lld | %9.3fs | %+9.1f%% | %9lld | %6lldB\n",
                static_cast<long long>(k), static_cast<long long>(windows),
                best_seconds,
                100.0 * (best_seconds / plain.total_seconds - 1.0),
                static_cast<long long>(carryover),
                static_cast<long long>(journal_bytes));
  }
  std::printf(
      "\n  (k=1 vs \"journal on\" is the budget's bookkeeping overhead;\n"
      "   the growth with k is the pause/resume chain: one MinWork replan\n"
      "   is amortized away — resume replays the journal, it does not\n"
      "   replan — so the split cost is journal replay + per-window\n"
      "   executor setup.  Work budgets are analytic, so every row above\n"
      "   installs the bit-identical warehouse.)\n");
  return 0;
}
