// Section 9 ablation: parallel VDAG strategies.
//
// Two scenarios:
//  1. The TPC-D VDAG (level 1 only): staging dual-stage vs 1-way shows the
//     parallelism/total-work trade-off; flattening is a no-op there.
//  2. A multi-level mart VDAG (SPJ intermediates feeding summary views):
//     flattening inlines the intermediates so the top views' comps no
//     longer wait on them — more parallelism, strictly more total work.
// "Any benefit that arises from allowing more expressions to run in
// parallel may be offset by an increase in total work" (Section 9).
#include <cstdio>

#include "bench_util.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "parallel/flatten.h"
#include "parallel/parallel_strategy.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace {

using namespace wuw;

Schema TripleSchema(const std::string& name) {
  return Schema({{name + "_k", TypeId::kInt64},
                 {name + "_v", TypeId::kInt64},
                 {name + "_g", TypeId::kInt64}});
}

std::shared_ptr<const ViewDefinition> Spj(const std::string& name,
                                          const std::string& a,
                                          const std::string& b) {
  return ViewDefinitionBuilder(name)
      .From(a)
      .From(b)
      .JoinOn(a + "_k", b + "_k")
      .SelectColumn(a + "_k", name + "_k")
      .Select(ScalarExpr::Arith(ArithOp::kAdd, ScalarExpr::Column(a + "_v"),
                                ScalarExpr::Column(b + "_v")),
              name + "_v")
      .SelectColumn(a + "_g", name + "_g")
      .Build();
}

std::shared_ptr<const ViewDefinition> Agg(const std::string& name,
                                          const std::string& a,
                                          const std::string& b) {
  return ViewDefinitionBuilder(name)
      .From(a)
      .From(b)
      .JoinOn(a + "_k", b + "_k")
      .SelectColumn(a + "_g", name + "_g")
      .Sum(ScalarExpr::Column(a + "_v"), name + "_v")
      .Build();
}

/// A two-level data mart: four base feeds, two SPJ "conformed" middles,
/// two summary tops spanning the middles.
Vdag MartVdag() {
  Vdag vdag;
  for (const char* base : {"A", "B", "C", "D"}) {
    vdag.AddBaseView(base, TripleSchema(base));
  }
  vdag.AddDerivedView(Spj("M1", "A", "B"));
  vdag.AddDerivedView(Spj("M2", "C", "D"));
  vdag.AddDerivedView(Agg("T1", "M1", "M2"));
  vdag.AddDerivedView(Agg("T2", "M2", "M1"));
  return vdag;
}

void PrintScenario(const char* title, const Vdag& vdag, const SizeMap& sizes) {
  Strategy one_way = MinWork(vdag, sizes).strategy;
  Strategy dual = MakeDualStageVdagStrategy(vdag);
  Vdag flat = FlattenVdag(vdag);
  Strategy flat_dual = MakeDualStageVdagStrategy(flat);

  ParallelStrategy p_one = ParallelizeStrategy(vdag, one_way);
  ParallelStrategy p_dual = ParallelizeStrategy(vdag, dual);
  ParallelStrategy p_flat = ParallelizeStrategy(flat, flat_dual);

  std::printf("\n%s\n", title);
  std::printf("  stages: 1-way=%zu dual=%zu flattened-dual=%zu\n",
              p_one.stages.size(), p_dual.stages.size(),
              p_flat.stages.size());
  std::printf("  %8s  %16s  %16s  %16s\n", "workers", "1-way (MinWork)",
              "dual-stage", "flattened dual");
  for (int workers : {1, 2, 4, 8}) {
    MakespanReport one = EstimateMakespan(vdag, p_one, sizes, {}, workers);
    MakespanReport d = EstimateMakespan(vdag, p_dual, sizes, {}, workers);
    MakespanReport f = EstimateMakespan(flat, p_flat, sizes, {}, workers);
    std::printf("  %8d  %16.0f  %16.0f  %16.0f\n", workers, one.makespan,
                d.makespan, f.makespan);
  }
  MakespanReport one1 = EstimateMakespan(vdag, p_one, sizes, {}, 1);
  MakespanReport d1 = EstimateMakespan(vdag, p_dual, sizes, {}, 1);
  MakespanReport f1 = EstimateMakespan(flat, p_flat, sizes, {}, 1);
  std::printf("  total work: 1-way=%.0f dual=%.0f flattened=%.0f\n",
              one1.total_work, d1.total_work, f1.total_work);
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::FromEnv();
  bench::PrintHeader("Ablation (Section 9): parallel strategies",
                     "makespan under the linear metric, k workers");

  {
    tpcd::GeneratorOptions options;
    options.scale_factor = env.scale_factor;
    options.seed = env.seed;
    Warehouse warehouse =
        tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
    tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);
    PrintScenario("TPC-D VDAG (uniform, level 1; flattening is a no-op):",
                  warehouse.vdag(), warehouse.EstimatedSizes());
  }

  {
    Vdag vdag = MartVdag();
    SizeMap sizes;
    for (const char* base : {"A", "B", "C", "D"}) {
      sizes.Set(base, {100000, 10000, -10000});
    }
    sizes.Set("M1", {80000, 15000, -8000});
    sizes.Set("M2", {80000, 15000, -8000});
    sizes.Set("T1", {500, 400, -10});
    sizes.Set("T2", {500, 400, -10});
    PrintScenario(
        "Two-level mart VDAG (flattening inlines the SPJ middles):", vdag,
        sizes);
  }

  std::printf(
      "\n  The flattened plan gains stages (its top-view comps no longer\n"
      "  wait on the middles) but pays more total work — the Section 9\n"
      "  trade-off; \"an algorithm that intelligently decides the extent\n"
      "  to which these techniques should be applied\" is future work.\n");
  return 0;
}
