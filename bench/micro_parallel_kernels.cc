// Micro-benchmarks for the morsel-parallel join and aggregate kernels at
// thread counts {1, 2, 4, 8} and the build/probe shapes of exp1 (Q3:
// LINEITEM probes into an ORDERS build) and exp2 (Q5: a big probe into a
// small dimension build, and the reverse delta shape).
//
// Thread count is the benchmark argument; each count gets its own
// dedicated pool so the gbench JSON separates them cleanly.  On hosts with
// fewer cores than the argument the extra workers time-slice — record the
// host core count next to any numbers (see BENCH_parallel.json).
#include <benchmark/benchmark.h>

#include <map>

#include "algebra/aggregate.h"
#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "parallel/thread_pool.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.02;  // LINEITEM ~120k rows: well past kMinParallelRows
  o.seed = 42;
  return o;
}

const Warehouse& SharedWarehouse() {
  static Warehouse* w =
      new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3", "Q5"}));
  return *w;
}

/// One pool per benchmarked thread count, built on first use and reused
/// across iterations (pool startup is not what we are measuring).
ThreadPool* PoolFor(int threads) {
  static std::map<int, ThreadPool*>* pools = new std::map<int, ThreadPool*>();
  auto it = pools->find(threads);
  if (it == pools->end()) {
    it = pools->emplace(threads, new ThreadPool(threads)).first;
  }
  return it->second;
}

/// exp1 shape: big probe side (LINEITEM) into a medium build (ORDERS).
void BM_ParallelJoinBigProbe(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows orders = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kOrders));
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  ThreadPool* pool = PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rows out = HashJoin(lineitem, orders,
                        JoinKeys{{"l_orderkey"}, {"o_orderkey"}}, nullptr,
                        pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (orders.rows.size() + lineitem.rows.size()));
}
BENCHMARK(BM_ParallelJoinBigProbe)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// exp2 shape: big BUILD side (the probe is the smaller input), stressing
/// the partitioned parallel build rather than the probe fan-out.
void BM_ParallelJoinBigBuild(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows orders = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kOrders));
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  ThreadPool* pool = PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rows out = HashJoin(orders, lineitem,
                        JoinKeys{{"o_orderkey"}, {"l_orderkey"}}, nullptr,
                        pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (orders.rows.size() + lineitem.rows.size()));
}
BENCHMARK(BM_ParallelJoinBigBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Many small groups (group by order key): merge cost is visible.
void BM_ParallelAggregateManyGroups(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("l_extendedprice"), "s"},
      {AggFn::kCount, nullptr, "c"}};
  ThreadPool* pool = PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rows out = AggregateSigned(lineitem, {"l_orderkey"}, aggs, nullptr, pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * lineitem.rows.size());
}
BENCHMARK(BM_ParallelAggregateManyGroups)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Few fat groups (group by return flag): per-partition accumulation
/// dominates, merge is trivial.
void BM_ParallelAggregateFewGroups(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("l_extendedprice"), "s"},
      {AggFn::kCount, nullptr, "c"}};
  ThreadPool* pool = PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rows out =
        AggregateSigned(lineitem, {"l_returnflag"}, aggs, nullptr, pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * lineitem.rows.size());
}
BENCHMARK(BM_ParallelAggregateFewGroups)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The generic morsel path on a selective scan.
void BM_ParallelFilter(benchmark::State& state) {
  const Warehouse& w = SharedWarehouse();
  Rows lineitem = Rows::FromTable(*w.catalog().MustGetTable(tpcd::kLineitem));
  ScalarExpr::Ptr pred = ScalarExpr::Compare(
      CompareOp::kLt, ScalarExpr::Column("l_discount"),
      ScalarExpr::Literal(Value::Int64(300)));
  ThreadPool* pool = PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rows out = Filter(lineitem, pred, nullptr, pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * lineitem.rows.size());
}
BENCHMARK(BM_ParallelFilter)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
