// Experiment 1 (Figure 12): all 13 view strategies for Q3 under 10%
// deletions of CUSTOMER, ORDERS, LINEITEM.
//
// Paper findings to reproduce in shape:
//  * every 1-way strategy beats every 2-way strategy beats dual-stage;
//  * MinWorkSingle is optimal or near-optimal among the 13;
//  * dual-stage is ~2.3x the best strategy.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/min_work_single.h"
#include "core/strategy_space.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.05);
  bench::PrintHeader(
      "Experiment 1 (Figure 12): Q3 view strategies",
      "TPC-D SF=" + std::to_string(env.scale_factor) +
          ", 10% deletions of C, O, L");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3"},
                                             /*only_referenced_bases=*/true);
  tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, env.seed);

  const std::vector<std::string>& sources = warehouse.vdag().sources("Q3");
  Strategy mws = MinWorkSingle(warehouse.vdag(), "Q3",
                               warehouse.EstimatedSizes());

  struct Row {
    std::string label;
    Strategy strategy;
    double seconds = 0;
    int64_t work = 0;
    size_t max_block = 0;
    bool is_mws = false;
  };
  std::vector<Row> rows;
  for (const OrderedPartition& partition :
       EnumerateOrderedPartitions(sources.size())) {
    Row row;
    row.strategy = MakeViewStrategy("Q3", sources, partition);
    row.is_mws = row.strategy == mws;
    for (const auto& block : partition) {
      row.max_block = std::max(row.max_block, block.size());
      row.label += "{";
      for (size_t i = 0; i < block.size(); ++i) {
        if (i > 0) row.label += ",";
        row.label += sources[block[i]][0];  // C / O / L initials
      }
      row.label += "}";
    }
    if (row.max_block == 1) {
      row.label += " 1-way";
    } else if (row.max_block == sources.size()) {
      row.label += " dual-stage";
    } else {
      row.label += " 2-way";
    }
    if (row.is_mws) row.label += " <- MinWorkSingle";
    rows.push_back(std::move(row));
  }

  std::vector<Strategy> strategies;
  for (const Row& row : rows) strategies.push_back(row.strategy);
  std::unique_ptr<SubplanCache> cache = bench::MakeCacheFromEnv(env);
  ExecutorOptions exec_options;
  exec_options.subplan_cache = cache.get();
  std::vector<ExecutionReport> reports =
      bench::MeasureInterleaved(warehouse, strategies, 3, exec_options);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].seconds = reports[i].total_seconds;
    rows[i].work = reports[i].total_linear_work;
  }

  double max_seconds = 0, best_1way = 1e30, best_2way = 1e30, dual = 0,
         mws_seconds = 0, best = 1e30;
  for (const Row& row : rows) {
    max_seconds = std::max(max_seconds, row.seconds);
    best = std::min(best, row.seconds);
    if (row.max_block == 1) best_1way = std::min(best_1way, row.seconds);
    if (row.max_block == 2) best_2way = std::min(best_2way, row.seconds);
    if (row.max_block == 3) dual = row.seconds;
    if (row.is_mws) mws_seconds = row.seconds;
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds < b.seconds; });
  for (const Row& row : rows) {
    bench::PrintBar(row.label, row.seconds, max_seconds, row.work);
  }

  std::printf("\nSummary (paper: 1-way < 2-way < dual-stage; dual ~2.3x):\n");
  std::printf("  best 1-way     : %8.3fs\n", best_1way);
  std::printf("  best 2-way     : %8.3fs  (%.2fx best)\n", best_2way,
              best_2way / best);
  std::printf("  dual-stage     : %8.3fs  (%.2fx best)\n", dual, dual / best);
  std::printf("  MinWorkSingle  : %8.3fs  (%.2fx best)\n", mws_seconds,
              mws_seconds / best);

  // The deterministic row-work ranking (noise-free): verify the paper's
  // class ordering exactly.
  int64_t max_1way = 0, min_2way = INT64_MAX, max_2way = 0, dual_work = 0,
          min_work = INT64_MAX;
  for (const Row& row : rows) {
    min_work = std::min(min_work, row.work);
    if (row.max_block == 1) max_1way = std::max(max_1way, row.work);
    if (row.max_block == 2) {
      min_2way = std::min(min_2way, row.work);
      max_2way = std::max(max_2way, row.work);
    }
    if (row.max_block == 3) dual_work = row.work;
  }
  std::printf("\nRow-work ranking: max 1-way %lld %s min 2-way %lld; "
              "dual %lld = %.2fx best\n",
              (long long)max_1way, max_1way < min_2way ? "<" : ">=",
              (long long)min_2way, (long long)dual_work,
              (double)dual_work / (double)min_work);
  bench::PrintCacheSummary(env, cache.get(), reports);
  return 0;
}
