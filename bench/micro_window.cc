// Micro-benchmarks for the window-budget layer (exec/window_budget.h),
// fault-point style (see micro_fault.cc, micro_obs.cc): the acceptance
// criterion is that a DISARMED cancel check — the state every kernel and
// executor site runs in when no budget is attached — costs one relaxed
// atomic load and stays within noise of the pre-budget engine, and that
// an UNLIMITED budget (pure accounting, no journal) prices the same as no
// budget at all.  Armed variants are measured alongside.
#include <benchmark/benchmark.h>

#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/window_budget.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A Q3 warehouse with a pending deletion batch, cloned per measured run.
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    for (const std::string& base : wh->vdag().BaseViews()) {
      wh->SetBaseDelta(base,
                       tpcd::MakeDeletionDelta(
                           *wh->catalog().MustGetTable(base), 0.05, 7));
    }
    return wh;
  }();
  return *w;
}

// The disarmed cancel fast path: one relaxed load and a predicted branch.
// This is what every morsel/term/plan-node boundary pays when no budget
// (and no deadline) is attached — it must stay indistinguishable from a
// no-op.
void BM_CancelCheckDisarmed(benchmark::State& state) {
  CancelToken token;
  for (auto _ : state) {
    token.Check();
    benchmark::DoNotOptimize(&token);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelCheckDisarmed);

// Poll() is Check() without the throw path — the form the executor's
// ShouldPause uses at step boundaries.
void BM_CancelPollDisarmed(benchmark::State& state) {
  CancelToken token;
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.Poll());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelPollDisarmed);

// Armed with a deadline: the slow path reads steady_clock on every poll.
// Deadline checks ride the same sites as disarmed checks, so this is the
// per-site price of WUW_WINDOW_BUDGET's deadline clause.
void BM_CancelPollDeadlineArmed(benchmark::State& state) {
  CancelToken token;
  token.ArmDeadline(3600.0);  // far future: never fires mid-bench
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.Poll());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelPollDeadlineArmed);

void RunStrategy(WindowBudget* budget) {
  Warehouse clone = BatchedWarehouse().Clone();
  ExecutorOptions options;
  options.budget = budget;
  Executor executor(&clone, options);
  executor.Execute(MakeDualStageVdagStrategy(clone.vdag()));
}

// Full dual-stage update window with no budget — the configuration every
// paper-fidelity bench runs in.  Compare against BM_ExecuteObsDisarmed in
// micro_obs (same fixture): the delta is the compiled-in cancel-check
// instrumentation, which must be noise.
void BM_ExecuteNoBudget(benchmark::State& state) {
  for (auto _ : state) RunStrategy(nullptr);
}
BENCHMARK(BM_ExecuteNoBudget)->Unit(benchmark::kMillisecond);

// Same window under an UNLIMITED budget: work accounting on, token armed
// never firing, journal still off.  The zero-cost guard in
// window_budget_test pins the outputs byte-identical; this pins the time.
void BM_ExecuteUnlimitedBudget(benchmark::State& state) {
  for (auto _ : state) {
    WindowBudget unlimited;
    RunStrategy(&unlimited);
  }
}
BENCHMARK(BM_ExecuteUnlimitedBudget)->Unit(benchmark::kMillisecond);

// Same window under a limiting-but-never-pausing budget: the journal the
// budget forces on is the real price of being pausable.
void BM_ExecuteHugeWorkBudget(benchmark::State& state) {
  for (auto _ : state) {
    WindowBudget huge(WindowBudgetOptions{int64_t{1} << 60});
    RunStrategy(&huge);
  }
}
BENCHMARK(BM_ExecuteHugeWorkBudget)->Unit(benchmark::kMillisecond);

// Same window under a far-future deadline budget: adds the steady_clock
// read at every check site on top of the journal.
void BM_ExecuteDeadlineBudget(benchmark::State& state) {
  for (auto _ : state) {
    WindowBudget deadline(WindowBudgetOptions{-1, 3600.0});
    RunStrategy(&deadline);
  }
}
BENCHMARK(BM_ExecuteDeadlineBudget)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
