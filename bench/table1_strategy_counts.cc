// Table 1: the number of view strategies for a view defined over n views.
//
// Reproduces the paper's Table 1 three ways: Equation (5) in closed form,
// the first-block recurrence, and literal enumeration of ordered set
// partitions.  Also prints the paper's per-query instances (Q3: 13,
// Q5: 4683, Q10: 75) and the 1-way counts motivating Theorem 4.1.
#include <cstdio>

#include "bench_util.h"
#include "core/strategy_space.h"

int main() {
  using namespace wuw;
  bench::PrintHeader(
      "Table 1: Number of View Strategies for a View Defined Over n Views",
      "paper values: 1, 3, 13, 75, 541, 4683");

  std::printf("  %3s  %12s  %12s  %12s  %10s\n", "n", "Eq.(5)", "recurrence",
              "enumerated", "1-way (n!)");
  for (size_t n = 1; n <= 8; ++n) {
    uint64_t closed = CountViewStrategies(n);
    uint64_t rec = CountViewStrategiesRecurrence(n);
    uint64_t enumerated =
        n <= 6 ? EnumerateOrderedPartitions(n).size() : 0;
    uint64_t one_way = 1;
    for (size_t k = 2; k <= n; ++k) one_way *= k;
    if (n <= 6) {
      std::printf("  %3zu  %12llu  %12llu  %12llu  %10llu\n", n,
                  (unsigned long long)closed, (unsigned long long)rec,
                  (unsigned long long)enumerated, (unsigned long long)one_way);
    } else {
      std::printf("  %3zu  %12llu  %12llu  %12s  %10llu\n", n,
                  (unsigned long long)closed, (unsigned long long)rec,
                  "(skipped)", (unsigned long long)one_way);
    }
    if (closed != rec || (n <= 6 && closed != enumerated)) {
      std::printf("  MISMATCH at n=%zu\n", n);
      return 1;
    }
  }

  std::printf("\nTPC-D views (Section 3.1):\n");
  std::printf("  Q3  (3 base views): %llu strategies, %d 1-way\n",
              (unsigned long long)CountViewStrategies(3), 6);
  std::printf("  Q10 (4 base views): %llu strategies, %d 1-way\n",
              (unsigned long long)CountViewStrategies(4), 24);
  std::printf("  Q5  (6 base views): %llu strategies, %d 1-way\n",
              (unsigned long long)CountViewStrategies(6), 720);
  std::printf("\nTheorem 4.1 lets MinWorkSingle search the n! 1-way space\n"
              "instead; Theorem 4.2 collapses it to a sort.\n");
  return 0;
}
