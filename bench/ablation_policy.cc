// Ablation (related work, CKL+97): maintenance policies — WHEN to open
// the update window, with MinWork deciding HOW each window runs.
//
// A week of simulated TPC-D batches flows through three policies:
//   immediate    one window per batch
//   every-3      defer and merge three batches per window
//   threshold-5% defer until pending |δ| reaches 5% of the base data
// Deferral amortizes the per-window full-table scans of the Comp terms
// across more change rows, and merged batches let churn cancel — at the
// price of staler views between windows.
#include <cstdio>

#include "bench_util.h"
#include "policy/maintenance_policy.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

int main() {
  using namespace wuw;
  bench::BenchEnv env = bench::FromEnv(/*default_scale_factor=*/0.01);
  bench::PrintHeader("Ablation: maintenance policies (when to update)",
                     "TPC-D SF=" + std::to_string(env.scale_factor) +
                         "; 14 batches of ~2% churn each");

  tpcd::GeneratorOptions options;
  options.scale_factor = env.scale_factor;
  options.seed = env.seed;
  Warehouse pristine = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});

  struct Candidate {
    const char* label;
    PolicyOptions policy;
  };
  const Candidate candidates[] = {
      {"immediate", PolicyOptions::Immediate()},
      {"every-3", PolicyOptions::EveryK(3)},
      {"every-7", PolicyOptions::EveryK(7)},
      {"threshold-5%", PolicyOptions::Threshold(0.05)},
  };

  std::printf("  %-14s %8s %10s %14s %16s\n", "policy", "windows",
              "wall", "linear work", "rows installed");
  for (const Candidate& c : candidates) {
    Warehouse warehouse = pristine.Clone();
    tpcd::GeneratorOptions stream_options = options;
    tpcd::SourceChangeStream stream(warehouse, stream_options);
    MaintenanceScheduler scheduler(&warehouse, c.policy);
    for (uint64_t batch = 0; batch < 14; ++batch) {
      scheduler.OnBatch(stream.NextBatch(0.02, 0.01));
    }
    scheduler.Flush();
    const PolicyReport& r = scheduler.report();
    std::printf("  %-14s %8lld %9.3fs %14lld %16lld\n", c.label,
                (long long)r.windows_run, r.total_window_seconds,
                (long long)r.total_linear_work,
                (long long)r.rows_installed);
  }

  std::printf(
      "\n  Deferral cuts total window time (fewer full-extent Comp scans)\n"
      "  at the cost of staleness between windows; the per-window MinWork\n"
      "  planning (Section 5) is what each policy executes.\n");
  return 0;
}
