// Micro-benchmarks for the WUW_MEM_MB paged-storage tier
// (storage/paged_store.h, storage/page.h), fault-point style (see
// micro_fault.cc, micro_obs.cc, micro_window.cc): the acceptance
// criterion is that the DISARMED configuration — no WUW_MEM_MB, no
// EnablePaging — costs nothing measurable: the kernels' spill gate is one
// relaxed atomic load and the catalog accessor hook is one null pointer
// test.  The armed-but-resident hook (a mutex + hash lookup + clock
// stamp, paid per executor touch, never per row) and the full
// hibernate/fault-in image roundtrip — the expensive-but-budget-bound
// half of the seam — are measured alongside so regressions stay visible.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "exec/warehouse.h"
#include "storage/page.h"
#include "storage/paged_store.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A Q3 warehouse that never arms paging: the zero-cost baseline.
Warehouse& DisarmedWarehouse() {
  static Warehouse* w =
      new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
  return *w;
}

/// The same fixture with the extent pager armed at a generous budget, so
/// every access is the armed-but-resident fast path.
Warehouse& ArmedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    paged::PagedOptions options;
    options.budget_bytes = int64_t{1} << 30;
    wh->EnablePaging(options);
    return wh;
  }();
  return *w;
}

// The kernels' spill gate with WUW_MEM_MB unset: one relaxed atomic load,
// paid once per HashJoin/Aggregate call.  This is what tier-1 and every
// paper bench pay — it must stay within a few ns of a no-op.
void BM_OperatorSpillGateDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(paged::OperatorSpill());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperatorSpillGateDisarmed);

// Catalog access with no pager attached: the hook is a null pointer test
// on top of the hash lookup every engine path already paid.
void BM_CatalogAccessDisarmed(benchmark::State& state) {
  Warehouse& w = DisarmedWarehouse();
  const std::string name = w.vdag().BaseViews().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.catalog().MustGetTable(name));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CatalogAccessDisarmed);

// Catalog access with the pager armed and the extent resident: mutex +
// entry lookup + last-used stamp.  Paid per accessor call while armed —
// the price of beyond-RAM readiness when nothing is actually paged out.
void BM_CatalogAccessArmedResident(benchmark::State& state) {
  Warehouse& w = ArmedWarehouse();
  const std::string name = w.vdag().BaseViews().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.catalog().MustGetTable(name));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CatalogAccessArmedResident);

// One full hibernate + fault-in cycle of every extent in the fixture:
// image write (skipped when the extent is unchanged since its last image
// — the steady-state this loop settles into), payload release, then
// CRC-checked multi-page read + dense rebuild on next access.  Paid once
// per (extent, eviction), bounded by the budget — never per row.
void BM_HibernateFaultRoundtrip(benchmark::State& state) {
  Warehouse& w = ArmedWarehouse();
  const std::string name = w.vdag().BaseViews().front();
  int64_t rows = 0;
  for (auto _ : state) {
    w.paged_store()->TestOnlyEvictAll(&w.catalog());
    Table* t = w.catalog().MustGetTable(name);
    benchmark::DoNotOptimize(t);
    rows += t->cardinality();
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_HibernateFaultRoundtrip)->Unit(benchmark::kMicrosecond);

// The raw image codec: serialize + CRC-frame + write, then read + verify
// + decode, per row — the floor any paged workload's I/O sits on.
void BM_SaveLoadTableImage(benchmark::State& state) {
  Warehouse& w = DisarmedWarehouse();
  const std::string name = w.vdag().BaseViews().front();
  const Table* t = w.catalog().MustGetTable(name);
  const std::string path = "/tmp/wuw_micro_paged.pages";
  int64_t rows = 0;
  for (auto _ : state) {
    std::string error = paged::SaveTableImage(*t, path, 64 << 10);
    paged::TableImage img;
    bool torn = false;
    paged::LoadTableImage(path, &img, &error, &torn);
    benchmark::DoNotOptimize(img.rows.data());
    rows += static_cast<int64_t>(img.rows.size());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_SaveLoadTableImage)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
