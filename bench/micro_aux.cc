// Micro-benchmarks for the auxiliary-view layer (plan/aux_view.h),
// fault-point style (see micro_fault.cc, micro_obs.cc, micro_window.cc):
// the acceptance criterion is that a DISARMED warehouse — the state every
// run is in when WUW_AUX_VIEWS is unset and EnableAuxViews() was never
// called — pays only null-pointer checks at the three integration seams
// (TallyComp after each Comp, binding-snapshot attach in the Comp lowering
// options, AuxCommit in ResetBatch), staying within noise of the
// pre-aux engine.  The armed advisor paths (tally, window close, binding
// lookup) are measured alongside so the bookkeeping the promotion
// machinery adds per window is visible and bounded.
#include <benchmark/benchmark.h>

#include "core/strategy_space.h"
#include "exec/executor.h"
#include "plan/aux_view.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

tpcd::GeneratorOptions Options() {
  tpcd::GeneratorOptions o;
  o.scale_factor = 0.002;
  o.seed = 42;
  return o;
}

/// A Q3 warehouse with a pending deletion batch, cloned per measured run.
const Warehouse& BatchedWarehouse() {
  static Warehouse* w = [] {
    auto* wh = new Warehouse(tpcd::MakeTpcdWarehouse(Options(), {"Q3"}));
    for (const std::string& base : wh->vdag().BaseViews()) {
      wh->SetBaseDelta(base,
                       tpcd::MakeDeletionDelta(
                           *wh->catalog().MustGetTable(base), 0.05, 7));
    }
    return wh;
  }();
  return *w;
}

void RunStrategy(bool arm_tally_only) {
  Warehouse clone = BatchedWarehouse().Clone();
  if (arm_tally_only) {
    AuxViewOptions options;
    options.auto_promote = false;  // advisor observes, never materializes
    clone.EnableAuxViews(options);
  }
  Executor executor(&clone);
  executor.Execute(MakeDualStageVdagStrategy(clone.vdag()));
}

// Full dual-stage update window with no registry attached — the
// configuration every paper-fidelity bench runs in.  Compare against
// BM_ExecuteNoBudget in micro_window (same fixture): the delta is the
// compiled-in aux seams (three pointer checks per step + one per
// ResetBatch), which must be noise.
void BM_ExecuteAuxDisarmed(benchmark::State& state) {
  for (auto _ : state) RunStrategy(/*arm_tally_only=*/false);
}
BENCHMARK(BM_ExecuteAuxDisarmed)->Unit(benchmark::kMillisecond);

// Same window with the advisor armed in tally-only mode: per-Comp prefix
// tallies plus the per-commit window close, but no materialization and no
// substitution.  aux_view_property_test pins the outputs byte-identical
// to disarmed; this pins the time.
void BM_ExecuteAuxTallyOnly(benchmark::State& state) {
  for (auto _ : state) RunStrategy(/*arm_tally_only=*/true);
}
BENCHMARK(BM_ExecuteAuxTallyOnly)->Unit(benchmark::kMillisecond);

// One TallyComp call in isolation: the per-Comp-step advisor charge (map
// upserts per eligible prefix length under a mutex).
void BM_TallyComp(benchmark::State& state) {
  const Warehouse& w = BatchedWarehouse();
  AuxViewRegistry registry({});
  const ViewDefinition& def = *w.vdag().definition("Q3");
  std::vector<std::string> over = def.sources();
  for (auto _ : state) {
    registry.TallyComp(def, over);
    benchmark::DoNotOptimize(&registry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TallyComp);

// One snapshot() fetch: what MakeCompEvalOptions pays per Comp step on an
// armed warehouse (shared_ptr copy under a mutex).
void BM_BindingSnapshotFetch(benchmark::State& state) {
  AuxViewRegistry registry({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BindingSnapshotFetch);

// One CloseWindow + Restamp round on a tallied registry with nothing
// eligible: the fixed per-commit cost AuxCommit adds to ResetBatch on an
// armed warehouse that never promotes.
void BM_CloseWindowNothingEligible(benchmark::State& state) {
  const Warehouse& w = BatchedWarehouse();
  AuxViewOptions options;
  options.auto_promote = false;
  AuxViewRegistry registry(options);
  const ViewDefinition& def = *w.vdag().definition("Q3");
  registry.TallyComp(def, def.sources());
  auto version_of = [](const std::string&) { return int64_t{0}; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.CloseWindow(w.vdag(), w.catalog()));
    registry.Restamp(version_of, w.catalog());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CloseWindowNothingEligible);

}  // namespace
}  // namespace wuw

BENCHMARK_MAIN();
