
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/aggregate.cc" "src/CMakeFiles/wuw.dir/algebra/aggregate.cc.o" "gcc" "src/CMakeFiles/wuw.dir/algebra/aggregate.cc.o.d"
  "/root/repo/src/algebra/filter.cc" "src/CMakeFiles/wuw.dir/algebra/filter.cc.o" "gcc" "src/CMakeFiles/wuw.dir/algebra/filter.cc.o.d"
  "/root/repo/src/algebra/hash_join.cc" "src/CMakeFiles/wuw.dir/algebra/hash_join.cc.o" "gcc" "src/CMakeFiles/wuw.dir/algebra/hash_join.cc.o.d"
  "/root/repo/src/algebra/operator_stats.cc" "src/CMakeFiles/wuw.dir/algebra/operator_stats.cc.o" "gcc" "src/CMakeFiles/wuw.dir/algebra/operator_stats.cc.o.d"
  "/root/repo/src/algebra/project.cc" "src/CMakeFiles/wuw.dir/algebra/project.cc.o" "gcc" "src/CMakeFiles/wuw.dir/algebra/project.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/wuw.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/correctness.cc" "src/CMakeFiles/wuw.dir/core/correctness.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/correctness.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "src/CMakeFiles/wuw.dir/core/exhaustive.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/exhaustive.cc.o.d"
  "/root/repo/src/core/expression.cc" "src/CMakeFiles/wuw.dir/core/expression.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/expression.cc.o.d"
  "/root/repo/src/core/expression_graph.cc" "src/CMakeFiles/wuw.dir/core/expression_graph.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/expression_graph.cc.o.d"
  "/root/repo/src/core/min_work.cc" "src/CMakeFiles/wuw.dir/core/min_work.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/min_work.cc.o.d"
  "/root/repo/src/core/min_work_single.cc" "src/CMakeFiles/wuw.dir/core/min_work_single.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/min_work_single.cc.o.d"
  "/root/repo/src/core/prune.cc" "src/CMakeFiles/wuw.dir/core/prune.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/prune.cc.o.d"
  "/root/repo/src/core/simplify.cc" "src/CMakeFiles/wuw.dir/core/simplify.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/simplify.cc.o.d"
  "/root/repo/src/core/size_estimator.cc" "src/CMakeFiles/wuw.dir/core/size_estimator.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/size_estimator.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/CMakeFiles/wuw.dir/core/strategy.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/strategy.cc.o.d"
  "/root/repo/src/core/strategy_space.cc" "src/CMakeFiles/wuw.dir/core/strategy_space.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/strategy_space.cc.o.d"
  "/root/repo/src/core/transform.cc" "src/CMakeFiles/wuw.dir/core/transform.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/transform.cc.o.d"
  "/root/repo/src/core/work_metric.cc" "src/CMakeFiles/wuw.dir/core/work_metric.cc.o" "gcc" "src/CMakeFiles/wuw.dir/core/work_metric.cc.o.d"
  "/root/repo/src/delta/delta_relation.cc" "src/CMakeFiles/wuw.dir/delta/delta_relation.cc.o" "gcc" "src/CMakeFiles/wuw.dir/delta/delta_relation.cc.o.d"
  "/root/repo/src/delta/install.cc" "src/CMakeFiles/wuw.dir/delta/install.cc.o" "gcc" "src/CMakeFiles/wuw.dir/delta/install.cc.o.d"
  "/root/repo/src/delta/summary_delta.cc" "src/CMakeFiles/wuw.dir/delta/summary_delta.cc.o" "gcc" "src/CMakeFiles/wuw.dir/delta/summary_delta.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/wuw.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/wuw.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/parallel_executor.cc" "src/CMakeFiles/wuw.dir/exec/parallel_executor.cc.o" "gcc" "src/CMakeFiles/wuw.dir/exec/parallel_executor.cc.o.d"
  "/root/repo/src/exec/warehouse.cc" "src/CMakeFiles/wuw.dir/exec/warehouse.cc.o" "gcc" "src/CMakeFiles/wuw.dir/exec/warehouse.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/wuw.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/wuw.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/printer.cc" "src/CMakeFiles/wuw.dir/expr/printer.cc.o" "gcc" "src/CMakeFiles/wuw.dir/expr/printer.cc.o.d"
  "/root/repo/src/expr/scalar_expr.cc" "src/CMakeFiles/wuw.dir/expr/scalar_expr.cc.o" "gcc" "src/CMakeFiles/wuw.dir/expr/scalar_expr.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/wuw.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/wuw.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/CMakeFiles/wuw.dir/graph/dot.cc.o" "gcc" "src/CMakeFiles/wuw.dir/graph/dot.cc.o.d"
  "/root/repo/src/graph/vdag.cc" "src/CMakeFiles/wuw.dir/graph/vdag.cc.o" "gcc" "src/CMakeFiles/wuw.dir/graph/vdag.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/wuw.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/wuw.dir/io/csv.cc.o.d"
  "/root/repo/src/io/snapshot.cc" "src/CMakeFiles/wuw.dir/io/snapshot.cc.o" "gcc" "src/CMakeFiles/wuw.dir/io/snapshot.cc.o.d"
  "/root/repo/src/parallel/flatten.cc" "src/CMakeFiles/wuw.dir/parallel/flatten.cc.o" "gcc" "src/CMakeFiles/wuw.dir/parallel/flatten.cc.o.d"
  "/root/repo/src/parallel/parallel_strategy.cc" "src/CMakeFiles/wuw.dir/parallel/parallel_strategy.cc.o" "gcc" "src/CMakeFiles/wuw.dir/parallel/parallel_strategy.cc.o.d"
  "/root/repo/src/parser/ddl_parser.cc" "src/CMakeFiles/wuw.dir/parser/ddl_parser.cc.o" "gcc" "src/CMakeFiles/wuw.dir/parser/ddl_parser.cc.o.d"
  "/root/repo/src/parser/sql_parser.cc" "src/CMakeFiles/wuw.dir/parser/sql_parser.cc.o" "gcc" "src/CMakeFiles/wuw.dir/parser/sql_parser.cc.o.d"
  "/root/repo/src/parser/tokenizer.cc" "src/CMakeFiles/wuw.dir/parser/tokenizer.cc.o" "gcc" "src/CMakeFiles/wuw.dir/parser/tokenizer.cc.o.d"
  "/root/repo/src/policy/maintenance_policy.cc" "src/CMakeFiles/wuw.dir/policy/maintenance_policy.cc.o" "gcc" "src/CMakeFiles/wuw.dir/policy/maintenance_policy.cc.o.d"
  "/root/repo/src/query/ad_hoc.cc" "src/CMakeFiles/wuw.dir/query/ad_hoc.cc.o" "gcc" "src/CMakeFiles/wuw.dir/query/ad_hoc.cc.o.d"
  "/root/repo/src/sqlgen/sql_script.cc" "src/CMakeFiles/wuw.dir/sqlgen/sql_script.cc.o" "gcc" "src/CMakeFiles/wuw.dir/sqlgen/sql_script.cc.o.d"
  "/root/repo/src/stats/cardinality.cc" "src/CMakeFiles/wuw.dir/stats/cardinality.cc.o" "gcc" "src/CMakeFiles/wuw.dir/stats/cardinality.cc.o.d"
  "/root/repo/src/stats/delta_estimator.cc" "src/CMakeFiles/wuw.dir/stats/delta_estimator.cc.o" "gcc" "src/CMakeFiles/wuw.dir/stats/delta_estimator.cc.o.d"
  "/root/repo/src/stats/selectivity.cc" "src/CMakeFiles/wuw.dir/stats/selectivity.cc.o" "gcc" "src/CMakeFiles/wuw.dir/stats/selectivity.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "src/CMakeFiles/wuw.dir/stats/table_stats.cc.o" "gcc" "src/CMakeFiles/wuw.dir/stats/table_stats.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/wuw.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/wuw.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/wuw.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/wuw.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/wuw.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/wuw.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/wuw.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/wuw.dir/storage/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/wuw.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/wuw.dir/storage/value.cc.o.d"
  "/root/repo/src/tpcd/change_generator.cc" "src/CMakeFiles/wuw.dir/tpcd/change_generator.cc.o" "gcc" "src/CMakeFiles/wuw.dir/tpcd/change_generator.cc.o.d"
  "/root/repo/src/tpcd/tpcd_generator.cc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_generator.cc.o" "gcc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_generator.cc.o.d"
  "/root/repo/src/tpcd/tpcd_schema.cc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_schema.cc.o" "gcc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_schema.cc.o.d"
  "/root/repo/src/tpcd/tpcd_views.cc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_views.cc.o" "gcc" "src/CMakeFiles/wuw.dir/tpcd/tpcd_views.cc.o.d"
  "/root/repo/src/view/comp_term.cc" "src/CMakeFiles/wuw.dir/view/comp_term.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/comp_term.cc.o.d"
  "/root/repo/src/view/join_pipeline.cc" "src/CMakeFiles/wuw.dir/view/join_pipeline.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/join_pipeline.cc.o.d"
  "/root/repo/src/view/maintenance.cc" "src/CMakeFiles/wuw.dir/view/maintenance.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/maintenance.cc.o.d"
  "/root/repo/src/view/recompute.cc" "src/CMakeFiles/wuw.dir/view/recompute.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/recompute.cc.o.d"
  "/root/repo/src/view/validate.cc" "src/CMakeFiles/wuw.dir/view/validate.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/validate.cc.o.d"
  "/root/repo/src/view/view_definition.cc" "src/CMakeFiles/wuw.dir/view/view_definition.cc.o" "gcc" "src/CMakeFiles/wuw.dir/view/view_definition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
