# Empty dependencies file for wuw.
# This may be replaced when dependencies are built.
