file(REMOVE_RECURSE
  "libwuw.a"
)
