# Empty compiler generated dependencies file for exp1b_q10_strategy_space.
# This may be replaced when dependencies are built.
