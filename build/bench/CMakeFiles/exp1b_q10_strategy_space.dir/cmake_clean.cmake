file(REMOVE_RECURSE
  "CMakeFiles/exp1b_q10_strategy_space.dir/exp1b_q10_strategy_space.cc.o"
  "CMakeFiles/exp1b_q10_strategy_space.dir/exp1b_q10_strategy_space.cc.o.d"
  "exp1b_q10_strategy_space"
  "exp1b_q10_strategy_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1b_q10_strategy_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
