# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp1b_q10_strategy_space.
