file(REMOVE_RECURSE
  "CMakeFiles/table1_strategy_counts.dir/table1_strategy_counts.cc.o"
  "CMakeFiles/table1_strategy_counts.dir/table1_strategy_counts.cc.o.d"
  "table1_strategy_counts"
  "table1_strategy_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_strategy_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
