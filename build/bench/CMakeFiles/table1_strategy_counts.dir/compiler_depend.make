# Empty compiler generated dependencies file for table1_strategy_counts.
# This may be replaced when dependencies are built.
