# Empty dependencies file for ablation_prune_space.
# This may be replaced when dependencies are built.
