file(REMOVE_RECURSE
  "CMakeFiles/ablation_prune_space.dir/ablation_prune_space.cc.o"
  "CMakeFiles/ablation_prune_space.dir/ablation_prune_space.cc.o.d"
  "ablation_prune_space"
  "ablation_prune_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prune_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
