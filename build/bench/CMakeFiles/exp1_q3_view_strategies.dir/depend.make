# Empty dependencies file for exp1_q3_view_strategies.
# This may be replaced when dependencies are built.
