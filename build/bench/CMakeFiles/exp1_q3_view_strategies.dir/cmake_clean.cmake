file(REMOVE_RECURSE
  "CMakeFiles/exp1_q3_view_strategies.dir/exp1_q3_view_strategies.cc.o"
  "CMakeFiles/exp1_q3_view_strategies.dir/exp1_q3_view_strategies.cc.o.d"
  "exp1_q3_view_strategies"
  "exp1_q3_view_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_q3_view_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
