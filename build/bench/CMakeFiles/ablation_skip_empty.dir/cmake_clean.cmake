file(REMOVE_RECURSE
  "CMakeFiles/ablation_skip_empty.dir/ablation_skip_empty.cc.o"
  "CMakeFiles/ablation_skip_empty.dir/ablation_skip_empty.cc.o.d"
  "ablation_skip_empty"
  "ablation_skip_empty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skip_empty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
