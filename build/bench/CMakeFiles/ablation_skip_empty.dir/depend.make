# Empty dependencies file for ablation_skip_empty.
# This may be replaced when dependencies are built.
