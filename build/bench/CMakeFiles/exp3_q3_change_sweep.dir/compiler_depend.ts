# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp3_q3_change_sweep.
