file(REMOVE_RECURSE
  "CMakeFiles/exp3_q3_change_sweep.dir/exp3_q3_change_sweep.cc.o"
  "CMakeFiles/exp3_q3_change_sweep.dir/exp3_q3_change_sweep.cc.o.d"
  "exp3_q3_change_sweep"
  "exp3_q3_change_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_q3_change_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
