# Empty compiler generated dependencies file for exp3_q3_change_sweep.
# This may be replaced when dependencies are built.
