file(REMOVE_RECURSE
  "CMakeFiles/ablation_work_metric.dir/ablation_work_metric.cc.o"
  "CMakeFiles/ablation_work_metric.dir/ablation_work_metric.cc.o.d"
  "ablation_work_metric"
  "ablation_work_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_work_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
