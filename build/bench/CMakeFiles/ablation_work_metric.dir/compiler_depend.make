# Empty compiler generated dependencies file for ablation_work_metric.
# This may be replaced when dependencies are built.
