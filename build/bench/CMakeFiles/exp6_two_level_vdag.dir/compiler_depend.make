# Empty compiler generated dependencies file for exp6_two_level_vdag.
# This may be replaced when dependencies are built.
