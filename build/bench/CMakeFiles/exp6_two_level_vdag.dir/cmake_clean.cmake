file(REMOVE_RECURSE
  "CMakeFiles/exp6_two_level_vdag.dir/exp6_two_level_vdag.cc.o"
  "CMakeFiles/exp6_two_level_vdag.dir/exp6_two_level_vdag.cc.o.d"
  "exp6_two_level_vdag"
  "exp6_two_level_vdag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_two_level_vdag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
