# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp2_q5_view_strategies.
