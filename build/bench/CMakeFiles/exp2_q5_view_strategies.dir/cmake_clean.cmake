file(REMOVE_RECURSE
  "CMakeFiles/exp2_q5_view_strategies.dir/exp2_q5_view_strategies.cc.o"
  "CMakeFiles/exp2_q5_view_strategies.dir/exp2_q5_view_strategies.cc.o.d"
  "exp2_q5_view_strategies"
  "exp2_q5_view_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_q5_view_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
