# Empty dependencies file for exp2_q5_view_strategies.
# This may be replaced when dependencies are built.
