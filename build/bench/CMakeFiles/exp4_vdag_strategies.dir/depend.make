# Empty dependencies file for exp4_vdag_strategies.
# This may be replaced when dependencies are built.
