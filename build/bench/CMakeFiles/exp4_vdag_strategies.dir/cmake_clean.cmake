file(REMOVE_RECURSE
  "CMakeFiles/exp4_vdag_strategies.dir/exp4_vdag_strategies.cc.o"
  "CMakeFiles/exp4_vdag_strategies.dir/exp4_vdag_strategies.cc.o.d"
  "exp4_vdag_strategies"
  "exp4_vdag_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_vdag_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
