# Empty dependencies file for exp5_parallel_execution.
# This may be replaced when dependencies are built.
