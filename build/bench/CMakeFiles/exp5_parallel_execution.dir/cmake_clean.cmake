file(REMOVE_RECURSE
  "CMakeFiles/exp5_parallel_execution.dir/exp5_parallel_execution.cc.o"
  "CMakeFiles/exp5_parallel_execution.dir/exp5_parallel_execution.cc.o.d"
  "exp5_parallel_execution"
  "exp5_parallel_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_parallel_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
