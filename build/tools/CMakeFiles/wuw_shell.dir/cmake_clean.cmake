file(REMOVE_RECURSE
  "CMakeFiles/wuw_shell.dir/wuw_shell.cc.o"
  "CMakeFiles/wuw_shell.dir/wuw_shell.cc.o.d"
  "wuw_shell"
  "wuw_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wuw_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
