# Empty dependencies file for wuw_shell.
# This may be replaced when dependencies are built.
