# Empty compiler generated dependencies file for csv_warehouse.
# This may be replaced when dependencies are built.
