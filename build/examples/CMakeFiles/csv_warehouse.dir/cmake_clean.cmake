file(REMOVE_RECURSE
  "CMakeFiles/csv_warehouse.dir/csv_warehouse.cpp.o"
  "CMakeFiles/csv_warehouse.dir/csv_warehouse.cpp.o.d"
  "csv_warehouse"
  "csv_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
