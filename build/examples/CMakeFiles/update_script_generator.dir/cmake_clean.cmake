file(REMOVE_RECURSE
  "CMakeFiles/update_script_generator.dir/update_script_generator.cpp.o"
  "CMakeFiles/update_script_generator.dir/update_script_generator.cpp.o.d"
  "update_script_generator"
  "update_script_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_script_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
