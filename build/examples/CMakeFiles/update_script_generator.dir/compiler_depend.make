# Empty compiler generated dependencies file for update_script_generator.
# This may be replaced when dependencies are built.
