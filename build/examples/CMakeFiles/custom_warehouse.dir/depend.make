# Empty dependencies file for custom_warehouse.
# This may be replaced when dependencies are built.
