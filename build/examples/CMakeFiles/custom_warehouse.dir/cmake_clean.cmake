file(REMOVE_RECURSE
  "CMakeFiles/custom_warehouse.dir/custom_warehouse.cpp.o"
  "CMakeFiles/custom_warehouse.dir/custom_warehouse.cpp.o.d"
  "custom_warehouse"
  "custom_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
