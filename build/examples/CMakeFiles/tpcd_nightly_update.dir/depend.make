# Empty dependencies file for tpcd_nightly_update.
# This may be replaced when dependencies are built.
