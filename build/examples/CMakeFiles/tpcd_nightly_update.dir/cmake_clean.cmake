file(REMOVE_RECURSE
  "CMakeFiles/tpcd_nightly_update.dir/tpcd_nightly_update.cpp.o"
  "CMakeFiles/tpcd_nightly_update.dir/tpcd_nightly_update.cpp.o.d"
  "tpcd_nightly_update"
  "tpcd_nightly_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_nightly_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
