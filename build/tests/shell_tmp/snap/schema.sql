CREATE TABLE sales (x_store INT, x_item INT, x_amount INT, x_day DATE);
CREATE TABLE stores (s_store INT, s_city TEXT);
CREATE VIEW revenue_by_city AS SELECT s_city AS s_city, SUM(x_amount) AS revenue, COUNT(*) AS transactions FROM sales, stores WHERE x_store = s_store GROUP BY s_city;
