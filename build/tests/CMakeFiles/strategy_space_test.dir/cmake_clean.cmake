file(REMOVE_RECURSE
  "CMakeFiles/strategy_space_test.dir/strategy_space_test.cc.o"
  "CMakeFiles/strategy_space_test.dir/strategy_space_test.cc.o.d"
  "strategy_space_test"
  "strategy_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
