# Empty dependencies file for expression_graph_test.
# This may be replaced when dependencies are built.
