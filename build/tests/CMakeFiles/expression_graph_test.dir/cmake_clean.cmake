file(REMOVE_RECURSE
  "CMakeFiles/expression_graph_test.dir/expression_graph_test.cc.o"
  "CMakeFiles/expression_graph_test.dir/expression_graph_test.cc.o.d"
  "expression_graph_test"
  "expression_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
