# Empty compiler generated dependencies file for join_pipeline_test.
# This may be replaced when dependencies are built.
