file(REMOVE_RECURSE
  "CMakeFiles/join_pipeline_test.dir/join_pipeline_test.cc.o"
  "CMakeFiles/join_pipeline_test.dir/join_pipeline_test.cc.o.d"
  "join_pipeline_test"
  "join_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
