# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for min_work_single_test.
