file(REMOVE_RECURSE
  "CMakeFiles/random_vdag_test.dir/random_vdag_test.cc.o"
  "CMakeFiles/random_vdag_test.dir/random_vdag_test.cc.o.d"
  "random_vdag_test"
  "random_vdag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_vdag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
