# Empty dependencies file for random_vdag_test.
# This may be replaced when dependencies are built.
