# Empty dependencies file for work_metric_test.
# This may be replaced when dependencies are built.
