file(REMOVE_RECURSE
  "CMakeFiles/work_metric_test.dir/work_metric_test.cc.o"
  "CMakeFiles/work_metric_test.dir/work_metric_test.cc.o.d"
  "work_metric_test"
  "work_metric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
