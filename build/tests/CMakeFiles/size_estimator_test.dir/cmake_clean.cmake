file(REMOVE_RECURSE
  "CMakeFiles/size_estimator_test.dir/size_estimator_test.cc.o"
  "CMakeFiles/size_estimator_test.dir/size_estimator_test.cc.o.d"
  "size_estimator_test"
  "size_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
