# Empty compiler generated dependencies file for min_work_test.
# This may be replaced when dependencies are built.
