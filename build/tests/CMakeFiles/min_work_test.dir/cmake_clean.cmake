file(REMOVE_RECURSE
  "CMakeFiles/min_work_test.dir/min_work_test.cc.o"
  "CMakeFiles/min_work_test.dir/min_work_test.cc.o.d"
  "min_work_test"
  "min_work_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_work_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
