// Randomized end-to-end property tests: generate random VDAGs (random
// shapes, SPJ/aggregate mixes, multi-level definitions) and random change
// workloads, then check the full pipeline:
//   * MinWork / Prune / dual-stage strategies are correct (C1-C8);
//   * executing any of them converges to the recompute ground truth;
//   * MinWork == Prune work on acyclic-EG cases;
//   * the strategy simplifier preserves the final state.
#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "core/simplify.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::RandomVdag;

struct Scenario {
  uint64_t seed;
  size_t bases;
  size_t derived;
  double delete_fraction;
  int64_t insert_rows;
};

class RandomVdagTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomVdagTest, OptimizersProduceCorrectConvergingStrategies) {
  const Scenario& sc = GetParam();
  // WUW_SEED (nightly / repro runs) shifts every scenario; unset keeps the
  // fixed PR-CI seeds.
  const uint64_t seed = sc.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = RandomVdag(&rng, sc.bases, sc.derived);

  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, seed * 31 + 1);
  testutil::ApplyTripleChanges(&w, sc.delete_fraction, sc.insert_rows,
                               seed * 17 + 3);
  Catalog truth = testutil::GroundTruthAfterChanges(w);

  SizeMap sizes = sc.seed % 2 == 0 ? w.EstimatedSizesWithStats()
                                   : w.EstimatedSizes();
  MinWorkResult mw = MinWork(vdag, sizes);
  PruneResult pr = Prune(vdag, sizes);
  Strategy dual = MakeDualStageVdagStrategy(vdag);

  for (const Strategy* s : {&mw.strategy, &pr.strategy, &dual}) {
    CorrectnessResult r = CheckVdagStrategy(vdag, *s);
    ASSERT_TRUE(r.ok) << r.violation << "\n" << s->ToString();
    Warehouse clone = w.Clone();
    Executor executor(&clone);
    executor.Execute(*s);
    ASSERT_TRUE(clone.catalog().ContentsEqual(truth))
        << "diverged: " << s->ToString();
  }

  // Prune can never do worse than MinWork under the metric.
  double mw_work = EstimateStrategyWork(vdag, mw.strategy, sizes, {}).total;
  EXPECT_LE(pr.work, mw_work + 1e-6);
  if (!mw.used_modified_ordering) {
    EXPECT_NEAR(pr.work, mw_work, 1e-6);
  }

  // Simplification against the real empty set also converges.
  std::set<std::string> empty_bases;
  for (const std::string& base : vdag.BaseViews()) {
    if (w.base_delta(base).empty()) empty_bases.insert(base);
  }
  Strategy simplified = SimplifyForEmptyDeltas(
      mw.strategy, EmptyDeltaClosure(vdag, empty_bases));
  Warehouse clone = w.Clone();
  ExecutorOptions options;
  options.validate = false;
  Executor executor(&clone, options);
  executor.Execute(simplified);
  EXPECT_TRUE(clone.catalog().ContentsEqual(truth));
}

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "seed" + std::to_string(s.seed) + "_b" + std::to_string(s.bases) +
         "d" + std::to_string(s.derived) + "_del" +
         std::to_string(static_cast<int>(s.delete_fraction * 100)) + "_ins" +
         std::to_string(s.insert_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomVdagTest,
    ::testing::Values(
        Scenario{1, 2, 1, 0.2, 5}, Scenario{2, 3, 2, 0.1, 10},
        Scenario{3, 3, 3, 0.3, 0}, Scenario{4, 4, 2, 0.0, 20},
        Scenario{5, 2, 3, 0.5, 8}, Scenario{6, 4, 4, 0.15, 15},
        Scenario{7, 3, 2, 0.25, 3}, Scenario{8, 5, 3, 0.1, 12},
        Scenario{9, 2, 4, 0.4, 6}, Scenario{10, 4, 3, 0.05, 25},
        Scenario{11, 3, 4, 0.2, 0}, Scenario{12, 5, 4, 0.1, 10},
        Scenario{13, 2, 2, 0.35, 18}, Scenario{14, 3, 3, 0.0, 30},
        Scenario{15, 4, 4, 0.45, 4}, Scenario{16, 5, 2, 0.12, 9}),
    ScenarioName);

// A deeper soak: many small random rounds on one evolving warehouse.
TEST(RandomVdagSoakTest, TwentyRoundsOnOneWarehouse) {
  const uint64_t seed = testutil::PropertySeed(77);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = RandomVdag(&rng, 3, 3);
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 50, seed + 22);
  for (int round = 0; round < 20; ++round) {
    testutil::ApplyTripleChanges(&w, 0.05 + 0.02 * (round % 5), 4,
                                 1000 + round);
    Catalog truth = testutil::GroundTruthAfterChanges(w);
    Strategy s = (round % 3 == 0)
                     ? MakeDualStageVdagStrategy(vdag)
                     : MinWork(vdag, w.EstimatedSizes()).strategy;
    Executor executor(&w);
    executor.Execute(s);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "round " << round;
  }
}

}  // namespace
}  // namespace wuw
