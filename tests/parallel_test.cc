#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "parallel/flatten.h"
#include "parallel/parallel_strategy.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

SizeMap UniformSizes(const Vdag& vdag) {
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    sizes.Set(name, {100, 10, -10});
  }
  return sizes;
}

TEST(ParallelizeTest, PreservesExpressionMultiset) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Strategy seq = MakeDualStageVdagStrategy(vdag);
  ParallelStrategy par = ParallelizeStrategy(vdag, seq);
  EXPECT_EQ(par.num_expressions(), seq.size());
}

TEST(ParallelizeTest, DualStageInstallsShareOneStage) {
  // With dual-stage, all installs are conflict-free once comps are done —
  // except sources read by later comps; on Fig 3, Comp(V5,...) reads V4's
  // sources? V5 reads A and V4 extents. The installs of B and C conflict
  // with Comp(V4,...) only. Expect >= one big install stage.
  Vdag vdag = testutil::MakeFig3Vdag();
  Strategy seq = MakeDualStageVdagStrategy(vdag);
  ParallelStrategy par = ParallelizeStrategy(vdag, seq);
  size_t max_stage = 0;
  for (const auto& stage : par.stages) {
    max_stage = std::max(max_stage, stage.size());
  }
  // Stage shape: Comp(V4) | Comp(V5)+Inst(B)+Inst(C) | the rest.
  EXPECT_GE(max_stage, 3u);
  EXPECT_LT(par.stages.size(), seq.size());
}

TEST(ParallelizeTest, OneWayStrategyHasFewParallelOpportunities) {
  // "Because of these numerous dependencies, many of the expressions in
  // the MinWork VDAG strategy cannot be processed in parallel."
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes = UniformSizes(vdag);
  Strategy one_way = MinWork(vdag, sizes).strategy;
  Strategy dual = MakeDualStageVdagStrategy(vdag);
  ParallelStrategy par_one_way = ParallelizeStrategy(vdag, one_way);
  ParallelStrategy par_dual = ParallelizeStrategy(vdag, dual);
  EXPECT_GT(par_one_way.stages.size(), par_dual.stages.size());
}

TEST(ParallelizeTest, StagedExecutionReachesSameState) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 91);
  ApplyTripleChanges(&w, 0.2, 8, 93);
  Catalog truth = GroundTruthAfterChanges(w);

  for (const Strategy& seq :
       {MakeDualStageVdagStrategy(w.vdag()),
        MinWork(w.vdag(), w.EstimatedSizes()).strategy}) {
    ParallelStrategy par = ParallelizeStrategy(w.vdag(), seq);
    Warehouse clone = w.Clone();
    ExecutorOptions options;
    options.validate = false;  // stage linearization may reorder benignly
    Executor executor(&clone, options);
    executor.Execute(par.Linearize());
    ASSERT_TRUE(clone.catalog().ContentsEqual(truth));
  }
}

TEST(MakespanTest, MoreWorkersNeverIncreaseMakespan) {
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes = UniformSizes(vdag);
  ParallelStrategy par =
      ParallelizeStrategy(vdag, MakeDualStageVdagStrategy(vdag));
  double prev = -1;
  for (int workers : {1, 2, 4, 8}) {
    MakespanReport r = EstimateMakespan(vdag, par, sizes, {}, workers);
    if (prev >= 0) {
      EXPECT_LE(r.makespan, prev + 1e-9);
    }
    prev = r.makespan;
    EXPECT_GE(r.makespan, r.total_work / workers - 1e-9);
  }
}

TEST(MakespanTest, OneWorkerMakespanEqualsTotalWork) {
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes = UniformSizes(vdag);
  ParallelStrategy par =
      ParallelizeStrategy(vdag, MakeDualStageVdagStrategy(vdag));
  MakespanReport r = EstimateMakespan(vdag, par, sizes, {}, 1);
  EXPECT_NEAR(r.makespan, r.total_work, 1e-9);
}

TEST(MakespanTest, Section9Tradeoff) {
  // The dual-stage strategy parallelizes better but costs more total work;
  // the 1-way strategy is the opposite. With one worker 1-way must win.
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes = UniformSizes(vdag);
  Strategy one_way = MinWork(vdag, sizes).strategy;
  Strategy dual = MakeDualStageVdagStrategy(vdag);
  ParallelStrategy par_one_way = ParallelizeStrategy(vdag, one_way);
  ParallelStrategy par_dual = ParallelizeStrategy(vdag, dual);

  MakespanReport seq_one_way = EstimateMakespan(vdag, par_one_way, sizes, {}, 1);
  MakespanReport seq_dual = EstimateMakespan(vdag, par_dual, sizes, {}, 1);
  EXPECT_LT(seq_one_way.makespan, seq_dual.makespan);
}

TEST(FlattenTest, InlinesSpjSource) {
  Vdag vdag = testutil::MakeFig10Vdag();  // V5 over {V1, V2, V4}, V4 SPJ
  auto flat = FlattenDefinition(vdag, "V5");
  // V4 inlined -> sources {V1, V2, V3}... V4 = {V2, V3}, but V2 already a
  // source of V5: duplicate-source bail-out returns the original.
  EXPECT_EQ(flat->sources(), vdag.definition("V5")->sources());

  // Fig 3's V5 (over A, V4) flattens cleanly when V4 is SPJ.
  Vdag fig3 = testutil::MakeFig3Vdag();
  auto flat5 = FlattenDefinition(fig3, "V5");
  EXPECT_EQ(flat5->sources(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(FlattenTest, AggregateSourcesAreNotInlined) {
  Vdag vdag = testutil::MakeFig3Vdag(/*v4_aggregate=*/true);
  auto flat = FlattenDefinition(vdag, "V5");
  EXPECT_EQ(flat->sources(), (std::vector<std::string>{"A", "V4"}));
}

TEST(FlattenTest, FlattenedViewComputesSameExtent) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Warehouse w = MakeLoadedWarehouse(vdag, 60, 95);
  Vdag flat = FlattenVdag(vdag);
  Warehouse wf(flat);
  for (const std::string& base : vdag.BaseViews()) {
    w.catalog().MustGetTable(base)->ForEach([&](const Tuple& t, int64_t c) {
      wf.base_table(base)->Add(t, c);
    });
  }
  wf.RecomputeDerived();
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    EXPECT_TRUE(w.catalog().MustGetTable(view)->ContentsEqual(
        *wf.catalog().MustGetTable(view)))
        << view;
  }
}

TEST(FlattenTest, FlattenedMaintenanceConverges) {
  Vdag flat = FlattenVdag(testutil::MakeFig3Vdag());
  Warehouse w = MakeLoadedWarehouse(flat, 60, 97);
  ApplyTripleChanges(&w, 0.2, 8, 99);
  Catalog truth = GroundTruthAfterChanges(w);
  Executor executor(&w);
  executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

TEST(FlattenTest, FlatteningEnablesMoreParallelism) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Vdag flat = FlattenVdag(vdag);
  ParallelStrategy par =
      ParallelizeStrategy(vdag, MakeDualStageVdagStrategy(vdag));
  ParallelStrategy par_flat =
      ParallelizeStrategy(flat, MakeDualStageVdagStrategy(flat));
  // After flattening, V5's comp no longer waits on V4's comps.
  EXPECT_LE(par_flat.stages.size(), par.stages.size());
}

}  // namespace
}  // namespace wuw
