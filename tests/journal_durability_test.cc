// Journal durability: the on-disk format (magic + CRC-framed records)
// must load back exactly, and ANY torn tail or byte corruption must either
// fail with an error string (header damage) or degrade to the longest
// valid record prefix — never to a wrong journal.  Truncation is swept at
// every byte offset; corruption flips every byte (one at a time).  Resume
// from any surviving prefix must still converge to the recompute ground
// truth.
#include "exec/journal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "test_util.h"

namespace wuw {
namespace {

struct Bench {
  Warehouse pre;     // state before the window: what recovery restores
  Warehouse ran;     // state after the (possibly partial) journaled run
  Catalog truth;
  Strategy strategy;
};

/// Runs the first `steps` steps journaled (negative = all of them).
Bench MakeJournaledRun(uint64_t seed, int64_t steps = -1) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 40,
                                              seed);
  testutil::ApplyTripleChanges(&w, 0.25, 8, seed + 4);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  Bench b{w.Clone(), std::move(w), std::move(truth), std::move(s)};
  ExecutorOptions options;
  options.journal = true;
  if (steps < 0) {
    Executor(&b.ran, options).Execute(b.strategy);
  } else {
    // Pause after `steps` via the cumulative work of an uninterrupted run.
    Warehouse probe = b.pre.Clone();
    ExecutionReport full = Executor(&probe).Execute(b.strategy);
    int64_t budget_work = 0;
    for (int64_t i = 0; i < steps; ++i) {
      budget_work += full.per_expression[i].linear_work;
    }
    WindowBudget budget(WindowBudgetOptions{budget_work});
    options.budget = &budget;
    ExecutionReport r = Executor(&b.ran, options).Execute(b.strategy);
    EXPECT_EQ(r.window_result, WindowResult::kPaused);
    EXPECT_EQ(r.steps_completed, steps);
  }
  return b;
}

/// Asserts that resuming `journal` onto a fresh pre-window clone converges
/// to the ground truth.
void ExpectResumeConverges(const Bench& b, const StrategyJournal& journal) {
  Warehouse restored = b.pre.Clone();
  ResumeReport r = ResumeStrategy(journal, &restored);
  ASSERT_EQ(r.window_result, WindowResult::kCompleted);
  ASSERT_TRUE(restored.catalog().ContentsEqual(b.truth));
}

TEST(JournalDurabilityTest, RoundTripCompleteJournal) {
  Bench b = MakeJournaledRun(31);
  const StrategyJournal& journal = b.ran.journal();
  ASSERT_TRUE(journal.complete());

  std::string bytes = SerializeJournal(journal);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "WUWJRNL1");

  StrategyJournal loaded;
  std::string error;
  bool torn = true;
  ASSERT_TRUE(DeserializeJournal(bytes, &loaded, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  EXPECT_TRUE(loaded.complete());
  EXPECT_EQ(loaded.size(), journal.size());
  // Serialization is byte-deterministic (delta entries are sorted), so a
  // round trip reproduces the exact bytes.
  EXPECT_EQ(SerializeJournal(loaded), bytes);
  ExpectResumeConverges(b, loaded);
}

TEST(JournalDurabilityTest, RoundTripPausedJournal) {
  Bench b = MakeJournaledRun(37, /*steps=*/2);
  const StrategyJournal& journal = b.ran.journal();
  ASSERT_TRUE(journal.begun());
  ASSERT_FALSE(journal.complete());
  ASSERT_EQ(journal.size(), 2);

  std::string bytes = SerializeJournal(journal);
  StrategyJournal loaded;
  std::string error;
  bool torn = true;
  ASSERT_TRUE(DeserializeJournal(bytes, &loaded, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  EXPECT_FALSE(loaded.complete());
  EXPECT_EQ(loaded.size(), 2);
  ExpectResumeConverges(b, loaded);
}

// Truncate at EVERY byte offset.  Below the first whole frame the load
// must fail with an error string; from there on it must succeed, report a
// torn tail (except at full length), and recover a record prefix whose
// size never decreases as more bytes survive.
TEST(JournalDurabilityTest, TruncationAtEveryOffset) {
  Bench b = MakeJournaledRun(41);
  std::string bytes = SerializeJournal(b.ran.journal());
  const int64_t full_entries = b.ran.journal().size();

  bool any_success = false;
  int64_t prev_entries = 0;
  for (size_t len = 0; len <= bytes.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " of " +
                 std::to_string(bytes.size()) + " bytes");
    StrategyJournal out;
    std::string error;
    bool torn = false;
    bool ok = DeserializeJournal(bytes.substr(0, len), &out, &error, &torn);
    if (!ok) {
      ASSERT_FALSE(any_success)
          << "load failed after shorter prefixes succeeded";
      ASSERT_FALSE(error.empty());
      continue;
    }
    any_success = true;
    if (len < bytes.size()) {
      // Mid-frame cuts read as torn; a cut exactly on a frame boundary is
      // byte-indistinguishable from a journal of a paused run, so it loads
      // untorn — but a truncated journal must never claim completeness.
      EXPECT_FALSE(out.complete());
    } else {
      EXPECT_FALSE(torn);
      EXPECT_TRUE(out.complete());
    }
    ASSERT_LE(out.size(), full_entries);
    ASSERT_GE(out.size(), prev_entries) << "longer prefix lost records";
    const bool record_boundary = out.size() > prev_entries;
    prev_entries = out.size();
    // Resume-convergence is O(window); check it at every record-count
    // transition and every 64th offset rather than all offsets.
    if (record_boundary || len % 64 == 0 || len == bytes.size()) {
      ExpectResumeConverges(b, out);
    }
  }
  ASSERT_TRUE(any_success);
  EXPECT_EQ(prev_entries, full_entries);
}

// Flip every byte (one at a time).  Damage in the magic or header frame
// must fail with an error string; damage past the header must degrade to a
// valid record prefix (CRC catches the broken frame).
TEST(JournalDurabilityTest, SingleByteCorruptionAtEveryOffset) {
  Bench b = MakeJournaledRun(43);
  const std::string bytes = SerializeJournal(b.ran.journal());
  const int64_t full_entries = b.ran.journal().size();

  for (size_t i = 0; i < bytes.size(); ++i) {
    SCOPED_TRACE("flipped byte " + std::to_string(i));
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    StrategyJournal out;
    std::string error;
    bool torn = false;
    bool ok = DeserializeJournal(corrupt, &out, &error, &torn);
    if (!ok) {
      ASSERT_FALSE(error.empty());
      continue;
    }
    // Survived: must be a record prefix, and a corrupt tail must read as
    // torn (the complete marker cannot have survived a flip before it).
    ASSERT_LE(out.size(), full_entries);
    EXPECT_TRUE(torn || out.complete());
    if (i % 97 == 0) ExpectResumeConverges(b, out);
  }
}

TEST(JournalDurabilityTest, SaveLoadRoundTripAndAtomicity) {
  Bench b = MakeJournaledRun(47);
  const std::string path = ::testing::TempDir() + "wuw_journal_test.jrnl";
  std::string error;
  ASSERT_TRUE(SaveJournal(b.ran.journal(), path, &error)) << error;
  // The temp file was renamed away.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  StrategyJournal loaded;
  bool torn = true;
  ASSERT_TRUE(LoadJournal(path, &loaded, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  EXPECT_EQ(loaded.size(), b.ran.journal().size());
  ExpectResumeConverges(b, loaded);
  std::remove(path.c_str());

  StrategyJournal missing;
  EXPECT_FALSE(LoadJournal(::testing::TempDir() + "wuw_no_such.jrnl",
                           &missing, &error));
  EXPECT_FALSE(error.empty());
}

// The incremental durable sink: a journaled run with AttachDurable writes,
// frame by fsynced frame, exactly the bytes SerializeJournal would — so
// the on-disk file is a loadable image of the run at every instant.
TEST(JournalDurabilityTest, DurableSinkMirrorsSerializationIncrementally) {
  Bench b = MakeJournaledRun(53);
  const std::string path = ::testing::TempDir() + "wuw_durable_live.jrnl";
  Warehouse live = b.pre.Clone();
  ASSERT_EQ(live.journal().AttachDurable(nullptr, path), "");
  ExecutorOptions options;
  options.journal = true;
  Executor(&live, options).Execute(b.strategy);
  ASSERT_EQ(live.journal().durable_error(), "");
  ASSERT_TRUE(live.journal().complete());

  std::string on_disk;
  ASSERT_EQ(io::Env::Default()->ReadFileToString(path, &on_disk), "");
  EXPECT_EQ(on_disk, SerializeJournal(live.journal()));

  StrategyJournal loaded;
  std::string error;
  bool torn = true;
  ASSERT_TRUE(LoadJournal(path, &loaded, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  EXPECT_TRUE(loaded.complete());
  ExpectResumeConverges(b, loaded);
  live.journal().DetachDurable();
  std::remove(path.c_str());
}

// Re-homing an already-complete journal onto a durable sink reproduces
// the full serialized image, completion marker included.
TEST(JournalDurabilityTest, AttachDurableRehomesCompleteRun) {
  Bench b = MakeJournaledRun(59);
  const std::string path = ::testing::TempDir() + "wuw_durable_rehome.jrnl";
  ASSERT_EQ(b.ran.journal().AttachDurable(nullptr, path), "");
  std::string on_disk;
  ASSERT_EQ(io::Env::Default()->ReadFileToString(path, &on_disk), "");
  EXPECT_EQ(on_disk, SerializeJournal(b.ran.journal()));
  b.ran.journal().DetachDurable();
  std::remove(path.c_str());
}

// ENOSPC at EVERY byte budget of the durable image: the attach (or the
// appends behind it) fails with an error string, the sink fail-stops, and
// whatever byte prefix landed on disk obeys the torn-tail rules — a load
// either fails cleanly (not even the header fit) or yields a record prefix
// from which resume still converges.
TEST(JournalDurabilityTest, DurableEnospcAtEveryByteKeepsLoadablePrefix) {
  Bench b = MakeJournaledRun(61);
  const std::string bytes = SerializeJournal(b.ran.journal());
  const std::string path = ::testing::TempDir() + "wuw_durable_enospc.jrnl";
  const int64_t full_entries = b.ran.journal().size();

  bool any_success = false;
  int64_t prev_entries = 0;
  for (size_t budget = 0; budget <= bytes.size(); ++budget) {
    SCOPED_TRACE("enospc at byte " + std::to_string(budget) + " of " +
                 std::to_string(bytes.size()));
    io::IoFaultOptions o;
    o.enospc_bytes = static_cast<int64_t>(budget);
    io::FaultEnv fenv(o, io::Env::Default());

    StrategyJournal j;
    std::string error;
    ASSERT_TRUE(DeserializeJournal(bytes, &j, &error)) << error;
    std::string attach_error = j.AttachDurable(&fenv, path);
    if (budget < bytes.size()) {
      ASSERT_NE(attach_error.find("ENOSPC"), std::string::npos)
          << attach_error;
      EXPECT_EQ(j.durable_error(), attach_error);
    } else {
      ASSERT_EQ(attach_error, "");
    }
    j.DetachDurable();

    StrategyJournal loaded;
    error.clear();
    bool ok = LoadJournal(path, &loaded, &error);
    std::remove(path.c_str());
    if (!ok) {
      ASSERT_FALSE(any_success)
          << "load failed after smaller budgets succeeded";
      ASSERT_FALSE(error.empty());
      continue;
    }
    any_success = true;
    ASSERT_LE(loaded.size(), full_entries);
    ASSERT_GE(loaded.size(), prev_entries) << "larger budget lost records";
    const bool record_boundary = loaded.size() > prev_entries;
    prev_entries = loaded.size();
    if (record_boundary || budget % 64 == 0 || budget == bytes.size()) {
      ExpectResumeConverges(b, loaded);
    }
  }
  ASSERT_TRUE(any_success);
  EXPECT_EQ(prev_entries, full_entries);
}

// Disk full mid-run: the sink fail-stops (the in-memory run is unharmed
// and completes), durable_error() reports the first failure, and the disk
// prefix written before the failure still drives recovery to convergence.
TEST(JournalDurabilityTest, EnospcDuringLiveRunFailsStopAndRecovers) {
  Bench b = MakeJournaledRun(67);
  const std::string bytes = SerializeJournal(b.ran.journal());
  const std::string path = ::testing::TempDir() + "wuw_durable_midrun.jrnl";

  std::vector<size_t> budgets;
  for (size_t n = 0; n < bytes.size(); n += 97) budgets.push_back(n);
  budgets.push_back(bytes.size());
  for (size_t budget : budgets) {
    SCOPED_TRACE("enospc at byte " + std::to_string(budget));
    io::IoFaultOptions o;
    o.enospc_bytes = static_cast<int64_t>(budget);
    io::FaultEnv fenv(o, io::Env::Default());

    Warehouse live = b.pre.Clone();
    ASSERT_EQ(live.journal().AttachDurable(&fenv, path), "");
    ExecutorOptions options;
    options.journal = true;
    Executor(&live, options).Execute(b.strategy);
    ASSERT_TRUE(live.catalog().ContentsEqual(b.truth));
    if (budget < bytes.size()) {
      EXPECT_NE(live.journal().durable_error(), "");
    } else {
      EXPECT_EQ(live.journal().durable_error(), "");
    }
    live.journal().DetachDurable();

    StrategyJournal loaded;
    std::string error;
    if (LoadJournal(path, &loaded, &error)) {
      ExpectResumeConverges(b, loaded);
    } else {
      ASSERT_FALSE(error.empty());
    }
    std::remove(path.c_str());
  }
}

// SaveJournal through a disk that fills mid-write: the failure is an
// error string and the previously saved journal survives under the real
// name, byte for byte (old-or-new, never a mix).
TEST(JournalDurabilityTest, SaveJournalEnospcKeepsOldFile) {
  Bench old_run = MakeJournaledRun(71);
  Bench new_run = MakeJournaledRun(73);
  const std::string path = ::testing::TempDir() + "wuw_save_enospc.jrnl";
  std::string error;
  ASSERT_TRUE(SaveJournal(old_run.ran.journal(), path, &error)) << error;
  const std::string old_bytes = SerializeJournal(old_run.ran.journal());
  const std::string new_bytes = SerializeJournal(new_run.ran.journal());

  for (size_t budget : {size_t{0}, size_t{8}, new_bytes.size() / 2,
                        new_bytes.size() - 1}) {
    SCOPED_TRACE("enospc at byte " + std::to_string(budget));
    io::IoFaultOptions o;
    o.enospc_bytes = static_cast<int64_t>(budget);
    io::FaultEnv fenv(o, io::Env::Default());
    io::ScopedEnv scoped(&fenv);
    error.clear();
    ASSERT_FALSE(SaveJournal(new_run.ran.journal(), path, &error));
    ASSERT_NE(error.find("ENOSPC"), std::string::npos) << error;
  }
  // No .tmp litter, and the old journal is untouched.
  EXPECT_FALSE(io::Env::Default()->FileExists(path + ".tmp"));
  std::string surviving;
  ASSERT_EQ(io::Env::Default()->ReadFileToString(path, &surviving), "");
  EXPECT_EQ(surviving, old_bytes);
  std::remove(path.c_str());
}

TEST(JournalDurabilityTest, EmptyAndGarbageBytesAreErrors) {
  StrategyJournal out;
  std::string error;
  EXPECT_FALSE(DeserializeJournal("", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(DeserializeJournal("not a journal at all", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(DeserializeJournal(std::string("WUWJRNL9") + "xxxx", &out,
                                  &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace wuw
