// Property suite for persistent auxiliary views (plan/aux_view.h): hot
// shared join prefixes promoted to hidden "__aux_<n>" warehouse views must
// never change what the warehouse converges to.
//
//   * Multi-batch runs under MinWork / aux-costed Prune / dual-stage, pool
//     sizes {1,2,8}, cache budgets {none, tight}: the visible catalog lands
//     on the recompute ground truth every batch, and every bound aux extent
//     equals its recompute-from-scratch twin (the truth clone recomputes
//     promoted views like any other derived view).
//   * An armed warehouse and an unarmed twin stay visibly bit-identical
//     across the same batch sequence (off-vs-on differential).
//   * Kill-at-every-fault-site during a promoting window and a refreshing
//     window (the new sites aux.promote.install / aux.refresh.step
//     included), restore + ResumeStrategy -> bit-identical to the
//     uninterrupted run, promoted aux views included.
//   * Budget pause + continue-in-place resume across a window with live
//     substitutions converges identically.
//   * Tally-only arming (auto=0) is byte-identical to unarmed execution:
//     same rows, same OperatorStats, same kWork snapshot.
//   * The debug audit flags an aux extent mutated without a version bump.
//
// Honors WUW_SEED (testutil::PropertySeed); failures print the seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/aux_view.h"
#include "plan/subplan_cache.h"
#include "test_util.h"
#include "view/recompute.h"

namespace wuw {
namespace {

using fault::FaultInjectedError;
using fault::FaultPlan;
using fault::HitCounts;
using fault::ScopedFaultPlan;
using fault::Trigger;

constexpr int64_t kNoCache = -2;           // sentinel: run eager, no cache
constexpr int64_t kTightCache = 16 << 10;  // eviction churn

/// Promotion on the first hot window — multi-batch tests then see the full
/// promote -> substitute -> maintain/refresh lifecycle within 3 batches.
AuxViewOptions EagerAuxOptions() {
  AuxViewOptions o;
  o.min_windows = 1;
  o.min_uses = 1;
  o.min_rows = 0;
  o.max_views = 4;
  return o;
}

std::unique_ptr<SubplanCache> MakeCache(int64_t budget) {
  if (budget == kNoCache) return nullptr;
  return std::make_unique<SubplanCache>(SubplanCacheOptions{budget});
}

enum class Mode { kMinWork, kPruneAux, kDualStage };
const Mode kModes[] = {Mode::kMinWork, Mode::kPruneAux, Mode::kDualStage};

std::string ModeName(Mode m) {
  switch (m) {
    case Mode::kMinWork:
      return "MinWork";
    case Mode::kPruneAux:
      return "PruneAux";
    case Mode::kDualStage:
      return "DualStage";
  }
  return "?";
}

/// Strategy for the warehouse's CURRENT vdag (post-promotion it includes
/// the aux views, so the optimizers plan their incremental maintenance).
/// kPruneAux feeds the registry's cost info to Prune — the optimizer
/// integration under test.
Strategy PickStrategy(const Warehouse& w, Mode mode) {
  SizeMap sizes = w.EstimatedSizes();
  switch (mode) {
    case Mode::kMinWork:
      return MinWork(w.vdag(), sizes).strategy;
    case Mode::kPruneAux: {
      PruneOptions options;
      AuxCostInfo info;
      if (w.aux_views() != nullptr) {
        info = w.aux_views()->BuildCostInfo();
        options.aux = &info;
      }
      return Prune(w.vdag(), sizes, options).strategy;
    }
    case Mode::kDualStage:
      return MakeDualStageVdagStrategy(w.vdag());
  }
  return Strategy();
}

/// Every aux view bound in `w` that the ground-truth clone also holds must
/// match it exactly — maintained/refreshed materializations equal
/// recompute-from-scratch.  (An aux promoted at THIS batch's commit is not
/// in `truth` yet; the next batch's truth covers it.)
void ExpectAuxMatchesTruth(const Warehouse& w, const Catalog& truth) {
  if (w.aux_views() == nullptr) return;
  for (const std::string& aux : w.aux_views()->BoundAuxNames()) {
    const Table* mine = w.catalog().GetTable(aux);
    ASSERT_NE(mine, nullptr) << aux;
    const Table* gt = truth.GetTable(aux);
    if (gt == nullptr) continue;  // promoted at this commit
    EXPECT_TRUE(mine->ContentsEqual(*gt))
        << "aux extent diverged from recompute ground truth: " << aux;
  }
}

/// A VDAG where promotion pays: one wide SPJ view (k=2 prefix is shared by
/// 3 structural terms of a dual-stage Comp, 2 of MinWork's 1-way Comps).
Vdag MakeStar4Vdag() { return testutil::MakeStarVdag("V", 4); }

/// Classic MQO sharing: two parents whose definitions open with the same
/// 2-prefix [B0, B1] — one materialization, two bindings.
Vdag MakeMqoVdag() {
  Vdag vdag;
  for (int i = 0; i < 6; ++i) {
    std::string name = "B" + std::to_string(i);
    vdag.AddBaseView(name, testutil::TripleSchema(name));
  }
  vdag.AddDerivedView(
      testutil::SpjTripleView("D0", {"B0", "B1", "B2", "B3"}));
  vdag.AddDerivedView(
      testutil::SpjTripleView("D1", {"B0", "B1", "B4", "B5"}));
  return vdag;
}

struct VdagCase {
  std::string name;
  Vdag vdag;
};

std::vector<VdagCase> MakeVdagCases(uint64_t seed) {
  std::vector<VdagCase> out;
  out.push_back({"star4", MakeStar4Vdag()});
  out.push_back({"mqo", MakeMqoVdag()});
  tpcd::Rng rng(seed);
  out.push_back({"random", testutil::RandomVdag(&rng, 3, 3)});
  return out;
}

// ---------------------------------------------------------------------------
// Multi-batch convergence: promotion on, every mode x pool x cache budget,
// with an unarmed twin running the same batches for the off-vs-on diff.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, MultiBatchConvergesAcrossModesPoolsAndCaches) {
  const uint64_t seed = testutil::PropertySeed(211);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (VdagCase& vc : MakeVdagCases(seed)) {
    for (Mode mode : kModes) {
      for (int pool_size : {1, 2, 8}) {
        for (int64_t budget : {kNoCache, kTightCache}) {
          SCOPED_TRACE(vc.name + " mode=" + ModeName(mode) + " pool=" +
                       std::to_string(pool_size) + " budget=" +
                       std::to_string(budget));
          Warehouse armed =
              testutil::MakeLoadedWarehouse(vc.vdag, 40, seed + 5);
          armed.EnableAuxViews(EagerAuxOptions());
          Warehouse unarmed = testutil::MakeLoadedWarehouse(
              vc.vdag, 40, seed + 5);

          ThreadPool pool(pool_size);
          auto armed_cache = MakeCache(budget);
          auto unarmed_cache = MakeCache(budget);
          for (int batch = 0; batch < 3; ++batch) {
            // Coherent batches: deletions sample the CURRENT extents, which
            // are identical in both warehouses as long as they agree.
            testutil::ApplyTripleChanges(&armed, 0.2, 10,
                                         seed + 31 * batch + 7);
            testutil::ApplyTripleChanges(&unarmed, 0.2, 10,
                                         seed + 31 * batch + 7);
            Catalog truth = testutil::GroundTruthAfterChanges(armed);

            ExecutorOptions options;
            options.pool = &pool;
            options.subplan_cache = armed_cache.get();
            Executor(&armed, options).Execute(PickStrategy(armed, mode));

            ExecutorOptions unarmed_options;
            unarmed_options.pool = &pool;
            unarmed_options.subplan_cache = unarmed_cache.get();
            Executor(&unarmed, unarmed_options)
                .Execute(PickStrategy(unarmed, mode));

            ASSERT_TRUE(armed.catalog().ContentsEqual(truth))
                << "armed batch " << batch << " diverged";
            ASSERT_TRUE(unarmed.catalog().ContentsEqual(truth))
                << "unarmed batch " << batch << " diverged";
            ASSERT_TRUE(armed.catalog().ContentsEqual(unarmed.catalog()))
                << "off-vs-on diverged at batch " << batch;
            ExpectAuxMatchesTruth(armed, truth);
            if (::testing::Test::HasFailure()) return;
          }
          // The engineered shapes must actually exercise promotion — a
          // sweep that never promotes proves nothing.
          if (vc.name != "random") {
            EXPECT_GT(armed.aux_views()->NumAuxViews(), 0u)
                << vc.name << " never promoted";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MQO sharing: D0 and D1 share the [B0, B1] prefix — one materialized aux
// view, bindings for both parents, and the optimizer cost info lists both.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, SharedPrefixMaterializesOnceBindsTwice) {
  const uint64_t seed = testutil::PropertySeed(223);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(MakeMqoVdag(), 40, seed);
  w.EnableAuxViews(EagerAuxOptions());
  for (int batch = 0; batch < 2; ++batch) {
    testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 31 * batch + 7);
    Catalog truth = testutil::GroundTruthAfterChanges(w);
    Executor(&w).Execute(MakeDualStageVdagStrategy(w.vdag()));
    ASSERT_TRUE(w.catalog().ContentsEqual(truth));
  }
  ASSERT_EQ(w.aux_views()->NumAuxViews(), 1u)
      << "shared recipe must materialize exactly once";
  AuxCostInfo info = w.aux_views()->BuildCostInfo();
  bool saw_d0 = false, saw_d1 = false;
  for (const AuxCostAlternative& alt : info.alternatives) {
    saw_d0 |= alt.view == "D0";
    saw_d1 |= alt.view == "D1";
    EXPECT_EQ(alt.prefix_len, 2u);
    EXPECT_EQ(alt.prefix_sources,
              (std::vector<std::string>{"B0", "B1"}));
  }
  EXPECT_TRUE(saw_d0 && saw_d1)
      << "both parents should hold a binding on the shared prefix";
}

// ---------------------------------------------------------------------------
// Optimizer integration: with a binding live, the aux-aware cost of a
// substitutable strategy is strictly below the plain linear metric, and
// aux-costed Prune never picks a worse strategy than plain Prune.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, AuxAwareCostingSeesTheCheaperAlternative) {
  const uint64_t seed = testutil::PropertySeed(227);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
  w.EnableAuxViews(EagerAuxOptions());
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 7);
  Executor(&w).Execute(MakeDualStageVdagStrategy(w.vdag()));
  ASSERT_GT(w.aux_views()->NumAuxViews(), 0u);

  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 38);
  AuxCostInfo info = w.aux_views()->BuildCostInfo();
  ASSERT_FALSE(info.empty());
  SizeMap sizes = w.EstimatedSizes();
  Strategy dual = MakeDualStageVdagStrategy(w.vdag());
  WorkBreakdown plain = EstimateStrategyWork(w.vdag(), dual, sizes, {});
  WorkBreakdown aux_aware =
      EstimateStrategyWork(w.vdag(), dual, sizes, {}, &info);
  EXPECT_LT(aux_aware.total, plain.total)
      << "substitutable terms should cost the aux scan, not the prefix";

  PruneOptions aux_options;
  aux_options.aux = &info;
  PruneResult with_aux = Prune(w.vdag(), sizes, aux_options);
  PruneResult without = Prune(w.vdag(), sizes);
  EXPECT_LE(with_aux.work,
            EstimateStrategyWork(w.vdag(), without.strategy, sizes, {}, &info)
                .total)
      << "aux-costed Prune must win under its own metric";
}

// ---------------------------------------------------------------------------
// Stale-strategy path: a strategy minted before promotion never mentions
// the aux view (correctness waiver) — its installs drift the prefix
// sources, and the commit-time refresh must bring the aux extent back to
// recompute freshness.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, PrePromotionStrategyTriggersRefreshAndConverges) {
  const uint64_t seed = testutil::PropertySeed(229);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
  w.EnableAuxViews(EagerAuxOptions());
  // Minted pre-promotion: mentions only V and its bases, never "__aux_*".
  const Strategy stale_strategy = MakeDualStageVdagStrategy(w.vdag());

  for (int batch = 0; batch < 3; ++batch) {
    testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 31 * batch + 7);
    Catalog truth = testutil::GroundTruthAfterChanges(w);
    Executor(&w).Execute(stale_strategy);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "batch " << batch;
    // The refresh ran inside this commit, so even the batch that promoted
    // is fresh — compare EVERY bound aux against a from-scratch recompute.
    for (const std::string& aux : w.aux_views()->BoundAuxNames()) {
      Table fresh = RecomputeView(*w.vdag().definition(aux), w.catalog(),
                                  /*stats=*/nullptr);
      EXPECT_TRUE(w.catalog().MustGetTable(aux)->ContentsEqual(fresh))
          << "aux " << aux << " stale after batch " << batch;
    }
  }
  EXPECT_GT(w.aux_views()->NumAuxViews(), 0u);
}

// ---------------------------------------------------------------------------
// Kill sweep.  Batch 1+2 run a pre-promotion dual-stage strategy with
// min_windows=2, so batch 2's commit promotes (aux.promote.install) and
// batch 3's commit refreshes the then-stale aux (aux.refresh.step).  Both
// batches are swept: count-only enumeration, then kill at every (point,
// sampled hit), restore the pre-batch clone, ResumeStrategy — and the
// result must be bit-identical to the uninterrupted run: visible catalog,
// aux extents, and the set of bound aux views.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, KillAtEveryFaultSiteConverges) {
  const uint64_t seed = testutil::PropertySeed(233);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  AuxViewOptions options = EagerAuxOptions();
  options.min_windows = 2;
  Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
  w.EnableAuxViews(options);
  const Strategy s = MakeDualStageVdagStrategy(w.vdag());

  // Batch 1: tallies the first hot window; no promotion yet.
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 7);
  Executor(&w).Execute(s);
  ASSERT_EQ(w.aux_views()->NumAuxViews(), 0u);

  auto sweep_batch = [&](const char* label, const std::string& want_point) {
    Catalog truth = testutil::GroundTruthAfterChanges(w);
    auto run = [&](Warehouse* target) {
      ExecutorOptions run_options;
      run_options.journal = true;
      Executor(target, run_options).Execute(s);
    };

    // Uninterrupted reference + fault-point census.
    std::vector<std::pair<std::string, int64_t>> counts;
    Warehouse reference = w.Clone();
    {
      FaultPlan census;
      census.count_only = true;
      ScopedFaultPlan scoped(census);
      run(&reference);
      counts = HitCounts();
    }
    ASSERT_TRUE(reference.catalog().ContentsEqual(truth))
        << label << " reference run diverged";
    bool reached = false;
    for (const auto& [point, total] : counts) reached |= point == want_point;
    ASSERT_TRUE(reached) << label << " never reached " << want_point;

    for (const auto& [point, total] : counts) {
      // Stride-sample high-count points like fault_recovery_property_test.
      int64_t stride = std::max<int64_t>(1, total / 3);
      for (int64_t k = 1; k <= total; k += stride) {
        SCOPED_TRACE(std::string(label) + " " + point + " hit " +
                     std::to_string(k));
        Warehouse victim = w.Clone();
        bool died = false;
        {
          FaultPlan plan;
          plan.triggers.push_back(Trigger{point, k, 1.0});
          ScopedFaultPlan scoped(plan);
          try {
            run(&victim);
          } catch (const FaultInjectedError&) {
            died = true;
          }
        }
        ASSERT_TRUE(died) << "sequential run must hit the armed trigger";

        Warehouse restored = w.Clone();
        ResumeReport report =
            ResumeStrategy(victim.journal(), &restored, ExecutorOptions{});
        EXPECT_EQ(report.steps_replayed + report.steps_executed,
                  static_cast<int64_t>(s.size()));
        ASSERT_TRUE(restored.catalog().ContentsEqual(truth));
        // Bit-identical recovery includes the aux layer: same bound views,
        // same extents as the uninterrupted reference.
        ASSERT_EQ(restored.aux_views()->BoundAuxNames(),
                  reference.aux_views()->BoundAuxNames());
        for (const std::string& aux :
             restored.aux_views()->BoundAuxNames()) {
          ASSERT_TRUE(restored.catalog().MustGetTable(aux)->ContentsEqual(
              *reference.catalog().MustGetTable(aux)))
              << "aux extent diverged after recovery: " << aux;
        }
        if (::testing::Test::HasFailure()) return;
      }
    }
    // Advance the real warehouse past this batch for the next sweep.
    run(&w);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth));
  };

  // Batch 2: second hot window -> the commit promotes.
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 38);
  sweep_batch("promote-batch", "aux.promote.install");
  if (::testing::Test::HasFailure()) return;
  ASSERT_GT(w.aux_views()->NumAuxViews(), 0u);

  // Batch 3: the pre-promotion strategy drifts the prefix sources -> the
  // commit refreshes.
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 69);
  sweep_batch("refresh-batch", "aux.refresh.step");
}

// ---------------------------------------------------------------------------
// Pause / continue-in-place across a window with live substitutions.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, PausedWindowResumesWithAuxBindings) {
  const uint64_t seed = testutil::PropertySeed(239);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
  w.EnableAuxViews(EagerAuxOptions());
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 7);
  Executor(&w).Execute(MakeDualStageVdagStrategy(w.vdag()));
  ASSERT_GT(w.aux_views()->NumAuxViews(), 0u);

  // Batch 2 maintains the aux view incrementally (strategy from the
  // extended vdag) and substitutes into the parent's terms.
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 38);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  const Strategy s = MakeDualStageVdagStrategy(w.vdag());

  // Work budget sized to pause after half the steps (analytic charge).
  int64_t pause_work = 0;
  size_t steps = 0;
  {
    Warehouse probe = w.Clone();
    ExecutionReport full = Executor(&probe).Execute(s);
    steps = full.per_expression.size();
    ASSERT_GE(steps, 2u);
    for (size_t i = 0; i < steps / 2; ++i) {
      pause_work += full.per_expression[i].linear_work;
    }
  }

  Warehouse paused = w.Clone();
  WindowBudget budget(WindowBudgetOptions{pause_work});
  ExecutorOptions pause_options;
  pause_options.budget = &budget;
  ExecutionReport r = Executor(&paused, pause_options).Execute(s);
  ASSERT_EQ(r.window_result, WindowResult::kPaused);
  ASSERT_LT(r.steps_completed, static_cast<int64_t>(steps));

  ResumeStrategy(paused.journal(), &paused, ExecutorOptions{},
                 ResumeMode::kContinueInPlace);
  ASSERT_TRUE(paused.catalog().ContentsEqual(truth));
  ExpectAuxMatchesTruth(paused, truth);
}

// ---------------------------------------------------------------------------
// Tally-only arming (auto=0) must be byte-identical to unarmed execution:
// the advisor observes, nothing substitutes, nothing changes.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, TallyOnlyArmingIsByteIdenticalToUnarmed) {
  if (EnvAuxViews() != nullptr) {
    GTEST_SKIP() << "WUW_AUX_VIEWS arms every warehouse; no unarmed baseline";
  }
  const uint64_t seed = testutil::PropertySeed(241);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  const bool was_armed = obs::MetricsArmed();
  obs::ArmMetrics();

  auto run = [&](bool arm_tally_only) {
    obs::ResetMetrics();
    Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
    if (arm_tally_only) {
      AuxViewOptions options = EagerAuxOptions();
      options.auto_promote = false;
      w.EnableAuxViews(options);
    }
    std::vector<OperatorStats> stats;
    for (int batch = 0; batch < 2; ++batch) {
      testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 31 * batch + 7);
      ExecutionReport report =
          Executor(&w).Execute(MakeDualStageVdagStrategy(w.vdag()));
      for (const auto& er : report.per_expression) stats.push_back(er.stats);
    }
    return std::make_tuple(std::move(w), std::move(stats),
                           obs::SnapshotMetrics(obs::Mask(
                               obs::MetricClass::kWork)));
  };

  auto [unarmed_w, unarmed_stats, unarmed_work] = run(false);
  auto [tally_w, tally_stats, tally_work] = run(true);
  EXPECT_EQ(tally_w.aux_views()->NumAuxViews(), 0u);
  ASSERT_TRUE(tally_w.catalog().ContentsEqual(unarmed_w.catalog()));
  ASSERT_EQ(tally_stats.size(), unarmed_stats.size());
  for (size_t i = 0; i < tally_stats.size(); ++i) {
    EXPECT_EQ(tally_stats[i].rows_scanned, unarmed_stats[i].rows_scanned);
    EXPECT_EQ(tally_stats[i].rows_produced, unarmed_stats[i].rows_produced);
    EXPECT_EQ(tally_stats[i].hash_probes, unarmed_stats[i].hash_probes);
  }
  EXPECT_EQ(tally_work, unarmed_work)
      << "tally-only arming perturbed the kWork snapshot\nunarmed:\n"
      << unarmed_work.ToString() << "tally-only:\n" << tally_work.ToString();

  obs::ResetMetrics();
  if (!was_armed) obs::DisarmMetrics();
}

// ---------------------------------------------------------------------------
// kWork determinism with promotion on: the armed multi-batch counter
// stream (promotions, refreshes, substitutions included) is bit-identical
// across pool sizes and cache budgets.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, ArmedWorkCountersInvariantAcrossPoolsAndCaches) {
  const uint64_t seed = testutil::PropertySeed(251);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  const bool was_armed = obs::MetricsArmed();
  obs::ArmMetrics();

  auto run = [&](int pool_size, int64_t budget) {
    obs::ResetMetrics();
    Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
    w.EnableAuxViews(EagerAuxOptions());
    ThreadPool pool(pool_size);
    auto cache = MakeCache(budget);
    for (int batch = 0; batch < 3; ++batch) {
      testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 31 * batch + 7);
      ExecutorOptions options;
      options.pool = &pool;
      options.subplan_cache = cache.get();
      Executor(&w, options).Execute(MakeDualStageVdagStrategy(w.vdag()));
    }
    EXPECT_GT(w.aux_views()->NumAuxViews(), 0u);
    return obs::SnapshotMetrics(obs::Mask(obs::MetricClass::kWork));
  };

  obs::MetricsSnapshot baseline = run(1, kNoCache);
  bool saw_promotion = false, saw_substitution = false;
  for (const auto& [name, value] : baseline.counters) {
    saw_promotion |= name == "aux.promotions" && value > 0;
    saw_substitution |= name == "aux.term_substitutions" && value > 0;
  }
  EXPECT_TRUE(saw_promotion) << baseline.ToString();
  EXPECT_TRUE(saw_substitution) << baseline.ToString();
  for (int pool_size : {2, 8}) {
    for (int64_t budget : {kNoCache, kTightCache}) {
      EXPECT_EQ(run(pool_size, budget), baseline)
          << "armed kWork snapshot diverged at pool=" << pool_size
          << " budget=" << budget;
    }
  }

  obs::ResetMetrics();
  if (!was_armed) obs::DisarmMetrics();
}

// ---------------------------------------------------------------------------
// Stage-parallel executor over an armed warehouse: Conflicts() orders
// Inst(__aux_*) against every Comp, so promotion + substitution +
// incremental aux maintenance converge under worker scheduling too.
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, StageParallelExecutionConverges) {
  const uint64_t seed = testutil::PropertySeed(257);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (VdagCase& vc : MakeVdagCases(seed)) {
    SCOPED_TRACE(vc.name);
    Warehouse w = testutil::MakeLoadedWarehouse(vc.vdag, 40, seed + 5);
    w.EnableAuxViews(EagerAuxOptions());
    for (int batch = 0; batch < 3; ++batch) {
      testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 31 * batch + 7);
      Catalog truth = testutil::GroundTruthAfterChanges(w);
      Strategy s = MakeDualStageVdagStrategy(w.vdag());
      ParallelStrategy staged = ParallelizeStrategy(w.vdag(), s);
      ParallelExecutorOptions options;
      options.workers = 3;
      options.term_workers = 2;
      ParallelExecutor(&w, options).Execute(staged);
      ASSERT_TRUE(w.catalog().ContentsEqual(truth))
          << vc.name << " batch " << batch;
      ExpectAuxMatchesTruth(w, truth);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite: the aux flavor of the version-bump audit.  A direct mutation
// of a bound aux extent that skips NoteExtentChanged must show up in
// AuxAuditViolations (and would abort the next commit in debug builds).
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, AuditFlagsUnbumpedAuxMutation) {
  const uint64_t seed = testutil::PropertySeed(263);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(MakeStar4Vdag(), 40, seed);
  w.EnableAuxViews(EagerAuxOptions());
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 7);
  Executor(&w).Execute(MakeDualStageVdagStrategy(w.vdag()));
  std::vector<std::string> bound = w.aux_views()->BoundAuxNames();
  ASSERT_FALSE(bound.empty());
  ASSERT_TRUE(w.AuxAuditViolations().empty());

  // The test-only backdoor: mutate the aux extent without the version bump.
  w.TestOnlyExtentNoVersionBump(bound[0])->Add(
      Tuple({Value::Int64(424242), Value::Int64(1), Value::Int64(0)}),
      1);
  std::vector<std::string> violations = w.AuxAuditViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], bound[0]);
}

// ---------------------------------------------------------------------------
// Spec-parsing error paths (user-facing input: error strings, no aborts).
// ---------------------------------------------------------------------------
TEST(AuxViewPropertyTest, SpecParsing) {
  AuxViewOptions o;
  EXPECT_EQ(ParseAuxViewSpec("1", &o), "");
  EXPECT_EQ(ParseAuxViewSpec("on", &o), "");
  EXPECT_EQ(
      ParseAuxViewSpec("max=2;min_windows=3;min_uses=4;min_rows=5;auto=0",
                       &o),
      "");
  EXPECT_EQ(o.max_views, 2);
  EXPECT_EQ(o.min_windows, 3);
  EXPECT_EQ(o.min_uses, 4);
  EXPECT_EQ(o.min_rows, 5);
  EXPECT_FALSE(o.auto_promote);
  EXPECT_NE(ParseAuxViewSpec("", &o), "");
  EXPECT_NE(ParseAuxViewSpec("max=", &o), "");
  EXPECT_NE(ParseAuxViewSpec("bogus=1", &o), "");
  EXPECT_NE(ParseAuxViewSpec("max=-1", &o), "");
}

}  // namespace
}  // namespace wuw
