#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/printer.h"
#include "expr/scalar_expr.h"

namespace wuw {
namespace {

Schema TestSchema() {
  return Schema({{"a", TypeId::kInt64},
                 {"b", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"d", TypeId::kDate},
                 {"f", TypeId::kDouble}});
}

Tuple TestTuple() {
  return Tuple({Value::Int64(10), Value::Int64(3), Value::String("BUILDING"),
                Value::Date(19950315), Value::Double(2.5)});
}

TEST(ScalarExprTest, ColumnAndLiteral) {
  auto col = ScalarExpr::Column("a");
  EXPECT_EQ(col->kind(), ExprKind::kColumn);
  EXPECT_EQ(col->column_name(), "a");
  auto lit = ScalarExpr::Literal(Value::Int64(5));
  EXPECT_EQ(lit->literal().AsInt64(), 5);
}

TEST(ScalarExprTest, ReferencedColumns) {
  auto e = ScalarExpr::And(
      ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("a"),
                          ScalarExpr::Column("b")),
      ScalarExpr::ColEqString("s", "X"));
  auto cols = e->ReferencedColumns();
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "s"}));
}

TEST(ScalarExprTest, AndAllOfEmptyIsTrue) {
  auto t = ScalarExpr::AndAll({});
  BoundExpr b = BoundExpr::Bind(t, TestSchema());
  EXPECT_TRUE(b.EvalBool(TestTuple()));
}

TEST(EvaluatorTest, IntegerArithmeticStaysExact) {
  // a * (10000 - b): the revenue shape.
  auto e = ScalarExpr::Arith(
      ArithOp::kMul, ScalarExpr::Column("a"),
      ScalarExpr::Arith(ArithOp::kSub, ScalarExpr::Literal(Value::Int64(10000)),
                        ScalarExpr::Column("b")));
  BoundExpr b = BoundExpr::Bind(e, TestSchema());
  EXPECT_EQ(b.result_type(), TypeId::kInt64);
  EXPECT_EQ(b.Eval(TestTuple()).AsInt64(), 10 * 9997);
}

TEST(EvaluatorTest, DivisionProducesDouble) {
  auto e = ScalarExpr::Arith(ArithOp::kDiv, ScalarExpr::Column("a"),
                             ScalarExpr::Column("b"));
  BoundExpr b = BoundExpr::Bind(e, TestSchema());
  EXPECT_EQ(b.result_type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(b.Eval(TestTuple()).NumericValue(), 10.0 / 3.0);
}

TEST(EvaluatorTest, DivisionByZeroIsNull) {
  auto e = ScalarExpr::Arith(ArithOp::kDiv, ScalarExpr::Column("a"),
                             ScalarExpr::Literal(Value::Int64(0)));
  BoundExpr b = BoundExpr::Bind(e, TestSchema());
  EXPECT_TRUE(b.Eval(TestTuple()).is_null());
}

TEST(EvaluatorTest, MixedArithmeticWidens) {
  auto e = ScalarExpr::Arith(ArithOp::kAdd, ScalarExpr::Column("a"),
                             ScalarExpr::Column("f"));
  BoundExpr b = BoundExpr::Bind(e, TestSchema());
  EXPECT_EQ(b.result_type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(b.Eval(TestTuple()).AsDouble(), 12.5);
}

TEST(EvaluatorTest, Comparisons) {
  Schema s = TestSchema();
  Tuple t = TestTuple();
  auto check = [&](CompareOp op, const char* col, Value v, bool expect) {
    auto e = ScalarExpr::Compare(op, ScalarExpr::Column(col),
                                 ScalarExpr::Literal(std::move(v)));
    EXPECT_EQ(BoundExpr::Bind(e, s).EvalBool(t), expect);
  };
  check(CompareOp::kEq, "a", Value::Int64(10), true);
  check(CompareOp::kNe, "a", Value::Int64(10), false);
  check(CompareOp::kLt, "d", Value::Date(19960101), true);
  check(CompareOp::kLe, "a", Value::Int64(10), true);
  check(CompareOp::kGt, "d", Value::Date(19950315), false);
  check(CompareOp::kGe, "d", Value::Date(19950315), true);
  check(CompareOp::kEq, "s", Value::String("BUILDING"), true);
}

TEST(EvaluatorTest, LogicalShortCircuit) {
  // (a = 10) OR (bogus comparison) — must not matter since lhs is true.
  auto e = ScalarExpr::Logical(
      LogicalOp::kOr,
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("a"),
                          ScalarExpr::Literal(Value::Int64(10))),
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("b"),
                          ScalarExpr::Literal(Value::Int64(-1))));
  EXPECT_TRUE(BoundExpr::Bind(e, TestSchema()).EvalBool(TestTuple()));

  auto f = ScalarExpr::And(
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("a"),
                          ScalarExpr::Literal(Value::Int64(11))),
      ScalarExpr::True());
  EXPECT_FALSE(BoundExpr::Bind(f, TestSchema()).EvalBool(TestTuple()));
}

TEST(EvaluatorTest, NotOperator) {
  auto e = ScalarExpr::Not(ScalarExpr::ColEqString("s", "BUILDING"));
  EXPECT_FALSE(BoundExpr::Bind(e, TestSchema()).EvalBool(TestTuple()));
}

TEST(EvaluatorTest, NullPropagationInComparison) {
  Schema s({{"n", TypeId::kInt64}});
  Tuple t({Value::Null()});
  auto e = ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("n"),
                               ScalarExpr::Literal(Value::Int64(1)));
  EXPECT_FALSE(BoundExpr::Bind(e, s).EvalBool(t));
}

TEST(PrinterTest, RendersSql) {
  auto rev = ScalarExpr::Arith(
      ArithOp::kMul, ScalarExpr::Column("l_extendedprice"),
      ScalarExpr::Arith(ArithOp::kSub, ScalarExpr::Literal(Value::Int64(1)),
                        ScalarExpr::Column("l_discount")));
  EXPECT_EQ(ExprToSql(rev), "(l_extendedprice * (1 - l_discount))");
  EXPECT_EQ(ExprToSql(ScalarExpr::ColEqString("c_mktsegment", "BUILDING")),
            "c_mktsegment = 'BUILDING'");
  EXPECT_EQ(ExprToSql(ScalarExpr::ColLtDate("o_orderdate", 19950315)),
            "o_orderdate < DATE '1995-03-15'");
  EXPECT_EQ(ExprToSql(ScalarExpr::Ptr(nullptr)), "TRUE");
}

}  // namespace
}  // namespace wuw
