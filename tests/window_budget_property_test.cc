// The window-budget invariant, exhaustively: pausing at ANY work budget
// and resuming across however many windows it takes must reach the same
// warehouse as the uninterrupted run — bit-identical (ContentsEqual
// against the recompute ground truth) — at every thread-pool size and
// every subplan-cache budget.  Three sweeps:
//
//   1. Sequential: for every step boundary k, a budget that pauses after
//      exactly k steps, then one unlimited resume window.
//   2. Sequential chained: a zero-work budget in every window, so the run
//      needs |strategy| + 1 windows (each resume completes >= 1 step).
//   3. Stage-parallel: for every stage boundary, a budget that pauses at
//      that barrier, then one unlimited resume.
//
// Honors WUW_SEED (failures print the repro line).  Labeled fault;property.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

enum class Budget { kNone, kZero, kDefault };
const Budget kBudgets[] = {Budget::kNone, Budget::kZero, Budget::kDefault};
const int kPoolSizes[] = {1, 2, 8};

std::string BudgetName(Budget b) {
  switch (b) {
    case Budget::kNone:
      return "none";
    case Budget::kZero:
      return "0";
    case Budget::kDefault:
      return "256MB";
  }
  return "?";
}

std::unique_ptr<SubplanCache> MakeCache(Budget b) {
  switch (b) {
    case Budget::kNone:
      return nullptr;
    case Budget::kZero:
      return std::make_unique<SubplanCache>(SubplanCacheOptions{0});
    case Budget::kDefault:
      return std::make_unique<SubplanCache>();
  }
  return nullptr;
}

struct Scenario {
  std::string name;
  Warehouse warehouse;
  Catalog truth;
  Strategy strategy;
};

Scenario MakeScenario(std::string name, Vdag vdag, int64_t base_rows,
                      double delete_fraction, int64_t insert_rows,
                      uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(std::move(vdag), base_rows,
                                              seed);
  testutil::ApplyTripleChanges(&w, delete_fraction, insert_rows, seed + 9);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  return Scenario{std::move(name), std::move(w), std::move(truth),
                  std::move(s)};
}

std::vector<Scenario> MakeScenarios(uint64_t seed) {
  std::vector<Scenario> out;
  out.push_back(MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1));
  out.push_back(MakeScenario("fig10", testutil::MakeFig10Vdag(), 50, 0.25,
                             10, seed + 2));
  tpcd::Rng rng(seed + 3);
  out.push_back(MakeScenario("random", testutil::RandomVdag(&rng, 3, 2), 40,
                             0.25, 6, seed + 4));
  return out;
}

/// Cumulative per-step linear work of the uninterrupted run — `cum[k]` as
/// a work budget pauses after exactly k+1 steps (work is analytic, so the
/// values hold at every pool size and cache budget).
std::vector<int64_t> CumulativeWork(const Scenario& sc) {
  Warehouse clone = sc.warehouse.Clone();
  ExecutionReport report = Executor(&clone).Execute(sc.strategy);
  std::vector<int64_t> cum;
  int64_t total = 0;
  for (const ExpressionReport& er : report.per_expression) {
    total += er.linear_work;
    cum.push_back(total);
  }
  return cum;
}

TEST(WindowBudgetProperty, PauseAnywhereResumeEqualsUninterrupted) {
  const uint64_t seed = testutil::PropertySeed(211);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  for (Scenario& sc : MakeScenarios(seed)) {
    SCOPED_TRACE("scenario " + sc.name);
    const std::vector<int64_t> cum = CumulativeWork(sc);
    const size_t n = cum.size();
    ASSERT_GE(n, 2u);

    for (int pool_size : kPoolSizes) {
      for (Budget cache_budget : kBudgets) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size) +
                     " cache=" + BudgetName(cache_budget));
        // Pause after k = 0 .. n-1 steps (k = n never pauses).  A budget
        // of cum[k-1] pauses after exactly k steps only when the work
        // boundary is strictly increasing there — skip the (rare)
        // zero-work steps where the pause point is a step earlier.
        for (size_t k = 0; k < n; ++k) {
          const int64_t budget_work = k == 0 ? 0 : cum[k - 1];
          if (k >= 1 && budget_work <= (k >= 2 ? cum[k - 2] : 0)) continue;
          SCOPED_TRACE("pause after " + std::to_string(k) + " steps");
          Warehouse clone = sc.warehouse.Clone();
          ThreadPool pool(pool_size);
          std::unique_ptr<SubplanCache> cache = MakeCache(cache_budget);

          WindowBudget budget(WindowBudgetOptions{budget_work});
          ExecutorOptions options;
          options.pool = &pool;
          options.subplan_cache = cache.get();
          options.budget = &budget;
          ExecutionReport report =
              Executor(&clone, options).Execute(sc.strategy);
          ASSERT_EQ(report.window_result, WindowResult::kPaused);
          ASSERT_EQ(report.steps_completed, static_cast<int64_t>(k));
          ASSERT_TRUE(clone.journal().begun());
          ASSERT_FALSE(clone.journal().complete());

          ExecutorOptions resume_options;
          resume_options.pool = &pool;
          resume_options.subplan_cache = cache.get();
          ResumeReport resumed =
              ResumeStrategy(clone.journal(), &clone, resume_options,
                             ResumeMode::kContinueInPlace);
          ASSERT_EQ(resumed.window_result, WindowResult::kCompleted);
          ASSERT_EQ(resumed.steps_replayed, static_cast<int64_t>(k));
          ASSERT_EQ(resumed.steps_executed, static_cast<int64_t>(n - k));
          ASSERT_TRUE(clone.catalog().ContentsEqual(sc.truth));
        }
      }
    }
  }
}

TEST(WindowBudgetProperty, ZeroWorkWindowChainsTerminateAndConverge) {
  const uint64_t seed = testutil::PropertySeed(223);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  for (Scenario& sc : MakeScenarios(seed)) {
    SCOPED_TRACE("scenario " + sc.name);
    const size_t n = sc.strategy.size();
    for (int pool_size : kPoolSizes) {
      for (Budget cache_budget : kBudgets) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size) +
                     " cache=" + BudgetName(cache_budget));
        Warehouse clone = sc.warehouse.Clone();
        ThreadPool pool(pool_size);
        std::unique_ptr<SubplanCache> cache = MakeCache(cache_budget);
        const WindowBudgetOptions tiny{/*work_units=*/0};

        {
          WindowBudget budget(tiny);
          ExecutorOptions options;
          options.pool = &pool;
          options.subplan_cache = cache.get();
          options.budget = &budget;
          ASSERT_EQ(Executor(&clone, options).Execute(sc.strategy)
                        .window_result,
                    WindowResult::kPaused);
        }
        int64_t windows = 1;
        while (true) {
          WindowBudget budget(tiny);
          ExecutorOptions options;
          options.pool = &pool;
          options.subplan_cache = cache.get();
          options.budget = &budget;
          ResumeReport r = ResumeStrategy(clone.journal(), &clone, options,
                                          ResumeMode::kContinueInPlace);
          ++windows;
          ASSERT_LE(windows, static_cast<int64_t>(n) + 1)
              << "zero-work window chain failed to make progress";
          if (r.window_result == WindowResult::kCompleted) break;
          ASSERT_GE(r.steps_executed, 1);
        }
        ASSERT_TRUE(clone.catalog().ContentsEqual(sc.truth));
      }
    }
  }
}

TEST(WindowBudgetProperty, StageBarrierPauseResumeEqualsUninterrupted) {
  const uint64_t seed = testutil::PropertySeed(227);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  for (Scenario& sc : MakeScenarios(seed)) {
    SCOPED_TRACE("scenario " + sc.name);
    ParallelStrategy staged = ParallelizeStrategy(sc.warehouse.vdag(),
                                                  sc.strategy);
    // Cumulative work per stage prefix, from one unbudgeted staged run.
    std::vector<int64_t> stage_cum;
    {
      Warehouse clone = sc.warehouse.Clone();
      ParallelExecutorOptions options;
      options.workers = 2;
      ParallelExecutionReport r =
          ParallelExecutor(&clone, options).Execute(staged);
      size_t i = 0;
      int64_t total = 0;
      for (const std::vector<Expression>& stage : staged.stages) {
        for (size_t j = 0; j < stage.size(); ++j) {
          total += r.per_expression[i++].linear_work;
        }
        stage_cum.push_back(total);
      }
    }
    ASSERT_GE(stage_cum.size(), 1u);

    for (int pool_size : kPoolSizes) {
      SCOPED_TRACE("workers=" + std::to_string(pool_size));
      // Pause at every stage barrier (after stages 0 .. last-1).
      size_t completed_steps = 0;
      for (size_t s = 0; s + 1 < staged.stages.size(); ++s) {
        completed_steps += staged.stages[s].size();
        // Exact stage boundary needs strictly increasing cumulative work.
        if (stage_cum[s] <= (s >= 1 ? stage_cum[s - 1] : 0)) continue;
        SCOPED_TRACE("pause after stage " + std::to_string(s));
        Warehouse clone = sc.warehouse.Clone();
        ThreadPool pool(pool_size);

        WindowBudget budget(WindowBudgetOptions{stage_cum[s]});
        ParallelExecutorOptions options;
        options.workers = pool_size;
        options.pool = &pool;
        options.budget = &budget;
        ParallelExecutionReport report =
            ParallelExecutor(&clone, options).Execute(staged);
        ASSERT_EQ(report.window_result, WindowResult::kPaused);
        ASSERT_EQ(report.steps_completed,
                  static_cast<int64_t>(completed_steps));

        ExecutorOptions resume_options;
        resume_options.pool = &pool;
        ResumeReport resumed =
            ResumeStrategy(clone.journal(), &clone, resume_options,
                           ResumeMode::kContinueInPlace);
        ASSERT_EQ(resumed.window_result, WindowResult::kCompleted);
        ASSERT_TRUE(clone.catalog().ContentsEqual(sc.truth));
      }
    }
  }
}

}  // namespace
}  // namespace wuw
