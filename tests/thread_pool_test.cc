// Unit tests for the shared work-stealing pool: chunk coverage, the
// inline/fan-out split, exception propagation, nested regions, the
// WUW_THREADS knob, and the ShouldParallelize gate the kernels use.
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace wuw {
namespace {

// Every index in [0, n) is visited exactly once, at every pool size.
// Chunks are disjoint, so plain (non-atomic) per-index writes are safe —
// a lost update would itself be the bug this test exists to catch (TSan
// flags it directly in the sanitizer job).
TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int parallelism : {1, 2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    ThreadPool pool(parallelism);
    const size_t n = 100000;
    std::vector<int> visits(n, 0);
    pool.ParallelFor(n, 1024, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++visits[i];
    });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), size_t{0}), n);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 128, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<size_t> seen{0};
  pool.ParallelFor(1, 128, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    seen.fetch_add(1);
  });
  EXPECT_EQ(seen.load(), 1u);
}

TEST(ThreadPoolTest, ParallelTasksRunsEachTaskOnceUnderWorkerCap) {
  ThreadPool pool(8);
  const size_t count = 64;
  std::vector<std::atomic<int>> runs(count);
  for (auto& r : runs) r.store(0);
  // max_workers = 2: still correct, just narrower; 0 = uncapped.
  for (int cap : {2, 0}) {
    for (auto& r : runs) r.store(0);
    pool.ParallelTasks(count, cap, [&](size_t i) { runs[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) ASSERT_EQ(runs[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(10000, 256,
                       [&](size_t begin, size_t) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a failed region: the next region runs normally.
  std::atomic<size_t> total{0};
  pool.ParallelFor(10000, 256, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 10000u);
}

// A region body that opens its own region (the real shape: a stage worker
// runs a Comp whose join kernel fans out morsels).  The caller of every
// region participates inline and helps on queued tasks while waiting, so
// this must complete even when tasks outnumber pool threads.
TEST(ThreadPoolTest, NestedRegionsDoNotDeadlock) {
  ThreadPool pool(2);
  const size_t outer = 6, inner = 20000;
  std::vector<std::atomic<size_t>> sums(outer);
  for (auto& s : sums) s.store(0);
  pool.ParallelTasks(outer, 0, [&](size_t t) {
    pool.ParallelFor(inner, 512, [&](size_t begin, size_t end) {
      sums[t].fetch_add(end - begin);
    });
  });
  for (size_t t = 0; t < outer; ++t) ASSERT_EQ(sums[t].load(), inner);
}

TEST(ThreadPoolTest, SizeOnePoolRunsEverythingInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  ThreadPoolStats before = pool.stats();
  pool.ParallelFor(50000, 1024, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  ThreadPoolStats after = pool.stats();
  EXPECT_EQ(after.inline_regions - before.inline_regions, 1);
  EXPECT_EQ(after.parallel_regions - before.parallel_regions, 0);
  EXPECT_EQ(after.pool_tasks - before.pool_tasks, 0);
}

TEST(ThreadPoolTest, StatsCountFanOutAndInlineRegions) {
  ThreadPool pool(4);
  ThreadPoolStats before = pool.stats();
  // 97 chunks >> 4 workers: fans out, enqueues parallelism-1 runner tasks.
  pool.ParallelFor(100000, 1024, [](size_t, size_t) {});
  ThreadPoolStats mid = pool.stats();
  EXPECT_EQ(mid.parallel_regions - before.parallel_regions, 1);
  EXPECT_EQ(mid.pool_tasks - before.pool_tasks, 3);
  // A single chunk is not worth fanning out: inline.
  pool.ParallelFor(100, 1024, [](size_t, size_t) {});
  ThreadPoolStats after = pool.stats();
  EXPECT_EQ(after.inline_regions - mid.inline_regions, 1);
  EXPECT_EQ(after.parallel_regions - mid.parallel_regions, 0);
}

TEST(ThreadPoolTest, EnvParallelismHonorsWuwThreads) {
  const char* old = std::getenv("WUW_THREADS");
  std::string saved = old != nullptr ? old : "";
  setenv("WUW_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::EnvParallelism(), 3);
  setenv("WUW_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::EnvParallelism(), 1);
  // Junk / non-positive values fall back to hardware_concurrency (>= 1).
  setenv("WUW_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::EnvParallelism(), 1);
  setenv("WUW_THREADS", "banana", 1);
  EXPECT_GE(ThreadPool::EnvParallelism(), 1);
  // Absurd sizes clamp rather than spawn a thread herd.
  setenv("WUW_THREADS", "100000", 1);
  EXPECT_EQ(ThreadPool::EnvParallelism(), 512);
  if (old != nullptr) {
    setenv("WUW_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("WUW_THREADS");
  }
}

TEST(ThreadPoolTest, ShouldParallelizeGate) {
  EXPECT_FALSE(ShouldParallelize(nullptr, 1 << 20));
  ThreadPool one(1);
  EXPECT_FALSE(ShouldParallelize(&one, 1 << 20));
  ThreadPool two(2);
  EXPECT_FALSE(ShouldParallelize(&two, kMinParallelRows - 1));
  EXPECT_TRUE(ShouldParallelize(&two, kMinParallelRows));
}

}  // namespace
}  // namespace wuw
