// The WUW_WINDOW_BUDGET env knob, in its own binary: EnvWindowBudget()
// parses the spec once into a static, so the knob must be set before the
// first Executor::Execute anywhere in the process — a static initializer
// here does that.  (window_budget_test.cc covers explicit budgets; this
// binary covers the auto-split path, where the executor chains windows
// itself and always completes.)
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/window_budget.h"
#include "test_util.h"

namespace wuw {
namespace {

// Before main(), and therefore before any EnvWindowBudget() call.
const bool kEnvArmed = [] {
  setenv("WUW_WINDOW_BUDGET", "1", /*overwrite=*/1);
  return true;
}();

TEST(WindowEnvTest, EnvKnobIsParsedOnce) {
  ASSERT_TRUE(kEnvArmed);
  const WindowBudgetOptions* env = EnvWindowBudget();
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->work_units, 1);
  EXPECT_EQ(env->deadline_seconds, 0);

  // Later setenv must not change the cached spec (parse-once contract).
  setenv("WUW_WINDOW_BUDGET", "999999", 1);
  EXPECT_EQ(EnvWindowBudget()->work_units, 1);
}

TEST(WindowEnvTest, AutoSplitCompletesInManyWindowsAndConverges) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                              /*seed=*/41);
  testutil::ApplyTripleChanges(&w, 0.25, 10, 45);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  ExecutionReport report = Executor(&w).Execute(s);

  // A 1-unit budget pauses after every step, so the run spans one window
  // per step — but env mode always runs to completion.
  EXPECT_EQ(report.window_result, WindowResult::kCompleted);
  EXPECT_EQ(report.steps_completed, static_cast<int64_t>(s.size()));
  EXPECT_GE(report.windows, static_cast<int64_t>(s.size()));
  // The limiting budget forced journaling; the run finished, so the
  // journal is complete.
  EXPECT_TRUE(w.journal().complete());
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));
}

TEST(WindowEnvTest, ExplicitBudgetOverridesEnv) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              /*seed=*/53);
  testutil::ApplyTripleChanges(&w, 0.2, 8, 57);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  // An explicit unlimited budget disables the env knob entirely: one
  // window, no auto-split.
  WindowBudget unlimited;
  ExecutorOptions options;
  options.budget = &unlimited;
  ExecutionReport report = Executor(&w, options).Execute(s);
  EXPECT_EQ(report.window_result, WindowResult::kCompleted);
  EXPECT_EQ(report.windows, 1);
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
