// Edge-case suite for predicate selectivity estimation (stats/selectivity.h),
// complementing the happy-path coverage in stats_test.cc: statistics with
// null min/max, string-typed range predicates (both orientations), columns
// with zero observed distinct values, degenerate single-value ranges, date
// linearization across month gaps, and out-of-schema columns.  Every
// estimate must also respect the [0, 1] contract.
#include <gtest/gtest.h>

#include <string>

#include "parser/sql_parser.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace wuw {
namespace {

ScalarExpr::Ptr Parse(const char* sql) {
  std::string error;
  auto e = ParseScalarExpr(sql, &error);
  EXPECT_NE(e, nullptr) << sql << ": " << error;
  return e;
}

// ---- null min/max statistics ----------------------------------------------

class NullStatsSelectivityTest : public ::testing::Test {
 protected:
  NullStatsSelectivityTest()
      : schema_({{"k", TypeId::kInt64}, {"s", TypeId::kString}}) {
    // An all-null column collects ColumnStats with null min/max and zero
    // distinct values; an empty table yields the same for every column.
    Table t(schema_);
    t.Add(Tuple({Value::Null(), Value::Null()}), 1);
    t.Add(Tuple({Value::Null(), Value::Null()}), 1);
    stats_ = TableStats::Collect(t);
  }

  double Sel(const char* sql) {
    return EstimateSelectivity(Parse(sql), schema_, stats_);
  }

  Schema schema_;
  TableStats stats_;
};

TEST_F(NullStatsSelectivityTest, RangeOverNullMinMaxFallsBack) {
  ASSERT_TRUE(stats_.columns[0].min.is_null());
  ASSERT_TRUE(stats_.columns[0].max.is_null());
  EXPECT_NEAR(Sel("k < 10"), kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(Sel("k >= 10"), 1.0 - kDefaultSelectivity, 1e-9);
  // Mirrored constant-first orientation hits the same fallback.
  EXPECT_NEAR(Sel("10 > k"), kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(Sel("10 <= k"), 1.0 - kDefaultSelectivity, 1e-9);
}

TEST_F(NullStatsSelectivityTest, ZeroDistinctClampsToOne) {
  ASSERT_EQ(stats_.columns[0].distinct, 0);
  // DistinctAt clamps 0 -> 1, so equality estimates a full match rather
  // than dividing by zero.
  EXPECT_NEAR(Sel("k = 7"), 1.0, 1e-9);
  EXPECT_NEAR(Sel("k <> 7"), 0.0, 1e-9);
  EXPECT_NEAR(Sel("k = s"), 1.0, 1e-9);  // col = col, both zero-distinct
}

TEST_F(NullStatsSelectivityTest, EmptyTableStatsBehaveTheSame) {
  Table empty(schema_);
  TableStats stats = TableStats::Collect(empty);
  EXPECT_EQ(stats.rows, 0);
  EXPECT_NEAR(EstimateSelectivity(Parse("k < 10"), schema_, stats),
              kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(Parse("k = 10"), schema_, stats), 1.0,
              1e-9);
}

// ---- string-typed range predicates ----------------------------------------

class StringRangeSelectivityTest : public ::testing::Test {
 protected:
  StringRangeSelectivityTest()
      : schema_({{"seg", TypeId::kString}, {"k", TypeId::kInt64}}) {
    Table t(schema_);
    for (int64_t i = 0; i < 10; ++i) {
      t.Add(Tuple({Value::String("S" + std::to_string(i)), Value::Int64(i)}),
            1);
    }
    stats_ = TableStats::Collect(t);
  }

  double Sel(const char* sql) {
    return EstimateSelectivity(Parse(sql), schema_, stats_);
  }

  Schema schema_;
  TableStats stats_;
};

TEST_F(StringRangeSelectivityTest, StringRangesFallBackBothOrientations) {
  // Range math needs a numeric axis; strings have populated min/max here
  // but still fall back to the magic number.
  ASSERT_FALSE(stats_.columns[0].min.is_null());
  EXPECT_NEAR(Sel("seg < 'S5'"), kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(Sel("seg >= 'S5'"), 1.0 - kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(Sel("'S5' > seg"), kDefaultSelectivity, 1e-9);
  EXPECT_NEAR(Sel("'S5' <= seg"), 1.0 - kDefaultSelectivity, 1e-9);
}

TEST_F(StringRangeSelectivityTest, StringEqualityStillUsesDistinct) {
  // Only range interpolation is type-limited: equality works off distinct
  // counts, so the fallback must not leak into it.
  EXPECT_NEAR(Sel("seg = 'S5'"), 1.0 / 10, 1e-9);
  EXPECT_NEAR(Sel("seg <> 'S5'"), 9.0 / 10, 1e-9);
}

TEST_F(StringRangeSelectivityTest, StringConstantAgainstNumericColumn) {
  // A string literal compared to an int column: FractionBelow refuses the
  // mixed-type axis and falls back rather than linearizing garbage.
  EXPECT_NEAR(Sel("k < 'S5'"), kDefaultSelectivity, 1e-9);
}

// ---- degenerate and edge ranges -------------------------------------------

TEST(SelectivityEdgeTest, SingleValueRangeIsAStepFunction) {
  Schema schema({{"k", TypeId::kInt64}});
  Table t(schema);
  for (int i = 0; i < 4; ++i) t.Add(Tuple({Value::Int64(42)}), 1);
  TableStats stats = TableStats::Collect(t);
  ASSERT_EQ(stats.columns[0].min.AsInt64(), 42);
  ASSERT_EQ(stats.columns[0].max.AsInt64(), 42);

  // min == max: the uniform-interpolation denominator is zero, so the
  // estimate degenerates to a step strictly above the single value —
  // FractionBelow is 0 at or below it, 1 above it.
  auto sel = [&](const char* sql) {
    return EstimateSelectivity(Parse(sql), schema, stats);
  };
  EXPECT_NEAR(sel("k < 42"), 0.0, 1e-9);
  EXPECT_NEAR(sel("k < 43"), 1.0, 1e-9);
  EXPECT_NEAR(sel("k > 41"), 1.0, 1e-9);
  EXPECT_NEAR(sel("k > 42"), 1.0, 1e-9);  // boundary favors a full match
  EXPECT_NEAR(sel("k > 43"), 0.0, 1e-9);
}

TEST(SelectivityEdgeTest, ConstantsOutsideTheRangeClamp) {
  Schema schema({{"k", TypeId::kInt64}});
  Table t(schema);
  for (int64_t i = 10; i <= 20; ++i) t.Add(Tuple({Value::Int64(i)}), 1);
  TableStats stats = TableStats::Collect(t);

  auto sel = [&](const char* sql) {
    return EstimateSelectivity(Parse(sql), schema, stats);
  };
  EXPECT_NEAR(sel("k < 5"), 0.0, 1e-9);    // below min
  EXPECT_NEAR(sel("k < 100"), 1.0, 1e-9);  // above max
  EXPECT_NEAR(sel("k > 100"), 0.0, 1e-9);
}

TEST(SelectivityEdgeTest, DateRangesLinearizeAcrossMonthGaps) {
  Schema schema({{"d", TypeId::kDate}});
  Table t(schema);
  // Dec 1 through Jan 31: the yyyymmdd encoding jumps by 8870 at the year
  // boundary, but the day axis is continuous.
  for (int day = 1; day <= 31; ++day) {
    t.Add(Tuple({Value::Date(19921200 + day)}), 1);
    t.Add(Tuple({Value::Date(19930100 + day)}), 1);
  }
  TableStats stats = TableStats::Collect(t);
  double sel = EstimateSelectivity(Parse("d < DATE '1993-01-01'"), schema,
                                   stats);
  // The boundary sits halfway through the covered days; a raw yyyymmdd
  // interpolation would put it at ~0.3% instead.
  EXPECT_NEAR(sel, 0.5, 0.05);
}

TEST(SelectivityEdgeTest, UnknownColumnsFallBack) {
  Schema schema({{"k", TypeId::kInt64}});
  Table t(schema);
  t.Add(Tuple({Value::Int64(1)}), 1);
  TableStats stats = TableStats::Collect(t);
  Schema wider({{"k", TypeId::kInt64}, {"missing", TypeId::kInt64}});
  // `missing` resolves in the schema but has no collected column stats.
  EXPECT_NEAR(EstimateSelectivity(Parse("missing = 3"), wider, stats),
              kDefaultSelectivity, 1e-9);
}

TEST(SelectivityEdgeTest, EstimatesStayWithinUnitInterval) {
  Schema schema({{"k", TypeId::kInt64}, {"s", TypeId::kString}});
  Table t(schema);
  t.Add(Tuple({Value::Null(), Value::Null()}), 1);
  TableStats stats = TableStats::Collect(t);
  for (const char* sql :
       {"k < 10", "k = 1 AND s = 'x'", "k = 1 OR s = 'x'", "NOT k < 10",
        "k <> 1", "s < 'a' OR NOT s >= 'b'"}) {
    double sel = EstimateSelectivity(Parse(sql), schema, stats);
    EXPECT_GE(sel, 0.0) << sql;
    EXPECT_LE(sel, 1.0) << sql;
  }
}

}  // namespace
}  // namespace wuw
