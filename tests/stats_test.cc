#include <gtest/gtest.h>

#include "stats/cardinality.h"
#include "stats/delta_estimator.h"
#include "core/min_work.h"
#include "exec/executor.h"
#include "parser/sql_parser.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"
#include "view/recompute.h"

namespace wuw {
namespace {

// ---- TableStats ----

TEST(TableStatsTest, CollectsDistinctAndRange) {
  Table t(Schema({{"k", TypeId::kInt64}, {"s", TypeId::kString}}));
  t.Add(Tuple({Value::Int64(1), Value::String("a")}), 1);
  t.Add(Tuple({Value::Int64(5), Value::String("b")}), 2);
  t.Add(Tuple({Value::Int64(5), Value::String("a")}), 1);
  TableStats stats = TableStats::Collect(t);
  EXPECT_EQ(stats.rows, 4);
  EXPECT_EQ(stats.columns[0].distinct, 2);
  EXPECT_EQ(stats.columns[0].min.AsInt64(), 1);
  EXPECT_EQ(stats.columns[0].max.AsInt64(), 5);
  EXPECT_EQ(stats.columns[1].distinct, 2);
}

TEST(TableStatsTest, NullsIgnoredInRanges) {
  Table t(Schema({{"k", TypeId::kInt64}}));
  t.Add(Tuple({Value::Null()}), 1);
  t.Add(Tuple({Value::Int64(7)}), 1);
  TableStats stats = TableStats::Collect(t);
  EXPECT_EQ(stats.columns[0].distinct, 1);
  EXPECT_EQ(stats.columns[0].min.AsInt64(), 7);
}

TEST(TableStatsTest, DeltaFootprintUsesAbsoluteCounts) {
  DeltaRelation d(Schema({{"k", TypeId::kInt64}}));
  d.Add(Tuple({Value::Int64(1)}), -3);
  d.Add(Tuple({Value::Int64(2)}), 2);
  TableStats stats = TableStats::Collect(d);
  EXPECT_EQ(stats.rows, 5);
  EXPECT_EQ(stats.columns[0].distinct, 2);
}

TEST(TableStatsTest, DistinctAtClampsToOne) {
  TableStats empty;
  EXPECT_EQ(empty.DistinctAt(3), 1);
}

// ---- Selectivity ----

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest()
      : schema_({{"k", TypeId::kInt64},
                 {"seg", TypeId::kString},
                 {"d", TypeId::kDate}}) {
    Table t(schema_);
    for (int64_t i = 0; i < 100; ++i) {
      t.Add(Tuple({Value::Int64(i), Value::String("S" + std::to_string(i % 5)),
                   Value::Date(19920101 + (i % 50))}),
            1);
    }
    stats_ = TableStats::Collect(t);
  }

  double Sel(const char* sql) {
    std::string error;
    auto e = ParseScalarExpr(sql, &error);
    EXPECT_NE(e, nullptr) << error;
    return EstimateSelectivity(e, schema_, stats_);
  }

  Schema schema_;
  TableStats stats_;
};

TEST_F(SelectivityTest, EqualityIsOneOverDistinct) {
  EXPECT_NEAR(Sel("seg = 'S0'"), 1.0 / 5, 1e-9);
  EXPECT_NEAR(Sel("k = 42"), 1.0 / 100, 1e-9);
  EXPECT_NEAR(Sel("k <> 42"), 99.0 / 100, 1e-9);
}

TEST_F(SelectivityTest, RangeUsesMinMax) {
  // k in [0, 99]: k < 50 covers about half.
  EXPECT_NEAR(Sel("k < 50"), 50.0 / 99, 0.02);
  EXPECT_NEAR(Sel("k >= 50"), 1.0 - 50.0 / 99, 0.02);
  // Mirrored constant-first form.
  EXPECT_NEAR(Sel("50 > k"), 50.0 / 99, 0.02);
}

TEST_F(SelectivityTest, ConjunctionMultipliesDisjunctionAdds) {
  double a = Sel("seg = 'S0'"), b = Sel("k < 50");
  EXPECT_NEAR(Sel("seg = 'S0' AND k < 50"), a * b, 1e-9);
  EXPECT_NEAR(Sel("seg = 'S0' OR k < 50"), a + b - a * b, 1e-9);
  EXPECT_NEAR(Sel("NOT seg = 'S0'"), 1.0 - a, 1e-9);
}

TEST_F(SelectivityTest, FallbacksAndBounds) {
  EXPECT_NEAR(Sel("k + 1 = 5"), kDefaultSelectivity, 1e-9);
  EXPECT_GE(Sel("seg < 'S3'"), 0.0);  // string ranges fall back
  EXPECT_EQ(EstimateSelectivity(nullptr, schema_, stats_), 1.0);
  EXPECT_NEAR(Sel("TRUE"), 1.0, 1e-9);
}

TEST_F(SelectivityTest, ColEqColUsesMaxDistinct) {
  Schema two({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
  Table t(two);
  for (int64_t i = 0; i < 20; ++i) {
    t.Add(Tuple({Value::Int64(i % 4), Value::Int64(i % 10)}), 1);
  }
  TableStats stats = TableStats::Collect(t);
  std::string error;
  auto e = ParseScalarExpr("a = b", &error);
  EXPECT_NEAR(EstimateSelectivity(e, two, stats), 1.0 / 10, 1e-9);
}

// ---- Cardinality on real TPC-D data ----

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest() {
    tpcd::GeneratorOptions options;
    options.scale_factor = 0.005;
    options.seed = 3;
    warehouse_ = std::make_unique<Warehouse>(
        tpcd::MakeTpcdWarehouse(options, {"Q3", "Q10"}));
  }

  std::vector<SourceProfile> Profiles(const ViewDefinition& def) {
    std::vector<SourceProfile> out;
    for (const std::string& src : def.sources()) {
      out.push_back(SourceProfile{
          warehouse_->vdag().OutputSchema(src),
          TableStats::Collect(*warehouse_->catalog().MustGetTable(src))});
    }
    return out;
  }

  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(CardinalityTest, Q3JoinEstimateWithinSmallFactor) {
  const auto& def = *warehouse_->vdag().definition("Q3");
  int64_t actual_join = 0;
  RecomputeView(def, warehouse_->catalog(), nullptr, &actual_join);
  JoinEstimate est = EstimateDefinitionOutput(def, Profiles(def));
  ASSERT_GT(actual_join, 0);
  double ratio = est.rows / static_cast<double>(actual_join);
  EXPECT_GT(ratio, 0.25) << est.rows << " vs " << actual_join;
  EXPECT_LT(ratio, 4.0) << est.rows << " vs " << actual_join;
}

TEST_F(CardinalityTest, Q3GroupEstimateTracksExtent) {
  const auto& def = *warehouse_->vdag().definition("Q3");
  JoinEstimate est = EstimateDefinitionOutput(def, Profiles(def));
  int64_t actual_groups =
      warehouse_->catalog().MustGetTable("Q3")->cardinality();
  double ratio = est.groups / std::max<double>(1, actual_groups);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(CardinalityTest, EmptySourceYieldsZero) {
  const auto& def = *warehouse_->vdag().definition("Q3");
  auto profiles = Profiles(def);
  profiles[2].stats.rows = 0;  // empty LINEITEM operand
  JoinEstimate est = EstimateDefinitionOutput(def, profiles);
  EXPECT_EQ(est.rows, 0.0);
}

// ---- End-to-end: stats-based SizeMap vs oracle ----

TEST(StatsEstimatorTest, TightensInsertHeavyEstimates) {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.01;
  options.seed = 5;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&w, 0.0, 0.10, 7);  // inserts only

  SizeMap oracle = w.OracleSizes();
  SizeMap first_order = w.EstimatedSizes();
  SizeMap with_stats = w.EstimatedSizesWithStats();

  auto error_factor = [](const SizeMap& m, const std::string& q, double o) {
    double e = static_cast<double>(m.Get(q).delta_abs);
    return std::max(e / o, o / std::max(1.0, e));
  };
  for (const std::string q : {"Q3", "Q10"}) {
    double o = std::max<double>(1, oracle.Get(q).delta_abs);
    double fo_err = error_factor(first_order, q, o);
    double st_err = error_factor(with_stats, q, o);
    // The cardinality model must never be materially worse than the crude
    // churn model, and must stay within an order of magnitude even on this
    // adversarial workload (fresh-key inserts).
    EXPECT_LT(st_err, 12.0) << q << " stats-based off by " << st_err;
    EXPECT_LE(st_err, fo_err * 1.25)
        << q << ": stats-based (" << st_err
        << "x) materially worse than first-order (" << fo_err << "x)";
  }
  // And on Q3 (two range filters + fresh keys) it is dramatically better:
  // the churn model is ~10x off, the cardinality model within ~2x.
  double o3 = std::max<double>(1, oracle.Get("Q3").delta_abs);
  EXPECT_GT(error_factor(first_order, "Q3", o3), 5.0);
  EXPECT_LT(error_factor(with_stats, "Q3", o3), 4.0);
}

TEST(StatsEstimatorTest, BaseViewsExactAndOrderingStable) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 120, 9);
  testutil::ApplyTripleChanges(&w, 0.2, 10, 11);
  SizeMap with_stats = w.EstimatedSizesWithStats();
  SizeMap oracle = w.OracleSizes();
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_EQ(with_stats.Get(base).delta_abs, oracle.Get(base).delta_abs)
        << base;
    EXPECT_EQ(with_stats.Get(base).delta_net, oracle.Get(base).delta_net)
        << base;
  }
}

TEST(StatsEstimatorTest, QuietBatchEstimatesZero) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, 13);
  SizeMap with_stats = w.EstimatedSizesWithStats();
  for (const std::string& name : w.vdag().view_names()) {
    EXPECT_EQ(with_stats.Get(name).delta_abs, 0) << name;
  }
}

TEST(StatsEstimatorTest, MinWorkPlansWithStatsStillConverge) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 60, 17);
  testutil::ApplyTripleChanges(&w, 0.15, 8, 19);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizesWithStats()).strategy;
  Executor executor(&w);
  executor.Execute(s);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
