// The tentpole property suite: for random VDAGs and every optimizer
// strategy, kill the update window at EVERY fault point and (sampled) hit
// index, restore the pre-window state, ResumeStrategy — and the warehouse
// must land bit-identically on the recompute ground truth.  Swept under
// the sequential and the stage-parallel executor, with and without a
// SubplanCache attached.
//
// Each sweep is two passes: a count-only run enumerates the (point, hits)
// pairs the execution actually reaches, then each sampled (point, k)
// becomes a hit-count trigger on a fresh clone.  Sequential executions are
// deterministic, so the trigger must fire; parallel scheduling can shift
// per-point hit totals between runs, so there a non-firing trigger just
// asserts the completed run converged.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/min_work.h"
#include "core/min_work_single.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "fault/fault_injection.h"
#include "plan/subplan_cache.h"
#include "storage/paged_store.h"
#include "test_util.h"

namespace wuw {
namespace {

using fault::FaultInjectedError;
using fault::FaultPlan;
using fault::HitCounts;
using fault::ScopedFaultPlan;
using fault::Trigger;

constexpr int64_t kNoCache = -2;     // sentinel: run eager, no cache
constexpr int64_t kTightCache = 16 << 10;  // eviction churn under faults

/// Caps the per-point kill sweep: high-count points (plan.eval fires per
/// plan node, install.row per row) are stride-sampled down to at most this
/// many hit indices, always including the first and last.
constexpr int64_t kMaxKillsPerPoint = 5;

std::vector<int64_t> SampleHits(int64_t total) {
  std::vector<int64_t> hits;
  if (total <= 0) return hits;
  int64_t stride = std::max<int64_t>(1, total / kMaxKillsPerPoint);
  for (int64_t k = 1; k <= total; k += stride) hits.push_back(k);
  if (hits.back() != total) hits.push_back(total);
  return hits;
}

struct Workbench {
  Vdag vdag;
  Warehouse warehouse;
  Catalog truth;
};

Workbench MakeWorkbench(uint64_t seed, size_t bases, size_t derived) {
  tpcd::Rng rng(seed);
  Vdag vdag = testutil::RandomVdag(&rng, bases, derived);
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, seed * 31 + 1);
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed * 17 + 3);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  return Workbench{std::move(vdag), std::move(w), std::move(truth)};
}

std::unique_ptr<SubplanCache> MakeCache(int64_t budget) {
  if (budget == kNoCache) return nullptr;
  return std::make_unique<SubplanCache>(SubplanCacheOptions{budget});
}

/// One full kill sweep of `s` under the sequential executor.  Every run
/// (count pass, victim, resume) gets a fresh cache of the same budget so
/// per-run hit counts are deterministic; the resume shares the victim's
/// cache, which is sound for clone-restore (versions line up).
void SweepSequential(const Workbench& wb, const Strategy& s, int64_t budget) {
  auto run = [&](Warehouse* target, SubplanCache* cache) {
    ExecutorOptions options;
    options.journal = true;
    options.subplan_cache = cache;
    Executor executor(target, options);
    executor.Execute(s);
  };

  std::vector<std::pair<std::string, int64_t>> counts;
  {
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    Warehouse clone = wb.warehouse.Clone();
    auto cache = MakeCache(budget);
    run(&clone, cache.get());
    // Capture BEFORE the convergence check: with paging armed,
    // ContentsEqual itself faults hibernated extents back in, and those
    // paged.io.read hits are not part of the run being swept.
    counts = HitCounts();
    ASSERT_TRUE(clone.catalog().ContentsEqual(wb.truth))
        << "count pass diverged";
  }
  ASSERT_FALSE(counts.empty()) << "no fault points reached?";

  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      Warehouse victim = wb.warehouse.Clone();
      auto cache = MakeCache(budget);
      bool died = false;
      {
        FaultPlan plan;
        plan.triggers.push_back(Trigger{point, k, 1.0});
        ScopedFaultPlan scoped(plan);
        try {
          run(&victim, cache.get());
        } catch (const FaultInjectedError&) {
          died = true;
        }
      }
      // Sequential execution is deterministic: the count pass proved hit k
      // exists, so the trigger must fire.
      ASSERT_TRUE(died);

      Warehouse restored = wb.warehouse.Clone();
      ExecutorOptions resume_options;
      resume_options.subplan_cache = cache.get();
      ResumeReport report =
          ResumeStrategy(victim.journal(), &restored, resume_options);
      EXPECT_EQ(report.steps_replayed + report.steps_executed,
                static_cast<int64_t>(s.size()));
      ASSERT_TRUE(restored.catalog().ContentsEqual(wb.truth));
    }
  }
}

/// Kill sweep under the stage-parallel executor.  Worker scheduling can
/// shift per-point hit totals between runs, so a non-firing trigger is
/// tolerated — the run then completed and must have converged.
void SweepParallel(const Workbench& wb, const Strategy& s, int64_t budget) {
  ParallelStrategy staged = ParallelizeStrategy(wb.vdag, s);
  auto run = [&](Warehouse* target, SubplanCache* cache) {
    ParallelExecutorOptions options;
    options.workers = 3;
    options.term_workers = 2;
    options.journal = true;
    options.subplan_cache = cache;
    ParallelExecutor executor(target, options);
    executor.Execute(staged);
  };

  std::vector<std::pair<std::string, int64_t>> counts;
  {
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    Warehouse clone = wb.warehouse.Clone();
    auto cache = MakeCache(budget);
    run(&clone, cache.get());
    counts = HitCounts();  // before ContentsEqual — see SweepSequential
    ASSERT_TRUE(clone.catalog().ContentsEqual(wb.truth))
        << "count pass diverged";
  }

  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      Warehouse victim = wb.warehouse.Clone();
      auto cache = MakeCache(budget);
      bool died = false;
      {
        FaultPlan plan;
        plan.triggers.push_back(Trigger{point, k, 1.0});
        ScopedFaultPlan scoped(plan);
        try {
          run(&victim, cache.get());
        } catch (const FaultInjectedError&) {
          died = true;
        }
      }
      if (!died) {
        ASSERT_TRUE(victim.catalog().ContentsEqual(wb.truth));
        continue;
      }
      Warehouse restored = wb.warehouse.Clone();
      ExecutorOptions resume_options;
      resume_options.subplan_cache = cache.get();
      ResumeReport report =
          ResumeStrategy(victim.journal(), &restored, resume_options);
      EXPECT_EQ(report.steps_replayed + report.steps_executed,
                static_cast<int64_t>(staged.num_expressions()));
      ASSERT_TRUE(restored.catalog().ContentsEqual(wb.truth));
    }
  }
}

/// The paused-window dimension: budget-pause the run halfway, then kill
/// the continue-in-place resume at every reached fault point.  The journal
/// at death holds the paused prefix plus whatever the resume completed;
/// recovery must still replay it onto the restored pre-window state and
/// land on the ground truth — a crash during a carryover window is no
/// worse than a crash during a plain one.
void SweepPausedResume(const Workbench& wb, const Strategy& s,
                       int64_t budget) {
  // Work budget that pauses after the first half of the steps (analytic,
  // so the same split holds under every cache budget).
  int64_t pause_work = 0;
  size_t n = 0;
  {
    Warehouse clone = wb.warehouse.Clone();
    ExecutionReport full = Executor(&clone).Execute(s);
    n = full.per_expression.size();
    if (n < 2) return;  // nothing to pause between
    for (size_t i = 0; i < n / 2; ++i) {
      pause_work += full.per_expression[i].linear_work;
    }
  }

  auto pause = [&](Warehouse* target, SubplanCache* cache) {
    WindowBudget window_budget(WindowBudgetOptions{pause_work});
    ExecutorOptions options;
    options.subplan_cache = cache;
    options.budget = &window_budget;
    ExecutionReport r = Executor(target, options).Execute(s);
    ASSERT_EQ(r.window_result, WindowResult::kPaused);
    // Zero-work steps can move the boundary up by a step or two; all that
    // matters is a genuine mid-run pause.
    ASSERT_LT(r.steps_completed, static_cast<int64_t>(n));
  };
  auto resume_in_place = [&](Warehouse* target, SubplanCache* cache) {
    ExecutorOptions options;
    options.subplan_cache = cache;
    ResumeStrategy(target->journal(), target, options,
                   ResumeMode::kContinueInPlace);
  };

  // Count pass: faults armed only around the resume, so the sweep covers
  // exactly the carryover window's fault points.
  std::vector<std::pair<std::string, int64_t>> counts;
  {
    Warehouse clone = wb.warehouse.Clone();
    auto cache = MakeCache(budget);
    pause(&clone, cache.get());
    if (::testing::Test::HasFatalFailure()) return;
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    resume_in_place(&clone, cache.get());
    counts = HitCounts();  // before ContentsEqual — see SweepSequential
    ASSERT_TRUE(clone.catalog().ContentsEqual(wb.truth))
        << "count pass diverged";
  }
  ASSERT_FALSE(counts.empty()) << "no fault points reached in resume?";

  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      Warehouse victim = wb.warehouse.Clone();
      auto cache = MakeCache(budget);
      pause(&victim, cache.get());
      if (::testing::Test::HasFatalFailure()) return;
      bool died = false;
      {
        FaultPlan plan;
        plan.triggers.push_back(Trigger{point, k, 1.0});
        ScopedFaultPlan scoped(plan);
        try {
          resume_in_place(&victim, cache.get());
        } catch (const FaultInjectedError&) {
          died = true;
        }
      }
      ASSERT_TRUE(died);

      Warehouse restored = wb.warehouse.Clone();
      ExecutorOptions resume_options;
      resume_options.subplan_cache = cache.get();
      ResumeReport report =
          ResumeStrategy(victim.journal(), &restored, resume_options);
      EXPECT_EQ(report.steps_replayed + report.steps_executed,
                static_cast<int64_t>(s.size()));
      ASSERT_TRUE(restored.catalog().ContentsEqual(wb.truth));
    }
  }
}

struct SweepParam {
  uint64_t seed;
  size_t bases;
  size_t derived;
};

class FaultRecoveryPropertyTest : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(FaultRecoveryPropertyTest, SequentialKillAtEveryPointConverges) {
  const SweepParam& p = GetParam();
  const uint64_t seed = p.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Workbench wb = MakeWorkbench(seed, p.bases, p.derived);

  SizeMap sizes = wb.warehouse.EstimatedSizes();
  const Strategy strategies[] = {MinWork(wb.vdag, sizes).strategy,
                                 Prune(wb.vdag, sizes).strategy,
                                 MakeDualStageVdagStrategy(wb.vdag)};
  for (const Strategy& s : strategies) {
    for (int64_t budget : {kNoCache, kTightCache}) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " strategy " +
                   s.ToString());
      SweepSequential(wb, s, budget);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_P(FaultRecoveryPropertyTest, ParallelKillAtEveryPointConverges) {
  const SweepParam& p = GetParam();
  const uint64_t seed = p.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Workbench wb = MakeWorkbench(seed, p.bases, p.derived);

  SizeMap sizes = wb.warehouse.EstimatedSizes();
  const Strategy strategies[] = {MinWork(wb.vdag, sizes).strategy,
                                 MakeDualStageVdagStrategy(wb.vdag)};
  for (const Strategy& s : strategies) {
    for (int64_t budget : {kNoCache, kTightCache}) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " strategy " +
                   s.ToString());
      SweepParallel(wb, s, budget);
      if (HasFatalFailure()) return;
    }
  }
}

TEST_P(FaultRecoveryPropertyTest, KillDuringPausedWindowResumeConverges) {
  const SweepParam& p = GetParam();
  const uint64_t seed = p.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Workbench wb = MakeWorkbench(seed, p.bases, p.derived);

  SizeMap sizes = wb.warehouse.EstimatedSizes();
  const Strategy s = MinWork(wb.vdag, sizes).strategy;
  for (int64_t budget : {kNoCache, kTightCache}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    SweepPausedResume(wb, s, budget);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultRecoveryPropertyTest,
                         ::testing::Values(SweepParam{101, 3, 2},
                                           SweepParam{102, 2, 3}),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// The WUW_MEM_MB dimension: the same kill-anywhere sweep with the extent
// pager armed at a tiny budget (everything evictable hibernates at every
// touch) and the operator grace-spill paths forced on.  The count pass
// then reaches the paged tier's `paged.io.read` / `paged.io.write` sites
// alongside the engine's, so the sweep kills mid-image-write, mid-fault-in,
// and mid-spill-flush — and every resume must still land bit-identically
// on the resident recompute ground truth (clones inherit the arming, so
// victim and restored warehouse page alike).
TEST(FaultRecoveryPropertyTest, PagedKillAtEveryPointConverges) {
  const uint64_t seed = testutil::PropertySeed(113);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Workbench wb = MakeWorkbench(seed, 3, 2);

  paged::PagedOptions paged_options;
  paged_options.budget_bytes = 1;
  paged_options.page_bytes = 512;
  paged_options.partitions = 4;
  paged_options.spill_bytes = 64;
  paged_options.pool_bytes = 1024;
  wb.warehouse.EnablePaging(paged_options);
  paged::ScopedOperatorSpill spill(paged_options);

  SizeMap sizes = wb.warehouse.EstimatedSizes();
  const Strategy s = MinWork(wb.vdag, sizes).strategy;

  // Prove the paged I/O sites are genuinely part of this sweep's surface.
  {
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    Warehouse clone = wb.warehouse.Clone();
    ExecutorOptions options;
    options.journal = true;
    Executor(&clone, options).Execute(s);
    ASSERT_TRUE(clone.catalog().ContentsEqual(wb.truth));
    bool saw_read = false, saw_write = false;
    for (const auto& [point, total] : HitCounts()) {
      saw_read = saw_read || point == "paged.io.read";
      saw_write = saw_write || point == "paged.io.write";
    }
    ASSERT_TRUE(saw_write) << "tiny budget never wrote a page";
    ASSERT_TRUE(saw_read) << "tiny budget never read a page back";
  }

  SweepSequential(wb, s, kNoCache);
  if (::testing::Test::HasFatalFailure()) return;
  SweepParallel(wb, MakeDualStageVdagStrategy(wb.vdag), kNoCache);
}

// MinWorkSingle (Algorithm 4.1) on its home turf — a single derived view
// over n bases — swept sequentially at every point.
TEST(FaultRecoveryPropertyTest, MinWorkSingleStarVdagKillSweep) {
  const uint64_t seed = testutil::PropertySeed(111);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Vdag vdag = testutil::MakeStarVdag("V", 3);
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, seed);
  testutil::ApplyTripleChanges(&w, 0.25, 10, seed + 6);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Workbench wb{std::move(vdag), std::move(w), std::move(truth)};

  Strategy s =
      MinWorkSingle(wb.vdag, "V", wb.warehouse.EstimatedSizes());
  for (int64_t budget : {kNoCache, kTightCache}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    SweepSequential(wb, s, budget);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace wuw
