#include <gtest/gtest.h>

#include "core/size_estimator.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::MakeLoadedWarehouse;

TEST(SizeEstimatorTest, BaseViewsAreExact) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 80, 5);
  ApplyTripleChanges(&w, 0.2, 10, 9);
  SizeMap est = w.EstimatedSizes();
  SizeMap oracle = w.OracleSizes();
  for (const std::string& name : w.vdag().BaseViews()) {
    EXPECT_EQ(est.Get(name).size, oracle.Get(name).size) << name;
    EXPECT_EQ(est.Get(name).delta_abs, oracle.Get(name).delta_abs) << name;
    EXPECT_EQ(est.Get(name).delta_net, oracle.Get(name).delta_net) << name;
  }
}

TEST(SizeEstimatorTest, DeletionOnlySpjEstimateTracksOracle) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 200, 6);
  ApplyTripleChanges(&w, 0.2, 0, 11);
  SizeMap est = w.EstimatedSizes();
  SizeMap oracle = w.OracleSizes();
  // V4 is SPJ over B, C: first-order model should land within 2x.
  double e = static_cast<double>(est.Get("V4").delta_abs);
  double o = static_cast<double>(oracle.Get("V4").delta_abs);
  ASSERT_GT(o, 0);
  EXPECT_GT(e, 0.5 * o);
  EXPECT_LT(e, 2.0 * o);
  // Net is negative under pure deletions.
  EXPECT_LT(est.Get("V4").delta_net, 0);
  EXPECT_LT(oracle.Get("V4").delta_net, 0);
}

TEST(SizeEstimatorTest, AggregateDeltaBoundedByTwiceGroups) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 200, 7);
  ApplyTripleChanges(&w, 0.3, 0, 13);
  SizeMap est = w.EstimatedSizes();
  int64_t groups = w.catalog().MustGetTable("V5")->cardinality();
  EXPECT_LE(est.Get("V5").delta_abs, 2 * groups);
  EXPECT_GE(est.Get("V5").delta_abs, 0);
}

TEST(SizeEstimatorTest, NoChangesMeansZeroDeltas) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, 8);
  SizeMap est = w.EstimatedSizes();
  for (const std::string& name : w.vdag().view_names()) {
    EXPECT_EQ(est.Get(name).delta_abs, 0) << name;
    EXPECT_EQ(est.Get(name).delta_net, 0) << name;
  }
}

TEST(SizeEstimatorTest, DesiredOrderingFromEstimatesMatchesOracleOnTpcdLikeSkew) {
  // What MinWork actually consumes is the ORDER of net changes; verify
  // estimate-driven and oracle-driven orderings agree under skewed
  // deletions.
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 150, 9);
  // Skew: delete a lot of C, a little of A/B.
  const Table& a = *w.catalog().MustGetTable("A");
  const Table& b = *w.catalog().MustGetTable("B");
  const Table& c = *w.catalog().MustGetTable("C");
  w.SetBaseDelta("A", tpcd::MakeDeletionDelta(a, 0.02, 1));
  w.SetBaseDelta("B", tpcd::MakeDeletionDelta(b, 0.10, 2));
  w.SetBaseDelta("C", tpcd::MakeDeletionDelta(c, 0.30, 3));

  SizeMap est = w.EstimatedSizes();
  SizeMap oracle = w.OracleSizes();
  auto order_of = [&](const SizeMap& m) {
    std::vector<std::pair<int64_t, std::string>> v;
    for (const std::string& name : w.vdag().BaseViews()) {
      v.emplace_back(m.Get(name).delta_net, name);
    }
    std::sort(v.begin(), v.end());
    std::vector<std::string> names;
    for (auto& [net, name] : v) names.push_back(name);
    return names;
  };
  EXPECT_EQ(order_of(est), order_of(oracle));
}

TEST(SizeEstimatorTest, MissingExtentAborts) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EstimatorInputs inputs;  // no extent sizes
  EXPECT_DEATH(EstimateSizes(vdag, inputs), "no extent size");
}

}  // namespace
}  // namespace wuw
