#include <gtest/gtest.h>

#include "graph/dot.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

TEST(DotTest, VdagRendersNodesAndEdges) {
  Vdag vdag = testutil::MakeFig3Vdag();
  std::string dot = VdagToDot(vdag);
  EXPECT_NE(dot.find("digraph vdag"), std::string::npos);
  for (const std::string& name : vdag.view_names()) {
    EXPECT_NE(dot.find("\"" + name + "\""), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("\"V4\" -> \"B\""), std::string::npos);
  EXPECT_NE(dot.find("\"V5\" -> \"V4\""), std::string::npos);
  // Base views are boxes, derived views carry their level.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("level 2"), std::string::npos);
}

TEST(DotTest, ExpressionGraphMarksAcyclicity) {
  Vdag fig10 = testutil::MakeFig10Vdag();
  std::string cyclic = ExpressionGraphToDot(
      fig10, {"V4", "V2", "V1", "V3", "V5"});
  EXPECT_NE(cyclic.find("CYCLIC"), std::string::npos);

  std::string acyclic = ExpressionGraphToDot(
      fig10, {"V1", "V2", "V3", "V4", "V5"});
  EXPECT_NE(acyclic.find("(acyclic)"), std::string::npos);
  EXPECT_NE(acyclic.find("Comp(V4, {V2})"), std::string::npos);
  EXPECT_NE(acyclic.find("Inst(V5)"), std::string::npos);
}

TEST(DotTest, StrongGraphDiffersFromWeak) {
  Vdag vdag = testutil::MakeFig3Vdag();
  std::vector<std::string> ordering = vdag.view_names();
  std::string eg = ExpressionGraphToDot(vdag, ordering, /*strong=*/false);
  std::string seg = ExpressionGraphToDot(vdag, ordering, /*strong=*/true);
  EXPECT_NE(eg.find("EG"), std::string::npos);
  EXPECT_NE(seg.find("SEG"), std::string::npos);
  // SEG has the extra Inst->Inst chain, so strictly more edges.
  auto count_edges = [](const std::string& s) {
    size_t n = 0, pos = 0;
    while ((pos = s.find(" -> ", pos)) != std::string::npos) {
      ++n;
      pos += 4;
    }
    return n;
  };
  EXPECT_GT(count_edges(seg), count_edges(eg));
}

TEST(DotTest, TpcdVdagRenders) {
  std::string dot = VdagToDot(tpcd::BuildTpcdVdag());
  EXPECT_NE(dot.find("\"Q5\" -> \"REGION\""), std::string::npos);
}

}  // namespace
}  // namespace wuw
