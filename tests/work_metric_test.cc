#include <gtest/gtest.h>

#include "core/strategy_space.h"
#include "core/work_metric.h"
#include "test_util.h"

namespace wuw {
namespace {

/// Fixture replicating Example 3.2 / Example 4.1: V4 = σP(V2 ⋈ V3).
class WorkMetricTest : public ::testing::Test {
 protected:
  WorkMetricTest() {
    vdag_.AddBaseView("V2", testutil::TripleSchema("V2"));
    vdag_.AddBaseView("V3", testutil::TripleSchema("V3"));
    vdag_.AddDerivedView(testutil::SpjTripleView("V4", {"V2", "V3"}));

    sizes_.Set("V2", {/*size=*/100, /*delta_abs=*/10, /*delta_net=*/-10});
    sizes_.Set("V3", {/*size=*/200, /*delta_abs=*/30, /*delta_net=*/-30});
    sizes_.Set("V4", {/*size=*/150, /*delta_abs=*/20, /*delta_net=*/-20});
  }

  Vdag vdag_;
  SizeMap sizes_;
  WorkParams params_;
};

TEST_F(WorkMetricTest, Example32CompWorkEstimates) {
  // Comp(V4,{V2}) = c * (|δV2| + |V3|).
  Strategy s1({Expression::Comp("V4", {"V2"})});
  EXPECT_DOUBLE_EQ(EstimateStrategyWork(vdag_, s1, sizes_, params_).total,
                   10 + 200);

  // Comp(V4,{V2,V3}) = c*((|δV2|+|V3|) + (|δV3|+|V2|) + (|δV2|+|δV3|)).
  Strategy s2({Expression::Comp("V4", {"V2", "V3"})});
  EXPECT_DOUBLE_EQ(EstimateStrategyWork(vdag_, s2, sizes_, params_).total,
                   (10 + 200) + (30 + 100) + (10 + 30));

  // Inst(V4) = i * |δV4|.
  Strategy s3({Expression::Inst("V4")});
  EXPECT_DOUBLE_EQ(EstimateStrategyWork(vdag_, s3, sizes_, params_).total, 20);
}

TEST_F(WorkMetricTest, InstallsChangeLaterCompOperands) {
  // After Inst(V3), Comp(V4,{V2}) reads |V3'| = 200 - 30 = 170.
  Strategy s({
      Expression::Comp("V4", {"V3"}),
      Expression::Inst("V3"),
      Expression::Comp("V4", {"V2"}),
      Expression::Inst("V2"),
      Expression::Inst("V4"),
  });
  WorkBreakdown w = EstimateStrategyWork(vdag_, s, sizes_, params_);
  ASSERT_EQ(w.per_expression.size(), 5u);
  EXPECT_DOUBLE_EQ(w.per_expression[0].work, 30 + 100);  // δV3 + V2
  EXPECT_DOUBLE_EQ(w.per_expression[1].work, 30);
  EXPECT_DOUBLE_EQ(w.per_expression[2].work, 10 + 170);  // δV2 + V3'
  EXPECT_DOUBLE_EQ(w.per_expression[3].work, 10);
  EXPECT_DOUBLE_EQ(w.per_expression[4].work, 20);
}

TEST_F(WorkMetricTest, Example41OrderingRule) {
  // Shrinking views should be propagated-and-installed early: with both
  // deltas pure deletions, the larger shrink (V3, net -30) first is
  // cheaper.
  Strategy v3_first = MakeOneWayViewStrategy("V4", {"V3", "V2"});
  Strategy v2_first = MakeOneWayViewStrategy("V4", {"V2", "V3"});
  double w3 = EstimateStrategyWork(vdag_, v3_first, sizes_, params_).total;
  double w2 = EstimateStrategyWork(vdag_, v2_first, sizes_, params_).total;
  EXPECT_LT(w3, w2);
  // Exactly: difference = |net(V3)| vs |net(V2)| asymmetry.
  EXPECT_DOUBLE_EQ(w2 - w3, (200 - 170) - (100 - 90));
}

TEST_F(WorkMetricTest, GrowingViewsShouldInstallLate) {
  sizes_.Set("V2", {100, 10, +10});  // V2 grows
  sizes_.Set("V3", {200, 30, -30});  // V3 shrinks
  Strategy v3_first = MakeOneWayViewStrategy("V4", {"V3", "V2"});
  Strategy v2_first = MakeOneWayViewStrategy("V4", {"V2", "V3"});
  EXPECT_LT(EstimateStrategyWork(vdag_, v3_first, sizes_, params_).total,
            EstimateStrategyWork(vdag_, v2_first, sizes_, params_).total);
}

TEST_F(WorkMetricTest, WorkParamsScale) {
  Strategy s = MakeDualStageViewStrategy("V4", {"V2", "V3"});
  WorkParams scaled;
  scaled.comp_per_row = 2.0;
  scaled.inst_per_row = 3.0;
  double base_comp = (10 + 200) + (30 + 100) + (10 + 30);
  double base_inst = 10 + 30 + 20;
  EXPECT_DOUBLE_EQ(EstimateStrategyWork(vdag_, s, sizes_, scaled).total,
                   2.0 * base_comp + 3.0 * base_inst);
}

TEST_F(WorkMetricTest, VariantMetricCountsOperandsOnce) {
  // Discussion §7: Comp(V4,{V2,V3}) = c*(|δV2|+|V2|+|δV3|+|V3|).
  Strategy s({Expression::Comp("V4", {"V2", "V3"})});
  EXPECT_DOUBLE_EQ(
      EstimateStrategyWorkOperandsOnce(vdag_, s, sizes_, params_).total,
      10 + 100 + 30 + 200);
  // Under the variant metric a dual-stage comp over n >= 3 views is
  // cheaper than n 1-way comps (each 1-way comp re-reads the other n-1
  // extents) — the flaw the paper calls out in the Discussion.
  Vdag star = testutil::MakeStarVdag("W", 3);
  SizeMap sizes;
  for (const std::string& name : star.view_names()) {
    sizes.Set(name, {1000, 20, -20});
  }
  Strategy dual = MakeDualStageViewStrategy("W", star.sources("W"));
  Strategy one_way = MakeOneWayViewStrategy("W", star.sources("W"));
  EXPECT_LT(EstimateStrategyWorkOperandsOnce(star, dual, sizes, params_).total,
            EstimateStrategyWorkOperandsOnce(star, one_way, sizes, params_)
                .total);
  // Under the true linear metric the comparison flips.
  EXPECT_GT(EstimateStrategyWork(star, dual, sizes, params_).total,
            EstimateStrategyWork(star, one_way, sizes, params_).total);
}

TEST(SizeMapTest, NetChangeAndMissingView) {
  SizeMap sizes;
  sizes.Set("A", {10, 4, -2});
  EXPECT_EQ(sizes.NetChange("A"), -2);
  EXPECT_TRUE(sizes.Has("A"));
  EXPECT_FALSE(sizes.Has("B"));
}

}  // namespace
}  // namespace wuw
