// Window-budget units and directed integration: CancelToken semantics and
// its disarmed zero-cost contract, budget-spec parsing, exact step-boundary
// pausing in the sequential executor, stage-barrier pausing in the parallel
// executor, continue-in-place resume, the paused-visibility guarantee (a
// paused warehouse equals a prefix-executed clone — never a half-installed
// view), the unlimited-budget zero-cost guard, and the policy scheduler's
// cross-window carryover with deferred batches.  The exhaustive
// pause-at-every-budget sweeps live in window_budget_property_test.cc.
#include "exec/window_budget.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "obs/metrics.h"
#include "parallel/parallel_strategy.h"
#include "policy/maintenance_policy.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_generator.h"
#include "view/comp_term.h"

namespace wuw {
namespace {

TEST(CancelTokenTest, DisarmedNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.Poll());
  EXPECT_NO_THROW(token.Check());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, RequestCancelFiresAndResetDisarms) {
  CancelToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.Poll());
  EXPECT_THROW(token.Check(), WindowCancelledError);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.Check());
}

TEST(CancelTokenTest, CountdownFiresOnExactCheck) {
  CancelToken token;
  token.CancelAfterChecks(2);
  EXPECT_FALSE(token.Poll());  // 2 remaining
  EXPECT_FALSE(token.Poll());  // 1 remaining
  EXPECT_TRUE(token.Poll());   // fires
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.Check(), WindowCancelledError);
}

TEST(CancelTokenTest, ExpiredDeadlineFires) {
  CancelToken token;
  token.ArmDeadline(0.0);  // already past
  EXPECT_TRUE(token.Poll());
  EXPECT_TRUE(token.cancelled());
}

TEST(WindowBudgetSpecTest, ParsesShorthandAndClauses) {
  WindowBudgetOptions o;
  EXPECT_EQ(ParseWindowBudgetSpec("2000", &o), "");
  EXPECT_EQ(o.work_units, 2000);
  EXPECT_EQ(o.deadline_seconds, 0);

  EXPECT_EQ(ParseWindowBudgetSpec("work=5;deadline_ms=50", &o), "");
  EXPECT_EQ(o.work_units, 5);
  EXPECT_DOUBLE_EQ(o.deadline_seconds, 0.05);

  EXPECT_EQ(ParseWindowBudgetSpec("deadline_s=1.5", &o), "");
  EXPECT_EQ(o.work_units, -1);
  EXPECT_DOUBLE_EQ(o.deadline_seconds, 1.5);

  EXPECT_EQ(ParseWindowBudgetSpec("work=0", &o), "");
  EXPECT_TRUE(o.limited());
}

TEST(WindowBudgetSpecTest, RejectsMalformedSpecs) {
  WindowBudgetOptions o;
  EXPECT_NE(ParseWindowBudgetSpec("", &o), "");            // no limit
  EXPECT_NE(ParseWindowBudgetSpec("work=-3", &o), "");     // negative
  EXPECT_NE(ParseWindowBudgetSpec("work=abc", &o), "");    // not a number
  EXPECT_NE(ParseWindowBudgetSpec("deadline_ms=0", &o), "");
  EXPECT_NE(ParseWindowBudgetSpec("frobnicate=1", &o), "");
  EXPECT_NE(ParseWindowBudgetSpec("2000;bogus", &o), "");
}

TEST(WindowBudgetTest, WorkAccountingAndWindowReopen) {
  WindowBudget budget(WindowBudgetOptions{/*work_units=*/10});
  EXPECT_TRUE(budget.limited());
  budget.OpenWindow();
  EXPECT_FALSE(budget.ShouldPause());
  budget.ChargeWork(6);
  EXPECT_FALSE(budget.work_exhausted());
  budget.ChargeWork(4);
  EXPECT_TRUE(budget.work_exhausted());
  EXPECT_TRUE(budget.ShouldPause());
  budget.OpenWindow();  // fresh window, fresh allowance
  EXPECT_EQ(budget.work_spent(), 0);
  EXPECT_FALSE(budget.ShouldPause());

  WindowBudget unlimited;
  EXPECT_FALSE(unlimited.limited());
  unlimited.OpenWindow();
  unlimited.ChargeWork(1 << 30);
  EXPECT_FALSE(unlimited.ShouldPause());
}

struct Bench {
  Warehouse warehouse;
  Catalog truth;
  Strategy strategy;
};

Bench MakeBench(uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                              seed);
  testutil::ApplyTripleChanges(&w, 0.25, 10, seed + 4);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  return Bench{std::move(w), std::move(truth), std::move(s)};
}

/// Per-step cumulative linear work of an uninterrupted run — the exact
/// values ChargeWork accumulates, so `cum[k]` as a budget pauses after
/// step k+1.
std::vector<int64_t> CumulativeWork(const Bench& b) {
  Warehouse clone = b.warehouse.Clone();
  ExecutionReport report = Executor(&clone).Execute(b.strategy);
  std::vector<int64_t> cum;
  int64_t total = 0;
  for (const ExpressionReport& er : report.per_expression) {
    total += er.linear_work;
    cum.push_back(total);
  }
  return cum;
}

TEST(WindowBudgetExecutorTest, PausesAtExactStepBoundary) {
  Bench b = MakeBench(61);
  std::vector<int64_t> cum = CumulativeWork(b);
  ASSERT_GE(cum.size(), 3u);
  ASSERT_GT(cum[0], 0);

  Warehouse w = b.warehouse.Clone();
  WindowBudget budget(WindowBudgetOptions{/*work_units=*/cum[0]});
  ExecutorOptions options;
  options.budget = &budget;
  ExecutionReport report = Executor(&w, options).Execute(b.strategy);

  EXPECT_EQ(report.window_result, WindowResult::kPaused);
  EXPECT_EQ(report.steps_completed, 1);
  EXPECT_EQ(report.per_expression.size(), 1u);
  // The limiting budget forced journaling: the journal is the handle.
  EXPECT_TRUE(w.journal().begun());
  EXPECT_FALSE(w.journal().complete());
  EXPECT_EQ(w.journal().size(), 1);
  // The batch was not consumed.
  bool pending = false;
  for (const std::string& base : w.vdag().BaseViews()) {
    if (!w.base_delta(base).empty()) pending = true;
  }
  EXPECT_TRUE(pending);
}

TEST(WindowBudgetExecutorTest, ZeroWorkBudgetPausesBeforeFirstStep) {
  Bench b = MakeBench(67);
  Warehouse w = b.warehouse.Clone();
  WindowBudget budget(WindowBudgetOptions{/*work_units=*/0});
  ExecutorOptions options;
  options.budget = &budget;
  ExecutionReport report = Executor(&w, options).Execute(b.strategy);
  EXPECT_EQ(report.window_result, WindowResult::kPaused);
  EXPECT_EQ(report.steps_completed, 0);
  EXPECT_EQ(w.journal().size(), 0);
  EXPECT_TRUE(w.journal().begun());
}

TEST(WindowBudgetExecutorTest, ContinueInPlaceResumeConverges) {
  Bench b = MakeBench(71);
  std::vector<int64_t> cum = CumulativeWork(b);
  ASSERT_GE(cum.size(), 2u);

  Warehouse w = b.warehouse.Clone();
  WindowBudget budget(WindowBudgetOptions{cum[cum.size() / 2]});
  ExecutorOptions options;
  options.budget = &budget;
  ExecutionReport report = Executor(&w, options).Execute(b.strategy);
  ASSERT_EQ(report.window_result, WindowResult::kPaused);

  // Next window: unlimited, finishes in place.
  ResumeReport resumed = ResumeStrategy(w.journal(), &w, ExecutorOptions{},
                                        ResumeMode::kContinueInPlace);
  EXPECT_EQ(resumed.window_result, WindowResult::kCompleted);
  EXPECT_EQ(resumed.steps_replayed, report.steps_completed);
  EXPECT_EQ(resumed.steps_replayed + resumed.steps_executed,
            static_cast<int64_t>(b.strategy.size()));
  ASSERT_TRUE(w.catalog().ContentsEqual(b.truth));
}

TEST(WindowBudgetExecutorTest, ChainedTinyWindowsAlwaysTerminate) {
  Bench b = MakeBench(73);
  Warehouse w = b.warehouse.Clone();
  // Zero-work windows: the opening window completes nothing, but every
  // resumed window is guaranteed >= 1 step, so the chain terminates in at
  // most |strategy| + 1 windows.
  WindowBudgetOptions tiny{/*work_units=*/0};
  {
    WindowBudget budget(tiny);
    ExecutorOptions options;
    options.budget = &budget;
    ASSERT_EQ(Executor(&w, options).Execute(b.strategy).window_result,
              WindowResult::kPaused);
  }
  int64_t windows = 1;
  while (true) {
    WindowBudget budget(tiny);
    ExecutorOptions options;
    options.budget = &budget;
    ResumeReport r = ResumeStrategy(w.journal(), &w, options,
                                    ResumeMode::kContinueInPlace);
    ++windows;
    ASSERT_LE(windows, static_cast<int64_t>(b.strategy.size()) + 1);
    if (r.window_result == WindowResult::kCompleted) break;
    EXPECT_GE(r.steps_executed, 1);
  }
  ASSERT_TRUE(w.catalog().ContentsEqual(b.truth));
}

TEST(WindowBudgetExecutorTest, PausedStateEqualsPrefixExecutedClone) {
  Bench b = MakeBench(79);
  std::vector<int64_t> cum = CumulativeWork(b);
  for (size_t k = 0; k + 1 < cum.size(); ++k) {
    // Budget cum[k] pauses after exactly k+1 steps only across a strictly
    // increasing work boundary (zero-work steps move the pause earlier).
    if (cum[k] <= (k >= 1 ? cum[k - 1] : 0)) continue;
    SCOPED_TRACE("pause after step " + std::to_string(k + 1));
    Warehouse paused = b.warehouse.Clone();
    WindowBudget budget(WindowBudgetOptions{cum[k]});
    ExecutorOptions options;
    options.budget = &budget;
    ExecutionReport report = Executor(&paused, options).Execute(b.strategy);
    ASSERT_EQ(report.window_result, WindowResult::kPaused);
    ASSERT_EQ(report.steps_completed, static_cast<int64_t>(k) + 1);

    // The paused warehouse must look exactly like a run of the first k+1
    // expressions and nothing else: no half-installed extent anywhere.
    Warehouse prefix = b.warehouse.Clone();
    std::vector<Expression> head(b.strategy.expressions().begin(),
                                 b.strategy.expressions().begin() + k + 1);
    ExecutorOptions prefix_options;
    prefix_options.validate = false;  // a prefix is not a complete strategy
    Executor(&prefix, prefix_options).Execute(Strategy(head));
    ASSERT_TRUE(paused.catalog().ContentsEqual(prefix.catalog()));
  }
}

TEST(WindowBudgetExecutorTest, ExpiredDeadlineAbandonsStepCleanly) {
  Bench b = MakeBench(83);
  Warehouse w = b.warehouse.Clone();
  // A deadline that is already past when the window opens: the first check
  // site inside step 0 throws, the step abandons before any mutation, and
  // the executor pauses with nothing journaled.
  WindowBudget budget(WindowBudgetOptions{-1, /*deadline_seconds=*/1e-9});
  ExecutorOptions options;
  options.budget = &budget;
  ExecutionReport report = Executor(&w, options).Execute(b.strategy);
  EXPECT_EQ(report.window_result, WindowResult::kPaused);
  EXPECT_EQ(report.steps_completed, 0);
  EXPECT_EQ(w.journal().size(), 0);
  ASSERT_TRUE(w.catalog().ContentsEqual(b.warehouse.catalog()));

  // The abandoned run resumes like any paused one.
  ResumeReport resumed = ResumeStrategy(w.journal(), &w, ExecutorOptions{},
                                        ResumeMode::kContinueInPlace);
  EXPECT_EQ(resumed.window_result, WindowResult::kCompleted);
  ASSERT_TRUE(w.catalog().ContentsEqual(b.truth));
}

TEST(WindowBudgetExecutorTest, AbandonedStepLeavesNoPartialAccumulation) {
  Bench b = MakeBench(89);
  Warehouse w = b.warehouse.Clone();
  const Expression& first = b.strategy.expressions()[0];
  ASSERT_TRUE(first.is_comp());
  CancelToken token;
  token.CancelAfterChecks(0);  // fire on the very first check site
  CompEvalOptions comp_options = MakeCompEvalOptions(
      &w, nullptr, false, 1, nullptr, nullptr, &token);
  EXPECT_THROW(
      ExecuteExpression(&w, first, comp_options, nullptr, nullptr, 0),
      WindowCancelledError);
  // Every check site precedes the step's first mutation: the warehouse is
  // untouched, so re-executing the step later is coherent.
  ASSERT_TRUE(w.catalog().ContentsEqual(b.warehouse.catalog()));
  ExpressionReport er =
      ExecuteExpression(&w, first, MakeCompEvalOptions(&w, nullptr, false),
                        nullptr, nullptr, 0);
  EXPECT_GT(er.linear_work, 0);
}

TEST(ParallelExecutorBudgetTest, PausesAtStageBarrierAndResumes) {
  Bench b = MakeBench(97);
  ParallelStrategy staged = ParallelizeStrategy(b.warehouse.vdag(),
                                                b.strategy);
  ASSERT_GE(staged.stages.size(), 2u);

  // First stage's linear work, from an unbudgeted staged run.
  int64_t stage0_work = 0;
  {
    Warehouse clone = b.warehouse.Clone();
    ParallelExecutorOptions options;
    options.workers = 3;
    ParallelExecutionReport r =
        ParallelExecutor(&clone, options).Execute(staged);
    for (size_t i = 0; i < staged.stages[0].size(); ++i) {
      stage0_work += r.per_expression[i].linear_work;
    }
  }
  ASSERT_GT(stage0_work, 0);

  Warehouse w = b.warehouse.Clone();
  WindowBudget budget(WindowBudgetOptions{stage0_work});
  ParallelExecutorOptions options;
  options.workers = 3;
  options.budget = &budget;
  ParallelExecutionReport report =
      ParallelExecutor(&w, options).Execute(staged);
  EXPECT_EQ(report.window_result, WindowResult::kPaused);
  EXPECT_EQ(report.steps_completed,
            static_cast<int64_t>(staged.stages[0].size()));
  EXPECT_TRUE(w.journal().begun());
  EXPECT_FALSE(w.journal().complete());

  ResumeReport resumed = ResumeStrategy(w.journal(), &w, ExecutorOptions{},
                                        ResumeMode::kContinueInPlace);
  EXPECT_EQ(resumed.window_result, WindowResult::kCompleted);
  ASSERT_TRUE(w.catalog().ContentsEqual(b.truth));
}

class ZeroCostGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_armed_ = obs::MetricsArmed();
    obs::ArmMetrics();
  }
  void TearDown() override {
    obs::ResetMetrics();
    if (!metrics_were_armed_) obs::DisarmMetrics();
  }
  bool metrics_were_armed_ = false;
};

// The zero-cost guard: an UNLIMITED budget is pure accounting.  Rows,
// OperatorStats, and the kWork counter snapshot must be byte-identical to
// a run with no budget at all (in particular, an unlimited budget must not
// force journaling on — "journal.entries" is a kWork counter).
TEST_F(ZeroCostGuardTest, UnlimitedBudgetChangesNothing) {
  if (EnvWindowBudget() != nullptr) {
    GTEST_SKIP() << "WUW_WINDOW_BUDGET armed: the no-budget baseline would "
                    "auto-split, which is exactly the difference this test "
                    "asserts away";
  }
  Bench b = MakeBench(103);

  obs::ResetMetrics();
  Warehouse baseline = b.warehouse.Clone();
  ExecutionReport baseline_report = Executor(&baseline).Execute(b.strategy);
  obs::MetricsSnapshot baseline_work =
      obs::SnapshotMetrics(obs::Mask(obs::MetricClass::kWork));

  obs::ResetMetrics();
  Warehouse budgeted = b.warehouse.Clone();
  WindowBudget unlimited;  // default options: no limit
  ExecutorOptions options;
  options.budget = &unlimited;
  ExecutionReport budgeted_report = Executor(&budgeted, options)
                                        .Execute(b.strategy);
  obs::MetricsSnapshot budgeted_work =
      obs::SnapshotMetrics(obs::Mask(obs::MetricClass::kWork));

  EXPECT_EQ(budgeted_report.window_result, WindowResult::kCompleted);
  EXPECT_EQ(budgeted_report.windows, 1);
  EXPECT_FALSE(budgeted.journal().begun());
  EXPECT_EQ(baseline_report.total_linear_work,
            budgeted_report.total_linear_work);
  EXPECT_TRUE(baseline_report.totals == budgeted_report.totals);
  EXPECT_EQ(baseline_work, budgeted_work)
      << "baseline:\n" << baseline_work.ToString()
      << "budgeted:\n" << budgeted_work.ToString();
  ASSERT_TRUE(budgeted.catalog().ContentsEqual(b.truth));
  ASSERT_TRUE(baseline.catalog().ContentsEqual(b.truth));
}

TEST(PolicySchedulerBudgetTest, CarryoverAcrossWindowsWithDeferredBatches) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                              /*seed=*/107);
  // Mirror for the ground truth: both batches merged, then recomputed.
  Warehouse mirror = w.Clone();

  // Batch 1: deletions + inserts drawn from the current state.
  std::unordered_map<std::string, DeltaRelation> batch1;
  {
    uint64_t s = 113;
    for (const std::string& base : w.vdag().BaseViews()) {
      const Table& table = *w.catalog().MustGetTable(base);
      DeltaRelation delta = tpcd::MakeDeletionDelta(table, 0.2, ++s);
      tpcd::Rng rng(s ^ 0x5EED);
      for (int64_t i = 0; i < 6; ++i) {
        int64_t k = 2000000 + rng.Range(1, 10000);
        delta.Add(Tuple({Value::Int64(k), Value::Int64(rng.Range(0, 99)),
                         Value::Int64(k % 5)}),
                  1);
      }
      batch1.emplace(base, std::move(delta));
    }
  }
  // Batch 2: insert-only, coherent regardless of what batch 1 installed.
  std::unordered_map<std::string, DeltaRelation> batch2;
  {
    tpcd::Rng rng(131);
    for (const std::string& base : w.vdag().BaseViews()) {
      DeltaRelation delta(w.vdag().OutputSchema(base));
      for (int64_t i = 0; i < 5; ++i) {
        int64_t k = 3000000 + rng.Range(1, 10000);
        delta.Add(Tuple({Value::Int64(k), Value::Int64(rng.Range(0, 99)),
                         Value::Int64(k % 5)}),
                  1);
      }
      batch2.emplace(base, std::move(delta));
    }
  }
  for (const auto& [view, delta] : batch1) mirror.MergeBaseDelta(view, delta);
  for (const auto& [view, delta] : batch2) mirror.MergeBaseDelta(view, delta);
  Catalog truth = testutil::GroundTruthAfterChanges(mirror);

  PolicyOptions policy = PolicyOptions::Immediate();
  policy.window_budget.work_units = 1;  // every window pauses almost at once
  MaintenanceScheduler scheduler(&w, policy);

  scheduler.OnBatch(batch1);
  EXPECT_TRUE(scheduler.window_paused());
  EXPECT_GE(scheduler.report().windows_paused, 1);

  // Arrives mid-run: deferred, and this period's window continues the
  // paused strategy instead.
  scheduler.OnBatch(batch2);
  scheduler.Flush();

  EXPECT_FALSE(scheduler.window_paused());
  EXPECT_GT(scheduler.report().carryover_work, 0);
  EXPECT_GT(scheduler.report().windows_run, 2);
  EXPECT_EQ(scheduler.report().batches_received, 2);
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));
}

// An unbudgeted scheduler must behave exactly as before the budget knob
// existed.
TEST(PolicySchedulerBudgetTest, UnlimitedBudgetNeverPauses) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              /*seed=*/137);
  Warehouse mirror = w.Clone();
  std::unordered_map<std::string, DeltaRelation> batch;
  tpcd::Rng rng(139);
  for (const std::string& base : w.vdag().BaseViews()) {
    DeltaRelation delta(w.vdag().OutputSchema(base));
    for (int64_t i = 0; i < 4; ++i) {
      int64_t k = 4000000 + rng.Range(1, 1000);
      delta.Add(Tuple({Value::Int64(k), Value::Int64(rng.Range(0, 99)),
                       Value::Int64(k % 5)}),
                1);
    }
    batch.emplace(base, std::move(delta));
  }
  for (const auto& [view, delta] : batch) mirror.MergeBaseDelta(view, delta);
  Catalog truth = testutil::GroundTruthAfterChanges(mirror);

  MaintenanceScheduler scheduler(&w, PolicyOptions::Immediate());
  EXPECT_TRUE(scheduler.OnBatch(batch));
  EXPECT_FALSE(scheduler.window_paused());
  EXPECT_EQ(scheduler.report().windows_paused, 0);
  EXPECT_EQ(scheduler.report().carryover_work, 0);
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
