#include <gtest/gtest.h>

#include <algorithm>

#include "core/correctness.h"
#include "core/expression_graph.h"
#include "core/min_work.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

std::vector<std::string> InstOrderOf(const Strategy& s) {
  return s.InstOrder();
}

TEST(ExpressionGraphTest, NodesAreOneWayExpressions) {
  Vdag vdag = testutil::MakeFig3Vdag();
  ExpressionGraph eg =
      ExpressionGraph::ConstructEG(vdag, vdag.view_names());
  // Comps: V4x2 + V5x2; Insts: 5 views.
  EXPECT_EQ(eg.nodes().size(), 9u);
}

TEST(ExpressionGraphTest, Example52TopologicalStrategy) {
  // Figure 6/7: ordering <V4, V2, V1, V3, V5> (mapped: V1→A, V2→B, V3→C).
  Vdag vdag = testutil::MakeFig3Vdag();
  std::vector<std::string> ordering = {"V4", "B", "A", "C", "V5"};
  ExpressionGraph eg = ExpressionGraph::ConstructEG(vdag, ordering);
  EXPECT_TRUE(eg.IsAcyclic());
  auto strategy = eg.TopologicalStrategy();
  ASSERT_TRUE(strategy.has_value());
  EXPECT_TRUE(CheckVdagStrategy(vdag, *strategy).ok);

  // Consistency with the ordering: within V4's strategy, B's changes
  // propagate before C's; within V5's, V4 before A.
  int cb = strategy->IndexOf(Expression::Comp("V4", {"B"}));
  int cc = strategy->IndexOf(Expression::Comp("V4", {"C"}));
  int cv4 = strategy->IndexOf(Expression::Comp("V5", {"V4"}));
  int ca = strategy->IndexOf(Expression::Comp("V5", {"A"}));
  EXPECT_LT(cb, cc);
  EXPECT_LT(cv4, ca);
}

TEST(ExpressionGraphTest, Lemma51TreeVdagsAlwaysAcyclic) {
  Vdag vdag = testutil::MakeFig3Vdag();
  std::vector<std::string> ordering = vdag.view_names();
  std::sort(ordering.begin(), ordering.end());
  do {
    EXPECT_TRUE(ExpressionGraph::ConstructEG(vdag, ordering).IsAcyclic())
        << "ordering failed";
  } while (std::next_permutation(ordering.begin(), ordering.end()));
}

TEST(ExpressionGraphTest, Lemma52UniformVdagsAlwaysAcyclic) {
  Vdag vdag = tpcd::BuildTpcdVdag({"Q3", "Q10"});
  // Sample orderings (9! is too many; permute a subset deterministically).
  std::vector<std::string> ordering = vdag.view_names();
  for (int i = 0; i < 500; ++i) {
    std::next_permutation(ordering.begin(), ordering.end());
    EXPECT_TRUE(ExpressionGraph::ConstructEG(vdag, ordering).IsAcyclic());
  }
}

TEST(ExpressionGraphTest, Fig10ProblemOrderingIsCyclic) {
  // Appendix A / Figure 16: ordering <V4, V2, V1, V3, V5> on the Fig 10
  // VDAG creates the C8(C4C3)+ cycle.
  Vdag vdag = testutil::MakeFig10Vdag();
  std::vector<std::string> ordering = {"V4", "V2", "V1", "V3", "V5"};
  ExpressionGraph eg = ExpressionGraph::ConstructEG(vdag, ordering);
  EXPECT_FALSE(eg.IsAcyclic());
  EXPECT_FALSE(eg.TopologicalStrategy().has_value());
  EXPECT_FALSE(eg.FindCycle().empty());
}

TEST(ExpressionGraphTest, Fig10LevelOrderingIsAcyclic) {
  Vdag vdag = testutil::MakeFig10Vdag();
  std::vector<std::string> ordering = {"V1", "V2", "V3", "V4", "V5"};
  EXPECT_TRUE(ExpressionGraph::ConstructEG(vdag, ordering).IsAcyclic());
}

TEST(ExpressionGraphTest, SegForcesInstOrder) {
  Vdag vdag = testutil::MakeFig3Vdag();
  std::vector<std::string> ordering = {"C", "B", "A", "V4", "V5"};
  ExpressionGraph seg = ExpressionGraph::ConstructSEG(vdag, ordering);
  ASSERT_TRUE(seg.IsAcyclic());
  auto strategy = seg.TopologicalStrategy();
  ASSERT_TRUE(strategy.has_value());
  EXPECT_EQ(InstOrderOf(*strategy),
            (std::vector<std::string>{"C", "B", "A", "V4", "V5"}));
  EXPECT_TRUE(CheckVdagStrategy(vdag, *strategy).ok);
}

TEST(ExpressionGraphTest, SegDetectsInfeasibleStrongOrdering) {
  // Section 6's example: <V4, V1, V2, V3, V5> admits no strongly
  // consistent 1-way strategy on the Fig 10 VDAG.
  Vdag vdag = testutil::MakeFig10Vdag();
  std::vector<std::string> ordering = {"V4", "V1", "V2", "V3", "V5"};
  ExpressionGraph seg = ExpressionGraph::ConstructSEG(vdag, ordering);
  EXPECT_FALSE(seg.IsAcyclic());
}

TEST(ExpressionGraphTest, SegPartialOrderingLeavesOthersFree) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  // Only views with parents constrained (the m! optimization).
  std::vector<std::string> ordering = vdag.ViewsWithParents();
  ExpressionGraph seg = ExpressionGraph::ConstructSEG(vdag, ordering);
  ASSERT_TRUE(seg.IsAcyclic());
  auto strategy = seg.TopologicalStrategy();
  ASSERT_TRUE(strategy.has_value());
  EXPECT_TRUE(CheckVdagStrategy(vdag, *strategy).ok);
}

TEST(ModifyOrderingTest, LevelMajorStableWithinLevel) {
  Vdag vdag = testutil::MakeFig10Vdag();
  std::vector<std::string> ordering = {"V4", "V2", "V1", "V3", "V5"};
  EXPECT_EQ(ModifyOrdering(vdag, ordering),
            (std::vector<std::string>{"V2", "V1", "V3", "V4", "V5"}));
}

// Theorem 5.5: ModifyOrdering always repairs cyclic expression graphs.
TEST(ModifyOrderingTest, AlwaysYieldsAcyclicEg) {
  Vdag vdag = testutil::MakeFig10Vdag();
  std::vector<std::string> ordering = vdag.view_names();
  std::sort(ordering.begin(), ordering.end());
  do {
    std::vector<std::string> modified = ModifyOrdering(vdag, ordering);
    EXPECT_TRUE(ExpressionGraph::ConstructEG(vdag, modified).IsAcyclic());
  } while (std::next_permutation(ordering.begin(), ordering.end()));
}

}  // namespace
}  // namespace wuw
