#include <gtest/gtest.h>

#include <set>

#include "core/correctness.h"
#include "core/strategy_space.h"
#include "test_util.h"

namespace wuw {
namespace {

TEST(OrderedPartitionsTest, CountsMatchFubiniNumbers) {
  // Table 1 of the paper.
  const uint64_t expected[] = {1, 1, 3, 13, 75, 541, 4683};
  for (size_t n = 0; n <= 6; ++n) {
    EXPECT_EQ(EnumerateOrderedPartitions(n).size(),
              n == 0 ? 1u : expected[n])
        << "n=" << n;
  }
}

TEST(OrderedPartitionsTest, PartitionsAreValid) {
  for (const OrderedPartition& p : EnumerateOrderedPartitions(4)) {
    std::set<size_t> seen;
    for (const auto& block : p) {
      EXPECT_FALSE(block.empty());
      for (size_t e : block) EXPECT_TRUE(seen.insert(e).second);
    }
    EXPECT_EQ(seen.size(), 4u);
  }
}

TEST(OrderedPartitionsTest, NoDuplicatePartitions) {
  auto parts = EnumerateOrderedPartitions(4);
  std::set<std::string> keys;
  for (const auto& p : parts) {
    std::string key;
    for (const auto& block : p) {
      std::vector<size_t> b = block;
      std::sort(b.begin(), b.end());
      for (size_t e : b) key += std::to_string(e) + ",";
      key += "|";
    }
    EXPECT_TRUE(keys.insert(key).second) << key;
  }
}

TEST(CountingTest, ClosedFormMatchesTable1) {
  EXPECT_EQ(CountViewStrategies(1), 1u);
  EXPECT_EQ(CountViewStrategies(2), 3u);
  EXPECT_EQ(CountViewStrategies(3), 13u);
  EXPECT_EQ(CountViewStrategies(4), 75u);
  EXPECT_EQ(CountViewStrategies(5), 541u);
  EXPECT_EQ(CountViewStrategies(6), 4683u);
}

TEST(CountingTest, ClosedFormMatchesRecurrence) {
  for (size_t n = 1; n <= 10; ++n) {
    EXPECT_EQ(CountViewStrategies(n), CountViewStrategiesRecurrence(n))
        << "n=" << n;
  }
}

TEST(CountingTest, TpcdViewStrategyCounts) {
  // "views Q3, Q5, and Q10 have 13, 4683, and 75 view strategies".
  EXPECT_EQ(CountViewStrategies(3), 13u);   // Q3 over 3 views
  EXPECT_EQ(CountViewStrategies(6), 4683u); // Q5 over 6 views
  EXPECT_EQ(CountViewStrategies(4), 75u);   // Q10 over 4 views
}

TEST(MakeStrategyTest, OneWayShape) {
  Strategy s = MakeOneWayViewStrategy("V", {"B", "A"});
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], Expression::Comp("V", {"B"}));
  EXPECT_EQ(s[1], Expression::Inst("B"));
  EXPECT_EQ(s[2], Expression::Comp("V", {"A"}));
  EXPECT_EQ(s[3], Expression::Inst("A"));
  EXPECT_EQ(s[4], Expression::Inst("V"));
}

TEST(MakeStrategyTest, DualStageShape) {
  Strategy s = MakeDualStageViewStrategy("V", {"A", "B", "C"});
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], Expression::Comp("V", {"A", "B", "C"}));
  EXPECT_TRUE(s[1].is_inst());
  EXPECT_EQ(s[4], Expression::Inst("V"));
}

TEST(MakeStrategyTest, PartitionStrategyShape) {
  OrderedPartition p = {{1}, {0, 2}};
  Strategy s = MakeViewStrategy("V", {"A", "B", "C"}, p);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0], Expression::Comp("V", {"B"}));
  EXPECT_EQ(s[1], Expression::Inst("B"));
  EXPECT_EQ(s[2], Expression::Comp("V", {"A", "C"}));
  EXPECT_EQ(s[5], Expression::Inst("V"));
}

TEST(MakeStrategyTest, AllViewStrategiesCountAndCorrectness) {
  std::vector<std::string> sources = {"A", "B", "C", "D"};
  auto all = AllViewStrategies("V", sources);
  EXPECT_EQ(all.size(), 75u);
  for (const Strategy& s : all) {
    EXPECT_TRUE(CheckViewStrategy("V", sources, s).ok) << s.ToString();
  }
}

TEST(MakeStrategyTest, DualStageVdagIsCorrectOnFig3AndTpcd) {
  Vdag fig3 = testutil::MakeFig3Vdag();
  EXPECT_TRUE(CheckVdagStrategy(fig3, MakeDualStageVdagStrategy(fig3)).ok);
}

}  // namespace
}  // namespace wuw
