#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/exhaustive.h"
#include "core/min_work_single.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

TEST(DesiredViewOrderingTest, SortsByNetChange) {
  SizeMap sizes;
  sizes.Set("A", {100, 5, +5});
  sizes.Set("B", {100, 5, -5});
  sizes.Set("C", {100, 5, 0});
  EXPECT_EQ(DesiredViewOrdering({"A", "B", "C"}, sizes),
            (std::vector<std::string>{"B", "C", "A"}));
}

TEST(DesiredViewOrderingTest, StableOnTies) {
  SizeMap sizes;
  sizes.Set("A", {100, 5, -1});
  sizes.Set("B", {100, 5, -1});
  EXPECT_EQ(DesiredViewOrdering({"A", "B"}, sizes),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(DesiredViewOrdering({"B", "A"}, sizes),
            (std::vector<std::string>{"B", "A"}));
}

class MinWorkSingleTest : public ::testing::Test {
 protected:
  MinWorkSingleTest() : vdag_(testutil::MakeStarVdag("V", 4)) {}

  SizeMap RandomSizes(uint64_t seed) {
    tpcd::Rng rng(seed);
    SizeMap sizes;
    for (const std::string& name : vdag_.view_names()) {
      int64_t size = rng.Range(50, 500);
      int64_t minus = rng.Range(0, size / 3);
      int64_t plus = rng.Range(0, size / 3);
      sizes.Set(name, {size, plus + minus, plus - minus});
    }
    return sizes;
  }

  Vdag vdag_;
};

TEST_F(MinWorkSingleTest, ProducesCorrectOneWayStrategy) {
  SizeMap sizes = RandomSizes(7);
  Strategy s = MinWorkSingle(vdag_, "V", sizes);
  EXPECT_TRUE(CheckViewStrategy("V", vdag_.sources("V"), s).ok);
  // 1-way: every Comp is a singleton.
  for (const Expression& e : s.expressions()) {
    if (e.is_comp()) {
      EXPECT_EQ(e.over.size(), 1u);
    }
  }
  EXPECT_EQ(s.size(), 2 * 4 + 1);
}

// Theorem 4.2/4.3: MinWorkSingle matches the exhaustive optimum over ALL
// view strategies (Theorem 4.1 included) under the linear metric.
TEST_F(MinWorkSingleTest, MatchesExhaustiveOptimum) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SizeMap sizes = RandomSizes(seed);
    Strategy mws = MinWorkSingle(vdag_, "V", sizes);
    double mws_work = EstimateStrategyWork(vdag_, mws, sizes, {}).total;

    auto all = EnumerateAllViewStrategies(vdag_, "V", sizes);
    EXPECT_EQ(all.size(), 75u);  // Table 1, n=4
    double best = all[0].work;
    for (const auto& es : all) best = std::min(best, es.work);
    EXPECT_NEAR(mws_work, best, 1e-9) << "seed=" << seed;
  }
}

// Theorem 4.1 in isolation: the best 1-way strategy is optimal over the
// space of all strategies.
TEST_F(MinWorkSingleTest, BestOneWayBeatsEveryPartitionStrategy) {
  for (uint64_t seed = 100; seed <= 110; ++seed) {
    SizeMap sizes = RandomSizes(seed);
    double best_one_way = -1;
    auto all = EnumerateAllViewStrategies(vdag_, "V", sizes);
    for (const auto& es : all) {
      bool one_way = true;
      for (const Expression& e : es.strategy.expressions()) {
        if (e.is_comp() && e.over.size() > 1) one_way = false;
      }
      if (one_way && (best_one_way < 0 || es.work < best_one_way)) {
        best_one_way = es.work;
      }
    }
    for (const auto& es : all) {
      EXPECT_LE(best_one_way, es.work + 1e-9) << "seed=" << seed;
    }
  }
}

// With pure deletions everywhere, MinWorkSingle must order sources by
// decreasing delta size (biggest shrink first).
TEST_F(MinWorkSingleTest, DeletionWorkloadOrdersBiggestShrinkFirst) {
  SizeMap sizes;
  sizes.Set("B0", {100, 10, -10});
  sizes.Set("B1", {100, 40, -40});
  sizes.Set("B2", {100, 20, -20});
  sizes.Set("B3", {100, 30, -30});
  sizes.Set("V", {500, 0, 0});
  Strategy s = MinWorkSingle(vdag_, "V", sizes);
  std::vector<std::string> comp_order;
  for (const Expression& e : s.expressions()) {
    if (e.is_comp()) comp_order.push_back(e.over[0]);
  }
  EXPECT_EQ(comp_order,
            (std::vector<std::string>{"B1", "B3", "B2", "B0"}));
}

}  // namespace
}  // namespace wuw
