#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/strategy_space.h"
#include "test_util.h"

namespace wuw {
namespace {

// ---- Single-view strategies (Definition 3.1) ----

const std::vector<std::string> kSources = {"V1", "V2", "V3"};

TEST(ViewStrategyCheck, DualStageIsCorrect) {
  Strategy s = MakeDualStageViewStrategy("V", kSources);
  EXPECT_TRUE(CheckViewStrategy("V", kSources, s).ok);
}

TEST(ViewStrategyCheck, OneWayIsCorrect) {
  Strategy s = MakeOneWayViewStrategy("V", {"V3", "V1", "V2"});
  EXPECT_TRUE(CheckViewStrategy("V", kSources, s).ok);
}

TEST(ViewStrategyCheck, C1MissingPropagation) {
  Strategy s({
      Expression::Comp("V", {"V1"}),
      Expression::Inst("V1"),
      Expression::Inst("V2"),
      Expression::Inst("V3"),
      Expression::Inst("V"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C1"), std::string::npos);
}

TEST(ViewStrategyCheck, C2MissingInstall) {
  Strategy s({
      Expression::Comp("V", {"V1", "V2", "V3"}),
      Expression::Inst("V1"),
      Expression::Inst("V2"),
      Expression::Inst("V3"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C2"), std::string::npos);
}

TEST(ViewStrategyCheck, C3InstallBeforePropagation) {
  Strategy s({
      Expression::Inst("V1"),
      Expression::Comp("V", {"V1", "V2", "V3"}),
      Expression::Inst("V2"),
      Expression::Inst("V3"),
      Expression::Inst("V"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C3"), std::string::npos);
}

TEST(ViewStrategyCheck, C4InstallMissingBetweenComps) {
  // Comp over V1, then Comp over V2 without installing V1 first.
  Strategy s({
      Expression::Comp("V", {"V1"}),
      Expression::Comp("V", {"V2"}),
      Expression::Inst("V1"),
      Expression::Inst("V2"),
      Expression::Comp("V", {"V3"}),
      Expression::Inst("V3"),
      Expression::Inst("V"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C4"), std::string::npos);
}

TEST(ViewStrategyCheck, C5InstallViewBeforeComp) {
  Strategy s({
      Expression::Comp("V", {"V1"}),
      Expression::Inst("V1"),
      Expression::Inst("V"),
      Expression::Comp("V", {"V2", "V3"}),
      Expression::Inst("V2"),
      Expression::Inst("V3"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C5"), std::string::npos);
}

TEST(ViewStrategyCheck, C6DuplicateExpression) {
  Strategy s({
      Expression::Comp("V", {"V1", "V2", "V3"}),
      Expression::Inst("V1"),
      Expression::Inst("V1"),
      Expression::Inst("V2"),
      Expression::Inst("V3"),
      Expression::Inst("V"),
  });
  CorrectnessResult r = CheckViewStrategy("V", kSources, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C6"), std::string::npos);
}

TEST(ViewStrategyCheck, OverlappingCompsAreContradictory) {
  // Comp(V,{V1,V2}) and Comp(V,{V1,V3}): no order satisfies C3+C4
  // (Section 3.1's discussion after Definition 3.1).
  Strategy s({
      Expression::Comp("V", {"V1", "V2"}),
      Expression::Inst("V2"),
      Expression::Comp("V", {"V1", "V3"}),
      Expression::Inst("V1"),
      Expression::Inst("V3"),
      Expression::Inst("V"),
  });
  EXPECT_FALSE(CheckViewStrategy("V", kSources, s).ok);
}

TEST(ViewStrategyCheck, BaseViewStrategyIsJustInst) {
  Strategy s({Expression::Inst("V")});
  EXPECT_TRUE(CheckViewStrategy("V", {}, s).ok);
}

// Every canonical strategy from the partition space passes the checker.
TEST(ViewStrategyCheck, AllPartitionStrategiesAreCorrect) {
  for (const Strategy& s : AllViewStrategies("V", kSources)) {
    CorrectnessResult r = CheckViewStrategy("V", kSources, s);
    EXPECT_TRUE(r.ok) << s.ToString() << " -> " << r.violation;
  }
}

// ---- VDAG strategies (Definition 3.3) ----

class VdagCheckTest : public ::testing::Test {
 protected:
  VdagCheckTest() : vdag_(testutil::MakeFig3Vdag()) {}
  Vdag vdag_;
};

TEST_F(VdagCheckTest, Example31StrategyIsCorrect) {
  Strategy s({
      Expression::Comp("V4", {"B"}),
      Expression::Inst("B"),
      Expression::Comp("V4", {"C"}),
      Expression::Inst("C"),
      Expression::Comp("V5", {"V4"}),
      Expression::Inst("V4"),
      Expression::Comp("V5", {"A"}),
      Expression::Inst("A"),
      Expression::Inst("V5"),
  });
  CorrectnessResult r = CheckVdagStrategy(vdag_, s);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_F(VdagCheckTest, DualStageVdagStrategyIsCorrect) {
  Strategy s = MakeDualStageVdagStrategy(vdag_);
  CorrectnessResult r = CheckVdagStrategy(vdag_, s);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_F(VdagCheckTest, C8PropagationBeforeComputation) {
  // Comp(V5,{V4}) before V4's own comps; both per-view strategies are
  // individually correct, so only C8 is violated.
  Strategy s({
      Expression::Comp("V5", {"V4"}),
      Expression::Comp("V4", {"B"}),
      Expression::Inst("B"),
      Expression::Comp("V4", {"C"}),
      Expression::Inst("C"),
      Expression::Inst("V4"),
      Expression::Comp("V5", {"A"}),
      Expression::Inst("A"),
      Expression::Inst("V5"),
  });
  CorrectnessResult r = CheckVdagStrategy(vdag_, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("C8"), std::string::npos);
}

TEST_F(VdagCheckTest, MissingInstDetected) {
  Strategy s({
      Expression::Comp("V4", {"B", "C"}),
      Expression::Comp("V5", {"A", "V4"}),
      Expression::Inst("A"),
      Expression::Inst("B"),
      Expression::Inst("C"),
      Expression::Inst("V4"),
      Expression::Inst("V5"),
  });
  // Correct so far; now drop Inst(A).
  EXPECT_TRUE(CheckVdagStrategy(vdag_, s).ok);
  Strategy missing;
  for (const Expression& e : s.expressions()) {
    if (!(e.is_inst() && e.view == "A")) missing.Append(e);
  }
  CorrectnessResult r = CheckVdagStrategy(vdag_, missing);
  EXPECT_FALSE(r.ok);
}

TEST_F(VdagCheckTest, CompForBaseViewRejected) {
  Strategy s({Expression::Comp("A", {"B"})});
  CorrectnessResult r = CheckVdagStrategy(vdag_, s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("base"), std::string::npos);
}

TEST_F(VdagCheckTest, CompOverNonSourceRejected) {
  Strategy s({Expression::Comp("V4", {"A"})});
  EXPECT_FALSE(CheckVdagStrategy(vdag_, s).ok);
}

TEST_F(VdagCheckTest, UnknownViewRejected) {
  Strategy s({Expression::Inst("NOPE")});
  EXPECT_FALSE(CheckVdagStrategy(vdag_, s).ok);
}

TEST_F(VdagCheckTest, Example12IncompatibleViewStrategiesRejected) {
  // Strategy 2 for V (LINEITEM last) + Strategy 3 for V' (LINEITEM first)
  // cannot combine: modeled here as V4 wanting Inst(B) early and V5
  // wanting Inst(B)... Fig 2's conflict needs a shared source; use Fig 10.
  Vdag vdag = testutil::MakeFig10Vdag();
  // V4 updates with V2 first; V5 wants V2's changes after V4's install —
  // build a sequence violating C4 for V5.
  Strategy s({
      Expression::Comp("V4", {"V2"}),
      Expression::Comp("V5", {"V2"}),
      Expression::Inst("V2"),
      Expression::Comp("V4", {"V3"}),
      Expression::Inst("V3"),
      Expression::Comp("V5", {"V4"}),
      Expression::Inst("V4"),
      Expression::Comp("V5", {"V1"}),
      Expression::Inst("V1"),
      Expression::Inst("V5"),
  });
  // Comp(V5,{V4}) follows Comp(V5,{V2}) but Inst(V2) is fine; however
  // Comp(V5,{V4}) requires C8 w.r.t. V4's comps — all present before. This
  // one is actually correct:
  EXPECT_TRUE(CheckVdagStrategy(vdag, s).ok);

  // Now V5 propagates V4 before V2 is installed between its own comps.
  Strategy bad({
      Expression::Comp("V4", {"V2"}),
      Expression::Comp("V4", {"V3"}),  // C4 violation inside V4's strategy
      Expression::Inst("V2"),
      Expression::Inst("V3"),
      Expression::Comp("V5", {"V1", "V2", "V4"}),
      Expression::Inst("V1"),
      Expression::Inst("V4"),
      Expression::Inst("V5"),
  });
  CorrectnessResult r = CheckVdagStrategy(vdag, bad);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace wuw
