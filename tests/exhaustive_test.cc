#include <gtest/gtest.h>

#include <set>

#include "core/correctness.h"
#include "core/exhaustive.h"
#include "core/strategy_space.h"
#include "test_util.h"

namespace wuw {
namespace {

TEST(ExhaustiveTest, SingleViewEnumerationMatchesTable1) {
  Vdag v3 = testutil::MakeStarVdag("V", 3);
  SizeMap sizes;
  for (const std::string& name : v3.view_names()) {
    sizes.Set(name, {100, 10, -10});
  }
  EXPECT_EQ(EnumerateAllViewStrategies(v3, "V", sizes).size(), 13u);

  Vdag v4 = testutil::MakeStarVdag("W", 4);
  SizeMap sizes4;
  for (const std::string& name : v4.view_names()) {
    sizes4.Set(name, {100, 10, -10});
  }
  EXPECT_EQ(EnumerateAllViewStrategies(v4, "W", sizes4).size(), 75u);
}

TEST(ExhaustiveTest, VdagEnumerationOnlyYieldsCorrectStrategies) {
  Vdag vdag = testutil::MakeFig3Vdag();
  auto all = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                               /*limit=*/5000000);
  EXPECT_GT(all.size(), 0u);
  for (const Strategy& s : all) {
    CorrectnessResult r = CheckVdagStrategy(vdag, s);
    ASSERT_TRUE(r.ok) << s.ToString() << " -> " << r.violation;
  }
}

TEST(ExhaustiveTest, VdagEnumerationIsDuplicateFree) {
  Vdag vdag = testutil::MakeFig3Vdag();
  auto all = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                               /*limit=*/5000000);
  std::set<std::string> seen;
  for (const Strategy& s : all) {
    EXPECT_TRUE(seen.insert(s.ToString()).second) << s.ToString();
  }
}

// Cross-validate the backtracking enumerator against brute-force
// permutation filtering on a tiny VDAG.
TEST(ExhaustiveTest, EnumeratorAgreesWithPermutationFiltering) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddDerivedView(testutil::SpjTripleView("V", {"A", "B"}));

  // Permutation filtering over the 1-way expression multiset.
  std::vector<Expression> pool = {
      Expression::Comp("V", {"A"}), Expression::Comp("V", {"B"}),
      Expression::Inst("A"), Expression::Inst("B"), Expression::Inst("V")};
  std::sort(pool.begin(), pool.end());
  std::set<std::string> filtered;
  do {
    Strategy s((std::vector<Expression>(pool)));
    if (CheckVdagStrategy(vdag, s).ok) filtered.insert(s.ToString());
  } while (std::next_permutation(
      pool.begin(), pool.end(),
      [](const Expression& a, const Expression& b) { return a < b; }));

  std::set<std::string> enumerated;
  for (const Strategy& s :
       EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true, 100000)) {
    enumerated.insert(s.ToString());
  }
  EXPECT_EQ(filtered, enumerated);
}

// Include non-1-way strategies: for V over {A,B} the strategy space also
// contains the dual-stage family.
TEST(ExhaustiveTest, NonOneWayStrategiesIncludeDualStage) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddDerivedView(testutil::SpjTripleView("V", {"A", "B"}));

  auto all = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/false,
                                               100000);
  auto one_way = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                                   100000);
  EXPECT_GT(all.size(), one_way.size());
  bool has_dual = false;
  for (const Strategy& s : all) {
    for (const Expression& e : s.expressions()) {
      if (e.is_comp() && e.over.size() == 2) has_dual = true;
    }
  }
  EXPECT_TRUE(has_dual);
}

TEST(ExhaustiveTest, BestOfPicksMinimum) {
  Vdag vdag = testutil::MakeStarVdag("V", 2);
  SizeMap sizes;
  sizes.Set("B0", {100, 10, -10});
  sizes.Set("B1", {300, 60, -60});
  sizes.Set("V", {50, 5, -5});
  std::vector<Strategy> candidates = {
      MakeDualStageViewStrategy("V", {"B0", "B1"}),
      MakeOneWayViewStrategy("V", {"B0", "B1"}),
      MakeOneWayViewStrategy("V", {"B1", "B0"}),
  };
  EvaluatedStrategy best = BestOf(vdag, candidates, sizes);
  // Deletions: biggest shrink (B1) first is optimal.
  EXPECT_EQ(best.strategy, candidates[2]);
}

TEST(ExhaustiveDeathTest, LimitGuards) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EXPECT_DEATH(EnumerateAllCorrectVdagStrategies(vdag, true, /*limit=*/2),
               "limit");
}

}  // namespace
}  // namespace wuw
