// The io::Env seam (io/env.h) and its fault-injecting implementation
// (io/fault_env.h): the crash-atomic write discipline must leave old-or-new
// (never a mix, never .tmp litter), injected ENOSPC / short writes / EIO
// must surface as error strings with the admitted prefix on disk, and
// CrashNow() must apply the power-cut outcome — unsynced tails torn at
// sector granularity, never-synced creates vanishing, uncommitted renames
// rolling back.  The pager's bounded read retry (storage/page.h) is
// exercised against transient and permanent injected EIO.
#include "io/env.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/fault_env.h"
#include "storage/page.h"

namespace wuw {
namespace io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string MustRead(const std::string& path) {
  std::string contents;
  std::string error = Env::Default()->ReadFileToString(path, &contents);
  EXPECT_EQ(error, "") << path;
  return contents;
}

TEST(EnvTest, ParentDirSplitsPaths) {
  EXPECT_EQ(ParentDir("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(ParentDir("c.txt"), ".");
  EXPECT_EQ(ParentDir("/top"), "/");
}

TEST(EnvTest, AtomicWriteFileRoundTripNoTmpLitter) {
  Env* env = Env::Default();
  const std::string path = TempPath("wuw_env_atomic.txt");
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(env, path, "first contents", &error)) << error;
  EXPECT_EQ(MustRead(path), "first contents");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  // Overwrite is atomic too: the new contents replace the old in full.
  ASSERT_TRUE(AtomicWriteFile(env, path, "second", &error)) << error;
  EXPECT_EQ(MustRead(path), "second");
  env->RemoveFile(path);
}

TEST(EnvTest, RandomRWFileRoundTripAndShortRead) {
  Env* env = Env::Default();
  const std::string path = TempPath("wuw_env_rw.bin");
  std::unique_ptr<RandomRWFile> f;
  ASSERT_EQ(env->NewRandomRWFile(path, /*truncate=*/true, &f), "");
  ASSERT_EQ(f->WriteAt(0, "0123456789"), "");
  ASSERT_EQ(f->WriteAt(4, "XY"), "");
  std::string out;
  ASSERT_EQ(f->ReadAt(2, 6, &out, nullptr), "");
  EXPECT_EQ(out, "23XY67");
  uint64_t size = 0;
  ASSERT_EQ(f->Size(&size), "");
  EXPECT_EQ(size, 10u);
  // Reading past EOF is a short read: an error with retryable == false
  // (truncation is corruption, not transience — the pager must not retry).
  bool retryable = true;
  std::string error = f->ReadAt(8, 6, &out, &retryable);
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(retryable);
  f.reset();
  env->RemoveFile(path);
}

TEST(EnvTest, ScopedEnvSwapsAndRestores) {
  Env* before = GetEnv();
  FaultEnv fenv(IoFaultOptions{}, Env::Default());
  {
    ScopedEnv scoped(&fenv);
    EXPECT_EQ(GetEnv(), &fenv);
  }
  EXPECT_EQ(GetEnv(), before);
}

TEST(IoFaultSpecTest, ParsesFullGrammar) {
  IoFaultOptions o;
  ASSERT_EQ(ParseIoFaultSpec(
                "enospc=4096;short_write=3;read_eio=2;transient=5;"
                "p_read=0.25;p_write=0.5;seed=7;drop_sync;torn=1024",
                &o),
            "");
  EXPECT_EQ(o.enospc_bytes, 4096);
  EXPECT_EQ(o.short_write_at, 3);
  EXPECT_EQ(o.read_eio_at, 2);
  EXPECT_EQ(o.transient, 5);
  EXPECT_DOUBLE_EQ(o.p_read, 0.25);
  EXPECT_DOUBLE_EQ(o.p_write, 0.5);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_TRUE(o.drop_sync);
  EXPECT_EQ(o.sector, 1024);
}

TEST(IoFaultSpecTest, RejectsBadSpecs) {
  IoFaultOptions o;
  EXPECT_NE(ParseIoFaultSpec("", &o), "");            // arms nothing
  EXPECT_NE(ParseIoFaultSpec("seed=3", &o), "");      // arms nothing
  EXPECT_NE(ParseIoFaultSpec("enospc=", &o), "");
  EXPECT_NE(ParseIoFaultSpec("enospc=-1", &o), "");
  EXPECT_NE(ParseIoFaultSpec("short_write=0", &o), "");
  EXPECT_NE(ParseIoFaultSpec("p_read=1.5", &o), "");
  EXPECT_NE(ParseIoFaultSpec("torn=0", &o), "");
  EXPECT_NE(ParseIoFaultSpec("bogus=1", &o), "");
}

TEST(FaultEnvTest, EnospcFailsAtomicWriteAndKeepsOldFile) {
  Env* base = Env::Default();
  const std::string path = TempPath("wuw_fault_enospc.txt");
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(base, path, "the old contents", &error));

  IoFaultOptions o;
  o.enospc_bytes = 5;  // the replacement payload cannot fit
  FaultEnv fenv(o, base);
  ASSERT_FALSE(AtomicWriteFile(&fenv, path, "replacement that is longer",
                               &error));
  EXPECT_NE(error.find("ENOSPC"), std::string::npos) << error;
  // Old-or-new: the real name still holds the old contents in full, and
  // the failed attempt's temp file was cleaned up.
  EXPECT_EQ(MustRead(path), "the old contents");
  EXPECT_FALSE(base->FileExists(path + ".tmp"));
  EXPECT_FALSE(fenv.Trace().empty());
  base->RemoveFile(path);
}

TEST(FaultEnvTest, ShortWritePersistsPrefixAndFails) {
  IoFaultOptions o;
  o.short_write_at = 1;
  FaultEnv fenv(o, Env::Default());
  const std::string path = TempPath("wuw_fault_short.txt");
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(path, &f), "");
  std::string error = f->Append("0123456789");
  EXPECT_NE(error.find("short write"), std::string::npos) << error;
  f->Close();
  // Half the bytes were admitted and are findable on disk.
  EXPECT_EQ(MustRead(path), "01234");
  Env::Default()->RemoveFile(path);
}

TEST(FaultEnvTest, TransientEioIsRetryablePermanentIsNot) {
  IoFaultOptions o;
  o.read_eio_at = 1;
  o.transient = 2;  // read ops 1 and 2 fail, op 3 succeeds
  FaultEnv fenv(o, Env::Default());
  const std::string path = TempPath("wuw_fault_eio.bin");
  std::unique_ptr<RandomRWFile> f;
  ASSERT_EQ(fenv.NewRandomRWFile(path, /*truncate=*/true, &f), "");
  ASSERT_EQ(f->WriteAt(0, "payload"), "");
  std::string out;
  bool retryable = false;
  EXPECT_NE(f->ReadAt(0, 7, &out, &retryable), "");  // op 1: injected
  EXPECT_TRUE(retryable);
  retryable = false;
  EXPECT_NE(f->ReadAt(0, 7, &out, &retryable), "");  // op 2: injected
  EXPECT_TRUE(retryable);
  EXPECT_EQ(f->ReadAt(0, 7, &out, nullptr), "");     // op 3: clean
  EXPECT_EQ(out, "payload");
  f.reset();
  Env::Default()->RemoveFile(path);
}

// The pager's bounded fault-in retry (PageFile::ReadPage): a transient
// injected EIO burst shorter than the retry schedule is absorbed — the
// read succeeds and the retries are counted — while an EIO that outlives
// kReadAttempts surfaces as the error string the fault-in path throws.
TEST(FaultEnvTest, PageReadRetriesTransientEio) {
  const std::string path = TempPath("wuw_fault_retry.pages");
  std::string error;
  {
    auto file = paged::PageFile::Create(path, 256, &error);
    ASSERT_NE(file, nullptr) << error;
    ASSERT_EQ(file->AllocatePage(), 0);
    ASSERT_EQ(file->WritePage(0, "page zero payload"), "");
    ASSERT_EQ(file->Sync(), "");
  }

  {
    // Open costs one read op (the header); ops 2 and 3 fail, op 4 lands —
    // within ReadPage's kReadAttempts = 3 schedule.
    IoFaultOptions o;
    o.read_eio_at = 2;
    o.transient = 2;
    FaultEnv fenv(o, Env::Default());
    auto file = paged::PageFile::Open(path, &error, &fenv);
    ASSERT_NE(file, nullptr) << error;
    int64_t retries_before = paged::GlobalPagedStats().read_retries;
    std::string payload;
    ASSERT_EQ(file->ReadPage(0, &payload), "");
    EXPECT_EQ(payload, "page zero payload");
    EXPECT_EQ(paged::GlobalPagedStats().read_retries - retries_before, 2);
  }

  {
    // Permanent EIO outlives the schedule: error string, never an abort.
    IoFaultOptions o;
    o.read_eio_at = 2;
    o.transient = 0;
    FaultEnv fenv(o, Env::Default());
    auto file = paged::PageFile::Open(path, &error, &fenv);
    ASSERT_NE(file, nullptr) << error;
    std::string payload;
    std::string read_error = file->ReadPage(0, &payload);
    EXPECT_NE(read_error.find("cannot read page"), std::string::npos)
        << read_error;
  }
  Env::Default()->RemoveFile(path);
}

TEST(FaultEnvTest, CrashTruncatesUnsyncedTailAtSectorGranularity) {
  IoFaultOptions o;
  o.sector = 16;
  FaultEnv fenv(o, Env::Default());
  const std::string path = TempPath("wuw_fault_crash_tail.txt");
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(path, &f), "");
  std::string synced(100, 'S');
  ASSERT_EQ(f->Append(synced), "");
  ASSERT_EQ(f->Sync(), "");
  ASSERT_EQ(f->Append(std::string(200, 'U')), "");  // never synced
  f->Close();
  fenv.CrashNow();
  // The synced 100 bytes survive; the unsynced tail is cut at the next
  // sector boundary (112), so at most one torn partial sector remains.
  std::string after = MustRead(path);
  ASSERT_GE(after.size(), 100u);
  ASSERT_LE(after.size(), 112u);
  EXPECT_EQ(after.substr(0, 100), synced);
  Env::Default()->RemoveFile(path);
}

TEST(FaultEnvTest, CrashRemovesNeverSyncedCreate) {
  FaultEnv fenv(IoFaultOptions{}, Env::Default());
  const std::string path = TempPath("wuw_fault_crash_create.txt");
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(path, &f), "");
  ASSERT_EQ(f->Append("written but never made durable"), "");
  f->Close();
  fenv.CrashNow();
  EXPECT_FALSE(Env::Default()->FileExists(path));
}

TEST(FaultEnvTest, DropSyncMakesDurabilityALie) {
  IoFaultOptions o;
  o.drop_sync = true;
  FaultEnv fenv(o, Env::Default());
  const std::string path = TempPath("wuw_fault_drop_sync.txt");
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(path, &f), "");
  ASSERT_EQ(f->Append("bytes"), "");
  ASSERT_EQ(f->Sync(), "");  // reports success, commits nothing
  f->Close();
  fenv.CrashNow();
  // The create was never really committed: the file vanishes with the
  // power cut even though every sync "succeeded".
  EXPECT_FALSE(Env::Default()->FileExists(path));
}

TEST(FaultEnvTest, CrashRollsBackUncommittedRename) {
  Env* base = Env::Default();
  const std::string target = TempPath("wuw_fault_rename_target.txt");
  const std::string tmp = target + ".tmp";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(base, target, "old durable contents", &error));

  FaultEnv fenv(IoFaultOptions{}, base);
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(tmp, &f), "");
  ASSERT_EQ(f->Append("new contents"), "");
  ASSERT_EQ(f->Sync(), "");
  ASSERT_EQ(f->Close(), "");
  ASSERT_EQ(fenv.RenameFile(tmp, target), "");
  // No SyncDir before the cut: the dirent change was never durable, so the
  // rename rolls back and the old contents reappear under the real name.
  fenv.CrashNow();
  EXPECT_EQ(MustRead(target), "old durable contents");
  base->RemoveFile(target);
}

TEST(FaultEnvTest, SyncDirCommitsRenameAcrossCrash) {
  Env* base = Env::Default();
  const std::string target = TempPath("wuw_fault_rename_commit.txt");
  const std::string tmp = target + ".tmp";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(base, target, "old durable contents", &error));

  FaultEnv fenv(IoFaultOptions{}, base);
  std::unique_ptr<WritableFile> f;
  ASSERT_EQ(fenv.NewWritableFile(tmp, &f), "");
  ASSERT_EQ(f->Append("new contents"), "");
  ASSERT_EQ(f->Sync(), "");
  ASSERT_EQ(f->Close(), "");
  ASSERT_EQ(fenv.RenameFile(tmp, target), "");
  ASSERT_EQ(fenv.SyncDir(ParentDir(target)), "");
  fenv.CrashNow();
  EXPECT_EQ(MustRead(target), "new contents");
  base->RemoveFile(target);
}

}  // namespace
}  // namespace io
}  // namespace wuw
