// Lockstep property tests for morsel-driven intra-operator parallelism.
//
// The contract under test (parallel/thread_pool.h): the pool schedules
// WHERE work runs, never WHAT it computes.  So every kernel and every
// executor must produce byte-identical output — rows, row ORDER, and
// merged OperatorStats — at every pool size, with and without a subplan
// cache attached.
//
//   * kernel lockstep: HashJoin / AggregateSigned / Filter / Project on
//     random signed multisets big enough to cross kMinParallelRows,
//     sequential vs pools {2, 8};
//   * strategy lockstep: random VDAGs executed at WUW_THREADS-equivalent
//     pool sizes {1, 2, 8} x cache budgets {none, 0, 256MB}, checked
//     against the recompute ground truth AND against each other
//     (identical merged totals and linear work across pool sizes);
//   * staged lockstep: the same invariant through ParallelExecutor, where
//     stage workers, term workers, and morsel kernels share one pool.
//
// All suites honor WUW_SEED and print a one-command repro on failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "algebra/project.h"
#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"

namespace wuw {
namespace {

// Pools reused across tests (spawning threads per TEST_P row is pure
// overhead).  Sizes 2 and 8 both exceed the 1-core CI floor on purpose:
// determinism must hold when workers time-slice, not just when they map
// 1:1 onto cores.
ThreadPool& Pool2() {
  static ThreadPool* p = new ThreadPool(2);
  return *p;
}
ThreadPool& Pool8() {
  static ThreadPool* p = new ThreadPool(8);
  return *p;
}
ThreadPool& Pool1() {
  static ThreadPool* p = new ThreadPool(1);
  return *p;
}

/// Random signed multiset with schema (<p>_k INT, <p>_v INT, <p>_g INT,
/// <p>_d DOUBLE): join-friendly keys, small groups, a double column so the
/// bit-identical-SUM claim is exercised on floating point, multiplicities
/// in [-3, 3] \ {0} so signed-delta semantics are in play.
Rows RandomRows(const std::string& p, size_t n, int64_t key_range,
                tpcd::Rng* rng) {
  Rows out(Schema({{p + "_k", TypeId::kInt64},
                   {p + "_v", TypeId::kInt64},
                   {p + "_g", TypeId::kInt64},
                   {p + "_d", TypeId::kDouble}}));
  out.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t k = rng->Range(1, key_range);
    int64_t mult = rng->Range(1, 3) * (rng->Below(4) == 0 ? -1 : 1);
    out.Add(Tuple({Value::Int64(k), Value::Int64(rng->Range(-50, 99)),
                   Value::Int64(k % 5),
                   Value::Double(static_cast<double>(rng->Range(-9999, 9999)) /
                                 7.0)}),
            mult);
  }
  return out;
}

/// Byte-identical comparison: same length, same tuples in the same ORDER
/// with the same multiplicities.  (Table::ContentsEqual is order-blind;
/// the morsel kernels promise more than that.)
void ExpectRowsIdentical(const Rows& expect, const Rows& got) {
  ASSERT_EQ(expect.rows.size(), got.rows.size());
  for (size_t i = 0; i < expect.rows.size(); ++i) {
    ASSERT_EQ(expect.rows[i].second, got.rows[i].second) << "row " << i;
    ASSERT_TRUE(expect.rows[i].first == got.rows[i].first) << "row " << i;
  }
}

class KernelLockstepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelLockstepTest, HashJoinMatchesSequentialAtEveryPoolSize) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows left = RandomRows("l", 20000, 4000, &rng);
  Rows right = RandomRows("r", 12000, 4000, &rng);
  JoinKeys keys{{"l_k"}, {"r_k"}};

  OperatorStats seq_stats;
  Rows seq = HashJoin(left, right, keys, &seq_stats, nullptr);
  for (ThreadPool* pool : {&Pool1(), &Pool2(), &Pool8()}) {
    SCOPED_TRACE("pool=" + std::to_string(pool->parallelism()));
    OperatorStats par_stats;
    Rows par = HashJoin(left, right, keys, &par_stats, pool);
    ExpectRowsIdentical(seq, par);
    EXPECT_EQ(seq_stats, par_stats);
  }
  // Below the threshold the gate must fall back to the sequential path.
  Rows small_l = RandomRows("l", 300, 80, &rng);
  Rows small_r = RandomRows("r", 200, 80, &rng);
  OperatorStats small_seq_stats, small_par_stats;
  Rows small_seq = HashJoin(small_l, small_r, keys, &small_seq_stats, nullptr);
  Rows small_par = HashJoin(small_l, small_r, keys, &small_par_stats, &Pool8());
  ExpectRowsIdentical(small_seq, small_par);
  EXPECT_EQ(small_seq_stats, small_par_stats);
}

TEST_P(KernelLockstepTest, AggregateMatchesSequentialAtEveryPoolSize) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows input = RandomRows("t", 24000, 6000, &rng);
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("t_v"), "sv"},
      {AggFn::kSum, ScalarExpr::Column("t_d"), "sd"},  // double SUM: bits
      {AggFn::kCount, nullptr, "n"}};
  // Few fat groups and many small groups stress opposite ends of the
  // partitioned merge.
  for (const char* group_col : {"t_g", "t_k"}) {
    SCOPED_TRACE(std::string("group_by=") + group_col);
    OperatorStats seq_stats;
    Rows seq = AggregateSigned(input, {group_col}, aggs, &seq_stats, nullptr);
    for (ThreadPool* pool : {&Pool1(), &Pool2(), &Pool8()}) {
      SCOPED_TRACE("pool=" + std::to_string(pool->parallelism()));
      OperatorStats par_stats;
      Rows par = AggregateSigned(input, {group_col}, aggs, &par_stats, pool);
      ExpectRowsIdentical(seq, par);
      EXPECT_EQ(seq_stats, par_stats);
    }
  }
}

TEST_P(KernelLockstepTest, FilterAndProjectMatchSequentialAtEveryPoolSize) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows input = RandomRows("t", 20000, 5000, &rng);
  ScalarExpr::Ptr pred =
      ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("t_v"),
                          ScalarExpr::Literal(Value::Int64(40)));
  std::vector<ProjectItem> items = {
      {ScalarExpr::Column("t_k"), "k"},
      {ScalarExpr::Arith(ArithOp::kAdd, ScalarExpr::Column("t_v"),
                         ScalarExpr::Column("t_g")),
       "vg"}};
  OperatorStats f_seq_stats, p_seq_stats;
  Rows f_seq = Filter(input, pred, &f_seq_stats, nullptr);
  Rows p_seq = Project(input, items, &p_seq_stats, nullptr);
  for (ThreadPool* pool : {&Pool1(), &Pool2(), &Pool8()}) {
    SCOPED_TRACE("pool=" + std::to_string(pool->parallelism()));
    OperatorStats f_stats, p_stats;
    Rows f = Filter(input, pred, &f_stats, pool);
    Rows p = Project(input, items, &p_stats, pool);
    ExpectRowsIdentical(f_seq, f);
    EXPECT_EQ(f_seq_stats, f_stats);
    ExpectRowsIdentical(p_seq, p);
    EXPECT_EQ(p_seq_stats, p_stats);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelLockstepTest,
                         ::testing::Values(101, 202, 303));

// End-to-end: random VDAG strategies executed at pool sizes {1, 2, 8} and
// cache budgets {none, 0, 256MB} all converge to the recompute ground
// truth with identical merged OperatorStats and linear work.  Base tables
// are sized past kMinParallelRows so the morsel paths genuinely engage.
struct StrategyScenario {
  uint64_t seed;
  size_t bases;
  size_t derived;
};

class StrategyLockstepTest
    : public ::testing::TestWithParam<StrategyScenario> {};

TEST_P(StrategyLockstepTest, PoolSizeAndCacheBudgetNeverChangeResults) {
  const StrategyScenario& sc = GetParam();
  const uint64_t seed = sc.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = testutil::RandomVdag(&rng, sc.bases, sc.derived);
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 12000, seed * 31 + 1);
  testutil::ApplyTripleChanges(&w, 0.08, 400, seed * 17 + 3);
  Catalog truth = testutil::GroundTruthAfterChanges(w);

  Strategy strategy = MinWork(vdag, w.EstimatedSizes()).strategy;
  for (int64_t budget : {int64_t{-1}, int64_t{0}, int64_t{256} << 20}) {
    SCOPED_TRACE("cache_budget=" + std::to_string(budget));
    bool have_baseline = false;
    OperatorStats baseline_totals;
    int64_t baseline_work = 0;
    for (ThreadPool* pool : {&Pool1(), &Pool2(), &Pool8()}) {
      SCOPED_TRACE("pool=" + std::to_string(pool->parallelism()));
      // Fresh cache per run: hit/miss sequences are deterministic, so
      // cache counters must also agree across pool sizes.
      SubplanCache cache(SubplanCacheOptions{budget});
      Warehouse clone = w.Clone();
      ExecutorOptions options;
      options.pool = pool;
      if (budget >= 0) options.subplan_cache = &cache;
      Executor executor(&clone, options);
      ExecutionReport report = executor.Execute(strategy);
      ASSERT_TRUE(clone.catalog().ContentsEqual(truth));
      if (!have_baseline) {
        have_baseline = true;
        baseline_totals = report.totals;
        baseline_work = report.total_linear_work;
      } else {
        EXPECT_EQ(baseline_totals, report.totals);
        EXPECT_EQ(baseline_work, report.total_linear_work);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyLockstepTest,
    ::testing::Values(StrategyScenario{21, 2, 2}, StrategyScenario{22, 3, 2},
                      StrategyScenario{23, 2, 3}),
    [](const ::testing::TestParamInfo<StrategyScenario>& info) {
      return "seed" + std::to_string(info.param.seed) + "_b" +
             std::to_string(info.param.bases) + "d" +
             std::to_string(info.param.derived);
    });

// The staged executor layers stage workers + term workers + morsel kernels
// on ONE pool; the result and merged totals must still be pool-size
// independent and equal to the ground truth.
TEST(ParallelExecutorLockstepTest, StagedRunsArePoolSizeIndependent) {
  const uint64_t seed = testutil::PropertySeed(4242);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = testutil::RandomVdag(&rng, 3, 2);
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 12000, seed + 5);
  testutil::ApplyTripleChanges(&w, 0.1, 300, seed + 9);
  Catalog truth = testutil::GroundTruthAfterChanges(w);

  Strategy dual = MakeDualStageVdagStrategy(vdag);
  ParallelStrategy staged = ParallelizeStrategy(vdag, dual);
  bool have_baseline = false;
  OperatorStats baseline_totals;
  for (ThreadPool* pool : {&Pool1(), &Pool8()}) {
    SCOPED_TRACE("pool=" + std::to_string(pool->parallelism()));
    Warehouse clone = w.Clone();
    ParallelExecutorOptions options;
    options.workers = 4;
    options.term_workers = 2;
    options.pool = pool;
    ParallelExecutor executor(&clone, options);
    ParallelExecutionReport report = executor.Execute(staged);
    ASSERT_TRUE(clone.catalog().ContentsEqual(truth));
    if (!have_baseline) {
      have_baseline = true;
      baseline_totals = report.totals;
    } else {
      EXPECT_EQ(baseline_totals, report.totals);
    }
  }
}

}  // namespace
}  // namespace wuw
