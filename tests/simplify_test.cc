#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/min_work.h"
#include "core/simplify.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

TEST(EmptyDeltaClosureTest, PropagatesUpward) {
  Vdag vdag = testutil::MakeFig3Vdag();  // V4 over {B,C}, V5 over {A,V4}
  // Only A changes: B, C empty -> V4 empty; V5 not (A feeds it).
  auto closure = EmptyDeltaClosure(vdag, {"B", "C"});
  EXPECT_EQ(closure, (std::set<std::string>{"B", "C", "V4"}));

  // Everything quiet -> all views empty.
  auto all = EmptyDeltaClosure(vdag, {"A", "B", "C"});
  EXPECT_EQ(all.size(), 5u);

  // Only C quiet -> nothing derived is empty.
  auto partial = EmptyDeltaClosure(vdag, {"C"});
  EXPECT_EQ(partial, (std::set<std::string>{"C"}));
}

TEST(SimplifyTest, DropsAndShrinksExpressions) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Strategy dual = MakeDualStageVdagStrategy(vdag);
  std::set<std::string> empty = EmptyDeltaClosure(vdag, {"B", "C"});
  Strategy simplified = SimplifyForEmptyDeltas(dual, empty);

  // Comp(V4,{B,C}) vanished; Comp(V5,{A,V4}) shrank to Comp(V5,{A});
  // installs of B, C, V4 vanished.
  EXPECT_FALSE(simplified.Contains(Expression::Inst("B")));
  EXPECT_FALSE(simplified.Contains(Expression::Inst("C")));
  EXPECT_FALSE(simplified.Contains(Expression::Inst("V4")));
  EXPECT_TRUE(simplified.Contains(Expression::Comp("V5", {"A"})));
  EXPECT_TRUE(simplified.Contains(Expression::Inst("A")));
  EXPECT_TRUE(simplified.Contains(Expression::Inst("V5")));
  for (const Expression& e : simplified.expressions()) {
    EXPECT_NE(e.view, "V4");
  }

  // It passes the checker with the closure, not without.
  EXPECT_TRUE(CheckVdagStrategy(vdag, simplified, empty).ok);
  EXPECT_FALSE(CheckVdagStrategy(vdag, simplified).ok);
}

TEST(SimplifyTest, NoopWhenNothingEmpty) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Strategy s = MakeDualStageVdagStrategy(vdag);
  EXPECT_EQ(SimplifyForEmptyDeltas(s, {}), s);
}

TEST(SimplifyTest, ExecutorSimplificationPreservesState) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 3);
  // Only A changes.
  const Table& a = *w.catalog().MustGetTable("A");
  w.SetBaseDelta("A", tpcd::MakeDeletionDelta(a, 0.2, 7));
  Catalog truth = GroundTruthAfterChanges(w);

  Warehouse w2 = w.Clone();
  ExecutorOptions simplify;
  simplify.simplify_empty_deltas = true;
  Executor plain(&w), fast(&w2, simplify);

  Strategy strategy = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  ExecutionReport full = plain.Execute(strategy);
  ExecutionReport simplified = fast.Execute(strategy);

  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
  EXPECT_TRUE(w2.catalog().ContentsEqual(truth));
  // The simplified run executed strictly fewer expressions and did less
  // work (it never scanned C/B extents for V4's maintenance).
  EXPECT_LT(simplified.per_expression.size(), full.per_expression.size());
  EXPECT_LT(simplified.total_linear_work, full.total_linear_work);
}

TEST(SimplifyTest, FullyQuietBatchBecomesEmptyStrategy) {
  Vdag vdag = testutil::MakeFig3Vdag();
  Strategy s = MakeDualStageVdagStrategy(vdag);
  std::set<std::string> empty =
      EmptyDeltaClosure(vdag, {"A", "B", "C"});
  EXPECT_TRUE(SimplifyForEmptyDeltas(s, empty).empty());
}

TEST(SimplifyTest, SimplifiedOneWayStillOrdered) {
  // Shrinking must not reorder surviving expressions.
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    sizes.Set(name, {100, 10, -10});
  }
  Strategy s = MinWork(vdag, sizes).strategy;
  std::set<std::string> empty = EmptyDeltaClosure(vdag, {"B"});
  Strategy simplified = SimplifyForEmptyDeltas(s, empty);
  // Relative order of surviving expressions matches the original.
  size_t cursor = 0;
  for (const Expression& e : s.expressions()) {
    if (cursor < simplified.size() && simplified[cursor] == e) ++cursor;
  }
  // Shrunk comps (over sets changed) break exact matching; just re-check
  // correctness under the closure.
  EXPECT_TRUE(CheckVdagStrategy(vdag, simplified, empty).ok);
}

}  // namespace
}  // namespace wuw
