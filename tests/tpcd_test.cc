#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/min_work_single.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace tpcd {
namespace {

GeneratorOptions SmallScale() {
  GeneratorOptions o;
  o.scale_factor = 0.002;  // tiny but structurally faithful
  o.seed = 7;
  return o;
}

TEST(TpcdGeneratorTest, RowCountsFollowRatios) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  const Catalog& c = w.catalog();
  EXPECT_EQ(c.MustGetTable(kRegion)->cardinality(), 5);
  EXPECT_EQ(c.MustGetTable(kNation)->cardinality(), 25);
  int64_t suppliers = c.MustGetTable(kSupplier)->cardinality();
  int64_t customers = c.MustGetTable(kCustomer)->cardinality();
  int64_t orders = c.MustGetTable(kOrders)->cardinality();
  int64_t lineitems = c.MustGetTable(kLineitem)->cardinality();
  EXPECT_EQ(suppliers, 20);
  EXPECT_EQ(customers, 300);
  EXPECT_EQ(orders, 3000);
  EXPECT_GT(lineitems, 2 * orders);
  EXPECT_LT(lineitems, 8 * orders);
  // "L is the largest base view" — the premise of the desired ordering.
  EXPECT_GT(lineitems, orders);
  EXPECT_GT(orders, customers);
  EXPECT_GT(customers, suppliers);
}

TEST(TpcdGeneratorTest, DeterministicAcrossRuns) {
  Warehouse a = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  Warehouse b = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  EXPECT_TRUE(a.catalog().ContentsEqual(b.catalog()));
}

TEST(TpcdGeneratorTest, DateEncoding) {
  EXPECT_EQ(DateFromDayOffset(0), 19920101);
  EXPECT_EQ(DateFromDayOffset(29), 19920130);
  EXPECT_EQ(DateFromDayOffset(30), 19920201);
  EXPECT_EQ(DateFromDayOffset(360), 19930101);
  EXPECT_EQ(DateFromDayOffset(2399), 19980830);
}

TEST(TpcdViewsTest, VdagShapeMatchesFigure4) {
  Vdag vdag = BuildTpcdVdag();
  EXPECT_EQ(vdag.num_views(), 9u);
  EXPECT_EQ(vdag.sources("Q3").size(), 3u);
  EXPECT_EQ(vdag.sources("Q5").size(), 6u);
  EXPECT_EQ(vdag.sources("Q10").size(), 4u);
  EXPECT_TRUE(vdag.IsUniform());
}

TEST(TpcdViewsTest, Q3HasPlausibleContents) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  const Table& q3 = *w.catalog().MustGetTable("Q3");
  EXPECT_GT(q3.cardinality(), 0);
  // Group keys: l_orderkey, o_orderdate, o_shippriority + revenue + count.
  EXPECT_EQ(q3.schema().num_columns(), 5u);
  q3.ForEach([&](const Tuple& t, int64_t c) {
    EXPECT_EQ(c, 1);
    EXPECT_GT(t.value(3).AsInt64(), 0);  // revenue positive
    EXPECT_LT(t.value(1).AsDate(), 19950315);
  });
}

TEST(TpcdViewsTest, Q5AggregatesByNation) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q5"});
  const Table& q5 = *w.catalog().MustGetTable("Q5");
  // At most 5 ASIA nations.
  EXPECT_LE(q5.cardinality(), 5);
  EXPECT_GT(q5.cardinality(), 0);
}

TEST(TpcdViewsTest, Q10FiltersReturnedItems) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q10"});
  const Table& q10 = *w.catalog().MustGetTable("Q10");
  EXPECT_GT(q10.cardinality(), 0);
  EXPECT_LT(q10.cardinality(),
            w.catalog().MustGetTable(kCustomer)->cardinality());
}

TEST(ChangeGeneratorTest, DeletionFractionApproximate) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  const Table& orders = *w.catalog().MustGetTable(kOrders);
  DeltaRelation d = MakeDeletionDelta(orders, 0.10, 99);
  EXPECT_EQ(d.plus_count(), 0);
  double fraction =
      static_cast<double>(d.minus_count()) / orders.cardinality();
  EXPECT_NEAR(fraction, 0.10, 0.03);
}

TEST(ChangeGeneratorTest, DeletionsAreSubsetOfTable) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  const Table& customer = *w.catalog().MustGetTable(kCustomer);
  DeltaRelation d = MakeDeletionDelta(customer, 0.2, 5);
  d.ForEach([&](const Tuple& t, int64_t c) {
    EXPECT_LT(c, 0);
    EXPECT_GE(customer.Count(t), -c);
  });
}

TEST(ChangeGeneratorTest, InsertionsUseFreshKeys) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3"});
  const Table& orders = *w.catalog().MustGetTable(kOrders);
  DeltaRelation d = MakeInsertionDelta(kOrders, 50, 1 << 20, SmallScale());
  EXPECT_EQ(d.minus_count(), 0);
  EXPECT_EQ(d.plus_count(), 50);
  d.ForEach([&](const Tuple& t, int64_t) {
    EXPECT_GT(t.value(0).AsInt64(), 1 << 20);
    EXPECT_EQ(orders.Count(t), 0);
  });
}

TEST(ChangeGeneratorTest, PaperWorkloadLeavesRegionUnchanged) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q5"});
  ApplyPaperChangeWorkload(&w, 0.1, 0.0, 11);
  EXPECT_TRUE(w.base_delta(kRegion).empty());
  EXPECT_GT(w.base_delta(kLineitem).minus_count(), 0);
  EXPECT_GT(w.base_delta(kNation).minus_count(), 0);
}

TEST(TpcdEndToEndTest, DesiredOrderingMatchesPaper) {
  // 10% deletions everywhere (but REGION): desired ordering is
  // <L, O, C, S, N, R> — largest shrink first (Section 7).  Needs a scale
  // where SUPPLIER > NATION, as in real TPC-D.
  GeneratorOptions options;
  options.scale_factor = 0.02;
  options.seed = 7;
  Warehouse w = MakeTpcdWarehouse(options, {"Q3"});
  ApplyPaperChangeWorkload(&w, 0.1, 0.0, 13);
  SizeMap sizes = w.EstimatedSizes();
  std::vector<std::string> ordering =
      DesiredViewOrdering(w.vdag().BaseViews(), sizes);
  EXPECT_EQ(ordering, (std::vector<std::string>{kLineitem, kOrders, kCustomer,
                                                kSupplier, kNation, kRegion}));
}

TEST(TpcdEndToEndTest, MinWorkUpdatesWarehouseCorrectly) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3", "Q10"});
  ApplyPaperChangeWorkload(&w, 0.1, 0.05, 17);

  // Ground truth via recompute-on-clone.
  Warehouse truth_w = w.Clone();
  for (const std::string& name : truth_w.vdag().BaseViews()) {
    const DeltaRelation& delta = truth_w.base_delta(name);
    Table* table = truth_w.catalog().MustGetTable(name);
    delta.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
  }
  truth_w.RecomputeDerived();

  MinWorkResult mw = MinWork(w.vdag(), w.EstimatedSizes());
  Executor executor(&w);
  executor.Execute(mw.strategy);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth_w.catalog()));
}

TEST(TpcdEndToEndTest, DualStageAndMinWorkAgreeOnFinalState) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3", "Q5", "Q10"});
  ApplyPaperChangeWorkload(&w, 0.1, 0.0, 19);

  Warehouse w_dual = w.Clone();
  Warehouse w_mw = w.Clone();
  Executor dual(&w_dual), mw(&w_mw);
  dual.Execute(MakeDualStageVdagStrategy(w.vdag()));
  mw.Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  EXPECT_TRUE(w_dual.catalog().ContentsEqual(w_mw.catalog()));
}

TEST(TpcdEndToEndTest, MinWorkLinearWorkBeatsDualStage) {
  Warehouse w = MakeTpcdWarehouse(SmallScale(), {"Q3", "Q5", "Q10"});
  ApplyPaperChangeWorkload(&w, 0.1, 0.0, 23);

  Warehouse w_dual = w.Clone();
  Warehouse w_mw = w.Clone();
  Executor dual(&w_dual), mw(&w_mw);
  ExecutionReport dual_report =
      dual.Execute(MakeDualStageVdagStrategy(w.vdag()));
  ExecutionReport mw_report =
      mw.Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  // Experiment 4's headline: the 1-way MinWork strategy does several times
  // less work than the dual-stage strategy.
  EXPECT_LT(mw_report.total_linear_work, dual_report.total_linear_work / 2);
}

TEST(SourceChangeStreamTest, BatchesAreCoherent) {
  GeneratorOptions options = SmallScale();
  Warehouse w = MakeTpcdWarehouse(options, {"Q3"});
  SourceChangeStream stream(w, options);

  // Merged batches never over-delete: applying them in sequence to a copy
  // of the base tables must never clamp (every deletion finds its row).
  Catalog mirror = w.catalog().Clone();
  for (int b = 0; b < 5; ++b) {
    auto batch = stream.NextBatch(0.1, 0.05);
    for (auto& [view, delta] : batch) {
      Table* table = mirror.MustGetTable(view);
      delta.ForEach([&](const Tuple& t, int64_t c) {
        if (c < 0) {
          ASSERT_GE(table->Count(t), -c) << view << " over-deletes";
        }
        table->Add(t, c);
      });
    }
  }
  // The stream's own mirror agrees with ours.
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(mirror.MustGetTable(base)->ContentsEqual(
        *stream.source().MustGetTable(base)))
        << base;
  }
}

TEST(SourceChangeStreamTest, MergedBatchesEqualSequentialApplication) {
  GeneratorOptions options = SmallScale();
  Warehouse w = MakeTpcdWarehouse(options, {"Q3"});
  SourceChangeStream stream(w, options);

  // Merge three batches into the warehouse's pending state, run one
  // window: final base tables must equal the stream's source mirror.
  for (int b = 0; b < 3; ++b) {
    for (auto& [view, delta] : stream.NextBatch(0.08, 0.03)) {
      w.MergeBaseDelta(view, delta);
    }
  }
  Executor executor(&w);
  executor.Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(w.catalog().MustGetTable(base)->ContentsEqual(
        *stream.source().MustGetTable(base)))
        << base;
  }
}

TEST(TpcdExtendedTest, ExtendedVdagShape) {
  Vdag vdag = BuildExtendedTpcdVdag();
  EXPECT_EQ(vdag.num_views(), 12u);
  EXPECT_EQ(vdag.MaxLevel(), 2);
  EXPECT_FALSE(vdag.IsUniform());  // Q10_ORDER_STATUS spans levels 0 and 1
  EXPECT_EQ(vdag.Level("Q3_BY_PRIORITY"), 2);
  EXPECT_EQ(vdag.parents("Q10").size(), 2u);
}

TEST(TpcdExtendedTest, TwoLevelMaintenanceConverges) {
  GeneratorOptions options;
  options.scale_factor = 0.002;
  options.seed = 11;
  Warehouse w = MakeExtendedTpcdWarehouse(options);
  ApplyPaperChangeWorkload(&w, 0.1, 0.05, 13);

  Warehouse truth_w = w.Clone();
  for (const std::string& name : truth_w.vdag().BaseViews()) {
    const DeltaRelation& delta = truth_w.base_delta(name);
    Table* table = truth_w.catalog().MustGetTable(name);
    delta.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
  }
  truth_w.RecomputeDerived();

  for (bool use_prune : {false, true}) {
    Warehouse clone = w.Clone();
    SizeMap sizes = clone.EstimatedSizes();
    Strategy s = use_prune ? Prune(clone.vdag(), sizes).strategy
                           : MinWork(clone.vdag(), sizes).strategy;
    Executor executor(&clone);
    executor.Execute(s);
    EXPECT_TRUE(clone.catalog().ContentsEqual(truth_w.catalog()))
        << (use_prune ? "Prune" : "MinWork");
  }
}

}  // namespace
}  // namespace tpcd
}  // namespace wuw
