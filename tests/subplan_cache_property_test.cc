// Property tests for shared-subplan memoization (satellite of the plan
// layer): executing any correct strategy with a SubplanCache attached — at
// any byte budget, including the degenerate zero budget — must reach the
// recompute ground truth bit-identically and report the same linear work
// as the cache-off run (the metric is analytic, computed at plan-build
// time, so sharing bytes never changes the accounting).
#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "plan/subplan_cache.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

using testutil::RandomVdag;

struct Scenario {
  uint64_t seed;
  size_t bases;
  size_t derived;
  double delete_fraction;
  int64_t insert_rows;
};

ExecutionReport RunOnClone(const Warehouse& w, const Strategy& s,
                           SubplanCache* cache, Catalog* final_state) {
  Warehouse clone = w.Clone();
  ExecutorOptions options;
  options.subplan_cache = cache;
  Executor executor(&clone, options);
  ExecutionReport report = executor.Execute(s);
  *final_state = std::move(clone.catalog());
  return report;
}

class SubplanCachePropertyTest : public ::testing::TestWithParam<Scenario> {};

// The core invariant sweep: cache off / budget 0 / tight budget (eviction
// churn) / unbounded all land on the ground truth with identical linear
// work.
TEST_P(SubplanCachePropertyTest, EveryBudgetConvergesWithIdenticalWork) {
  const Scenario& sc = GetParam();
  const uint64_t seed = sc.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = RandomVdag(&rng, sc.bases, sc.derived);

  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, seed * 31 + 1);
  testutil::ApplyTripleChanges(&w, sc.delete_fraction, sc.insert_rows,
                               seed * 17 + 3);
  Catalog truth = testutil::GroundTruthAfterChanges(w);

  for (const Strategy& s : {MinWork(vdag, w.EstimatedSizes()).strategy,
                            MakeDualStageVdagStrategy(vdag)}) {
    Catalog baseline_state;
    ExecutionReport baseline = RunOnClone(w, s, nullptr, &baseline_state);
    ASSERT_TRUE(baseline_state.ContentsEqual(truth)) << s.ToString();

    const int64_t budgets[] = {0, 16 << 10, -1};
    for (int64_t budget : budgets) {
      SubplanCache cache(SubplanCacheOptions{budget});
      Catalog state;
      ExecutionReport report = RunOnClone(w, s, &cache, &state);
      ASSERT_TRUE(state.ContentsEqual(truth))
          << "budget " << budget << ": " << s.ToString();
      EXPECT_EQ(report.total_linear_work, baseline.total_linear_work)
          << "budget " << budget << ": " << s.ToString();
      if (budget == 0) {
        // Zero budget admits nothing, so every lookup misses.
        EXPECT_EQ(report.subplan_cache.hits, 0);
        EXPECT_EQ(report.subplan_cache.bytes_in_use, 0);
      }
    }
  }
}

// One cache shared across two clones executing the same strategy from the
// same state: the second run replays the first's intermediate states
// exactly, so its subplans are all servable from cache — fewer rows
// scanned, same final bytes.
TEST_P(SubplanCachePropertyTest, CrossCloneSharingCutsScansNotResults) {
  const Scenario& sc = GetParam();
  const uint64_t seed = sc.seed + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = RandomVdag(&rng, sc.bases, sc.derived);

  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, seed * 31 + 1);
  testutil::ApplyTripleChanges(&w, sc.delete_fraction, sc.insert_rows,
                               seed * 17 + 3);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(vdag, w.EstimatedSizes()).strategy;

  SubplanCache cache;  // default 256MB budget, shared by both runs
  Catalog first_state, second_state;
  ExecutionReport first = RunOnClone(w, s, &cache, &first_state);
  ExecutionReport second = RunOnClone(w, s, &cache, &second_state);

  ASSERT_TRUE(first_state.ContentsEqual(truth));
  ASSERT_TRUE(second_state.ContentsEqual(truth));
  EXPECT_EQ(first.total_linear_work, second.total_linear_work);
  if (first.totals.subplan_cache_misses > 0) {
    EXPECT_GT(second.totals.subplan_cache_hits, 0);
    EXPECT_LT(second.totals.rows_scanned, first.totals.rows_scanned);
  }
}

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "seed" + std::to_string(s.seed) + "_b" + std::to_string(s.bases) +
         "d" + std::to_string(s.derived) + "_del" +
         std::to_string(static_cast<int>(s.delete_fraction * 100)) + "_ins" +
         std::to_string(s.insert_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubplanCachePropertyTest,
    ::testing::Values(Scenario{21, 2, 1, 0.2, 5}, Scenario{22, 3, 2, 0.1, 10},
                      Scenario{23, 3, 3, 0.3, 0}, Scenario{24, 4, 2, 0.0, 20},
                      Scenario{25, 2, 3, 0.5, 8}, Scenario{26, 4, 4, 0.15, 15},
                      Scenario{27, 5, 3, 0.1, 12}, Scenario{28, 3, 4, 0.25, 6}),
    ScenarioName);

// Multi-batch coherence: a persistent cache across a coherent
// SourceChangeStream (every batch drawn from the true source state) must
// never leak a stale subplan into a later batch — the batch epoch is part
// of every scan fingerprint.
TEST(SubplanCacheStreamTest, PersistentCacheAcrossCoherentBatches) {
  const uint64_t seed = testutil::PropertySeed(55);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::GeneratorOptions gen_options;
  gen_options.scale_factor = 0.002;
  gen_options.seed = seed;
  Warehouse cached = tpcd::MakeTpcdWarehouse(gen_options, {"Q3", "Q10"});
  const Vdag& vdag = cached.vdag();
  Warehouse plain = cached.Clone();

  tpcd::SourceChangeStream stream(cached, gen_options);
  SubplanCache cache;  // lives across all batches

  for (int batch = 0; batch < 6; ++batch) {
    auto deltas = stream.NextBatch(/*delete_fraction=*/0.1,
                                   /*insert_fraction=*/0.05);
    for (auto& [name, delta] : deltas) {
      cached.SetBaseDelta(name, delta);
      plain.SetBaseDelta(name, std::move(delta));
    }
    Catalog truth = testutil::GroundTruthAfterChanges(plain);

    Strategy s = (batch % 2 == 0) ? MakeDualStageVdagStrategy(vdag)
                                  : MinWork(vdag, plain.EstimatedSizes())
                                        .strategy;
    ExecutorOptions cached_options;
    cached_options.subplan_cache = &cache;
    Executor cached_exec(&cached, cached_options);
    ExecutionReport cached_report = cached_exec.Execute(s);
    Executor plain_exec(&plain);
    ExecutionReport plain_report = plain_exec.Execute(s);

    ASSERT_TRUE(cached.catalog().ContentsEqual(plain.catalog()))
        << "batch " << batch;
    ASSERT_TRUE(cached.catalog().ContentsEqual(truth)) << "batch " << batch;
    EXPECT_EQ(cached_report.total_linear_work, plain_report.total_linear_work)
        << "batch " << batch;
    // The maintained base tables must also track the stream's source
    // mirror (coherence of the stream itself).
    for (const std::string& base : vdag.BaseViews()) {
      ASSERT_TRUE(cached.catalog().MustGetTable(base)->ContentsEqual(
          *stream.source().MustGetTable(base)))
          << "batch " << batch << " base " << base;
    }
  }
}

// Regression guard for the version-bump invariant (CLAUDE.md: "bump them
// on any extent mutation or cached results go stale").  The oracle is
// eager execution on the identical state: with correct version keys a
// cache NEVER changes results (the sweep above proves it), so any
// cached-vs-eager divergence is stale serving.  Mutating an extent behind
// the warehouse's back — TestOnlyExtentNoVersionBump exists for exactly
// this test — leaves the old scan fingerprint valid, so the shared cache
// serves pre-mutation rows of A to the maintenance terms that scan A
// while the eager run re-reads the mutated extent, and the two runs
// disagree.  The same mutation followed by NoteExtentChanged re-keys the
// scan, misses, and matches eager again.  If this test starts failing on
// the "stale" half, some mutation path stopped going through
// NoteExtentChanged — that is the bug, not the test.
TEST(SubplanCacheStalenessTest, UnversionedMutationIsServedStale) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, 83);
  testutil::ApplyTripleChanges(&w, 0.3, 10, 89);
  Strategy s = MakeDualStageVdagStrategy(w.vdag());

  SubplanCache cache;  // shared across all cached runs below
  // Warm the cache from the unmutated state.
  {
    Warehouse warm = w.Clone();
    ExecutorOptions options;
    options.subplan_cache = &cache;
    Executor executor(&warm, options);
    executor.Execute(s);
  }

  // The out-of-band mutation: a fresh row in base A whose key joins into
  // the pending B/C deltas, so maintenance terms that scan A produce
  // visibly different contributions with and without it.
  Tuple smuggled({Value::Int64(1), Value::Int64(777), Value::Int64(1)});

  // What an honest (eager, uncached) run produces on the mutated state.
  Catalog eager_result = [&] {
    Warehouse eager = w.Clone();
    eager.TestOnlyExtentNoVersionBump("A")->Add(smuggled, 1);
    Executor executor(&eager);
    executor.Execute(s);
    return std::move(eager.catalog());
  }();

  // Stale half: same mutation WITHOUT the version bump, cache attached.
  // The cached scan of A still fingerprints as current, gets served, and
  // the run diverges from the eager oracle.
  {
    Warehouse stale = w.Clone();
    stale.TestOnlyExtentNoVersionBump("A")->Add(smuggled, 1);
    int64_t hits_before = cache.stats().hits;
    ExecutorOptions options;
    options.subplan_cache = &cache;
    Executor executor(&stale, options);
    executor.Execute(s);
    EXPECT_GT(cache.stats().hits, hits_before)
        << "stale entries were not even looked up — scan keys changed?";
    EXPECT_FALSE(stale.catalog().ContentsEqual(eager_result))
        << "unversioned mutation did NOT go stale — if a new mutation path "
           "bumps versions implicitly, update this test; otherwise the "
           "cache is re-reading extents it should not";
  }

  // Fixed half: same mutation, followed by NoteExtentChanged.  The scan
  // re-keys, misses, re-reads the mutated extent, and matches eager.
  {
    Warehouse fixed = w.Clone();
    fixed.TestOnlyExtentNoVersionBump("A")->Add(smuggled, 1);
    fixed.NoteExtentChanged("A");
    ExecutorOptions options;
    options.subplan_cache = &cache;
    Executor executor(&fixed, options);
    executor.Execute(s);
    EXPECT_TRUE(fixed.catalog().ContentsEqual(eager_result));
  }
}

}  // namespace
}  // namespace wuw
