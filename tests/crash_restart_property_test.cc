// Process-kill restart recovery: the crash-anywhere half of the
// durability story.  For every fault point a maintenance window actually
// reaches — executor steps, durable journal appends, paged I/O, snapshot
// saves including mid-rename — a forked victim process is killed AT that
// point with a `mode=abort` plan (_exit(2), no unwinding, no destructors),
// with a FaultEnv applying power-cut semantics to the on-disk state on the
// way down (unsynced tails torn at sector granularity, uncommitted
// renames rolled back).  A fresh process then reopens the warehouse from
// nothing but the durable directory — CURRENT pointer, checkpoint
// snapshot, incremental journal — finishes the window, and must land
// bit-identically on the recompute ground truth.
//
// Three processes per kill, all forked from a parent that does NO
// warehouse work (so no thread ever exists at fork time):
//   * the count child enumerates reachable (point, hits) pairs;
//   * the victim child checkpoints, arms the abort plan, runs the window,
//     and on survival commits a second checkpoint;
//   * the verify child reads CURRENT and either trusts the committed
//     ckpt_1 or restores ckpt_0 + replays the journal tail.
// Swept across MinWork / Prune / dual-stage-parallel strategies, subplan
// cache budgets, and the tiny-budget paged tier.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "fault/fault_injection.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/snapshot.h"
#include "plan/subplan_cache.h"
#include "storage/paged_store.h"
#include "test_util.h"

namespace wuw {
namespace {

using fault::FaultPlan;
using fault::Trigger;

constexpr int64_t kNoCache = -2;
constexpr int64_t kTightCache = 16 << 10;

/// Forked-child exit codes (gtest assertions don't cross _exit).
constexpr int kOk = 0;
constexpr int kDiverged = 1;
constexpr int kKilled = 2;  // what a firing mode=abort trigger exits with
constexpr int kSetupError = 3;

/// Keeps each sweep's fork count sane: high-count points are
/// stride-sampled down to about this many hit indices (first and last
/// always included).
constexpr int64_t kMaxKillsPerPoint = 2;

std::vector<int64_t> SampleHits(int64_t total) {
  std::vector<int64_t> hits;
  if (total <= 0) return hits;
  int64_t stride = std::max<int64_t>(1, total / kMaxKillsPerPoint);
  for (int64_t k = 1; k <= total; k += stride) hits.push_back(k);
  if (hits.back() != total) hits.push_back(total);
  return hits;
}

struct CrashConfig {
  const char* name;
  uint64_t seed;
  int strategy;  // 0 = MinWork, 1 = Prune, 2 = dual-stage
  int64_t cache_budget = kNoCache;
  bool parallel = false;
  bool paged = false;
};

/// Everything a child rebuilds from the config seed.  Construction is
/// deterministic, so every forked process agrees on the pre-window state,
/// the strategy, and the ground truth without any cross-process plumbing.
struct Fixture {
  Vdag vdag;
  Warehouse warehouse;
  Catalog truth;
  Strategy strategy;
};

Fixture MakeFixture(const CrashConfig& cfg) {
  Vdag vdag = testutil::MakeFig10Vdag();
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, 40, cfg.seed);
  testutil::ApplyTripleChanges(&w, 0.25, 8, cfg.seed + 4);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  SizeMap sizes = w.EstimatedSizes();
  Strategy s;
  switch (cfg.strategy) {
    case 0:
      s = MinWork(vdag, sizes).strategy;
      break;
    case 1:
      s = Prune(vdag, sizes).strategy;
      break;
    default:
      s = MakeDualStageVdagStrategy(vdag);
      break;
  }
  return Fixture{std::move(vdag), std::move(w), std::move(truth),
                 std::move(s)};
}

std::unique_ptr<SubplanCache> MakeCache(int64_t budget) {
  if (budget == kNoCache) return nullptr;
  return std::make_unique<SubplanCache>(SubplanCacheOptions{budget});
}

paged::PagedOptions TinyPagedOptions(const std::string& dir) {
  paged::PagedOptions options;
  options.budget_bytes = 1;  // evict everything evictable at every touch
  options.page_bytes = 512;
  options.partitions = 4;
  options.spill_bytes = 64;
  options.pool_bytes = 1024;
  options.dir = dir + "/paged";
  return options;
}

void ArmPaging(const CrashConfig& cfg, const std::string& dir, Warehouse* w) {
  if (!cfg.paged) return;
  paged::PagedOptions options = TinyPagedOptions(dir);
  io::Env::Default()->CreateDir(options.dir);
  w->EnablePaging(options);
}

/// Runs the window on `fx.warehouse` exactly as the victim does.  Returns
/// "" on success.
std::string RunWindow(const CrashConfig& cfg, const std::string& dir,
                      Fixture* fx, SubplanCache* cache) {
  std::optional<paged::ScopedOperatorSpill> spill;
  if (cfg.paged) spill.emplace(TinyPagedOptions(dir));
  if (cfg.parallel) {
    ParallelStrategy staged = ParallelizeStrategy(fx->vdag, fx->strategy);
    ParallelExecutorOptions options;
    options.workers = 3;
    options.term_workers = 2;
    options.journal = true;
    options.subplan_cache = cache;
    ParallelExecutor(&fx->warehouse, options).Execute(staged);
  } else {
    ExecutorOptions options;
    options.journal = true;
    options.subplan_cache = cache;
    Executor(&fx->warehouse, options).Execute(fx->strategy);
  }
  return "";
}

int Fail(const char* role, const std::string& why) {
  std::fprintf(stderr, "crash_restart %s: %s\n", role, why.c_str());
  return kSetupError;
}

/// Checkpoints the pre-window state and commits the CURRENT pointer —
/// the durable foundation every kill must be recoverable from.  Runs
/// unarmed and through the real env in every child.
std::string WriteBaseCheckpoint(const Fixture& fx, const std::string& dir) {
  io::Env* env = io::Env::Default();
  std::string error;
  if (!SaveWarehouse(fx.warehouse, dir + "/ckpt_0", &error)) return error;
  if (!io::AtomicWriteFile(env, dir + "/CURRENT", "ckpt_0", &error)) {
    return error;
  }
  return "";
}

/// Count child: enumerates the (point, hits) pairs the armed span of the
/// victim actually reaches, and writes them to `counts_path` as
/// "<point> <total>" lines.
int RunCount(const CrashConfig& cfg, const std::string& dir,
             const std::string& counts_path) {
  Fixture fx = MakeFixture(cfg);
  std::string error = WriteBaseCheckpoint(fx, dir);
  if (!error.empty()) return Fail("count", error);
  error = fx.warehouse.journal().AttachDurable(nullptr, dir + "/journal.wuw");
  if (!error.empty()) return Fail("count", error);
  ArmPaging(cfg, dir, &fx.warehouse);
  auto cache = MakeCache(cfg.cache_budget);

  FaultPlan count;
  count.count_only = true;
  fault::Arm(count);
  error = RunWindow(cfg, dir, &fx, cache.get());
  if (!error.empty()) return Fail("count", error);
  if (!SaveWarehouse(fx.warehouse, dir + "/ckpt_1", &error)) {
    return Fail("count", error);
  }
  if (!io::AtomicWriteFile(io::GetEnv(), dir + "/CURRENT", "ckpt_1",
                           &error)) {
    return Fail("count", error);
  }
  // Capture BEFORE the convergence check: with paging armed, ContentsEqual
  // faults hibernated extents back in, and those hits are not part of the
  // span the victim arms.
  std::vector<std::pair<std::string, int64_t>> counts = fault::HitCounts();
  fault::Disarm();
  if (!fx.warehouse.catalog().ContentsEqual(fx.truth)) {
    return Fail("count", "count pass diverged from ground truth");
  }
  std::ostringstream out;
  for (const auto& [point, total] : counts) {
    out << point << " " << total << "\n";
  }
  if (!io::AtomicWriteFile(io::Env::Default(), counts_path, out.str(),
                           &error)) {
    return Fail("count", error);
  }
  return kOk;
}

/// Victim child: checkpoints, installs the FaultEnv, arms the abort plan,
/// runs the window.  Killed at the trigger → _exit(kKilled) with power-cut
/// disk state; survival commits ckpt_1 + CURRENT (still armed — a kill
/// during the checkpoint save or the CURRENT rename is part of the sweep).
int RunVictim(const CrashConfig& cfg, const std::string& dir,
              const std::string& point, int64_t hit) {
  Fixture fx = MakeFixture(cfg);
  std::string error = WriteBaseCheckpoint(fx, dir);
  if (!error.empty()) return Fail("victim", error);

  // Leaked: the abort hook must stay valid until _exit.
  io::IoFaultOptions fault_options;  // pure crash simulation, no injection
  auto* fenv = new io::FaultEnv(fault_options, io::Env::Default());
  io::SetEnv(fenv);

  error = fx.warehouse.journal().AttachDurable(nullptr, dir + "/journal.wuw");
  if (!error.empty()) return Fail("victim", error);
  ArmPaging(cfg, dir, &fx.warehouse);
  auto cache = MakeCache(cfg.cache_budget);

  FaultPlan plan;
  plan.triggers.push_back(Trigger{point, hit, 1.0});
  plan.abort_mode = true;
  fault::Arm(plan);
  error = RunWindow(cfg, dir, &fx, cache.get());
  if (!error.empty()) return Fail("victim", error);
  if (!SaveWarehouse(fx.warehouse, dir + "/ckpt_1", &error)) {
    return Fail("victim", error);
  }
  if (!io::AtomicWriteFile(io::GetEnv(), dir + "/CURRENT", "ckpt_1",
                           &error)) {
    return Fail("victim", error);
  }
  fault::Disarm();
  return kOk;
}

/// Verify child: a fresh process with nothing but the durable directory.
/// CURRENT names the newest committed checkpoint; ckpt_1 is post-window
/// (direct check), ckpt_0 is pre-window (journal replay, or a fresh run
/// when the kill predates any usable journal).
int RunVerify(const CrashConfig& cfg, const std::string& dir) {
  Fixture fx = MakeFixture(cfg);
  io::Env* env = io::Env::Default();
  std::string current;
  std::string error = env->ReadFileToString(dir + "/CURRENT", &current);
  if (!error.empty()) return Fail("verify", "CURRENT unreadable: " + error);
  if (current != "ckpt_0" && current != "ckpt_1") {
    return Fail("verify", "CURRENT names neither checkpoint: " + current);
  }
  Warehouse restored(Vdag{});
  if (!LoadWarehouse(dir + "/" + current, &restored, &error)) {
    return Fail("verify", current + " unloadable: " + error);
  }
  if (current == "ckpt_1") {
    // The post-window checkpoint committed before the kill (or the victim
    // survived): it must already be the ground truth.
    return restored.catalog().ContentsEqual(fx.truth) ? kOk : kDiverged;
  }
  // Pre-window restore: replay whatever prefix of the journal survived,
  // execute the missing steps.  LoadJournal's torn-tail rule absorbs a cut
  // mid-append; a kill before the fsynced header committed (or before
  // Begin ever ran) leaves no usable journal and the window re-runs whole.
  bool replayed = false;
  if (env->FileExists(dir + "/journal.wuw")) {
    StrategyJournal journal;
    if (LoadJournal(dir + "/journal.wuw", &journal, &error) &&
        journal.begun()) {
      ResumeReport report = ResumeStrategy(journal, &restored);
      if (report.window_result != WindowResult::kCompleted) {
        return Fail("verify", "resume did not complete");
      }
      replayed = true;
    }
  }
  if (!replayed) {
    ExecutorOptions options;
    Executor(&restored, options).Execute(fx.strategy);
  }
  return restored.catalog().ContentsEqual(fx.truth) ? kOk : kDiverged;
}

/// Forks `child` and returns its exit code (-1 on abnormal death).  The
/// parent NEVER runs warehouse code, so no thread exists at fork time and
/// the children are free to spin up executor/kernel pools.
int InChild(const std::function<int()>& child) {
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) _exit(child());
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "wuw_crash_" +
                    std::to_string(::getpid()) + "_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::pair<std::string, int64_t>> LoadCounts(
    const std::string& path) {
  std::vector<std::pair<std::string, int64_t>> counts;
  std::string contents;
  if (!io::Env::Default()->ReadFileToString(path, &contents).empty()) {
    return counts;
  }
  std::istringstream in(contents);
  std::string point;
  int64_t total = 0;
  while (in >> point >> total) counts.emplace_back(point, total);
  return counts;
}

void RunCrashSweep(const CrashConfig& cfg) {
  SCOPED_TRACE(cfg.name);
  const uint64_t seed = testutil::PropertySeed(cfg.seed);
  CrashConfig seeded = cfg;
  seeded.seed = seed;
  SCOPED_TRACE(testutil::SeedTrace(seed));

  const std::string count_dir = FreshDir(std::string(cfg.name) + "_count");
  const std::string counts_path = count_dir + "/counts.txt";
  ASSERT_EQ(InChild([&] { return RunCount(seeded, count_dir, counts_path); }),
            kOk);
  std::vector<std::pair<std::string, int64_t>> counts =
      LoadCounts(counts_path);
  ASSERT_FALSE(counts.empty()) << "no fault points reached?";
  std::filesystem::remove_all(count_dir);

  int kill_index = 0;
  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      const std::string dir =
          FreshDir(std::string(cfg.name) + "_" + std::to_string(kill_index++));
      int victim = InChild(
          [&, p = point] { return RunVictim(seeded, dir, p, k); });
      if (seeded.parallel) {
        // Worker scheduling can shift per-point hit totals between runs: a
        // non-firing trigger means the victim completed and committed.
        ASSERT_TRUE(victim == kKilled || victim == kOk)
            << "victim exit " << victim;
      } else {
        // Sequential execution is deterministic: the count pass proved hit
        // k exists inside the armed span, so the abort must fire.
        ASSERT_EQ(victim, kKilled);
      }
      ASSERT_EQ(InChild([&] { return RunVerify(seeded, dir); }), kOk);
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(CrashRestartPropertyTest, MinWorkSequentialKillRestartConverges) {
  RunCrashSweep(CrashConfig{"minwork_seq", 211, /*strategy=*/0});
}

TEST(CrashRestartPropertyTest, PruneTightCacheKillRestartConverges) {
  RunCrashSweep(
      CrashConfig{"prune_cache", 223, /*strategy=*/1, kTightCache});
}

TEST(CrashRestartPropertyTest, DualStageParallelKillRestartConverges) {
  RunCrashSweep(CrashConfig{"dual_parallel", 227, /*strategy=*/2, kNoCache,
                            /*parallel=*/true});
}

TEST(CrashRestartPropertyTest, PagedTierKillRestartConverges) {
  RunCrashSweep(CrashConfig{"minwork_paged", 229, /*strategy=*/0, kNoCache,
                            /*parallel=*/false, /*paged=*/true});
}

}  // namespace
}  // namespace wuw
