#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

TEST(WarehouseTest, RecomputePopulatesDerivedViews) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 1);
  EXPECT_GT(w.catalog().MustGetTable("V4")->cardinality(), 0);
  EXPECT_GT(w.catalog().MustGetTable("V5")->cardinality(), 0);
  EXPECT_GT(w.join_rows("V5"), 0);
}

TEST(WarehouseTest, CloneIsIndependent) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, 2);
  Warehouse clone = w.Clone();
  clone.base_table("A")->Add(
      Tuple({Value::Int64(-1), Value::Int64(0), Value::Int64(0)}), 1);
  EXPECT_NE(w.catalog().MustGetTable("A")->cardinality(),
            clone.catalog().MustGetTable("A")->cardinality());
}

TEST(ExecutorTest, DualStageReachesGroundTruth) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 3);
  ApplyTripleChanges(&w, 0.2, 10, 99);
  Catalog truth = GroundTruthAfterChanges(w);

  Executor executor(&w);
  ExecutionReport report = executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
  EXPECT_GT(report.total_linear_work, 0);
  EXPECT_EQ(report.per_expression.size(), 7u);  // 2 comps + 5 insts
}

TEST(ExecutorTest, MinWorkReachesGroundTruth) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 4);
  ApplyTripleChanges(&w, 0.15, 8, 7);
  Catalog truth = GroundTruthAfterChanges(w);

  MinWorkResult mw = MinWork(w.vdag(), w.EstimatedSizes());
  Executor executor(&w);
  executor.Execute(mw.strategy);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

TEST(ExecutorTest, EmptyBatchIsNoop) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 30, 5);
  Catalog before = w.catalog().Clone();
  Executor executor(&w);
  executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  EXPECT_TRUE(w.catalog().ContentsEqual(before));
}

TEST(ExecutorTest, ValidatesStrategiesByDefault) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 30, 6);
  Strategy bogus({Expression::Inst("V5")});
  Executor executor(&w);
  EXPECT_DEATH(executor.Execute(bogus), "incorrect strategy");
}

TEST(ExecutorTest, ReportContainsPerExpressionWork) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 7);
  ApplyTripleChanges(&w, 0.1, 0, 11);
  Executor executor(&w);
  ExecutionReport report =
      executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  int64_t sum = 0;
  for (const ExpressionReport& er : report.per_expression) {
    EXPECT_GE(er.linear_work, 0);
    sum += er.linear_work;
  }
  EXPECT_EQ(sum, report.total_linear_work);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ExecutorTest, MeasuredCompWorkMatchesLinearMetricPrediction) {
  // With exact (oracle) sizes, the executor's measured linear_work per
  // expression must equal EstimateStrategyWork's prediction.
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 80, 8);
  ApplyTripleChanges(&w, 0.1, 5, 13);
  SizeMap oracle = w.OracleSizes();
  Strategy strategy = MinWork(w.vdag(), oracle).strategy;
  WorkBreakdown predicted =
      EstimateStrategyWork(w.vdag(), strategy, oracle, {});

  Executor executor(&w);
  ExecutionReport report = executor.Execute(strategy);
  ASSERT_EQ(report.per_expression.size(), predicted.per_expression.size());
  for (size_t i = 0; i < report.per_expression.size(); ++i) {
    EXPECT_DOUBLE_EQ(static_cast<double>(report.per_expression[i].linear_work),
                     predicted.per_expression[i].work)
        << report.per_expression[i].expression.ToString();
  }
}

TEST(ExecutorTest, ConsecutiveBatches) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 9);
  for (uint64_t round = 0; round < 3; ++round) {
    ApplyTripleChanges(&w, 0.1, 6, 100 + round);
    Catalog truth = GroundTruthAfterChanges(w);
    MinWorkResult mw = MinWork(w.vdag(), w.EstimatedSizes());
    Executor executor(&w);
    executor.Execute(mw.strategy);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "round " << round;
  }
}

TEST(ExecutorTest, OracleSizesMatchActualDeltas) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 10);
  ApplyTripleChanges(&w, 0.2, 10, 55);
  SizeMap oracle = w.OracleSizes();

  // Execute for real and compare final sizes.
  std::unordered_map<std::string, int64_t> before;
  for (const std::string& name : w.vdag().view_names()) {
    before[name] = w.catalog().MustGetTable(name)->cardinality();
  }
  Executor executor(&w);
  executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  for (const std::string& name : w.vdag().view_names()) {
    int64_t actual_net =
        w.catalog().MustGetTable(name)->cardinality() - before[name];
    EXPECT_EQ(oracle.Get(name).delta_net, actual_net) << name;
  }
}

}  // namespace
}  // namespace wuw
