// The WUW_MEM_MB differential battery: a paged run — extents hibernating
// and faulting under a byte budget, join/aggregation builds taking their
// grace-partition spill paths — must be BIT-IDENTICAL to the resident
// engine.  Random and fixed VDAGs × {MinWork, Prune, dual-stage} ×
// thread pools {1, 2, 8} × budgets {tiny, medium, unset}:
//
//   * every run drives the warehouse to the recompute ground truth
//     (exact ContentsEqual — the C1-C8 invariant);
//   * OperatorStats equal the resident reference's, counter for counter
//     (rows scanned/produced, hash probes, ...: paging moves bytes, never
//     rows);
//   * the kWork metric snapshot equals the resident reference's
//     (`paged.*` and the kernels' value-op counters are kEngine — engine-
//     dependent by design, like WUW_COLUMNAR);
//   * `paged.faults` / `paged.evictions` at a fixed budget are identical
//     across every pool size and subplan-cache setting (eviction happens
//     only at coordinator touch points — the threading-model discipline).
//
// The TPC-D case is the acceptance gate: at the tiny budget the exp4
// VDAG workload (Q3/Q5/Q10, paper delete fraction) must actually page
// (`paged.evictions > 0`) AND spill (`paged.spilled_partitions > 0`)
// while staying bit-identical.  Honors WUW_SEED (failures print the
// repro line).  Labeled property.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "obs/metrics.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "storage/page.h"
#include "storage/paged_store.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

const int kPoolSizes[] = {1, 2, 8};

/// Budget sweep: unset (resident reference), a tiny budget that evicts
/// everything evictable at every touch and spills every real build side,
/// and a medium budget that pages part of the working set.
enum class Paged { kNone, kTiny, kMedium };
const Paged kPagedSettings[] = {Paged::kNone, Paged::kTiny, Paged::kMedium};

std::string PagedName(Paged p) {
  switch (p) {
    case Paged::kNone:
      return "resident";
    case Paged::kTiny:
      return "tiny";
    case Paged::kMedium:
      return "medium";
  }
  return "?";
}

paged::PagedOptions MakePagedOptions(Paged p) {
  paged::PagedOptions options;
  options.page_bytes = 512;  // small pages: images + spills span frames
  options.partitions = 4;
  switch (p) {
    case Paged::kNone:
      break;
    case Paged::kTiny:
      options.budget_bytes = 1;   // hibernate everything evictable
      options.spill_bytes = 64;   // every non-trivial build spills
      options.pool_bytes = 2 * 512;  // two-frame pools: churn hard
      break;
    case Paged::kMedium:
      options.budget_bytes = 4 << 10;  // partial working set resident
      options.spill_bytes = 1 << 10;
      break;
  }
  return options;
}

enum class Flavor { kMinWorkSeq, kPruneSeq, kDualStageStaged };
const Flavor kFlavors[] = {Flavor::kMinWorkSeq, Flavor::kPruneSeq,
                           Flavor::kDualStageStaged};

std::string FlavorName(Flavor f) {
  switch (f) {
    case Flavor::kMinWorkSeq:
      return "minwork-seq";
    case Flavor::kPruneSeq:
      return "prune-seq";
    case Flavor::kDualStageStaged:
      return "dualstage-staged";
  }
  return "?";
}

struct Scenario {
  std::string name;
  Warehouse warehouse;
  Catalog truth;
};

Scenario MakeScenario(std::string name, Vdag vdag, int64_t base_rows,
                      double delete_fraction, int64_t insert_rows,
                      uint64_t seed) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(std::move(vdag), base_rows, seed);
  testutil::ApplyTripleChanges(&w, delete_fraction, insert_rows, seed + 9);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  return Scenario{std::move(name), std::move(w), std::move(truth)};
}

std::vector<Scenario> MakeScenarios(uint64_t seed) {
  std::vector<Scenario> out;
  out.push_back(MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1));
  out.push_back(MakeScenario("fig10", testutil::MakeFig10Vdag(), 50, 0.25,
                             10, seed + 2));
  tpcd::Rng rng(seed + 3);
  out.push_back(MakeScenario("random", testutil::RandomVdag(&rng, 3, 2), 40,
                             0.25, 6, seed + 4));
  return out;
}

Strategy MakeStrategy(const Scenario& sc, Flavor f) {
  switch (f) {
    case Flavor::kMinWorkSeq:
      return MinWork(sc.warehouse.vdag(), sc.warehouse.EstimatedSizes())
          .strategy;
    case Flavor::kPruneSeq:
      return Prune(sc.warehouse.vdag(), sc.warehouse.EstimatedSizes())
          .strategy;
    case Flavor::kDualStageStaged:
      return MakeDualStageVdagStrategy(sc.warehouse.vdag());
  }
  return Strategy();
}

/// Everything one run yields that the differential compares.
struct RunResult {
  OperatorStats totals;
  obs::MetricsSnapshot work;  // kWork snapshot — the cross-engine class
  paged::PagedStatsSnapshot paged;  // global paged-counter deltas
  bool converged = false;
};

RunResult RunOne(const Scenario& sc, Flavor flavor, const Strategy& strategy,
                 int pool_size, Paged paged_setting,
                 SubplanCache* cache = nullptr) {
  Warehouse clone = sc.warehouse.Clone();
  paged::PagedOptions options = MakePagedOptions(paged_setting);
  std::unique_ptr<paged::ScopedOperatorSpill> spill;
  if (paged_setting != Paged::kNone) {
    clone.EnablePaging(options);
    spill = std::make_unique<paged::ScopedOperatorSpill>(options);
  }
  ThreadPool pool(static_cast<size_t>(pool_size));
  obs::ArmMetrics();
  obs::ResetMetrics();
  const paged::PagedStatsSnapshot before = paged::GlobalPagedStats();

  RunResult out;
  if (flavor == Flavor::kDualStageStaged) {
    ParallelStrategy staged =
        ParallelizeStrategy(clone.vdag(), strategy);
    ParallelExecutorOptions options2;
    options2.workers = pool_size;
    options2.pool = &pool;
    options2.subplan_cache = cache;
    out.totals = ParallelExecutor(&clone, options2).Execute(staged).totals;
  } else {
    ExecutorOptions options2;
    options2.pool = &pool;
    options2.subplan_cache = cache;
    out.totals = Executor(&clone, options2).Execute(strategy).totals;
  }

  out.work = obs::SnapshotMetrics(obs::Mask(obs::MetricClass::kWork));
  const paged::PagedStatsSnapshot after = paged::GlobalPagedStats();
  out.paged.faults = after.faults - before.faults;
  out.paged.evictions = after.evictions - before.evictions;
  out.paged.spilled_partitions =
      after.spilled_partitions - before.spilled_partitions;
  out.converged = clone.catalog().ContentsEqual(sc.truth);
  return out;
}

std::string DiffWork(const obs::MetricsSnapshot& a,
                     const obs::MetricsSnapshot& b) {
  std::string diff;
  for (const auto& [name, value] : a.counters) {
    diff += name + "=" + std::to_string(value) + " ";
  }
  diff += "| ";
  for (const auto& [name, value] : b.counters) {
    diff += name + "=" + std::to_string(value) + " ";
  }
  return diff;
}

// The battery: for every scenario × strategy flavor, a resident pool=1
// reference, then every (budget, pool) combination must converge and
// reproduce the reference's OperatorStats and kWork snapshot exactly —
// and at each fixed budget the paged counters must agree across pools.
TEST(PagedDifferentialProperty, PagedRunsAreBitIdenticalToResident) {
  const uint64_t seed = testutil::PropertySeed(223);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  for (Scenario& sc : MakeScenarios(seed)) {
    SCOPED_TRACE("scenario " + sc.name);
    for (Flavor flavor : kFlavors) {
      SCOPED_TRACE("flavor " + FlavorName(flavor));
      const Strategy strategy = MakeStrategy(sc, flavor);
      const RunResult reference =
          RunOne(sc, flavor, strategy, /*pool_size=*/1, Paged::kNone);
      ASSERT_TRUE(reference.converged);
      if (paged::EnvPaged() == nullptr) {
        // WUW_MEM_MB arms every warehouse in the process — this "resident"
        // reference included — so the zero-counter sanity check only holds
        // when the env knob is unset (the differential assertions below
        // hold either way: all runs are armed identically on top).
        EXPECT_EQ(reference.paged.faults, 0);
        EXPECT_EQ(reference.paged.evictions, 0);
        EXPECT_EQ(reference.paged.spilled_partitions, 0);
      }

      for (Paged paged_setting : kPagedSettings) {
        SCOPED_TRACE("budget " + PagedName(paged_setting));
        bool have_baseline = false;
        paged::PagedStatsSnapshot baseline;
        for (int pool_size : kPoolSizes) {
          SCOPED_TRACE("pool " + std::to_string(pool_size));
          RunResult r =
              RunOne(sc, flavor, strategy, pool_size, paged_setting);
          EXPECT_TRUE(r.converged) << "diverged from ground truth";
          EXPECT_EQ(r.totals, reference.totals)
              << "OperatorStats drifted from the resident run";
          EXPECT_TRUE(r.work == reference.work)
              << "kWork drifted: " << DiffWork(r.work, reference.work);
          if (!have_baseline) {
            baseline = r.paged;
            have_baseline = true;
          } else {
            // Fixed budget => fixed paging decisions, at every pool size.
            EXPECT_EQ(r.paged.faults, baseline.faults);
            EXPECT_EQ(r.paged.evictions, baseline.evictions);
            EXPECT_EQ(r.paged.spilled_partitions,
                      baseline.spilled_partitions);
          }
        }
      }
    }
  }
}

// Subplan-cache settings must not perturb extent paging: faults and
// evictions are executor-touch-point decisions, blind to whether a term's
// subplans hit a cache.  (`paged.spilled_partitions` IS cache-dependent —
// a cache hit skips the join that would have spilled — so it is exempt.)
TEST(PagedDifferentialProperty, PagingIsInvariantAcrossCacheSettings) {
  const uint64_t seed = testutil::PropertySeed(227);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  for (Scenario& sc : MakeScenarios(seed)) {
    SCOPED_TRACE("scenario " + sc.name);
    const Strategy strategy = MakeStrategy(sc, Flavor::kMinWorkSeq);
    const RunResult no_cache = RunOne(sc, Flavor::kMinWorkSeq, strategy,
                                      /*pool_size=*/1, Paged::kTiny);
    ASSERT_TRUE(no_cache.converged);
    for (int64_t cache_budget : {int64_t{0}, int64_t{64} << 20}) {
      SCOPED_TRACE("cache budget " + std::to_string(cache_budget));
      SubplanCache cache(SubplanCacheOptions{cache_budget});
      RunResult r = RunOne(sc, Flavor::kMinWorkSeq, strategy,
                           /*pool_size=*/1, Paged::kTiny, &cache);
      EXPECT_TRUE(r.converged);
      EXPECT_EQ(r.paged.faults, no_cache.paged.faults);
      EXPECT_EQ(r.paged.evictions, no_cache.paged.evictions);
    }
  }
}

// Acceptance gate: the exp4 VDAG workload (TPC-D Q3/Q5/Q10, the paper's
// delete workload) at the tiny budget really exercises both mechanisms —
// extents hibernate AND at least one build side grace-spills — while the
// result stays bit-identical to the resident engine.
TEST(PagedDifferentialProperty, TpcdExp4WorkloadPagesAndSpills) {
  const uint64_t seed = testutil::PropertySeed(229);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  tpcd::GeneratorOptions gen;
  gen.scale_factor = 0.01;
  gen.seed = seed;
  Warehouse w = tpcd::MakeTpcdWarehouse(gen, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&w, 0.10, 0.0, seed + 1);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Scenario sc{"tpcd-exp4", std::move(w), std::move(truth)};
  const Strategy strategy = MakeStrategy(sc, Flavor::kMinWorkSeq);

  const RunResult reference = RunOne(sc, Flavor::kMinWorkSeq, strategy,
                                     /*pool_size=*/1, Paged::kNone);
  ASSERT_TRUE(reference.converged);

  for (int pool_size : kPoolSizes) {
    SCOPED_TRACE("pool " + std::to_string(pool_size));
    RunResult r = RunOne(sc, Flavor::kMinWorkSeq, strategy, pool_size,
                         Paged::kTiny);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.totals, reference.totals);
    EXPECT_TRUE(r.work == reference.work)
        << DiffWork(r.work, reference.work);
    EXPECT_GT(r.paged.evictions, 0) << "tiny budget never paged an extent";
    EXPECT_GT(r.paged.spilled_partitions, 0)
        << "tiny budget never grace-spilled a build side";
  }
}

}  // namespace
}  // namespace wuw
