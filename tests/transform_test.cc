#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/strategy_space.h"
#include "core/transform.h"
#include "core/work_metric.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

SizeMap RandomSizes(const Vdag& vdag, uint64_t seed) {
  tpcd::Rng rng(seed);
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    int64_t size = rng.Range(50, 500);
    int64_t minus = rng.Range(0, size / 3);
    int64_t plus = rng.Range(0, size / 3);
    sizes.Set(name, {size, plus + minus, plus - minus});
  }
  return sizes;
}

TEST(SeparatorTest, SplitsDualStageStep) {
  Strategy dual = MakeDualStageViewStrategy("V", {"A", "B", "C"});
  Strategy out;
  ASSERT_TRUE(ApplySeparator(dual, 0, &out));
  // < Comp(V,{A}); Inst(A); Comp(V,{B,C}); Inst(B); Inst(C); Inst(V) >
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], Expression::Comp("V", {"A"}));
  EXPECT_EQ(out[1], Expression::Inst("A"));
  EXPECT_EQ(out[2], Expression::Comp("V", {"B", "C"}));
  EXPECT_EQ(out[5], Expression::Inst("V"));
  // No duplicate Inst(A).
  int inst_a = 0;
  for (const Expression& e : out.expressions()) {
    if (e == Expression::Inst("A")) ++inst_a;
  }
  EXPECT_EQ(inst_a, 1);
}

TEST(SeparatorTest, NoopOnOneWayStrategy) {
  Strategy one_way = MakeOneWayViewStrategy("V", {"A", "B"});
  Strategy out;
  EXPECT_FALSE(ApplySeparator(one_way, 0, &out));
  EXPECT_EQ(SeparateToOneWay(one_way), one_way);
}

TEST(SeparatorTest, PreservesCorrectness) {
  std::vector<std::string> sources = {"A", "B", "C", "D"};
  for (const Strategy& s : AllViewStrategies("V", sources)) {
    Strategy current = s;
    Strategy next;
    while (ApplySeparator(current, 0, &next)) {
      EXPECT_TRUE(CheckViewStrategy("V", sources, next).ok)
          << "from " << current.ToString() << "\nto   " << next.ToString();
      current = next;
    }
    // Fully separated: every Comp is a singleton.
    for (const Expression& e : current.expressions()) {
      if (e.is_comp()) {
        EXPECT_EQ(e.over.size(), 1u);
      }
    }
  }
}

// The mechanical heart of Theorem 4.1: each separator application never
// increases linear-metric work.
TEST(SeparatorTest, NeverIncreasesWorkTheorem41) {
  Vdag vdag = testutil::MakeStarVdag("V", 4);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    for (const Strategy& s : AllViewStrategies("V", vdag.sources("V"))) {
      Strategy current = s;
      Strategy next;
      double current_work =
          EstimateStrategyWork(vdag, current, sizes, {}).total;
      while (ApplySeparator(current, 0, &next)) {
        double next_work =
            EstimateStrategyWork(vdag, next, sizes, {}).total;
        EXPECT_LE(next_work, current_work + 1e-9)
            << "seed " << seed << "\nfrom " << current.ToString() << " ("
            << current_work << ")\nto   " << next.ToString() << " ("
            << next_work << ")";
        current = next;
        current_work = next_work;
      }
    }
  }
}

TEST(SeparatorTest, FullSeparationReachesOneWayCost) {
  // SeparateToOneWay(dual-stage) costs no more than dual-stage and no less
  // than the optimal 1-way (sanity bracketing).
  Vdag vdag = testutil::MakeStarVdag("V", 5);
  SizeMap sizes = RandomSizes(vdag, 42);
  Strategy dual = MakeDualStageViewStrategy("V", vdag.sources("V"));
  Strategy separated = SeparateToOneWay(dual);
  EXPECT_TRUE(CheckViewStrategy("V", vdag.sources("V"), separated).ok);
  double dual_work = EstimateStrategyWork(vdag, dual, sizes, {}).total;
  double sep_work = EstimateStrategyWork(vdag, separated, sizes, {}).total;
  EXPECT_LE(sep_work, dual_work + 1e-9);
}

TEST(SeparatorDeathTest, RejectsStrategyWithoutInst) {
  Strategy bogus({Expression::Comp("V", {"A", "B"})});
  Strategy out;
  EXPECT_DEATH(ApplySeparator(bogus, 0, &out), "separator");
}

}  // namespace
}  // namespace wuw
