#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "sqlgen/sql_script.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

TEST(SqlGenTest, ProcedureNames) {
  EXPECT_EQ(ProcedureName(Expression::Inst("ORDERS")), "wuw_inst_ORDERS");
  EXPECT_EQ(ProcedureName(Expression::Comp("Q3", {"LINEITEM"})),
            "wuw_comp_Q3__LINEITEM");
  EXPECT_EQ(ProcedureName(Expression::Comp("Q3", {"ORDERS", "CUSTOMER"})),
            "wuw_comp_Q3__CUSTOMER_ORDERS");
}

TEST(SqlGenTest, CompProcedureHasOneInsertPerTerm) {
  Vdag vdag = tpcd::BuildTpcdVdag({"Q3"});
  std::string one_way =
      GenerateProcedure(vdag, Expression::Comp("Q3", {"LINEITEM"}));
  std::string dual = GenerateProcedure(
      vdag, Expression::Comp("Q3", {"CUSTOMER", "ORDERS", "LINEITEM"}));
  auto count = [](const std::string& s, const std::string& needle) {
    size_t n = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count(one_way, "INSERT INTO delta_Q3"), 1u);
  EXPECT_EQ(count(dual, "INSERT INTO delta_Q3"), 7u);  // 2^3 - 1 terms
  // Delta operands aliased from the delta tables.
  EXPECT_NE(one_way.find("delta_LINEITEM AS LINEITEM"), std::string::npos);
  EXPECT_NE(one_way.find("c_mktsegment = 'BUILDING'"), std::string::npos);
}

TEST(SqlGenTest, InstProcedureMergesAndTruncates) {
  Vdag vdag = tpcd::BuildTpcdVdag({"Q3"});
  std::string inst = GenerateProcedure(vdag, Expression::Inst("ORDERS"));
  EXPECT_NE(inst.find("DELETE FROM ORDERS"), std::string::npos);
  EXPECT_NE(inst.find("INSERT INTO ORDERS"), std::string::npos);
  EXPECT_NE(inst.find("TRUNCATE TABLE delta_ORDERS"), std::string::npos);
}

TEST(SqlGenTest, SetupScriptCoversAllOneWayExpressions) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  std::string setup = GenerateSetupScript(vdag);
  // One Comp procedure per VDAG edge (3 + 6 + 4) and one Inst per view (9).
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    for (const std::string& src : vdag.sources(view)) {
      EXPECT_NE(
          setup.find(ProcedureName(Expression::Comp(view, {src}))),
          std::string::npos)
          << view << "/" << src;
    }
  }
  for (const std::string& view : vdag.view_names()) {
    EXPECT_NE(setup.find(ProcedureName(Expression::Inst(view))),
              std::string::npos);
    EXPECT_NE(setup.find("CREATE TABLE delta_" + view), std::string::npos);
  }
  // Dual-stage comps are installed too, so conventional drivers work.
  for (const std::string& view : vdag.DerivedViewsBottomUp()) {
    EXPECT_NE(setup.find(ProcedureName(
                  Expression::Comp(view, vdag.sources(view)))),
              std::string::npos)
        << view;
  }
}

TEST(SqlGenTest, DriverScriptFollowsStrategyOrder) {
  Vdag vdag = tpcd::BuildTpcdVdag({"Q3"});
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    sizes.Set(name, {100, 10, -10});
  }
  Strategy s = MinWork(vdag, sizes).strategy;
  std::string driver = GenerateDriverScript(vdag, s);
  size_t pos = 0;
  for (const Expression& e : s.expressions()) {
    size_t found = driver.find("EXEC " + ProcedureName(e), pos);
    ASSERT_NE(found, std::string::npos) << e.ToString();
    pos = found;
  }
}

}  // namespace
}  // namespace wuw
