// The zero-downtime-read invariant, exhaustively: on an ARMED warehouse,
// a reader opening a snapshot at ANY point of an update window — before
// it, at every budget-pause boundary, after any injected kill, after
// resume — sees exactly one committed state: the pre-window snapshot until
// the strategy completes, the fully-updated state after.  Never a blend.
//
// Three sweeps, mirroring the window-budget and fault-recovery property
// suites:
//
//   1. Pause sweep: for every step boundary k of the sequential executor
//      (every pool size x cache budget), a budget pausing after exactly k
//      steps; the mid-window snapshot must equal the pre-window catalog
//      bit-for-bit and carry the pre-window commit_seq; after resume the
//      snapshot equals the recompute ground truth.  {MinWork, Prune,
//      dual-stage} all sweep their boundaries.
//   2. Kill sweep: every fault point x (sampled) hit index under the
//      sequential executor; the torn warehouse's published snapshot must
//      still serve the pre-window state, and a handle pinned BEFORE the
//      kill must fingerprint identically across it; restore + resume
//      converges and commits.
//   3. Stage-parallel kill sweep: same property under worker scheduling.
//
// Honors WUW_SEED (failures print the repro line).  Labeled fault;property.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "fault/fault_injection.h"
#include "parallel/parallel_strategy.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"

namespace wuw {
namespace {

using fault::FaultInjectedError;
using fault::FaultPlan;
using fault::HitCounts;
using fault::ScopedFaultPlan;
using fault::Trigger;

constexpr int64_t kNoCache = -2;
constexpr int64_t kTightCache = 16 << 10;
const int kPoolSizes[] = {1, 2, 8};

/// Caps the per-point kill sweep (the fault-recovery suite uses 5; the
/// snapshot sweep adds a full-catalog comparison per kill, so 3 keeps the
/// suite inside its timeout on small hosts).
constexpr int64_t kMaxKillsPerPoint = 3;

std::vector<int64_t> SampleHits(int64_t total) {
  std::vector<int64_t> hits;
  if (total <= 0) return hits;
  int64_t stride = std::max<int64_t>(1, total / kMaxKillsPerPoint);
  for (int64_t k = 1; k <= total; k += stride) hits.push_back(k);
  if (hits.back() != total) hits.push_back(total);
  return hits;
}

std::unique_ptr<SubplanCache> MakeCache(int64_t budget) {
  if (budget == kNoCache) return nullptr;
  return std::make_unique<SubplanCache>(SubplanCacheOptions{budget});
}

/// An ARMED warehouse with pending changes, plus the two catalogs every
/// snapshot assertion compares against: the pre-window state (what every
/// reader must see until the window commits) and the recompute ground
/// truth (what every reader must see after).
struct Workbench {
  Vdag vdag;
  Warehouse warehouse;
  Catalog pre;
  Catalog truth;
};

Workbench MakeWorkbench(Vdag vdag, int64_t base_rows, uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(vdag, base_rows, seed);
  testutil::ApplyTripleChanges(&w, 0.2, 8, seed + 9);
  w.EnableSnapshotReads();
  Catalog pre = w.catalog().Clone();
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  return Workbench{w.vdag(), std::move(w), std::move(pre),
                   std::move(truth)};
}

/// Asserts `snapshot` is exactly one committed state: the pre-window
/// catalog (commit_seq == pre_seq) or the ground truth — never a blend.
void AssertCommittedState(const ReadSnapshot& snapshot, const Workbench& wb,
                          int64_t pre_seq) {
  if (snapshot.commit_seq() == pre_seq) {
    ASSERT_TRUE(snapshot.ContentsEqual(wb.pre))
        << "snapshot at the pre-window commit is not the pre-window state";
  } else {
    ASSERT_GT(snapshot.commit_seq(), pre_seq);
    ASSERT_TRUE(snapshot.ContentsEqual(wb.truth))
        << "post-window snapshot is not the ground truth";
  }
}

/// Sweep 1: pause at every sequential step boundary; the reader must hold
/// the pre-window state across the pause and pick up the ground truth
/// only after the resume completes.
void SweepPauseBoundaries(const Workbench& wb, const Strategy& s,
                          int pool_size, int64_t cache_budget) {
  // Cumulative per-step work from one unbudgeted run (analytic, so the
  // boundaries hold at every pool size and cache budget).
  std::vector<int64_t> cum;
  {
    Warehouse clone = wb.warehouse.Clone();
    ExecutionReport report = Executor(&clone).Execute(s);
    int64_t total = 0;
    for (const ExpressionReport& er : report.per_expression) {
      total += er.linear_work;
      cum.push_back(total);
    }
  }
  const size_t n = cum.size();
  ASSERT_GE(n, 2u);

  for (size_t k = 0; k < n; ++k) {
    const int64_t budget_work = k == 0 ? 0 : cum[k - 1];
    // A budget of cum[k-1] pauses after exactly k steps only when the
    // work boundary is strictly increasing there.
    if (k >= 1 && budget_work <= (k >= 2 ? cum[k - 2] : 0)) continue;
    SCOPED_TRACE("pause after " + std::to_string(k) + " steps");
    Warehouse clone = wb.warehouse.Clone();
    ThreadPool pool(pool_size);
    std::unique_ptr<SubplanCache> cache = MakeCache(cache_budget);

    // Pin a handle across the whole window: it must never move.
    ReadSnapshot held = clone.OpenSnapshot();
    const int64_t pre_seq = held.commit_seq();
    const uint64_t held_fp = SnapshotFingerprint(held, 1 << 20);

    WindowBudget budget(WindowBudgetOptions{budget_work});
    ExecutorOptions options;
    options.pool = &pool;
    options.subplan_cache = cache.get();
    options.budget = &budget;
    ExecutionReport report = Executor(&clone, options).Execute(s);
    ASSERT_EQ(report.window_result, WindowResult::kPaused);
    ASSERT_EQ(report.steps_completed, static_cast<int64_t>(k));

    // Mid-window probe: fresh handles still serve the pre-window commit.
    ReadSnapshot paused = clone.OpenSnapshot();
    ASSERT_EQ(paused.commit_seq(), pre_seq)
        << "a paused window must not publish";
    ASSERT_TRUE(paused.ContentsEqual(wb.pre));
    ASSERT_EQ(SnapshotFingerprint(held, 1 << 20), held_fp);

    ExecutorOptions resume_options;
    resume_options.pool = &pool;
    resume_options.subplan_cache = cache.get();
    ResumeReport resumed = ResumeStrategy(clone.journal(), &clone,
                                          resume_options,
                                          ResumeMode::kContinueInPlace);
    ASSERT_EQ(resumed.window_result, WindowResult::kCompleted);

    ReadSnapshot after = clone.OpenSnapshot();
    ASSERT_GT(after.commit_seq(), pre_seq);
    ASSERT_TRUE(after.ContentsEqual(wb.truth));
    // The held handle STILL serves the pre-window state (epoch-based
    // reclamation keeps its version alive until release).
    ASSERT_EQ(SnapshotFingerprint(held, 1 << 20), held_fp);
    ASSERT_TRUE(held.ContentsEqual(wb.pre));
  }
}

/// Sweep 2: kill the sequential window at every reached fault point; the
/// torn warehouse must still serve the pre-window commit, and recovery
/// must converge and commit.
void SweepKillSites(const Workbench& wb, const Strategy& s,
                    int64_t cache_budget) {
  auto run = [&](Warehouse* target, SubplanCache* cache) {
    ExecutorOptions options;
    options.journal = true;
    options.subplan_cache = cache;
    Executor(target, options).Execute(s);
  };

  std::vector<std::pair<std::string, int64_t>> counts;
  {
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    Warehouse clone = wb.warehouse.Clone();
    auto cache = MakeCache(cache_budget);
    run(&clone, cache.get());
    ASSERT_TRUE(clone.OpenSnapshot().ContentsEqual(wb.truth))
        << "count pass did not commit the ground truth";
    counts = HitCounts();
  }
  ASSERT_FALSE(counts.empty()) << "no fault points reached?";

  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      Warehouse victim = wb.warehouse.Clone();
      auto cache = MakeCache(cache_budget);
      ReadSnapshot held = victim.OpenSnapshot();
      const int64_t pre_seq = held.commit_seq();
      const uint64_t held_fp = SnapshotFingerprint(held, 1 << 20);
      bool died = false;
      {
        FaultPlan plan;
        plan.triggers.push_back(Trigger{point, k, 1.0});
        ScopedFaultPlan scoped(plan);
        try {
          run(&victim, cache.get());
        } catch (const FaultInjectedError&) {
          died = true;
        }
      }
      ASSERT_TRUE(died);  // sequential execution is deterministic

      // The torn warehouse never published: readers keep the pre-window
      // state, bit-identical, and the held handle never moved.
      ReadSnapshot post = victim.OpenSnapshot();
      ASSERT_EQ(post.commit_seq(), pre_seq);
      ASSERT_TRUE(post.ContentsEqual(wb.pre));
      ASSERT_EQ(SnapshotFingerprint(held, 1 << 20), held_fp);

      Warehouse restored = wb.warehouse.Clone();
      ExecutorOptions resume_options;
      resume_options.subplan_cache = cache.get();
      ResumeStrategy(victim.journal(), &restored, resume_options);
      ReadSnapshot recovered = restored.OpenSnapshot();
      ASSERT_TRUE(recovered.ContentsEqual(wb.truth));
      ASSERT_GT(recovered.commit_seq(), pre_seq);
    }
  }
}

/// Sweep 3: same kill property under the stage-parallel executor.  Worker
/// scheduling can shift per-point hit totals, so a non-firing trigger just
/// asserts the completed run committed; at EVERY outcome the snapshot is
/// one committed state.
void SweepParallelKills(const Workbench& wb, const Strategy& s,
                        int64_t cache_budget) {
  ParallelStrategy staged = ParallelizeStrategy(wb.vdag, s);
  auto run = [&](Warehouse* target, SubplanCache* cache) {
    ParallelExecutorOptions options;
    options.workers = 3;
    options.term_workers = 2;
    options.journal = true;
    options.subplan_cache = cache;
    ParallelExecutor(target, options).Execute(staged);
  };

  std::vector<std::pair<std::string, int64_t>> counts;
  {
    FaultPlan count;
    count.count_only = true;
    ScopedFaultPlan scoped(count);
    Warehouse clone = wb.warehouse.Clone();
    auto cache = MakeCache(cache_budget);
    run(&clone, cache.get());
    ASSERT_TRUE(clone.OpenSnapshot().ContentsEqual(wb.truth));
    counts = HitCounts();
  }

  for (const auto& [point, total] : counts) {
    for (int64_t k : SampleHits(total)) {
      SCOPED_TRACE(point + " hit " + std::to_string(k));
      Warehouse victim = wb.warehouse.Clone();
      auto cache = MakeCache(cache_budget);
      ReadSnapshot held = victim.OpenSnapshot();
      const int64_t pre_seq = held.commit_seq();
      bool died = false;
      {
        FaultPlan plan;
        plan.triggers.push_back(Trigger{point, k, 1.0});
        ScopedFaultPlan scoped(plan);
        try {
          run(&victim, cache.get());
        } catch (const FaultInjectedError&) {
          died = true;
        }
      }
      ReadSnapshot post = victim.OpenSnapshot();
      AssertCommittedState(post, wb, pre_seq);
      if (!died) continue;
      ASSERT_EQ(post.commit_seq(), pre_seq)
          << "a torn window must not have published";

      Warehouse restored = wb.warehouse.Clone();
      ExecutorOptions resume_options;
      resume_options.subplan_cache = cache.get();
      ResumeStrategy(victim.journal(), &restored, resume_options);
      ASSERT_TRUE(restored.OpenSnapshot().ContentsEqual(wb.truth));
    }
  }
}

TEST(SnapshotIsolationProperty, PauseAtEveryBoundaryReaderSeesOneCommit) {
  const uint64_t seed = testutil::PropertySeed(311);
  SCOPED_TRACE(testutil::SeedTrace(seed));

  struct Shape {
    std::string name;
    Vdag vdag;
  };
  tpcd::Rng rng(seed + 3);
  std::vector<Shape> shapes;
  shapes.push_back({"fig3", testutil::MakeFig3Vdag()});
  shapes.push_back({"fig10", testutil::MakeFig10Vdag()});
  shapes.push_back({"random", testutil::RandomVdag(&rng, 3, 2)});

  for (Shape& shape : shapes) {
    SCOPED_TRACE("scenario " + shape.name);
    Workbench wb = MakeWorkbench(std::move(shape.vdag), 40, seed + 11);
    SizeMap sizes = wb.warehouse.EstimatedSizes();

    // MinWork sweeps the full pool x cache grid; the other strategies
    // sweep their boundaries at one fixed configuration.
    const Strategy min_work = MinWork(wb.vdag, sizes).strategy;
    for (int pool_size : kPoolSizes) {
      for (int64_t cache : {kNoCache, kTightCache}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size) +
                     " cache=" + std::to_string(cache));
        SweepPauseBoundaries(wb, min_work, pool_size, cache);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    const Strategy others[] = {Prune(wb.vdag, sizes).strategy,
                               MakeDualStageVdagStrategy(wb.vdag)};
    for (const Strategy& s : others) {
      SCOPED_TRACE("strategy " + s.ToString());
      SweepPauseBoundaries(wb, s, /*pool_size=*/2, kNoCache);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SnapshotIsolationProperty, KillAtEverySiteReaderKeepsPreWindowState) {
  const uint64_t seed = testutil::PropertySeed(313);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed + 5);
  Workbench benches[] = {
      MakeWorkbench(testutil::MakeFig3Vdag(), 40, seed + 21),
      MakeWorkbench(testutil::RandomVdag(&rng, 3, 2), 40, seed + 22),
  };

  for (Workbench& wb : benches) {
    SizeMap sizes = wb.warehouse.EstimatedSizes();
    const Strategy strategies[] = {MinWork(wb.vdag, sizes).strategy,
                                   Prune(wb.vdag, sizes).strategy,
                                   MakeDualStageVdagStrategy(wb.vdag)};
    for (const Strategy& s : strategies) {
      for (int64_t cache : {kNoCache, kTightCache}) {
        SCOPED_TRACE("cache " + std::to_string(cache) + " strategy " +
                     s.ToString());
        SweepKillSites(wb, s, cache);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(SnapshotIsolationProperty, ParallelKillsNeverExposeABlend) {
  const uint64_t seed = testutil::PropertySeed(317);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed + 7);
  Workbench wb = MakeWorkbench(testutil::RandomVdag(&rng, 3, 2), 40,
                               seed + 31);
  SizeMap sizes = wb.warehouse.EstimatedSizes();
  for (int64_t cache : {kNoCache, kTightCache}) {
    SCOPED_TRACE("cache " + std::to_string(cache));
    SweepParallelKills(wb, MinWork(wb.vdag, sizes).strategy, cache);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace wuw
