#include <gtest/gtest.h>

#include "test_util.h"
#include "view/comp_term.h"
#include "view/join_pipeline.h"
#include "view/recompute.h"
#include "view/view_definition.h"

namespace wuw {
namespace {

using testutil::FillTriple;
using testutil::TripleSchema;

class ViewTest : public ::testing::Test {
 protected:
  ViewTest() {
    catalog_.CreateTable("B", TripleSchema("B"));
    catalog_.CreateTable("C", TripleSchema("C"));
    FillTriple(catalog_.MustGetTable("B"), 20, 1);
    FillTriple(catalog_.MustGetTable("C"), 30, 2, /*hole_every=*/3);
  }

  Catalog catalog_;
};

TEST_F(ViewTest, BuilderProducesExpectedShape) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  EXPECT_EQ(def->name(), "V");
  EXPECT_EQ(def->num_sources(), 2u);
  EXPECT_FALSE(def->is_aggregate());
  EXPECT_EQ(def->SourceIndex("C"), 1);
  EXPECT_EQ(def->SourceIndex("Z"), -1);
}

TEST_F(ViewTest, OutputSchemaSpj) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  Schema out = def->OutputSchema(
      [&](const std::string& n) -> const Schema& {
        return catalog_.MustGetTable(n)->schema();
      });
  EXPECT_EQ(out.num_columns(), 3u);
  EXPECT_EQ(out.column(0).name, "V_k");
  EXPECT_EQ(out.column(1).type, TypeId::kInt64);
}

TEST_F(ViewTest, OutputSchemaAggregateAppendsCount) {
  auto def = testutil::AggTripleView("V", {"B", "C"});
  Schema out = def->OutputSchema(
      [&](const std::string& n) -> const Schema& {
        return catalog_.MustGetTable(n)->schema();
      });
  EXPECT_EQ(out.column(out.num_columns() - 1).name, "__count");
  EXPECT_TRUE(def->is_aggregate());
}

TEST_F(ViewTest, RecomputeSpjJoinSemantics) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  OperatorStats stats;
  Table v = RecomputeView(*def, catalog_, &stats);
  // Join on keys: C has holes every 3, B has holes every 7, B up to 20.
  int64_t expected = 0;
  catalog_.MustGetTable("B")->ForEach([&](const Tuple& t, int64_t c) {
    int64_t k = t.value(0).AsInt64();
    bool in_c = (k % 3 != 0);  // C holes
    if (in_c && k <= 30) expected += c;
  });
  EXPECT_EQ(v.cardinality(), expected);
  EXPECT_GT(stats.rows_scanned, 0);
}

TEST_F(ViewTest, RecomputeAggregateGroupSums) {
  auto def = testutil::AggTripleView("V", {"B", "C"});
  Table v = RecomputeView(*def, catalog_, nullptr);
  // At most 5 groups; each row has multiplicity 1 and positive __count.
  EXPECT_LE(v.distinct_size(), 5u);
  v.ForEach([&](const Tuple& t, int64_t c) {
    EXPECT_EQ(c, 1);
    EXPECT_GT(t.value(3).AsInt64(), 0);  // __count
  });
}

TEST_F(ViewTest, RecomputeReportsJoinRows) {
  auto def = testutil::AggTripleView("V", {"B", "C"});
  int64_t join_rows = 0;
  RecomputeView(*def, catalog_, nullptr, &join_rows);
  auto spj = testutil::SpjTripleView("V2", {"B", "C"});
  Table vspj = RecomputeView(*spj, catalog_, nullptr);
  EXPECT_EQ(join_rows, vspj.cardinality());
}

TEST_F(ViewTest, FilterPushdownMatchesPostFilter) {
  // Same view with filter: results must equal filtering after the join.
  auto with = testutil::SpjTripleView("V", {"B", "C"}, /*with_filter=*/true);
  auto without = testutil::SpjTripleView("W", {"B", "C"});
  Table v = RecomputeView(*with, catalog_, nullptr);
  Table w = RecomputeView(*without, catalog_, nullptr);
  // Count rows of w whose source B_v != 0: recompute via scan of B.
  EXPECT_LE(v.cardinality(), w.cardinality());
  EXPECT_GT(v.cardinality(), 0);
}

TEST_F(ViewTest, CompSingleSourceHasOneTerm) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  DeltaRelation delta_b(TripleSchema("B"));
  delta_b.Add(Tuple({Value::Int64(2), Value::Int64(50), Value::Int64(2)}), 1);

  DeltaProvider provider = [&](const std::string&) { return &delta_b; };
  OperatorStats stats;
  CompEvalResult r =
      EvalComp(*def, {"B"}, catalog_, provider, {}, &stats);
  EXPECT_EQ(r.num_terms, 1);
  // Operand work: |δB| + |C| (one term reads the delta and C's extent).
  EXPECT_EQ(r.linear_operand_work,
            1 + catalog_.MustGetTable("C")->cardinality());
  // Key 2 exists in C (not a hole), so one joined raw row appears.
  EXPECT_EQ(r.raw_delta.SignedCardinality(), 1);
}

TEST_F(ViewTest, CompTwoSourcesHasThreeTerms) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  DeltaRelation delta_b(TripleSchema("B"));
  DeltaRelation delta_c(TripleSchema("C"));
  delta_b.Add(Tuple({Value::Int64(100), Value::Int64(1), Value::Int64(0)}), 1);
  delta_c.Add(Tuple({Value::Int64(100), Value::Int64(2), Value::Int64(0)}), 1);

  DeltaProvider provider = [&](const std::string& n) {
    return n == "B" ? &delta_b : &delta_c;
  };
  CompEvalResult r = EvalComp(*def, {"B", "C"}, catalog_, provider, {}, nullptr);
  EXPECT_EQ(r.num_terms, 3);
  // Key 100 is in neither current extent, so only the δB ⋈ δC term matches.
  EXPECT_EQ(r.raw_delta.SignedCardinality(), 1);
  // Work: (|δB|+|C|) + (|B|+|δC|) + (|δB|+|δC|).
  int64_t b = catalog_.MustGetTable("B")->cardinality();
  int64_t c = catalog_.MustGetTable("C")->cardinality();
  EXPECT_EQ(r.linear_operand_work, (1 + c) + (b + 1) + (1 + 1));
}

TEST_F(ViewTest, CompDeletionProducesMinusRawRows) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  // Delete key 2 from B (present in C).
  Tuple b_row;
  catalog_.MustGetTable("B")->ForEach([&](const Tuple& t, int64_t) {
    if (t.value(0).AsInt64() == 2) b_row = t;
  });
  DeltaRelation delta_b(TripleSchema("B"));
  delta_b.Add(b_row, -1);
  DeltaProvider provider = [&](const std::string&) { return &delta_b; };
  CompEvalResult r = EvalComp(*def, {"B"}, catalog_, provider, {}, nullptr);
  EXPECT_EQ(r.raw_delta.SignedCardinality(), -1);
}

TEST_F(ViewTest, SkipEmptyDeltaTermsOption) {
  auto def = testutil::SpjTripleView("V", {"B", "C"});
  DeltaRelation empty_b(TripleSchema("B"));
  DeltaRelation delta_c(TripleSchema("C"));
  delta_c.Add(Tuple({Value::Int64(1), Value::Int64(9), Value::Int64(1)}), 1);
  DeltaProvider provider = [&](const std::string& n) {
    return n == "B" ? &empty_b : &delta_c;
  };
  CompEvalOptions skip;
  skip.skip_empty_delta_terms = true;
  CompEvalResult r =
      EvalComp(*def, {"B", "C"}, catalog_, provider, skip, nullptr);
  EXPECT_EQ(r.num_terms, 1);  // only the δC term survives

  CompEvalResult full =
      EvalComp(*def, {"B", "C"}, catalog_, provider, {}, nullptr);
  EXPECT_EQ(full.num_terms, 3);
  // Same raw delta either way (empty-delta terms contribute nothing).
  EXPECT_EQ(r.raw_delta.SignedCardinality(),
            full.raw_delta.SignedCardinality());
}

TEST_F(ViewTest, ToStringRendersSqlish) {
  auto def = testutil::AggTripleView("V", {"B", "C"});
  std::string s = def->ToString();
  EXPECT_NE(s.find("SELECT"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY"), std::string::npos);
  EXPECT_NE(s.find("SUM("), std::string::npos);
}

TEST(ViewDefinitionDeathTest, RejectsDuplicateSources) {
  EXPECT_DEATH(
      {
        ViewDefinitionBuilder b("V");
        b.From("B").From("B");
      },
      "duplicate source");
}

}  // namespace
}  // namespace wuw
