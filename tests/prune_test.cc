#include <gtest/gtest.h>

#include <map>

#include "core/correctness.h"
#include "core/exhaustive.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

SizeMap RandomSizes(const Vdag& vdag, uint64_t seed) {
  tpcd::Rng rng(seed);
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    int64_t size = rng.Range(50, 500);
    int64_t minus = rng.Range(0, size / 3);
    int64_t plus = rng.Range(0, size / 3);
    sizes.Set(name, {size, plus + minus, plus - minus});
  }
  return sizes;
}

TEST(PruneTest, ProducesCorrectStrategy) {
  Vdag vdag = testutil::MakeFig10Vdag();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PruneResult r = Prune(vdag, RandomSizes(vdag, seed));
    EXPECT_TRUE(CheckVdagStrategy(vdag, r.strategy).ok)
        << r.strategy.ToString();
    EXPECT_GT(r.orderings_examined, 0);
  }
}

// Prune's winner equals the brute-force best over ALL correct 1-way VDAG
// strategies — its headline guarantee.
TEST(PruneTest, MatchesBruteForceBestOneWay) {
  Vdag vdag = testutil::MakeFig10Vdag();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    PruneResult r = Prune(vdag, sizes);
    auto one_way = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                                     /*limit=*/5000000);
    EvaluatedStrategy best = BestOf(vdag, one_way, sizes);
    EXPECT_NEAR(r.work, best.work, 1e-9)
        << "seed=" << seed << "\nPrune: " << r.strategy.ToString()
        << "\nBest:  " << best.strategy.ToString();
  }
}

// The m! optimization must not change the answer.
TEST(PruneTest, PermutingOnlyViewsWithParentsIsLossless) {
  Vdag vdag = testutil::MakeFig10Vdag();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    PruneOptions full;
    full.permute_only_views_with_parents = false;
    PruneResult with_opt = Prune(vdag, sizes);
    PruneResult without_opt = Prune(vdag, sizes, full);
    EXPECT_NEAR(with_opt.work, without_opt.work, 1e-9) << "seed=" << seed;
    EXPECT_LT(with_opt.orderings_examined, without_opt.orderings_examined);
  }
}

TEST(PruneTest, TpcdSearchSpaceIs720Not362880) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  SizeMap sizes = RandomSizes(vdag, 1);
  PruneResult r = Prune(vdag, sizes);
  // m = 6 views with parents -> 6! orderings (Section 6).
  EXPECT_EQ(r.orderings_examined, 720);
}

// On VDAGs where MinWork's desired-ordering EG is acyclic, Prune can do no
// better (both hit the 1-way optimum).
TEST(PruneTest, AgreesWithMinWorkOnUniformVdag) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    MinWorkResult mw = MinWork(vdag, sizes);
    ASSERT_FALSE(mw.used_modified_ordering);
    double mw_work = EstimateStrategyWork(vdag, mw.strategy, sizes, {}).total;
    PruneResult pr = Prune(vdag, sizes);
    EXPECT_NEAR(mw_work, pr.work, 1e-9) << "seed=" << seed;
  }
}

// On the problem VDAG, Prune is at least as good as MinWork and sometimes
// strictly better (MinWork may fall back to a modified ordering).
TEST(PruneTest, NeverWorseThanMinWork) {
  Vdag vdag = testutil::MakeFig10Vdag();
  bool strictly_better_somewhere = false;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    MinWorkResult mw = MinWork(vdag, sizes);
    double mw_work = EstimateStrategyWork(vdag, mw.strategy, sizes, {}).total;
    PruneResult pr = Prune(vdag, sizes);
    EXPECT_LE(pr.work, mw_work + 1e-9) << "seed=" << seed;
    if (pr.work < mw_work - 1e-9) strictly_better_somewhere = true;
  }
  (void)strictly_better_somewhere;  // informational; not guaranteed per-seed
}

// Lemma 6.1 / Theorem 6.1: every 1-way strategy is strongly consistent
// with exactly one ordering, and same-partition strategies cost the same.
TEST(PruneTest, StrategiesInSamePartitionIncurEqualWork) {
  Vdag vdag = testutil::MakeFig3Vdag();
  SizeMap sizes = RandomSizes(vdag, 5);
  auto one_way = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                                   /*limit=*/5000000);
  std::map<std::vector<std::string>, double> partition_work;
  for (const Strategy& s : one_way) {
    std::vector<std::string> ordering = s.InstOrder();  // Lemma 6.1
    double work = EstimateStrategyWork(vdag, s, sizes, {}).total;
    auto [it, inserted] = partition_work.emplace(ordering, work);
    if (!inserted) {
      EXPECT_NEAR(it->second, work, 1e-9)
          << "partition " << s.ToString();
    }
  }
  EXPECT_GT(partition_work.size(), 1u);
}

}  // namespace
}  // namespace wuw
