// Property tests for the columnar core (storage/column_table.h,
// algebra/row_batch.h) and the vectorized kernels (algebra/vectorized.h).
//
// Two families of invariants:
//
//  * round-trip: Table / Rows <-> ColumnTable <-> RowBatch conversions are
//    EXACT — every cell rematerializes with its original TypeId, SortedRows
//    and ContentsEqual cannot tell the representations apart, per-column
//    min/max Stats match a row-order recompute, dictionary codes are dense
//    and consistent, negative multiplicities and clamped deletes survive,
//    and every batch's running signed/abs cardinality equals the O(n)
//    recompute at every WUW_BATCH_ROWS value (including the degenerate 1);
//
//  * differential: each vectorized kernel, at batch sizes {1, 3, default}
//    and pool sizes {sequential, 8}, produces byte-identical rows, row
//    ORDER, and OperatorStats to the row-at-a-time path it mirrors —
//    including null semantics, string dictionaries (same-dict and
//    cross-dict join keys), dates, and signed multiplicities.
//
// All suites honor WUW_SEED and print a one-command repro on failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "algebra/project.h"
#include "algebra/row_batch.h"
#include "algebra/rows.h"
#include "algebra/vectorized.h"
#include "parallel/thread_pool.h"
#include "storage/column_table.h"
#include "storage/table.h"
#include "test_util.h"

namespace wuw {
namespace {

ThreadPool& Pool8() {
  static ThreadPool* p = new ThreadPool(8);
  return *p;
}

/// Scoped override of the columnar gate (restores the env-derived value).
struct VecGuard {
  explicit VecGuard(int mode) { vec::TestOnlySetEnabled(mode); }
  ~VecGuard() { vec::TestOnlySetEnabled(-1); }
};

/// Scoped override of the batch size (restores the env-derived value).
struct BatchGuard {
  explicit BatchGuard(size_t rows) { TestOnlySetBatchRows(rows); }
  ~BatchGuard() { TestOnlySetBatchRows(0); }
};

/// Random signed multiset over every cell type the engine stores:
/// (<p>_k INT, <p>_v INT nullable, <p>_d DOUBLE nullable, <p>_s STRING
/// nullable, <p>_t DATE).  Multiplicities in [-3, 3] \ {0} keep signed
/// semantics in play.  The default small string pool makes dictionaries
/// repeat and group-bys collide; join tests widen `str_domain` (and thin
/// the NULLs, which match each other as keys) to keep output sizes sane.
Rows RandomMixedRows(const std::string& p, size_t n, int64_t key_range,
                     tpcd::Rng* rng, int64_t str_domain = 23,
                     uint64_t null_every = 16) {
  Rows out(Schema({{p + "_k", TypeId::kInt64},
                   {p + "_v", TypeId::kInt64},
                   {p + "_d", TypeId::kDouble},
                   {p + "_s", TypeId::kString},
                   {p + "_t", TypeId::kDate}}));
  out.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t k = rng->Range(1, key_range);
    int64_t mult = rng->Range(1, 3) * (rng->Below(4) == 0 ? -1 : 1);
    Value v = rng->Below(null_every) == 0 ? Value::Null()
                                          : Value::Int64(rng->Range(-50, 99));
    Value d = rng->Below(null_every) == 0
                  ? Value::Null()
                  : Value::Double(
                        static_cast<double>(rng->Range(-9999, 9999)) / 7.0);
    Value s = rng->Below(null_every) == 0
                  ? Value::Null()
                  : Value::String("s" + std::to_string(rng->Range(0, str_domain)));
    Value t = Value::Date(1995, 1 + static_cast<int>(rng->Below(12)),
                          1 + static_cast<int>(rng->Below(28)));
    out.Add(Tuple({Value::Int64(k), std::move(v), std::move(d), std::move(s),
                   std::move(t)}),
            mult);
  }
  return out;
}

/// Byte-identical comparison: same tuples in the same ORDER with the same
/// multiplicities (ContentsEqual is order-blind; the kernels promise more).
void ExpectRowsIdentical(const Rows& expect, const Rows& got) {
  ASSERT_EQ(expect.rows.size(), got.rows.size());
  for (size_t i = 0; i < expect.rows.size(); ++i) {
    ASSERT_EQ(expect.rows[i].second, got.rows[i].second) << "row " << i;
    ASSERT_TRUE(expect.rows[i].first == got.rows[i].first) << "row " << i;
  }
}

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, FromRowsRoundTripsCellsCardsAndStats) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows rows = RandomMixedRows("t", 3000, 500, &rng);

  auto ct = ColumnTable::FromRows(rows.schema, rows.rows);
  ASSERT_NE(ct, nullptr);
  ASSERT_EQ(ct->num_rows(), rows.rows.size());
  int64_t signed_sum = 0, abs_sum = 0;
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    // Exact cell round-trip: same value AND same TypeId (operator== treats
    // Int64(3) == Double(3.0); tuples compare cell-wise the same way, so
    // check types explicitly).
    Tuple back = ct->TupleAt(i);
    ASSERT_TRUE(back == rows.rows[i].first) << "row " << i;
    for (size_t c = 0; c < rows.schema.num_columns(); ++c) {
      ASSERT_EQ(back.value(c).type(), rows.rows[i].first.value(c).type())
          << "row " << i << " col " << c;
    }
    ASSERT_EQ(ct->mult()[i], rows.rows[i].second) << "row " << i;
    signed_sum += rows.rows[i].second;
    abs_sum += std::llabs(rows.rows[i].second);
  }
  EXPECT_EQ(ct->SignedCardBetween(0, ct->num_rows()), signed_sum);
  EXPECT_EQ(ct->AbsCardBetween(0, ct->num_rows()), abs_sum);
  // O(1) prefix-sum ranges agree with the O(n) recompute on random slices.
  for (int trial = 0; trial < 32; ++trial) {
    size_t lo = rng.Below(ct->num_rows());
    size_t hi = lo + rng.Below(ct->num_rows() - lo + 1);
    int64_t s = 0, a = 0;
    for (size_t i = lo; i < hi; ++i) {
      s += ct->mult()[i];
      a += std::llabs(ct->mult()[i]);
    }
    ASSERT_EQ(ct->SignedCardBetween(lo, hi), s) << lo << ".." << hi;
    ASSERT_EQ(ct->AbsCardBetween(lo, hi), a) << lo << ".." << hi;
  }

  // Per-column min/max Stats match a row-order recompute over non-nulls.
  for (size_t c = 0; c < rows.schema.num_columns(); ++c) {
    bool has = false;
    Value lo, hi;
    for (const auto& [tuple, m] : rows.rows) {
      const Value& v = tuple.value(c);
      if (v.is_null()) continue;
      if (!has || v < lo) lo = v;
      if (!has || hi < v) hi = v;
      has = true;
    }
    ColumnMinMax got = ct->Stats(c);
    ASSERT_EQ(got.has_values, has) << "col " << c;
    if (has) {
      EXPECT_TRUE(got.min == lo) << "col " << c;
      EXPECT_TRUE(got.max == hi) << "col " << c;
    }
  }

  // The Rows-level cache returns an equivalent table and memoizes it.
  auto cached = rows.Columnar();
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached.get(), rows.Columnar().get());
  EXPECT_EQ(cached->num_rows(), rows.rows.size());
  EXPECT_EQ(rows.SignedCardinality(), signed_sum);
  EXPECT_EQ(rows.AbsCardinality(), abs_sum);
}

TEST_P(RoundTripTest, DictionaryCodesAreDenseAndConsistent) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows rows = RandomMixedRows("t", 2000, 400, &rng);
  auto ct = ColumnTable::FromRows(rows.schema, rows.rows);
  ASSERT_NE(ct, nullptr);

  const size_t sc = rows.schema.num_columns() - 2;  // the _s column
  ASSERT_EQ(rows.schema.column(sc).type, TypeId::kString);
  const ColumnVec& col = ct->column(sc);
  ASSERT_NE(col.dict, nullptr);
  // Equal strings <-> equal codes; every code decodes to its source string;
  // Find inverts Intern; codes are dense in first-occurrence order.
  std::vector<std::string> first_seen;
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    const Value& v = rows.rows[i].first.value(sc);
    uint32_t code = col.codes[i];
    if (v.is_null()) {
      ASSERT_EQ(code, kNullStringCode) << "row " << i;
      continue;
    }
    ASSERT_LT(code, col.dict->size()) << "row " << i;
    ASSERT_EQ(col.dict->At(code), v.AsString()) << "row " << i;
    ASSERT_EQ(col.dict->Find(v.AsString()), code) << "row " << i;
    if (code == first_seen.size()) first_seen.push_back(v.AsString());
    ASSERT_LT(code, first_seen.size()) << "codes must be dense, row " << i;
    ASSERT_EQ(first_seen[code], v.AsString()) << "row " << i;
  }
  EXPECT_EQ(col.dict->size(), first_seen.size());
  EXPECT_EQ(col.dict->Find("never-interned"), kNullStringCode);
}

TEST_P(RoundTripTest, TableSnapshotSurvivesClampedDeletes) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Schema schema({{"k", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"v", TypeId::kInt64}});
  Table table(schema);
  // Random multiset churn, including deletes of absent tuples (Table clamps
  // the stored multiplicity at zero) and full deletes (swap-with-last).
  for (int i = 0; i < 4000; ++i) {
    Tuple t({Value::Int64(rng.Range(1, 120)),
             Value::String("g" + std::to_string(rng.Range(0, 7))),
             Value::Int64(rng.Range(1, 9))});
    int64_t count = rng.Below(5) == 0 ? -rng.Range(1, 6) : rng.Range(1, 3);
    int64_t result = table.Add(t, count);
    ASSERT_GE(result, 0) << "clamped multiplicity must stay non-negative";
  }

  auto snap = table.ColumnarSnapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->num_rows(), table.distinct_size());
  // Rebuild a Table from the snapshot: multiset-equal, and the sorted
  // images match pair for pair (order-blind AND order-aware agreement).
  Table rebuilt(schema);
  for (size_t i = 0; i < snap->num_rows(); ++i) {
    ASSERT_GT(snap->mult()[i], 0) << "live table rows are positive";
    rebuilt.Add(snap->TupleAt(i), snap->mult()[i]);
  }
  EXPECT_TRUE(table.ContentsEqual(rebuilt));
  auto want = table.SortedRows();
  auto got = rebuilt.SortedRows();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(want[i].first == got[i].first) << "row " << i;
    ASSERT_EQ(want[i].second, got[i].second) << "row " << i;
  }

  // A mutation invalidates the cache: the next snapshot sees the new row,
  // while the old shared_ptr stays alive and unchanged for prior holders.
  size_t before = snap->num_rows();
  table.Add(Tuple({Value::Int64(999999), Value::String("fresh"),
                   Value::Int64(1)}),
            2);
  auto snap2 = table.ColumnarSnapshot();
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap->num_rows(), before);
  EXPECT_EQ(snap2->num_rows(), table.distinct_size());
  EXPECT_EQ(snap2.get(), table.ColumnarSnapshot().get());
}

TEST_P(RoundTripTest, BatchesCoverRowsAndCarryRunningCards) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows rows = RandomMixedRows("t", 2500, 300, &rng);
  auto ct = ColumnTable::FromRows(rows.schema, rows.rows);
  ASSERT_NE(ct, nullptr);

  for (size_t batch_rows : {size_t{1}, size_t{3}, kBatchRows}) {
    SCOPED_TRACE("batch_rows=" + std::to_string(batch_rows));
    BatchGuard guard(batch_rows);
    ASSERT_EQ(BatchRows(), batch_rows);
    size_t next = 0;
    ForEachBatch(*ct, [&](const RowBatch& batch) {
      ASSERT_LE(batch.size(), batch_rows);
      int64_t s = 0, a = 0;
      for (size_t k = 0; k < batch.size(); ++k) {
        ASSERT_EQ(batch.row(k), next) << "batches must cover rows in order";
        s += ct->mult()[batch.row(k)];
        a += std::llabs(ct->mult()[batch.row(k)]);
        ++next;
      }
      ASSERT_EQ(batch.signed_card, s);
      ASSERT_EQ(batch.abs_card, a);
      batch.CheckCards();  // debug-build O(n) oracle

      // Narrowing keeps card bookkeeping exact for any subset.
      std::vector<uint32_t> keep;
      int64_t ks = 0, ka = 0;
      for (size_t k = 0; k < batch.size(); ++k) {
        if (rng.Below(2) == 0) continue;
        uint32_t id = static_cast<uint32_t>(batch.row(k));
        keep.push_back(id);
        ks += ct->mult()[id];
        ka += std::llabs(ct->mult()[id]);
      }
      size_t keep_n = keep.size();
      RowBatch narrowed = RowBatch::Select(batch, std::move(keep), ks, ka);
      ASSERT_EQ(narrowed.size(), keep_n);
      ASSERT_EQ(narrowed.signed_card, ks);
      ASSERT_EQ(narrowed.abs_card, ka);
      narrowed.CheckCards();
    });
    EXPECT_EQ(next, ct->num_rows());
  }
}

TEST_P(RoundTripTest, TypeViolatingRowsStayRowMajor) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  // The row engine never checks declared types; a double smuggled into an
  // INT column is legal there but cannot round-trip through typed arrays.
  Rows rows(Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}));
  for (int i = 0; i < 100; ++i) {
    rows.Add(Tuple({Value::Int64(i), Value::Int64(rng.Range(0, 9))}), 1);
  }
  size_t bad = rng.Below(rows.rows.size());
  rows.rows[bad].first = Tuple({Value::Int64(7), Value::Double(3.5)});
  EXPECT_EQ(ColumnTable::FromRows(rows.schema, rows.rows), nullptr);
  EXPECT_EQ(rows.Columnar(), nullptr);
  // ...and the kernels silently stay on the row path for such inputs.
  VecGuard vec_on(1);
  OperatorStats stats;
  ScalarExpr::Ptr pred =
      ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("k"),
                          ScalarExpr::Literal(Value::Int64(50)));
  Rows filtered = Filter(rows, pred, &stats, nullptr);
  EXPECT_EQ(stats.rows_scanned, static_cast<int64_t>(rows.rows.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Values(11, 22, 33));

// Differential harness: the row path (gate forced closed) is the oracle;
// the vectorized path must match it byte for byte — rows, row order, and
// OperatorStats — at every batch size and pool size.
class KernelDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  template <typename Run>
  void ExpectVecMatchesRowPath(const Run& run) {
    OperatorStats row_stats;
    Rows row_out;
    {
      VecGuard vec_off(0);
      row_out = run(&row_stats, nullptr);
    }
    VecGuard vec_on(1);
    for (size_t batch_rows : {size_t{1}, size_t{3}, size_t{0}}) {
      SCOPED_TRACE("batch_rows=" +
                   (batch_rows == 0 ? std::string("default")
                                    : std::to_string(batch_rows)));
      BatchGuard guard(batch_rows);
      for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &Pool8()}) {
        SCOPED_TRACE(pool == nullptr
                         ? std::string("pool=none")
                         : "pool=" + std::to_string(pool->parallelism()));
        OperatorStats vec_stats;
        Rows vec_out = run(&vec_stats, pool);
        ExpectRowsIdentical(row_out, vec_out);
        EXPECT_EQ(row_stats, vec_stats);
      }
    }
  }
};

TEST_P(KernelDifferentialTest, FilterMatchesRowPath) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows input = RandomMixedRows("t", 20000, 4000, &rng);
  // Numeric, string-equality, string-order, date, and null-feeding
  // predicates all have defined row-path semantics to mirror.
  std::vector<std::pair<const char*, ScalarExpr::Ptr>> predicates;
  predicates.emplace_back(
      "int_lt", ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("t_v"),
                                    ScalarExpr::Literal(Value::Int64(40))));
  predicates.emplace_back(
      "str_eq", ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("t_s"),
                                    ScalarExpr::Literal(Value::String("s7"))));
  predicates.emplace_back(
      "str_lt", ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("t_s"),
                                    ScalarExpr::Literal(Value::String("s2"))));
  predicates.emplace_back(
      "date_ge",
      ScalarExpr::Compare(CompareOp::kGe, ScalarExpr::Column("t_t"),
                          ScalarExpr::Literal(Value::Date(1995, 7, 1))));
  predicates.emplace_back(
      "conj", ScalarExpr::Logical(
                  LogicalOp::kAnd,
                  ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("t_v"),
                                      ScalarExpr::Literal(Value::Int64(0))),
                  ScalarExpr::Compare(CompareOp::kNe, ScalarExpr::Column("t_s"),
                                      ScalarExpr::Literal(Value::String("s3")))));
  for (auto& [name, pred] : predicates) {
    SCOPED_TRACE(name);
    ExpectVecMatchesRowPath(
        [&, &pred = pred](OperatorStats* stats, ThreadPool* pool) {
          return Filter(input, pred, stats, pool, nullptr);
        });
  }
}

TEST_P(KernelDifferentialTest, ProjectMatchesRowPath) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows input = RandomMixedRows("t", 20000, 4000, &rng);
  // Column passthrough of every type, int-exact arithmetic, kDiv (double
  // result, div-by-zero -> NULL), nullable operands, and literals.
  std::vector<ProjectItem> items = {
      {ScalarExpr::Column("t_k"), "k"},
      {ScalarExpr::Column("t_s"), "s"},
      {ScalarExpr::Column("t_t"), "t"},
      {ScalarExpr::Arith(ArithOp::kAdd, ScalarExpr::Column("t_v"),
                         ScalarExpr::Column("t_k")),
       "vk"},
      {ScalarExpr::Arith(ArithOp::kMul, ScalarExpr::Column("t_d"),
                         ScalarExpr::Literal(Value::Double(1.5))),
       "d15"},
      {ScalarExpr::Arith(ArithOp::kDiv, ScalarExpr::Column("t_k"),
                         ScalarExpr::Column("t_v")),
       "kv"},
      {ScalarExpr::Literal(Value::String("tag")), "tag"}};
  ExpectVecMatchesRowPath([&](OperatorStats* stats, ThreadPool* pool) {
    return Project(input, items, stats, pool, nullptr);
  });
}

TEST_P(KernelDifferentialTest, HashJoinMatchesRowPath) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  // Sized past kMinParallelRows combined (so the radix build engages with
  // a pool), with key domains wide enough that fan-out stays bounded.
  Rows left = RandomMixedRows("l", 9000, 2000, &rng, /*str_domain=*/1500,
                              /*null_every=*/64);
  Rows right = RandomMixedRows("r", 6000, 2000, &rng, /*str_domain=*/1500,
                               /*null_every=*/64);
  // Int keys, cross-dictionary string keys (left and right interned
  // independently, and both sides carry NULL keys: null == null matches in
  // the row path), and a composite (int, date) key.
  std::vector<std::pair<const char*, JoinKeys>> key_sets = {
      {"int", {{"l_k"}, {"r_k"}}},
      {"string", {{"l_s"}, {"r_s"}}},
      {"int_date", {{"l_k", "l_t"}, {"r_k", "r_t"}}}};
  for (auto& [name, keys] : key_sets) {
    SCOPED_TRACE(name);
    ExpectVecMatchesRowPath(
        [&, &keys = keys](OperatorStats* stats, ThreadPool* pool) {
          return HashJoin(left, right, keys, stats, pool, nullptr);
        });
  }
}

TEST_P(KernelDifferentialTest, AggregateMatchesRowPath) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Rows input = RandomMixedRows("t", 24000, 5000, &rng);
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("t_v"), "sv"},   // nullable int SUM
      {AggFn::kSum, ScalarExpr::Column("t_d"), "sd"},   // double SUM: bits
      {AggFn::kCount, nullptr, "n"}};
  // Grouping by a string column exercises dictionary group keys (including
  // the NULL code); the (int, date) pair exercises composite keys.
  std::vector<std::pair<const char*, std::vector<std::string>>> group_bys = {
      {"string", {"t_s"}},
      {"int_mod", {"t_v"}},
      {"int_date", {"t_k", "t_t"}}};
  for (auto& [name, group_by] : group_bys) {
    SCOPED_TRACE(name);
    ExpectVecMatchesRowPath(
        [&, &group_by = group_by](OperatorStats* stats, ThreadPool* pool) {
          return AggregateSigned(input, group_by, aggs, stats, pool, nullptr);
        });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace wuw
