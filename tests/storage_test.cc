#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace wuw {
namespace {

TEST(ValueTest, TypeAccessors) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Date(19950315).AsDate(), 19950315);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int64(0).is_null());
}

TEST(ValueTest, DateFactoryFromComponents) {
  EXPECT_EQ(Value::Date(1995, 3, 15).AsDate(), 19950315);
  EXPECT_EQ(Value::Date(1992, 1, 1).AsDate(), 19920101);
}

TEST(ValueTest, NumericValueWidens) {
  EXPECT_DOUBLE_EQ(Value::Int64(7).NumericValue(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Date(19950315).NumericValue(), 19950315.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).NumericValue(), 1.5);
}

TEST(ValueTest, EqualityAcrossNumericRepresentations) {
  EXPECT_EQ(Value::Int64(3), Value::Double(3.0));
  EXPECT_NE(Value::Int64(3), Value::Double(3.5));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
  EXPECT_NE(Value::String("3"), Value::Int64(3));
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Int64(-100));
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Int64(5), Value::String(""));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Date(19940101), Value::Date(19950101));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Date(19950315).ToString(), "1995-03-15");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(SchemaTest, LookupByName) {
  Schema s({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
  EXPECT_EQ(s.MustIndexOf("b"), 1u);
  EXPECT_TRUE(s.HasColumn("a"));
  EXPECT_FALSE(s.HasColumn("z"));
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"y", TypeId::kDouble}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"x", TypeId::kInt64}});
  Schema c({{"x", TypeId::kDouble}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, ProjectAndConcat) {
  Tuple t({Value::Int64(1), Value::String("a"), Value::Int64(3)});
  Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.value(0).AsInt64(), 3);
  EXPECT_EQ(p.value(1).AsInt64(), 1);

  Tuple c = Tuple::Concat(t, p);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.value(4).AsInt64(), 1);
}

TEST(TupleTest, OrderAndEquality) {
  Tuple a({Value::Int64(1), Value::Int64(2)});
  Tuple b({Value::Int64(1), Value::Int64(3)});
  Tuple c({Value::Int64(1), Value::Int64(2)});
  EXPECT_LT(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.Hash(), c.Hash());
  Tuple shorter({Value::Int64(1)});
  EXPECT_LT(shorter, a);
}

TEST(TableTest, MultisetAddAndRemove) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  Tuple row({Value::Int64(7)});
  EXPECT_EQ(t.Add(row, 3), 3);
  EXPECT_EQ(t.cardinality(), 3);
  EXPECT_EQ(t.distinct_size(), 1u);
  EXPECT_EQ(t.Add(row, -1), 2);
  EXPECT_EQ(t.cardinality(), 2);
  EXPECT_EQ(t.Add(row, -2), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TableTest, NegativeCountClampsToZero) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  Tuple row({Value::Int64(1)});
  EXPECT_EQ(t.Add(row, -5), 0);
  EXPECT_EQ(t.cardinality(), 0);
  t.Add(row, 2);
  EXPECT_EQ(t.Add(row, -5), 0);  // over-delete clamps
  EXPECT_EQ(t.cardinality(), 0);
}

TEST(TableTest, ContentsEqualIgnoresInsertionOrder) {
  Schema s({{"x", TypeId::kInt64}});
  Table a(s), b(s);
  a.Add(Tuple({Value::Int64(1)}), 1);
  a.Add(Tuple({Value::Int64(2)}), 2);
  b.Add(Tuple({Value::Int64(2)}), 2);
  b.Add(Tuple({Value::Int64(1)}), 1);
  EXPECT_TRUE(a.ContentsEqual(b));
  b.Add(Tuple({Value::Int64(1)}), 1);
  EXPECT_FALSE(a.ContentsEqual(b));
}

TEST(TableTest, SortedRowsDeterministic) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  t.Add(Tuple({Value::Int64(5)}), 1);
  t.Add(Tuple({Value::Int64(1)}), 1);
  t.Add(Tuple({Value::Int64(3)}), 1);
  auto rows = t.SortedRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first.value(0).AsInt64(), 1);
  EXPECT_EQ(rows[2].first.value(0).AsInt64(), 5);
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog c;
  Table* t = c.CreateTable("T", Schema({{"x", TypeId::kInt64}}));
  EXPECT_NE(t, nullptr);
  EXPECT_EQ(c.GetTable("T"), t);
  EXPECT_EQ(c.GetTable("U"), nullptr);
  EXPECT_TRUE(c.HasTable("T"));
  EXPECT_EQ(c.table_names().size(), 1u);
}

TEST(CatalogTest, CloneIsDeep) {
  Catalog c;
  Table* t = c.CreateTable("T", Schema({{"x", TypeId::kInt64}}));
  t->Add(Tuple({Value::Int64(1)}), 1);
  Catalog clone = c.Clone();
  clone.MustGetTable("T")->Add(Tuple({Value::Int64(2)}), 1);
  EXPECT_EQ(c.MustGetTable("T")->cardinality(), 1);
  EXPECT_EQ(clone.MustGetTable("T")->cardinality(), 2);
  EXPECT_FALSE(c.ContentsEqual(clone));
}

TEST(CatalogTest, ContentsEqual) {
  Catalog a, b;
  a.CreateTable("T", Schema({{"x", TypeId::kInt64}}));
  b.CreateTable("T", Schema({{"x", TypeId::kInt64}}));
  EXPECT_TRUE(a.ContentsEqual(b));
  a.MustGetTable("T")->Add(Tuple({Value::Int64(1)}), 1);
  EXPECT_FALSE(a.ContentsEqual(b));
}

}  // namespace
}  // namespace wuw
