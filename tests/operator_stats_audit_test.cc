// Audit of merged OperatorStats under shared-subplan memoization: a
// SubplanCache hit replays a materialized intermediate instead of
// re-running its operators, so NONE of the per-operator counters may
// accrue for the skipped subtree — and a merge bug that double-counted
// rows on the hit path would break every "cheaper with cache" claim in
// EXPERIMENTS.md.  Same eager-vs-cached oracle shape as the staleness
// suite in subplan_cache_property_test.cc, aimed at the counters instead
// of the contents.
#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"
#include "view/comp_term.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

/// Sums the per-expression stats of a report — the oracle the executor's
/// running `totals` must match exactly.
OperatorStats SumPerExpression(const std::vector<ExpressionReport>& per) {
  OperatorStats sum;
  for (const ExpressionReport& er : per) sum += er.stats;
  return sum;
}

ExecutionReport RunOnClone(const Warehouse& w, const Strategy& s,
                           SubplanCache* cache, Catalog* final_state) {
  Warehouse clone = w.Clone();
  ExecutorOptions options;
  options.subplan_cache = cache;
  ExecutionReport report = Executor(&clone, options).Execute(s);
  if (final_state != nullptr) *final_state = std::move(clone.catalog());
  return report;
}

// A fully warmed cache serves every cacheable subplan of a Comp, so a
// second EvalComp from the same state accrues zero operator work: no rows
// scanned or produced, no hash activity, no misses — only hits.  This is
// the sharpest form of the no-double-count invariant (no Inst noise).
TEST(OperatorStatsAuditTest, WarmCacheCompAccruesZeroOperatorWork) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeStarVdag("V", 3, false),
                                    60, /*seed=*/101);
  ApplyTripleChanges(&w, 0.2, 12, 103);

  SubplanCache cache(SubplanCacheOptions{/*byte_budget=*/-1});  // unbounded
  ThreadPool pool(1);
  CompEvalOptions options = MakeCompEvalOptions(
      &w, &cache, /*skip_empty_delta_terms=*/false, /*term_workers=*/1,
      &pool);
  const ViewDefinition& def = *w.vdag().definition("V");
  const std::vector<std::string>& over = w.vdag().sources("V");
  DeltaProvider deltas = [&w](const std::string& name) {
    return &w.base_delta(name);
  };

  // Cold pass: populates the cache; a dual-stage Comp over all three
  // sources has 2^3-1 terms with heavily shared join prefixes.
  OperatorStats cold;
  CompEvalResult cold_result =
      EvalComp(def, over, w.catalog(), deltas, options, &cold);
  ASSERT_EQ(cold_result.num_terms, 7);
  ASSERT_GT(cold.rows_scanned, 0);

  // Warm pass: identical state (EvalComp never mutates the warehouse), so
  // every cacheable subplan is served from the cache.
  OperatorStats warm;
  CompEvalResult warm_result =
      EvalComp(def, over, w.catalog(), deltas, options, &warm);

  EXPECT_GT(warm.subplan_cache_hits, 0);
  EXPECT_EQ(warm.subplan_cache_misses, 0);
  EXPECT_EQ(warm.rows_scanned, 0);
  EXPECT_EQ(warm.rows_produced, 0);
  EXPECT_EQ(warm.hash_probes, 0);
  EXPECT_EQ(warm.hash_build_rows, 0);

  // The replayed result is the real result, and the analytic work metric
  // never depends on where the rows came from.
  EXPECT_EQ(warm_result.num_terms, cold_result.num_terms);
  EXPECT_EQ(warm_result.linear_operand_work, cold_result.linear_operand_work);
  EXPECT_EQ(warm_result.raw_delta.rows.size(), cold_result.raw_delta.rows.size());
  EXPECT_EQ(warm_result.raw_delta.SignedCardinality(),
            cold_result.raw_delta.SignedCardinality());
  EXPECT_EQ(warm_result.raw_delta.AbsCardinality(),
            cold_result.raw_delta.AbsCardinality());
}

// Executor-level oracle: eager and cached runs converge identically, the
// cached run's scan volume goes down (never up), and in both runs the
// merged totals equal the sum of the per-expression reports.  Twin
// filtered views over the same two bases guarantee cross-expression
// sharing: under dual-stage, V2's Comp plan is node-for-node the same DAG
// V1's Comp already materialized, so cache hits on operator nodes (not
// just leaf scans) are structural, not incidental.
TEST(OperatorStatsAuditTest, CachedStrategyScansLessAndTotalsStayConsistent) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddDerivedView(testutil::SpjTripleView("V1", {"A", "B"},
                                              /*with_filter=*/true));
  vdag.AddDerivedView(testutil::SpjTripleView("V2", {"A", "B"},
                                              /*with_filter=*/true));
  Warehouse w = MakeLoadedWarehouse(std::move(vdag), 80, /*seed=*/211);
  ApplyTripleChanges(&w, 0.15, 10, 223);
  Catalog truth = GroundTruthAfterChanges(w);

  struct Case {
    Strategy strategy;
    bool expect_hits;  // dual-stage: V2's Comp replays V1's whole plan
  };
  for (const Case& c :
       {Case{MakeDualStageVdagStrategy(w.vdag()), true},
        Case{MinWork(w.vdag(), w.EstimatedSizes()).strategy, false}}) {
    const Strategy& s = c.strategy;
    Catalog eager_state;
    ExecutionReport eager = RunOnClone(w, s, nullptr, &eager_state);
    ASSERT_TRUE(eager_state.ContentsEqual(truth)) << s.ToString();
    EXPECT_EQ(eager.totals, SumPerExpression(eager.per_expression))
        << "eager totals drifted from per-expression sum: " << s.ToString();
    EXPECT_EQ(eager.totals.subplan_cache_hits, 0);
    EXPECT_EQ(eager.totals.subplan_cache_misses, 0);

    SubplanCache cache(SubplanCacheOptions{/*byte_budget=*/-1});
    Catalog cached_state;
    ExecutionReport cached = RunOnClone(w, s, &cache, &cached_state);
    ASSERT_TRUE(cached_state.ContentsEqual(truth)) << s.ToString();
    EXPECT_EQ(cached.totals, SumPerExpression(cached.per_expression))
        << "cached totals drifted from per-expression sum: " << s.ToString();

    // A hit short-circuits the subtree it replays: scan volume must never
    // exceed the eager run's (the double-count regression this suite
    // exists for), and where sharing is guaranteed it is strictly lower.
    EXPECT_LE(cached.totals.rows_scanned, eager.totals.rows_scanned)
        << s.ToString();
    EXPECT_LE(cached.totals.rows_produced, eager.totals.rows_produced)
        << s.ToString();
    if (c.expect_hits) {
      EXPECT_GT(cached.totals.subplan_cache_hits, 0) << s.ToString();
      EXPECT_LT(cached.totals.rows_scanned, eager.totals.rows_scanned)
          << s.ToString();
    }
    EXPECT_EQ(cached.total_linear_work, eager.total_linear_work)
        << s.ToString();
  }
}

// Second run over a shared cache from the same state: every comp subplan
// is already materialized, so only Inst-side work (finalize + install)
// remains.  Misses stay at zero — a nonzero miss here means a fingerprint
// or version-key bug, the counter-side shadow of the staleness suite.
TEST(OperatorStatsAuditTest, SecondRunOverSharedCacheMissesNothing) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeStarVdag("V", 3, true), 70,
                                    /*seed=*/307);
  ApplyTripleChanges(&w, 0.25, 8, 311);
  Catalog truth = GroundTruthAfterChanges(w);
  Strategy s = MakeDualStageVdagStrategy(w.vdag());

  SubplanCache cache;  // default budget, shared by both runs
  Catalog first_state, second_state;
  ExecutionReport first = RunOnClone(w, s, &cache, &first_state);
  ExecutionReport second = RunOnClone(w, s, &cache, &second_state);

  ASSERT_TRUE(first_state.ContentsEqual(truth));
  ASSERT_TRUE(second_state.ContentsEqual(truth));
  ASSERT_GT(first.totals.subplan_cache_misses, 0);
  EXPECT_GT(second.totals.subplan_cache_hits, 0);
  EXPECT_EQ(second.totals.subplan_cache_misses, 0);
  EXPECT_LT(second.totals.rows_scanned, first.totals.rows_scanned);
  EXPECT_EQ(second.totals, SumPerExpression(second.per_expression));
}

// The stage-parallel executor merges each expression's counters from
// thread-local slots at the stage barrier; with a shared cache attached
// the same no-double-count discipline must hold for its totals.
TEST(OperatorStatsAuditTest, ParallelExecutorTotalsMatchPerExpressionSum) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 60,
                                    /*seed=*/401);
  ApplyTripleChanges(&w, 0.2, 10, 409);
  Catalog truth = GroundTruthAfterChanges(w);
  Strategy sequential = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  ParallelStrategy stages = ParallelizeStrategy(w.vdag(), sequential);

  SubplanCache cache(SubplanCacheOptions{/*byte_budget=*/-1});
  Warehouse clone = w.Clone();
  ParallelExecutorOptions options;
  options.workers = 4;
  options.subplan_cache = &cache;
  ParallelExecutionReport report =
      ParallelExecutor(&clone, options).Execute(stages);

  ASSERT_TRUE(clone.catalog().ContentsEqual(truth));
  EXPECT_EQ(report.totals, SumPerExpression(report.per_expression));

  // And the merged totals still agree with the sequential executor's for
  // the strategy the stages were derived from, hit-for-hit not required —
  // but scan volume must never exceed the eager sequential baseline.
  Catalog eager_state;
  ExecutionReport eager = RunOnClone(w, sequential, nullptr, &eager_state);
  ASSERT_TRUE(eager_state.ContentsEqual(truth));
  EXPECT_LE(report.totals.rows_scanned, eager.totals.rows_scanned);
  EXPECT_EQ(report.total_linear_work, eager.total_linear_work);
}

}  // namespace
}  // namespace wuw
