// The GMS93 convergence property, end to end: EVERY correct VDAG strategy
// drives the warehouse to the same final state as full recomputation —
// across VDAG shapes, view languages (SPJ / aggregate / multi-level), and
// change workloads (deletions, insertions, mixed).
#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "test_util.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

/// Runs `strategy` on a clone of `w` and checks the final state.
void ExpectConverges(const Warehouse& w, const Catalog& truth,
                     const Strategy& strategy) {
  Warehouse clone = w.Clone();
  Executor executor(&clone);
  executor.Execute(strategy);
  ASSERT_TRUE(clone.catalog().ContentsEqual(truth))
      << "diverged under " << strategy.ToString();
}

struct WorkloadParam {
  const char* name;
  double delete_fraction;
  int64_t insert_rows;
};

class ConvergenceTest : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(ConvergenceTest, AllViewStrategiesConvergeOnStarVdag) {
  const WorkloadParam& p = GetParam();
  const uint64_t seed = testutil::PropertySeed(17);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (bool aggregate : {false, true}) {
    Warehouse w = MakeLoadedWarehouse(
        testutil::MakeStarVdag("V", 3, aggregate), 50, seed);
    ApplyTripleChanges(&w, p.delete_fraction, p.insert_rows, seed + 6);
    Catalog truth = GroundTruthAfterChanges(w);
    // All 13 partition strategies for the derived view + base installs.
    for (const Strategy& vs :
         AllViewStrategies("V", w.vdag().sources("V"))) {
      ExpectConverges(w, truth, vs);
    }
  }
}

TEST_P(ConvergenceTest, SampledOneWayVdagStrategiesConvergeOnFig3) {
  const WorkloadParam& p = GetParam();
  const uint64_t seed = testutil::PropertySeed(31);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, seed);
  ApplyTripleChanges(&w, p.delete_fraction, p.insert_rows, seed + 6);
  Catalog truth = GroundTruthAfterChanges(w);

  auto all = EnumerateAllCorrectVdagStrategies(w.vdag(), /*one_way_only=*/true,
                                               5000000);
  // Execute a deterministic sample (every k-th) to keep runtime bounded.
  size_t step = std::max<size_t>(1, all.size() / 25);
  for (size_t i = 0; i < all.size(); i += step) {
    ExpectConverges(w, truth, all[i]);
  }
}

TEST_P(ConvergenceTest, MixedPartitionStrategiesConvergeOnFig3) {
  const WorkloadParam& p = GetParam();
  const uint64_t seed = testutil::PropertySeed(41);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, seed);
  ApplyTripleChanges(&w, p.delete_fraction, p.insert_rows, seed + 2);
  Catalog truth = GroundTruthAfterChanges(w);

  auto all = EnumerateAllCorrectVdagStrategies(w.vdag(), /*one_way_only=*/false,
                                               5000000);
  size_t step = std::max<size_t>(1, all.size() / 25);
  for (size_t i = 0; i < all.size(); i += step) {
    ExpectConverges(w, truth, all[i]);
  }
}

TEST_P(ConvergenceTest, OptimizerOutputsConvergeOnFig10) {
  const WorkloadParam& p = GetParam();
  const uint64_t seed = testutil::PropertySeed(53);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 60, seed);
  ApplyTripleChanges(&w, p.delete_fraction, p.insert_rows, seed + 6);
  Catalog truth = GroundTruthAfterChanges(w);

  SizeMap sizes = w.EstimatedSizes();
  ExpectConverges(w, truth, MinWork(w.vdag(), sizes).strategy);
  ExpectConverges(w, truth, Prune(w.vdag(), sizes).strategy);
  ExpectConverges(w, truth, MakeDualStageVdagStrategy(w.vdag()));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ConvergenceTest,
    ::testing::Values(WorkloadParam{"deletions", 0.25, 0},
                      WorkloadParam{"insertions", 0.0, 15},
                      WorkloadParam{"mixed", 0.15, 10},
                      WorkloadParam{"heavy", 0.5, 30}),
    [](const ::testing::TestParamInfo<WorkloadParam>& info) {
      return info.param.name;
    });

// Deeper pipelines: a 3-level chain with an aggregate at the top.
TEST(ConvergenceDepthTest, ThreeLevelChainConverges) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddBaseView("C", testutil::TripleSchema("C"));
  vdag.AddDerivedView(testutil::SpjTripleView("D1", {"A", "B"}));
  vdag.AddDerivedView(testutil::SpjTripleView("D2", {"D1", "C"}));
  vdag.AddDerivedView(testutil::AggTripleView("D3", {"D2"}));

  const uint64_t seed = testutil::PropertySeed(61);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(std::move(vdag), 60, seed);
  ApplyTripleChanges(&w, 0.2, 12, seed + 6);
  Catalog truth = GroundTruthAfterChanges(w);

  SizeMap sizes = w.EstimatedSizes();
  ExpectConverges(w, truth, MinWork(w.vdag(), sizes).strategy);
  ExpectConverges(w, truth, MakeDualStageVdagStrategy(w.vdag()));
  ExpectConverges(w, truth, Prune(w.vdag(), sizes).strategy);
}

// Aggregate feeding a parent view: the parent consumes summary-delta
// output including group deaths and births.
TEST(ConvergenceDepthTest, ParentOverAggregateConverges) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddDerivedView(testutil::AggTripleView("G", {"B"}));
  // Parent joins A's group id against G's group key.
  auto parent = ViewDefinitionBuilder("P")
                    .From("A")
                    .From("G")
                    .JoinOn("A_g", "G_k")
                    .SelectColumn("A_k", "P_k")
                    .Select(ScalarExpr::Arith(ArithOp::kAdd,
                                              ScalarExpr::Column("A_v"),
                                              ScalarExpr::Column("G_v")),
                            "P_v")
                    .SelectColumn("A_g", "P_g")
                    .Build();
  vdag.AddDerivedView(parent);

  const uint64_t seed = testutil::PropertySeed(71);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(std::move(vdag), 50, seed);
  ApplyTripleChanges(&w, 0.3, 10, seed + 2);
  Catalog truth = GroundTruthAfterChanges(w);

  SizeMap sizes = w.EstimatedSizes();
  ExpectConverges(w, truth, MinWork(w.vdag(), sizes).strategy);
  ExpectConverges(w, truth, MakeDualStageVdagStrategy(w.vdag()));
}

// Repeated rounds keep converging (no state leaks across batches).
TEST(ConvergenceDepthTest, TenConsecutiveRounds) {
  const uint64_t seed = testutil::PropertySeed(79);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, seed);
  for (int round = 0; round < 10; ++round) {
    ApplyTripleChanges(&w, 0.1, 5, seed + 921 + round);  // 79+921 = old 1000
    Catalog truth = GroundTruthAfterChanges(w);
    SizeMap sizes = w.EstimatedSizes();
    Strategy s = (round % 2 == 0)
                     ? MinWork(w.vdag(), sizes).strategy
                     : MakeDualStageVdagStrategy(w.vdag());
    Executor executor(&w);
    executor.Execute(s);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "round " << round;
  }
}

}  // namespace
}  // namespace wuw
