// Unit tests for the physical-plan layer: DAG interning / CSE, cache-key
// versioning, SubplanCache budget + eviction policy, and PlanExecutor
// result reuse.
#include <gtest/gtest.h>

#include "plan/plan_executor.h"
#include "plan/plan_node.h"
#include "plan/subplan_cache.h"
#include "stats/plan_cardinality.h"
#include "test_util.h"
#include "view/join_pipeline.h"

namespace wuw {
namespace {

using testutil::FillTriple;
using testutil::TripleSchema;

Table MakeTriple(const std::string& name, int64_t rows, uint64_t seed) {
  Table t(TripleSchema(name));
  FillTriple(&t, rows, seed);
  return t;
}

Rows MakeRowsBatch(const std::string& name, int64_t rows, uint64_t seed) {
  Table t = MakeTriple(name, rows, seed);
  return Rows::FromTable(t);
}

Table ToTable(const Rows& rows) {
  Table out(rows.schema);
  for (const auto& [tuple, count] : rows.rows) out.Add(tuple, count);
  return out;
}

ScalarExpr::Ptr ValueAbove(const std::string& column, int64_t threshold) {
  return ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column(column),
                             ScalarExpr::Literal(Value::Int64(threshold)));
}

TEST(PlanDagTest, InternUnifiesIdenticalSubplans) {
  Table a = MakeTriple("A", 20, 1);
  Table b = MakeTriple("B", 20, 2);
  PlanDag dag;

  // Two "terms" sharing the scan of A and the filtered scan of B.
  PlanNodeId scan_a1 = dag.InternTableScan("A", a, 3, 9);
  PlanNodeId scan_b1 = dag.InternTableScan("B", b, 1, 9);
  PlanNodeId filt_b1 = dag.InternFilter(scan_b1, ValueAbove("B_v", 10));
  PlanNodeId join1 = dag.InternHashJoin(scan_a1, filt_b1,
                                        JoinKeys{{"A_k"}, {"B_k"}});

  PlanNodeId scan_a2 = dag.InternTableScan("A", a, 3, 9);
  PlanNodeId filt_b2 = dag.InternFilter(dag.InternTableScan("B", b, 1, 9),
                                        ValueAbove("B_v", 10));
  PlanNodeId join2 = dag.InternHashJoin(scan_a2, filt_b2,
                                        JoinKeys{{"A_k"}, {"B_k"}});

  EXPECT_EQ(scan_a1, scan_a2);
  EXPECT_EQ(filt_b1, filt_b2);
  EXPECT_EQ(join1, join2);
  // scan A, scan B, filter, join — nothing duplicated.
  EXPECT_EQ(dag.size(), 4u);
}

TEST(PlanDagTest, VersionAndEpochSplitScanIdentity) {
  Table a = MakeTriple("A", 10, 1);
  PlanDag dag;
  PlanNodeId v1 = dag.InternTableScan("A", a, 1, 5);
  PlanNodeId v2 = dag.InternTableScan("A", a, 2, 5);  // extent rewritten
  PlanNodeId e2 = dag.InternTableScan("A", a, 1, 6);  // new batch epoch
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, e2);
  EXPECT_NE(v2, e2);
}

TEST(PlanDagTest, NumUsesCountsParentEdges) {
  Table a = MakeTriple("A", 10, 1);
  Table b = MakeTriple("B", 10, 2);
  PlanDag dag;
  PlanNodeId scan_a = dag.InternTableScan("A", a, 0, 0);
  PlanNodeId scan_b = dag.InternTableScan("B", b, 0, 0);
  dag.InternHashJoin(scan_a, scan_b, JoinKeys{{"A_k"}, {"B_k"}});
  dag.InternFilter(scan_a, ValueAbove("A_v", 3));
  EXPECT_EQ(dag.node(scan_a).num_uses, 2);
  EXPECT_EQ(dag.node(scan_b).num_uses, 1);
}

TEST(PlanDagTest, RowsLeafPoisonsCacheability) {
  Rows batch = MakeRowsBatch("A", 10, 1);
  Table b = MakeTriple("B", 10, 2);
  PlanDag dag;
  PlanNodeId rows_leaf = dag.InternRowsScan(batch);
  PlanNodeId table_leaf = dag.InternTableScan("B", b, 0, 0);
  PlanNodeId join = dag.InternHashJoin(rows_leaf, table_leaf,
                                       JoinKeys{{"A_k"}, {"B_k"}});
  EXPECT_FALSE(dag.node(rows_leaf).cacheable);
  EXPECT_TRUE(dag.node(table_leaf).cacheable);
  EXPECT_FALSE(dag.node(join).cacheable);
}

TEST(SubplanCacheTest, ZeroBudgetAdmitsNothing) {
  SubplanCache cache(SubplanCacheOptions{/*byte_budget=*/0});
  auto rows = std::make_shared<const Rows>(MakeRowsBatch("A", 5, 1));
  cache.Insert("k", rows, 100.0);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.bytes_in_use, 0);
}

TEST(SubplanCacheTest, NegativeBudgetIsUnbounded) {
  SubplanCache cache(SubplanCacheOptions{/*byte_budget=*/-1});
  for (int i = 0; i < 50; ++i) {
    cache.Insert("k" + std::to_string(i),
                 std::make_shared<const Rows>(MakeRowsBatch("A", 20, i)), 1.0);
  }
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 50);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(SubplanCacheTest, EvictsCheapestToRecomputeFirst) {
  auto cheap = std::make_shared<const Rows>(MakeRowsBatch("A", 10, 1));
  auto costly = std::make_shared<const Rows>(MakeRowsBatch("B", 10, 2));
  int64_t each = ApproxRowsBytes(*cheap);
  // Room for two entries of this size, not three.
  SubplanCache cache(SubplanCacheOptions{2 * each + each / 2});
  cache.Insert("cheap", cheap, /*recompute_cost=*/10.0);
  cache.Insert("costly", costly, /*recompute_cost=*/1e6);
  cache.Insert("new", std::make_shared<const Rows>(MakeRowsBatch("C", 10, 3)),
               /*recompute_cost=*/500.0);
  EXPECT_EQ(cache.Lookup("cheap"), nullptr);   // evicted: lowest cost/byte
  EXPECT_NE(cache.Lookup("costly"), nullptr);  // survived pressure
  EXPECT_NE(cache.Lookup("new"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(SubplanCacheTest, LruBreaksCostTies) {
  auto mk = [](int seed) {
    return std::make_shared<const Rows>(MakeRowsBatch("A", 10, seed));
  };
  int64_t each = ApproxRowsBytes(*mk(1));
  SubplanCache cache(SubplanCacheOptions{2 * each + each / 2});
  cache.Insert("first", mk(1), 1.0);
  cache.Insert("second", mk(2), 1.0);
  ASSERT_NE(cache.Lookup("first"), nullptr);  // refresh: "second" is now LRU
  cache.Insert("third", mk(3), 1.0);
  EXPECT_NE(cache.Lookup("first"), nullptr);
  EXPECT_EQ(cache.Lookup("second"), nullptr);
  EXPECT_NE(cache.Lookup("third"), nullptr);
}

TEST(SubplanCacheTest, HitAndMissCountersTrack) {
  SubplanCache cache;
  EXPECT_EQ(cache.Lookup("absent"), nullptr);
  cache.Insert("k", std::make_shared<const Rows>(MakeRowsBatch("A", 5, 1)),
               1.0);
  EXPECT_NE(cache.Lookup("k"), nullptr);
  SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

// The executor over a plan must produce exactly what the eager operators
// produce, and charge the same operator stats when no cache is attached.
TEST(PlanExecutorTest, MatchesEagerOperatorsWithoutCache) {
  Table a = MakeTriple("A", 30, 1);
  Table b = MakeTriple("B", 40, 2);
  ScalarExpr::Ptr pred = ValueAbove("B_v", 20);
  JoinKeys keys{{"A_k"}, {"B_k"}};

  OperatorStats eager_stats;
  Rows eager = HashJoin(Rows::FromTable(a),
                        Filter(Rows::FromTable(b), pred, &eager_stats), keys,
                        &eager_stats);

  PlanDag dag;
  PlanNodeId root = dag.InternHashJoin(
      dag.InternTableScan("A", a, 0, 0),
      dag.InternFilter(dag.InternTableScan("B", b, 0, 0), pred), keys);
  OperatorStats plan_stats;
  PlanExecutor exec(dag, /*cache=*/nullptr);
  std::shared_ptr<const Rows> out = exec.Execute(root, &plan_stats);

  EXPECT_TRUE(ToTable(eager).ContentsEqual(ToTable(*out)));
  EXPECT_EQ(eager_stats, plan_stats);
}

TEST(PlanExecutorTest, CacheHitSkipsRecomputation) {
  Table a = MakeTriple("A", 30, 1);
  Table b = MakeTriple("B", 40, 2);
  JoinKeys keys{{"A_k"}, {"B_k"}};
  SubplanCache cache;

  auto run = [&](OperatorStats* stats) {
    PlanDag dag;
    PlanNodeId root = dag.InternHashJoin(dag.InternTableScan("A", a, 0, 0),
                                         dag.InternTableScan("B", b, 0, 0),
                                         keys);
    AnnotatePlanCardinality(&dag);
    PlanExecutor exec(dag, &cache);
    return *exec.Execute(root, stats);
  };

  OperatorStats cold, warm;
  Rows first = run(&cold);
  Rows second = run(&warm);  // a fresh DAG, same fingerprints

  EXPECT_TRUE(ToTable(first).ContentsEqual(ToTable(second)));
  EXPECT_GT(cold.subplan_cache_misses, 0);
  EXPECT_EQ(cold.subplan_cache_hits, 0);
  EXPECT_EQ(warm.subplan_cache_hits, 1);  // root served whole
  EXPECT_EQ(warm.rows_scanned, 0);        // nothing re-joined
}

TEST(PlanExecutorTest, PrepareSharedMaterializesSharedNodesOnce) {
  Table a = MakeTriple("A", 30, 1);
  Table b = MakeTriple("B", 40, 2);
  Table c = MakeTriple("C", 20, 3);
  JoinKeys ab{{"A_k"}, {"B_k"}};
  JoinKeys ac{{"A_k"}, {"C_k"}};

  // Two roots sharing the A⋈B prefix... no: sharing the scan of A and the
  // join A⋈B as a whole via a filter variant.
  PlanDag dag;
  PlanNodeId join_ab = dag.InternHashJoin(dag.InternTableScan("A", a, 0, 0),
                                          dag.InternTableScan("B", b, 0, 0),
                                          ab);
  PlanNodeId root1 = dag.InternFilter(join_ab, ValueAbove("A_v", 10));
  PlanNodeId root2 = dag.InternHashJoin(join_ab,
                                        dag.InternTableScan("C", c, 0, 0), ac);
  ASSERT_EQ(dag.node(join_ab).num_uses, 2);
  AnnotatePlanCardinality(&dag);

  SubplanCache cache;
  PlanExecutor exec(dag, &cache);
  OperatorStats prep, s1, s2;
  exec.PrepareShared({root1, root2}, &prep);
  Rows r1 = *exec.Execute(root1, &s1);
  Rows r2 = *exec.Execute(root2, &s2);

  // The shared join ran once, during the pre-pass; the roots only paid for
  // their own operator over the memoized input.
  EXPECT_GT(prep.rows_scanned, 0);
  OperatorStats eager1, eager2;
  Rows expect1 = Filter(HashJoin(Rows::FromTable(a), Rows::FromTable(b), ab,
                                 &eager1),
                        ValueAbove("A_v", 10), &eager1);
  Rows expect2 = HashJoin(HashJoin(Rows::FromTable(a), Rows::FromTable(b), ab,
                                   &eager2),
                          Rows::FromTable(c), ac, &eager2);
  EXPECT_TRUE(ToTable(expect1).ContentsEqual(ToTable(r1)));
  EXPECT_TRUE(ToTable(expect2).ContentsEqual(ToTable(r2)));
  EXPECT_LT(s1.rows_scanned + s2.rows_scanned,
            eager1.rows_scanned + eager2.rows_scanned);
}

// Lowering a view definition must still emit the historical operator
// sequence: BuildJoinPlan + execute == EvalJoinPipeline.
TEST(PlanPipelineTest, BuildJoinPlanMatchesEvalJoinPipeline) {
  auto def = testutil::SpjTripleView("V", {"A", "B"}, /*with_filter=*/true);
  Table a = MakeTriple("A", 25, 4);
  Table b = MakeTriple("B", 35, 5);

  OperatorStats eager_stats;
  std::vector<Rows> inputs;
  inputs.push_back(Rows::FromTable(a));
  inputs.push_back(Rows::FromTable(b));
  Rows eager = EvalJoinPipeline(*def, std::move(inputs), &eager_stats);

  PlanDag dag;
  std::vector<PlanNodeId> leaves = {dag.InternTableScan("A", a, 0, 0),
                                    dag.InternTableScan("B", b, 0, 0)};
  PlanNodeId root = BuildJoinPlan(*def, leaves, &dag);
  OperatorStats plan_stats;
  PlanExecutor exec(dag, nullptr);
  Rows from_plan = *exec.Execute(root, &plan_stats);

  EXPECT_TRUE(ToTable(eager).ContentsEqual(ToTable(from_plan)));
  EXPECT_EQ(eager_stats, plan_stats);
}

TEST(PlanCardinalityTest, AnnotationsAreMonotoneUpTheDag) {
  Table a = MakeTriple("A", 100, 6);
  Table b = MakeTriple("B", 50, 7);
  PlanDag dag;
  PlanNodeId scan_a = dag.InternTableScan("A", a, 0, 0);
  PlanNodeId filt = dag.InternFilter(scan_a, ValueAbove("A_v", 50));
  PlanNodeId join = dag.InternHashJoin(filt, dag.InternTableScan("B", b, 0, 0),
                                       JoinKeys{{"A_k"}, {"B_k"}});
  AnnotatePlanCardinality(&dag);

  EXPECT_EQ(dag.node(scan_a).est_output_rows, a.cardinality());
  EXPECT_LT(dag.node(filt).est_output_rows, dag.node(scan_a).est_output_rows);
  EXPECT_GT(dag.node(filt).est_output_rows, 0);
  // Recompute cost accumulates: rebuilding the join costs more than
  // rebuilding either input subtree.
  EXPECT_GT(dag.node(join).est_recompute_cost,
            dag.node(filt).est_recompute_cost);
}

}  // namespace
}  // namespace wuw
