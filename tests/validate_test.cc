#include <gtest/gtest.h>

#include "test_util.h"
#include "tpcd/tpcd_views.h"
#include "view/validate.h"

namespace wuw {
namespace {

using testutil::TripleSchema;

ViewDefinition::SchemaResolver TripleResolver() {
  return [](const std::string& name) -> const Schema& {
    static std::unordered_map<std::string, Schema> schemas;
    auto it = schemas.find(name);
    if (it == schemas.end()) {
      it = schemas.emplace(name, TripleSchema(name)).first;
    }
    return it->second;
  };
}

TEST(ValidateTest, CleanDefinitionsPass) {
  EXPECT_EQ(ValidateDefinition(*testutil::SpjTripleView("V", {"A", "B"}),
                               TripleResolver()),
            "");
  EXPECT_EQ(ValidateDefinition(*testutil::AggTripleView("V", {"A", "B"}),
                               TripleResolver()),
            "");
}

TEST(ValidateTest, WholeTpcdVdagIsClean) {
  EXPECT_EQ(ValidateVdag(tpcd::BuildTpcdVdag()), "");
}

TEST(ValidateTest, AllTestFixturesAreClean) {
  EXPECT_EQ(ValidateVdag(testutil::MakeFig3Vdag()), "");
  EXPECT_EQ(ValidateVdag(testutil::MakeFig10Vdag()), "");
  EXPECT_EQ(ValidateVdag(testutil::MakeStarVdag("V", 4, true)), "");
}

TEST(ValidateTest, DetectsUnknownFilterColumn) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .Where(ScalarExpr::Column("nope"))
                 .SelectColumn("A_k", "k")
                 .Build();
  std::string err = ValidateDefinition(*def, TripleResolver());
  EXPECT_NE(err.find("nope"), std::string::npos);
  EXPECT_NE(err.find("WHERE"), std::string::npos);
}

TEST(ValidateTest, DetectsUnknownProjectionColumn) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .Select(ScalarExpr::Column("ghost"), "g")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("ghost"),
            std::string::npos);
}

TEST(ValidateTest, DetectsUnknownJoinColumn) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")
                 .JoinOn("A_k", "Z_k")
                 .SelectColumn("A_k", "k")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("Z_k"),
            std::string::npos);
}

TEST(ValidateTest, DetectsSameSourceJoin) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")
                 .JoinOn("A_k", "A_g")
                 .SelectColumn("A_k", "k")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("span"),
            std::string::npos);
}

TEST(ValidateTest, DetectsColumnCollisionAcrossSources) {
  // Two sources exposing the same column name.
  auto resolver = [](const std::string& name) -> const Schema& {
    static Schema s({{"k", TypeId::kInt64}});
    (void)name;
    return s;
  };
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")
                 .SelectColumn("k", "k")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, resolver).find("more than one source"),
            std::string::npos);
}

TEST(ValidateTest, DetectsDuplicateOutputNames) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .SelectColumn("A_k", "x")
                 .SelectColumn("A_g", "x")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("duplicate"),
            std::string::npos);
}

TEST(ValidateTest, DetectsReservedAggregateName) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .SelectColumn("A_g", "g")
                 .Count("__count")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("reserved"),
            std::string::npos);
}

TEST(ValidateTest, DetectsDuplicateSumName) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .SelectColumn("A_g", "g")
                 .Sum(ScalarExpr::Column("A_v"), "g")
                 .Build();
  EXPECT_NE(ValidateDefinition(*def, TripleResolver()).find("duplicate"),
            std::string::npos);
}

}  // namespace
}  // namespace wuw
