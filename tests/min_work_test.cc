#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/exhaustive.h"
#include "core/min_work.h"
#include "core/min_work_single.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

SizeMap RandomSizes(const Vdag& vdag, uint64_t seed) {
  tpcd::Rng rng(seed);
  SizeMap sizes;
  for (const std::string& name : vdag.view_names()) {
    int64_t size = rng.Range(50, 500);
    int64_t minus = rng.Range(0, size / 3);
    int64_t plus = rng.Range(0, size / 3);
    sizes.Set(name, {size, plus + minus, plus - minus});
  }
  return sizes;
}

TEST(MinWorkTest, ProducesCorrectOneWayStrategy) {
  Vdag vdag = testutil::MakeFig3Vdag();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    MinWorkResult r = MinWork(vdag, sizes);
    EXPECT_TRUE(CheckVdagStrategy(vdag, r.strategy).ok)
        << r.strategy.ToString();
    for (const Expression& e : r.strategy.expressions()) {
      if (e.is_comp()) {
        EXPECT_EQ(e.over.size(), 1u);
      }
    }
  }
}

TEST(MinWorkTest, TreeVdagNeverNeedsModifiedOrdering) {
  Vdag vdag = testutil::MakeFig3Vdag();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    MinWorkResult r = MinWork(vdag, RandomSizes(vdag, seed));
    EXPECT_FALSE(r.used_modified_ordering);
  }
}

TEST(MinWorkTest, UniformVdagNeverNeedsModifiedOrdering) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    MinWorkResult r = MinWork(vdag, RandomSizes(vdag, seed));
    EXPECT_FALSE(r.used_modified_ordering);
    EXPECT_TRUE(CheckVdagStrategy(vdag, r.strategy).ok);
  }
}

TEST(MinWorkTest, Fig10AlwaysProducesSomeCorrectStrategy) {
  // Theorem 5.5: even when the desired ordering's EG is cyclic, MinWork
  // succeeds via ModifyOrdering.
  Vdag vdag = testutil::MakeFig10Vdag();
  int modified = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    MinWorkResult r = MinWork(vdag, RandomSizes(vdag, seed));
    EXPECT_TRUE(CheckVdagStrategy(vdag, r.strategy).ok);
    if (r.used_modified_ordering) ++modified;
  }
  // Some seeds must trigger the cyclic case (the problem VDAG exists for
  // exactly this reason).
  EXPECT_GT(modified, 0);
}

// Theorem 5.2/5.4: on tree/uniform VDAGs MinWork is optimal over ALL
// correct VDAG strategies (validated by brute force on a small tree VDAG).
TEST(MinWorkTest, OptimalOnSmallTreeVdagByBruteForce) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  vdag.AddDerivedView(testutil::SpjTripleView("V", {"A", "B"}));

  for (uint64_t seed = 1; seed <= 15; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    MinWorkResult r = MinWork(vdag, sizes);
    double mw = EstimateStrategyWork(vdag, r.strategy, sizes, {}).total;

    auto all = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/false,
                                                 /*limit=*/100000);
    EvaluatedStrategy best = BestOf(vdag, all, sizes);
    EXPECT_NEAR(mw, best.work, 1e-9)
        << "seed=" << seed << "\nMinWork: " << r.strategy.ToString()
        << "\nBest:    " << best.strategy.ToString();
  }
}

TEST(MinWorkTest, OptimalOnFig3ByOneWayBruteForce) {
  Vdag vdag = testutil::MakeFig3Vdag();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SizeMap sizes = RandomSizes(vdag, seed);
    MinWorkResult r = MinWork(vdag, sizes);
    double mw = EstimateStrategyWork(vdag, r.strategy, sizes, {}).total;
    auto one_way = EnumerateAllCorrectVdagStrategies(vdag, /*one_way_only=*/true,
                                                     /*limit=*/2000000);
    EvaluatedStrategy best = BestOf(vdag, one_way, sizes);
    EXPECT_NEAR(mw, best.work, 1e-9) << "seed=" << seed;
  }
}

TEST(MinWorkTest, OrderingMatchesDesiredOnAcyclicCase) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  SizeMap sizes = RandomSizes(vdag, 3);
  MinWorkResult r = MinWork(vdag, sizes);
  EXPECT_EQ(r.ordering, DesiredViewOrdering(vdag.view_names(), sizes));
}

}  // namespace
}  // namespace wuw
