// Shared fixtures: small deterministic warehouses and VDAGs used across
// the test suite.
//
// Every view in the "uniform family" exposes the column triple
// (<name>_k : key, <name>_v : value, <name>_g : small group id), which lets
// tests compose derived-over-derived definitions mechanically.
#ifndef WUW_TESTS_TEST_UTIL_H_
#define WUW_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/warehouse.h"
#include "graph/vdag.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_generator.h"
#include "view/view_definition.h"

namespace wuw {
namespace testutil {

/// The effective seed for a property/fuzz suite: `WUW_SEED` if set (so a
/// nightly or a repro run can redirect every randomized suite from one
/// knob), else `default_seed` (fixed, so PR CI is deterministic).
inline uint64_t PropertySeed(uint64_t default_seed) {
  const char* env = std::getenv("WUW_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// One-command repro line for gtest failure output.  Use as
/// `SCOPED_TRACE(testutil::SeedTrace(seed));` so every assertion that
/// fails under this seed prints how to rerun it.
inline std::string SeedTrace(uint64_t seed) {
  return "repro: WUW_SEED=" + std::to_string(seed) +
         " (effective generator seed " + std::to_string(seed) + ")";
}

/// Builds a random VDAG over `num_bases` base views and `num_derived`
/// derived views.  Every view follows the triple-column convention, so
/// derived-over-derived definitions compose mechanically.  At most one
/// aggregate source per definition (two would collide on __count).
inline Vdag RandomVdag(tpcd::Rng* rng, size_t num_bases, size_t num_derived);

/// Schema (name_k INT, name_v INT, name_g INT).
inline Schema TripleSchema(const std::string& name) {
  return Schema({{name + "_k", TypeId::kInt64},
                 {name + "_v", TypeId::kInt64},
                 {name + "_g", TypeId::kInt64}});
}

/// Fills a triple-schema table with `rows` rows: keys 1..rows (with the
/// multiples of `hole_every` skipped so joins have selectivity), values
/// pseudorandom, groups in 0..4.
inline void FillTriple(Table* table, int64_t rows, uint64_t seed,
                       int64_t hole_every = 0) {
  tpcd::Rng rng(seed);
  for (int64_t k = 1; k <= rows; ++k) {
    if (hole_every > 0 && k % hole_every == 0) continue;
    table->Add(Tuple({Value::Int64(k), Value::Int64(rng.Range(0, 99)),
                      Value::Int64(k % 5)}),
               1);
  }
}

/// SPJ view `name` over `sources` (all triple-schema): joins all sources on
/// their _k columns, sums their _v columns, keeps the first source's group.
inline std::shared_ptr<const ViewDefinition> SpjTripleView(
    const std::string& name, const std::vector<std::string>& sources,
    bool with_filter = false) {
  ViewDefinitionBuilder b(name);
  for (const std::string& s : sources) b.From(s);
  for (size_t i = 1; i < sources.size(); ++i) {
    b.JoinOn(sources[0] + "_k", sources[i] + "_k");
  }
  if (with_filter) {
    b.Where(ScalarExpr::Compare(CompareOp::kNe,
                                ScalarExpr::Column(sources[0] + "_v"),
                                ScalarExpr::Literal(Value::Int64(0))));
  }
  ScalarExpr::Ptr vsum = ScalarExpr::Column(sources[0] + "_v");
  for (size_t i = 1; i < sources.size(); ++i) {
    vsum = ScalarExpr::Arith(ArithOp::kAdd, vsum,
                             ScalarExpr::Column(sources[i] + "_v"));
  }
  b.Select(ScalarExpr::Column(sources[0] + "_k"), name + "_k")
      .Select(vsum, name + "_v")
      .Select(ScalarExpr::Column(sources[0] + "_g"), name + "_g");
  return b.Build();
}

/// Aggregate view `name` over `sources`: joins on _k, groups by the first
/// source's _g (exposed as both name_k and name_g so the triple convention
/// holds), SUM of the _v total as name_v.
inline std::shared_ptr<const ViewDefinition> AggTripleView(
    const std::string& name, const std::vector<std::string>& sources) {
  ViewDefinitionBuilder b(name);
  for (const std::string& s : sources) b.From(s);
  for (size_t i = 1; i < sources.size(); ++i) {
    b.JoinOn(sources[0] + "_k", sources[i] + "_k");
  }
  ScalarExpr::Ptr vsum = ScalarExpr::Column(sources[0] + "_v");
  for (size_t i = 1; i < sources.size(); ++i) {
    vsum = ScalarExpr::Arith(ArithOp::kAdd, vsum,
                             ScalarExpr::Column(sources[i] + "_v"));
  }
  b.Select(ScalarExpr::Column(sources[0] + "_g"), name + "_k")
      .Select(ScalarExpr::Arith(ArithOp::kMul,
                                ScalarExpr::Column(sources[0] + "_g"),
                                ScalarExpr::Literal(Value::Int64(1))),
              name + "_g")
      .Sum(vsum, name + "_v");
  return b.Build();
}

inline Vdag RandomVdag(tpcd::Rng* rng, size_t num_bases, size_t num_derived) {
  Vdag vdag;
  std::vector<std::string> pool;          // candidate sources
  std::vector<bool> is_aggregate_view;    // parallel to pool
  for (size_t i = 0; i < num_bases; ++i) {
    std::string name = "B" + std::to_string(i);
    vdag.AddBaseView(name, TripleSchema(name));
    pool.push_back(name);
    is_aggregate_view.push_back(false);
  }
  for (size_t i = 0; i < num_derived; ++i) {
    std::string name = "D" + std::to_string(i);
    size_t fanin = 1 + rng->Below(std::min<size_t>(3, pool.size()));
    std::vector<std::string> sources;
    bool has_aggregate_source = false;
    while (sources.size() < fanin) {
      size_t pick = rng->Below(pool.size());
      if (std::find(sources.begin(), sources.end(), pool[pick]) !=
          sources.end()) {
        continue;
      }
      if (is_aggregate_view[pick]) {
        if (has_aggregate_source) continue;
        has_aggregate_source = true;
      }
      sources.push_back(pool[pick]);
    }
    bool aggregate = rng->Below(3) == 0;
    vdag.AddDerivedView(aggregate
                            ? AggTripleView(name, sources)
                            : SpjTripleView(name, sources,
                                            /*with_filter=*/rng->Below(2)));
    pool.push_back(name);
    is_aggregate_view.push_back(aggregate);
  }
  return vdag;
}

/// The paper's Figure 3 shape: base A, B, C; V4 = B ⋈ C (SPJ);
/// V5 = aggregate over A and V4.
inline Vdag MakeFig3Vdag(bool v4_aggregate = false) {
  Vdag vdag;
  vdag.AddBaseView("A", TripleSchema("A"));
  vdag.AddBaseView("B", TripleSchema("B"));
  vdag.AddBaseView("C", TripleSchema("C"));
  if (v4_aggregate) {
    vdag.AddDerivedView(AggTripleView("V4", {"B", "C"}));
  } else {
    vdag.AddDerivedView(SpjTripleView("V4", {"B", "C"}));
  }
  vdag.AddDerivedView(AggTripleView("V5", {"A", "V4"}));
  return vdag;
}

/// The paper's Figure 10 "problem VDAG": V4 over {V2,V3}, V5 over
/// {V1,V2,V4} (V2 feeds both, V5 spans levels — neither tree nor uniform).
inline Vdag MakeFig10Vdag() {
  Vdag vdag;
  vdag.AddBaseView("V1", TripleSchema("V1"));
  vdag.AddBaseView("V2", TripleSchema("V2"));
  vdag.AddBaseView("V3", TripleSchema("V3"));
  vdag.AddDerivedView(SpjTripleView("V4", {"V2", "V3"}));
  vdag.AddDerivedView(SpjTripleView("V5", {"V1", "V2", "V4"}));
  return vdag;
}

/// A single-view VDAG: derived `name` over the given base views.
inline Vdag MakeStarVdag(const std::string& name, size_t num_bases,
                         bool aggregate = false) {
  Vdag vdag;
  std::vector<std::string> bases;
  for (size_t i = 0; i < num_bases; ++i) {
    std::string base = "B" + std::to_string(i);
    vdag.AddBaseView(base, TripleSchema(base));
    bases.push_back(base);
  }
  vdag.AddDerivedView(aggregate ? AggTripleView(name, bases)
                                : SpjTripleView(name, bases));
  return vdag;
}

/// Loads every base view of `vdag` with triple data and materializes the
/// derived views.  Different tables get different sizes/holes so strategy
/// costs are asymmetric.
inline Warehouse MakeLoadedWarehouse(Vdag vdag, int64_t base_rows,
                                     uint64_t seed) {
  Warehouse w(std::move(vdag));
  int64_t rows = base_rows;
  uint64_t s = seed;
  for (const std::string& name : w.vdag().BaseViews()) {
    FillTriple(w.base_table(name), rows, ++s, /*hole_every=*/7);
    rows = rows * 3 / 2 + 5;  // size asymmetry across base views
  }
  w.RecomputeDerived();
  return w;
}

/// Applies a deterministic mixed change batch to every base view:
/// `delete_fraction` of rows deleted plus `insert_rows` fresh rows.
inline void ApplyTripleChanges(Warehouse* w, double delete_fraction,
                               int64_t insert_rows, uint64_t seed) {
  uint64_t s = seed;
  for (const std::string& name : w->vdag().BaseViews()) {
    const Table& table = *w->catalog().MustGetTable(name);
    DeltaRelation delta =
        tpcd::MakeDeletionDelta(table, delete_fraction, ++s);
    tpcd::Rng rng(s ^ 0xABCD);
    for (int64_t i = 0; i < insert_rows; ++i) {
      // Fresh keys above any existing key; also re-insert into existing
      // keys occasionally to exercise multiset semantics.
      int64_t k = rng.Below(4) == 0 ? rng.Range(1, 50)
                                    : 1000000 + rng.Range(1, 10000);
      delta.Add(Tuple({Value::Int64(k), Value::Int64(rng.Range(0, 99)),
                       Value::Int64(k % 5)}),
                1);
    }
    w->SetBaseDelta(name, std::move(delta));
  }
}

/// Recomputes all derived views from scratch on a clone and returns the
/// clone's catalog — the ground-truth final state for convergence tests.
inline Catalog GroundTruthAfterChanges(const Warehouse& w) {
  Warehouse clone = w.Clone();
  // Install base deltas directly, then recompute derived views.  Mutate
  // through base_table (version bump + copy-on-write detach) so an armed
  // clone keeps its published snapshot frozen and passes the publish audit.
  for (const std::string& name : clone.vdag().BaseViews()) {
    const DeltaRelation& delta = clone.base_delta(name);
    Table* table = clone.base_table(name);
    delta.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
  }
  clone.RecomputeDerived();
  return std::move(clone.catalog());
}

}  // namespace testutil
}  // namespace wuw

#endif  // WUW_TESTS_TEST_UTIL_H_
