// Randomized differential test of the dense-vector Table against a simple
// reference multiset (std::map<Tuple,int64>).  The swap-erase + hash-index
// bookkeeping in Table::Add is the most delicate code in storage/; this
// hammers it with mixed insert/delete/over-delete traffic.
#include <gtest/gtest.h>

#include <map>

#include "storage/table.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

struct Reference {
  std::map<Tuple, int64_t> rows;
  int64_t cardinality = 0;

  int64_t Add(const Tuple& t, int64_t count) {
    int64_t& cur = rows[t];
    int64_t before = cur;
    int64_t after = before + count;
    if (before == 0 && count <= 0) after = 0;  // clamp on absent
    if (after <= 0) after = 0;
    cardinality += after - before;
    cur = after;
    if (cur == 0) rows.erase(t);
    return after;
  }

  int64_t Count(const Tuple& t) const {
    auto it = rows.find(t);
    return it == rows.end() ? 0 : it->second;
  }
};

Tuple MakeTuple(tpcd::Rng* rng, int64_t key_space) {
  return Tuple({Value::Int64(rng->Range(0, key_space - 1)),
                Value::String(std::to_string(rng->Range(0, 3))),
                Value::Int64(rng->Range(0, 1))});
}

Schema FuzzSchema() {
  return Schema({{"k", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"g", TypeId::kInt64}});
}

class TableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableFuzzTest, MatchesReferenceUnderRandomTraffic) {
  tpcd::Rng rng(GetParam());
  Table table(FuzzSchema());
  Reference ref;

  for (int step = 0; step < 20000; ++step) {
    Tuple t = MakeTuple(&rng, /*key_space=*/200);
    int64_t count;
    switch (rng.Below(5)) {
      case 0:
        count = rng.Range(1, 3);  // small insert
        break;
      case 1:
        count = -rng.Range(1, 3);  // small delete
        break;
      case 2:
        count = rng.Range(1, 50);  // bulk insert
        break;
      case 3:
        count = -rng.Range(1, 50);  // bulk / over-delete
        break;
      default:
        count = -ref.Count(t);  // exact removal (no-op if absent)
        if (count == 0) count = 1;
        break;
    }
    int64_t got = table.Add(t, count);
    int64_t want = ref.Add(t, count);
    ASSERT_EQ(got, want) << "step " << step << " tuple " << t.ToString()
                         << " count " << count;
    if (step % 512 == 0) {
      ASSERT_EQ(table.cardinality(), ref.cardinality) << "step " << step;
      ASSERT_EQ(table.distinct_size(), ref.rows.size()) << "step " << step;
    }
  }

  // Full content comparison at the end.
  ASSERT_EQ(table.cardinality(), ref.cardinality);
  ASSERT_EQ(table.distinct_size(), ref.rows.size());
  table.ForEach([&](const Tuple& t, int64_t c) {
    ASSERT_EQ(ref.Count(t), c) << t.ToString();
  });
  // Point lookups agree for present and absent tuples.
  tpcd::Rng probe_rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 1000; ++i) {
    Tuple t = MakeTuple(&probe_rng, 400);  // half outside the key space
    ASSERT_EQ(table.Count(t), ref.Count(t));
  }
  // SortedRows is sorted and complete.
  auto sorted = table.SortedRows();
  ASSERT_EQ(sorted.size(), ref.rows.size());
  for (size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_TRUE(sorted[i - 1].first < sorted[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(TableFuzzTest, ClearResetsEverything) {
  tpcd::Rng rng(7);
  Table table(FuzzSchema());
  for (int i = 0; i < 100; ++i) table.Add(MakeTuple(&rng, 50), 1);
  table.Clear();
  EXPECT_EQ(table.cardinality(), 0);
  EXPECT_EQ(table.distinct_size(), 0u);
  // Reusable after Clear.
  Tuple t = MakeTuple(&rng, 50);
  table.Add(t, 2);
  EXPECT_EQ(table.Count(t), 2);
}

TEST(TableFuzzTest, HashCollisionsHandled) {
  // Force many rows into the same table via a tiny key space so hash
  // buckets chain; equality must still discriminate.
  Table table(Schema({{"k", TypeId::kInt64}}));
  for (int64_t k = 0; k < 1000; ++k) {
    table.Add(Tuple({Value::Int64(k)}), 1);
  }
  for (int64_t k = 0; k < 1000; k += 2) {
    table.Add(Tuple({Value::Int64(k)}), -1);
  }
  EXPECT_EQ(table.cardinality(), 500);
  for (int64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(table.Count(Tuple({Value::Int64(k)})), k % 2 == 1 ? 1 : 0);
  }
}

}  // namespace
}  // namespace wuw
