// Randomized differential test of the dense-vector Table against a simple
// reference multiset (std::map<Tuple,int64>).  The swap-erase + hash-index
// bookkeeping in Table::Add is the most delicate code in storage/; this
// hammers it with mixed insert/delete/over-delete traffic.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "plan/subplan_cache.h"
#include "storage/table.h"
#include "test_util.h"
#include "tpcd/tpcd_generator.h"

namespace wuw {
namespace {

struct Reference {
  std::map<Tuple, int64_t> rows;
  int64_t cardinality = 0;

  int64_t Add(const Tuple& t, int64_t count) {
    int64_t& cur = rows[t];
    int64_t before = cur;
    int64_t after = before + count;
    if (before == 0 && count <= 0) after = 0;  // clamp on absent
    if (after <= 0) after = 0;
    cardinality += after - before;
    cur = after;
    if (cur == 0) rows.erase(t);
    return after;
  }

  int64_t Count(const Tuple& t) const {
    auto it = rows.find(t);
    return it == rows.end() ? 0 : it->second;
  }
};

Tuple MakeTuple(tpcd::Rng* rng, int64_t key_space) {
  return Tuple({Value::Int64(rng->Range(0, key_space - 1)),
                Value::String(std::to_string(rng->Range(0, 3))),
                Value::Int64(rng->Range(0, 1))});
}

Schema FuzzSchema() {
  return Schema({{"k", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"g", TypeId::kInt64}});
}

class TableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableFuzzTest, MatchesReferenceUnderRandomTraffic) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Table table(FuzzSchema());
  Reference ref;

  for (int step = 0; step < 20000; ++step) {
    Tuple t = MakeTuple(&rng, /*key_space=*/200);
    int64_t count;
    switch (rng.Below(5)) {
      case 0:
        count = rng.Range(1, 3);  // small insert
        break;
      case 1:
        count = -rng.Range(1, 3);  // small delete
        break;
      case 2:
        count = rng.Range(1, 50);  // bulk insert
        break;
      case 3:
        count = -rng.Range(1, 50);  // bulk / over-delete
        break;
      default:
        count = -ref.Count(t);  // exact removal (no-op if absent)
        if (count == 0) count = 1;
        break;
    }
    int64_t got = table.Add(t, count);
    int64_t want = ref.Add(t, count);
    ASSERT_EQ(got, want) << "step " << step << " tuple " << t.ToString()
                         << " count " << count;
    if (step % 512 == 0) {
      ASSERT_EQ(table.cardinality(), ref.cardinality) << "step " << step;
      ASSERT_EQ(table.distinct_size(), ref.rows.size()) << "step " << step;
    }
  }

  // Full content comparison at the end.
  ASSERT_EQ(table.cardinality(), ref.cardinality);
  ASSERT_EQ(table.distinct_size(), ref.rows.size());
  table.ForEach([&](const Tuple& t, int64_t c) {
    ASSERT_EQ(ref.Count(t), c) << t.ToString();
  });
  // Point lookups agree for present and absent tuples.
  tpcd::Rng probe_rng(seed ^ 0xF00D);
  for (int i = 0; i < 1000; ++i) {
    Tuple t = MakeTuple(&probe_rng, 400);  // half outside the key space
    ASSERT_EQ(table.Count(t), ref.Count(t));
  }
  // SortedRows is sorted and complete.
  auto sorted = table.SortedRows();
  ASSERT_EQ(sorted.size(), ref.rows.size());
  for (size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_TRUE(sorted[i - 1].first < sorted[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(TableFuzzTest, ClearResetsEverything) {
  tpcd::Rng rng(7);
  Table table(FuzzSchema());
  for (int i = 0; i < 100; ++i) table.Add(MakeTuple(&rng, 50), 1);
  table.Clear();
  EXPECT_EQ(table.cardinality(), 0);
  EXPECT_EQ(table.distinct_size(), 0u);
  // Reusable after Clear.
  Tuple t = MakeTuple(&rng, 50);
  table.Add(t, 2);
  EXPECT_EQ(table.Count(t), 2);
}

// Differential fuzz one level up the stack: the same fuzzed change batches
// run through the executor eagerly (no cache) and with subplan caches at
// budgets {0, 1MB, 256MB}; every round, every budget must land on extents
// bit-identical to the eager run (ContentsEqual is exact — the int64
// money/value columns make SUM states comparable without epsilon).
class ExecutorFuzzBatchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzzBatchTest, CacheBudgetsMatchEagerBitForBit) {
  const uint64_t seed = GetParam() + testutil::PropertySeed(0);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  tpcd::Rng rng(seed);
  Vdag vdag = testutil::RandomVdag(&rng, 3, 3);

  // One eager warehouse plus one clone per cache budget, evolving in
  // lockstep; each cache persists across rounds so epoch/version keying is
  // exercised, not just single-window reuse.
  const int64_t budgets[] = {0, 1 << 20, 256 << 20};
  Warehouse eager = testutil::MakeLoadedWarehouse(vdag, 40, seed * 31 + 1);
  std::vector<Warehouse> cached;
  std::vector<std::unique_ptr<SubplanCache>> caches;
  for (int64_t budget : budgets) {
    cached.push_back(eager.Clone());
    caches.push_back(
        std::make_unique<SubplanCache>(SubplanCacheOptions{budget}));
  }

  for (int round = 0; round < 6; ++round) {
    double delete_fraction = 0.05 * (1 + rng.Below(5));
    int64_t insert_rows = rng.Range(0, 20);
    uint64_t batch_seed = seed * 100 + round;
    testutil::ApplyTripleChanges(&eager, delete_fraction, insert_rows,
                                 batch_seed);
    for (Warehouse& w : cached) {
      testutil::ApplyTripleChanges(&w, delete_fraction, insert_rows,
                                   batch_seed);
    }

    Strategy s = (round % 2 == 0)
                     ? MinWork(vdag, eager.EstimatedSizes()).strategy
                     : MakeDualStageVdagStrategy(vdag);
    Executor(&eager).Execute(s);
    for (size_t i = 0; i < cached.size(); ++i) {
      ExecutorOptions options;
      options.subplan_cache = caches[i].get();
      Executor executor(&cached[i], options);
      executor.Execute(s);
      ASSERT_TRUE(cached[i].catalog().ContentsEqual(eager.catalog()))
          << "round " << round << " budget " << budgets[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzBatchTest,
                         ::testing::Values(301, 302, 303));

TEST(TableFuzzTest, HashCollisionsHandled) {
  // Force many rows into the same table via a tiny key space so hash
  // buckets chain; equality must still discriminate.
  Table table(Schema({{"k", TypeId::kInt64}}));
  for (int64_t k = 0; k < 1000; ++k) {
    table.Add(Tuple({Value::Int64(k)}), 1);
  }
  for (int64_t k = 0; k < 1000; k += 2) {
    table.Add(Tuple({Value::Int64(k)}), -1);
  }
  EXPECT_EQ(table.cardinality(), 500);
  for (int64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(table.Count(Tuple({Value::Int64(k)})), k % 2 == 1 ? 1 : 0);
  }
}

}  // namespace
}  // namespace wuw
