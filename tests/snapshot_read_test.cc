// Unit coverage for epoch-versioned snapshot reads (storage/read_snapshot
// + the Warehouse publish/pin/COW seam):
//
//   * disarmed = zero behavior change (live fallback, nothing published);
//   * armed handles pin exactly one committed state, frozen across any
//     live mutation (copy-on-write detach);
//   * commits happen ONLY at strategy completion (ResetBatch) and
//     RecomputeDerived — a budget-paused window stays invisible;
//   * the publish-time audit catches extent mutations that skipped
//     NoteExtentChanged (the snapshot-path extension of the stale-scan
//     oracle in subplan_cache_property_test);
//   * snapshot queries and RunReadSessions serve consistent results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "parallel/read_driver.h"
#include "query/ad_hoc.h"
#include "storage/read_snapshot.h"
#include "test_util.h"

namespace wuw {
namespace {

/// Fig3 warehouse with a pending mixed batch — the standard update-window
/// fixture.
Warehouse MakePendingWarehouse(uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50,
                                              seed);
  testutil::ApplyTripleChanges(&w, 0.2, 8, seed + 9);
  return w;
}

Tuple TripleRow(int64_t k, int64_t v) {
  return Tuple({Value::Int64(k), Value::Int64(v), Value::Int64(k % 5)});
}

TEST(SnapshotReadTest, DisarmedIsLiveFallbackWithZeroBehaviorChange) {
  if (EnvReaders() > 0) {
    GTEST_SKIP() << "WUW_READERS arms every warehouse at construction";
  }
  Warehouse w = MakePendingWarehouse(1);
  ASSERT_FALSE(w.snapshot_reads_armed());
  ReadSnapshot snap = w.OpenSnapshot();
  EXPECT_FALSE(snap.pinned());
  EXPECT_EQ(snap.commit_seq(), 0);
  EXPECT_EQ(snap.batch_epoch(), w.batch_epoch());
  EXPECT_TRUE(snap.ContentsEqual(w.catalog()));
  // Live mode serves the catalog's own table objects — no copies exist.
  EXPECT_EQ(snap.table("A"), w.catalog().MustGetTable("A"));
  // A live-mode handle tracks mutations (it is NOT isolated — exactly the
  // pre-snapshot, quiesced-reads regime).
  const int64_t before = snap.table("A")->cardinality();
  w.base_table("A")->Add(TripleRow(777001, 1), 1);
  EXPECT_EQ(snap.table("A")->cardinality(), before + 1);
}

TEST(SnapshotReadTest, ArmedHandlePinsOneCommittedState) {
  Warehouse w = MakePendingWarehouse(2);
  w.EnableSnapshotReads();
  ASSERT_TRUE(w.snapshot_reads_armed());

  ReadSnapshot a = w.OpenSnapshot();
  EXPECT_TRUE(a.pinned());
  EXPECT_GE(a.commit_seq(), 1);
  EXPECT_TRUE(a.ContentsEqual(w.catalog()));
  EXPECT_EQ(a.batch_epoch(), w.batch_epoch());
  EXPECT_EQ(a.table_names(), w.catalog().table_names());

  // No commit between two opens: identical pin.
  ReadSnapshot b = w.OpenSnapshot();
  EXPECT_EQ(b.commit_seq(), a.commit_seq());
  EXPECT_EQ(SnapshotFingerprint(b, 1 << 20), SnapshotFingerprint(a, 1 << 20));
}

TEST(SnapshotReadTest, CowDetachKeepsPinnedSnapshotFrozen) {
  Warehouse w = MakePendingWarehouse(3);
  w.EnableSnapshotReads();
  ReadSnapshot snap = w.OpenSnapshot();
  const Table* pinned = snap.table("A");
  const int64_t pinned_card = pinned->cardinality();
  const uint64_t pinned_fp = SnapshotFingerprint(snap, 1 << 20);

  // First post-publish mutation detaches a private copy for the live side.
  Table* live = w.base_table("A");
  EXPECT_NE(live, pinned) << "mutation did not copy-on-write-detach";
  live->Add(TripleRow(777002, 5), 1);
  live->Add(TripleRow(777003, 6), 1);

  EXPECT_EQ(pinned->cardinality(), pinned_card);
  EXPECT_EQ(snap.table("A"), pinned);
  EXPECT_EQ(SnapshotFingerprint(snap, 1 << 20), pinned_fp);
  EXPECT_EQ(w.catalog().MustGetTable("A")->cardinality(), pinned_card + 2);
  // The detach is per-publish, not per-mutation: the second access reuses
  // the already-detached extent.
  EXPECT_EQ(w.base_table("A"), live);
}

TEST(SnapshotReadTest, WindowCommitIsAtomicAtStrategyCompletion) {
  Warehouse w = MakePendingWarehouse(4);
  w.EnableSnapshotReads();
  const Catalog pre = w.catalog().Clone();
  const Catalog truth = testutil::GroundTruthAfterChanges(w);
  const Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  // Work budget that pauses after the first half of the steps.
  int64_t pause_work = 0;
  size_t n = 0;
  {
    Warehouse clone = w.Clone();
    ExecutionReport full = Executor(&clone).Execute(s);
    n = full.per_expression.size();
    ASSERT_GE(n, 2u);
    for (size_t i = 0; i < n / 2; ++i) {
      pause_work += full.per_expression[i].linear_work;
    }
  }

  ReadSnapshot before = w.OpenSnapshot();
  WindowBudget budget(WindowBudgetOptions{pause_work});
  ExecutorOptions options;
  options.budget = &budget;
  ExecutionReport r = Executor(&w, options).Execute(s);
  ASSERT_EQ(r.window_result, WindowResult::kPaused);

  // Mid-window: the live catalog holds installed prefixes, but readers
  // still get the pre-window commit — same seq, same contents.
  ReadSnapshot paused = w.OpenSnapshot();
  EXPECT_EQ(paused.commit_seq(), before.commit_seq());
  EXPECT_TRUE(paused.ContentsEqual(pre));
  // If the completed prefix installed anything, the live catalog diverged
  // from what readers see — the exact half-installed state being hidden.
  bool installed = false;
  for (int64_t i = 0; i < r.steps_completed; ++i) {
    installed = installed ||
                s.expressions()[static_cast<size_t>(i)].is_inst();
  }
  if (installed) {
    EXPECT_FALSE(paused.ContentsEqual(w.catalog()));
  }

  ExecutorOptions resume_options;
  ResumeReport resumed = ResumeStrategy(w.journal(), &w, resume_options,
                                        ResumeMode::kContinueInPlace);
  ASSERT_EQ(resumed.window_result, WindowResult::kCompleted);

  // Completion commits: one new snapshot with the full window applied.
  ReadSnapshot after = w.OpenSnapshot();
  EXPECT_GT(after.commit_seq(), before.commit_seq());
  EXPECT_TRUE(after.ContentsEqual(truth));
  // The handle opened before the window still serves the old state.
  EXPECT_TRUE(before.ContentsEqual(pre));
}

TEST(SnapshotReadTest, RecomputeDerivedPublishes) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              5);
  w.EnableSnapshotReads();
  ReadSnapshot before = w.OpenSnapshot();
  w.base_table("A")->Add(TripleRow(777004, 9), 1);
  w.RecomputeDerived();
  ReadSnapshot after = w.OpenSnapshot();
  EXPECT_GT(after.commit_seq(), before.commit_seq());
  EXPECT_TRUE(after.ContentsEqual(w.catalog()));
}

TEST(SnapshotReadTest, AuditFlagsUnbumpedMutationOnSnapshotPath) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              6);
  w.EnableSnapshotReads();
  ASSERT_TRUE(w.SnapshotAuditViolations().empty());

  // TestOnlyExtentNoVersionBump skips BOTH the version bump and the COW
  // detach: the smuggled row lands in the published table, visible to a
  // pinned handle — exactly the torn state the audit exists to catch.
  ReadSnapshot pinned = w.OpenSnapshot();
  const int64_t before = pinned.table("A")->cardinality();
  w.TestOnlyExtentNoVersionBump("A")->Add(TripleRow(777005, 3), 1);
  EXPECT_EQ(pinned.table("A")->cardinality(), before + 1)
      << "unbumped mutation should tear the published extent (that is the "
         "hazard)";

  std::vector<std::string> violations = w.SnapshotAuditViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], "A");

  // Bumping the version is the fix: the mutation is now accounted for.
  w.NoteExtentChanged("A");
  EXPECT_TRUE(w.SnapshotAuditViolations().empty());
  w.PublishSnapshot();  // must not abort
  EXPECT_TRUE(w.OpenSnapshot().ContentsEqual(w.catalog()));
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
TEST(SnapshotReadDeathTest, PublishAbortsOnUnbumpedMutationInDebug) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              7);
  w.EnableSnapshotReads();
  w.TestOnlyExtentNoVersionBump("A")->Add(TripleRow(777006, 3), 1);
  EXPECT_DEATH(w.PublishSnapshot(), "NoteExtentChanged");
}
#endif

TEST(SnapshotReadTest, CloneRepublishesItsOwnState) {
  Warehouse w = MakePendingWarehouse(8);
  w.EnableSnapshotReads();
  Warehouse clone = w.Clone();
  ASSERT_TRUE(clone.snapshot_reads_armed());
  ReadSnapshot snap = clone.OpenSnapshot();
  EXPECT_TRUE(snap.pinned());
  EXPECT_TRUE(snap.ContentsEqual(clone.catalog()));
  EXPECT_TRUE(snap.ContentsEqual(w.catalog()));

  // Independent publish timelines: mutating the clone leaves the
  // original's snapshot untouched, and vice versa.
  clone.base_table("A")->Add(TripleRow(777007, 2), 1);
  clone.RecomputeDerived();
  EXPECT_TRUE(w.OpenSnapshot().ContentsEqual(w.catalog()));
  EXPECT_FALSE(clone.OpenSnapshot().ContentsEqual(w.catalog()));
}

TEST(SnapshotReadTest, SnapshotQueriesAreStableAcrossMaintenance) {
  Warehouse w = MakePendingWarehouse(9);
  w.EnableSnapshotReads();
  const std::string sql = "SELECT V5_k, V5_v FROM V5";

  ReadSnapshot snap = w.OpenSnapshot();
  QueryResult before = ExecuteQuery(snap, sql);
  ASSERT_TRUE(before.ok()) << before.error;

  // Run the whole update window; the pinned handle must answer the same.
  Executor(&w).Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  QueryResult after = ExecuteQuery(snap, sql);
  ASSERT_TRUE(after.ok()) << after.error;
  ASSERT_EQ(after.rows.rows.size(), before.rows.rows.size());
  for (size_t i = 0; i < after.rows.rows.size(); ++i) {
    EXPECT_EQ(after.rows.rows[i].first, before.rows.rows[i].first);
    EXPECT_EQ(after.rows.rows[i].second, before.rows.rows[i].second);
  }
  // A fresh handle sees the committed window.
  QueryResult fresh = ExecuteQuery(w.OpenSnapshot(), sql);
  ASSERT_TRUE(fresh.ok()) << fresh.error;
  // Errors surface as strings, never aborts — same contract as the
  // warehouse overload.
  EXPECT_FALSE(ExecuteQuery(snap, "SELECT x FROM NO_SUCH").ok());
  EXPECT_FALSE(ExecuteQuery(snap, "SELECT nope FROM V5").ok());
}

TEST(SnapshotReadTest, ReadSessionsServeConsistentSnapshots) {
  Warehouse w = MakePendingWarehouse(10);
  w.EnableSnapshotReads();
  ReadSessionOptions options;
  options.sessions = 32;
  options.scans_per_session = 3;
  options.queries = {"SELECT A_k, A_v FROM A",
                     "SELECT V4_k, V4_v FROM V4",
                     "SELECT V5_k, V5_v FROM V5"};
  ReadSessionReport report = RunReadSessions(w, options);
  EXPECT_TRUE(report.ok()) << report.torn_reads << " torn, "
                           << report.epoch_regressions << " regressions, "
                           << report.query_errors << " errors";
  EXPECT_EQ(report.sessions, 32);
  EXPECT_EQ(report.queries, 32);
  EXPECT_GT(report.rows_read, 0);
  // Quiesced warehouse: every session pinned the same commit.
  EXPECT_EQ(report.min_commit_seq, report.max_commit_seq);
}

TEST(SnapshotReadTest, FingerprintDetectsCommittedChange) {
  Warehouse w = MakePendingWarehouse(11);
  w.EnableSnapshotReads();
  const uint64_t before = SnapshotFingerprint(w.OpenSnapshot(), 1 << 20);
  EXPECT_EQ(SnapshotFingerprint(w.OpenSnapshot(), 1 << 20), before);
  Executor(&w).Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  EXPECT_NE(SnapshotFingerprint(w.OpenSnapshot(), 1 << 20), before)
      << "the window changed every base view; the fingerprint must move";
}

}  // namespace
}  // namespace wuw
