#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/correctness.h"
#include "exec/executor.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

SizeMap UniformDeletionSizes(const Vdag& vdag) {
  SizeMap sizes;
  int64_t size = 100;
  for (const std::string& name : vdag.view_names()) {
    sizes.Set(name, {size, size / 10, -size / 10});
    size = size * 2 + 10;  // asymmetry
  }
  return sizes;
}

TEST(AdvisorTest, RanksMinWorkFirstOnUniformVdag) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  auto advice = Advise(vdag, UniformDeletionSizes(vdag));
  ASSERT_GE(advice.size(), 3u);
  // Winner is MinWork or Prune (equal work on a uniform VDAG).
  EXPECT_TRUE(advice[0].name == "MinWork" || advice[0].name == "Prune")
      << advice[0].name;
  EXPECT_DOUBLE_EQ(advice[0].relative_work, 1.0);
  // dual-stage is the most expensive candidate.
  EXPECT_EQ(advice.back().name, "dual-stage");
  EXPECT_GT(advice.back().relative_work, 1.5);
}

TEST(AdvisorTest, AllAdvicePassesCorrectness) {
  for (Vdag vdag : {testutil::MakeFig3Vdag(), testutil::MakeFig10Vdag(),
                    tpcd::BuildTpcdVdag({"Q3", "Q10"})}) {
    auto advice = Advise(vdag, UniformDeletionSizes(vdag));
    for (const StrategyAdvice& a : advice) {
      EXPECT_TRUE(CheckVdagStrategy(vdag, a.strategy).ok) << a.name;
    }
  }
}

TEST(AdvisorTest, SortedByEstimatedWork) {
  Vdag vdag = testutil::MakeFig10Vdag();
  auto advice = Advise(vdag, UniformDeletionSizes(vdag));
  for (size_t i = 1; i < advice.size(); ++i) {
    EXPECT_LE(advice[i - 1].estimated_work, advice[i].estimated_work);
    EXPECT_GE(advice[i].relative_work, 1.0);
  }
}

TEST(AdvisorTest, PruneSkippedWhenTooManyPermutableViews) {
  Vdag vdag = tpcd::BuildTpcdVdag();  // m = 6
  AdvisorOptions options;
  options.prune_max_permutable = 3;
  auto advice = Advise(vdag, UniformDeletionSizes(vdag), options);
  for (const StrategyAdvice& a : advice) {
    EXPECT_NE(a.name, "Prune");
  }
}

TEST(AdvisorTest, NotesExplainOptimality) {
  Vdag tree = testutil::MakeFig3Vdag();
  auto advice = Advise(tree, UniformDeletionSizes(tree));
  bool found = false;
  for (const StrategyAdvice& a : advice) {
    if (a.name == "MinWork") {
      EXPECT_NE(a.note.find("tree"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdvisorTest, TextReportContainsAllCandidates) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  auto advice = Advise(vdag, UniformDeletionSizes(vdag));
  std::string text = AdviceToText(advice);
  EXPECT_NE(text.find("MinWork"), std::string::npos);
  EXPECT_NE(text.find("dual-stage"), std::string::npos);
  EXPECT_NE(text.find("vs best"), std::string::npos);
}

TEST(AdvisorTest, WinnerExecutesAndConverges) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, 3);
  testutil::ApplyTripleChanges(&w, 0.2, 5, 7);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  auto advice = Advise(w.vdag(), w.EstimatedSizes());
  Executor executor(&w);
  executor.Execute(advice.front().strategy);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
