#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/vdag.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

TEST(DigraphTest, TopologicalSortRespectsPrerequisites) {
  Digraph g(4);
  g.AddEdge(1, 0);  // 1 after 0
  g.AddEdge(2, 1);
  g.AddEdge(3, 1);
  auto order = g.TopologicalSort();
  ASSERT_TRUE(order.has_value());
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
}

TEST(DigraphTest, DeterministicTieBreak) {
  Digraph g(3);  // no edges: expect 0,1,2
  auto order = g.TopologicalSort();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<size_t>{0, 1, 2}));
}

TEST(DigraphTest, DetectsCycle) {
  Digraph g(3);
  g.AddEdge(1, 0);
  g.AddEdge(2, 1);
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.TopologicalSort().has_value());
  auto cycle = g.FindCycle();
  EXPECT_EQ(cycle.size(), 3u);
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g(2);
  g.AddEdge(0, 0);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, AcyclicFindCycleEmpty) {
  Digraph g(3);
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.FindCycle().empty());
}

TEST(VdagTest, LevelsOfFig3) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EXPECT_EQ(vdag.Level("A"), 0);
  EXPECT_EQ(vdag.Level("B"), 0);
  EXPECT_EQ(vdag.Level("V4"), 1);
  EXPECT_EQ(vdag.Level("V5"), 2);
  EXPECT_EQ(vdag.MaxLevel(), 2);
}

TEST(VdagTest, ParentsAndSources) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EXPECT_EQ(vdag.sources("V4"), (std::vector<std::string>{"B", "C"}));
  EXPECT_EQ(vdag.parents("B"), (std::vector<std::string>{"V4"}));
  EXPECT_EQ(vdag.parents("V4"), (std::vector<std::string>{"V5"}));
  EXPECT_TRUE(vdag.parents("V5").empty());
  EXPECT_TRUE(vdag.sources("A").empty());
}

TEST(VdagTest, Fig3IsTreeNotUniform) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EXPECT_TRUE(vdag.IsTree());
  EXPECT_FALSE(vdag.IsUniform());  // V5 spans levels 0 and 1
}

TEST(VdagTest, TpcdIsUniformNotTree) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  EXPECT_TRUE(vdag.IsUniform());
  EXPECT_FALSE(vdag.IsTree());  // LINEITEM feeds Q3, Q5 and Q10
  EXPECT_EQ(vdag.MaxLevel(), 1);
  EXPECT_EQ(vdag.num_views(), 9u);
}

TEST(VdagTest, Fig10IsNeitherTreeNorUniform) {
  Vdag vdag = testutil::MakeFig10Vdag();
  EXPECT_FALSE(vdag.IsTree());     // V2 feeds V4 and V5
  EXPECT_FALSE(vdag.IsUniform());  // V5 over levels 0 and 1
}

TEST(VdagTest, ViewsWithParents) {
  Vdag vdag = tpcd::BuildTpcdVdag();
  // m = 6 base views; the three queries have no parents.
  EXPECT_EQ(vdag.ViewsWithParents().size(), 6u);
}

TEST(VdagTest, BaseAndDerivedPartition) {
  Vdag vdag = testutil::MakeFig3Vdag();
  EXPECT_EQ(vdag.BaseViews().size(), 3u);
  EXPECT_EQ(vdag.DerivedViewsBottomUp(),
            (std::vector<std::string>{"V4", "V5"}));
  EXPECT_TRUE(vdag.IsBaseView("A"));
  EXPECT_TRUE(vdag.IsDerivedView("V5"));
}

TEST(VdagTest, OutputSchemaRecursesThroughDerivedViews) {
  Vdag vdag = testutil::MakeFig3Vdag();
  const Schema& v5 = vdag.OutputSchema("V5");
  // Aggregate view: 2 keys + 1 sum + __count.
  EXPECT_EQ(v5.num_columns(), 4u);
  EXPECT_EQ(v5.column(3).name, "__count");
  const Schema& v4 = vdag.OutputSchema("V4");
  EXPECT_EQ(v4.num_columns(), 3u);
}

TEST(VdagDeathTest, RejectsUnknownSource) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  EXPECT_DEATH(vdag.AddDerivedView(testutil::SpjTripleView("V", {"A", "Z"})),
               "unregistered source");
}

}  // namespace
}  // namespace wuw
