#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "parser/ddl_parser.h"
#include "test_util.h"
#include "tpcd/tpcd_views.h"
#include "view/recompute.h"

namespace wuw {
namespace {

const char* kMartScript = R"sql(
  -- base feeds
  CREATE TABLE sales (x_store INT, x_item INT, x_amount BIGINT, x_day DATE);
  CREATE TABLE stores (s_store INTEGER, s_city VARCHAR(25), s_lat DOUBLE);

  CREATE VIEW revenue_by_city AS
    SELECT s_city, SUM(x_amount) AS revenue, COUNT(*) AS n
    FROM sales, stores
    WHERE x_store = s_store
    GROUP BY s_city;

  CREATE VIEW city_rollup AS
    SELECT revenue AS city_rev, n AS city_n
    FROM revenue_by_city;
)sql";

TEST(DdlParserTest, ParsesTablesAndViews) {
  ParsedWarehouse parsed = ParseWarehouseScript(kMartScript);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Vdag& vdag = parsed.vdag;
  EXPECT_EQ(vdag.num_views(), 4u);
  EXPECT_TRUE(vdag.IsBaseView("sales"));
  EXPECT_TRUE(vdag.IsBaseView("stores"));
  EXPECT_TRUE(vdag.IsDerivedView("revenue_by_city"));
  EXPECT_TRUE(vdag.IsDerivedView("city_rollup"));
  EXPECT_EQ(vdag.Level("city_rollup"), 2);

  const Schema& sales = vdag.OutputSchema("sales");
  EXPECT_EQ(sales.column(0).type, TypeId::kInt64);
  EXPECT_EQ(sales.column(2).type, TypeId::kInt64);  // BIGINT
  EXPECT_EQ(sales.column(3).type, TypeId::kDate);
  const Schema& stores = vdag.OutputSchema("stores");
  EXPECT_EQ(stores.column(1).type, TypeId::kString);  // VARCHAR(25)
  EXPECT_EQ(stores.column(2).type, TypeId::kDouble);
}

TEST(DdlParserTest, RoundTripsThroughDump) {
  ParsedWarehouse first = ParseWarehouseScript(kMartScript);
  ASSERT_TRUE(first.ok()) << first.error;
  std::string dumped = DumpWarehouseScript(first.vdag);
  ParsedWarehouse second = ParseWarehouseScript(dumped);
  ASSERT_TRUE(second.ok()) << second.error << "\n" << dumped;
  EXPECT_EQ(second.vdag.view_names(), first.vdag.view_names());
  for (const std::string& name : first.vdag.view_names()) {
    EXPECT_EQ(second.vdag.OutputSchema(name), first.vdag.OutputSchema(name))
        << name;
  }
}

TEST(DdlParserTest, RoundTripsTpcdVdag) {
  Vdag original = tpcd::BuildTpcdVdag();
  std::string script = DumpWarehouseScript(original);
  ParsedWarehouse parsed = ParseWarehouseScript(script);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << script;
  EXPECT_EQ(parsed.vdag.view_names(), original.view_names());
  EXPECT_TRUE(parsed.vdag.IsUniform());

  // The reparsed Q5 computes the same extent as the original.
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q5"});
  Table original_q5 =
      RecomputeView(*original.definition("Q5"), w.catalog(), nullptr);
  Table reparsed_q5 =
      RecomputeView(*parsed.vdag.definition("Q5"), w.catalog(), nullptr);
  EXPECT_TRUE(original_q5.ContentsEqual(reparsed_q5));
}

TEST(DdlParserTest, ErrorUnknownSource) {
  ParsedWarehouse parsed = ParseWarehouseScript(
      "CREATE VIEW v AS SELECT x FROM nothing;");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("nothing"), std::string::npos);
}

TEST(DdlParserTest, ErrorViewBeforeTable) {
  ParsedWarehouse parsed = ParseWarehouseScript(R"sql(
    CREATE VIEW v AS SELECT a FROM t;
    CREATE TABLE t (a INT);
  )sql");
  EXPECT_FALSE(parsed.ok());
}

TEST(DdlParserTest, ErrorDuplicateName) {
  ParsedWarehouse parsed = ParseWarehouseScript(R"sql(
    CREATE TABLE t (a INT);
    CREATE TABLE t (b INT);
  )sql");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("duplicate"), std::string::npos);
}

TEST(DdlParserTest, ErrorUnknownType) {
  ParsedWarehouse parsed =
      ParseWarehouseScript("CREATE TABLE t (a BLOB);");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("BLOB"), std::string::npos);
}

TEST(DdlParserTest, ErrorUnsupportedStatement) {
  ParsedWarehouse parsed = ParseWarehouseScript("CREATE INDEX i ON t (a);");
  EXPECT_FALSE(parsed.ok());
}

TEST(DdlParserTest, ErrorBadViewBody) {
  ParsedWarehouse parsed = ParseWarehouseScript(R"sql(
    CREATE TABLE t (a INT);
    CREATE VIEW v AS SELECT nope FROM t;
  )sql");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("nope"), std::string::npos);
}

TEST(DdlParserTest, SemicolonInsideStringLiteral) {
  ParsedWarehouse parsed = ParseWarehouseScript(R"sql(
    CREATE TABLE t (a INT, s TEXT);
    CREATE VIEW v AS SELECT a FROM t WHERE s = 'x;y';
  )sql");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
}

TEST(DdlParserTest, EmptyScriptYieldsEmptyVdag) {
  ParsedWarehouse parsed = ParseWarehouseScript("  -- nothing here\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.vdag.num_views(), 0u);
}

// A DDL-defined warehouse maintains correctly end to end.
TEST(DdlParserTest, ScriptedWarehouseMaintains) {
  ParsedWarehouse parsed = ParseWarehouseScript(kMartScript);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Warehouse w(std::move(parsed.vdag));
  tpcd::Rng rng(5);
  for (int64_t s = 0; s < 10; ++s) {
    w.base_table("stores")->Add(
        Tuple({Value::Int64(s), Value::String("city" + std::to_string(s % 3)),
               Value::Double(37.0 + s)}),
        1);
  }
  for (int64_t i = 0; i < 500; ++i) {
    w.base_table("sales")->Add(
        Tuple({Value::Int64(rng.Range(0, 9)), Value::Int64(rng.Range(1, 50)),
               Value::Int64(rng.Range(1, 1000)),
               Value::Date(tpcd::DateFromDayOffset(rng.Range(0, 300)))}),
        1);
  }
  w.RecomputeDerived();

  DeltaRelation delta(w.vdag().OutputSchema("sales"));
  w.catalog().MustGetTable("sales")->ForEach(
      [&](const Tuple& t, int64_t c) {
        if (t.Hash() % 5 == 0) delta.Add(t, -c);
      });
  w.SetBaseDelta("sales", std::move(delta));
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Executor executor(&w);
  executor.Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
