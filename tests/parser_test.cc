#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/printer.h"
#include "parser/sql_parser.h"
#include "parser/tokenizer.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "test_util.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"
#include "view/recompute.h"

namespace wuw {
namespace {

// ---- Tokenizer ----

TEST(TokenizerTest, BasicTokens) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("SELECT a_b, 42 1.5 'hi' <> <= (", &tokens, &error));
  ASSERT_EQ(tokens.size(), 10u);  // incl. ',' and kEnd
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "A_B");
  EXPECT_EQ(tokens[1].raw, "a_b");
  EXPECT_EQ(tokens[3].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "hi");
  EXPECT_EQ(tokens[6].text, "<>");
  EXPECT_EQ(tokens[7].text, "<=");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(TokenizerTest, EscapedQuoteAndComments) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("'it''s' -- trailing comment\n7", &tokens, &error));
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_EQ(tokens[1].text, "7");
}

TEST(TokenizerTest, NotEqualsNormalized) {
  std::vector<Token> tokens;
  std::string error;
  ASSERT_TRUE(Tokenize("a != b", &tokens, &error));
  EXPECT_EQ(tokens[1].text, "<>");
}

TEST(TokenizerTest, ErrorsOnUnterminatedString) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Tokenize("'oops", &tokens, &error));
  EXPECT_NE(error.find("unterminated"), std::string::npos);
}

TEST(TokenizerTest, ErrorsOnStrayCharacter) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(Tokenize("a ; b", &tokens, &error));
}

// ---- Scalar expressions ----

Value EvalOn(const ScalarExpr::Ptr& e, const Schema& schema, const Tuple& t) {
  return BoundExpr::Bind(e, schema).Eval(t);
}

TEST(ParseExprTest, ArithmeticPrecedence) {
  std::string error;
  auto e = ParseScalarExpr("1 + 2 * 3 - 4", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_EQ(EvalOn(e, Schema(), Tuple()).AsInt64(), 3);
}

TEST(ParseExprTest, ParenthesesOverridePrecedence) {
  std::string error;
  auto e = ParseScalarExpr("(1 + 2) * 3", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_EQ(EvalOn(e, Schema(), Tuple()).AsInt64(), 9);
}

TEST(ParseExprTest, UnaryMinus) {
  std::string error;
  auto e = ParseScalarExpr("-5 + 2", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_EQ(EvalOn(e, Schema(), Tuple()).AsInt64(), -3);
}

TEST(ParseExprTest, ComparisonAndLogic) {
  Schema s({{"x", TypeId::kInt64}});
  Tuple t({Value::Int64(7)});
  std::string error;
  auto e = ParseScalarExpr("x > 5 AND NOT (x = 8) OR x < 0", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_TRUE(BoundExpr::Bind(e, s).EvalBool(t));
}

TEST(ParseExprTest, DateLiteral) {
  std::string error;
  auto e = ParseScalarExpr("DATE '1995-03-15'", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_EQ(e->literal().AsDate(), 19950315);
}

TEST(ParseExprTest, RejectsMalformedDate) {
  std::string error;
  EXPECT_EQ(ParseScalarExpr("DATE '1995/03/15'", &error), nullptr);
  EXPECT_EQ(ParseScalarExpr("DATE '1995-13-15'", &error), nullptr);
}

TEST(ParseExprTest, RejectsTrailingInput) {
  std::string error;
  EXPECT_EQ(ParseScalarExpr("1 + 2 extra", &error), nullptr);
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ParseExprTest, CaseInsensitiveKeywordsPreserveIdentifierCase) {
  std::string error;
  auto e = ParseScalarExpr("c_mktsegment = 'BUILDING'", &error);
  ASSERT_NE(e, nullptr) << error;
  EXPECT_EQ(e->lhs()->column_name(), "c_mktsegment");
}

// ---- View definitions ----

class ParseViewTest : public ::testing::Test {
 protected:
  ParseViewTest() : vdag_(tpcd::BuildTpcdVdag({"Q3"})) {}

  ViewDefinition::SchemaResolver Resolver() {
    return [this](const std::string& name) -> const Schema& {
      return vdag_.OutputSchema(name);
    };
  }

  Vdag vdag_;
};

TEST_F(ParseViewTest, ParsesQ3Statement) {
  ParsedView parsed = ParseViewDefinition("MYQ3", R"sql(
      SELECT l_orderkey, o_orderdate, o_shippriority,
             SUM(l_extendedprice * (10000 - l_discount)) AS revenue
      FROM CUSTOMER, ORDERS, LINEITEM
      WHERE c_mktsegment = 'BUILDING'
        AND c_custkey = o_custkey
        AND o_orderkey = l_orderkey
        AND o_orderdate < DATE '1995-03-15'
        AND l_shipdate > DATE '1995-03-15'
      GROUP BY l_orderkey, o_orderdate, o_shippriority)sql",
                                         Resolver());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ViewDefinition& def = *parsed.definition;
  EXPECT_EQ(def.sources(),
            (std::vector<std::string>{"CUSTOMER", "ORDERS", "LINEITEM"}));
  EXPECT_EQ(def.joins().size(), 2u);   // the two cross-source equalities
  EXPECT_EQ(def.filters().size(), 3u); // segment + two dates
  EXPECT_TRUE(def.is_aggregate());
  EXPECT_EQ(def.projections().size(), 3u);
  EXPECT_EQ(def.aggregates().size(), 1u);
  EXPECT_EQ(def.aggregates()[0].name, "revenue");
}

TEST_F(ParseViewTest, ParsedQ3MatchesBuiltinQ3Extent) {
  // The parsed definition must compute exactly what the hand-built
  // Q3Definition computes.
  ParsedView parsed = ParseViewDefinition(
      "Q3P", tpcd::Q3Definition()->ToString(), Resolver());
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3"});
  Table builtin = RecomputeView(*tpcd::Q3Definition(), w.catalog(), nullptr);
  Table reparsed = RecomputeView(*parsed.definition, w.catalog(), nullptr);
  EXPECT_TRUE(builtin.ContentsEqual(reparsed));
}

TEST_F(ParseViewTest, RoundTripsAllTpcdDefinitions) {
  Vdag full = tpcd::BuildTpcdVdag();
  auto resolver = [&](const std::string& name) -> const Schema& {
    return full.OutputSchema(name);
  };
  for (const std::string q : {"Q3", "Q5", "Q10"}) {
    const auto& def = full.definition(q);
    ParsedView parsed = ParseViewDefinition(q + "_RT", def->ToString(),
                                            resolver);
    ASSERT_TRUE(parsed.ok()) << q << ": " << parsed.error;
    EXPECT_EQ(parsed.definition->sources(), def->sources()) << q;
    EXPECT_EQ(parsed.definition->joins().size(), def->joins().size()) << q;
    EXPECT_EQ(parsed.definition->filters().size(), def->filters().size())
        << q;
    EXPECT_EQ(parsed.definition->aggregates().size(),
              def->aggregates().size())
        << q;
  }
}

TEST_F(ParseViewTest, SpjViewWithoutGroupBy) {
  ParsedView parsed = ParseViewDefinition("ORDERS_BUILDING", R"sql(
      SELECT o_orderkey, o_orderdate, c_name AS customer
      FROM CUSTOMER, ORDERS
      WHERE c_custkey = o_custkey AND c_mktsegment = 'BUILDING')sql",
                                         Resolver());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_FALSE(parsed.definition->is_aggregate());
  EXPECT_EQ(parsed.definition->projections().size(), 3u);
  EXPECT_EQ(parsed.definition->projections()[2].name, "customer");
  EXPECT_EQ(parsed.definition->joins().size(), 1u);
}

TEST_F(ParseViewTest, SameSourceEqualityIsFilterNotJoin) {
  ParsedView parsed = ParseViewDefinition("SELFCMP", R"sql(
      SELECT o_orderkey
      FROM ORDERS
      WHERE o_orderkey = o_custkey)sql",
                                          Resolver());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.definition->joins().empty());
  EXPECT_EQ(parsed.definition->filters().size(), 1u);
}

TEST_F(ParseViewTest, CountStar) {
  ParsedView parsed = ParseViewDefinition("ORDERS_PER_DAY", R"sql(
      SELECT o_orderdate, COUNT(*) AS n
      FROM ORDERS
      GROUP BY o_orderdate)sql",
                                          Resolver());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.definition->aggregates()[0].fn, AggFn::kCount);
}

TEST_F(ParseViewTest, ErrorUnknownColumn) {
  ParsedView parsed = ParseViewDefinition(
      "BAD", "SELECT nope FROM ORDERS", Resolver());
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("nope"), std::string::npos);
}

TEST_F(ParseViewTest, ErrorAggregateWithoutGroupBy) {
  ParsedView parsed = ParseViewDefinition(
      "BAD", "SELECT o_orderdate, SUM(o_orderkey) AS s FROM ORDERS",
      Resolver());
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("GROUP BY"), std::string::npos);
}

TEST_F(ParseViewTest, ErrorGroupKeyNotSelected) {
  ParsedView parsed = ParseViewDefinition("BAD", R"sql(
      SELECT o_orderdate, SUM(o_orderkey) AS s
      FROM ORDERS GROUP BY o_custkey)sql",
                                          Resolver());
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ParseViewTest, ErrorMissingAlias) {
  ParsedView parsed = ParseViewDefinition(
      "BAD", "SELECT o_orderkey + 1 FROM ORDERS", Resolver());
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("AS"), std::string::npos);
}

TEST_F(ParseViewTest, ErrorMissingFrom) {
  ParsedView parsed =
      ParseViewDefinition("BAD", "SELECT o_orderkey", Resolver());
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ParseViewTest, ErrorTrailingGarbage) {
  ParsedView parsed = ParseViewDefinition(
      "BAD", "SELECT o_orderkey FROM ORDERS LIMIT 5", Resolver());
  EXPECT_FALSE(parsed.ok());
}

// Print/parse fixed point: rendering a parsed expression and reparsing it
// is stable and evaluation-equivalent.
TEST(ParseExprTest, PrintParseFixedPoint) {
  Schema schema({{"x", TypeId::kInt64},
                 {"y", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"d", TypeId::kDate}});
  std::vector<Tuple> samples = {
      Tuple({Value::Int64(3), Value::Int64(-7), Value::String("BUILDING"),
             Value::Date(19950315)}),
      Tuple({Value::Int64(0), Value::Int64(100), Value::String(""),
             Value::Date(19920101)}),
  };
  const char* inputs[] = {
      "x + y * 2 - 1",
      "(x + y) * (x - y)",
      "x > 0 AND (y < 10 OR NOT (s = 'BUILDING'))",
      "d >= DATE '1994-01-01' AND d < DATE '1995-01-01'",
      "x * (10000 - y)",
      "-x + 3",
      "x <> y OR s = 'it''s'",
  };
  for (const char* input : inputs) {
    std::string error;
    auto e1 = ParseScalarExpr(input, &error);
    ASSERT_NE(e1, nullptr) << input << ": " << error;
    std::string printed = ExprToSql(e1);
    auto e2 = ParseScalarExpr(printed, &error);
    ASSERT_NE(e2, nullptr) << printed << ": " << error;
    EXPECT_EQ(ExprToSql(e2), printed) << input;  // fixed point after 1 round
    BoundExpr b1 = BoundExpr::Bind(e1, schema);
    BoundExpr b2 = BoundExpr::Bind(e2, schema);
    for (const Tuple& t : samples) {
      EXPECT_EQ(b1.Eval(t), b2.Eval(t)) << input;
    }
  }
}

TEST(ExtractFromSourcesTest, FindsSourceList) {
  EXPECT_EQ(ExtractFromSources("SELECT a FROM T1, T2 WHERE a = b"),
            (std::vector<std::string>{"T1", "T2"}));
  EXPECT_EQ(ExtractFromSources("SELECT a FROM T GROUP BY a"),
            (std::vector<std::string>{"T"}));
  EXPECT_TRUE(ExtractFromSources("SELECT 1 + 2").empty());
  EXPECT_TRUE(ExtractFromSources("garbage ' unterminated").empty());
}

// A parsed multi-level warehouse actually runs end to end.
TEST(ParseViewIntegrationTest, ParsedViewsMaintainCorrectly) {
  Vdag vdag;
  vdag.AddBaseView("A", testutil::TripleSchema("A"));
  vdag.AddBaseView("B", testutil::TripleSchema("B"));
  auto resolver = [&](const std::string& name) -> const Schema& {
    return vdag.OutputSchema(name);
  };
  ParsedView joined = ParseViewDefinition(
      "J", "SELECT A_k AS J_k, A_v + B_v AS J_v, A_g AS J_g "
           "FROM A, B WHERE A_k = B_k",
      resolver);
  ASSERT_TRUE(joined.ok()) << joined.error;
  vdag.AddDerivedView(joined.definition);
  ParsedView top = ParseViewDefinition(
      "T", "SELECT J_g, SUM(J_v) AS total, COUNT(*) AS n "
           "FROM J GROUP BY J_g",
      resolver);
  ASSERT_TRUE(top.ok()) << top.error;
  vdag.AddDerivedView(top.definition);

  Warehouse w = testutil::MakeLoadedWarehouse(std::move(vdag), 60, 5);
  testutil::ApplyTripleChanges(&w, 0.2, 10, 7);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Executor executor(&w);
  executor.Execute(MakeDualStageVdagStrategy(w.vdag()));
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
