#include <gtest/gtest.h>

#include "io/csv.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

Schema MixedSchema() {
  return Schema({{"id", TypeId::kInt64},
                 {"name", TypeId::kString},
                 {"price", TypeId::kDouble},
                 {"day", TypeId::kDate}});
}

TEST(CsvTest, TableRoundTrip) {
  Table t(MixedSchema());
  t.Add(Tuple({Value::Int64(1), Value::String("widget"), Value::Double(9.5),
               Value::Date(19950315)}),
        1);
  t.Add(Tuple({Value::Int64(2), Value::String("gadget, deluxe"),
               Value::Double(1.25), Value::Date(19960101)}),
        3);

  std::string csv = TableToCsv(t);
  Table back(MixedSchema());
  std::string error;
  ASSERT_TRUE(CsvToTable(csv, &back, &error)) << error;
  EXPECT_TRUE(t.ContentsEqual(back));
}

TEST(CsvTest, QuotingEdgeCases) {
  Table t(Schema({{"s", TypeId::kString}}));
  t.Add(Tuple({Value::String("comma, here")}), 1);
  t.Add(Tuple({Value::String("quote \" inside")}), 1);
  t.Add(Tuple({Value::String("newline\ninside")}), 1);
  t.Add(Tuple({Value::String("")}), 1);

  std::string csv = TableToCsv(t);
  Table back(Schema({{"s", TypeId::kString}}));
  std::string error;
  ASSERT_TRUE(CsvToTable(csv, &back, &error)) << error;
  EXPECT_TRUE(t.ContentsEqual(back));
}

TEST(CsvTest, DeltaRoundTripKeepsSigns) {
  DeltaRelation d(MixedSchema());
  d.Add(Tuple({Value::Int64(1), Value::String("a"), Value::Double(1.0),
               Value::Date(19950101)}),
        -2);
  d.Add(Tuple({Value::Int64(2), Value::String("b"), Value::Double(2.0),
               Value::Date(19950102)}),
        5);
  std::string csv = DeltaToCsv(d);
  DeltaRelation back(MixedSchema());
  std::string error;
  ASSERT_TRUE(CsvToDelta(csv, &back, &error)) << error;
  EXPECT_EQ(back.plus_count(), 5);
  EXPECT_EQ(back.minus_count(), 2);
}

TEST(CsvTest, HeaderWithoutCountColumnDefaultsToOne) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  ASSERT_TRUE(CsvToTable("x\n1\n2\n2\n", &t, &error)) << error;
  EXPECT_EQ(t.cardinality(), 3);
  EXPECT_EQ(t.Count(Tuple({Value::Int64(2)})), 2);
}

TEST(CsvTest, WindowsLineEndings) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  ASSERT_TRUE(CsvToTable("x\r\n7\r\n", &t, &error)) << error;
  EXPECT_EQ(t.Count(Tuple({Value::Int64(7)})), 1);
}

TEST(CsvTest, ErrorOnHeaderMismatch) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  EXPECT_FALSE(CsvToTable("y\n1\n", &t, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CsvTest, ErrorOnBadValue) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  EXPECT_FALSE(CsvToTable("x\nhello\n", &t, &error));
  EXPECT_NE(error.find("INT64"), std::string::npos);
}

TEST(CsvTest, ErrorOnFieldCountMismatch) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  EXPECT_FALSE(CsvToTable("x\n1,2\n", &t, &error));
}

TEST(CsvTest, ErrorOnEmptyInput) {
  Table t(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  EXPECT_FALSE(CsvToTable("", &t, &error));
}

TEST(CsvTest, ErrorOnZeroCount) {
  DeltaRelation d(Schema({{"x", TypeId::kInt64}}));
  std::string error;
  EXPECT_FALSE(CsvToDelta("__count,x\n0,1\n", &d, &error));
}

TEST(CsvTest, TpcdTableRoundTrip) {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3"});
  const Table& orders = *w.catalog().MustGetTable(tpcd::kOrders);
  std::string csv = TableToCsv(orders);
  Table back(orders.schema());
  std::string error;
  ASSERT_TRUE(CsvToTable(csv, &back, &error)) << error;
  EXPECT_TRUE(orders.ContentsEqual(back));
}

}  // namespace
}  // namespace wuw
