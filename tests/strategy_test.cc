#include <gtest/gtest.h>

#include "core/expression.h"
#include "core/strategy.h"

namespace wuw {
namespace {

TEST(ExpressionTest, FactoriesAndAccessors) {
  Expression comp = Expression::Comp("V", {"B", "A"});
  EXPECT_TRUE(comp.is_comp());
  EXPECT_EQ(comp.over, (std::vector<std::string>{"A", "B"}));  // sorted
  EXPECT_TRUE(comp.CompUses("A"));
  EXPECT_FALSE(comp.CompUses("C"));

  Expression inst = Expression::Inst("V");
  EXPECT_TRUE(inst.is_inst());
  EXPECT_FALSE(inst.CompUses("V"));
}

TEST(ExpressionTest, EqualityIsOrderInsensitiveOverY) {
  EXPECT_EQ(Expression::Comp("V", {"A", "B"}), Expression::Comp("V", {"B", "A"}));
  EXPECT_NE(Expression::Comp("V", {"A"}), Expression::Comp("V", {"A", "B"}));
  EXPECT_NE(Expression::Comp("V", {"A"}), Expression::Inst("V"));
}

TEST(ExpressionTest, ToString) {
  EXPECT_EQ(Expression::Comp("Q3", {"LINEITEM"}).ToString(),
            "Comp(Q3, {LINEITEM})");
  EXPECT_EQ(Expression::Inst("ORDERS").ToString(), "Inst(ORDERS)");
}

TEST(StrategyTest, IndexAndContains) {
  Strategy s;
  s.Append(Expression::Comp("V", {"A"}));
  s.Append(Expression::Inst("A"));
  s.Append(Expression::Inst("V"));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.IndexOf(Expression::Inst("A")), 1);
  EXPECT_EQ(s.IndexOf(Expression::Inst("Z")), -1);
  EXPECT_TRUE(s.Contains(Expression::Comp("V", {"A"})));
}

TEST(StrategyTest, UsedViewStrategyExtractsSubsequence) {
  // VDAG strategy (6) from Example 3.1.
  Strategy s({
      Expression::Comp("V4", {"V2"}),
      Expression::Inst("V2"),
      Expression::Comp("V4", {"V3"}),
      Expression::Inst("V3"),
      Expression::Comp("V5", {"V4"}),
      Expression::Inst("V4"),
      Expression::Comp("V5", {"V1"}),
      Expression::Inst("V1"),
      Expression::Inst("V5"),
  });
  Strategy v4 = s.UsedViewStrategy("V4", {"V2", "V3"});
  EXPECT_EQ(v4.expressions(),
            (std::vector<Expression>{
                Expression::Comp("V4", {"V2"}), Expression::Inst("V2"),
                Expression::Comp("V4", {"V3"}), Expression::Inst("V3"),
                Expression::Inst("V4")}));
  Strategy v5 = s.UsedViewStrategy("V5", {"V1", "V4"});
  EXPECT_EQ(v5.expressions(),
            (std::vector<Expression>{
                Expression::Comp("V5", {"V4"}), Expression::Inst("V4"),
                Expression::Comp("V5", {"V1"}), Expression::Inst("V1"),
                Expression::Inst("V5")}));
}

TEST(StrategyTest, InstOrderIsTheStronglyConsistentOrdering) {
  Strategy s({
      Expression::Comp("V", {"B"}),
      Expression::Inst("B"),
      Expression::Comp("V", {"A"}),
      Expression::Inst("A"),
      Expression::Inst("V"),
  });
  EXPECT_EQ(s.InstOrder(), (std::vector<std::string>{"B", "A", "V"}));
}

TEST(StrategyTest, ToStringReadable) {
  Strategy s({Expression::Comp("V", {"A"}), Expression::Inst("V")});
  EXPECT_EQ(s.ToString(), "< Comp(V, {A}); Inst(V) >");
}

}  // namespace
}  // namespace wuw
