// The observability determinism contract, property-tested end to end
// (ISSUE: counter snapshots must be bit-identical at every WUW_THREADS
// value and cache budget; only wall time may vary):
//
//   * kWork counters are identical for a given (state, strategy, executor)
//     across pool sizes {1, 2, 8} x cache budgets {none, 0, 256MB};
//   * kWork|kEngine counters (the WUW_METRICS dump CI diffs) are identical
//     across pool sizes at a fixed cache configuration under the
//     sequential executor;
//   * kTime gauges are excluded from both masks by construction.
//
// VDAG shapes cover the canonical fixtures plus RandomVdag draws; both the
// sequential Executor and the stage-parallel ParallelExecutor run under
// MinWork and Prune strategies.  Honors WUW_SEED (testutil::PropertySeed);
// failures print the effective seed so one command reproduces:
//     WUW_SEED=<seed> ./obs_invariance_property_test
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "obs/metrics.h"
#include "parallel/parallel_strategy.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"

namespace wuw {
namespace {

using obs::MetricClass;
using obs::MetricsSnapshot;

/// Cache-budget axis: no cache at all, a zero budget (admits nothing), and
/// the default 256MB budget (everything in these workloads fits).
enum class Budget { kNone, kZero, kDefault };

const Budget kBudgets[] = {Budget::kNone, Budget::kZero, Budget::kDefault};
const int kPoolSizes[] = {1, 2, 8};

std::string BudgetName(Budget b) {
  switch (b) {
    case Budget::kNone:
      return "none";
    case Budget::kZero:
      return "0";
    case Budget::kDefault:
      return "256MB";
  }
  return "?";
}

std::unique_ptr<SubplanCache> MakeCache(Budget b) {
  switch (b) {
    case Budget::kNone:
      return nullptr;
    case Budget::kZero:
      return std::make_unique<SubplanCache>(SubplanCacheOptions{0});
    case Budget::kDefault:
      return std::make_unique<SubplanCache>();
  }
  return nullptr;
}

/// Executes `s` on a clone of `w` under one (executor, pool size, budget)
/// configuration and returns the snapshot of `mask`-classed counters for
/// exactly that run.  A fresh cache per run keeps the budget axis clean
/// (cross-run cache reuse is the audit suite's subject, not this one's).
MetricsSnapshot RunAndSnapshot(const Warehouse& w, const Strategy& s,
                               bool stage_parallel, int pool_size,
                               Budget budget, obs::MetricMask mask) {
  obs::ResetMetrics();
  Warehouse clone = w.Clone();
  ThreadPool pool(pool_size);
  std::unique_ptr<SubplanCache> cache = MakeCache(budget);
  if (stage_parallel) {
    ParallelStrategy stages = ParallelizeStrategy(w.vdag(), s);
    ParallelExecutorOptions options;
    options.workers = pool_size;
    options.term_workers = pool_size;
    options.pool = &pool;
    options.subplan_cache = cache.get();
    ParallelExecutor(&clone, options).Execute(stages);
  } else {
    ExecutorOptions options;
    options.pool = &pool;
    options.subplan_cache = cache.get();
    Executor(&clone, options).Execute(s);
  }
  return obs::SnapshotMetrics(mask);
}

/// One fully-loaded scenario: warehouse with pending changes plus the
/// MinWork and Prune strategies for it.
struct Scenario {
  std::string name;
  Warehouse warehouse;
  std::vector<std::pair<std::string, Strategy>> strategies;
};

Scenario MakeScenario(std::string name, Vdag vdag, int64_t base_rows,
                      double delete_fraction, int64_t insert_rows,
                      uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(std::move(vdag), base_rows,
                                              seed);
  testutil::ApplyTripleChanges(&w, delete_fraction, insert_rows, seed + 9);
  SizeMap sizes = w.EstimatedSizes();
  std::vector<std::pair<std::string, Strategy>> strategies;
  strategies.emplace_back("MinWork", MinWork(w.vdag(), sizes).strategy);
  strategies.emplace_back("Prune", Prune(w.vdag(), sizes).strategy);
  return Scenario{std::move(name), std::move(w), std::move(strategies)};
}

std::vector<Scenario> MakeScenarios(uint64_t seed) {
  std::vector<Scenario> out;
  out.push_back(MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1));
  out.push_back(MakeScenario("star_agg",
                             testutil::MakeStarVdag("V", 3, true), 50, 0.15,
                             10, seed + 2));
  tpcd::Rng rng(seed + 3);
  out.push_back(MakeScenario("random", testutil::RandomVdag(&rng, 3, 2), 40,
                             0.25, 6, seed + 4));
  return out;
}

class ObsInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_armed_ = obs::MetricsArmed();
    obs::ArmMetrics();
  }
  void TearDown() override {
    obs::ResetMetrics();
    if (!metrics_were_armed_) obs::DisarmMetrics();
  }
  bool metrics_were_armed_ = false;
};

// kWork: one baseline per (scenario, strategy, executor), compared against
// every pool-size x budget combination.  18 runs per baseline cell.
TEST_F(ObsInvarianceTest, WorkCountersInvariantAcrossThreadsAndBudgets) {
  const uint64_t seed = testutil::PropertySeed(71);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (Scenario& sc : MakeScenarios(seed)) {
    for (const auto& [strategy_name, strategy] : sc.strategies) {
      for (bool stage_parallel : {false, true}) {
        MetricsSnapshot baseline =
            RunAndSnapshot(sc.warehouse, strategy, stage_parallel,
                           /*pool_size=*/1, Budget::kNone,
                           obs::Mask(MetricClass::kWork));
        EXPECT_FALSE(baseline.counters.empty());
        for (int pool_size : kPoolSizes) {
          for (Budget budget : kBudgets) {
            MetricsSnapshot snap =
                RunAndSnapshot(sc.warehouse, strategy, stage_parallel,
                               pool_size, budget,
                               obs::Mask(MetricClass::kWork));
            EXPECT_EQ(snap, baseline)
                << "kWork snapshot diverged: scenario=" << sc.name
                << " strategy=" << strategy_name << " executor="
                << (stage_parallel ? "parallel" : "sequential")
                << " WUW_THREADS=" << pool_size
                << " budget=" << BudgetName(budget)
                << "\nrepro: WUW_SEED=" << seed
                << " ./obs_invariance_property_test"
                << "\nbaseline:\n" << baseline.ToString()
                << "got:\n" << snap.ToString();
          }
        }
      }
    }
  }
}

// kWork|kEngine (the deterministic mask WUW_METRICS dumps): identical
// across pool sizes at each fixed cache configuration under the
// sequential executor.  This is the exact guarantee CI's armed double-run
// diff relies on.
TEST_F(ObsInvarianceTest, DeterministicMaskThreadInvariantAtFixedBudget) {
  const uint64_t seed = testutil::PropertySeed(73);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (Scenario& sc : MakeScenarios(seed)) {
    for (const auto& [strategy_name, strategy] : sc.strategies) {
      for (Budget budget : kBudgets) {
        MetricsSnapshot baseline =
            RunAndSnapshot(sc.warehouse, strategy, /*stage_parallel=*/false,
                           /*pool_size=*/1, budget, obs::kDeterministicMask);
        for (int pool_size : {2, 8}) {
          MetricsSnapshot snap = RunAndSnapshot(
              sc.warehouse, strategy, /*stage_parallel=*/false, pool_size,
              budget, obs::kDeterministicMask);
          EXPECT_EQ(snap, baseline)
              << "deterministic snapshot diverged: scenario=" << sc.name
              << " strategy=" << strategy_name
              << " WUW_THREADS=" << pool_size
              << " budget=" << BudgetName(budget)
              << "\nrepro: WUW_SEED=" << seed
              << " ./obs_invariance_property_test"
              << "\nbaseline:\n" << baseline.ToString()
              << "got:\n" << snap.ToString();
        }
      }
    }
  }
}

// Same-configuration reruns are bit-identical too (no hidden run-to-run
// state in the registry), and the deterministic mask really excludes the
// wall-time gauges the executors always record.
TEST_F(ObsInvarianceTest, RerunsAreIdenticalAndTimeGaugesAreExcluded) {
  const uint64_t seed = testutil::PropertySeed(79);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Scenario sc = MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1);
  const Strategy& s = sc.strategies[0].second;

  MetricsSnapshot first = RunAndSnapshot(sc.warehouse, s, false, 2,
                                         Budget::kDefault,
                                         obs::kDeterministicMask);
  MetricsSnapshot second = RunAndSnapshot(sc.warehouse, s, false, 2,
                                          Budget::kDefault,
                                          obs::kDeterministicMask);
  EXPECT_EQ(first, second);

  for (const auto& [name, value] : first.counters) {
    EXPECT_EQ(name.find("_us"), std::string::npos)
        << "wall-time gauge leaked into the deterministic mask: " << name;
  }
  // The executor did record time gauges — they are only filtered, and
  // visible under the full mask.
  MetricsSnapshot all = obs::SnapshotMetrics(obs::kAllMetricsMask);
  bool saw_time_gauge = false;
  for (const auto& [name, value] : all.counters) {
    if (name.find("_us") != std::string::npos) saw_time_gauge = true;
  }
  EXPECT_TRUE(saw_time_gauge);
}

}  // namespace
}  // namespace wuw
