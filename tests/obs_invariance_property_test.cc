// The observability determinism contract, property-tested end to end
// (ISSUE: counter snapshots must be bit-identical at every WUW_THREADS
// value and cache budget; only wall time may vary):
//
//   * kWork counters are identical for a given (state, strategy, executor)
//     across pool sizes {1, 2, 8} x cache budgets {none, 0, 256MB};
//   * kWork|kEngine counters (the WUW_METRICS dump CI diffs) are identical
//     across pool sizes at a fixed cache configuration under the
//     sequential executor;
//   * kTime gauges are excluded from both masks by construction.
//
// VDAG shapes cover the canonical fixtures plus RandomVdag draws; both the
// sequential Executor and the stage-parallel ParallelExecutor run under
// MinWork and Prune strategies.  Honors WUW_SEED (testutil::PropertySeed);
// failures print the effective seed so one command reproduces:
//     WUW_SEED=<seed> ./obs_invariance_property_test
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "obs/metrics.h"
#include "parallel/parallel_strategy.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "plan/subplan_cache.h"
#include "test_util.h"

namespace wuw {
namespace {

using obs::MetricClass;
using obs::MetricsSnapshot;

/// Cache-budget axis: no cache at all, a zero budget (admits nothing), and
/// the default 256MB budget (everything in these workloads fits).
enum class Budget { kNone, kZero, kDefault };

const Budget kBudgets[] = {Budget::kNone, Budget::kZero, Budget::kDefault};
const int kPoolSizes[] = {1, 2, 8};

std::string BudgetName(Budget b) {
  switch (b) {
    case Budget::kNone:
      return "none";
    case Budget::kZero:
      return "0";
    case Budget::kDefault:
      return "256MB";
  }
  return "?";
}

std::unique_ptr<SubplanCache> MakeCache(Budget b) {
  switch (b) {
    case Budget::kNone:
      return nullptr;
    case Budget::kZero:
      return std::make_unique<SubplanCache>(SubplanCacheOptions{0});
    case Budget::kDefault:
      return std::make_unique<SubplanCache>();
  }
  return nullptr;
}

/// Executes `s` on a clone of `w` under one (executor, pool size, budget)
/// configuration and returns the snapshot of `mask`-classed counters for
/// exactly that run.  A fresh cache per run keeps the budget axis clean
/// (cross-run cache reuse is the audit suite's subject, not this one's).
MetricsSnapshot RunAndSnapshot(const Warehouse& w, const Strategy& s,
                               bool stage_parallel, int pool_size,
                               Budget budget, obs::MetricMask mask) {
  obs::ResetMetrics();
  Warehouse clone = w.Clone();
  ThreadPool pool(pool_size);
  std::unique_ptr<SubplanCache> cache = MakeCache(budget);
  if (stage_parallel) {
    ParallelStrategy stages = ParallelizeStrategy(w.vdag(), s);
    ParallelExecutorOptions options;
    options.workers = pool_size;
    options.term_workers = pool_size;
    options.pool = &pool;
    options.subplan_cache = cache.get();
    ParallelExecutor(&clone, options).Execute(stages);
  } else {
    ExecutorOptions options;
    options.pool = &pool;
    options.subplan_cache = cache.get();
    Executor(&clone, options).Execute(s);
  }
  return obs::SnapshotMetrics(mask);
}

/// One fully-loaded scenario: warehouse with pending changes plus the
/// MinWork and Prune strategies for it.
struct Scenario {
  std::string name;
  Warehouse warehouse;
  std::vector<std::pair<std::string, Strategy>> strategies;
};

Scenario MakeScenario(std::string name, Vdag vdag, int64_t base_rows,
                      double delete_fraction, int64_t insert_rows,
                      uint64_t seed) {
  Warehouse w = testutil::MakeLoadedWarehouse(std::move(vdag), base_rows,
                                              seed);
  testutil::ApplyTripleChanges(&w, delete_fraction, insert_rows, seed + 9);
  SizeMap sizes = w.EstimatedSizes();
  std::vector<std::pair<std::string, Strategy>> strategies;
  strategies.emplace_back("MinWork", MinWork(w.vdag(), sizes).strategy);
  strategies.emplace_back("Prune", Prune(w.vdag(), sizes).strategy);
  return Scenario{std::move(name), std::move(w), std::move(strategies)};
}

std::vector<Scenario> MakeScenarios(uint64_t seed) {
  std::vector<Scenario> out;
  out.push_back(MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1));
  out.push_back(MakeScenario("star_agg",
                             testutil::MakeStarVdag("V", 3, true), 50, 0.15,
                             10, seed + 2));
  tpcd::Rng rng(seed + 3);
  out.push_back(MakeScenario("random", testutil::RandomVdag(&rng, 3, 2), 40,
                             0.25, 6, seed + 4));
  return out;
}

class ObsInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_armed_ = obs::MetricsArmed();
    obs::ArmMetrics();
  }
  void TearDown() override {
    obs::ResetMetrics();
    if (!metrics_were_armed_) obs::DisarmMetrics();
  }
  bool metrics_were_armed_ = false;
};

// kWork: one baseline per (scenario, strategy, executor), compared against
// every pool-size x budget combination.  18 runs per baseline cell.
TEST_F(ObsInvarianceTest, WorkCountersInvariantAcrossThreadsAndBudgets) {
  const uint64_t seed = testutil::PropertySeed(71);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (Scenario& sc : MakeScenarios(seed)) {
    for (const auto& [strategy_name, strategy] : sc.strategies) {
      for (bool stage_parallel : {false, true}) {
        MetricsSnapshot baseline =
            RunAndSnapshot(sc.warehouse, strategy, stage_parallel,
                           /*pool_size=*/1, Budget::kNone,
                           obs::Mask(MetricClass::kWork));
        EXPECT_FALSE(baseline.counters.empty());
        for (int pool_size : kPoolSizes) {
          for (Budget budget : kBudgets) {
            MetricsSnapshot snap =
                RunAndSnapshot(sc.warehouse, strategy, stage_parallel,
                               pool_size, budget,
                               obs::Mask(MetricClass::kWork));
            EXPECT_EQ(snap, baseline)
                << "kWork snapshot diverged: scenario=" << sc.name
                << " strategy=" << strategy_name << " executor="
                << (stage_parallel ? "parallel" : "sequential")
                << " WUW_THREADS=" << pool_size
                << " budget=" << BudgetName(budget)
                << "\nrepro: WUW_SEED=" << seed
                << " ./obs_invariance_property_test"
                << "\nbaseline:\n" << baseline.ToString()
                << "got:\n" << snap.ToString();
          }
        }
      }
    }
  }
}

// kWork|kEngine (the deterministic mask WUW_METRICS dumps): identical
// across pool sizes at each fixed cache configuration under the
// sequential executor.  This is the exact guarantee CI's armed double-run
// diff relies on.
TEST_F(ObsInvarianceTest, DeterministicMaskThreadInvariantAtFixedBudget) {
  const uint64_t seed = testutil::PropertySeed(73);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  for (Scenario& sc : MakeScenarios(seed)) {
    for (const auto& [strategy_name, strategy] : sc.strategies) {
      for (Budget budget : kBudgets) {
        MetricsSnapshot baseline =
            RunAndSnapshot(sc.warehouse, strategy, /*stage_parallel=*/false,
                           /*pool_size=*/1, budget, obs::kDeterministicMask);
        for (int pool_size : {2, 8}) {
          MetricsSnapshot snap = RunAndSnapshot(
              sc.warehouse, strategy, /*stage_parallel=*/false, pool_size,
              budget, obs::kDeterministicMask);
          EXPECT_EQ(snap, baseline)
              << "deterministic snapshot diverged: scenario=" << sc.name
              << " strategy=" << strategy_name
              << " WUW_THREADS=" << pool_size
              << " budget=" << BudgetName(budget)
              << "\nrepro: WUW_SEED=" << seed
              << " ./obs_invariance_property_test"
              << "\nbaseline:\n" << baseline.ToString()
              << "got:\n" << snap.ToString();
        }
      }
    }
  }
}

// Same-configuration reruns are bit-identical too (no hidden run-to-run
// state in the registry), and the deterministic mask really excludes the
// wall-time gauges the executors always record.
TEST_F(ObsInvarianceTest, RerunsAreIdenticalAndTimeGaugesAreExcluded) {
  const uint64_t seed = testutil::PropertySeed(79);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Scenario sc = MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1);
  const Strategy& s = sc.strategies[0].second;

  MetricsSnapshot first = RunAndSnapshot(sc.warehouse, s, false, 2,
                                         Budget::kDefault,
                                         obs::kDeterministicMask);
  MetricsSnapshot second = RunAndSnapshot(sc.warehouse, s, false, 2,
                                          Budget::kDefault,
                                          obs::kDeterministicMask);
  EXPECT_EQ(first, second);

  for (const auto& [name, value] : first.counters) {
    EXPECT_EQ(name.find("_us"), std::string::npos)
        << "wall-time gauge leaked into the deterministic mask: " << name;
  }
  // The executor did record time gauges — they are only filtered, and
  // visible under the full mask.
  MetricsSnapshot all = obs::SnapshotMetrics(obs::kAllMetricsMask);
  bool saw_time_gauge = false;
  for (const auto& [name, value] : all.counters) {
    if (name.find("_us") != std::string::npos) saw_time_gauge = true;
  }
  EXPECT_TRUE(saw_time_gauge);
}

// The readers-on dimension (zero-downtime reads): attaching a concurrent
// ReadDriver to an ARMED warehouse must leave the deterministic
// kWork|kEngine snapshot bit-identical to the armed readers-off baseline.
// Two mechanisms carry this: reader-session bodies run under
// obs::ServeScope (non-kServe counters are dropped on those threads, and
// reader threads never populate shared columnar caches), and COW detaches
// are eager — one per mutated view per publish, never refcount-driven, so
// reader pins cannot change the maintenance run's counter stream.
TEST_F(ObsInvarianceTest, DeterministicMaskUnperturbedByConcurrentReaders) {
  const uint64_t seed = testutil::PropertySeed(83);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Scenario sc = MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1);

  auto run_armed = [&](const Strategy& s, bool readers) {
    obs::ResetMetrics();
    Warehouse clone = sc.warehouse.Clone();
    clone.EnableSnapshotReads();
    ReadDriver driver;
    if (readers) {
      ReadSessionOptions options;
      options.sessions = 16;
      options.scans_per_session = 2;
      options.queries = {"SELECT A_k, A_v FROM A",
                         "SELECT V4_k, V4_v FROM V4",
                         "SELECT V5_k, V5_v FROM V5"};
      driver.Start(clone, options);
    }
    Executor(&clone).Execute(s);
    if (readers) {
      ReadSessionReport report = driver.Stop();
      EXPECT_TRUE(report.ok())
          << report.torn_reads << " torn, " << report.epoch_regressions
          << " regressions, " << report.query_errors << " errors";
    }
    return obs::SnapshotMetrics(obs::kDeterministicMask);
  };

  for (const auto& [strategy_name, strategy] : sc.strategies) {
    MetricsSnapshot off = run_armed(strategy, /*readers=*/false);
    EXPECT_FALSE(off.counters.empty());
    // Several passes: reader scheduling varies run to run; the
    // deterministic mask must not.
    for (int pass = 0; pass < 3; ++pass) {
      MetricsSnapshot on = run_armed(strategy, /*readers=*/true);
      EXPECT_EQ(on, off)
          << "readers perturbed the deterministic snapshot: strategy="
          << strategy_name << " pass=" << pass
          << "\nrepro: WUW_SEED=" << seed
          << " ./obs_invariance_property_test"
          << "\nreaders-off:\n" << off.ToString()
          << "readers-on:\n" << on.ToString();
    }
    // kServe counters DID fire during the readers-on passes — the reader
    // telemetry is redirected, not lost.
    MetricsSnapshot serve =
        obs::SnapshotMetrics(obs::Mask(MetricClass::kServe));
    EXPECT_FALSE(serve.counters.empty())
        << "reader sessions should have produced serve.* counters";
  }
}

// Arming snapshot reads (without any readers) only adds the deterministic
// COW-detach counter to kWork — the rest of the deterministic snapshot is
// unchanged from the disarmed engine, and the detach count itself is
// pool/cache-invariant like every kWork counter.
TEST_F(ObsInvarianceTest, ArmedSnapshotCountersAreDeterministic) {
  if (EnvReaders() > 0) {
    GTEST_SKIP() << "WUW_READERS arms every warehouse; no disarmed baseline";
  }
  const uint64_t seed = testutil::PropertySeed(89);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Scenario sc = MakeScenario("fig3", testutil::MakeFig3Vdag(), 50, 0.2, 8,
                             seed + 1);
  const Strategy& s = sc.strategies[0].second;

  auto run = [&](bool armed, int pool_size) {
    obs::ResetMetrics();
    Warehouse clone = sc.warehouse.Clone();
    if (armed) clone.EnableSnapshotReads();
    ThreadPool pool(pool_size);
    ExecutorOptions options;
    options.pool = &pool;
    Executor(&clone, options).Execute(s);
    return obs::SnapshotMetrics(obs::Mask(MetricClass::kWork));
  };

  MetricsSnapshot disarmed = run(/*armed=*/false, 1);
  MetricsSnapshot armed = run(/*armed=*/true, 1);
  // Armed minus the COW-detach counter == disarmed.
  MetricsSnapshot armed_filtered;
  int64_t detaches = 0;
  for (const auto& [name, value] : armed.counters) {
    if (name == "warehouse.cow_detaches") {
      detaches = value;
    } else {
      armed_filtered.counters.emplace_back(name, value);
    }
  }
  EXPECT_GT(detaches, 0) << "the window mutated views; detaches must fire";
  EXPECT_EQ(armed_filtered, disarmed);
  // And the armed snapshot (detaches included) is pool-invariant.
  for (int pool_size : {2, 8}) {
    EXPECT_EQ(run(/*armed=*/true, pool_size), armed)
        << "armed kWork snapshot diverged at WUW_THREADS=" << pool_size;
  }
}

// SubplanCache telemetry lands in the kEngine class of the registry: a
// budgeted run over a shared-prefix strategy produces cache.hits > 0 and
// cache.cost_saved > 0 (the advisor's benefit signal), the counters agree
// with the cache's own SubplanCacheStats, and — like every counter in the
// deterministic mask — they are pool-invariant at a fixed budget.  They
// must NOT appear under kWork: hits depend on the byte budget, and kWork
// counters are budget-invariant by contract.
TEST_F(ObsInvarianceTest, CacheCountersLandInEngineClassWithCostSaved) {
  const uint64_t seed = testutil::PropertySeed(97);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeStarVdag("V", 4),
                                              50, seed + 1);
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 9);
  const Strategy s = MakeDualStageVdagStrategy(w.vdag());

  // Two clones sharing one cache: the second run replays the first run's
  // fingerprints, so hits (and cost_saved) are guaranteed.
  auto run = [&](int pool_size) {
    obs::ResetMetrics();
    ThreadPool pool(pool_size);
    SubplanCache cache;
    for (int pass = 0; pass < 2; ++pass) {
      Warehouse clone = w.Clone();
      ExecutorOptions options;
      options.pool = &pool;
      options.subplan_cache = &cache;
      Executor(&clone, options).Execute(s);
    }
    return std::make_pair(obs::SnapshotMetrics(obs::Mask(MetricClass::kEngine)),
                          cache.stats());
  };

  auto [engine, stats] = run(1);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.cost_saved, 0);
  auto counter = [&](const MetricsSnapshot& snap, const std::string& name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return int64_t{-1};
  };
  EXPECT_EQ(counter(engine, "cache.hits"), stats.hits);
  EXPECT_EQ(counter(engine, "cache.misses"), stats.misses);
  EXPECT_EQ(counter(engine, "cache.cost_saved"),
            static_cast<int64_t>(stats.cost_saved));
  // Budget-dependent telemetry stays out of the budget-invariant class.
  MetricsSnapshot work = obs::SnapshotMetrics(obs::Mask(MetricClass::kWork));
  EXPECT_EQ(counter(work, "cache.hits"), -1);
  EXPECT_EQ(counter(work, "cache.cost_saved"), -1);
  for (int pool_size : {2, 8}) {
    auto [snap, rerun_stats] = run(pool_size);
    EXPECT_EQ(snap, engine)
        << "cache kEngine snapshot diverged at WUW_THREADS=" << pool_size;
    EXPECT_EQ(rerun_stats.hits, stats.hits);
  }
}

}  // namespace
}  // namespace wuw
