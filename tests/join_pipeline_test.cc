#include <gtest/gtest.h>

#include "test_util.h"
#include "view/join_pipeline.h"

namespace wuw {
namespace {

using testutil::TripleSchema;

Rows TripleRows(const std::string& name,
                std::vector<std::array<int64_t, 3>> rows) {
  Rows out(TripleSchema(name));
  for (const auto& r : rows) {
    out.Add(Tuple({Value::Int64(r[0]), Value::Int64(r[1]), Value::Int64(r[2])}),
            1);
  }
  return out;
}

TEST(JoinPipelineTest, TwoWayEquiJoin) {
  auto def = testutil::SpjTripleView("V", {"A", "B"});
  Rows a = TripleRows("A", {{1, 10, 0}, {2, 20, 1}, {3, 30, 2}});
  Rows b = TripleRows("B", {{2, 200, 1}, {3, 300, 2}, {4, 400, 3}});
  OperatorStats stats;
  Rows joined = EvalJoinPipeline(*def, {a, b}, &stats);
  EXPECT_EQ(joined.rows.size(), 2u);
  EXPECT_EQ(joined.schema.num_columns(), 6u);
  EXPECT_EQ(stats.rows_scanned, 6);
}

TEST(JoinPipelineTest, ThreeWayChainsLeftDeep) {
  auto def = testutil::SpjTripleView("V", {"A", "B", "C"});
  Rows a = TripleRows("A", {{1, 1, 0}, {2, 1, 0}});
  Rows b = TripleRows("B", {{1, 2, 0}, {2, 2, 0}});
  Rows c = TripleRows("C", {{1, 3, 0}});
  Rows joined = EvalJoinPipeline(*def, {a, b, c}, nullptr);
  EXPECT_EQ(joined.rows.size(), 1u);  // only key 1 survives all three
}

TEST(JoinPipelineTest, SignedMultiplicitiesFlowThrough) {
  auto def = testutil::SpjTripleView("V", {"A", "B"});
  Rows a(TripleSchema("A"));
  a.Add(Tuple({Value::Int64(1), Value::Int64(5), Value::Int64(0)}), -2);
  Rows b(TripleSchema("B"));
  b.Add(Tuple({Value::Int64(1), Value::Int64(7), Value::Int64(0)}), 3);
  Rows joined = EvalJoinPipeline(*def, {a, b}, nullptr);
  ASSERT_EQ(joined.rows.size(), 1u);
  EXPECT_EQ(joined.rows[0].second, -6);
}

TEST(JoinPipelineTest, SingleSourceFilterPushdownCountsScans) {
  // The filter in SpjTripleView(with_filter) references only source 0, so
  // it runs at the scan: scanned = |A| (filter) + |A after filter| + |B|
  // contributions from the join.
  auto def = testutil::SpjTripleView("V", {"A", "B"}, /*with_filter=*/true);
  Rows a = TripleRows("A", {{1, 0, 0}, {2, 5, 0}, {3, 7, 0}});  // v=0 dropped
  Rows b = TripleRows("B", {{1, 1, 0}, {2, 2, 0}, {3, 3, 0}});
  OperatorStats stats;
  Rows joined = EvalJoinPipeline(*def, {a, b}, &stats);
  EXPECT_EQ(joined.rows.size(), 2u);  // key 1 filtered out before the join
}

TEST(JoinPipelineTest, MultiSourcePredicateAppliedAfterJoin) {
  // A conjunct spanning A and B must survive classification and run once
  // both are joined.
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")
                 .JoinOn("A_k", "B_k")
                 .Where(ScalarExpr::Compare(CompareOp::kLt,
                                            ScalarExpr::Column("A_v"),
                                            ScalarExpr::Column("B_v")))
                 .SelectColumn("A_k", "V_k")
                 .SelectColumn("A_v", "V_v")
                 .SelectColumn("A_g", "V_g")
                 .Build();
  Rows a = TripleRows("A", {{1, 10, 0}, {2, 50, 0}});
  Rows b = TripleRows("B", {{1, 20, 0}, {2, 20, 0}});
  Rows joined = EvalJoinPipeline(*def, {a, b}, nullptr);
  EXPECT_EQ(joined.rows.size(), 1u);  // only key 1 has A_v < B_v
}

TEST(JoinPipelineTest, DisconnectedSourceIsCrossProduct) {
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")  // no join condition
                 .SelectColumn("A_k", "V_k")
                 .SelectColumn("B_k", "V_b")
                 .Build();
  Rows a = TripleRows("A", {{1, 0, 0}, {2, 0, 0}});
  Rows b = TripleRows("B", {{7, 0, 0}, {8, 0, 0}, {9, 0, 0}});
  Rows joined = EvalJoinPipeline(*def, {a, b}, nullptr);
  EXPECT_EQ(joined.rows.size(), 6u);
}

TEST(JoinPipelineTest, MultipleEdgesToSameSourceBecomeCompositeKey) {
  // Join on both _k and _g simultaneously.
  auto def = ViewDefinitionBuilder("V")
                 .From("A")
                 .From("B")
                 .JoinOn("A_k", "B_k")
                 .JoinOn("A_g", "B_g")
                 .SelectColumn("A_k", "V_k")
                 .Build();
  Rows a = TripleRows("A", {{1, 0, 0}, {2, 0, 1}});
  Rows b = TripleRows("B", {{1, 9, 0}, {2, 9, 2}});  // g mismatch on key 2
  Rows joined = EvalJoinPipeline(*def, {a, b}, nullptr);
  EXPECT_EQ(joined.rows.size(), 1u);
}

TEST(JoinPipelineTest, RawProjectionForAggregateViews) {
  auto def = testutil::AggTripleView("V", {"A", "B"});
  Rows a = TripleRows("A", {{1, 10, 2}});
  Rows b = TripleRows("B", {{1, 5, 0}});
  Rows joined = EvalJoinPipeline(*def, {a, b}, nullptr);
  Rows raw = ProjectToRaw(*def, joined, nullptr);
  // Raw schema: group keys (V_k, V_g) + __arg0 for the SUM.
  EXPECT_EQ(raw.schema.num_columns(), 3u);
  EXPECT_EQ(raw.schema.column(2).name, "__arg0");
  ASSERT_EQ(raw.rows.size(), 1u);
  EXPECT_EQ(raw.rows[0].first.value(2).AsInt64(), 15);  // A_v + B_v
}

TEST(JoinPipelineTest, RawSchemaMatchesProjectToRaw) {
  auto def = testutil::AggTripleView("V", {"A", "B"});
  Schema from_helper = RawSchema(*def, [&](const std::string& n) -> const Schema& {
    static Schema a = TripleSchema("A");
    static Schema b = TripleSchema("B");
    return n == "A" ? a : b;
  });
  Rows a = TripleRows("A", {{1, 10, 2}});
  Rows b = TripleRows("B", {{1, 5, 0}});
  Rows raw = ProjectToRaw(*def, EvalJoinPipeline(*def, {a, b}, nullptr),
                          nullptr);
  EXPECT_EQ(from_helper, raw.schema);
}

TEST(JoinPipelineDeathTest, WrongInputCountAborts) {
  auto def = testutil::SpjTripleView("V", {"A", "B"});
  Rows a = TripleRows("A", {});
  EXPECT_DEATH(EvalJoinPipeline(*def, {a}, nullptr), "one input per");
}

}  // namespace
}  // namespace wuw
