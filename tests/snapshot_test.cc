#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <cstdlib>

#include "core/min_work.h"
#include "exec/executor.h"
#include "io/snapshot.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* base = std::getenv("TMPDIR");
    dir_ = std::string(base != nullptr ? base : "/tmp") + "/wuw_snapshot_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }

  void TearDown() override {
    std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripsTripleWarehouse) {
  Warehouse original =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, 11);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;

  Warehouse loaded(Vdag{});
  ASSERT_TRUE(LoadWarehouse(dir_, &loaded, &error)) << error;
  EXPECT_EQ(loaded.vdag().view_names(), original.vdag().view_names());
  EXPECT_TRUE(loaded.catalog().ContentsEqual(original.catalog()));
}

TEST_F(SnapshotTest, RoundTripsPendingDeltas) {
  Warehouse original =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, 13);
  testutil::ApplyTripleChanges(&original, 0.2, 5, 17);
  Catalog truth = testutil::GroundTruthAfterChanges(original);

  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;
  Warehouse loaded(Vdag{});
  ASSERT_TRUE(LoadWarehouse(dir_, &loaded, &error)) << error;

  // The pending batch survived: running the update on the LOADED warehouse
  // reaches the same state the original would have reached.
  Executor executor(&loaded);
  executor.Execute(MinWork(loaded.vdag(), loaded.EstimatedSizes()).strategy);
  EXPECT_TRUE(loaded.catalog().ContentsEqual(truth));
}

TEST_F(SnapshotTest, RoundTripsTpcdWarehouse) {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  Warehouse original = tpcd::MakeTpcdWarehouse(options, {"Q3"});
  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;
  Warehouse loaded(Vdag{});
  ASSERT_TRUE(LoadWarehouse(dir_, &loaded, &error)) << error;
  EXPECT_TRUE(loaded.catalog().ContentsEqual(original.catalog()));
  EXPECT_TRUE(loaded.vdag().IsUniform());
}

TEST_F(SnapshotTest, SaveClearsStaleDeltaFiles) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 30, 19);
  testutil::ApplyTripleChanges(&w, 0.2, 0, 23);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(w, dir_, &error)) << error;

  // Consume the batch and re-save: delta files must disappear.
  Executor executor(&w);
  executor.Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
  ASSERT_TRUE(SaveWarehouse(w, dir_, &error)) << error;

  Warehouse loaded(Vdag{});
  ASSERT_TRUE(LoadWarehouse(dir_, &loaded, &error)) << error;
  for (const std::string& base : loaded.vdag().BaseViews()) {
    EXPECT_TRUE(loaded.base_delta(base).empty()) << base;
  }
  EXPECT_TRUE(loaded.catalog().ContentsEqual(w.catalog()));
}

TEST_F(SnapshotTest, LoadFailsOnMissingDirectory) {
  Warehouse loaded(Vdag{});
  std::string error;
  EXPECT_FALSE(LoadWarehouse(dir_ + "_nonexistent", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

// WriteFile is temp-and-rename: a completed save must leave only the
// final files, never a stray *.tmp a crashed writer would have orphaned
// into a half-written snapshot.
TEST_F(SnapshotTest, SaveLeavesNoTempFiles) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 20, 31);
  testutil::ApplyTripleChanges(&w, 0.2, 4, 33);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(w, dir_, &error)) << error;

  DIR* d = opendir(dir_.c_str());
  ASSERT_NE(d, nullptr);
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "stray temp file: " << name;
  }
  closedir(d);
}

TEST_F(SnapshotTest, LoadFailsOnTruncatedCsv) {
  Warehouse original =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 20, 37);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;
  // A row with too few columns — what a torn write mid-row leaves behind.
  std::FILE* f = std::fopen((dir_ + "/A.csv").c_str(), "w");
  std::fputs("__count,A_k,A_v,A_g\n1,2\n", f);
  std::fclose(f);
  Warehouse loaded(Vdag{});
  EXPECT_FALSE(LoadWarehouse(dir_, &loaded, &error));
  EXPECT_NE(error.find("A.csv"), std::string::npos);
}

TEST_F(SnapshotTest, LoadFailsOnCorruptSchema) {
  Warehouse original =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 20, 41);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;
  std::FILE* f = std::fopen((dir_ + "/schema.sql").c_str(), "w");
  std::fputs("CREATE GARBAGE (((", f);
  std::fclose(f);
  Warehouse loaded(Vdag{});
  EXPECT_FALSE(LoadWarehouse(dir_, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(SnapshotTest, LoadFailsOnCorruptCsv) {
  Warehouse original =
      testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 20, 29);
  std::string error;
  ASSERT_TRUE(SaveWarehouse(original, dir_, &error)) << error;
  // Corrupt one base CSV.
  std::FILE* f = std::fopen((dir_ + "/A.csv").c_str(), "w");
  std::fputs("__count,A_k,A_v,A_g\n1,notanumber,2,3\n", f);
  std::fclose(f);
  Warehouse loaded(Vdag{});
  EXPECT_FALSE(LoadWarehouse(dir_, &loaded, &error));
  EXPECT_NE(error.find("A.csv"), std::string::npos);
}

}  // namespace
}  // namespace wuw
