#include <gtest/gtest.h>

#include "delta/delta_relation.h"
#include "delta/install.h"
#include "delta/summary_delta.h"
#include "test_util.h"
#include "view/join_pipeline.h"
#include "view/recompute.h"

namespace wuw {
namespace {

Schema KV() { return Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}); }

Tuple Row(int64_t k, int64_t v) {
  return Tuple({Value::Int64(k), Value::Int64(v)});
}

TEST(DeltaRelationTest, PlusMinusAccounting) {
  DeltaRelation d(KV());
  d.Add(Row(1, 10), 2);
  d.Add(Row(2, 20), -3);
  EXPECT_EQ(d.plus_count(), 2);
  EXPECT_EQ(d.minus_count(), 3);
  EXPECT_EQ(d.AbsCardinality(), 5);
  EXPECT_EQ(d.NetCardinality(), -1);
}

TEST(DeltaRelationTest, CancellationRemovesEntries) {
  DeltaRelation d(KV());
  d.Add(Row(1, 10), 2);
  d.Add(Row(1, 10), -2);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.AbsCardinality(), 0);
}

TEST(DeltaRelationTest, SignFlipKeepsTotalsConsistent) {
  DeltaRelation d(KV());
  d.Add(Row(1, 10), 1);
  d.Add(Row(1, 10), -3);  // net -2
  EXPECT_EQ(d.plus_count(), 0);
  EXPECT_EQ(d.minus_count(), 2);
  d.Add(Row(1, 10), 5);  // net +3
  EXPECT_EQ(d.plus_count(), 3);
  EXPECT_EQ(d.minus_count(), 0);
}

TEST(DeltaRelationTest, ToRowsRoundTrip) {
  DeltaRelation d(KV());
  d.Add(Row(1, 10), 2);
  d.Add(Row(2, 20), -1);
  Rows r = d.ToRows();
  EXPECT_EQ(r.AbsCardinality(), 3);
  EXPECT_EQ(r.SignedCardinality(), 1);
}

TEST(InstallTest, AppliesPlusAndMinus) {
  Table t(KV());
  t.Add(Row(1, 10), 1);
  t.Add(Row(2, 20), 2);

  DeltaRelation d(KV());
  d.Add(Row(1, 10), -1);  // delete
  d.Add(Row(3, 30), 1);   // insert
  d.Add(Row(2, 20), 1);   // bump multiplicity

  OperatorStats stats;
  Install(d, &t, &stats);
  EXPECT_EQ(t.Count(Row(1, 10)), 0);
  EXPECT_EQ(t.Count(Row(2, 20)), 3);
  EXPECT_EQ(t.Count(Row(3, 30)), 1);
  EXPECT_EQ(stats.rows_scanned, 3);  // |δV| = 3
}

TEST(FinalizeSpjDeltaTest, CollapsesDuplicates) {
  Rows raw(KV());
  raw.Add(Row(1, 10), 1);
  raw.Add(Row(1, 10), 1);
  raw.Add(Row(2, 20), -1);
  raw.Add(Row(2, 20), 1);  // cancels
  DeltaRelation d = FinalizeSpjDelta(KV(), raw, nullptr);
  EXPECT_EQ(d.plus_count(), 2);
  EXPECT_EQ(d.minus_count(), 0);
  EXPECT_EQ(d.distinct_size(), 1u);
}

// Aggregate finalization fixture: view V = SELECT g, SUM(v), COUNT over a
// single base view.
class AggregateFinalizeTest : public ::testing::Test {
 protected:
  AggregateFinalizeTest() {
    def_ = ViewDefinitionBuilder("V")
               .From("B")
               .Select(ScalarExpr::Column("b_g"), "g")
               .Sum(ScalarExpr::Column("b_v"), "s")
               .Build();
    // Current extent: group 1 has sum 30 over 2 rows; group 2 sum 5 over 1.
    current_ = Table(Schema({{"g", TypeId::kInt64},
                             {"s", TypeId::kInt64},
                             {"__count", TypeId::kInt64}}));
    current_.Add(Tuple({Value::Int64(1), Value::Int64(30), Value::Int64(2)}),
                 1);
    current_.Add(Tuple({Value::Int64(2), Value::Int64(5), Value::Int64(1)}),
                 1);
    raw_ = Rows(Schema({{"g", TypeId::kInt64}, {"__arg0", TypeId::kInt64}}));
  }

  std::shared_ptr<const ViewDefinition> def_;
  Table current_;
  Rows raw_;
};

TEST_F(AggregateFinalizeTest, UpdatesExistingGroup) {
  raw_.Add(Tuple({Value::Int64(1), Value::Int64(12)}), 1);  // insert v=12
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  // {-(1,30,2), +(1,42,3)}
  EXPECT_EQ(d.plus_count(), 1);
  EXPECT_EQ(d.minus_count(), 1);
  EXPECT_EQ(
      d.ToRows().rows.size(), 2u);
}

TEST_F(AggregateFinalizeTest, DeletesDyingGroup) {
  raw_.Add(Tuple({Value::Int64(2), Value::Int64(5)}), -1);  // last row gone
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  EXPECT_EQ(d.plus_count(), 0);
  EXPECT_EQ(d.minus_count(), 1);
}

TEST_F(AggregateFinalizeTest, CreatesNewGroup) {
  raw_.Add(Tuple({Value::Int64(9), Value::Int64(7)}), 1);
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  EXPECT_EQ(d.plus_count(), 1);
  EXPECT_EQ(d.minus_count(), 0);
  bool found = false;
  d.ForEach([&](const Tuple& t, int64_t c) {
    if (t.value(0).AsInt64() == 9) {
      found = true;
      EXPECT_EQ(c, 1);
      EXPECT_EQ(t.value(1).AsInt64(), 7);
      EXPECT_EQ(t.value(2).AsInt64(), 1);
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(AggregateFinalizeTest, NoopChangeCancelsExactly) {
  // Delete v=10 and insert v=10 in group 1: old row == new row.
  raw_.Add(Tuple({Value::Int64(1), Value::Int64(10)}), -1);
  raw_.Add(Tuple({Value::Int64(1), Value::Int64(10)}), 1);
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  EXPECT_TRUE(d.empty());
}

TEST_F(AggregateFinalizeTest, EmptyRawYieldsEmptyDelta) {
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  EXPECT_TRUE(d.empty());
}

TEST_F(AggregateFinalizeTest, UpdatePairInOneGroup) {
  // Replace v=10 by v=25 in group 1: count unchanged, sum +15.
  raw_.Add(Tuple({Value::Int64(1), Value::Int64(10)}), -1);
  raw_.Add(Tuple({Value::Int64(1), Value::Int64(25)}), 1);
  DeltaRelation d = FinalizeAggregateDelta(*def_, current_, raw_, nullptr);
  EXPECT_EQ(d.plus_count(), 1);
  EXPECT_EQ(d.minus_count(), 1);
  d.ForEach([&](const Tuple& t, int64_t c) {
    if (c > 0) {
      EXPECT_EQ(t.value(1).AsInt64(), 45);
      EXPECT_EQ(t.value(2).AsInt64(), 2);
    }
  });
}

}  // namespace
}  // namespace wuw
