#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "query/ad_hoc.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_schema.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    tpcd::GeneratorOptions options;
    options.scale_factor = 0.002;
    options.seed = 3;
    warehouse_ = std::make_unique<Warehouse>(
        tpcd::MakeTpcdWarehouse(options, {"Q3"}));
  }

  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(QueryTest, SimpleSelection) {
  QueryResult r = ExecuteQuery(
      *warehouse_,
      "SELECT n_name FROM NATION WHERE n_regionkey = 2");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.rows.rows.size(), 5u);  // 25 nations / 5 regions
}

TEST_F(QueryTest, JoinQuery) {
  QueryResult r = ExecuteQuery(*warehouse_, R"sql(
      SELECT n_name, r_name
      FROM NATION, REGION
      WHERE n_regionkey = r_regionkey AND r_name = 'ASIA')sql");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.rows.rows.size(), 5u);
  EXPECT_EQ(r.rows.schema.num_columns(), 2u);
}

TEST_F(QueryTest, AggregateQueryAgainstBaseViews) {
  QueryResult r = ExecuteQuery(*warehouse_, R"sql(
      SELECT c_mktsegment, COUNT(*) AS customers
      FROM CUSTOMER GROUP BY c_mktsegment)sql");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.rows.rows.size(), 5u);  // five market segments
  int64_t total = 0;
  for (const auto& [row, mult] : r.rows.rows) {
    total += row.value(1).AsInt64();
  }
  EXPECT_EQ(total,
            warehouse_->catalog().MustGetTable(tpcd::kCustomer)->cardinality());
}

TEST_F(QueryTest, QueryOverSummaryTable) {
  // Readers hit the materialized Q3 directly — the whole point of keeping
  // it maintained.
  QueryResult r = ExecuteQuery(*warehouse_, R"sql(
      SELECT l_orderkey, revenue FROM Q3 WHERE revenue > 0)sql");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.rows.rows.size(),
            static_cast<size_t>(
                warehouse_->catalog().MustGetTable("Q3")->cardinality()));
}

TEST_F(QueryTest, QueriesSeeInstalledUpdates) {
  QueryResult before = ExecuteQuery(
      *warehouse_, "SELECT o_orderkey FROM ORDERS");
  ASSERT_TRUE(before.ok());

  tpcd::ApplyPaperChangeWorkload(warehouse_.get(), 0.10, 0.0, 9);
  Executor executor(warehouse_.get());
  executor.Execute(
      MinWork(warehouse_->vdag(), warehouse_->EstimatedSizes()).strategy);

  QueryResult after = ExecuteQuery(
      *warehouse_, "SELECT o_orderkey FROM ORDERS");
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.rows.rows.size(), before.rows.rows.size());
}

TEST_F(QueryTest, ErrorsAreReportedNotFatal) {
  EXPECT_FALSE(ExecuteQuery(*warehouse_, "SELECT x FROM NO_SUCH").ok());
  EXPECT_FALSE(ExecuteQuery(*warehouse_, "SELECT nope FROM ORDERS").ok());
  EXPECT_FALSE(ExecuteQuery(*warehouse_, "not sql at all").ok());
  EXPECT_FALSE(
      ExecuteQuery(*warehouse_, "SELECT SUM(o_orderkey) AS s FROM ORDERS")
          .ok());  // aggregate without GROUP BY
}

TEST_F(QueryTest, ToTextRendersTable) {
  QueryResult r = ExecuteQuery(
      *warehouse_, "SELECT r_regionkey, r_name FROM REGION");
  ASSERT_TRUE(r.ok()) << r.error;
  std::string text = r.ToText();
  EXPECT_NE(text.find("r_name"), std::string::npos);
  EXPECT_NE(text.find("ASIA"), std::string::npos);
  EXPECT_NE(text.find("(5 rows)"), std::string::npos);
}

TEST_F(QueryTest, ToTextTruncates) {
  QueryResult r = ExecuteQuery(
      *warehouse_, "SELECT c_custkey FROM CUSTOMER");
  ASSERT_TRUE(r.ok()) << r.error;
  std::string text = r.ToText(/*max_rows=*/3);
  EXPECT_NE(text.find("more)"), std::string::npos);
}

TEST_F(QueryTest, DeterministicRowOrder) {
  QueryResult a = ExecuteQuery(*warehouse_, "SELECT n_name FROM NATION");
  QueryResult b = ExecuteQuery(*warehouse_, "SELECT n_name FROM NATION");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.rows.rows.size(), b.rows.rows.size());
  for (size_t i = 0; i < a.rows.rows.size(); ++i) {
    EXPECT_EQ(a.rows.rows[i].first, b.rows.rows[i].first);
  }
}

}  // namespace
}  // namespace wuw
