// Unit tests for the observability layer (src/obs): the counter registry's
// arm/disarm/reset/snapshot semantics, TraceSpan nesting and buffer
// accounting, and the two trace renderers (Chrome trace-event JSON is
// checked against a real JSON grammar, not substring matching).
//
// The registry and trace buffer are process-global, so every test restores
// the armed state it found (a CI run with WUW_METRICS / WUW_TRACE set arms
// both at static init) and uses obs_test.*-prefixed counter names.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wuw {
namespace obs {
namespace {

// ---- minimal JSON validity checker ----------------------------------------

/// Recursive-descent validator for the JSON value grammar (RFC 8259 minus
/// \uXXXX surrogate-pair pairing).  Small on purpose: the test needs "is
/// this parseable JSON", not a DOM.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool String() {
    if (!Peek('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek('-')) {
    }
    if (!Digits()) return false;
    if (Peek('.') && !Digits()) return false;
    if ((Peek('e') || Peek('E'))) {
      if (Peek('+') || Peek('-')) {
      }
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---- fixtures -------------------------------------------------------------

/// Saves and restores the global armed states so tests compose with an
/// env-armed run (WUW_METRICS / WUW_TRACE) and with each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_armed_ = MetricsArmed();
    tracing_was_armed_ = TracingArmed();
    DisarmTracing();
    ArmMetrics();
  }
  void TearDown() override {
    ResetMetrics();
    if (metrics_were_armed_) {
      ArmMetrics();
    } else {
      DisarmMetrics();
    }
    if (tracing_was_armed_) {
      ArmTracing();
    } else {
      DisarmTracing();
    }
  }

  bool metrics_were_armed_ = false;
  bool tracing_was_armed_ = false;
};

int64_t SnapshotValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

// ---- metrics --------------------------------------------------------------

TEST_F(ObsTest, DisarmedAddsAreDropped) {
  ResetMetrics();
  WUW_METRIC_ADD("obs_test.gate", MetricClass::kWork, 1);  // armed: registers
  DisarmMetrics();
  for (int i = 0; i < 10; ++i) {
    WUW_METRIC_ADD("obs_test.gate", MetricClass::kWork, 1);
  }
  ArmMetrics();
  EXPECT_EQ(GetCounter("obs_test.gate", MetricClass::kWork)->value(), 1);
  WUW_METRIC_ADD("obs_test.gate", MetricClass::kWork, 5);
  EXPECT_EQ(GetCounter("obs_test.gate", MetricClass::kWork)->value(), 6);
}

TEST_F(ObsTest, SnapshotIsSortedAndExcludesZeros) {
  ResetMetrics();
  GetCounter("obs_test.zzz", MetricClass::kWork)->Add(7);
  GetCounter("obs_test.aaa", MetricClass::kWork)->Add(3);
  GetCounter("obs_test.mmm", MetricClass::kWork)->Add(0);  // stays zero

  MetricsSnapshot snap = SnapshotMetrics(Mask(MetricClass::kWork));
  ASSERT_GE(snap.counters.size(), 2u);
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  EXPECT_EQ(SnapshotValue(snap, "obs_test.aaa"), 3);
  EXPECT_EQ(SnapshotValue(snap, "obs_test.zzz"), 7);
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "obs_test.mmm") << "zero-valued counter leaked";
    EXPECT_NE(value, 0);
  }
}

TEST_F(ObsTest, MaskFiltersByClass) {
  ResetMetrics();
  GetCounter("obs_test.work", MetricClass::kWork)->Add(1);
  GetCounter("obs_test.engine", MetricClass::kEngine)->Add(2);
  GetCounter("obs_test.sched", MetricClass::kSched)->Add(3);
  GetCounter("obs_test.time", MetricClass::kTime)->Add(4);

  MetricsSnapshot work = SnapshotMetrics(Mask(MetricClass::kWork));
  EXPECT_EQ(SnapshotValue(work, "obs_test.work"), 1);
  EXPECT_EQ(SnapshotValue(work, "obs_test.engine"), 0);
  EXPECT_EQ(SnapshotValue(work, "obs_test.time"), 0);

  // The deterministic mask (what WUW_METRICS dumps and CI diffs) excludes
  // scheduling shape and wall time.
  MetricsSnapshot det = SnapshotMetrics(kDeterministicMask);
  EXPECT_EQ(SnapshotValue(det, "obs_test.work"), 1);
  EXPECT_EQ(SnapshotValue(det, "obs_test.engine"), 2);
  EXPECT_EQ(SnapshotValue(det, "obs_test.sched"), 0);
  EXPECT_EQ(SnapshotValue(det, "obs_test.time"), 0);

  MetricsSnapshot all = SnapshotMetrics(kAllMetricsMask);
  EXPECT_EQ(SnapshotValue(all, "obs_test.sched"), 3);
  EXPECT_EQ(SnapshotValue(all, "obs_test.time"), 4);
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations) {
  ResetMetrics();
  Counter* c = GetCounter("obs_test.reset_me", MetricClass::kWork);
  c->Add(41);
  ResetMetrics();
  EXPECT_EQ(c->value(), 0);
  MetricsSnapshot snap = SnapshotMetrics(kAllMetricsMask);
  EXPECT_EQ(SnapshotValue(snap, "obs_test.reset_me"), 0);
  // The interned pointer stays usable after a reset.
  c->Add(2);
  EXPECT_EQ(c->value(), 2);
  EXPECT_EQ(GetCounter("obs_test.reset_me", MetricClass::kWork), c);
}

TEST_F(ObsTest, SnapshotEqualityAndToString) {
  ResetMetrics();
  GetCounter("obs_test.eq", MetricClass::kWork)->Add(12);
  MetricsSnapshot a = SnapshotMetrics(Mask(MetricClass::kWork));
  MetricsSnapshot b = SnapshotMetrics(Mask(MetricClass::kWork));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString().find("obs_test.eq"), std::string::npos);
  EXPECT_NE(a.ToString().find("12"), std::string::npos);

  GetCounter("obs_test.eq", MetricClass::kWork)->Add(1);
  MetricsSnapshot c = SnapshotMetrics(Mask(MetricClass::kWork));
  EXPECT_NE(a, c);
}

TEST_F(ObsTest, CounterMetadataIsFixedAtRegistration) {
  Counter* c = GetCounter("obs_test.meta", MetricClass::kEngine);
  EXPECT_EQ(c->name(), "obs_test.meta");
  EXPECT_EQ(c->metric_class(), MetricClass::kEngine);
  // Same (name, class) re-registration interns to the same counter.
  EXPECT_EQ(GetCounter("obs_test.meta", MetricClass::kEngine), c);
}

// ---- tracing --------------------------------------------------------------

TEST_F(ObsTest, SpansNestAndDrainSorted) {
  (void)DrainTrace();  // start from an empty buffer
  ArmTracing();
  {
    TraceSpan outer("exec", "outer");
    TraceSpan inner("view", [] { return std::string("inner"); });
  }
  DisarmTracing();

  std::vector<TraceEvent> events = DrainTrace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (tid, start, depth): the outer span started first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_STREQ(events[0].category, "exec");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_STREQ(events[1].category, "view");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[0].duration_us, events[1].duration_us);
  // Drain cleared the buffer.
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(DroppedTraceEvents(), 0);
}

TEST_F(ObsTest, LazyNameNotInvokedWhenDisarmed) {
  DisarmTracing();
  bool invoked = false;
  {
    TraceSpan span("exec", [&invoked] {
      invoked = true;
      return std::string("expensive");
    });
  }
  EXPECT_FALSE(invoked);

  (void)DrainTrace();
  ArmTracing();
  {
    TraceSpan span("exec", [&invoked] {
      invoked = true;
      return std::string("expensive");
    });
  }
  DisarmTracing();
  EXPECT_TRUE(invoked);
  EXPECT_EQ(DrainTrace().size(), 1u);
}

TEST_F(ObsTest, TraceSinceIsANonDestructiveTail) {
  (void)DrainTrace();
  ArmTracing();
  { TraceSpan a("exec", "before-mark"); }
  size_t mark = TraceEventCount();
  { TraceSpan b("exec", "after-mark"); }
  DisarmTracing();

  std::vector<TraceEvent> tail = TraceSince(mark);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].name, "after-mark");
  // The full buffer is still intact for a later drain (e.g. WUW_TRACE's
  // exit hook).
  EXPECT_EQ(TraceEventCount(), 2u);
  EXPECT_EQ(DrainTrace().size(), 2u);
}

TEST_F(ObsTest, DisarmedSpansRecordNothing) {
  (void)DrainTrace();
  DisarmTracing();
  {
    TraceSpan span("exec", "ghost");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonIsValidAndEscaped) {
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.name = "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
  e.category = "exec";
  e.tid = 3;
  e.depth = 1;
  e.start_us = 1000;
  e.duration_us = 250;
  events.push_back(e);
  TraceEvent plain;
  plain.name = "Comp(Q3, {ORDERS})";
  plain.category = "view";
  plain.start_us = 1100;
  plain.duration_us = 50;
  events.push_back(plain);

  std::string json = ChromeTraceJson(events);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // No raw control characters survive into the output.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control char in JSON";
  }
}

TEST_F(ObsTest, ChromeTraceJsonEmptyIsValid) {
  std::string json = ChromeTraceJson({});
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST_F(ObsTest, HumanTimelineIndentsByDepthAndGroupsByThread) {
  std::vector<TraceEvent> events;
  TraceEvent outer;
  outer.name = "strategy";
  outer.category = "exec";
  outer.tid = 0;
  outer.depth = 0;
  outer.start_us = 5000;
  outer.duration_us = 900;
  TraceEvent inner = outer;
  inner.name = "Comp(V)";
  inner.category = "view";
  inner.depth = 1;
  inner.start_us = 5100;
  inner.duration_us = 300;
  TraceEvent other;
  other.name = "stage[1]";
  other.category = "exec";
  other.tid = 2;
  other.start_us = 5200;
  other.duration_us = 100;
  events = {outer, inner, other};

  std::string timeline = HumanTimeline(events);
  EXPECT_NE(timeline.find("thread 0\n"), std::string::npos);
  EXPECT_NE(timeline.find("thread 2\n"), std::string::npos);
  EXPECT_NE(timeline.find("exec: strategy"), std::string::npos);
  // Depth 1 renders two extra leading spaces before the category.
  EXPECT_NE(timeline.find("  view: Comp(V)"), std::string::npos);
  // Timestamps are relative to the earliest span, so the first line is 0.
  EXPECT_NE(timeline.find("0.000ms"), std::string::npos);
  EXPECT_EQ(HumanTimeline({}), "");
}

}  // namespace
}  // namespace obs
}  // namespace wuw
