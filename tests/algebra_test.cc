#include <gtest/gtest.h>

#include "algebra/aggregate.h"
#include "algebra/filter.h"
#include "algebra/hash_join.h"
#include "algebra/project.h"
#include "algebra/rows.h"

namespace wuw {
namespace {

Rows MakeRows(const Schema& schema,
              std::vector<std::pair<std::vector<int64_t>, int64_t>> data) {
  Rows out(schema);
  for (auto& [values, count] : data) {
    std::vector<Value> row;
    for (int64_t v : values) row.push_back(Value::Int64(v));
    out.Add(Tuple(std::move(row)), count);
  }
  return out;
}

Schema KV() { return Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}); }

TEST(RowsTest, Cardinalities) {
  Rows r = MakeRows(KV(), {{{1, 10}, 2}, {{2, 20}, -3}});
  EXPECT_EQ(r.SignedCardinality(), -1);
  EXPECT_EQ(r.AbsCardinality(), 5);
  EXPECT_FALSE(r.empty());
}

TEST(RowsTest, FromTablePreservesMultiplicity) {
  Table t(KV());
  t.Add(Tuple({Value::Int64(1), Value::Int64(10)}), 3);
  Rows r = Rows::FromTable(t);
  EXPECT_EQ(r.SignedCardinality(), 3);
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST(FilterTest, KeepsMatchingSignedRows) {
  Rows in = MakeRows(KV(), {{{1, 10}, 1}, {{2, 20}, -2}, {{3, 30}, 1}});
  OperatorStats stats;
  Rows out = Filter(in,
                    ScalarExpr::Compare(CompareOp::kGe, ScalarExpr::Column("v"),
                                        ScalarExpr::Literal(Value::Int64(20))),
                    &stats);
  EXPECT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.SignedCardinality(), -1);
  EXPECT_EQ(stats.rows_scanned, 4);  // |mult| summed
  EXPECT_EQ(stats.rows_produced, 3);
}

TEST(FilterTest, NullPredicatePassesThrough) {
  Rows in = MakeRows(KV(), {{{1, 10}, 1}});
  Rows out = Filter(in, nullptr, nullptr);
  EXPECT_EQ(out.rows.size(), 1u);
}

TEST(ProjectTest, ComputesExpressions) {
  Rows in = MakeRows(KV(), {{{1, 10}, 2}});
  OperatorStats stats;
  Rows out = Project(
      in,
      {{ScalarExpr::Arith(ArithOp::kAdd, ScalarExpr::Column("k"),
                          ScalarExpr::Column("v")),
        "sum"}},
      &stats);
  EXPECT_EQ(out.schema.num_columns(), 1u);
  EXPECT_EQ(out.schema.column(0).name, "sum");
  EXPECT_EQ(out.rows[0].first.value(0).AsInt64(), 11);
  EXPECT_EQ(out.rows[0].second, 2);
}

TEST(ProjectTest, DoesNotCollapseDuplicates) {
  Rows in = MakeRows(KV(), {{{1, 10}, 1}, {{2, 10}, 1}});
  Rows out = Project(in, {{ScalarExpr::Column("v"), "v"}}, nullptr);
  EXPECT_EQ(out.rows.size(), 2u);  // multiset projection keeps both
}

TEST(HashJoinTest, BasicEquiJoin) {
  Rows left = MakeRows(KV(), {{{1, 10}, 1}, {{2, 20}, 1}, {{3, 30}, 1}});
  Rows right = MakeRows(Schema({{"k2", TypeId::kInt64}, {"w", TypeId::kInt64}}),
                        {{{2, 200}, 1}, {{3, 300}, 1}, {{4, 400}, 1}});
  OperatorStats stats;
  Rows out = HashJoin(left, right, JoinKeys{{"k"}, {"k2"}}, &stats);
  EXPECT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.schema.num_columns(), 4u);
  EXPECT_EQ(stats.hash_build_rows, 3);
  EXPECT_EQ(stats.hash_probes, 3);
}

TEST(HashJoinTest, MultiplicitiesMultiply) {
  Rows left = MakeRows(KV(), {{{1, 10}, -2}});
  Rows right =
      MakeRows(Schema({{"k2", TypeId::kInt64}}), {});
  right.Add(Tuple({Value::Int64(1)}), 3);
  Rows out = HashJoin(left, right, JoinKeys{{"k"}, {"k2"}}, nullptr);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].second, -6);
}

TEST(HashJoinTest, MultiColumnKeys) {
  Schema ab({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
  Schema cd({{"c", TypeId::kInt64}, {"d", TypeId::kInt64}});
  Rows left = MakeRows(ab, {{{1, 2}, 1}, {{1, 3}, 1}});
  Rows right = MakeRows(cd, {{{1, 2}, 1}});
  Rows out = HashJoin(left, right, JoinKeys{{"a", "b"}, {"c", "d"}}, nullptr);
  EXPECT_EQ(out.rows.size(), 1u);
}

TEST(HashJoinTest, EmptyKeysIsCrossProduct) {
  Rows left = MakeRows(KV(), {{{1, 10}, 1}, {{2, 20}, 1}});
  Rows right = MakeRows(Schema({{"z", TypeId::kInt64}}), {{{7}, 1}, {{8}, 1}});
  Rows out = HashJoin(left, right, JoinKeys{}, nullptr);
  EXPECT_EQ(out.rows.size(), 4u);
}

TEST(AggregateTest, SumAndCountOverPositiveRows) {
  Rows in = MakeRows(Schema({{"g", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                     {{{1, 10}, 1}, {{1, 20}, 2}, {{2, 5}, 1}});
  std::vector<AggSpec> aggs = {
      {AggFn::kSum, ScalarExpr::Column("v"), "s"},
      {AggFn::kCount, nullptr, "c"},
  };
  Rows out = AggregateSigned(in, {"g"}, aggs, nullptr);
  EXPECT_EQ(out.rows.size(), 2u);
  // Locate group 1.
  for (const auto& [row, mult] : out.rows) {
    EXPECT_EQ(mult, 1);
    if (row.value(0).AsInt64() == 1) {
      EXPECT_EQ(row.value(1).AsInt64(), 10 + 40);  // sum weights by mult
      EXPECT_EQ(row.value(2).AsInt64(), 3);        // count
      EXPECT_EQ(row.value(3).AsInt64(), 3);        // __count
    } else {
      EXPECT_EQ(row.value(1).AsInt64(), 5);
      EXPECT_EQ(row.value(3).AsInt64(), 1);
    }
  }
  EXPECT_EQ(out.schema.column(3).name, kGroupCountColumn);
}

TEST(AggregateTest, SignedInputProducesSummaryDelta) {
  Rows in = MakeRows(Schema({{"g", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                     {{{1, 10}, -1}, {{1, 30}, 1}});
  std::vector<AggSpec> aggs = {{AggFn::kSum, ScalarExpr::Column("v"), "s"}};
  Rows out = AggregateSigned(in, {"g"}, aggs, nullptr);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].first.value(1).AsInt64(), 20);  // Δsum
  EXPECT_EQ(out.rows[0].first.value(2).AsInt64(), 0);   // Δcount
}

TEST(AggregateTest, ExactCancellationDropsGroup) {
  Rows in = MakeRows(Schema({{"g", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                     {{{1, 10}, -1}, {{1, 10}, 1}, {{2, 1}, 1}});
  std::vector<AggSpec> aggs = {{AggFn::kSum, ScalarExpr::Column("v"), "s"}};
  Rows out = AggregateSigned(in, {"g"}, aggs, nullptr);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].first.value(0).AsInt64(), 2);
}

TEST(AggregateTest, ZeroCountNonZeroSumKept) {
  // Delete (g=1,v=10), insert (g=1,v=12): count cancels, sum must survive.
  Rows in = MakeRows(Schema({{"g", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                     {{{1, 10}, -1}, {{1, 12}, 1}});
  std::vector<AggSpec> aggs = {{AggFn::kSum, ScalarExpr::Column("v"), "s"}};
  Rows out = AggregateSigned(in, {"g"}, aggs, nullptr);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0].first.value(1).AsInt64(), 2);
  EXPECT_EQ(out.rows[0].first.value(2).AsInt64(), 0);
}

TEST(AggregateTest, MultipleGroupKeys) {
  Rows in = MakeRows(Schema({{"g", TypeId::kInt64},
                             {"h", TypeId::kInt64},
                             {"v", TypeId::kInt64}}),
                     {{{1, 1, 5}, 1}, {{1, 2, 7}, 1}, {{1, 1, 2}, 1}});
  std::vector<AggSpec> aggs = {{AggFn::kSum, ScalarExpr::Column("v"), "s"}};
  Rows out = AggregateSigned(in, {"g", "h"}, aggs, nullptr);
  EXPECT_EQ(out.rows.size(), 2u);
}

}  // namespace
}  // namespace wuw
