// Journal unit tests plus directed interrupted-window recovery scenarios:
// kill a journaled run at a chosen step, restore the pre-window state (an
// in-memory clone or an io/snapshot directory), ResumeStrategy, and land
// bit-identically on the recompute ground truth.  The exhaustive
// kill-at-every-step sweeps live in fault_recovery_property_test.cc; this
// file covers the journal API and the snapshot round trip directly.
#include "exec/recovery.h"

#include <gtest/gtest.h>

#include <string>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "fault/fault_injection.h"
#include "io/snapshot.h"
#include "test_util.h"

namespace wuw {
namespace {

using fault::FaultInjectedError;
using fault::FaultPlan;
using fault::ScopedFaultPlan;
using fault::Trigger;

TEST(StrategyJournalTest, LifecycleAndStepOrdering) {
  StrategyJournal journal;
  EXPECT_FALSE(journal.begun());
  EXPECT_FALSE(journal.complete());

  Strategy s({Expression::Comp("V", {"A"}), Expression::Inst("V"),
              Expression::Inst("A")});
  journal.Begin(s, /*batch_epoch=*/7);
  EXPECT_TRUE(journal.begun());
  EXPECT_FALSE(journal.complete());
  EXPECT_EQ(journal.batch_epoch(), 7);
  EXPECT_EQ(journal.size(), 0);
  EXPECT_FALSE(journal.IsStepComplete(0));

  // Record out of order (a parallel stage may complete steps around the
  // torn one); EntriesInStepOrder must sort.
  JournalEntry e2;
  e2.step = 2;
  e2.expression = Expression::Inst("A");
  journal.Record(std::move(e2));
  JournalEntry e0;
  e0.step = 0;
  e0.expression = Expression::Comp("V", {"A"});
  journal.Record(std::move(e0));

  EXPECT_EQ(journal.size(), 2);
  EXPECT_TRUE(journal.IsStepComplete(0));
  EXPECT_FALSE(journal.IsStepComplete(1));
  EXPECT_TRUE(journal.IsStepComplete(2));
  auto entries = journal.EntriesInStepOrder();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].step, 0);
  EXPECT_EQ(entries[1].step, 2);

  journal.MarkComplete();
  EXPECT_TRUE(journal.complete());

  // A new Begin clears the previous run.
  journal.Begin(s, 8);
  EXPECT_EQ(journal.size(), 0);
  EXPECT_FALSE(journal.complete());

  journal.Clear();
  EXPECT_FALSE(journal.begun());
}

TEST(StrategyJournalTest, ExecutorJournalsEveryStepAndMarksComplete) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              /*seed=*/5);
  testutil::ApplyTripleChanges(&w, 0.2, 8, 11);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  ExecutorOptions options;
  options.journal = true;
  Executor executor(&w, options);
  executor.Execute(s);

  const StrategyJournal& journal = w.journal();
  EXPECT_TRUE(journal.begun());
  EXPECT_TRUE(journal.complete());
  EXPECT_EQ(journal.size(), static_cast<int64_t>(s.size()));
  auto entries = journal.EntriesInStepOrder();
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].step, static_cast<int64_t>(i));
    EXPECT_EQ(entries[i].expression.ToString(),
              s.expressions()[i].ToString());
  }
}

// Kills a journaled run at 0-based step `kill_step` via a fault trigger.
// Returns the dead warehouse (torn state + journal) by value.
Warehouse RunAndKillAt(const Warehouse& pre, const Strategy& s,
                       int64_t kill_step) {
  Warehouse victim = pre.Clone();
  ExecutorOptions options;
  options.journal = true;
  Executor executor(&victim, options);
  FaultPlan plan;
  plan.triggers.push_back(
      Trigger{"executor.step.begin", /*hit=*/kill_step + 1, 1.0});
  bool died = false;
  {
    ScopedFaultPlan scoped(plan);
    try {
      executor.Execute(s);
    } catch (const FaultInjectedError&) {
      died = true;
    }
  }
  EXPECT_TRUE(died) << "kill step " << kill_step << " out of range?";
  return victim;
}

TEST(RecoveryTest, CloneRestoreResumeConvergesFromEveryKillStep) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                              /*seed=*/13);
  testutil::ApplyTripleChanges(&w, 0.25, 10, 19);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  for (int64_t k = 0; k < static_cast<int64_t>(s.size()); ++k) {
    Warehouse victim = RunAndKillAt(w, s, k);
    EXPECT_EQ(victim.journal().size(), k);
    EXPECT_FALSE(victim.journal().complete());

    Warehouse restored = w.Clone();  // pre-window state
    ResumeReport report = ResumeStrategy(victim.journal(), &restored);
    EXPECT_EQ(report.steps_replayed, k);
    EXPECT_EQ(report.steps_replayed + report.steps_executed,
              static_cast<int64_t>(s.size()));
    ASSERT_TRUE(restored.catalog().ContentsEqual(truth))
        << "diverged after kill at step " << k;
  }
}

TEST(RecoveryTest, DiskSnapshotRestoreResumeConverges) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 45,
                                              /*seed=*/29);
  testutil::ApplyTripleChanges(&w, 0.3, 12, 31);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  // Durable pre-window state: extents + pending batch on disk, written
  // before the window opens (the paper's load-then-update discipline).
  std::string dir = ::testing::TempDir() + "/wuw_recovery_snapshot";
  std::string error;
  ASSERT_TRUE(SaveWarehouse(w, dir, &error)) << error;

  const int64_t kill_step = static_cast<int64_t>(s.size()) / 2;
  Warehouse victim = RunAndKillAt(w, s, kill_step);

  // "Reboot": the in-memory state is gone; only the snapshot and the
  // journal survive.
  Warehouse restored = testutil::MakeLoadedWarehouse(
      testutil::MakeStarVdag("X", 2), 1, 1);  // throwaway shell
  ASSERT_TRUE(LoadWarehouse(dir, &restored, &error)) << error;
  ResumeReport report = ResumeStrategy(victim.journal(), &restored);
  EXPECT_EQ(report.steps_replayed, kill_step);
  ASSERT_TRUE(restored.catalog().ContentsEqual(truth));
}

TEST(RecoveryTest, ResumedRunIsItselfResumable) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                              /*seed=*/37);
  testutil::ApplyTripleChanges(&w, 0.2, 10, 41);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  ASSERT_GE(s.size(), 3u);

  // First death near the start.
  Warehouse victim = RunAndKillAt(w, s, 1);

  // Resume with re-journaling on, and kill the resumed run too: only
  // live-executed steps reach recovery.step.begin, so hit=2 dies two live
  // steps into the resume (after the replayed step 0 and live step 1).
  Warehouse second = w.Clone();
  ExecutorOptions rejournal;
  rejournal.journal = true;
  {
    FaultPlan plan;
    plan.triggers.push_back(Trigger{"recovery.step.begin", /*hit=*/2, 1.0});
    ScopedFaultPlan scoped(plan);
    bool died = false;
    try {
      ResumeStrategy(victim.journal(), &second, rejournal);
    } catch (const FaultInjectedError&) {
      died = true;
    }
    ASSERT_TRUE(died);
  }
  // The second journal holds the replayed prefix plus one more live step.
  EXPECT_EQ(second.journal().size(), 2);
  EXPECT_FALSE(second.journal().complete());

  // Final recovery from the second journal completes the window.
  Warehouse third = w.Clone();
  ResumeReport report = ResumeStrategy(second.journal(), &third);
  EXPECT_EQ(report.steps_replayed, 2);
  ASSERT_TRUE(third.catalog().ContentsEqual(truth));
}

TEST(RecoveryTest, ResumingACompleteJournalJustReplays) {
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40,
                                              /*seed=*/43);
  testutil::ApplyTripleChanges(&w, 0.15, 6, 47);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  Warehouse victim = w.Clone();
  ExecutorOptions options;
  options.journal = true;
  Executor executor(&victim, options);
  executor.Execute(s);
  ASSERT_TRUE(victim.journal().complete());

  Warehouse restored = w.Clone();
  ResumeReport report = ResumeStrategy(victim.journal(), &restored);
  EXPECT_EQ(report.steps_replayed, static_cast<int64_t>(s.size()));
  EXPECT_EQ(report.steps_executed, 0);
  ASSERT_TRUE(restored.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace wuw
