#include <gtest/gtest.h>

#include "policy/maintenance_policy.h"
#include "test_util.h"
#include "tpcd/change_generator.h"

namespace wuw {
namespace {

using testutil::MakeLoadedWarehouse;

/// A coherent change stream over triple-schema base views: each batch is
/// drawn from a private mirror of the source (all earlier batches
/// applied), so deferred policies can merge batches safely.
class TripleStream {
 public:
  TripleStream(const Warehouse& w, uint64_t seed) : rng_(seed) {
    for (const std::string& base : w.vdag().BaseViews()) {
      Table* mirror =
          mirror_.CreateTable(base, w.vdag().OutputSchema(base));
      w.catalog().MustGetTable(base)->ForEach(
          [&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
      bases_.push_back(base);
    }
  }

  std::unordered_map<std::string, DeltaRelation> NextBatch(
      double delete_fraction, int64_t inserts) {
    ++batch_;
    std::unordered_map<std::string, DeltaRelation> batch;
    for (const std::string& base : bases_) {
      Table* mirror = mirror_.MustGetTable(base);
      DeltaRelation delta = tpcd::MakeDeletionDelta(
          *mirror, delete_fraction, rng_.Next());
      for (int64_t i = 0; i < inserts; ++i) {
        int64_t k = 500000 + batch_ * 1000 + i;  // fresh keys per batch
        delta.Add(Tuple({Value::Int64(k), Value::Int64(rng_.Range(0, 99)),
                         Value::Int64(k % 5)}),
                  1);
      }
      delta.ForEach([&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
      batch.emplace(base, std::move(delta));
    }
    return batch;
  }

  const Catalog& mirror() const { return mirror_; }

 private:
  Catalog mirror_;
  std::vector<std::string> bases_;
  tpcd::Rng rng_;
  int64_t batch_ = 0;
};

TEST(PolicyTest, ImmediateRunsEveryBatch) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, 1);
  TripleStream stream(w, 10);
  MaintenanceScheduler scheduler(&w, PolicyOptions::Immediate());
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(scheduler.OnBatch(stream.NextBatch(0.05, 3)));
  }
  EXPECT_EQ(scheduler.report().windows_run, 5);
  EXPECT_EQ(scheduler.report().batches_received, 5);
  // Final state equals the source mirror on base views.
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(w.catalog().MustGetTable(base)->ContentsEqual(
        *stream.mirror().MustGetTable(base)))
        << base;
  }
}

TEST(PolicyTest, EveryKDefersAndMerges) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 50, 2);
  TripleStream stream(w, 20);
  MaintenanceScheduler scheduler(&w, PolicyOptions::EveryK(3));
  int windows = 0;
  for (uint64_t i = 0; i < 7; ++i) {
    if (scheduler.OnBatch(stream.NextBatch(0.05, 3))) ++windows;
  }
  EXPECT_EQ(windows, 2);  // after batches 3 and 6
  EXPECT_EQ(scheduler.report().windows_run, 2);
  scheduler.Flush();  // batch 7 still pending
  EXPECT_EQ(scheduler.report().windows_run, 3);
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(w.catalog().MustGetTable(base)->ContentsEqual(
        *stream.mirror().MustGetTable(base)))
        << base;
  }
}

TEST(PolicyTest, ThresholdTriggersOnVolume) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 100, 3);
  TripleStream stream(w, 30);
  MaintenanceScheduler scheduler(&w, PolicyOptions::Threshold(0.15));
  // ~5% churn per batch: should run roughly every 2-4 batches.
  int windows = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (scheduler.OnBatch(stream.NextBatch(0.05, 0))) ++windows;
  }
  EXPECT_GT(windows, 0);
  EXPECT_LT(windows, 8);
}

TEST(PolicyTest, DeferredStateMatchesImmediateState) {
  // The SAME batch stream through different policies lands on the same
  // final database state (after a flush), with fewer windows when
  // deferred.
  Warehouse immediate_w =
      MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 4);
  Warehouse deferred_w = immediate_w.Clone();
  TripleStream stream(immediate_w, 40);

  MaintenanceScheduler immediate(&immediate_w, PolicyOptions::Immediate());
  MaintenanceScheduler deferred(&deferred_w, PolicyOptions::EveryK(4));
  for (uint64_t i = 0; i < 6; ++i) {
    auto batch = stream.NextBatch(0.08, 4);
    immediate.OnBatch(batch);
    deferred.OnBatch(batch);
  }
  immediate.Flush();
  deferred.Flush();
  EXPECT_GT(immediate.report().windows_run, deferred.report().windows_run);
  EXPECT_TRUE(immediate_w.catalog().ContentsEqual(deferred_w.catalog()));
  // Merged batches cancel churn: deferred installs no more rows.
  EXPECT_LE(deferred.report().rows_installed,
            immediate.report().rows_installed);
}

TEST(PolicyTest, CancellationShrinksInstalledRows) {
  // Insert N rows in batch 1 and delete the same rows in batch 2: the
  // deferred policy installs (almost) nothing, immediate installs twice.
  auto make_insert_batch = [](const Warehouse& w, int sign) {
    std::unordered_map<std::string, DeltaRelation> batch;
    for (const std::string& base : w.vdag().BaseViews()) {
      DeltaRelation delta(w.vdag().OutputSchema(base));
      for (int64_t i = 0; i < 50; ++i) {
        delta.Add(Tuple({Value::Int64(900000 + i), Value::Int64(7),
                         Value::Int64(i % 5)}),
                  sign);
      }
      batch.emplace(base, std::move(delta));
    }
    return batch;
  };

  Warehouse immediate_w =
      MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 40, 5);
  Warehouse deferred_w = immediate_w.Clone();
  Catalog original = immediate_w.catalog().Clone();

  MaintenanceScheduler immediate(&immediate_w, PolicyOptions::Immediate());
  immediate.OnBatch(make_insert_batch(immediate_w, +1));
  immediate.OnBatch(make_insert_batch(immediate_w, -1));

  MaintenanceScheduler deferred(&deferred_w, PolicyOptions::EveryK(2));
  deferred.OnBatch(make_insert_batch(deferred_w, +1));
  deferred.OnBatch(make_insert_batch(deferred_w, -1));

  // Both end where they started.
  EXPECT_TRUE(immediate_w.catalog().ContentsEqual(original));
  EXPECT_TRUE(deferred_w.catalog().ContentsEqual(original));
  // But the deferred policy installed nothing at all.
  EXPECT_EQ(deferred.report().rows_installed, 0);
  EXPECT_GT(immediate.report().rows_installed, 0);
  EXPECT_LT(deferred.report().total_linear_work,
            immediate.report().total_linear_work);
}

TEST(PolicyTest, ReportToStringMentionsCounts) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 30, 6);
  TripleStream stream(w, 50);
  MaintenanceScheduler scheduler(&w, PolicyOptions::Immediate());
  scheduler.OnBatch(stream.NextBatch(0.1, 0));
  std::string text = scheduler.report().ToString();
  EXPECT_NE(text.find("windows=1"), std::string::npos);
  EXPECT_NE(text.find("batches=1"), std::string::npos);
}

}  // namespace
}  // namespace wuw
