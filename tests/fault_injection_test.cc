// Unit tests for the deterministic fault-injection framework: trigger
// semantics (hit-count, probability, wildcard), count-only enumeration,
// spec parsing, and the disarmed fast path.
#include "fault/fault_injection.h"

#include <gtest/gtest.h>

namespace wuw {
namespace {

using fault::Arm;
using fault::Disarm;
using fault::FaultInjectedError;
using fault::FaultPlan;
using fault::HitCount;
using fault::HitCounts;
using fault::IsArmed;
using fault::ParseFaultSpec;
using fault::ScopedFaultPlan;
using fault::Trigger;

// Tests in this file arm/disarm global state; the fixture guarantees a
// clean slate even when an assertion bails out mid-test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { Disarm(); }
};

void Hit(const char* which, int times) {
  for (int i = 0; i < times; ++i) {
    if (which[0] == 'a') {
      WUW_FAULT_POINT("test.point.a");
    } else {
      WUW_FAULT_POINT("test.point.b");
    }
  }
}

TEST_F(FaultInjectionTest, DisarmedPointsNeitherFireNorCount) {
  ASSERT_FALSE(IsArmed());
  EXPECT_NO_THROW(Hit("a", 100));
  // Counting only happens under an armed plan.
  FaultPlan plan;
  plan.count_only = true;
  Arm(plan);
  EXPECT_EQ(HitCount("test.point.a"), 0);
}

TEST_F(FaultInjectionTest, CountOnlyRecordsPerPointHits) {
  FaultPlan plan;
  plan.count_only = true;
  plan.triggers.push_back(Trigger{"*", 0, 1.0});  // would fire if live
  ScopedFaultPlan scoped(plan);
  EXPECT_NO_THROW(Hit("a", 3));
  EXPECT_NO_THROW(Hit("b", 5));
  EXPECT_EQ(HitCount("test.point.a"), 3);
  EXPECT_EQ(HitCount("test.point.b"), 5);
  EXPECT_EQ(HitCount("test.point.never"), 0);
  auto counts = HitCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "test.point.a");  // sorted by name
  EXPECT_EQ(counts[1].first, "test.point.b");
}

TEST_F(FaultInjectionTest, HitTriggerFiresOnExactlyTheNthHit) {
  FaultPlan plan;
  plan.triggers.push_back(Trigger{"test.point.a", /*hit=*/3, 1.0});
  ScopedFaultPlan scoped(plan);
  EXPECT_NO_THROW(Hit("a", 2));
  EXPECT_NO_THROW(Hit("b", 10));  // other points unaffected
  try {
    Hit("a", 1);
    FAIL() << "third hit should have fired";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.point(), "test.point.a");
    EXPECT_EQ(e.hit(), 3);
  }
  // Only the Nth hit fires; later hits pass again.
  EXPECT_NO_THROW(Hit("a", 5));
  EXPECT_EQ(HitCount("test.point.a"), 8);
}

TEST_F(FaultInjectionTest, WildcardMatchesPrefix) {
  FaultPlan plan;
  plan.triggers.push_back(Trigger{"test.point.*", /*hit=*/2, 1.0});
  ScopedFaultPlan scoped(plan);
  EXPECT_NO_THROW(Hit("a", 1));
  // Per-point hit counters: b's first hit is hit 1 for b, not hit 2.
  EXPECT_NO_THROW(Hit("b", 1));
  EXPECT_THROW(Hit("b", 1), FaultInjectedError);
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFiresProbabilityOneAlways) {
  {
    FaultPlan plan;
    plan.triggers.push_back(Trigger{"test.point.a", 0, 0.0});
    ScopedFaultPlan scoped(plan);
    EXPECT_NO_THROW(Hit("a", 200));
  }
  {
    FaultPlan plan;
    plan.triggers.push_back(Trigger{"test.point.a", 0, 1.0});
    ScopedFaultPlan scoped(plan);
    EXPECT_THROW(Hit("a", 1), FaultInjectedError);
  }
}

TEST_F(FaultInjectionTest, ProbabilityDrawsAreSeedDeterministic) {
  auto firing_hit = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.triggers.push_back(Trigger{"test.point.a", 0, 0.2});
    ScopedFaultPlan scoped(plan);
    try {
      Hit("a", 1000);
    } catch (const FaultInjectedError& e) {
      return e.hit();
    }
    return int64_t{0};
  };
  int64_t first = firing_hit(42);
  ASSERT_GT(first, 0) << "p=0.2 over 1000 hits should fire";
  EXPECT_EQ(firing_hit(42), first);  // same seed, same firing hit
  EXPECT_EQ(firing_hit(42), first);  // and again
}

TEST_F(FaultInjectionTest, ArmReplacesPlanAndResetsCounters) {
  FaultPlan count;
  count.count_only = true;
  Arm(count);
  Hit("a", 4);
  EXPECT_EQ(HitCount("test.point.a"), 4);
  Arm(count);  // re-arm resets
  EXPECT_EQ(HitCount("test.point.a"), 0);
  Disarm();
  EXPECT_FALSE(IsArmed());
}

TEST_F(FaultInjectionTest, HitCountsSurviveDisarmUntilNextArm) {
  FaultPlan count;
  count.count_only = true;
  Arm(count);
  Hit("a", 2);
  Disarm();
  EXPECT_EQ(HitCount("test.point.a"), 2);
}

TEST_F(FaultInjectionTest, ParseFaultSpecAcceptsTheDocumentedGrammar) {
  FaultPlan plan;
  EXPECT_EQ(ParseFaultSpec("executor.step.begin:hit=3", &plan), "");
  ASSERT_EQ(plan.triggers.size(), 1u);
  EXPECT_EQ(plan.triggers[0].point, "executor.step.begin");
  EXPECT_EQ(plan.triggers[0].hit, 3);

  FaultPlan plan2;
  EXPECT_EQ(ParseFaultSpec("plan.*:p=0.25;seed=7;mode=count", &plan2), "");
  ASSERT_EQ(plan2.triggers.size(), 1u);
  EXPECT_EQ(plan2.triggers[0].point, "plan.*");
  EXPECT_DOUBLE_EQ(plan2.triggers[0].probability, 0.25);
  EXPECT_EQ(plan2.seed, 7u);
  EXPECT_TRUE(plan2.count_only);

  FaultPlan plan3;
  EXPECT_EQ(ParseFaultSpec("a;b:hit=1;c:p=0.5", &plan3), "");
  EXPECT_EQ(plan3.triggers.size(), 3u);
}

TEST_F(FaultInjectionTest, ParseFaultSpecRejectsMalformedInput) {
  // User-facing input path: errors come back as strings, never aborts.
  FaultPlan plan;
  EXPECT_NE(ParseFaultSpec("point:hit=abc", &plan), "");
  EXPECT_NE(ParseFaultSpec("point:p=notanumber", &plan), "");
  EXPECT_NE(ParseFaultSpec("point:bogus=1", &plan), "");
  EXPECT_NE(ParseFaultSpec("seed=xyz", &plan), "");
}

TEST_F(FaultInjectionTest, ScopedPlanDisarmsOnScopeExit) {
  {
    FaultPlan plan;
    plan.triggers.push_back(Trigger{"test.point.a", 0, 1.0});
    ScopedFaultPlan scoped(plan);
    EXPECT_TRUE(IsArmed());
  }
  EXPECT_FALSE(IsArmed());
  EXPECT_NO_THROW(Hit("a", 10));
}

}  // namespace
}  // namespace wuw
