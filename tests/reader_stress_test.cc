// Reader/writer stress: concurrent snapshot readers racing live
// maintenance on the shared thread pool.  This is the suite CI runs under
// ThreadSanitizer — the assertions prove isolation (no torn reads, no
// time-travel, no query errors) and convergence; TSan proves the absence
// of data races on the publish/pin/COW seam while real windows install,
// pause, resume, and flush underneath the readers.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/min_work.h"
#include "exec/executor.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "policy/maintenance_policy.h"
#include "query/ad_hoc.h"
#include "test_util.h"
#include "tpcd/change_generator.h"

namespace wuw {
namespace {

const std::vector<std::string> kFig3Queries = {
    "SELECT A_k, A_v FROM A",
    "SELECT B_k, B_v FROM B WHERE B_v > 10",
    "SELECT V4_k, V4_v FROM V4",
    "SELECT V5_k, V5_v FROM V5",
};

/// A coherent change stream (the policy_test idiom): every batch is drawn
/// from a private mirror with all earlier batches applied, so deferred
/// policies can merge batches safely and the mirror is the base-view
/// ground truth at every moment.
class TripleStream {
 public:
  TripleStream(const Warehouse& w, uint64_t seed) : rng_(seed) {
    for (const std::string& base : w.vdag().BaseViews()) {
      Table* mirror =
          mirror_.CreateTable(base, w.vdag().OutputSchema(base));
      w.catalog().MustGetTable(base)->ForEach(
          [&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
      bases_.push_back(base);
    }
  }

  std::unordered_map<std::string, DeltaRelation> NextBatch(
      double delete_fraction, int64_t inserts) {
    ++batch_;
    std::unordered_map<std::string, DeltaRelation> batch;
    for (const std::string& base : bases_) {
      Table* mirror = mirror_.MustGetTable(base);
      DeltaRelation delta = tpcd::MakeDeletionDelta(
          *mirror, delete_fraction, rng_.Next());
      for (int64_t i = 0; i < inserts; ++i) {
        int64_t k = 500000 + batch_ * 1000 + i;
        delta.Add(Tuple({Value::Int64(k), Value::Int64(rng_.Range(0, 99)),
                         Value::Int64(k % 5)}),
                  1);
      }
      delta.ForEach([&](const Tuple& t, int64_t c) { mirror->Add(t, c); });
      batch.emplace(base, std::move(delta));
    }
    return batch;
  }

  const Catalog& mirror() const { return mirror_; }

 private:
  Catalog mirror_;
  std::vector<std::string> bases_;
  tpcd::Rng rng_;
  int64_t batch_ = 0;
};

// The headline race: a ReadDriver hammering snapshots and snapshot
// queries from the shared pool while a MaintenanceScheduler runs budgeted
// (pausing!) windows over a multi-batch coherent stream.  Readers must
// never see a torn state — including across every pause/resume seam — and
// the final state must match the source mirror.
TEST(ReaderStressTest, ReadersRaceBudgetedMaintenanceWindows) {
  const uint64_t seed = testutil::PropertySeed(401);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60,
                                              seed);
  w.EnableSnapshotReads();
  TripleStream stream(w, seed + 13);

  ReadDriver driver;
  ReadSessionOptions read_options;
  read_options.sessions = 16;
  read_options.scans_per_session = 2;
  read_options.queries = kFig3Queries;
  driver.Start(w, read_options);

  // EveryK(2) with a small work budget: windows defer, pause, and chain
  // resume windows — every commit-point shape the scheduler can produce.
  PolicyOptions policy = PolicyOptions::EveryK(2);
  policy.window_budget = WindowBudgetOptions{400};
  MaintenanceScheduler scheduler(&w, policy);
  for (int i = 0; i < 8; ++i) {
    scheduler.OnBatch(stream.NextBatch(0.08, 4));
    while (scheduler.window_paused()) scheduler.ResumeWindow();
  }
  scheduler.Flush();

  ReadSessionReport report = driver.Stop();
  EXPECT_TRUE(report.ok())
      << report.torn_reads << " torn reads, " << report.epoch_regressions
      << " epoch regressions, " << report.query_errors << " query errors";
  EXPECT_GT(report.sessions, 0);
  EXPECT_GT(report.queries, 0);

  // Convergence: base views match the source mirror, and the last commit
  // serves exactly the final catalog.
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(w.catalog().MustGetTable(base)->ContentsEqual(
        *stream.mirror().MustGetTable(base)))
        << base;
  }
  EXPECT_TRUE(w.OpenSnapshot().ContentsEqual(w.catalog()));
}

// Direct executor race: RunReadSessions on the calling thread (fanned out
// over the shared pool) while a std::thread runs the full update window.
// Every session pins either the pre-window or the post-window commit.
TEST(ReaderStressTest, ReadSessionsConcurrentWithExecutor) {
  const uint64_t seed = testutil::PropertySeed(409);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 80,
                                              seed);
  testutil::ApplyTripleChanges(&w, 0.2, 10, seed + 7);
  w.EnableSnapshotReads();
  const Catalog truth = testutil::GroundTruthAfterChanges(w);
  const Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  const int64_t pre_seq = w.OpenSnapshot().commit_seq();

  ReadSessionOptions read_options;
  read_options.sessions = 24;
  read_options.scans_per_session = 2;
  read_options.queries = kFig3Queries;

  std::thread maintenance([&] { Executor(&w).Execute(s); });
  ReadSessionReport report;
  for (int round = 0; round < 4; ++round) {
    report += RunReadSessions(w, read_options);
  }
  maintenance.join();
  // One more quiesced round — sessions after the join must see the commit.
  report += RunReadSessions(w, read_options);

  EXPECT_TRUE(report.ok())
      << report.torn_reads << " torn reads, " << report.epoch_regressions
      << " epoch regressions, " << report.query_errors << " query errors";
  EXPECT_GE(report.sessions, 24 * 5);
  // Exactly two commits can ever be pinned: pre-window and post-window.
  EXPECT_GE(report.min_commit_seq, pre_seq);
  EXPECT_LE(report.max_commit_seq, pre_seq + 1);
  EXPECT_EQ(report.max_commit_seq, pre_seq + 1)
      << "the quiesced round must have pinned the post-window commit";

  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
  EXPECT_TRUE(w.OpenSnapshot().ContentsEqual(truth));
}

// Pool-sharing stress: reader sessions and the maintenance kernels draw
// from the SAME explicitly-sized pool, so worker threads interleave
// serve-scope session bodies with morsel work.  Repeated windows keep the
// publish/detach churn high.
TEST(ReaderStressTest, SharedPoolReadersAcrossRepeatedWindows) {
  const uint64_t seed = testutil::PropertySeed(419);
  SCOPED_TRACE(testutil::SeedTrace(seed));
  Warehouse w = testutil::MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60,
                                              seed);
  w.EnableSnapshotReads();
  TripleStream stream(w, seed + 29);
  ThreadPool pool(4);

  ReadDriver driver;
  ReadSessionOptions read_options;
  read_options.sessions = 8;
  read_options.scans_per_session = 2;
  read_options.queries = kFig3Queries;
  read_options.pool = &pool;
  driver.Start(w, read_options);

  int64_t last_seq = w.OpenSnapshot().commit_seq();
  for (int round = 0; round < 6; ++round) {
    for (auto& [base, delta] : stream.NextBatch(0.1, 5)) {
      w.SetBaseDelta(base, std::move(delta));
    }
    ExecutorOptions options;
    options.pool = &pool;
    Executor(&w, options)
        .Execute(MinWork(w.vdag(), w.EstimatedSizes()).strategy);
    const int64_t seq = w.OpenSnapshot().commit_seq();
    EXPECT_GT(seq, last_seq) << "every completed window must commit";
    last_seq = seq;
  }

  ReadSessionReport report = driver.Stop();
  EXPECT_TRUE(report.ok())
      << report.torn_reads << " torn reads, " << report.epoch_regressions
      << " epoch regressions, " << report.query_errors << " query errors";
  EXPECT_GT(report.sessions, 0);
  for (const std::string& base : w.vdag().BaseViews()) {
    EXPECT_TRUE(w.catalog().MustGetTable(base)->ContentsEqual(
        *stream.mirror().MustGetTable(base)))
        << base;
  }
}

}  // namespace
}  // namespace wuw
