// BufferPool invariants (storage/buffer_pool.h): pinned frames are never
// evicted, unpin-below-zero is a contract violation, eviction order is
// deterministic LRU, dirty pages write back losslessly, and
// bytes_resident() stays within budget under the one-pin-at-a-time usage
// the spill paths follow.
#include "storage/buffer_pool.h"

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/page.h"

namespace wuw {
namespace paged {
namespace {

constexpr size_t kPage = 256;  // payload_capacity = 244

std::unique_ptr<PageFile> MakeFile(const std::string& name) {
  std::string error;
  auto file = PageFile::Create(::testing::TempDir() + name, kPage, &error);
  EXPECT_NE(file, nullptr) << error;
  file->set_remove_on_close(true);
  return file;
}

std::string Fill(char c, size_t n) { return std::string(n, c); }

TEST(BufferPoolTest, NewPageIsPinnedAndDirty) {
  auto file = MakeFile("bp_new.pages");
  BufferPool pool(file.get(), 4 * kPage);
  std::string* payload = nullptr;
  int64_t id = pool.NewPage(&payload);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(pool.pin_count(id), 1);
  EXPECT_EQ(pool.bytes_resident(), kPage);
  payload->assign(Fill('a', 10));
  pool.Unpin(id, /*dirty=*/true);
  EXPECT_EQ(pool.pin_count(id), 0);
}

TEST(BufferPoolTest, DirtyWritebackRoundtrips) {
  auto file = MakeFile("bp_writeback.pages");
  BufferPool pool(file.get(), 2 * kPage);  // room for 2 frames
  std::vector<int64_t> ids;
  std::vector<std::string> contents;
  // Six pages through a two-frame pool: every earlier page is evicted
  // dirty (written back) to admit later ones.
  for (int i = 0; i < 6; ++i) {
    std::string* payload = nullptr;
    int64_t id = pool.NewPage(&payload);
    contents.push_back(Fill(static_cast<char>('a' + i), 50 + i));
    payload->assign(contents.back());
    pool.Unpin(id, /*dirty=*/true);
    ids.push_back(id);
  }
  EXPECT_EQ(pool.evictions(), 4);
  // Re-pin all six in order: every pin misses (the sweep itself evicts
  // the loop's two survivors before reaching them) and faults contents
  // back intact.
  for (size_t i = 0; i < ids.size(); ++i) {
    std::string* payload = pool.Pin(ids[i]);
    EXPECT_EQ(*payload, contents[i]) << "page " << ids[i];
    pool.Unpin(ids[i], /*dirty=*/false);
  }
  EXPECT_EQ(pool.faults(), 6);
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  auto file = MakeFile("bp_pinned.pages");
  BufferPool pool(file.get(), 2 * kPage);
  std::string* pinned_payload = nullptr;
  int64_t pinned = pool.NewPage(&pinned_payload);
  pinned_payload->assign(Fill('p', 30));
  // Keep it pinned while churning many pages through the remaining frame.
  for (int i = 0; i < 8; ++i) {
    std::string* payload = nullptr;
    int64_t id = pool.NewPage(&payload);
    payload->assign(Fill('x', 20));
    pool.Unpin(id, /*dirty=*/true);
  }
  // The pinned frame never left memory: its buffer is still the one we
  // hold, no fault was charged for it, and its contents are intact.
  EXPECT_EQ(pool.pin_count(pinned), 1);
  EXPECT_EQ(*pinned_payload, Fill('p', 30));
  EXPECT_EQ(pool.faults(), 0);
  pool.Unpin(pinned, /*dirty=*/true);
}

TEST(BufferPoolTest, EvictionOrderIsDeterministicLru) {
  auto file = MakeFile("bp_lru.pages");
  BufferPool pool(file.get(), 3 * kPage);
  std::string* payload = nullptr;
  int64_t a = pool.NewPage(&payload);
  payload->assign("A");
  pool.Unpin(a, true);
  int64_t b = pool.NewPage(&payload);
  payload->assign("B");
  pool.Unpin(b, true);
  int64_t c = pool.NewPage(&payload);
  payload->assign("C");
  pool.Unpin(c, true);
  // Recency now a < b < c.  Touch `a` (Pin bumps recency) so `b` becomes
  // the LRU victim.
  payload = pool.Pin(a);
  pool.Unpin(a, false);
  int64_t d = pool.NewPage(&payload);  // evicts exactly one frame: b
  payload->assign("D");
  pool.Unpin(d, true);
  EXPECT_EQ(pool.evictions(), 1);
  int64_t faults_before = pool.faults();
  // a and c are still resident (no fault to pin them)...
  payload = pool.Pin(a);
  EXPECT_EQ(*payload, "A");
  pool.Unpin(a, false);
  EXPECT_EQ(pool.faults(), faults_before);
  // ...while b faults from disk.
  payload = pool.Pin(b);
  EXPECT_EQ(*payload, "B");
  pool.Unpin(b, false);
  EXPECT_EQ(pool.faults(), faults_before + 1);
}

TEST(BufferPoolTest, BytesResidentStaysWithinBudget) {
  auto file = MakeFile("bp_budget.pages");
  const size_t budget = 4 * kPage;
  BufferPool pool(file.get(), budget);
  std::vector<int64_t> ids;
  // One-pin-at-a-time usage (the spill paths' discipline): the invariant
  // holds after every operation.
  for (int i = 0; i < 16; ++i) {
    std::string* payload = nullptr;
    int64_t id = pool.NewPage(&payload);
    EXPECT_LE(pool.bytes_resident(), budget) << "after NewPage " << i;
    payload->assign(Fill('z', 100));
    pool.Unpin(id, true);
    EXPECT_LE(pool.bytes_resident(), budget) << "after Unpin " << i;
    ids.push_back(id);
  }
  for (int64_t id : ids) {
    std::string* payload = pool.Pin(id);
    EXPECT_LE(pool.bytes_resident(), budget) << "after Pin " << id;
    EXPECT_EQ(*payload, Fill('z', 100));
    pool.Unpin(id, false);
  }
}

TEST(BufferPoolTest, FlushAllKeepsFramesResident) {
  auto file = MakeFile("bp_flush.pages");
  BufferPool pool(file.get(), 4 * kPage);
  std::string* payload = nullptr;
  int64_t id = pool.NewPage(&payload);
  payload->assign(Fill('f', 40));
  pool.Unpin(id, true);
  EXPECT_EQ(pool.FlushAll(), "");
  // Still resident: pinning costs no fault.
  int64_t faults_before = pool.faults();
  payload = pool.Pin(id);
  EXPECT_EQ(*payload, Fill('f', 40));
  EXPECT_EQ(pool.faults(), faults_before);
  pool.Unpin(id, false);
  // And the frame really reached disk: a second pool over the same file
  // reads it back cold.
  BufferPool cold(file.get(), 4 * kPage);
  payload = cold.Pin(id);
  EXPECT_EQ(*payload, Fill('f', 40));
  cold.Unpin(id, false);
}

TEST(BufferPoolDeathTest, UnpinBelowZeroAborts) {
  auto file = MakeFile("bp_death.pages");
  BufferPool pool(file.get(), 4 * kPage);
  std::string* payload = nullptr;
  int64_t id = pool.NewPage(&payload);
  pool.Unpin(id, false);
  EXPECT_DEATH(pool.Unpin(id, false), "unpin below zero");
}

}  // namespace
}  // namespace paged
}  // namespace wuw
