// Page-file durability (storage/page.h): spilled extent images must load
// back exactly, and ANY torn tail or byte corruption must either fail with
// an error string or degrade to the longest valid row prefix — never to a
// wrong table and never to an abort (journal_durability_test's discipline
// applied to the paged tier).  On the engine side, a torn image surfaces
// as a fault-in I/O error (std::runtime_error), and recovery onto a
// restored resident clone still converges.
#include "storage/page.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "exec/warehouse.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "storage/paged_store.h"
#include "test_util.h"

namespace wuw {
namespace paged {
namespace {

constexpr size_t kPage = 512;  // small pages: images span several frames

Table MakeTestTable(int64_t rows, uint64_t seed) {
  Table t(testutil::TripleSchema("T"));
  testutil::FillTriple(&t, rows, seed, /*hole_every=*/5);
  return t;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void ExpectImageMatches(const Table& table, const TableImage& img) {
  EXPECT_EQ(img.mutation_count, table.mutation_count());
  EXPECT_EQ(img.cardinality, table.cardinality());
  std::vector<std::pair<Tuple, int64_t>> live;
  table.ForEach([&](const Tuple& t, int64_t count) {
    live.emplace_back(t, count);
  });
  ASSERT_EQ(img.rows.size(), live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(img.rows[i].first, live[i].first) << "row " << i;
    EXPECT_EQ(img.rows[i].second, live[i].second) << "row " << i;
  }
}

TEST(PageDurabilityTest, TableImageRoundTrip) {
  Table t = MakeTestTable(60, 11);
  const std::string path = ::testing::TempDir() + "wuw_page_rt.pages";
  ASSERT_EQ(SaveTableImage(t, path, kPage), "");
  // temp+rename discipline: no .tmp litter.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  TableImage img;
  std::string error;
  bool torn = true;
  ASSERT_TRUE(LoadTableImage(path, &img, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  ExpectImageMatches(t, img);
  std::remove(path.c_str());
}

// Truncate the image file at EVERY byte length.  Below the first whole
// page the load must fail with an error string; from there on it must
// succeed with a row prefix that never shrinks as more bytes survive, and
// report a torn tail whenever rows are missing.
TEST(PageDurabilityTest, TruncationAtEveryOffset) {
  Table t = MakeTestTable(40, 13);
  const std::string full_path = ::testing::TempDir() + "wuw_page_trunc.pages";
  ASSERT_EQ(SaveTableImage(t, full_path, kPage), "");
  const std::string bytes = ReadFileBytes(full_path);
  ASSERT_GT(bytes.size(), 2 * kPage);  // multi-page image
  const std::string cut_path = full_path + ".cut";

  TableImage full_img;
  std::string error;
  bool torn = false;
  ASSERT_TRUE(LoadTableImage(full_path, &full_img, &error, &torn)) << error;
  const size_t full_rows = full_img.rows.size();

  bool any_success = false;
  size_t prev_rows = 0;
  for (size_t len = 0; len <= bytes.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " of " +
                 std::to_string(bytes.size()) + " bytes");
    WriteFileBytes(cut_path, bytes.substr(0, len));
    TableImage img;
    error.clear();
    torn = false;
    bool ok = LoadTableImage(cut_path, &img, &error, &torn);
    if (!ok) {
      ASSERT_FALSE(any_success)
          << "load failed after shorter prefixes succeeded";
      ASSERT_FALSE(error.empty());
      continue;
    }
    any_success = true;
    ASSERT_LE(img.rows.size(), full_rows);
    ASSERT_GE(img.rows.size(), prev_rows) << "longer prefix lost rows";
    prev_rows = img.rows.size();
    if (img.rows.size() < full_rows) {
      EXPECT_TRUE(torn);
    }
    if (len == bytes.size()) {
      EXPECT_FALSE(torn);
      ExpectImageMatches(t, img);
    }
    // The surviving prefix must be the REAL prefix, bit for bit.
    for (size_t i = 0; i < img.rows.size(); ++i) {
      ASSERT_EQ(img.rows[i].first, full_img.rows[i].first) << "row " << i;
      ASSERT_EQ(img.rows[i].second, full_img.rows[i].second) << "row " << i;
    }
  }
  ASSERT_TRUE(any_success);
  EXPECT_EQ(prev_rows, full_rows);
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

// Flip every byte (one at a time).  Header damage must fail with an error
// string; frame damage must drop to a valid row prefix (the frame CRC
// catches it); flips in inter-frame zero padding are outside any frame
// and load clean.
TEST(PageDurabilityTest, SingleByteCorruptionAtEveryOffset) {
  Table t = MakeTestTable(30, 17);
  const std::string path = ::testing::TempDir() + "wuw_page_flip.pages";
  ASSERT_EQ(SaveTableImage(t, path, kPage), "");
  const std::string bytes = ReadFileBytes(path);
  const std::string flip_path = path + ".flip";

  TableImage full_img;
  std::string error;
  bool torn = false;
  ASSERT_TRUE(LoadTableImage(path, &full_img, &error, &torn)) << error;
  const size_t full_rows = full_img.rows.size();

  for (size_t i = 0; i < bytes.size(); ++i) {
    SCOPED_TRACE("flipped byte " + std::to_string(i));
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteFileBytes(flip_path, corrupt);
    TableImage img;
    error.clear();
    torn = false;
    bool ok = LoadTableImage(flip_path, &img, &error, &torn);
    if (!ok) {
      ASSERT_FALSE(error.empty());
      continue;
    }
    ASSERT_LE(img.rows.size(), full_rows);
    // Whatever survived is a true prefix of the original rows.
    for (size_t r = 0; r < img.rows.size(); ++r) {
      ASSERT_EQ(img.rows[r].first, full_img.rows[r].first);
      ASSERT_EQ(img.rows[r].second, full_img.rows[r].second);
    }
    // A short load must be flagged torn; a full, untorn load means the
    // flip landed in zero padding outside every CRC-framed region.
    if (img.rows.size() < full_rows) {
      EXPECT_TRUE(torn);
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// SaveTableImage through a disk that fills at every (strided) byte
// budget: the save fails with an error string, leaves no .tmp litter, and
// the previously saved image survives under the real name in full —
// old-or-new, never a mix (the crash-atomic rename discipline).
TEST(PageDurabilityTest, SaveTableImageEnospcKeepsOldImage) {
  Table old_table = MakeTestTable(30, 29);
  Table new_table = MakeTestTable(50, 31);
  const std::string path = ::testing::TempDir() + "wuw_page_enospc.pages";
  ASSERT_EQ(SaveTableImage(old_table, path, kPage), "");
  const std::string old_bytes = ReadFileBytes(path);
  const size_t new_image_bytes =
      static_cast<size_t>(ApproxTableBytes(new_table)) + 2 * kPage;

  for (size_t budget = 0; budget < new_image_bytes; budget += 61) {
    SCOPED_TRACE("enospc at byte " + std::to_string(budget));
    io::IoFaultOptions o;
    o.enospc_bytes = static_cast<int64_t>(budget);
    io::FaultEnv fenv(o, io::Env::Default());
    io::ScopedEnv scoped(&fenv);
    std::string error = SaveTableImage(new_table, path, kPage);
    if (error.empty()) {
      // Enough budget: the new image committed whole.  Stop the sweep —
      // later budgets only get easier.
      break;
    }
    ASSERT_NE(error.find("ENOSPC"), std::string::npos) << error;
  }
  EXPECT_FALSE(io::Env::Default()->FileExists(path + ".tmp"));
  TableImage img;
  std::string error;
  bool torn = true;
  ASSERT_TRUE(LoadTableImage(path, &img, &error, &torn)) << error;
  EXPECT_FALSE(torn);
  if (ReadFileBytes(path) == old_bytes) {
    ExpectImageMatches(old_table, img);
  } else {
    ExpectImageMatches(new_table, img);
  }
  std::remove(path.c_str());
}

// Engine-side transient EIO: a hibernated extent whose first fault-in
// reads hit a two-op injected EIO burst still faults in cleanly — the
// bounded retry in PageFile::ReadPage absorbs it (counted in
// GlobalPagedStats().read_retries) and the warehouse stays on the ground
// truth.  No error, no throw, no torn read.
TEST(PageDurabilityTest, TransientEioFaultInRetriesAndConverges) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 40, 37);
  testutil::ApplyTripleChanges(&w, 0.25, 8, 41);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy strategy = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  PagedOptions options;
  options.budget_bytes = 1;
  options.page_bytes = kPage;
  w.EnablePaging(options);
  Executor(&w).Execute(strategy);
  w.paged_store()->TestOnlyEvictAll(&w.catalog());
  const std::string victim = "V1";
  ASSERT_TRUE(w.paged_store()->IsHibernated(victim));

  const int64_t retries_before = GlobalPagedStats().read_retries;
  {
    // Fault-in reads: op 1 is the page file header, then the page frames.
    // Ops 2 and 3 fail retryably — inside ReadPage's kReadAttempts = 3
    // schedule for the first frame.
    io::IoFaultOptions o;
    o.read_eio_at = 2;
    o.transient = 2;
    io::FaultEnv fenv(o, io::Env::Default());
    io::ScopedEnv scoped(&fenv);
    EXPECT_NO_THROW(w.catalog().MustGetTable(victim));
  }
  EXPECT_EQ(GlobalPagedStats().read_retries - retries_before, 2);
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));
}

TEST(PageDurabilityTest, MissingAndGarbageFilesAreErrors) {
  TableImage img;
  std::string error;
  EXPECT_FALSE(LoadTableImage(::testing::TempDir() + "wuw_no_such.pages",
                              &img, &error, nullptr));
  EXPECT_FALSE(error.empty());

  const std::string path = ::testing::TempDir() + "wuw_page_garbage.pages";
  WriteFileBytes(path, "definitely not a page file");
  error.clear();
  EXPECT_FALSE(LoadTableImage(path, &img, &error, nullptr));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// Engine-side torn image: a hibernated extent whose image file was
// truncated mid-frame faults in as an I/O error (std::runtime_error with
// a message), never an abort — and a resident pre-window clone resumed
// from the same journal still converges to the ground truth.
TEST(PageDurabilityTest, TornImageFaultInIsAnErrorAndRecoveryConverges) {
  Warehouse w =
      testutil::MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 40, 19);
  testutil::ApplyTripleChanges(&w, 0.25, 8, 23);
  Catalog truth = testutil::GroundTruthAfterChanges(w);
  Strategy strategy = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  Warehouse pre = w.Clone();  // resident pre-window state for recovery

  PagedOptions options;
  options.budget_bytes = 1;  // evict everything evictable at every touch
  options.page_bytes = kPage;
  w.EnablePaging(options);
  ExecutorOptions exec_options;
  exec_options.journal = true;
  Executor(&w, exec_options).Execute(strategy);
  ASSERT_TRUE(w.catalog().ContentsEqual(truth));

  // Hibernate everything, then tear every image's tail mid-frame (image
  // paths are internal, so damage the whole spill directory).
  w.paged_store()->TestOnlyEvictAll(&w.catalog());
  const std::string victim = "V1";
  ASSERT_TRUE(w.paged_store()->IsHibernated(victim));
  int images_torn = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(w.paged_store()->dir())) {
    std::string bytes = ReadFileBytes(entry.path().string());
    ASSERT_GT(bytes.size(), 7u);
    WriteFileBytes(entry.path().string(), bytes.substr(0, bytes.size() - 7));
    ++images_torn;
  }
  ASSERT_GT(images_torn, 0);

  EXPECT_THROW(
      {
        try {
          w.catalog().MustGetTable(victim);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(victim), std::string::npos);
          throw;
        }
      },
      std::runtime_error);

  // The journaled run survives the torn image: recovery replays it onto
  // the resident pre-window clone and converges.
  ResumeReport r = ResumeStrategy(w.journal(), &pre);
  ASSERT_EQ(r.window_result, WindowResult::kCompleted);
  ASSERT_TRUE(pre.catalog().ContentsEqual(truth));
}

}  // namespace
}  // namespace paged
}  // namespace wuw
