#include <gtest/gtest.h>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "exec/parallel_executor.h"
#include "parallel/flatten.h"
#include "parallel/parallel_strategy.h"
#include "plan/subplan_cache.h"
#include "test_util.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {
namespace {

using testutil::ApplyTripleChanges;
using testutil::GroundTruthAfterChanges;
using testutil::MakeLoadedWarehouse;

class ParallelExecutorTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelExecutorTest, DualStageStagesReachGroundTruth) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 80, 7);
  ApplyTripleChanges(&w, 0.2, 10, 11);
  Catalog truth = GroundTruthAfterChanges(w);

  ParallelStrategy stages =
      ParallelizeStrategy(w.vdag(), MakeDualStageVdagStrategy(w.vdag()));
  ParallelExecutorOptions options;
  options.workers = GetParam();
  ParallelExecutor executor(&w, options);
  ParallelExecutionReport report = executor.Execute(stages);

  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
  EXPECT_EQ(report.per_expression.size(), stages.num_expressions());
  EXPECT_EQ(report.stage_seconds.size(), stages.stages.size());
}

TEST_P(ParallelExecutorTest, MinWorkStagesReachGroundTruth) {
  Warehouse w = MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 80, 13);
  ApplyTripleChanges(&w, 0.15, 8, 17);
  Catalog truth = GroundTruthAfterChanges(w);

  Strategy sequential = MinWork(w.vdag(), w.EstimatedSizes()).strategy;
  ParallelStrategy stages = ParallelizeStrategy(w.vdag(), sequential);
  ParallelExecutorOptions options;
  options.workers = GetParam();
  ParallelExecutor executor(&w, options);
  executor.Execute(stages);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

TEST_P(ParallelExecutorTest, FlattenedDualStageReachesGroundTruth) {
  Vdag flat = FlattenVdag(testutil::MakeFig3Vdag());
  Warehouse w = MakeLoadedWarehouse(flat, 60, 19);
  ApplyTripleChanges(&w, 0.2, 6, 23);
  Catalog truth = GroundTruthAfterChanges(w);

  ParallelStrategy stages =
      ParallelizeStrategy(flat, MakeDualStageVdagStrategy(flat));
  ParallelExecutorOptions options;
  options.workers = GetParam();
  ParallelExecutor executor(&w, options);
  executor.Execute(stages);
  EXPECT_TRUE(w.catalog().ContentsEqual(truth));
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelExecutorTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelExecutorTest, MatchesSequentialExecutorWorkExactly) {
  Warehouse seq_w = MakeLoadedWarehouse(testutil::MakeFig3Vdag(), 60, 29);
  ApplyTripleChanges(&seq_w, 0.15, 5, 31);
  Warehouse par_w = seq_w.Clone();

  Strategy strategy = MakeDualStageVdagStrategy(seq_w.vdag());
  Executor sequential(&seq_w);
  ExecutionReport seq_report = sequential.Execute(strategy);

  ParallelStrategy stages = ParallelizeStrategy(par_w.vdag(), strategy);
  ParallelExecutorOptions options;
  options.workers = 4;
  ParallelExecutor parallel(&par_w, options);
  ParallelExecutionReport par_report = parallel.Execute(stages);

  EXPECT_TRUE(seq_w.catalog().ContentsEqual(par_w.catalog()));
  EXPECT_EQ(seq_report.total_linear_work, par_report.total_linear_work);
  // Per-expression counters merge at the stage barrier, so the parallel
  // totals match the sequential run increment for increment.
  EXPECT_EQ(seq_report.totals, par_report.totals);
}

// A stage's workers share one SubplanCache (it locks internally); the
// result must still be the ground truth, and work accounting must not
// depend on which worker won a cache race.
TEST(ParallelExecutorTest, SharedSubplanCacheStaysCorrectUnderThreads) {
  for (int round = 0; round < 10; ++round) {
    Warehouse w = MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                      300 + round);
    ApplyTripleChanges(&w, 0.2, 6, 400 + round);
    Catalog truth = GroundTruthAfterChanges(w);

    Warehouse plain_w = w.Clone();
    ParallelStrategy stages = ParallelizeStrategy(
        w.vdag(), MakeDualStageVdagStrategy(w.vdag()));

    SubplanCache cache;
    ParallelExecutorOptions options;
    options.workers = 8;
    options.term_workers = 2;
    options.subplan_cache = &cache;
    ParallelExecutor executor(&w, options);
    ParallelExecutionReport report = executor.Execute(stages);

    ParallelExecutorOptions plain_options;
    plain_options.workers = 8;
    plain_options.term_workers = 2;
    ParallelExecutor plain(&plain_w, plain_options);
    ParallelExecutionReport plain_report = plain.Execute(stages);

    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "round " << round;
    ASSERT_EQ(report.total_linear_work, plain_report.total_linear_work)
        << "round " << round;
  }
}

// Concurrency soak: many repetitions catch races in accumulator
// finalization (two parents racing for one child's delta).
TEST(ParallelExecutorTest, RepeatedRunsStayDeterministic) {
  for (int round = 0; round < 15; ++round) {
    Warehouse w = MakeLoadedWarehouse(testutil::MakeFig10Vdag(), 50,
                                      100 + round);
    ApplyTripleChanges(&w, 0.2, 6, 200 + round);
    Catalog truth = GroundTruthAfterChanges(w);
    ParallelStrategy stages = ParallelizeStrategy(
        w.vdag(), MakeDualStageVdagStrategy(w.vdag()));
    ParallelExecutorOptions options;
    options.workers = 8;
    ParallelExecutor executor(&w, options);
    executor.Execute(stages);
    ASSERT_TRUE(w.catalog().ContentsEqual(truth)) << "round " << round;
  }
}

TEST(ParallelExecutorTest, TpcdStagedUpdateConverges) {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  options.seed = 5;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&w, 0.1, 0.05, 7);

  Warehouse seq_w = w.Clone();
  Executor sequential(&seq_w);
  sequential.Execute(MakeDualStageVdagStrategy(w.vdag()));

  ParallelStrategy stages = ParallelizeStrategy(
      w.vdag(), MakeDualStageVdagStrategy(w.vdag()));
  ParallelExecutorOptions exec_options;
  exec_options.workers = 4;
  ParallelExecutor parallel(&w, exec_options);
  parallel.Execute(stages);
  EXPECT_TRUE(w.catalog().ContentsEqual(seq_w.catalog()));
}

}  // namespace
}  // namespace wuw
