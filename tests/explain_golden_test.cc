// Golden-file tests for the EXPLAIN strategy report (obs/explain.h): the
// exact rendering for the exp1 fixture (TPC-D Q3 view, MinWorkSingle
// strategy, scratch subplan cache so shared/cached annotations show) and
// the exp4 fixture (whole-VDAG Q3+Q5+Q10, MinWork strategy, eager) is
// pinned under tests/goldens/.
//
// Regenerating goldens after an intentional rendering change:
//
//     ./build/tests/explain_golden_test --update-goldens
//     # or: WUW_UPDATE_GOLDENS=1 ctest --test-dir build -R explain_golden
//
// then review the diff like any other source change and commit it.  The
// fixtures pin their own scale factor and seed (they deliberately ignore
// WUW_SF / WUW_SEED): a golden must not depend on the environment.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/min_work.h"
#include "core/min_work_single.h"
#include "obs/explain.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

namespace wuw {

/// Set by --update-goldens / WUW_UPDATE_GOLDENS in main (below).
bool g_update_goldens = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(WUW_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against the named golden, or rewrites the golden in
/// --update-goldens mode.  On mismatch the failure message points at the
/// first differing line plus the regeneration command.
void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "short write to golden " << path;
    GTEST_LOG_(INFO) << "updated golden " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run ./explain_golden_test --update-goldens to create it";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual == expected.str()) return;

  // Locate the first differing line for a readable failure.
  std::istringstream want(expected.str()), got(actual);
  std::string want_line, got_line;
  size_t line = 0;
  while (true) {
    ++line;
    bool have_want = static_cast<bool>(std::getline(want, want_line));
    bool have_got = static_cast<bool>(std::getline(got, got_line));
    if (!have_want && !have_got) break;
    if (!have_want || !have_got || want_line != got_line) {
      ADD_FAILURE() << name << " diverged from golden at line " << line
                    << "\n  golden: "
                    << (have_want ? want_line : "<end of file>")
                    << "\n  actual: "
                    << (have_got ? got_line : "<end of file>")
                    << "\nIf the change is intentional, regenerate with"
                    << " ./explain_golden_test --update-goldens";
      return;
    }
  }
  ADD_FAILURE() << name << " differs from golden only in whitespace/EOF";
}

/// exp1's fixture (bench/exp1_q3_view_strategies.cc) at a pinned small
/// scale: Q3 over its referenced bases, 10% deletions of C/O/L.
Warehouse MakeExp1Warehouse() {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.01;
  options.seed = 42;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3"},
                                        /*only_referenced_bases=*/true);
  tpcd::ApplyPaperChangeWorkload(&w, 0.10, 0.0, /*seed=*/42);
  return w;
}

/// exp4's fixture (bench/exp4_vdag_strategies.cc) at the same pinned
/// scale: the Q3+Q5+Q10 VDAG over the six base views.
Warehouse MakeExp4Warehouse() {
  tpcd::GeneratorOptions options;
  options.scale_factor = 0.01;
  options.seed = 42;
  Warehouse w = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  tpcd::ApplyPaperChangeWorkload(&w, 0.10, 0.0, /*seed=*/42);
  return w;
}

TEST(ExplainGoldenTest, Exp1Q3MinWorkSingleWithCache) {
  Warehouse w = MakeExp1Warehouse();
  Strategy s = MinWorkSingle(w.vdag(), "Q3", w.EstimatedSizes());

  obs::ExplainOptions options;
  options.with_subplan_cache = true;  // show shared/(cached) annotations
  options.cache_budget = -1;
  obs::ExplainReport report = obs::ExplainStrategy(w, s, options);

  ASSERT_FALSE(report.steps.empty());
  ASSERT_FALSE(report.comps.empty());
  CompareOrUpdate("explain_exp1_q3.txt", report.ToString());
}

TEST(ExplainGoldenTest, Exp4VdagMinWorkEager) {
  Warehouse w = MakeExp4Warehouse();
  Strategy s = MinWork(w.vdag(), w.EstimatedSizes()).strategy;

  obs::ExplainReport report = obs::ExplainStrategy(w, s);

  ASSERT_FALSE(report.steps.empty());
  ASSERT_FALSE(report.comps.empty());
  CompareOrUpdate("explain_exp4_vdag.txt", report.ToString());
}

// The report is a pure function of (state, strategy, options): rendering
// twice from the same warehouse must produce byte-identical text — the
// property that makes golden-pinning sound in the first place.
TEST(ExplainGoldenTest, ReportIsDeterministic) {
  Warehouse w = MakeExp1Warehouse();
  Strategy s = MinWorkSingle(w.vdag(), "Q3", w.EstimatedSizes());
  obs::ExplainOptions options;
  options.with_subplan_cache = true;
  options.cache_budget = -1;
  EXPECT_EQ(obs::ExplainStrategy(w, s, options).ToString(),
            obs::ExplainStrategy(w, s, options).ToString());
}

}  // namespace
}  // namespace wuw

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-goldens") {
      wuw::g_update_goldens = true;
    }
  }
  const char* env = std::getenv("WUW_UPDATE_GOLDENS");
  if (env != nullptr && *env != '\0') wuw::g_update_goldens = true;
  return RUN_ALL_TESTS();
}
