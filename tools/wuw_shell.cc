// wuw_shell — an interactive warehouse console.
//
// The full administrator loop in one binary: define a warehouse from DDL,
// load CSVs, register change batches, ask the advisor for tonight's
// strategy, execute the update window, query the results, snapshot to
// disk.
//
//   $ wuw_shell                 # interactive
//   $ wuw_shell commands.txt    # batch mode (one command per line)
//
// Commands:
//   ddl <file>            define the warehouse from a CREATE script
//   open <dir>            load a snapshot directory
//   save <dir>            write a snapshot directory
//   load <view> <file>    bulk-load a base view from CSV
//   delta <view> <file>   merge a change batch from CSV (signed __count)
//   recompute             (re)materialize all derived views
//   schema                print the warehouse DDL
//   sizes                 print |V| and pending |δV| per view
//   advise                rank candidate update strategies for the batch
//   update [name]         run the update window (default: MinWork); prints
//                         the EXPLAIN report first and a span timeline after
//   explain               work estimate + plan DAGs (est vs measured rows)
//                         of the best strategy
//   select ...            ad-hoc query (any line starting with SELECT)
//   procs                 print the stored-procedure setup script (§5.5)
//   dot                   print the VDAG as Graphviz
//   help / quit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/min_work.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "graph/dot.h"
#include "view/validate.h"
#include "exec/executor.h"
#include "exec/recovery.h"
#include "exec/window_budget.h"
#include "io/csv.h"
#include "policy/maintenance_policy.h"
#include "io/snapshot.h"
#include "parser/ddl_parser.h"
#include "query/ad_hoc.h"
#include "sqlgen/sql_script.h"

namespace wuw {
namespace {

class Shell {
 public:
  bool HandleLine(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    for (char& c : command) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (command.empty() || command[0] == '#') return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "ddl") {
      Ddl(Rest(in));
    } else if (command == "open") {
      Open(Rest(in));
    } else if (command == "save") {
      Save(Rest(in));
    } else if (command == "load" || command == "delta") {
      std::string view, file;
      in >> view >> file;
      LoadCsv(command == "delta", view, file);
    } else if (command == "recompute") {
      if (Ready()) {
        warehouse_->RecomputeDerived();
        std::puts("derived views rematerialized");
      }
    } else if (command == "schema") {
      if (Ready()) std::fputs(DumpWarehouseScript(warehouse_->vdag()).c_str(), stdout);
    } else if (command == "sizes") {
      Sizes();
    } else if (command == "advise") {
      Advise();
    } else if (command == "update") {
      Update(Rest(in));
    } else if (command == "explain") {
      Explain();
    } else if (command == "select") {
      Query(line);
    } else if (command == "dot") {
      if (Ready()) std::fputs(VdagToDot(warehouse_->vdag()).c_str(), stdout);
    } else if (command == "procs") {
      if (Ready()) {
        std::fputs(GenerateSetupScript(warehouse_->vdag()).c_str(), stdout);
      }
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
    return true;
  }

 private:
  static std::string Rest(std::istringstream& in) {
    std::string rest;
    std::getline(in, rest);
    size_t start = rest.find_first_not_of(" \t");
    return start == std::string::npos ? "" : rest.substr(start);
  }

  void Help() {
    std::puts(
        "  ddl <file> | open <dir> | save <dir>\n"
        "  load <view> <file.csv> | delta <view> <file.csv> | recompute\n"
        "  schema | sizes | advise | explain | update [minwork|...]\n"
        "  select ... | dot | procs | quit");
  }

  bool Ready() {
    if (warehouse_ == nullptr) {
      std::puts("no warehouse loaded (use: ddl <file> or open <dir>)");
      return false;
    }
    return true;
  }

  void Ddl(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot read %s\n", path.c_str());
      return;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    ParsedWarehouse parsed = ParseWarehouseScript(buffer.str());
    if (!parsed.ok()) {
      std::printf("DDL error: %s\n", parsed.error.c_str());
      return;
    }
    std::string invalid = ValidateVdag(parsed.vdag);
    if (!invalid.empty()) {
      std::printf("DDL error: %s\n", invalid.c_str());
      return;
    }
    warehouse_ = std::make_unique<Warehouse>(std::move(parsed.vdag));
    std::printf("warehouse defined: %zu views\n",
                warehouse_->vdag().num_views());
  }

  void Open(const std::string& dir) {
    auto loaded = std::make_unique<Warehouse>(Vdag{});
    std::string error;
    if (!LoadWarehouse(dir, loaded.get(), &error)) {
      std::printf("open failed: %s\n", error.c_str());
      return;
    }
    warehouse_ = std::move(loaded);
    std::printf("loaded %zu views from %s\n", warehouse_->vdag().num_views(),
                dir.c_str());
  }

  void Save(const std::string& dir) {
    if (!Ready()) return;
    std::string error;
    if (!SaveWarehouse(*warehouse_, dir, &error)) {
      std::printf("save failed: %s\n", error.c_str());
      return;
    }
    std::printf("snapshot written to %s\n", dir.c_str());
  }

  void LoadCsv(bool as_delta, const std::string& view,
               const std::string& path) {
    if (!Ready()) return;
    if (!warehouse_->vdag().HasView(view) ||
        !warehouse_->vdag().IsBaseView(view)) {
      std::printf("'%s' is not a base view\n", view.c_str());
      return;
    }
    std::ifstream file(path);
    if (!file) {
      std::printf("cannot read %s\n", path.c_str());
      return;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    if (as_delta) {
      DeltaRelation delta(warehouse_->vdag().OutputSchema(view));
      if (!CsvToDelta(buffer.str(), &delta, &error)) {
        std::printf("CSV error: %s\n", error.c_str());
        return;
      }
      std::printf("merged batch for %s: +%lld/-%lld\n", view.c_str(),
                  (long long)delta.plus_count(),
                  (long long)delta.minus_count());
      warehouse_->MergeBaseDelta(view, delta);
    } else {
      if (!CsvToTable(buffer.str(), warehouse_->base_table(view), &error)) {
        std::printf("CSV error: %s\n", error.c_str());
        return;
      }
      std::printf("loaded %s: %lld rows (run 'recompute' when done)\n",
                  view.c_str(),
                  (long long)warehouse_->catalog()
                      .MustGetTable(view)
                      ->cardinality());
    }
  }

  void Sizes() {
    if (!Ready()) return;
    for (const std::string& name : warehouse_->vdag().view_names()) {
      const Table& t = *warehouse_->catalog().MustGetTable(name);
      std::printf("  %-20s |V| = %10lld", name.c_str(),
                  (long long)t.cardinality());
      if (warehouse_->vdag().IsBaseView(name)) {
        const DeltaRelation& d = warehouse_->base_delta(name);
        if (!d.empty()) {
          std::printf("   pending +%lld/-%lld", (long long)d.plus_count(),
                      (long long)d.minus_count());
        }
      }
      std::printf("\n");
    }
  }

  void Advise() {
    if (!Ready()) return;
    auto advice =
        wuw::Advise(warehouse_->vdag(), warehouse_->EstimatedSizesWithStats());
    std::fputs(AdviceToText(advice).c_str(), stdout);
  }

  void Explain() {
    if (!Ready()) return;
    SizeMap sizes = warehouse_->EstimatedSizesWithStats();
    auto advice = wuw::Advise(warehouse_->vdag(), sizes);
    const StrategyAdvice& best = advice.front();
    std::printf("plan: %s (estimated work %.0f)\n", best.name.c_str(),
                best.estimated_work);
    WorkBreakdown breakdown =
        EstimateStrategyWork(warehouse_->vdag(), best.strategy, sizes, {});
    for (const ExpressionWork& ew : breakdown.per_expression) {
      std::printf("  %-50s %12.0f\n", ew.expression.ToString().c_str(),
                  ew.work);
    }
    // The physical view: each Comp's interned plan DAG with shared-subplan
    // annotations and estimated vs measured rows (replayed on a clone; the
    // pending batch stays pending).
    obs::ExplainOptions explain_options;
    explain_options.simplify_empty_deltas = true;
    std::fputs(
        obs::ExplainStrategy(*warehouse_, best.strategy, explain_options)
            .ToString()
            .c_str(),
        stdout);
  }

  void Update(const std::string& which) {
    if (!Ready()) return;
    auto advice =
        wuw::Advise(warehouse_->vdag(), warehouse_->EstimatedSizesWithStats());
    const StrategyAdvice* chosen = &advice.front();
    if (!which.empty()) {
      chosen = nullptr;
      for (const StrategyAdvice& a : advice) {
        std::string lower = a.name;
        for (char& c : lower) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (lower.rfind(which, 0) == 0) chosen = &a;
      }
      if (chosen == nullptr) {
        std::printf("no strategy matching '%s'\n", which.c_str());
        return;
      }
    }
    // EXPLAIN before executing: replay on a clone, so the report shows the
    // exact ordering and per-node rows the real window is about to produce.
    obs::ExplainOptions explain_options;
    explain_options.simplify_empty_deltas = true;
    std::fputs(
        obs::ExplainStrategy(*warehouse_, chosen->strategy, explain_options)
            .ToString()
            .c_str(),
        stdout);

    ThreadPool& pool = ThreadPool::Global();
    std::printf("executing %s (%d threads)...\n", chosen->name.c_str(),
                pool.parallelism());
    ExecutorOptions options;
    options.simplify_empty_deltas = true;
    ThreadPoolStats before = pool.stats();
    int64_t pending = 0;
    for (const std::string& base : warehouse_->vdag().BaseViews()) {
      pending += warehouse_->base_delta(base).AbsCardinality();
    }
    // Arm tracing for the window so the timeline below has spans to show;
    // leave the env-armed state (WUW_TRACE) untouched.
    bool tracing_was_armed = obs::TracingArmed();
    size_t trace_mark = obs::TraceEventCount();
    obs::ArmTracing();
    // Under WUW_WINDOW_BUDGET the shell drives the pause/resume chain
    // itself (an explicit budget disables the executor's silent env
    // auto-split), so the operator sees every paused window and the
    // carryover accounting, PolicyReport-style.
    PolicyReport windows;
    windows.batches_received = 1;
    ExecutionReport report;
    const WindowBudgetOptions* env_budget = EnvWindowBudget();
    if (env_budget == nullptr) {
      Executor executor(warehouse_.get(), options);
      report = executor.Execute(chosen->strategy);
      ++windows.windows_run;
    } else {
      {
        WindowBudget budget(*env_budget);
        ExecutorOptions first_options = options;
        first_options.budget = &budget;
        Executor executor(warehouse_.get(), first_options);
        report = executor.Execute(chosen->strategy);
        ++windows.windows_run;
      }
      while (report.window_result == WindowResult::kPaused) {
        ++windows.windows_paused;
        std::printf("  window paused after %lld/%zu steps — carrying over\n",
                    (long long)report.steps_completed,
                    chosen->strategy.size());
        WindowBudget budget(*env_budget);
        ExecutorOptions resume_options = options;
        resume_options.budget = &budget;
        ResumeReport resumed = ResumeStrategy(
            warehouse_->journal(), warehouse_.get(), resume_options,
            ResumeMode::kContinueInPlace);
        ++windows.windows_run;
        windows.carryover_work += resumed.execution.total_linear_work;
        report.total_seconds += resumed.execution.total_seconds;
        report.total_linear_work += resumed.execution.total_linear_work;
        report.totals += resumed.execution.totals;
        report.steps_completed += resumed.execution.steps_completed;
        ++report.windows;
        report.window_result = resumed.window_result;
      }
    }
    windows.total_window_seconds = report.total_seconds;
    windows.total_linear_work = report.total_linear_work;
    windows.rows_installed = pending;
    if (!tracing_was_armed) obs::DisarmTracing();
    ThreadPoolStats after = pool.stats();
    std::fputs(report.ToString().c_str(), stdout);
    if (env_budget != nullptr) {
      std::printf("  windows: %s\n", windows.ToString().c_str());
    }
    std::puts("  timeline:");
    std::fputs(obs::HumanTimeline(obs::TraceSince(trace_mark)).c_str(),
               stdout);
    // Where the operator time went: scan/probe/build volumes plus how much
    // of the run actually fanned out onto the pool.
    std::printf(
        "  operators: scanned=%lld produced=%lld probes=%lld build=%lld\n",
        (long long)report.totals.rows_scanned,
        (long long)report.totals.rows_produced,
        (long long)report.totals.hash_probes,
        (long long)report.totals.hash_build_rows);
    std::printf(
        "  pool: %d threads, %lld parallel regions (%lld worker tasks), "
        "%lld inline regions\n",
        pool.parallelism(),
        (long long)(after.parallel_regions - before.parallel_regions),
        (long long)(after.pool_tasks - before.pool_tasks),
        (long long)(after.inline_regions - before.inline_regions));
  }

  void Query(const std::string& sql) {
    if (!Ready()) return;
    QueryResult result = ExecuteQuery(*warehouse_, sql);
    if (!result.ok()) {
      std::printf("query error: %s\n", result.error.c_str());
      return;
    }
    std::fputs(result.ToText().c_str(), stdout);
    std::printf("(%.4fs)\n", result.seconds);
  }

  std::unique_ptr<Warehouse> warehouse_;
};

}  // namespace
}  // namespace wuw

int main(int argc, char** argv) {
  wuw::Shell shell;
  std::istream* in = &std::cin;
  std::ifstream script;
  bool interactive = true;
  if (argc > 1) {
    script.open(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &script;
    interactive = false;
  }
  std::string line;
  while (true) {
    if (interactive) {
      std::fputs("wuw> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(*in, line)) break;
    if (!interactive && !line.empty() && line[0] != '#') {
      std::printf("wuw> %s\n", line.c_str());
    }
    if (!shell.HandleLine(line)) break;
  }
  return 0;
}
