#!/usr/bin/env python3
"""Before/after evidence for the columnar engine (BENCH_columnar.json).

Runs the affected benches twice — WUW_COLUMNAR=0 (row-at-a-time) and
WUW_COLUMNAR=1 (vectorized) — and assembles one JSON report:

  * micro_parallel_kernels / micro_engine: per-benchmark cpu time and the
    row/vec speedup;
  * exp1_q3_view_strategies / exp4_vdag_strategies: end-to-end wall time of
    the paper experiments through the whole maintenance pipeline;
  * kEngine counters (WUW_METRICS) from micro_parallel_kernels: Value-level
    hash/compare/eval operations on the row path vs the vectorized path.
    On single-core hosts, where wall-time speedups are noise-bound, this
    ratio is the acceptance metric: the vectorized engine must do >= 5x
    fewer Value-level operations for the same workload.

Usage: python3 tools/columnar_bench.py [build_dir] [out_json]
       (defaults: build-rel BENCH_columnar.json)
"""

import datetime
import json
import os
import subprocess
import sys
import tempfile
import time

MICRO_BENCHES = ["micro_parallel_kernels", "micro_engine"]
EXP_BENCHES = ["exp1_q3_view_strategies", "exp4_vdag_strategies"]
MIN_TIME = "0.1"
# The counters that represent per-row Value work on each path.  engine.row.*
# may still fire under WUW_COLUMNAR=1 when a shape falls back to the row
# kernel, so both families are summed on both runs.
ROW_OP_COUNTERS = (
    "engine.row.expr_evals",
    "engine.row.value_hashes",
    "engine.row.value_cmps",
)
VEC_OP_COUNTERS = (
    "engine.vec.value_hashes",
    "engine.vec.value_cmps",
    "engine.vec.code_evals",
)


def run_gbench(binary, columnar, min_time=MIN_TIME):
    """Runs one google-benchmark binary, returns {name: cpu_time_ms}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    print(f"running {binary} (WUW_COLUMNAR={columnar})", flush=True)
    env = dict(os.environ, WUW_COLUMNAR=columnar)
    subprocess.run(
        [
            binary,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
            f"--benchmark_min_time={min_time}",
        ],
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(out_path) as f:
        try:
            report = json.load(f)
        except json.JSONDecodeError as e:
            raise RuntimeError(f"{binary} wrote no benchmark JSON") from e
    os.unlink(out_path)
    times = {}
    for b in report["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[b["time_unit"]]
        times[b["name"]] = round(b["cpu_time"] * scale, 3)
    return times


def run_wall(binary, columnar):
    """Runs an experiment harness once, returns wall seconds (these are
    whole-pipeline tables, not google-benchmark binaries)."""
    print(f"running {binary} (WUW_COLUMNAR={columnar})", flush=True)
    env = dict(os.environ, WUW_COLUMNAR=columnar)
    start = time.monotonic()
    subprocess.run([binary], env=env, check=True, stdout=subprocess.DEVNULL)
    return round(time.monotonic() - start, 2)


def run_counters(binary, columnar):
    """Runs `binary` with WUW_METRICS armed, returns {counter: value}."""
    with tempfile.NamedTemporaryFile(suffix=".txt", delete=False) as tmp:
        out_path = tmp.name
    env = dict(os.environ, WUW_COLUMNAR=columnar, WUW_METRICS=out_path)
    subprocess.run(
        [binary, f"--benchmark_min_time={MIN_TIME}"],
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
    )
    counters = {}
    with open(out_path) as f:
        for line in f:
            parts = line.split()
            if len(parts) == 2:
                counters[parts[0]] = int(parts[1])
    os.unlink(out_path)
    return counters


def speedups(row, vec):
    return {
        name: round(row[name] / vec[name], 2)
        for name in row
        if name in vec and vec[name] > 0
    }


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build-rel"
    out_json = sys.argv[2] if len(sys.argv) > 2 else "BENCH_columnar.json"
    report = {
        "context": {
            "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "num_cpus": os.cpu_count(),
            "build_dir": build,
            "min_time_s": MIN_TIME,
            "note": "row = WUW_COLUMNAR=0, vec = WUW_COLUMNAR=1; "
            "cpu times in ms",
        }
    }
    for bench in MICRO_BENCHES:
        binary = os.path.join(build, "bench", bench)
        row = run_gbench(binary, "0")
        vec = run_gbench(binary, "1")
        report[bench] = {"row": row, "vec": vec, "speedup": speedups(row, vec)}
    for bench in EXP_BENCHES:
        binary = os.path.join(build, "bench", bench)
        row = run_wall(binary, "0")
        vec = run_wall(binary, "1")
        report[bench] = {
            "row_wall_s": row,
            "vec_wall_s": vec,
            "speedup": round(row / vec, 2) if vec else None,
        }

    row_counters = run_counters(
        os.path.join(build, "bench", MICRO_BENCHES[0]), "0"
    )
    vec_counters = run_counters(
        os.path.join(build, "bench", MICRO_BENCHES[0]), "1"
    )
    keep = lambda c: {
        k: v for k, v in c.items() if k.startswith("engine.")
    }
    row_ops = sum(row_counters.get(k, 0) for k in ROW_OP_COUNTERS)
    vec_ops = sum(
        vec_counters.get(k, 0) for k in ROW_OP_COUNTERS + VEC_OP_COUNTERS
    )
    report["value_op_counters"] = {
        "workload": MICRO_BENCHES[0],
        "row": keep(row_counters),
        "vec": keep(vec_counters),
        "row_value_ops": row_ops,
        "vec_value_ops": vec_ops,
        "reduction_factor": round(row_ops / vec_ops, 2) if vec_ops else None,
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {out_json}")
    factor = report["value_op_counters"]["reduction_factor"]
    print(f"Value-op reduction (row/vec): {factor}x")


if __name__ == "__main__":
    main()
