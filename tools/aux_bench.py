#!/usr/bin/env python3
"""Evidence for the auxiliary-view promotion layer (BENCH_mqo.json).

Runs the two aux-view bench binaries and assembles one JSON report:

  * ablation_aux_views: per-batch wall time, linear work, and rows scanned
    for off / cache-only / aux / aux+cache over coherent TPC-D change
    streams, plus the acceptance verdict (the binary exits non-zero unless
    every measured batch does strictly less linear work AND scans strictly
    fewer rows under `aux` than under `off`);
  * micro_aux: per-benchmark cpu time — the disarmed executor seams must
    price within noise of micro_window's BM_ExecuteNoBudget on the same
    fixture, and the armed advisor bookkeeping (tally, snapshot fetch,
    window close) stays in the tens-of-ns range.

Usage: python3 tools/aux_bench.py [build_dir] [out_json]
       (defaults: build BENCH_mqo.json)
"""

import datetime
import json
import os
import re
import subprocess
import sys
import tempfile

MIN_TIME = "0.1"

WORKLOAD_RE = re.compile(r"^(.+?) — (\d+) measured batches")
ROW_RE = re.compile(
    r"^  (.*?)\s*(\d+)(\*?)\s+([\d.]+)s\s+(\d+)\s+(\d+)\s+(\d+)$"
)
VERDICT_RE = re.compile(r"^  (OK|FAIL)\b(.*)$")


def run_ablation(binary):
    """Runs ablation_aux_views, parses its tables into per-mode batch rows."""
    print(f"running {binary}", flush=True)
    proc = subprocess.run(
        [binary], capture_output=True, text=True, check=False
    )
    sys.stdout.write(proc.stdout)
    workloads = {}
    current_workload = None
    current_mode = None
    for line in proc.stdout.splitlines():
        m = WORKLOAD_RE.match(line)
        if m:
            current_workload = m.group(1)
            workloads[current_workload] = {"modes": {}, "verdicts": []}
            current_mode = None
            continue
        if current_workload is None:
            continue
        m = ROW_RE.match(line)
        if m:
            label, batch, warmup, wall, work, rows, aux = m.groups()
            if label:
                current_mode = label
                workloads[current_workload]["modes"][current_mode] = {
                    "batches": [],
                    "aux_views": int(aux),
                }
            workloads[current_workload]["modes"][current_mode][
                "batches"
            ].append(
                {
                    "batch": int(batch),
                    "warmup": warmup == "*",
                    "wall_s": float(wall),
                    "linear_work": int(work),
                    "rows_scanned": int(rows),
                }
            )
            continue
        m = VERDICT_RE.match(line)
        if m:
            workloads[current_workload]["verdicts"].append(line.strip())
    return workloads, proc.returncode


def run_gbench(binary, min_time=MIN_TIME):
    """Runs one google-benchmark binary, returns {name: cpu_time_ms}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    print(f"running {binary}", flush=True)
    subprocess.run(
        [
            binary,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
            f"--benchmark_min_time={min_time}",
        ],
        check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(out_path) as f:
        report = json.load(f)
    os.unlink(out_path)
    times = {}
    for b in report["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[b["time_unit"]]
        times[b["name"]] = round(b["cpu_time"] * scale, 6)
    return times


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build"
    out_json = sys.argv[2] if len(sys.argv) > 2 else "BENCH_mqo.json"

    workloads, rc = run_ablation(
        os.path.join(build, "bench", "ablation_aux_views")
    )
    report = {
        "context": {
            "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "num_cpus": os.cpu_count(),
            "build_dir": build,
            "note": "ablation: per-batch linear work / rows scanned for "
            "off vs cache vs aux vs aux+cache (batch 0 = advisor warmup); "
            "micro: cpu ms (execute) / cpu ns-scale (advisor ops)",
        },
        "ablation_aux_views": {
            "workloads": workloads,
            "accepted": rc == 0,
        },
        "micro_aux": run_gbench(os.path.join(build, "bench", "micro_aux")),
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {out_json}")
    if rc != 0:
        print("ablation acceptance FAILED", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
