// Declarative warehouse definition: views from SQL text, data and change
// batches from CSV — the shape of a real deployment where the extractor
// drops flat files and the administrator writes SELECT statements.
//
// A small retail mart:
//   sales.csv / stores.csv           -> base views
//   "revenue_by_city" (SQL)          -> summary table
//   sales_delta.csv                  -> tonight's batch
#include <cstdio>

#include "core/min_work.h"
#include "exec/executor.h"
#include "io/csv.h"
#include "parser/sql_parser.h"

using namespace wuw;

namespace {

const char* kStoresCsv = R"(s_store,s_city
1,Palo Alto
2,Stanford
3,"Menlo Park"
4,Palo Alto
)";

const char* kSalesCsv = R"(__count,x_store,x_item,x_amount,x_day
1,1,101,500,1995-03-01
2,1,102,120,1995-03-02
1,2,101,700,1995-03-02
1,2,103,50,1995-03-05
1,3,104,900,1995-03-07
1,4,101,450,1995-03-08
1,4,105,80,1995-03-09
)";

const char* kSalesDeltaCsv = R"(__count,x_store,x_item,x_amount,x_day
-1,1,101,500,1995-03-01
1,1,101,525,1995-03-11
1,3,106,640,1995-03-12
-1,2,103,50,1995-03-05
)";

const char* kViewSql = R"(
  SELECT s_city, SUM(x_amount) AS revenue, COUNT(*) AS transactions
  FROM sales, stores
  WHERE x_store = s_store
  GROUP BY s_city
)";

}  // namespace

int main() {
  // 1. Schemas + SQL-defined summary view.
  Vdag vdag;
  vdag.AddBaseView("sales", Schema({{"x_store", TypeId::kInt64},
                                    {"x_item", TypeId::kInt64},
                                    {"x_amount", TypeId::kInt64},
                                    {"x_day", TypeId::kDate}}));
  vdag.AddBaseView("stores", Schema({{"s_store", TypeId::kInt64},
                                     {"s_city", TypeId::kString}}));
  ParsedView parsed = ParseViewDefinition(
      "revenue_by_city", kViewSql,
      [&](const std::string& name) -> const Schema& {
        return vdag.OutputSchema(name);
      });
  if (!parsed.ok()) {
    std::fprintf(stderr, "view SQL error: %s\n", parsed.error.c_str());
    return 1;
  }
  vdag.AddDerivedView(parsed.definition);
  std::printf("Registered view: %s\n\n", parsed.definition->ToString().c_str());

  // 2. Load base data from CSV and materialize.
  Warehouse warehouse(vdag);
  std::string error;
  if (!CsvToTable(kSalesCsv, warehouse.base_table("sales"), &error) ||
      !CsvToTable(kStoresCsv, warehouse.base_table("stores"), &error)) {
    std::fprintf(stderr, "CSV error: %s\n", error.c_str());
    return 1;
  }
  warehouse.RecomputeDerived();
  std::printf("revenue_by_city after load:\n%s\n\n",
              warehouse.catalog().MustGetTable("revenue_by_city")
                  ->ToString()
                  .c_str());

  // 3. Tonight's change batch from CSV (an update is -old/+new).
  DeltaRelation delta(vdag.OutputSchema("sales"));
  if (!CsvToDelta(kSalesDeltaCsv, &delta, &error)) {
    std::fprintf(stderr, "delta CSV error: %s\n", error.c_str());
    return 1;
  }
  warehouse.SetBaseDelta("sales", std::move(delta));

  // 4. Plan (stores is quiet -> simplification drops its expressions)
  //    and execute.
  MinWorkResult plan = MinWork(vdag, warehouse.EstimatedSizes());
  std::printf("Plan: %s\n", plan.strategy.ToString().c_str());
  ExecutorOptions options;
  options.simplify_empty_deltas = true;
  Executor executor(&warehouse, options);
  ExecutionReport report = executor.Execute(plan.strategy);
  std::printf("Executed %zu expressions (store views untouched):\n%s\n",
              report.per_expression.size(), report.ToString().c_str());

  // 5. Results, exported back to CSV.
  std::printf("revenue_by_city after update:\n%s\n",
              TableToCsv(*warehouse.catalog().MustGetTable("revenue_by_city"))
                  .c_str());
  return 0;
}
