// The deployment story of Section 5.5: generate the SQL stored procedures
// (one per compute/install expression of the VDAG) and a nightly driver
// script executing tonight's MinWork strategy — what a warehouse
// administrator would install on a commercial RDBMS instead of
// hand-writing update scripts.
//
// Usage: update_script_generator [setup|driver]
//   setup  - emit the CREATE PROCEDURE script for the TPC-D VDAG
//   driver - emit tonight's EXEC sequence (MinWork under 10% deletions)
#include <cstdio>
#include <cstring>

#include "core/min_work.h"
#include "sqlgen/sql_script.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

using namespace wuw;

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "both";

  tpcd::GeneratorOptions options;
  options.scale_factor = 0.002;
  options.seed = 1;
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  const Vdag& vdag = warehouse.vdag();

  if (std::strcmp(mode, "driver") != 0) {
    std::printf("%s\n", GenerateSetupScript(vdag).c_str());
  }
  if (std::strcmp(mode, "setup") != 0) {
    tpcd::ApplyPaperChangeWorkload(&warehouse, 0.10, 0.0, 99);
    MinWorkResult plan = MinWork(vdag, warehouse.EstimatedSizes());
    std::printf("-- Tonight's desired view ordering:");
    for (const std::string& v : plan.ordering) std::printf(" %s", v.c_str());
    std::printf("\n%s\n", GenerateDriverScript(vdag, plan.strategy).c_str());
  }
  return 0;
}
