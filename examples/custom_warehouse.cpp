// A multi-level custom warehouse exercising the parts of the library the
// TPC-D scenario does not: derived-over-derived views, a non-uniform
// non-tree VDAG (where MinWork may fall back to ModifyOrdering and Prune
// shines), and the Section-9 parallel scheduling.
//
// Scenario: clickstream analytics.
//   events(user, page, dwell)     pages(page, site)     users(user, tier)
//   enriched  = events ⋈ pages ⋈ users                   (SPJ, level 1)
//   site_tier = SELECT site, tier, SUM(dwell), COUNT(*)  (agg over enriched)
//   by_tier   = SELECT tier, SUM(dwell)                  (agg over enriched)
#include <cstdio>

#include "core/min_work.h"
#include "core/prune.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "parallel/parallel_strategy.h"
#include "tpcd/tpcd_generator.h"

using namespace wuw;

namespace {

Vdag BuildVdag() {
  Vdag vdag;
  vdag.AddBaseView("events", Schema({{"e_user", TypeId::kInt64},
                                     {"e_page", TypeId::kInt64},
                                     {"e_dwell", TypeId::kInt64}}));
  vdag.AddBaseView("pages", Schema({{"p_page", TypeId::kInt64},
                                    {"p_site", TypeId::kInt64}}));
  vdag.AddBaseView("users", Schema({{"u_user", TypeId::kInt64},
                                    {"u_tier", TypeId::kInt64}}));
  vdag.AddBaseView("tiers", Schema({{"t_tier", TypeId::kInt64},
                                    {"t_weight", TypeId::kInt64}}));
  vdag.AddDerivedView(ViewDefinitionBuilder("enriched")
                          .From("events")
                          .From("pages")
                          .From("users")
                          .JoinOn("e_page", "p_page")
                          .JoinOn("e_user", "u_user")
                          .SelectColumn("p_site", "en_site")
                          .SelectColumn("u_tier", "en_tier")
                          .SelectColumn("e_dwell", "en_dwell")
                          .Build());
  vdag.AddDerivedView(ViewDefinitionBuilder("site_tier")
                          .From("enriched")
                          .SelectColumn("en_site", "st_site")
                          .SelectColumn("en_tier", "st_tier")
                          .Sum(ScalarExpr::Column("en_dwell"), "st_dwell")
                          .Count("st_events")
                          .Build());
  // by_tier is defined over enriched AND tiers — mixing levels 0 and 1
  // makes the VDAG non-uniform, and enriched feeding two views makes it a
  // non-tree: exactly the class where Prune earns its keep.
  vdag.AddDerivedView(ViewDefinitionBuilder("by_tier")
                          .From("enriched")
                          .From("tiers")
                          .JoinOn("en_tier", "t_tier")
                          .SelectColumn("t_tier", "bt_tier")
                          .Sum(ScalarExpr::Arith(ArithOp::kMul,
                                                 ScalarExpr::Column("en_dwell"),
                                                 ScalarExpr::Column("t_weight")),
                               "bt_dwell")
                          .Build());
  return vdag;
}

}  // namespace

int main() {
  Vdag vdag = BuildVdag();
  std::printf("VDAG:\n%s", vdag.ToString().c_str());
  std::printf("tree=%s uniform=%s\n\n", vdag.IsTree() ? "yes" : "no",
              vdag.IsUniform() ? "yes" : "no");

  Warehouse warehouse(vdag);
  tpcd::Rng rng(7);
  for (int64_t u = 0; u < 400; ++u) {
    warehouse.base_table("users")->Add(
        Tuple({Value::Int64(u), Value::Int64(u % 4)}), 1);
  }
  for (int64_t t = 0; t < 4; ++t) {
    warehouse.base_table("tiers")->Add(
        Tuple({Value::Int64(t), Value::Int64(t + 1)}), 1);
  }
  for (int64_t p = 0; p < 200; ++p) {
    warehouse.base_table("pages")->Add(
        Tuple({Value::Int64(p), Value::Int64(p % 12)}), 1);
  }
  for (int64_t e = 0; e < 20000; ++e) {
    warehouse.base_table("events")->Add(
        Tuple({Value::Int64(rng.Range(0, 399)), Value::Int64(rng.Range(0, 199)),
               Value::Int64(rng.Range(1, 600))}),
        1);
  }
  warehouse.RecomputeDerived();

  // Nightly batch: 10% of events age out, a few thousand new ones arrive;
  // a handful of users change tier (delete + insert).
  DeltaRelation events_delta(vdag.OutputSchema("events"));
  warehouse.catalog().MustGetTable("events")->ForEach(
      [&](const Tuple& t, int64_t c) {
        if (t.Hash() % 10 == 0) events_delta.Add(t, -c);
      });
  for (int64_t e = 0; e < 2000; ++e) {
    events_delta.Add(
        Tuple({Value::Int64(rng.Range(0, 399)), Value::Int64(rng.Range(0, 199)),
               Value::Int64(rng.Range(1, 600))}),
        1);
  }
  warehouse.SetBaseDelta("events", std::move(events_delta));

  DeltaRelation users_delta(vdag.OutputSchema("users"));
  for (int64_t u = 0; u < 10; ++u) {
    users_delta.Add(Tuple({Value::Int64(u), Value::Int64(u % 4)}), -1);
    users_delta.Add(Tuple({Value::Int64(u), Value::Int64((u + 1) % 4)}), 1);
  }
  warehouse.SetBaseDelta("users", std::move(users_delta));

  SizeMap sizes = warehouse.EstimatedSizes();
  MinWorkResult mw = MinWork(vdag, sizes);
  PruneResult pr = Prune(vdag, sizes);
  std::printf("MinWork used ModifyOrdering: %s\n",
              mw.used_modified_ordering ? "yes" : "no");
  std::printf("MinWork estimated work: %.0f\n",
              EstimateStrategyWork(vdag, mw.strategy, sizes, {}).total);
  std::printf("Prune   estimated work: %.0f  (examined %lld orderings)\n\n",
              pr.work, (long long)pr.orderings_examined);

  // Parallel scheduling of the winning plan and of dual-stage.
  ParallelStrategy par = ParallelizeStrategy(vdag, pr.strategy);
  ParallelStrategy par_dual =
      ParallelizeStrategy(vdag, MakeDualStageVdagStrategy(vdag));
  for (int workers : {1, 2, 4}) {
    MakespanReport a = EstimateMakespan(vdag, par, sizes, {}, workers);
    MakespanReport b = EstimateMakespan(vdag, par_dual, sizes, {}, workers);
    std::printf("workers=%d  Prune-plan makespan %.0f | dual-stage %.0f\n",
                workers, a.makespan, b.makespan);
  }

  // Execute the Prune plan for real.
  Executor executor(&warehouse);
  ExecutionReport report = executor.Execute(pr.strategy);
  std::printf("\nExecuted Prune plan in %.4fs (linear work %lld)\n",
              report.total_seconds, (long long)report.total_linear_work);
  std::printf("\nsite_tier now:\n%s\n",
              warehouse.catalog().MustGetTable("site_tier")->ToString(8).c_str());
  std::printf("by_tier now:\n%s\n",
              warehouse.catalog().MustGetTable("by_tier")->ToString(8).c_str());
  return 0;
}
