// The paper's motivating scenario end to end: a TPC-D warehouse (Figure 4)
// receives a nightly batch of source changes; the administrator's job is
// to pick the update strategy that minimizes the update window.
//
// This example simulates a week of nightly batches with drifting change
// profiles and shows how MinWork re-plans each night — "what strategy is
// best depends on the current size of the warehouse views and the current
// set of changes" (Section 1).
//
// Run with WUW_SF=0.01 (default here 0.005) to scale up.
#include <cstdio>
#include <cstdlib>

#include "core/min_work.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "tpcd/change_generator.h"
#include "tpcd/tpcd_views.h"

using namespace wuw;

int main() {
  double sf = 0.005;
  if (const char* env = std::getenv("WUW_SF")) sf = atof(env);

  tpcd::GeneratorOptions options;
  options.scale_factor = sf;
  options.seed = 2026;

  std::printf("Building TPC-D warehouse (SF=%g) with Q3, Q5, Q10...\n", sf);
  Warehouse warehouse = tpcd::MakeTpcdWarehouse(options, {"Q3", "Q5", "Q10"});
  std::printf("%s\n", warehouse.vdag().ToString().c_str());
  for (const std::string& name : warehouse.vdag().view_names()) {
    std::printf("  |%s| = %lld\n", name.c_str(),
                (long long)warehouse.catalog().MustGetTable(name)->cardinality());
  }

  // Seven nights: early week deletes old data, late week loads new data.
  struct Night {
    const char* label;
    double delete_fraction;
    double insert_fraction;
  };
  const Night week[] = {
      {"Mon: archive purge 8%", 0.08, 0.00},
      {"Tue: quiet 1%", 0.01, 0.01},
      {"Wed: purge 5% + load 2%", 0.05, 0.02},
      {"Thu: quiet 1%", 0.01, 0.01},
      {"Fri: big load 6%", 0.00, 0.06},
      {"Sat: purge 10%", 0.10, 0.00},
      {"Sun: reconciliation 3%/3%", 0.03, 0.03},
  };

  double total_minwork = 0, total_dual = 0;
  for (uint64_t night = 0; night < 7; ++night) {
    const Night& n = week[night];
    tpcd::ApplyPaperChangeWorkload(&warehouse, n.delete_fraction,
                                   n.insert_fraction, 1000 + night);

    // Compare tonight's MinWork plan against the conventional dual-stage
    // script — on a clone, then apply MinWork's plan for real.
    Warehouse dual_clone = warehouse.Clone();
    Executor dual_exec(&dual_clone);
    ExecutionReport dual =
        dual_exec.Execute(MakeDualStageVdagStrategy(warehouse.vdag()));

    MinWorkResult plan = MinWork(warehouse.vdag(), warehouse.EstimatedSizes());
    Executor executor(&warehouse);
    ExecutionReport report = executor.Execute(plan.strategy);

    total_minwork += report.total_seconds;
    total_dual += dual.total_seconds;
    std::printf(
        "%-28s ordering=[%s ...]  MinWork %7.3fs   dual-stage %7.3fs "
        "(%.1fx)\n",
        n.label, plan.ordering.empty() ? "?" : plan.ordering[0].c_str(),
        report.total_seconds, dual.total_seconds,
        dual.total_seconds / report.total_seconds);
  }

  std::printf("\nWeek total: MinWork %.3fs vs dual-stage %.3fs -> update "
              "window shrunk %.1fx\n",
              total_minwork, total_dual, total_dual / total_minwork);
  return 0;
}
