// Quickstart: define a tiny warehouse, let MinWork pick the update
// strategy, execute it, and inspect the result.
//
//   sales(region, product, amount)   -- base "fact" view
//   returns(region, product, amount) -- base view
//   net_by_region = SELECT region, SUM(amount) ... GROUP BY region
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/correctness.h"
#include "core/min_work.h"
#include "exec/executor.h"
#include "exec/warehouse.h"

using namespace wuw;

int main() {
  // 1. Describe the warehouse as a VDAG: base views carry schemas, derived
  //    views carry definitions.
  Vdag vdag;
  vdag.AddBaseView("sales", Schema({{"s_region", TypeId::kInt64},
                                    {"s_product", TypeId::kInt64},
                                    {"s_amount", TypeId::kInt64}}));
  vdag.AddBaseView("returns", Schema({{"r_region", TypeId::kInt64},
                                      {"r_product", TypeId::kInt64},
                                      {"r_amount", TypeId::kInt64}}));
  vdag.AddDerivedView(
      ViewDefinitionBuilder("net_by_region")
          .From("sales")
          .From("returns")
          .JoinOn("s_region", "r_region")
          .JoinOn("s_product", "r_product")
          .Select(ScalarExpr::Column("s_region"), "region")
          .Sum(ScalarExpr::Arith(ArithOp::kSub, ScalarExpr::Column("s_amount"),
                                 ScalarExpr::Column("r_amount")),
               "net")
          .Build());

  // 2. Load base data and materialize the derived views.
  Warehouse warehouse(vdag);
  for (int64_t region = 0; region < 3; ++region) {
    for (int64_t product = 0; product < 100; ++product) {
      warehouse.base_table("sales")->Add(
          Tuple({Value::Int64(region), Value::Int64(product),
                 Value::Int64(100 + product)}),
          1);
      warehouse.base_table("returns")->Add(
          Tuple({Value::Int64(region), Value::Int64(product),
                 Value::Int64(product % 7)}),
          1);
    }
  }
  warehouse.RecomputeDerived();
  std::printf("Initial net_by_region:\n%s\n",
              warehouse.catalog().MustGetTable("net_by_region")->ToString().c_str());

  // 3. A change batch arrives: product 5 is discontinued in region 0, and
  //    a new product 200 launches there.
  DeltaRelation sales_delta(vdag.OutputSchema("sales"));
  sales_delta.Add(
      Tuple({Value::Int64(0), Value::Int64(5), Value::Int64(105)}), -1);
  sales_delta.Add(
      Tuple({Value::Int64(0), Value::Int64(200), Value::Int64(999)}), +1);
  warehouse.SetBaseDelta("sales", std::move(sales_delta));

  DeltaRelation returns_delta(vdag.OutputSchema("returns"));
  returns_delta.Add(
      Tuple({Value::Int64(0), Value::Int64(5), Value::Int64(5)}), -1);
  returns_delta.Add(
      Tuple({Value::Int64(0), Value::Int64(200), Value::Int64(0)}), +1);
  warehouse.SetBaseDelta("returns", std::move(returns_delta));

  // 4. Ask MinWork for the cheapest correct update strategy for the whole
  //    VDAG, based on estimated sizes.
  MinWorkResult plan = MinWork(vdag, warehouse.EstimatedSizes());
  std::printf("MinWork strategy:\n  %s\n", plan.strategy.ToString().c_str());
  CorrectnessResult check = CheckVdagStrategy(vdag, plan.strategy);
  std::printf("Correctness (C1-C8): %s\n\n", check.ok ? "OK" : "VIOLATION");

  // 5. Execute it — this is the update window.
  Executor executor(&warehouse);
  ExecutionReport report = executor.Execute(plan.strategy);
  std::printf("Update window report:\n%s\n", report.ToString().c_str());

  std::printf("Final net_by_region:\n%s\n",
              warehouse.catalog().MustGetTable("net_by_region")->ToString().c_str());
  return 0;
}
