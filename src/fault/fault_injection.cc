#include "fault/fault_injection.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace wuw {
namespace fault {

namespace {

/// splitmix64: tiny, deterministic, and independent of the tpcd generator
/// so arming a plan never perturbs workload randomness.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitDraw(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Registry guarded by one mutex.  The mutex is only reached when a plan
/// is armed (tests / WUW_FAULT runs), never on the disarmed fast path.
struct Registry {
  std::mutex mu;
  bool armed = false;
  FaultPlan plan;
  uint64_t rng_state = 0;
  std::map<std::string, int64_t> hits;
  std::function<void()> abort_hook;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: safe at any exit order
  return *r;
}

bool Matches(const std::string& pattern, const char* point) {
  if (!pattern.empty() && pattern.back() == '*') {
    return std::strncmp(point, pattern.c_str(), pattern.size() - 1) == 0;
  }
  return pattern == point;
}

}  // namespace

FaultInjectedError::FaultInjectedError(std::string point, int64_t hit)
    : std::runtime_error("fault injected at " + point + " (hit " +
                         std::to_string(hit) + ")"),
      point_(std::move(point)),
      hit_(hit) {}

void Arm(FaultPlan plan) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.plan = std::move(plan);
  r.rng_state = r.plan.seed * 0x9e3779b97f4a7c15ull + 1;
  r.hits.clear();
  r.armed = true;
  internal::g_armed.store(1, std::memory_order_relaxed);
}

void Disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed = false;
  internal::g_armed.store(0, std::memory_order_relaxed);
}

bool IsArmed() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.armed;
}

int64_t HitCount(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(point);
  return it == r.hits.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, int64_t>> HitCounts() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.hits.begin(), r.hits.end()};
}

std::string ParseFaultSpec(const std::string& spec, FaultPlan* plan) {
  *plan = FaultPlan{};
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    if (clause.rfind("seed=", 0) == 0) {
      plan->seed = strtoull(clause.c_str() + 5, nullptr, 10);
      continue;
    }
    if (clause == "mode=count") {
      plan->count_only = true;
      continue;
    }
    if (clause == "mode=abort") {
      plan->abort_mode = true;
      continue;
    }

    Trigger t;
    size_t colon = clause.find(':');
    t.point = clause.substr(0, colon);
    if (t.point.empty()) return "empty fault-point name in: " + clause;
    while (colon != std::string::npos) {
      size_t next = clause.find(':', colon + 1);
      std::string option = clause.substr(
          colon + 1,
          next == std::string::npos ? std::string::npos : next - colon - 1);
      if (option.rfind("hit=", 0) == 0) {
        char* parse_end = nullptr;
        t.hit = strtoll(option.c_str() + 4, &parse_end, 10);
        if (*parse_end != '\0' || t.hit <= 0) {
          return "hit= wants a positive count in: " + clause;
        }
      } else if (option.rfind("p=", 0) == 0) {
        char* parse_end = nullptr;
        t.probability = strtod(option.c_str() + 2, &parse_end);
        if (parse_end == option.c_str() + 2 || *parse_end != '\0' ||
            t.probability < 0 || t.probability > 1) {
          return "p= wants a probability in [0,1] in: " + clause;
        }
      } else {
        return "unknown trigger option '" + option + "' in: " + clause;
      }
      colon = next;
    }
    plan->triggers.push_back(std::move(t));
  }
  if (plan->triggers.empty() && !plan->count_only) {
    return "fault spec arms nothing: " + spec;
  }
  return "";
}

void SetAbortHook(std::function<void()> hook) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.abort_hook = std::move(hook);
}

std::string ArmFromEnv() {
  const char* spec = std::getenv("WUW_FAULT");
  if (spec == nullptr || *spec == '\0') return "";
  FaultPlan plan;
  std::string error = ParseFaultSpec(spec, &plan);
  if (!error.empty()) return "WUW_FAULT: " + error;
  Arm(std::move(plan));
  return "";
}

namespace internal {

std::atomic<int> g_armed{0};

void OnFaultPoint(const char* point) {
  Registry& r = registry();
  std::string fire_point;
  int64_t fire_hit = 0;
  bool abort_mode = false;
  std::function<void()> abort_hook;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // Racy-read guard: the relaxed gate may lag a concurrent Disarm.
    if (!r.armed) return;
    int64_t hit = ++r.hits[point];
    if (r.plan.count_only) return;
    for (const Trigger& t : r.plan.triggers) {
      if (!Matches(t.point, point)) continue;
      bool fire = t.hit > 0 ? hit == t.hit
                            : t.probability >= 1.0 ||
                                  UnitDraw(&r.rng_state) < t.probability;
      if (fire) {
        fire_point = point;
        fire_hit = hit;
        abort_mode = r.plan.abort_mode;
        if (abort_mode) abort_hook = r.abort_hook;
        break;
      }
    }
  }
  // Throw outside the lock: the unwind may cross code that hits further
  // fault points (destructors never do today, but cheap insurance).
  if (!fire_point.empty()) {
    if (abort_mode) {
      // The process-kill path: no unwinding, no destructors, no buffered
      // flushes — exactly the discipline a SIGKILL would impose.  The
      // abort hook (a FaultEnv's crash truncation) runs first so the disk
      // state a restart reopens is the one a power cut would leave.
      std::fprintf(stderr, "wuw-fault: abort at %s (hit %lld)\n",
                   fire_point.c_str(), static_cast<long long>(fire_hit));
      if (abort_hook) abort_hook();
      ::_exit(2);
    }
    WUW_METRIC_ADD("fault.fired", obs::MetricClass::kSched, 1);
    throw FaultInjectedError(fire_point, fire_hit);
  }
}

}  // namespace internal
}  // namespace fault
}  // namespace wuw
