// Deterministic, seed-driven fault injection.
//
// The executors, the plan layer, and the warehouse mutation paths are
// threaded with *named fault points* (WUW_FAULT_POINT).  A disarmed point
// costs one relaxed atomic load — nothing is counted, nothing can fire —
// so the paper-fidelity benches run at full speed with the framework
// compiled in.  Arming a FaultPlan turns selected points into bombs:
//
//   * hit-count triggers fire on exactly the Nth matching hit, which is
//     how the recovery property suites kill a strategy at *every* step;
//   * probability triggers fire per hit from a seeded generator, fully
//     reproducible given (plan, seed) on a deterministic execution;
//   * count-only plans never fire but record per-point hit totals, which
//     is how a test discovers the set of (point, k) pairs to kill at.
//
// A firing point throws FaultInjectedError.  Execution stops wherever the
// stack unwinds to — mid-strategy, mid-stage, mid-term — simulating a
// process death inside the update window; the StrategyJournal
// (exec/journal.h) plus ResumeStrategy (exec/recovery.h) are the recovery
// path the tests then exercise.
//
// The `WUW_FAULT` environment knob arms a plan from a spec string (see
// ParseFaultSpec); bench binaries call ArmFromEnv() so any experiment can
// be run under injected faults without recompiling.  Defining
// WUW_DISABLE_FAULT_POINTS at compile time expands every point to nothing.
#ifndef WUW_FAULT_FAULT_INJECTION_H_
#define WUW_FAULT_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace wuw {
namespace fault {

/// Thrown by a firing fault point.  Carries the point name and the
/// 1-based hit index that fired, so a failure reproduces as an explicit
/// hit-count trigger.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(std::string point, int64_t hit);

  const std::string& point() const { return point_; }
  int64_t hit() const { return hit_; }

 private:
  std::string point_;
  int64_t hit_;
};

/// One arming rule.  `point` is an exact fault-point name, or a prefix
/// pattern ending in '*' ("plan.*" matches every plan-layer point; "*"
/// matches everything).
struct Trigger {
  std::string point;
  /// Fire on exactly the Nth (1-based) hit of the *matched point*.  0
  /// means "every matching hit", gated by `probability`.
  int64_t hit = 0;
  /// Firing probability per hit when `hit` == 0; draws come from the
  /// plan's seeded generator.
  double probability = 1.0;
};

struct FaultPlan {
  std::vector<Trigger> triggers;
  /// Seed for probability draws (deterministic given a deterministic
  /// execution).
  uint64_t seed = 0;
  /// Count hits but never fire — the enumeration pass of the
  /// kill-at-every-step suites.
  bool count_only = false;
  /// A firing trigger _exit(2)s the process instead of throwing — the
  /// process-kill half of the crash-restart sweeps
  /// (crash_restart_property_test).  The registered abort hook (see
  /// SetAbortHook) runs first, so a FaultEnv can apply its crash
  /// truncation semantics to the on-disk state before the process dies.
  bool abort_mode = false;
};

/// Installs `plan` and resets all hit counters.  Replaces any armed plan.
void Arm(FaultPlan plan);

/// Removes the armed plan; every fault point returns to the zero-cost
/// disarmed path.  Hit counts survive until the next Arm (so a test can
/// read them after the run).
void Disarm();

bool IsArmed();

/// Hits recorded for `point` since the last Arm.
int64_t HitCount(const std::string& point);

/// All (point, hits) pairs since the last Arm, sorted by point name.
std::vector<std::pair<std::string, int64_t>> HitCounts();

/// Parses a WUW_FAULT spec into a plan.  Grammar (';'-separated clauses):
///   <point>                 fire on every hit of <point>
///   <point>:hit=<N>         fire on the Nth hit
///   <point>:p=<P>           fire each hit with probability P
///   seed=<S>                seed for probability draws
///   mode=count              count-only plan
///   mode=abort              firing triggers _exit(2) instead of throwing
/// Example: "executor.step.begin:hit=3" or "plan.*:p=0.001;seed=7".
/// Returns an empty string on success, else a description of the error
/// (user-facing input path: no aborts).
std::string ParseFaultSpec(const std::string& spec, FaultPlan* plan);

/// Registers `hook` to run just before a mode=abort trigger _exit(2)s
/// (null clears).  io::FaultEnv installs its crash-truncation pass here so
/// a killed process leaves exactly the state a power cut would.  Called
/// outside the registry lock, at most once per process (nothing fires
/// after the exiting point).
void SetAbortHook(std::function<void()> hook);

/// Arms from the WUW_FAULT environment variable if it is set.  Returns an
/// empty string when unset or armed successfully, else the parse error.
std::string ArmFromEnv();

/// RAII arming for tests: Arm on construction, Disarm on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { Arm(std::move(plan)); }
  ~ScopedFaultPlan() { Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

namespace internal {

/// Fast disarmed gate: nonzero iff a plan is armed.  Read relaxed by the
/// WUW_FAULT_POINT macro; written only under the registry mutex.
extern std::atomic<int> g_armed;

/// Slow path: records the hit and fires the matching trigger, if any.
void OnFaultPoint(const char* point);

}  // namespace internal
}  // namespace fault
}  // namespace wuw

/// Marks a named fault point.  `name` must be a string literal; points are
/// named "<layer>.<site>[.<detail>]" (e.g. "executor.inst.install").
/// Disarmed cost: one relaxed atomic load and a predictable branch.
#if defined(WUW_DISABLE_FAULT_POINTS)
#define WUW_FAULT_POINT(name) ((void)0)
#else
#define WUW_FAULT_POINT(name)                                             \
  do {                                                                    \
    if (::wuw::fault::internal::g_armed.load(std::memory_order_relaxed) != \
        0) {                                                              \
      ::wuw::fault::internal::OnFaultPoint(name);                         \
    }                                                                     \
  } while (0)
#endif

#endif  // WUW_FAULT_FAULT_INJECTION_H_
