// CSV import/export for tables and delta relations.
//
// The warehouse's "extractor" interface: base-view snapshots and change
// batches arrive as flat files in practice, and the examples/tools load
// them from here.  Format: RFC-4180-ish, header row with column names,
// values parsed per the table schema's column types (dates as yyyy-mm-dd).
// Delta CSVs carry a leading "__count" column holding the signed
// multiplicity.
#ifndef WUW_IO_CSV_H_
#define WUW_IO_CSV_H_

#include <string>

#include "delta/delta_relation.h"
#include "storage/table.h"

namespace wuw {

/// Renders `table` as CSV (header + one line per distinct tuple per unit
/// of multiplicity... no: multiplicity emitted via a leading __count
/// column, keeping files compact for multisets).
std::string TableToCsv(const Table& table);

/// Parses CSV into `table` (whose schema determines column count/types).
/// The header must match the schema's column names (with an optional
/// leading __count column).  Returns false and fills *error on failure.
bool CsvToTable(const std::string& csv, Table* table, std::string* error);

/// Renders a delta relation as CSV with the signed __count column.
std::string DeltaToCsv(const DeltaRelation& delta);

/// Parses CSV (with __count column) into `delta`.
bool CsvToDelta(const std::string& csv, DeltaRelation* delta,
                std::string* error);

}  // namespace wuw

#endif  // WUW_IO_CSV_H_
