// Warehouse snapshots: persist a warehouse as a directory of flat files.
//
//   <dir>/schema.sql     CREATE TABLE/VIEW script (parser/ddl_parser.h)
//   <dir>/<base>.csv     one CSV per base view
//   <dir>/<base>.delta.csv  pending change batch, if any
//
// Derived views are NOT persisted: LoadWarehouse rematerializes them from
// the definitions, which doubles as an integrity check of the snapshot.
//
// All I/O routes through the current io::Env (io/env.h): every file is
// written with the crash-atomic discipline (write → fsync → rename →
// fsync parent dir), and the WUW_IO_FAULT FaultEnv can inject ENOSPC /
// EIO / torn-crash failures into any of it for the durability suites.
#ifndef WUW_IO_SNAPSHOT_H_
#define WUW_IO_SNAPSHOT_H_

#include <string>

#include "exec/warehouse.h"

namespace wuw {

/// Writes the warehouse to `dir` (created if absent).  Returns false and
/// fills *error on I/O failure.
bool SaveWarehouse(const Warehouse& warehouse, const std::string& dir,
                   std::string* error);

/// Reads a snapshot back: parses schema.sql, loads every base CSV, loads
/// pending deltas, and recomputes derived views.  Returns false and fills
/// *error on failure (*out is left in an unspecified state).
bool LoadWarehouse(const std::string& dir, Warehouse* out, std::string* error);

}  // namespace wuw

#endif  // WUW_IO_SNAPSHOT_H_
