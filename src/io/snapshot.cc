#include "io/snapshot.h"

#include "io/csv.h"
#include "io/env.h"
#include "parser/ddl_parser.h"

namespace wuw {

namespace {

// Each file goes through io::AtomicWriteFile: write to `path + ".tmp"`,
// fsync, rename(2) over `path`, fsync the parent directory — so a crash
// (or a fault-injected death) at ANY instant, including mid-rename, leaves
// the old file or the new one under the real name, never a torn mix and
// never a dirent lost with the directory metadata.
bool WriteFile(io::Env* env, const std::string& path,
               const std::string& contents, std::string* error) {
  return io::AtomicWriteFile(env, path, contents, error);
}

bool ReadFile(io::Env* env, const std::string& path, std::string* contents,
              std::string* error) {
  *error = env->ReadFileToString(path, contents);
  return error->empty();
}

}  // namespace

bool SaveWarehouse(const Warehouse& warehouse, const std::string& dir,
                   std::string* error) {
  io::Env* env = io::GetEnv();
  *error = env->CreateDir(dir);
  if (!error->empty()) return false;
  const Vdag& vdag = warehouse.vdag();
  if (!WriteFile(env, dir + "/schema.sql", DumpWarehouseScript(vdag),
                 error)) {
    return false;
  }
  for (const std::string& base : vdag.BaseViews()) {
    const Table& table = *warehouse.catalog().MustGetTable(base);
    if (!WriteFile(env, dir + "/" + base + ".csv", TableToCsv(table),
                   error)) {
      return false;
    }
    const DeltaRelation& delta = warehouse.base_delta(base);
    std::string delta_path = dir + "/" + base + ".delta.csv";
    if (!delta.empty()) {
      if (!WriteFile(env, delta_path, DeltaToCsv(delta), error)) return false;
    } else if (env->FileExists(delta_path)) {
      env->RemoveFile(delta_path);
    }
  }
  return true;
}

bool LoadWarehouse(const std::string& dir, Warehouse* out,
                   std::string* error) {
  io::Env* env = io::GetEnv();
  std::string schema_sql;
  if (!ReadFile(env, dir + "/schema.sql", &schema_sql, error)) return false;
  ParsedWarehouse parsed = ParseWarehouseScript(schema_sql);
  if (!parsed.ok()) {
    *error = "schema.sql: " + parsed.error;
    return false;
  }
  *out = Warehouse(std::move(parsed.vdag));
  for (const std::string& base : out->vdag().BaseViews()) {
    std::string csv;
    if (!ReadFile(env, dir + "/" + base + ".csv", &csv, error)) return false;
    if (!CsvToTable(csv, out->base_table(base), error)) {
      *error = base + ".csv: " + *error;
      return false;
    }
    std::string delta_path = dir + "/" + base + ".delta.csv";
    if (env->FileExists(delta_path)) {
      std::string delta_csv;
      if (!ReadFile(env, delta_path, &delta_csv, error)) return false;
      DeltaRelation delta(out->vdag().OutputSchema(base));
      if (!CsvToDelta(delta_csv, &delta, error)) {
        *error = base + ".delta.csv: " + *error;
        return false;
      }
      out->SetBaseDelta(base, std::move(delta));
    }
  }
  out->RecomputeDerived();
  return true;
}

}  // namespace wuw
