#include "io/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

#include "io/csv.h"
#include "parser/ddl_parser.h"

namespace wuw {

namespace {

// Atomic write: the contents land in `path + ".tmp"` and rename(2) over
// `path`, so a crash (or a fault-injected death) mid-save never leaves a
// torn file under the real name — readers see the old snapshot or the new
// one, nothing in between.
bool WriteFile(const std::string& path, const std::string& contents,
               std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open " + tmp + " for writing: " + std::strerror(errno);
    return false;
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != contents.size() || !flushed) {
    std::remove(tmp.c_str());
    *error = "short write to " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "cannot rename " + tmp + " to " + path + ": " +
             std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* contents,
              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  contents->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents->append(buffer, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    *error = "read error on " + path;
    return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

bool SaveWarehouse(const Warehouse& warehouse, const std::string& dir,
                   std::string* error) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    *error = "cannot create directory " + dir + ": " + std::strerror(errno);
    return false;
  }
  const Vdag& vdag = warehouse.vdag();
  if (!WriteFile(dir + "/schema.sql", DumpWarehouseScript(vdag), error)) {
    return false;
  }
  for (const std::string& base : vdag.BaseViews()) {
    const Table& table = *warehouse.catalog().MustGetTable(base);
    if (!WriteFile(dir + "/" + base + ".csv", TableToCsv(table), error)) {
      return false;
    }
    const DeltaRelation& delta = warehouse.base_delta(base);
    std::string delta_path = dir + "/" + base + ".delta.csv";
    if (!delta.empty()) {
      if (!WriteFile(delta_path, DeltaToCsv(delta), error)) return false;
    } else if (FileExists(delta_path)) {
      std::remove(delta_path.c_str());
    }
  }
  return true;
}

bool LoadWarehouse(const std::string& dir, Warehouse* out,
                   std::string* error) {
  std::string schema_sql;
  if (!ReadFile(dir + "/schema.sql", &schema_sql, error)) return false;
  ParsedWarehouse parsed = ParseWarehouseScript(schema_sql);
  if (!parsed.ok()) {
    *error = "schema.sql: " + parsed.error;
    return false;
  }
  *out = Warehouse(std::move(parsed.vdag));
  for (const std::string& base : out->vdag().BaseViews()) {
    std::string csv;
    if (!ReadFile(dir + "/" + base + ".csv", &csv, error)) return false;
    if (!CsvToTable(csv, out->base_table(base), error)) {
      *error = base + ".csv: " + *error;
      return false;
    }
    std::string delta_path = dir + "/" + base + ".delta.csv";
    if (FileExists(delta_path)) {
      std::string delta_csv;
      if (!ReadFile(delta_path, &delta_csv, error)) return false;
      DeltaRelation delta(out->vdag().OutputSchema(base));
      if (!CsvToDelta(delta_csv, &delta, error)) {
        *error = base + ".delta.csv: " + *error;
        return false;
      }
      out->SetBaseDelta(base, std::move(delta));
    }
  }
  out->RecomputeDerived();
  return true;
}

}  // namespace wuw
