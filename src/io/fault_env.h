// FaultEnv: deterministic fault-injecting io::Env, the injected-VFS half
// of the crash-anywhere durability story (WUW_IO_FAULT).
//
// Wraps a base Env (the real POSIX one in practice) and injects the
// classic storage failure models on a deterministic schedule:
//
//   enospc=<N>       the write that would push the total bytes written
//                    through this env past N persists only the prefix that
//                    fits and fails (the disk-full model);
//   short_write=<K>  the Kth write operation persists about half its bytes
//                    and fails;
//   read_eio=<K>     read operations K, K+1, ... fail with a retryable
//                    I/O error — `transient=<M>` bounds the failures to M
//                    operations, after which reads succeed again
//                    (exercises the pager's bounded fault-in retry);
//   p_write=<P> / p_read=<P>  per-operation failure probability from a
//                    splitmix64 generator seeded by seed=<S> (WUW_SEED
//                    discipline: reproducible given the plan);
//   drop_sync        Sync()/SyncDir() report success but make nothing
//                    durable — the lying-disk model that crash simulation
//                    then punishes;
//   torn=<S>         crash-truncation sector granularity (default 512).
//
// Crash simulation: the env tracks, per file, how many bytes were durable
// at the last successful Sync, plus which creates/renames are still
// waiting on their parent-directory fsync.  CrashNow() applies the
// adversarial outcome — unsynced tails truncated at sector granularity
// (bytes up to the next sector boundary may survive: a torn partial
// record), never-committed creates removed, uncommitted renames rolled
// back to the old file.  A `mode=abort` fault plan (fault/fault_injection.h)
// invokes CrashNow() through the abort hook before _exit, so a forked
// victim's on-disk state is exactly what a power cut would leave.
//
// Every injected event is recorded in a bounded trace for one-command
// repro messages.  Thread-safe (one mutex); armed only in tests and
// WUW_IO_FAULT runs, so the cost is irrelevant.
#ifndef WUW_IO_FAULT_ENV_H_
#define WUW_IO_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"

namespace wuw {
namespace io {

struct IoFaultOptions {
  /// Total write-byte budget; the write crossing it fails (-1 = off).
  int64_t enospc_bytes = -1;
  /// 1-based write-operation index that persists ~half and fails (0 = off).
  int64_t short_write_at = 0;
  /// 1-based read-operation index where injected EIO starts (0 = off).
  int64_t read_eio_at = 0;
  /// Number of failing read operations from read_eio_at on (0 = permanent).
  int64_t transient = 0;
  /// Per-operation failure probabilities (seeded draws).
  double p_read = 0.0;
  double p_write = 0.0;
  uint64_t seed = 0;
  /// Syncs lie: report success, commit nothing.
  bool drop_sync = false;
  /// Crash-truncation granularity in bytes.
  int64_t sector = 512;
};

/// Parses a WUW_IO_FAULT spec (';'-separated clauses, grammar above).
/// Returns "" on success, else a description (user-facing: no aborts).
std::string ParseIoFaultSpec(const std::string& spec, IoFaultOptions* out);

class FaultEnv : public Env {
 public:
  /// Wraps `base` (null = the env current at construction).  Registers
  /// itself as the fault layer's abort hook so `mode=abort` kills apply
  /// crash semantics on the way out.
  explicit FaultEnv(IoFaultOptions options, Env* base = nullptr);
  ~FaultEnv() override;

  std::string NewWritableFile(const std::string& path,
                              std::unique_ptr<WritableFile>* out) override;
  std::string NewRandomRWFile(const std::string& path, bool truncate,
                              std::unique_ptr<RandomRWFile>* out) override;
  std::string ReadFileToString(const std::string& path,
                               std::string* out) override;
  bool FileExists(const std::string& path) override;
  std::string RemoveFile(const std::string& path) override;
  std::string RenameFile(const std::string& from,
                         const std::string& to) override;
  std::string CreateDir(const std::string& path) override;
  std::string SyncDir(const std::string& path) override;

  /// Applies the crash outcome to the real filesystem (see file comment).
  /// Idempotent; also invoked by the fault layer's abort hook.
  void CrashNow();

  /// Injected-event trace since construction (bounded), oldest first —
  /// each entry is a one-line repro description.
  std::vector<std::string> Trace() const;

  const IoFaultOptions& options() const { return options_; }

 private:
  friend class FaultWritableFile;
  friend class FaultRandomRWFile;

  /// Durability bookkeeping for one tracked file.
  struct FileState {
    uint64_t size = 0;         ///< bytes written through this env
    uint64_t synced_size = 0;  ///< durable bytes as of the last real Sync
    /// True until the parent directory is fsynced after the create.
    bool create_pending = false;
    /// Uncommitted rename: restore this on crash (empty + !had_old = none).
    bool rename_pending = false;
    bool had_old = false;
    std::string old_contents;
  };

  /// Write-side injection: returns the number of `size` bytes the caller
  /// may pass through to the base env and fills *error when the operation
  /// must fail afterwards.  Caller holds no lock.
  size_t AdmitWrite(const std::string& path, size_t size, std::string* error);
  /// Read-side injection: "" = proceed, else the injected error.
  std::string AdmitRead(const std::string& path, bool* retryable);

  void NoteAppended(const std::string& path, uint64_t bytes);
  void NoteSynced(const std::string& path);
  void NoteSize(const std::string& path, uint64_t size);
  void TraceEvent(const std::string& event);

  IoFaultOptions options_;
  Env* base_;

  mutable std::mutex mu_;
  uint64_t rng_state_;
  int64_t bytes_written_ = 0;
  int64_t read_ops_ = 0;
  int64_t write_ops_ = 0;
  bool crashed_ = false;
  std::map<std::string, FileState> files_;
  std::vector<std::string> trace_;
};

/// Installs a heap-allocated FaultEnv over the current env when
/// WUW_IO_FAULT is set (WUW_SEED seeds the probability draws unless the
/// spec carries its own seed=).  Returns "" when unset or installed, else
/// the parse error.  For bench/tool binaries; tests use ScopedEnv.
std::string InstallIoFaultFromEnv();

}  // namespace io
}  // namespace wuw

#endif  // WUW_IO_FAULT_ENV_H_
