#include "io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/fault_injection.h"

namespace wuw {
namespace io {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// stdio-buffered append sink: the exact write path the direct code used,
/// plus fsync on Sync() via the underlying descriptor.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string Append(const std::string& data) override {
    if (file_ == nullptr) return "append to closed file " + path_;
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return "short write to " + path_;
    }
    return "";
  }

  std::string Sync() override {
    if (file_ == nullptr) return "sync of closed file " + path_;
    if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
    if (::fsync(::fileno(file_)) != 0) return Errno("cannot fsync", path_);
    return "";
  }

  std::string Close() override {
    if (file_ == nullptr) return "";
    bool flushed = std::fflush(file_) == 0;
    bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!flushed || !closed) return "cannot close " + path_;
    return "";
  }

 private:
  std::FILE* file_;
  std::string path_;
};

/// stdio "wb+"/"rb+" positioned handle.  stdio requires a flush between a
/// write and a following read on the same stream; ReadAt flushes first.
class PosixRandomRWFile : public RandomRWFile {
 public:
  PosixRandomRWFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  ~PosixRandomRWFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string ReadAt(uint64_t offset, size_t n, std::string* out,
                     bool* retryable) override {
    if (retryable != nullptr) *retryable = false;
    if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Errno("cannot seek", path_);
    }
    out->assign(n, '\0');
    size_t got = std::fread(out->data(), 1, n, file_);
    if (got != n) {
      if (std::ferror(file_) != 0) {
        std::clearerr(file_);
        if (retryable != nullptr) *retryable = true;
        return "I/O error reading " + path_;
      }
      out->resize(got);
      return "short read from " + path_;
    }
    return "";
  }

  std::string WriteAt(uint64_t offset, const std::string& data) override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Errno("cannot seek", path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return "short write to " + path_;
    }
    return "";
  }

  std::string Flush() override {
    if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
    return "";
  }

  std::string Sync() override {
    if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
    if (::fsync(::fileno(file_)) != 0) return Errno("cannot fsync", path_);
    return "";
  }

  std::string Size(uint64_t* out) override {
    if (std::fflush(file_) != 0) return Errno("cannot flush", path_);
    struct stat st;
    if (::fstat(::fileno(file_), &st) != 0) return Errno("cannot stat", path_);
    *out = static_cast<uint64_t>(st.st_size);
    return "";
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  std::string NewWritableFile(const std::string& path,
                              std::unique_ptr<WritableFile>* out) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Errno("cannot open", path);
    *out = std::make_unique<PosixWritableFile>(f, path);
    return "";
  }

  std::string NewRandomRWFile(const std::string& path, bool truncate,
                              std::unique_ptr<RandomRWFile>* out) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb+" : "rb+");
    if (f == nullptr) return Errno("cannot open", path);
    *out = std::make_unique<PosixRandomRWFile>(f, path);
    return "";
  }

  std::string ReadFileToString(const std::string& path,
                               std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Errno("cannot open", path);
    out->clear();
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      out->append(buffer, n);
    }
    bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return "read error on " + path;
    return "";
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  std::string RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("cannot remove", path);
    }
    return "";
  }

  std::string RenameFile(const std::string& from,
                         const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return "cannot rename " + from + " to " + to + ": " +
             std::strerror(errno);
    }
    return "";
  }

  std::string CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("cannot create directory", path);
    }
    return "";
  }

  std::string SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("cannot open directory", path);
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) return Errno("cannot fsync directory", path);
    return "";
  }
};

std::atomic<Env*> g_env{nullptr};

}  // namespace

Env* Env::Default() {
  static PosixEnv* posix = new PosixEnv();  // leaked: safe at any exit order
  return posix;
}

Env* GetEnv() {
  Env* env = g_env.load(std::memory_order_acquire);
  return env != nullptr ? env : Env::Default();
}

Env* SetEnv(Env* env) {
  Env* prev = g_env.exchange(env, std::memory_order_acq_rel);
  return prev != nullptr ? prev : Env::Default();
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool AtomicWriteFile(Env* env, const std::string& path,
                     const std::string& contents, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  *error = env->NewWritableFile(tmp, &file);
  if (!error->empty()) return false;
  WUW_FAULT_POINT("io.atomic.write");
  *error = file->Append(contents);
  if (error->empty()) {
    WUW_FAULT_POINT("io.atomic.sync");
    *error = file->Sync();
  }
  std::string close_error = file->Close();
  if (error->empty()) *error = close_error;
  if (!error->empty()) {
    file.reset();
    env->RemoveFile(tmp);
    return false;
  }
  file.reset();
  WUW_FAULT_POINT("io.atomic.rename");
  *error = env->RenameFile(tmp, path);
  if (!error->empty()) {
    env->RemoveFile(tmp);
    return false;
  }
  // The rename is in the page cache but the dirent is not yet durable: a
  // crash here can roll the directory back to the old file.  fsync the
  // parent to commit.
  WUW_FAULT_POINT("io.atomic.dirsync");
  *error = env->SyncDir(ParentDir(path));
  return error->empty();
}

}  // namespace io
}  // namespace wuw
