#include "io/fault_env.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "fault/fault_injection.h"

namespace wuw {
namespace io {

namespace {

/// splitmix64 (the fault layer's generator): independent of workload
/// randomness, deterministic given (options, seed).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitDraw(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

constexpr size_t kMaxTraceEvents = 256;

bool ParseInt(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  char* rest = nullptr;
  errno = 0;
  long long n = std::strtoll(value.c_str(), &rest, 10);
  if (rest == nullptr || *rest != '\0' || errno != 0 || n < 0) return false;
  *out = n;
  return true;
}

bool ParseProb(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* rest = nullptr;
  double p = std::strtod(value.c_str(), &rest);
  if (rest == value.c_str() || *rest != '\0' || p < 0 || p > 1) return false;
  *out = p;
  return true;
}

}  // namespace

std::string ParseIoFaultSpec(const std::string& spec, IoFaultOptions* out) {
  IoFaultOptions options;
  bool armed = false;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    size_t eq = clause.find('=');
    std::string key = clause.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : clause.substr(eq + 1);
    int64_t n = 0;
    if (key == "enospc") {
      if (!ParseInt(value, &n)) return "enospc= wants a byte count: " + clause;
      options.enospc_bytes = n;
      armed = true;
    } else if (key == "short_write") {
      if (!ParseInt(value, &n) || n == 0) {
        return "short_write= wants a positive op index: " + clause;
      }
      options.short_write_at = n;
      armed = true;
    } else if (key == "read_eio") {
      if (!ParseInt(value, &n) || n == 0) {
        return "read_eio= wants a positive op index: " + clause;
      }
      options.read_eio_at = n;
      armed = true;
    } else if (key == "transient") {
      if (!ParseInt(value, &n)) return "transient= wants a count: " + clause;
      options.transient = n;
    } else if (key == "p_read") {
      if (!ParseProb(value, &options.p_read)) {
        return "p_read= wants a probability in [0,1]: " + clause;
      }
      armed = true;
    } else if (key == "p_write") {
      if (!ParseProb(value, &options.p_write)) {
        return "p_write= wants a probability in [0,1]: " + clause;
      }
      armed = true;
    } else if (key == "seed") {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "drop_sync" && value.empty()) {
      options.drop_sync = true;
      armed = true;
    } else if (key == "torn") {
      if (!ParseInt(value, &n) || n == 0) {
        return "torn= wants a positive sector size: " + clause;
      }
      options.sector = n;
      armed = true;
    } else {
      return "unknown clause '" + clause + "'";
    }
  }
  if (!armed) return "io fault spec arms nothing: " + spec;
  *out = std::move(options);
  return "";
}

// ---------------------------------------------------------------------------
// File wrappers.

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultEnv* env,
                    std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  std::string Append(const std::string& data) override {
    std::string injected;
    size_t allowed = env_->AdmitWrite(path_, data.size(), &injected);
    if (allowed > 0) {
      std::string base_error = base_->Append(data.substr(0, allowed));
      if (!base_error.empty()) return base_error;
      // Keep the partial prefix findable by crash truncation: stdio may
      // still be buffering it when the injected error aborts the caller.
      base_->Sync();
      env_->NoteAppended(path_, allowed);
    }
    return injected;
  }

  std::string Sync() override {
    if (env_->options().drop_sync) return "";  // the lying disk
    std::string error = base_->Sync();
    if (error.empty()) env_->NoteSynced(path_);
    return error;
  }

  std::string Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultEnv* env_;
  std::string path_;
};

class FaultRandomRWFile : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultEnv* env,
                    std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  std::string ReadAt(uint64_t offset, size_t n, std::string* out,
                     bool* retryable) override {
    std::string injected = env_->AdmitRead(path_, retryable);
    if (!injected.empty()) return injected;
    return base_->ReadAt(offset, n, out, retryable);
  }

  std::string WriteAt(uint64_t offset, const std::string& data) override {
    std::string injected;
    size_t allowed = env_->AdmitWrite(path_, data.size(), &injected);
    if (allowed > 0) {
      std::string base_error = base_->WriteAt(offset, data.substr(0, allowed));
      if (!base_error.empty()) return base_error;
      env_->NoteSize(path_, offset + allowed);
    }
    return injected;
  }

  std::string Flush() override { return base_->Flush(); }

  std::string Sync() override {
    if (env_->options().drop_sync) return "";
    std::string error = base_->Sync();
    if (error.empty()) env_->NoteSynced(path_);
    return error;
  }

  std::string Size(uint64_t* out) override { return base_->Size(out); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultEnv* env_;
  std::string path_;
};

// ---------------------------------------------------------------------------
// FaultEnv.

FaultEnv::FaultEnv(IoFaultOptions options, Env* base)
    : options_(std::move(options)),
      base_(base != nullptr ? base : GetEnv()),
      rng_state_(options_.seed * 0x9e3779b97f4a7c15ull + 1) {
  fault::SetAbortHook([this] { CrashNow(); });
}

FaultEnv::~FaultEnv() { fault::SetAbortHook(nullptr); }

std::string FaultEnv::NewWritableFile(const std::string& path,
                                      std::unique_ptr<WritableFile>* out) {
  bool existed = base_->FileExists(path);
  std::unique_ptr<WritableFile> base_file;
  std::string error = base_->NewWritableFile(path, &base_file);
  if (!error.empty()) return error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& st = files_[path];
    st = FileState{};
    st.create_pending = !existed;
  }
  *out = std::make_unique<FaultWritableFile>(std::move(base_file), this, path);
  return "";
}

std::string FaultEnv::NewRandomRWFile(const std::string& path, bool truncate,
                                      std::unique_ptr<RandomRWFile>* out) {
  bool existed = base_->FileExists(path);
  std::unique_ptr<RandomRWFile> base_file;
  std::string error = base_->NewRandomRWFile(path, truncate, &base_file);
  if (!error.empty()) return error;
  uint64_t size = 0;
  if (!truncate) base_file->Size(&size);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& st = files_[path];
    st = FileState{};
    if (truncate) {
      st.create_pending = !existed;
    } else {
      // Pre-existing content is assumed durable from before this env.
      st.size = size;
      st.synced_size = size;
    }
  }
  *out =
      std::make_unique<FaultRandomRWFile>(std::move(base_file), this, path);
  return "";
}

std::string FaultEnv::ReadFileToString(const std::string& path,
                                       std::string* out) {
  std::string injected = AdmitRead(path, nullptr);
  if (!injected.empty()) return injected;
  return base_->ReadFileToString(path, out);
}

bool FaultEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

std::string FaultEnv::RemoveFile(const std::string& path) {
  std::string error = base_->RemoveFile(path);
  if (error.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(path);
  }
  return error;
}

std::string FaultEnv::RenameFile(const std::string& from,
                                 const std::string& to) {
  // Shadow the replaced file before the rename destroys it: until the
  // parent directory is fsynced, a crash may roll the dirent back.
  bool had_old = base_->FileExists(to);
  std::string old_contents;
  if (had_old) base_->ReadFileToString(to, &old_contents);
  std::string error = base_->RenameFile(from, to);
  if (!error.empty()) return error;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  FileState st = it != files_.end() ? it->second : FileState{};
  if (it != files_.end()) files_.erase(it);
  st.create_pending = false;
  st.rename_pending = true;
  st.had_old = had_old;
  st.old_contents = std::move(old_contents);
  files_[to] = std::move(st);
  return "";
}

std::string FaultEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

std::string FaultEnv::SyncDir(const std::string& path) {
  if (options_.drop_sync) return "";  // the lying disk commits nothing
  std::string error = base_->SyncDir(path);
  if (!error.empty()) return error;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [file_path, st] : files_) {
    if (ParentDir(file_path) != path) continue;
    st.create_pending = false;
    st.rename_pending = false;
    st.old_contents.clear();
    st.had_old = false;
  }
  return "";
}

void FaultEnv::CrashNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return;
  crashed_ = true;
  const uint64_t sector = static_cast<uint64_t>(
      options_.sector > 0 ? options_.sector : 512);
  for (auto& [path, st] : files_) {
    if (st.rename_pending) {
      // Dirent not durable: the rename rolls back.  (The renamed-from temp
      // is gone too — the adversarial cut keeps only the old file.)
      if (st.had_old) {
        std::unique_ptr<WritableFile> f;
        if (base_->NewWritableFile(path, &f).empty()) {
          f->Append(st.old_contents);
          f->Close();
        }
      } else {
        base_->RemoveFile(path);
      }
      continue;
    }
    if (st.create_pending && st.synced_size == 0) {
      // Created, never fsynced, dirent never committed: it vanishes.
      base_->RemoveFile(path);
      continue;
    }
    // Unsynced tail torn at sector granularity: bytes up to the next
    // sector boundary past the synced size may survive (a torn partial
    // record — loaders must treat it as such), the rest is gone.
    uint64_t keep = std::min<uint64_t>(
        st.size, (st.synced_size + sector - 1) / sector * sector);
    if (keep < st.size) ::truncate(path.c_str(), static_cast<off_t>(keep));
  }
  files_.clear();
}

std::vector<std::string> FaultEnv::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

size_t FaultEnv::AdmitWrite(const std::string& path, size_t size,
                            std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t op = ++write_ops_;
  size_t allowed = size;
  if (options_.short_write_at == op) {
    allowed = size / 2;
    *error = "injected short write (write op " + std::to_string(op) +
             ") on " + path;
  } else if (options_.p_write > 0 && UnitDraw(&rng_state_) < options_.p_write) {
    allowed = 0;
    *error = "injected EIO (write op " + std::to_string(op) + ") on " + path;
  }
  if (options_.enospc_bytes >= 0 &&
      bytes_written_ + static_cast<int64_t>(allowed) > options_.enospc_bytes) {
    allowed = static_cast<size_t>(
        std::max<int64_t>(0, options_.enospc_bytes - bytes_written_));
    *error = "injected ENOSPC after " + std::to_string(options_.enospc_bytes) +
             " bytes (write op " + std::to_string(op) + ") on " + path;
  }
  bytes_written_ += static_cast<int64_t>(allowed);
  if (!error->empty()) TraceEvent(*error);
  return allowed;
}

std::string FaultEnv::AdmitRead(const std::string& path, bool* retryable) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t op = ++read_ops_;
  bool eio = false;
  if (options_.read_eio_at > 0 && op >= options_.read_eio_at &&
      (options_.transient == 0 ||
       op < options_.read_eio_at + options_.transient)) {
    eio = true;
  } else if (options_.p_read > 0 && UnitDraw(&rng_state_) < options_.p_read) {
    eio = true;
  }
  if (!eio) return "";
  if (retryable != nullptr) *retryable = true;
  std::string error =
      "injected EIO (read op " + std::to_string(op) + ") on " + path;
  TraceEvent(error);
  return error;
}

void FaultEnv::NoteAppended(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].size += bytes;
}

void FaultEnv::NoteSynced(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = files_[path];
  st.synced_size = st.size;
}

void FaultEnv::NoteSize(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = files_[path];
  st.size = std::max(st.size, size);
}

void FaultEnv::TraceEvent(const std::string& event) {
  if (trace_.size() < kMaxTraceEvents) trace_.push_back(event);
}

std::string InstallIoFaultFromEnv() {
  const char* spec = std::getenv("WUW_IO_FAULT");
  if (spec == nullptr || *spec == '\0') return "";
  IoFaultOptions options;
  std::string error = ParseIoFaultSpec(spec, &options);
  if (!error.empty()) return "WUW_IO_FAULT: " + error;
  if (options.seed == 0) {
    if (const char* seed = std::getenv("WUW_SEED")) {
      options.seed = std::strtoull(seed, nullptr, 10);
    }
  }
  SetEnv(new FaultEnv(std::move(options), GetEnv()));  // leaked: process-wide
  return "";
}

}  // namespace io
}  // namespace wuw
