#include "io/csv.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

namespace wuw {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string ValueToField(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return "";
    case TypeId::kString:
      return QuoteField(v.AsString());
    default:
      return v.ToString();
  }
}

/// Reads one CSV record starting at *pos, honoring quoted fields (which
/// may contain commas, quotes, and newlines).  Advances *pos past the
/// record's newline.  Returns false at end of input or on error (error
/// set only in the latter case).
bool ReadRecord(const std::string& csv, size_t* pos,
                std::vector<std::string>* fields, std::string* error) {
  fields->clear();
  size_t i = *pos;
  if (i >= csv.size()) return false;
  std::string current;
  bool in_quotes = false;
  bool any = false;
  while (i < csv.size()) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      any = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
      any = true;
      ++i;
      continue;
    }
    if (c == '\n') {
      ++i;
      break;
    }
    if (c == '\r' && i + 1 < csv.size() && csv[i + 1] == '\n') {
      i += 2;
      break;
    }
    current += c;
    any = true;
    ++i;
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  *pos = i;
  if (!any && current.empty() && fields->empty()) {
    // Blank line: skip to the next record (recursion depth = #blank lines,
    // negligible in practice).
    return ReadRecord(csv, pos, fields, error);
  }
  fields->push_back(std::move(current));
  return true;
}

bool ParseValue(const std::string& field, TypeId type, Value* out,
                std::string* error) {
  if (field.empty() && type != TypeId::kString) {
    *out = Value::Null();
    return true;
  }
  char* end = nullptr;
  switch (type) {
    case TypeId::kInt64: {
      int64_t v = strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        *error = "bad INT64 value: " + field;
        return false;
      }
      *out = Value::Int64(v);
      return true;
    }
    case TypeId::kDouble: {
      double v = strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        *error = "bad DOUBLE value: " + field;
        return false;
      }
      *out = Value::Double(v);
      return true;
    }
    case TypeId::kDate: {
      int year = 0, month = 0, day = 0;
      if (std::sscanf(field.c_str(), "%d-%d-%d", &year, &month, &day) != 3) {
        *error = "bad DATE value (want yyyy-mm-dd): " + field;
        return false;
      }
      *out = Value::Date(year, month, day);
      return true;
    }
    case TypeId::kString:
      *out = Value::String(field);
      return true;
    case TypeId::kNull:
      *out = Value::Null();
      return true;
  }
  *error = "unknown column type";
  return false;
}

std::string Header(const Schema& schema) {
  std::string out = "__count";
  for (const Column& c : schema.columns()) {
    out += ",";
    out += QuoteField(c.name);
  }
  out += "\n";
  return out;
}

std::string Record(const Tuple& tuple, int64_t count) {
  std::string line = std::to_string(count);
  for (size_t i = 0; i < tuple.size(); ++i) {
    line += ",";
    line += ValueToField(tuple.value(i));
  }
  line += "\n";
  return line;
}

/// Shared reader: parses header + records, calling `emit(tuple, count)`.
bool ParseCsv(const std::string& csv, const Schema& schema,
              const std::function<void(Tuple, int64_t)>& emit,
              std::string* error) {
  size_t pos = 0;
  size_t line_no = 0;
  bool saw_header = false;
  bool has_count_column = false;
  std::vector<std::string> fields;
  while (true) {
    std::string read_error;
    if (!ReadRecord(csv, &pos, &fields, &read_error)) {
      if (!read_error.empty()) {
        *error = read_error + " at record " + std::to_string(line_no + 1);
        return false;
      }
      break;  // end of input
    }
    ++line_no;
    // Trailing \r from CRLF already handled; strip any stray one.
    if (!fields.empty() && !fields.back().empty() &&
        fields.back().back() == '\r') {
      fields.back().pop_back();
    }
    if (!saw_header) {
      saw_header = true;
      has_count_column = !fields.empty() && fields[0] == "__count";
      size_t expected = schema.num_columns() + (has_count_column ? 1 : 0);
      if (fields.size() != expected) {
        *error = "header has " + std::to_string(fields.size()) +
                 " columns, schema expects " + std::to_string(expected);
        return false;
      }
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        const std::string& got = fields[i + (has_count_column ? 1 : 0)];
        if (got != schema.column(i).name) {
          *error = "header column '" + got + "' does not match schema '" +
                   schema.column(i).name + "'";
          return false;
        }
      }
      continue;
    }
    size_t offset = has_count_column ? 1 : 0;
    if (fields.size() != schema.num_columns() + offset) {
      *error = "line " + std::to_string(line_no) + " has " +
               std::to_string(fields.size()) + " fields";
      return false;
    }
    int64_t count = 1;
    if (has_count_column) {
      char* end = nullptr;
      count = strtoll(fields[0].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || count == 0) {
        *error = "bad __count at line " + std::to_string(line_no);
        return false;
      }
    }
    std::vector<Value> values(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (!ParseValue(fields[i + offset], schema.column(i).type, &values[i],
                      error)) {
        *error += " at line " + std::to_string(line_no);
        return false;
      }
    }
    emit(Tuple(std::move(values)), count);
  }
  if (!saw_header) {
    *error = "empty CSV (no header)";
    return false;
  }
  return true;
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out = Header(table.schema());
  for (const auto& [tuple, count] : table.SortedRows()) {
    out += Record(tuple, count);
  }
  return out;
}

bool CsvToTable(const std::string& csv, Table* table, std::string* error) {
  return ParseCsv(
      csv, table->schema(),
      [&](Tuple t, int64_t count) { table->Add(t, count); }, error);
}

std::string DeltaToCsv(const DeltaRelation& delta) {
  std::string out = Header(delta.schema());
  std::vector<std::pair<Tuple, int64_t>> rows;
  delta.ForEach([&](const Tuple& t, int64_t c) { rows.emplace_back(t, c); });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [tuple, count] : rows) out += Record(tuple, count);
  return out;
}

bool CsvToDelta(const std::string& csv, DeltaRelation* delta,
                std::string* error) {
  return ParseCsv(
      csv, delta->schema(),
      [&](Tuple t, int64_t count) { delta->Add(t, count); }, error);
}

}  // namespace wuw
