// Pluggable I/O environment: the single seam every durable artifact
// routes through.
//
// Snapshots (io/snapshot.cc), strategy journals (exec/journal.cc), page
// images and buffer-pool writeback (storage/page.cc) all used to hand-roll
// their own stdio calls — and all three silently skipped the fsync half of
// crash atomicity.  They now go through an Env, which buys two things:
//
//   * one implementation of the full crash-safety discipline —
//     write → fsync(file) → rename(2) → fsync(parent dir) — in
//     AtomicWriteFile below (temp+rename without the syncs is NOT
//     crash-atomic: the rename can be reordered before the data blocks,
//     and the dirent itself can be lost with the directory's metadata);
//   * a deterministic fault-injecting implementation (io/fault_env.h,
//     armed by WUW_IO_FAULT) in the SQLite injected-VFS testing tradition:
//     ENOSPC at byte N, EIO on the k-th read, short writes, dropped syncs,
//     and torn-tail-at-sector-granularity crash simulation — so the
//     durability suites sweep real failure models instead of hand-edited
//     files.
//
// Error contract (CLAUDE.md conventions): every operation returns an error
// string — empty on success — because all callers are user-facing input
// or durability paths; nothing here aborts.  The disarmed seam is a
// virtual call onto the same stdio-buffered primitives the direct code
// used, priced by bench/micro_io (keep-it-honest discipline).
#ifndef WUW_IO_ENV_H_
#define WUW_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

namespace wuw {
namespace io {

/// Sequential append-only sink (snapshot files, serialized journals,
/// durable journal appends).  Close() flushes; durability additionally
/// requires Sync() before the bytes are crash-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Appends `data`; "" on success.  A failed append may have persisted a
  /// prefix of `data` (the ENOSPC model).
  virtual std::string Append(const std::string& data) = 0;
  /// Flushes application + OS buffers to stable storage (fsync).
  virtual std::string Sync() = 0;
  /// Flushes buffers and closes the handle.  Idempotent.
  virtual std::string Close() = 0;
};

/// Positioned read/write handle (page files).  Not thread-safe — callers
/// serialize (the extent pager holds a mutex; operator spills are
/// single-threaded per operator).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;
  /// Reads exactly `n` bytes at `offset` into *out.  "" on success.  A
  /// short read (EOF) is an error with `*retryable` (when non-null) left
  /// false; an I/O error sets `*retryable` true — the pager fault-in path
  /// retries those on a bounded deterministic schedule (storage/page.cc).
  virtual std::string ReadAt(uint64_t offset, size_t n, std::string* out,
                             bool* retryable) = 0;
  /// Writes `data` at `offset` (extending the file as needed).
  virtual std::string WriteAt(uint64_t offset, const std::string& data) = 0;
  /// Flushes application buffers (no fsync).
  virtual std::string Flush() = 0;
  /// Flushes everything to stable storage (fsync).
  virtual std::string Sync() = 0;
  /// Current file size in bytes.
  virtual std::string Size(uint64_t* out) = 0;
};

/// The environment: file creation, whole-file reads, namespace operations.
/// Implementations must be thread-safe (distinct files may be written
/// concurrently by parallel spill operators).
class Env {
 public:
  virtual ~Env() = default;

  /// The process's real POSIX environment (stdio-buffered).  Never null.
  static Env* Default();

  /// Creates/truncates `path` for appending.
  virtual std::string NewWritableFile(const std::string& path,
                                      std::unique_ptr<WritableFile>* out) = 0;
  /// Opens `path` for positioned read/write.  `truncate` creates/empties
  /// it; otherwise the file must exist.
  virtual std::string NewRandomRWFile(const std::string& path, bool truncate,
                                      std::unique_ptr<RandomRWFile>* out) = 0;
  /// Reads the whole of `path` into *out.
  virtual std::string ReadFileToString(const std::string& path,
                                       std::string* out) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual std::string RemoveFile(const std::string& path) = 0;
  virtual std::string RenameFile(const std::string& from,
                                 const std::string& to) = 0;
  /// Creates `path` (one level); an existing directory is success.
  virtual std::string CreateDir(const std::string& path) = 0;
  /// fsyncs the directory itself, making renames/creates under it durable.
  virtual std::string SyncDir(const std::string& path) = 0;
};

/// The process-wide current environment.  Defaults to Env::Default();
/// tests (and WUW_IO_FAULT arming) swap in a FaultEnv.  Reads are a single
/// relaxed atomic load — the disarmed seam stays free of locks.
Env* GetEnv();
/// Installs `env` (null restores the default).  Returns the previous env.
/// Not synchronized against in-flight I/O: swap only at quiescent points
/// (test setup, process start).
Env* SetEnv(Env* env);

/// RAII env swap for tests.
class ScopedEnv {
 public:
  explicit ScopedEnv(Env* env) : prev_(SetEnv(env)) {}
  ~ScopedEnv() { SetEnv(prev_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  Env* prev_;
};

/// Directory part of `path` ("." when it has none).
std::string ParentDir(const std::string& path);

/// The crash-atomic whole-file write: contents land in `path + ".tmp"`,
/// are fsynced, renamed over `path`, and the parent directory is fsynced —
/// after which a crash at ANY point leaves either the old file or the new
/// one, never a mix and never a lost dirent.  Fault sites for the
/// kill-anywhere sweeps: `io.atomic.write` (before the payload write),
/// `io.atomic.sync` (payload written, not yet durable), `io.atomic.rename`
/// (durable tmp, old name still live), `io.atomic.dirsync` (renamed, dirent
/// not yet durable).  Returns false and fills *error on failure, removing
/// the temp file.
bool AtomicWriteFile(Env* env, const std::string& path,
                     const std::string& contents, std::string* error);

}  // namespace io
}  // namespace wuw

#endif  // WUW_IO_ENV_H_
