#include "stats/plan_cardinality.h"

#include <algorithm>

#include "stats/selectivity.h"
#include "stats/table_stats.h"

namespace wuw {

void AnnotatePlanCardinality(PlanDag* dag) {
  // Ids are topological, so one ascending pass sees children first.
  for (size_t i = 0; i < dag->size(); ++i) {
    PlanNode* n = dag->mutable_node(static_cast<PlanNodeId>(i));
    switch (n->kind) {
      case PlanNodeKind::kScanTable:
      case PlanNodeKind::kScanDelta:
      case PlanNodeKind::kScanRows:
        n->est_output_rows = static_cast<double>(n->input_rows);
        n->est_recompute_cost = static_cast<double>(n->input_rows);
        break;
      case PlanNodeKind::kFilter: {
        const PlanNode& c = dag->node(n->children[0]);
        // No column stats are attached to intermediate schemas; the
        // estimator falls back to its per-predicate defaults, which is
        // enough to rank subplans for eviction.
        double sel =
            EstimateSelectivity(n->filter.predicate, c.schema, TableStats{});
        n->est_output_rows = c.est_output_rows * sel;
        n->est_recompute_cost = c.est_recompute_cost + c.est_output_rows;
        break;
      }
      case PlanNodeKind::kProject: {
        const PlanNode& c = dag->node(n->children[0]);
        n->est_output_rows = c.est_output_rows;
        n->est_recompute_cost = c.est_recompute_cost + c.est_output_rows;
        break;
      }
      case PlanNodeKind::kHashJoin: {
        const PlanNode& l = dag->node(n->children[0]);
        const PlanNode& r = dag->node(n->children[1]);
        // Foreign-key heuristic: an equi-join keeps about the smaller
        // side's cardinality (each probe matches ~1 build row).
        n->est_output_rows = std::min(l.est_output_rows, r.est_output_rows);
        n->est_recompute_cost = l.est_recompute_cost + r.est_recompute_cost +
                                l.est_output_rows + r.est_output_rows;
        break;
      }
      case PlanNodeKind::kAggregate: {
        const PlanNode& c = dag->node(n->children[0]);
        n->est_output_rows = c.est_output_rows;
        n->est_recompute_cost = c.est_recompute_cost + c.est_output_rows;
        break;
      }
    }
  }
}

}  // namespace wuw
