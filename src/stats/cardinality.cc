#include "stats/cardinality.h"

#include <algorithm>

#include "common/check.h"
#include "stats/selectivity.h"

namespace wuw {

JoinEstimate EstimateDefinitionOutput(
    const ViewDefinition& def, const std::vector<SourceProfile>& sources) {
  WUW_CHECK(sources.size() == def.num_sources(),
            "need one profile per definition source");

  // Combined schema/stats for cross-source predicates.
  Schema combined;
  TableStats combined_stats;
  for (const SourceProfile& p : sources) {
    combined = Schema::Concat(combined, p.schema);
    combined_stats.columns.insert(combined_stats.columns.end(),
                                  p.stats.columns.begin(),
                                  p.stats.columns.end());
  }

  auto distinct_of = [&](const std::string& column) -> double {
    int i = combined.IndexOf(column);
    if (i < 0) return 1.0;
    return static_cast<double>(
        combined_stats.DistinctAt(static_cast<size_t>(i)));
  };
  auto column_stats_of = [&](const std::string& column) -> const ColumnStats* {
    int i = combined.IndexOf(column);
    if (i < 0 || static_cast<size_t>(i) >= combined_stats.columns.size()) {
      return nullptr;
    }
    return &combined_stats.columns[static_cast<size_t>(i)];
  };
  // Do the two join columns' value ranges overlap at all?  Fresh surrogate
  // keys (new orders, new customers) live outside the other side's domain;
  // the plain containment assumption would wildly overestimate those
  // joins, range-disjointness proves them empty.
  auto ranges_overlap = [&](const std::string& a,
                            const std::string& b) -> bool {
    const ColumnStats* sa = column_stats_of(a);
    const ColumnStats* sb = column_stats_of(b);
    if (sa == nullptr || sb == nullptr) return true;
    if (sa->min.is_null() || sb->min.is_null()) return true;  // empty side
    if (sa->min.type() == TypeId::kString ||
        sb->min.type() == TypeId::kString) {
      return !(sa->max < sb->min) && !(sb->max < sa->min);
    }
    return sa->max.NumericValue() >= sb->min.NumericValue() &&
           sb->max.NumericValue() >= sa->min.NumericValue();
  };
  auto owner_of = [&](const std::string& column) -> int {
    for (size_t s = 0; s < sources.size(); ++s) {
      if (sources[s].schema.HasColumn(column)) return static_cast<int>(s);
    }
    return -1;
  };

  // Base: product of effective source sizes (local filters pushed down).
  double rows = 1.0;
  for (size_t s = 0; s < sources.size(); ++s) {
    double eff = static_cast<double>(std::max<int64_t>(sources[s].stats.rows, 0));
    for (const ScalarExpr::Ptr& conjunct : def.filters()) {
      // Local iff every referenced column belongs to this source.
      bool local = true, any = false;
      for (const std::string& col : conjunct->ReferencedColumns()) {
        any = true;
        if (!sources[s].schema.HasColumn(col)) local = false;
      }
      if (any && local) {
        eff *= EstimateSelectivity(conjunct, sources[s].schema,
                                   sources[s].stats);
      }
    }
    rows *= eff;
  }

  // Join conditions: containment assumption, with range-disjoint joins
  // proven empty.
  for (const JoinCondition& jc : def.joins()) {
    if (!ranges_overlap(jc.left_column, jc.right_column)) {
      rows = 0;
      break;
    }
    double d = std::max({distinct_of(jc.left_column),
                         distinct_of(jc.right_column), 1.0});
    rows /= d;
  }

  // Cross-source filter conjuncts.
  for (const ScalarExpr::Ptr& conjunct : def.filters()) {
    bool local = true;
    int first = -1;
    for (const std::string& col : conjunct->ReferencedColumns()) {
      int owner = owner_of(col);
      if (first == -1) first = owner;
      if (owner != first) local = false;
    }
    if (!local) {
      rows *= EstimateSelectivity(conjunct, combined, combined_stats);
    }
  }

  JoinEstimate out;
  out.rows = std::max(0.0, rows);

  if (!def.is_aggregate()) {
    out.groups = out.rows;
    return out;
  }
  // Distinct groups: capped product of key-domain sizes (expression keys
  // contribute their referenced columns' domains).
  double domain = 1.0;
  for (const ProjectItem& item : def.projections()) {
    if (item.expr->kind() == ExprKind::kColumn) {
      domain *= distinct_of(item.expr->column_name());
    } else {
      double d = 1.0;
      for (const std::string& col : item.expr->ReferencedColumns()) {
        d *= distinct_of(col);
      }
      domain *= std::max(1.0, d);
    }
    domain = std::min(domain, 1e15);  // avoid overflow on wide keys
  }
  // Yao-style cap: with R rows thrown into D cells, expected occupied
  // cells = D(1 - (1 - 1/D)^R) ~ min(R, D) to first order.
  out.groups = std::min(out.rows, domain);
  return out;
}

}  // namespace wuw
