#include "stats/selectivity.h"

#include <algorithm>

namespace wuw {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Linearizes a value for range interpolation.  Dates need care: the
/// yyyymmdd integer encoding has gaps (xxxx1231 -> yyyy0101 jumps by
/// 8870), which would skew uniform interpolation by ~3x; map them onto a
/// continuous day axis first.
double Linearize(const Value& v) {
  if (v.type() == TypeId::kDate) {
    int64_t d = v.AsDate();
    int64_t year = d / 10000, month = (d / 100) % 100, day = d % 100;
    return static_cast<double>((year * 12 + (month - 1)) * 31 + (day - 1));
  }
  return v.NumericValue();
}

/// Fraction of [min, max] strictly below `v` under a uniform assumption.
double FractionBelow(const ColumnStats& stats, const Value& v) {
  if (stats.min.is_null() || stats.max.is_null()) return kDefaultSelectivity;
  // Only numeric-ish columns support range math.
  if (v.type() == TypeId::kString || stats.min.type() == TypeId::kString) {
    return kDefaultSelectivity;
  }
  double lo = Linearize(stats.min);
  double hi = Linearize(stats.max);
  double x = Linearize(v);
  if (hi <= lo) return x > lo ? 1.0 : 0.0;
  return Clamp01((x - lo) / (hi - lo));
}

double EstimateNode(const ScalarExpr& e, const Schema& schema,
                    const TableStats& stats) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      // Constant TRUE/FALSE predicates.
      const Value& v = e.literal();
      if (v.is_null()) return 0.0;
      if (v.type() == TypeId::kInt64) return v.AsInt64() != 0 ? 1.0 : 0.0;
      return kDefaultSelectivity;
    }
    case ExprKind::kLogical: {
      double l = EstimateNode(*e.lhs(), schema, stats);
      double r = EstimateNode(*e.rhs(), schema, stats);
      return e.logical_op() == LogicalOp::kAnd ? Clamp01(l * r)
                                               : Clamp01(l + r - l * r);
    }
    case ExprKind::kNot:
      return Clamp01(1.0 - EstimateNode(*e.lhs(), schema, stats));
    case ExprKind::kCompare: {
      const ScalarExpr::Ptr& lhs = e.lhs();
      const ScalarExpr::Ptr& rhs = e.rhs();
      bool l_col = lhs->kind() == ExprKind::kColumn;
      bool r_col = rhs->kind() == ExprKind::kColumn;
      bool l_lit = lhs->kind() == ExprKind::kLiteral;
      bool r_lit = rhs->kind() == ExprKind::kLiteral;

      // col = col (within one relation).
      if (l_col && r_col && e.compare_op() == CompareOp::kEq) {
        int li = schema.IndexOf(lhs->column_name());
        int ri = schema.IndexOf(rhs->column_name());
        if (li < 0 || ri < 0) return kDefaultSelectivity;
        return 1.0 / static_cast<double>(
                         std::max(stats.DistinctAt(static_cast<size_t>(li)),
                                  stats.DistinctAt(static_cast<size_t>(ri))));
      }

      // Normalize to col OP const.
      const ScalarExpr* col = nullptr;
      const Value* constant = nullptr;
      CompareOp op = e.compare_op();
      if (l_col && r_lit) {
        col = lhs.get();
        constant = &rhs->literal();
      } else if (r_col && l_lit) {
        col = rhs.get();
        constant = &lhs->literal();
        // Mirror the operator: const OP col  ==  col OP' const.
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      } else {
        return kDefaultSelectivity;
      }

      int index = schema.IndexOf(col->column_name());
      if (index < 0 ||
          static_cast<size_t>(index) >= stats.columns.size()) {
        return kDefaultSelectivity;
      }
      const ColumnStats& cs = stats.columns[static_cast<size_t>(index)];
      switch (op) {
        case CompareOp::kEq:
          return 1.0 / static_cast<double>(
                           stats.DistinctAt(static_cast<size_t>(index)));
        case CompareOp::kNe:
          return Clamp01(
              1.0 - 1.0 / static_cast<double>(stats.DistinctAt(
                              static_cast<size_t>(index))));
        case CompareOp::kLt:
        case CompareOp::kLe:
          return FractionBelow(cs, *constant);
        case CompareOp::kGt:
        case CompareOp::kGe:
          return Clamp01(1.0 - FractionBelow(cs, *constant));
      }
      return kDefaultSelectivity;
    }
    default:
      return kDefaultSelectivity;
  }
}

}  // namespace

double EstimateSelectivity(const ScalarExpr::Ptr& predicate,
                           const Schema& schema, const TableStats& stats) {
  if (predicate == nullptr) return 1.0;
  return Clamp01(EstimateNode(*predicate, schema, stats));
}

}  // namespace wuw
