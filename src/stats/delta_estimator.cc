#include "stats/delta_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/cardinality.h"

namespace wuw {

namespace {

/// Scales a relation profile down to `rows` rows: distinct counts cap at
/// the new row count (a subset cannot have more distinct values than
/// rows, nor more than the original relation had).
TableStats ScaleStats(const TableStats& base, double rows) {
  TableStats out = base;
  out.rows = static_cast<int64_t>(std::llround(std::max(0.0, rows)));
  for (ColumnStats& c : out.columns) {
    c.distinct = std::max<int64_t>(
        1, std::min<int64_t>(c.distinct, std::max<int64_t>(out.rows, 1)));
  }
  return out;
}

/// Post-install profile of a source: its extent merged with its pending
/// delta (ranges unioned, distincts grown by the delta's, rows adjusted by
/// the net).  The 1-way term sum telescopes through states where earlier
/// sources are already installed; using post profiles for the non-delta
/// operands models that — and lets fresh-key inserts (whose keys only
/// exist post-install) join the deltas of later sources.
TableStats MergePost(const TableStats& extent, const TableStats& delta,
                     double plus, double minus) {
  TableStats out = extent;
  out.rows = std::max<int64_t>(
      0, extent.rows + static_cast<int64_t>(std::llround(plus - minus)));
  for (size_t c = 0; c < out.columns.size() && c < delta.columns.size();
       ++c) {
    const ColumnStats& dc = delta.columns[c];
    ColumnStats& oc = out.columns[c];
    if (!dc.min.is_null()) {
      if (oc.min.is_null() || dc.min < oc.min) oc.min = dc.min;
      if (oc.max.is_null() || oc.max < dc.max) oc.max = dc.max;
    }
    oc.distinct = std::max<int64_t>(
        1, std::min<int64_t>(oc.distinct + dc.distinct,
                             std::max<int64_t>(out.rows, 1)));
  }
  return out;
}

}  // namespace

SizeMap EstimateSizesWithStats(const Vdag& vdag,
                               const StatsEstimatorInputs& inputs) {
  SizeMap out;

  auto extent_stats_of = [&](const std::string& view) -> const TableStats& {
    auto it = inputs.extent_stats.find(view);
    WUW_CHECK(it != inputs.extent_stats.end(),
              ("no extent stats for view: " + view).c_str());
    return it->second;
  };

  // Delta profiles built bottom-up: base views from real delta stats,
  // derived views synthesized from their own estimates.
  struct DeltaProfile {
    TableStats stats;   // absolute footprint
    double plus = 0;    // estimated inserted rows
    double minus = 0;   // estimated deleted rows
  };
  std::unordered_map<std::string, DeltaProfile> delta_profiles;

  for (const std::string& name : vdag.BaseViews()) {
    const TableStats& extent = extent_stats_of(name);
    ViewSizes s;
    s.size = extent.rows;

    DeltaProfile profile;
    auto it = inputs.base_delta_stats.find(name);
    if (it != inputs.base_delta_stats.end()) {
      profile.stats = it->second;
      auto pm = inputs.base_delta_plus_minus.find(name);
      if (pm != inputs.base_delta_plus_minus.end()) {
        profile.plus = static_cast<double>(pm->second.first);
        profile.minus = static_cast<double>(pm->second.second);
      } else {
        profile.minus = static_cast<double>(profile.stats.rows);
      }
    } else {
      profile.stats = ScaleStats(extent, 0);
    }
    s.delta_abs = static_cast<int64_t>(
        std::llround(profile.plus + profile.minus));
    s.delta_net = static_cast<int64_t>(
        std::llround(profile.plus - profile.minus));
    out.Set(name, s);
    delta_profiles.emplace(name, std::move(profile));
  }

  for (const std::string& name : vdag.DerivedViewsBottomUp()) {
    const auto& def = vdag.definition(name);
    const TableStats& extent = extent_stats_of(name);
    const auto& sources = def->sources();

    // Extent profiles (pre-install) and post-install profiles per source.
    std::vector<SourceProfile> full;
    std::vector<SourceProfile> post;
    for (const std::string& src : sources) {
      const TableStats& extent = extent_stats_of(src);
      const DeltaProfile& dp = delta_profiles.at(src);
      full.push_back(SourceProfile{vdag.OutputSchema(src), extent});
      post.push_back(SourceProfile{
          vdag.OutputSchema(src),
          MergePost(extent, dp.stats, dp.plus, dp.minus)});
    }

    // 1-way term sum with proper telescoping: term i reads source i's
    // delta, POST-install profiles for sources before i and PRE-install
    // profiles after i — each changed (row, row) combination is counted by
    // exactly one term, so cross-delta pairs are not double counted.
    double raw_plus = 0, raw_minus = 0, raw_groups = 0;
    for (size_t i = 0; i < sources.size(); ++i) {
      const DeltaProfile& dp = delta_profiles.at(sources[i]);
      if (dp.stats.rows <= 0 && dp.plus <= 0 && dp.minus <= 0) continue;

      std::vector<SourceProfile> term;
      for (size_t j = 0; j < sources.size(); ++j) {
        term.push_back(j < i ? post[j] : full[j]);
      }
      term[i].stats = ScaleStats(dp.stats, dp.plus);
      JoinEstimate plus_est = EstimateDefinitionOutput(*def, term);
      term[i].stats = ScaleStats(dp.stats, dp.minus);
      JoinEstimate minus_est = EstimateDefinitionOutput(*def, term);

      raw_plus += plus_est.rows;
      raw_minus += minus_est.rows;
      raw_groups += plus_est.groups + minus_est.groups;
    }

    ViewSizes s;
    s.size = extent.rows;
    DeltaProfile profile;
    if (!def->is_aggregate()) {
      s.delta_net = static_cast<int64_t>(std::llround(raw_plus - raw_minus));
      s.delta_abs = static_cast<int64_t>(std::llround(raw_plus + raw_minus));
      profile.plus = raw_plus;
      profile.minus = raw_minus;
    } else {
      // Aggregate: touched groups emit a {-old,+new} pair; groups die when
      // all contributors vanish.
      JoinEstimate full_join = EstimateDefinitionOutput(*def, full);
      double group_size =
          extent.rows > 0
              ? std::max(1.0, full_join.rows /
                                  static_cast<double>(extent.rows))
              : 1.0;
      double affected = std::min(static_cast<double>(extent.rows),
                                 raw_groups);
      double minus_fraction =
          full_join.rows > 0 ? std::min(1.0, raw_minus / full_join.rows)
                             : 0.0;
      double dead = static_cast<double>(extent.rows) *
                    std::pow(minus_fraction, group_size);
      double born =
          std::max(0.0, std::min(raw_plus / group_size,
                                 raw_plus > 0 ? affected : 0.0) -
                            affected * minus_fraction);
      s.delta_abs = static_cast<int64_t>(
          std::llround(std::max(0.0, 2 * affected - dead + born)));
      s.delta_net =
          static_cast<int64_t>(std::llround(born - dead));
      profile.plus = affected + born;
      profile.minus = affected + dead;
    }
    profile.stats =
        ScaleStats(extent, static_cast<double>(s.delta_abs));
    out.Set(name, s);
    delta_profiles.emplace(name, std::move(profile));
  }
  return out;
}

}  // namespace wuw
