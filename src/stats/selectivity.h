// Predicate selectivity estimation over column statistics — the textbook
// System-R style rules ([Ull89] ch. 16):
//   col = const          1 / distinct(col)
//   col <  / > const     fraction of [min, max] below/above the constant
//   col = col            1 / max(distinct, distinct)
//   AND                  product;  OR  s1 + s2 - s1*s2;  NOT  1 - s
//   anything else        1/3 (the classic magic number)
#ifndef WUW_STATS_SELECTIVITY_H_
#define WUW_STATS_SELECTIVITY_H_

#include "expr/scalar_expr.h"
#include "stats/table_stats.h"
#include "storage/schema.h"

namespace wuw {

/// Default selectivity for unestimable predicates.
inline constexpr double kDefaultSelectivity = 1.0 / 3.0;

/// Estimated fraction of rows of a relation with `schema` / `stats`
/// satisfying `predicate`.  Columns the stats don't cover fall back to the
/// default.  Always in [0, 1].
double EstimateSelectivity(const ScalarExpr::Ptr& predicate,
                           const Schema& schema, const TableStats& stats);

}  // namespace wuw

#endif  // WUW_STATS_SELECTIVITY_H_
