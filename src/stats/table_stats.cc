#include "stats/table_stats.h"

#include <unordered_set>

namespace wuw {

namespace {

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

class Collector {
 public:
  explicit Collector(size_t num_columns)
      : seen_(num_columns), stats_(num_columns) {}

  void Row(const Tuple& tuple, int64_t weight) {
    rows_ += weight;
    for (size_t c = 0; c < stats_.size(); ++c) {
      const Value& v = tuple.value(c);
      if (v.is_null()) continue;
      if (seen_[c].insert(v).second) {
        ++stats_[c].distinct;
        if (stats_[c].min.is_null() || v < stats_[c].min) stats_[c].min = v;
        if (stats_[c].max.is_null() || stats_[c].max < v) stats_[c].max = v;
      }
    }
  }

  TableStats Finish() {
    TableStats out;
    out.rows = rows_;
    out.columns = std::move(stats_);
    return out;
  }

 private:
  std::vector<std::unordered_set<Value, ValueHash>> seen_;
  std::vector<ColumnStats> stats_;
  int64_t rows_ = 0;
};

}  // namespace

TableStats TableStats::Collect(const Table& table) {
  Collector collector(table.schema().num_columns());
  table.ForEach(
      [&](const Tuple& t, int64_t count) { collector.Row(t, count); });
  return collector.Finish();
}

TableStats TableStats::Collect(const DeltaRelation& delta) {
  Collector collector(delta.schema().num_columns());
  delta.ForEach([&](const Tuple& t, int64_t count) {
    collector.Row(t, count < 0 ? -count : count);
  });
  return collector.Finish();
}

int64_t TableStats::DistinctAt(size_t index) const {
  if (index >= columns.size()) return 1;
  return columns[index].distinct > 0 ? columns[index].distinct : 1;
}

std::string TableStats::ToString(const Schema& schema) const {
  std::string out = "rows=" + std::to_string(rows) + "\n";
  for (size_t c = 0; c < columns.size() && c < schema.num_columns(); ++c) {
    out += "  " + schema.column(c).name +
           ": distinct=" + std::to_string(columns[c].distinct);
    if (!columns[c].min.is_null()) {
      out += " range=[" + columns[c].min.ToString() + ", " +
             columns[c].max.ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace wuw
