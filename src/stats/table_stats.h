// Table statistics — the ANALYZE side of the house.
//
// Section 5.5 leans on "standard query result size estimation methods
// [Ull89]" to produce the |δV| and |V'| estimates the algorithms consume.
// Those methods need per-column statistics; this module collects them
// (row count, per-column distinct count and min/max) from tables and
// delta relations.
#ifndef WUW_STATS_TABLE_STATS_H_
#define WUW_STATS_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "delta/delta_relation.h"
#include "storage/table.h"

namespace wuw {

/// Statistics for one column.
struct ColumnStats {
  int64_t distinct = 0;
  Value min;  // null when the column had no non-null values
  Value max;
};

/// Statistics for one relation instance.
struct TableStats {
  int64_t rows = 0;  // counting multiplicity
  std::vector<ColumnStats> columns;

  /// Exact single-pass collection (distinct via hashing — fine at
  /// warehouse-benchmark scales; a production system would sample or
  /// sketch).
  static TableStats Collect(const Table& table);

  /// Stats over a delta's tuples (multiplicities by absolute value —
  /// the delta's footprint as a join operand).
  static TableStats Collect(const DeltaRelation& delta);

  /// Distinct count of the column at `index`, clamped to >= 1.
  int64_t DistinctAt(size_t index) const;

  std::string ToString(const Schema& schema) const;
};

}  // namespace wuw

#endif  // WUW_STATS_TABLE_STATS_H_
