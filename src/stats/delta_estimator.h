// Statistics-based delta-size estimation (Section 5.5, done properly).
//
// Replaces core/size_estimator.h's first-order churn model with the
// cardinality formula of stats/cardinality.h: each derived view's |δV| is
// the sum of its 1-way maintenance-term estimates — the term for source i
// swaps S_i's extent profile for its delta's profile.  Proceeds bottom-up
// exactly as the paper prescribes ("assuming estimates of the underlying
// views have been obtained, δV can be estimated using standard methods").
#ifndef WUW_STATS_DELTA_ESTIMATOR_H_
#define WUW_STATS_DELTA_ESTIMATOR_H_

#include <string>
#include <unordered_map>

#include "core/work_metric.h"
#include "graph/vdag.h"
#include "stats/table_stats.h"

namespace wuw {

/// Inputs for statistics-based estimation.
struct StatsEstimatorInputs {
  /// Current-extent statistics per view (base and derived).
  std::unordered_map<std::string, TableStats> extent_stats;
  /// Statistics of the pending delta per base view (absent = no changes).
  std::unordered_map<std::string, TableStats> base_delta_stats;
  /// Plus/minus row split of each base delta (rows in base_delta_stats is
  /// the absolute total).
  std::unordered_map<std::string, std::pair<int64_t, int64_t>>
      base_delta_plus_minus;
};

/// Builds a complete SizeMap bottom-up using the cardinality model.
SizeMap EstimateSizesWithStats(const Vdag& vdag,
                               const StatsEstimatorInputs& inputs);

}  // namespace wuw

#endif  // WUW_STATS_DELTA_ESTIMATOR_H_
