// Cardinality annotations for physical plans.
//
// Walks a PlanDag bottom-up and fills each node's est_output_rows and
// est_recompute_cost from the leaves' exact operand sizes and the System-R
// selectivity rules (stats/selectivity.h).  The SubplanCache uses the
// recompute cost as its retention score: under byte pressure it prefers to
// drop subplans that are cheap to rebuild (a filtered base scan) over ones
// that embed long join chains.
#ifndef WUW_STATS_PLAN_CARDINALITY_H_
#define WUW_STATS_PLAN_CARDINALITY_H_

#include "plan/plan_node.h"

namespace wuw {

/// Fills est_output_rows / est_recompute_cost for every node of `dag`.
/// Leaves must already carry their input_rows (PlanDag interning sets
/// them).  Idempotent; call after the DAG is fully built.
void AnnotatePlanCardinality(PlanDag* dag);

}  // namespace wuw

#endif  // WUW_STATS_PLAN_CARDINALITY_H_
