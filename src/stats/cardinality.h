// Join-output cardinality estimation — the System-R formula over the
// view-definition IR:
//
//   |out| = Π_i (|S_i| · sel(local filters_i))
//           · Π_{join a=b} 1 / max(d(a), d(b))
//           · Π_{other conjuncts} sel
//
// plus a distinct-group estimate for aggregate views.  This is what turns
// the column statistics into the |δV| estimates of Section 5.5.
#ifndef WUW_STATS_CARDINALITY_H_
#define WUW_STATS_CARDINALITY_H_

#include <vector>

#include "stats/table_stats.h"
#include "view/view_definition.h"

namespace wuw {

/// One source's relation profile: its schema and statistics.  `rows` in
/// the stats is the operand size (a delta profile uses |δ|).
struct SourceProfile {
  Schema schema;
  TableStats stats;
};

/// Estimated sizes of a definition's output.
struct JoinEstimate {
  double rows = 0;    // join+filter output rows (pre-aggregation)
  double groups = 0;  // distinct group keys (aggregate views; else = rows)
};

/// Estimates the output of `def` evaluated over the given per-source
/// profiles (one per definition source, in order).
JoinEstimate EstimateDefinitionOutput(
    const ViewDefinition& def, const std::vector<SourceProfile>& sources);

}  // namespace wuw

#endif  // WUW_STATS_CARDINALITY_H_
