// The warehouse runtime: a VDAG, its materialized extents, and the pending
// update batch.
//
// Lifecycle per update window:
//   1. SetBaseDelta(...) for each changed base view (changes "arrive").
//   2. Pick a strategy (MinWork / Prune / hand-written), usually from
//      EstimatedSizes() or OracleSizes().
//   3. Executor(&warehouse).Execute(strategy) runs it and clears the batch.
#ifndef WUW_EXEC_WAREHOUSE_H_
#define WUW_EXEC_WAREHOUSE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/expression.h"
#include "core/size_estimator.h"
#include "core/work_metric.h"
#include "delta/delta_relation.h"
#include "exec/journal.h"
#include "graph/vdag.h"
#include "plan/aux_view.h"
#include "storage/catalog.h"
#include "storage/paged_store.h"
#include "storage/read_snapshot.h"
#include "view/maintenance.h"

namespace wuw {

/// A fully materialized warehouse instance.
class Warehouse {
 public:
  explicit Warehouse(Vdag vdag);
  ~Warehouse();

  Warehouse(Warehouse&&) noexcept;
  Warehouse& operator=(Warehouse&&) noexcept;

  const Vdag& vdag() const { return vdag_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Direct access to a base view's extent for initial loading.
  Table* base_table(const std::string& name);

  /// Arms epoch-versioned snapshot reads on this warehouse and publishes
  /// the current state as the first committed snapshot.  Armed, every
  /// commit point (ResetBatch at strategy completion, RecomputeDerived)
  /// publishes atomically, and mutators copy-on-write-detach published
  /// extents first.  Idempotent; also driven by the WUW_READERS env knob
  /// at construction.  Must be called before concurrent readers attach
  /// (arming itself is not thread-safe — by construction it happens while
  /// the warehouse is still single-threaded).
  void EnableSnapshotReads();
  bool snapshot_reads_armed() const { return snapshots_ != nullptr; }

  /// Opens a consistent read handle.  Armed: one shared_ptr copy (under a
  /// mutex held for just that copy) pinning the
  /// last published SnapshotState — safe concurrent with any maintenance,
  /// pause, resume, or kill; the handle never observes a half-installed
  /// window.  Disarmed: a zero-cost live view of the catalog (the old
  /// quiesced-reads regime).
  ReadSnapshot OpenSnapshot() const;

  /// The commit point: atomically publishes the current catalog as the
  /// newest snapshot (no-op while disarmed).  Called from ResetBatch() —
  /// i.e. only when a strategy RUN COMPLETES; paused windows never publish,
  /// so readers see the pre-window state until the final resume lands —
  /// and from RecomputeDerived()/EnableSnapshotReads().  Also the
  /// version-bump audit point: in debug builds, a view mutated since the
  /// last publish without a NoteExtentChanged aborts here.
  void PublishSnapshot();

  /// Mutable extent access — THE choke point every production mutation
  /// path goes through (base_table, RecomputeDerived, Install in both
  /// executors, recovery replay).  Armed, the first mutation of a
  /// published extent detaches a private copy first (the published
  /// SnapshotState keeps the old version alive for its readers); disarmed
  /// it is exactly MustGetTable.  Callers still bump the version via
  /// NoteExtentChanged as before.
  Table* MutableExtent(const std::string& name);

  /// Views mutated since the last publish whose extent_version was NOT
  /// bumped — the contract violation PublishSnapshot aborts on in debug
  /// builds.  Exposed (release-safe, non-aborting) so the regression suite
  /// can prove the audit catches TestOnlyExtentNoVersionBump mutations on
  /// the snapshot path.  Empty while disarmed.
  std::vector<std::string> SnapshotAuditViolations() const;

  /// (Re)materializes every derived view bottom-up from the current base
  /// extents, refreshing the join-cardinality statistics.
  void RecomputeDerived();

  /// Arms the auxiliary-view advisor (plan/aux_view.h): executed Comps are
  /// tallied, and each commit (ResetBatch) refreshes stale
  /// materializations, promotes hot join prefixes to hidden "__aux_<n>"
  /// views registered in the VDAG, and restamps the substitution bindings.
  /// Idempotent (later calls only update the options); also driven by the
  /// WUW_AUX_VIEWS env knob at construction.  Disarmed, aux_views() is
  /// null and every hook in the engine is one pointer test — bit-identical
  /// behavior to a build without this layer.
  void EnableAuxViews(AuxViewOptions options);

  /// The advisor/binding registry; nullptr while disarmed.
  AuxViewRegistry* aux_views() { return aux_.get(); }
  const AuxViewRegistry* aux_views() const { return aux_.get(); }

  /// Aux flavor of SnapshotAuditViolations: bound aux extents mutated
  /// since their last commit stamp without a NoteExtentChanged bump.
  /// Release-safe; ResetBatch aborts on a non-empty result in debug
  /// builds.  Empty while disarmed.
  std::vector<std::string> AuxAuditViolations() const;

  /// Arms beyond-RAM extent paging (storage/paged_store.h): creates the
  /// pager, attaches it to the catalog's accessor hooks, and registers
  /// every extent in creation order.  Idempotent (later calls keep the
  /// existing pager); also driven by the WUW_MEM_MB env knob at
  /// construction.  Disarmed, paged_store() is null and every hook in the
  /// engine is one pointer test — bit-identical behavior to a build
  /// without this layer.
  void EnablePaging(const paged::PagedOptions& options);

  /// The extent pager; nullptr while disarmed.
  paged::PagedStore* paged_store() { return paged_.get(); }
  const paged::PagedStore* paged_store() const { return paged_.get(); }

  /// Executor touch point (no-op while paging is disarmed): faults the
  /// expression's extent need-set in — a Comp's definition sources, an
  /// Inst's target — and, when `evict` (sequential executor steps, the
  /// parallel coordinator via PagedTouchStage), advances the LRU clock and
  /// hibernates least-recently-touched extents until the resident set fits
  /// the budget.  Term workers call with evict=false, so eviction
  /// decisions never depend on WUW_THREADS.
  void PagedTouchExpression(const Expression& e, bool evict);

  /// The parallel coordinator's touch point: one evicting touch over the
  /// union of the stage's need-sets, before the stage's workers start.
  void PagedTouchStage(const std::vector<Expression>& stage);

  /// Registers the incoming changes of a base view for the next update
  /// window.  Replaces any delta already pending for that view.
  void SetBaseDelta(const std::string& name, DeltaRelation delta);

  /// Merges another batch into the pending delta (deferred maintenance:
  /// changes from several periods accumulate before one update window).
  void MergeBaseDelta(const std::string& name, const DeltaRelation& delta);

  /// The pending delta of a base view (empty delta if none was set).
  const DeltaRelation& base_delta(const std::string& name) const;

  /// The per-view raw-delta accumulator used during strategy execution.
  DeltaAccumulator* accumulator(const std::string& name);

  /// Clears pending base deltas and accumulators (Executor calls this
  /// after a successful run).
  void ResetBatch();

  /// Analytic size statistics for the pending batch (Section 5.5's
  /// "standard result size estimation"): exact for base views, first-order
  /// model for derived views.
  SizeMap EstimatedSizes() const;

  /// Statistics-based estimation: runs an ANALYZE pass (per-column
  /// distinct counts and ranges over every extent and pending delta) and
  /// feeds the System-R cardinality model (stats/delta_estimator.h).
  /// Slower than EstimatedSizes() but far tighter on filtered/insert-heavy
  /// batches.
  SizeMap EstimatedSizesWithStats() const;

  /// Exact size statistics, obtained by executing a throwaway dual-stage
  /// update on a cloned warehouse and measuring every finalized delta.
  /// Expensive; used by tests and calibration.
  SizeMap OracleSizes() const;

  /// Deep copy (tables, pending deltas); accumulators start fresh.  Version
  /// counters are copied too, so clones of one state agree on subplan-cache
  /// keys (see extent_version below) and may share a cache.
  Warehouse Clone() const;

  /// Pre-aggregation join cardinality recorded at the last recompute.
  int64_t join_rows(const std::string& view) const;

  /// Monotone per-view extent mutation counter, embedded in subplan-cache
  /// scan keys: any install / recompute / direct load bumps it, so a cached
  /// scan result can never be served over a rewritten extent.
  int64_t extent_version(const std::string& name) const;

  /// Records that `name`'s extent was mutated (Executor calls this after
  /// installing a delta).
  void NoteExtentChanged(const std::string& name);

  /// Monotone change-batch counter: bumped whenever the pending batch
  /// gains, merges, or clears deltas.  Keys delta-scan cache entries.
  int64_t batch_epoch() const { return batch_epoch_; }

  /// The redo journal of the current (or last) strategy run against this
  /// warehouse.  Executors write it when their `journal` option is set;
  /// ResumeStrategy (exec/recovery.h) reads it to finish an interrupted
  /// run.  Not cloned: a clone is a fresh state with no run history.
  StrategyJournal& journal() { return *journal_; }
  const StrategyJournal& journal() const { return *journal_; }

  /// TEST-ONLY: mutable extent access that deliberately skips the
  /// NoteExtentChanged version bump.  Exists so tests can prove that an
  /// unversioned mutation leaves stale version-keyed subplan-cache entries
  /// servable; production code must use base_table()/NoteExtentChanged.
  Table* TestOnlyExtentNoVersionBump(const std::string& name) {
    return catalog_.MustGetTable(name);
  }

 private:
  struct SnapshotPublisher;

  /// The aux-view commit hook, run by ResetBatch before the snapshot
  /// publishes: refresh stale materializations, audit version bumps
  /// (debug), close the advisor window + materialize promotions, restamp
  /// bindings.  Deterministic, so a recovery's final ResetBatch reruns it
  /// to the same state.
  void AuxCommit();

  Vdag vdag_;
  Catalog catalog_;
  std::unordered_map<std::string, DeltaRelation> base_deltas_;
  std::unordered_map<std::string, std::unique_ptr<DeltaAccumulator>>
      accumulators_;
  std::unordered_map<std::string, int64_t> join_rows_;
  std::unordered_map<std::string, int64_t> extent_versions_;
  int64_t batch_epoch_ = 0;
  /// Schema-typed empty deltas handed out for base views with no pending
  /// changes.
  std::unordered_map<std::string, DeltaRelation> empty_deltas_;
  /// unique_ptr keeps Warehouse movable (the journal holds a mutex).
  std::unique_ptr<StrategyJournal> journal_ =
      std::make_unique<StrategyJournal>();
  /// Snapshot-read state (atomic publish slot + COW clean flags + audit
  /// baseline); null while disarmed — the zero-cost-when-unset gate.
  std::unique_ptr<SnapshotPublisher> snapshots_;
  /// Auxiliary-view advisor + bindings (WUW_AUX_VIEWS); null while
  /// disarmed — same zero-cost-when-unset gate.
  std::unique_ptr<AuxViewRegistry> aux_;
  /// Extent pager (WUW_MEM_MB); null while disarmed.  unique_ptr keeps the
  /// pager's address stable across Warehouse moves (the catalog holds a
  /// raw pointer to it).
  std::unique_ptr<paged::PagedStore> paged_;
};

}  // namespace wuw

#endif  // WUW_EXEC_WAREHOUSE_H_
