#include "exec/warehouse.h"

#include "common/check.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "stats/delta_estimator.h"
#include "view/join_pipeline.h"
#include "view/recompute.h"

namespace wuw {

Warehouse::Warehouse(Vdag vdag) : vdag_(std::move(vdag)) {
  for (const std::string& name : vdag_.view_names()) {
    catalog_.CreateTable(name, vdag_.OutputSchema(name));
    // Pre-populated so NoteExtentChanged never inserts: a stage's parallel
    // installs then bump disjoint map slots without rehashing.
    extent_versions_.emplace(name, 0);
    if (vdag_.IsBaseView(name)) {
      empty_deltas_.emplace(name, DeltaRelation(vdag_.OutputSchema(name)));
    }
    if (vdag_.IsDerivedView(name)) {
      auto resolver = [this](const std::string& src) -> const Schema& {
        return vdag_.OutputSchema(src);
      };
      const auto& def = vdag_.definition(name);
      accumulators_.emplace(
          name, std::make_unique<DeltaAccumulator>(
                    def, RawSchema(*def, resolver), vdag_.OutputSchema(name)));
    }
  }
}

Table* Warehouse::base_table(const std::string& name) {
  WUW_CHECK(vdag_.IsBaseView(name), ("not a base view: " + name).c_str());
  // Mutable access: assume the caller writes (initial loading does).
  NoteExtentChanged(name);
  return catalog_.MustGetTable(name);
}

void Warehouse::RecomputeDerived() {
  for (const std::string& name : vdag_.DerivedViewsBottomUp()) {
    int64_t join_rows = 0;
    Table fresh = RecomputeView(*vdag_.definition(name), catalog_,
                                /*stats=*/nullptr, &join_rows);
    Table* table = catalog_.MustGetTable(name);
    table->Clear();
    fresh.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
    join_rows_[name] = join_rows;
    NoteExtentChanged(name);
  }
}

void Warehouse::SetBaseDelta(const std::string& name, DeltaRelation delta) {
  WUW_CHECK(vdag_.IsBaseView(name),
            ("deltas arrive only for base views: " + name).c_str());
  base_deltas_[name] = std::move(delta);
  ++batch_epoch_;
}

void Warehouse::MergeBaseDelta(const std::string& name,
                               const DeltaRelation& delta) {
  WUW_CHECK(vdag_.IsBaseView(name),
            ("deltas arrive only for base views: " + name).c_str());
  auto it = base_deltas_.find(name);
  if (it == base_deltas_.end()) {
    base_deltas_.emplace(name, DeltaRelation(vdag_.OutputSchema(name)));
    it = base_deltas_.find(name);
  }
  it->second.Merge(delta);
  ++batch_epoch_;
}

const DeltaRelation& Warehouse::base_delta(const std::string& name) const {
  auto it = base_deltas_.find(name);
  if (it != base_deltas_.end()) return it->second;
  auto empty = empty_deltas_.find(name);
  WUW_CHECK(empty != empty_deltas_.end(),
            ("not a base view: " + name).c_str());
  return empty->second;
}

DeltaAccumulator* Warehouse::accumulator(const std::string& name) {
  auto it = accumulators_.find(name);
  WUW_CHECK(it != accumulators_.end(),
            ("no accumulator (not a derived view?): " + name).c_str());
  return it->second.get();
}

void Warehouse::ResetBatch() {
  base_deltas_.clear();
  for (auto& [name, acc] : accumulators_) acc->Reset();
  ++batch_epoch_;
}

SizeMap Warehouse::EstimatedSizes() const {
  EstimatorInputs inputs;
  for (const std::string& name : vdag_.view_names()) {
    inputs.extent_sizes[name] = catalog_.MustGetTable(name)->cardinality();
  }
  for (const auto& [name, delta] : base_deltas_) {
    inputs.base_deltas[name] =
        BaseDeltaStats{delta.plus_count(), delta.minus_count()};
  }
  inputs.join_rows = join_rows_;
  return EstimateSizes(vdag_, inputs);
}

SizeMap Warehouse::EstimatedSizesWithStats() const {
  StatsEstimatorInputs inputs;
  for (const std::string& name : vdag_.view_names()) {
    inputs.extent_stats.emplace(
        name, TableStats::Collect(*catalog_.MustGetTable(name)));
  }
  for (const auto& [name, delta] : base_deltas_) {
    inputs.base_delta_stats.emplace(name, TableStats::Collect(delta));
    inputs.base_delta_plus_minus.emplace(
        name, std::make_pair(delta.plus_count(), delta.minus_count()));
  }
  return EstimateSizesWithStats(vdag_, inputs);
}

SizeMap Warehouse::OracleSizes() const {
  Warehouse clone = Clone();
  ExecutorOptions options;
  options.validate = false;
  options.capture_delta_stats = true;
  Executor executor(&clone, options);
  ExecutionReport report =
      executor.Execute(MakeDualStageVdagStrategy(vdag_));

  SizeMap out;
  for (const std::string& name : vdag_.view_names()) {
    ViewSizes s;
    s.size = catalog_.MustGetTable(name)->cardinality();
    auto it = report.delta_stats.find(name);
    if (it != report.delta_stats.end()) {
      s.delta_abs = it->second.first;
      s.delta_net = it->second.second;
    }
    out.Set(name, s);
  }
  return out;
}

Warehouse Warehouse::Clone() const {
  Warehouse out(vdag_);
  out.catalog_ = catalog_.Clone();
  out.base_deltas_ = base_deltas_;
  out.join_rows_ = join_rows_;
  out.extent_versions_ = extent_versions_;
  out.batch_epoch_ = batch_epoch_;
  return out;
}

int64_t Warehouse::join_rows(const std::string& view) const {
  auto it = join_rows_.find(view);
  return it == join_rows_.end() ? 0 : it->second;
}

int64_t Warehouse::extent_version(const std::string& name) const {
  auto it = extent_versions_.find(name);
  return it == extent_versions_.end() ? 0 : it->second;
}

void Warehouse::NoteExtentChanged(const std::string& name) {
  // The extent bytes are already rewritten when this fires: a kill here
  // models dying between the write and its version bump / journal record.
  WUW_FAULT_POINT("warehouse.note_extent_changed");
  WUW_METRIC_ADD("warehouse.extent_bumps", obs::MetricClass::kWork, 1);
  auto it = extent_versions_.find(name);
  WUW_CHECK(it != extent_versions_.end(),
            ("unknown view in NoteExtentChanged: " + name).c_str());
  ++it->second;
}

}  // namespace wuw
