#include "exec/warehouse.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "core/strategy_space.h"
#include "exec/executor.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "stats/delta_estimator.h"
#include "view/join_pipeline.h"
#include "view/recompute.h"

namespace wuw {

/// Snapshot-read state, allocated only when arming (EnableSnapshotReads /
/// WUW_READERS): the publish slot readers pin, the per-view copy-on-write
/// bookkeeping, and the version-bump audit baseline.
struct Warehouse::SnapshotPublisher {
  /// Guards `published` only; held for exactly one shared_ptr copy on
  /// either side.  A mutex, not std::atomic<shared_ptr>: libstdc++'s
  /// _Sp_atomic is itself a lock-bit spinlock (same cost class) whose
  /// relaxed internal unlock TSan correctly flags as a formal data race,
  /// and the TSan-green guarantee is part of this layer's contract.
  mutable std::mutex publish_mu;
  /// The last committed state; readers copy the pointer under publish_mu,
  /// commits overwrite it there.  Readers never hold the mutex while
  /// scanning — the pinned shared_ptr outlives any later publish.
  std::shared_ptr<const SnapshotState> published;
  /// Monotone commit counter (SnapshotState::commit_seq source).
  int64_t commit_seq = 0;
  /// Per-view: true while the published state shares the live Table
  /// object, so the first post-publish mutation must detach a copy.
  /// Pre-populated like extent_versions_ — a stage's parallel installs
  /// write disjoint slots without rehashing.
  std::unordered_map<std::string, bool> clean;
  /// (mutation_count, extent_version) per view at the last publish; the
  /// audit cross-checks them at the next one.
  std::unordered_map<std::string, std::pair<int64_t, int64_t>> baseline;
};

Warehouse::~Warehouse() = default;

Warehouse::Warehouse(Warehouse&& other) noexcept {
  *this = std::move(other);
}

Warehouse& Warehouse::operator=(Warehouse&& other) noexcept {
  if (this == &other) return *this;
  // The pager moves WITH the warehouse (unique_ptr — stable address), so
  // detach the source catalog before the member move: Catalog's move ops
  // fault-in-and-detach, a discipline meant for catalogs that ESCAPE their
  // warehouse, and pointless I/O here.  Re-attach below.
  other.catalog_.SetPager(nullptr);
  vdag_ = std::move(other.vdag_);
  catalog_ = std::move(other.catalog_);
  base_deltas_ = std::move(other.base_deltas_);
  accumulators_ = std::move(other.accumulators_);
  join_rows_ = std::move(other.join_rows_);
  extent_versions_ = std::move(other.extent_versions_);
  batch_epoch_ = other.batch_epoch_;
  empty_deltas_ = std::move(other.empty_deltas_);
  journal_ = std::move(other.journal_);
  snapshots_ = std::move(other.snapshots_);
  aux_ = std::move(other.aux_);
  paged_ = std::move(other.paged_);
  if (paged_ != nullptr) catalog_.SetPager(paged_.get());
  return *this;
}

Warehouse::Warehouse(Vdag vdag) : vdag_(std::move(vdag)) {
  for (const std::string& name : vdag_.view_names()) {
    catalog_.CreateTable(name, vdag_.OutputSchema(name));
    // Pre-populated so NoteExtentChanged never inserts: a stage's parallel
    // installs then bump disjoint map slots without rehashing.
    extent_versions_.emplace(name, 0);
    if (vdag_.IsBaseView(name)) {
      empty_deltas_.emplace(name, DeltaRelation(vdag_.OutputSchema(name)));
    }
    if (vdag_.IsDerivedView(name)) {
      auto resolver = [this](const std::string& src) -> const Schema& {
        return vdag_.OutputSchema(src);
      };
      const auto& def = vdag_.definition(name);
      accumulators_.emplace(
          name, std::make_unique<DeltaAccumulator>(
                    def, RawSchema(*def, resolver), vdag_.OutputSchema(name)));
    }
  }
  // WUW_READERS arms snapshot reads on every warehouse in the process —
  // the env-knob twin of EnableSnapshotReads(), same discipline as
  // WUW_WINDOW_BUDGET / WUW_METRICS.
  if (EnvReaders() > 0) EnableSnapshotReads();
  if (const AuxViewOptions* aux = EnvAuxViews()) EnableAuxViews(*aux);
  if (const paged::PagedOptions* p = paged::EnvPaged()) EnablePaging(*p);
}

Table* Warehouse::base_table(const std::string& name) {
  WUW_CHECK(vdag_.IsBaseView(name), ("not a base view: " + name).c_str());
  // Mutable access: assume the caller writes (initial loading does).
  NoteExtentChanged(name);
  return MutableExtent(name);
}

void Warehouse::RecomputeDerived() {
  for (const std::string& name : vdag_.DerivedViewsBottomUp()) {
    int64_t join_rows = 0;
    Table fresh = RecomputeView(*vdag_.definition(name), catalog_,
                                /*stats=*/nullptr, &join_rows);
    Table* table = MutableExtent(name);
    table->Clear();
    fresh.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
    join_rows_[name] = join_rows;
    NoteExtentChanged(name);
  }
  // A full rematerialization is a committed state readers may serve.
  PublishSnapshot();
}

void Warehouse::EnableSnapshotReads() {
  // Idempotent, but always (re)publishes: arming pins the *current*
  // committed state even when WUW_READERS already armed at construction.
  if (snapshots_ == nullptr) {
    snapshots_ = std::make_unique<SnapshotPublisher>();
    for (const std::string& name : vdag_.view_names()) {
      snapshots_->clean.emplace(name, false);
    }
  }
  PublishSnapshot();
}

ReadSnapshot Warehouse::OpenSnapshot() const {
  WUW_METRIC_ADD("serve.snapshots_opened", obs::MetricClass::kServe, 1);
  if (snapshots_ == nullptr) return ReadSnapshot(&catalog_, batch_epoch_);
  std::shared_ptr<const SnapshotState> pinned;
  {
    std::lock_guard<std::mutex> lock(snapshots_->publish_mu);
    pinned = snapshots_->published;
  }
  return ReadSnapshot(std::move(pinned));
}

void Warehouse::PublishSnapshot() {
  if (snapshots_ == nullptr) return;
#ifndef NDEBUG
  {
    std::vector<std::string> unbumped = SnapshotAuditViolations();
    WUW_CHECK(unbumped.empty(),
              ("extent mutated without NoteExtentChanged before publish: " +
               unbumped.front())
                  .c_str());
  }
#endif
  auto state = std::make_shared<SnapshotState>();
  state->commit_seq = ++snapshots_->commit_seq;
  state->batch_epoch = batch_epoch_;
  state->names = catalog_.table_names();
  for (const std::string& name : state->names) {
    std::shared_ptr<const Table> shared = catalog_.SharedTable(name);
    snapshots_->baseline[name] = {shared->mutation_count(),
                                  extent_version(name)};
    state->tables.emplace(name, std::move(shared));
    snapshots_->clean[name] = true;
  }
  {
    std::lock_guard<std::mutex> lock(snapshots_->publish_mu);
    snapshots_->published = std::move(state);
  }
  WUW_METRIC_ADD("serve.publishes", obs::MetricClass::kServe, 1);
}

Table* Warehouse::MutableExtent(const std::string& name) {
  if (snapshots_ == nullptr) return catalog_.MustGetTable(name);
  auto it = snapshots_->clean.find(name);
  WUW_CHECK(it != snapshots_->clean.end(),
            ("unknown view in MutableExtent: " + name).c_str());
  if (it->second) {
    // First mutation since the publish: detach a private copy so the
    // published version stays frozen for its readers.  Eager-on-first-write
    // (not refcount-probing) because a reader may pin the published state
    // at any instant — only never-mutate-published is race-free.
    catalog_.ReplaceTable(
        name, std::make_shared<Table>(*catalog_.MustGetTable(name)));
    it->second = false;
    // kWork, not kServe: the detach is maintenance-side work, and it is
    // deterministic (one per mutated view per publish, reader-independent
    // because detach is eager, never refcount-driven).
    WUW_METRIC_ADD("warehouse.cow_detaches", obs::MetricClass::kWork, 1);
  }
  return catalog_.MustGetTable(name);
}

std::vector<std::string> Warehouse::SnapshotAuditViolations() const {
  std::vector<std::string> out;
  if (snapshots_ == nullptr) return out;
  for (const std::string& name : catalog_.table_names()) {
    auto base = snapshots_->baseline.find(name);
    if (base == snapshots_->baseline.end()) continue;
    const Table* table = catalog_.GetTable(name);
    const bool mutated = table->mutation_count() != base->second.first;
    const bool bumped = extent_version(name) != base->second.second;
    if (mutated && !bumped) out.push_back(name);
  }
  return out;
}

void Warehouse::EnableAuxViews(AuxViewOptions options) {
  if (aux_ == nullptr) {
    aux_ = std::make_unique<AuxViewRegistry>(options);
  } else {
    aux_->set_options(options);
  }
}

std::vector<std::string> Warehouse::AuxAuditViolations() const {
  if (aux_ == nullptr) return {};
  auto version_of = [this](const std::string& n) { return extent_version(n); };
  return aux_->AuditViolations(version_of, catalog_);
}

void Warehouse::EnablePaging(const paged::PagedOptions& options) {
  if (paged_ == nullptr) {
    paged_ = std::make_unique<paged::PagedStore>(options);
    for (const std::string& name : catalog_.table_names()) {
      paged_->Register(name);
    }
  }
  catalog_.SetPager(paged_.get());
}

void Warehouse::PagedTouchExpression(const Expression& e, bool evict) {
  if (paged_ == nullptr) return;
  if (e.is_inst()) {
    paged_->Touch({e.view}, &catalog_, evict);
  } else {
    paged_->Touch(vdag_.sources(e.view), &catalog_, evict);
  }
}

void Warehouse::PagedTouchStage(const std::vector<Expression>& stage) {
  if (paged_ == nullptr) return;
  std::vector<std::string> names;
  auto add = [&](const std::string& n) {
    if (std::find(names.begin(), names.end(), n) == names.end()) {
      names.push_back(n);
    }
  };
  for (const Expression& e : stage) {
    if (e.is_inst()) {
      add(e.view);
    } else {
      for (const std::string& s : vdag_.sources(e.view)) add(s);
    }
  }
  paged_->Touch(names, &catalog_, /*evict=*/true);
}

void Warehouse::AuxCommit() {
  auto version_of = [this](const std::string& n) { return extent_version(n); };

  // 1. Refresh materializations whose prefix sources drifted this window
  // while the aux extent itself was not rewritten.
  for (const AuxViewRegistry::AuxRefresh& r : aux_->CollectStale(version_of)) {
    // A kill here models dying mid-refresh; recovery restores the
    // pre-window state and its final ResetBatch reruns this deterministic
    // commit, redoing the refresh.
    WUW_FAULT_POINT("aux.refresh.step");
    int64_t jr = 0;
    Table fresh = RecomputeView(*r.def, catalog_, /*stats=*/nullptr, &jr);
    Table* table = MutableExtent(r.aux_view);
    table->Clear();
    fresh.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
    join_rows_[r.aux_view] = jr;
    NoteExtentChanged(r.aux_view);
    WUW_METRIC_ADD("aux.refreshes", obs::MetricClass::kWork, 1);
  }

#ifndef NDEBUG
  {
    std::vector<std::string> unbumped = AuxAuditViolations();
    WUW_CHECK(unbumped.empty(),
              ("aux extent mutated without NoteExtentChanged before commit: " +
               unbumped.front())
                  .c_str());
  }
#endif

  // 2. Close the advisor window; materialize the promotions that survive
  // the measured accept test.
  for (const AuxViewRegistry::AuxPromotion& p :
       aux_->CloseWindow(vdag_, catalog_)) {
    // A same-window sibling sharing this recipe may have been rejected by
    // the accept test below, leaving the shared extent unmaterialized —
    // the parent re-proposes (with its own accept test) in a later window.
    if (p.already_materialized && !catalog_.HasTable(p.aux_view)) continue;
    if (!p.already_materialized) {
      int64_t jr = 0;
      Table fresh = RecomputeView(*p.def, catalog_, /*stats=*/nullptr, &jr);
      const int64_t rows = fresh.cardinality();
      // Accept iff the aux scan is strictly cheaper than the prefix scans
      // it replaces AND last window's substitutions would have saved more
      // linear work than the view's own upkeep (the prefix_len-1 extra
      // Comp terms of roughly prefix-sized inputs a maintenance window
      // pays for one more derived view).
      const int64_t saved = p.window_uses * (p.prefix_extent_rows - rows);
      const int64_t upkeep =
          static_cast<int64_t>(p.prefix_len - 1) * p.prefix_extent_rows;
      if (rows >= p.prefix_extent_rows || saved <= upkeep) {
        aux_->MarkRejected(p.parent, p.prefix_len);
        continue;
      }
      vdag_.AddDerivedView(p.def);
      catalog_.CreateTable(p.aux_view, vdag_.OutputSchema(p.aux_view));
      if (paged_ != nullptr) paged_->Register(p.aux_view);
      extent_versions_.emplace(p.aux_view, 0);
      auto resolver = [this](const std::string& src) -> const Schema& {
        return vdag_.OutputSchema(src);
      };
      accumulators_.emplace(
          p.aux_view, std::make_unique<DeltaAccumulator>(
                          p.def, RawSchema(*p.def, resolver),
                          vdag_.OutputSchema(p.aux_view)));
      if (snapshots_ != nullptr) snapshots_->clean.emplace(p.aux_view, false);
      // A kill here models dying between VDAG registration and the extent
      // fill; the half-installed state dies with the killed process and
      // the restored clone's rerun re-registers from scratch.
      WUW_FAULT_POINT("aux.promote.install");
      Table* table = MutableExtent(p.aux_view);
      fresh.ForEach([&](const Tuple& t, int64_t c) { table->Add(t, c); });
      join_rows_[p.aux_view] = jr;
      NoteExtentChanged(p.aux_view);
      WUW_METRIC_ADD("aux.promotions", obs::MetricClass::kWork, 1);
    }
    aux_->Bind(p);
  }

  // 3. Stamp every binding against the post-commit state — the freshness
  // baseline next window's substitutions validate against.
  aux_->Restamp(version_of, catalog_);
}

void Warehouse::SetBaseDelta(const std::string& name, DeltaRelation delta) {
  WUW_CHECK(vdag_.IsBaseView(name),
            ("deltas arrive only for base views: " + name).c_str());
  base_deltas_[name] = std::move(delta);
  ++batch_epoch_;
}

void Warehouse::MergeBaseDelta(const std::string& name,
                               const DeltaRelation& delta) {
  WUW_CHECK(vdag_.IsBaseView(name),
            ("deltas arrive only for base views: " + name).c_str());
  auto it = base_deltas_.find(name);
  if (it == base_deltas_.end()) {
    base_deltas_.emplace(name, DeltaRelation(vdag_.OutputSchema(name)));
    it = base_deltas_.find(name);
  }
  it->second.Merge(delta);
  ++batch_epoch_;
}

const DeltaRelation& Warehouse::base_delta(const std::string& name) const {
  auto it = base_deltas_.find(name);
  if (it != base_deltas_.end()) return it->second;
  auto empty = empty_deltas_.find(name);
  WUW_CHECK(empty != empty_deltas_.end(),
            ("not a base view: " + name).c_str());
  return empty->second;
}

DeltaAccumulator* Warehouse::accumulator(const std::string& name) {
  auto it = accumulators_.find(name);
  WUW_CHECK(it != accumulators_.end(),
            ("no accumulator (not a derived view?): " + name).c_str());
  return it->second.get();
}

void Warehouse::ResetBatch() {
  base_deltas_.clear();
  for (auto& [name, acc] : accumulators_) acc->Reset();
  ++batch_epoch_;
  // The aux-view commit hook runs before the publish so readers only ever
  // see fresh materializations alongside the window's installs.
  if (aux_ != nullptr) AuxCommit();
  // Executors call ResetBatch exactly when a strategy run completes — the
  // window's installs become visible to readers here, atomically.  Paused
  // windows never reach this, so readers keep the pre-window snapshot.
  PublishSnapshot();
}

SizeMap Warehouse::EstimatedSizes() const {
  EstimatorInputs inputs;
  for (const std::string& name : vdag_.view_names()) {
    // Hook-free: cardinality survives hibernation, so strategy selection
    // never faults extents in (storage/catalog.h Cardinality).
    inputs.extent_sizes[name] = catalog_.Cardinality(name);
  }
  for (const auto& [name, delta] : base_deltas_) {
    inputs.base_deltas[name] =
        BaseDeltaStats{delta.plus_count(), delta.minus_count()};
  }
  inputs.join_rows = join_rows_;
  return EstimateSizes(vdag_, inputs);
}

SizeMap Warehouse::EstimatedSizesWithStats() const {
  StatsEstimatorInputs inputs;
  for (const std::string& name : vdag_.view_names()) {
    inputs.extent_stats.emplace(
        name, TableStats::Collect(*catalog_.MustGetTable(name)));
  }
  for (const auto& [name, delta] : base_deltas_) {
    inputs.base_delta_stats.emplace(name, TableStats::Collect(delta));
    inputs.base_delta_plus_minus.emplace(
        name, std::make_pair(delta.plus_count(), delta.minus_count()));
  }
  return EstimateSizesWithStats(vdag_, inputs);
}

SizeMap Warehouse::OracleSizes() const {
  Warehouse clone = Clone();
  ExecutorOptions options;
  options.validate = false;
  options.capture_delta_stats = true;
  Executor executor(&clone, options);
  ExecutionReport report =
      executor.Execute(MakeDualStageVdagStrategy(vdag_));

  SizeMap out;
  for (const std::string& name : vdag_.view_names()) {
    ViewSizes s;
    s.size = catalog_.MustGetTable(name)->cardinality();
    auto it = report.delta_stats.find(name);
    if (it != report.delta_stats.end()) {
      s.delta_abs = it->second.first;
      s.delta_net = it->second.second;
    }
    out.Set(name, s);
  }
  return out;
}

Warehouse Warehouse::Clone() const {
  Warehouse out(vdag_);
  out.catalog_ = catalog_.Clone();
  out.base_deltas_ = base_deltas_;
  out.join_rows_ = join_rows_;
  out.extent_versions_ = extent_versions_;
  out.batch_epoch_ = batch_epoch_;
  // Unconditional: the ctor may have armed a fresh registry from the env,
  // but a clone must tally/bind/promote exactly like the original (what
  // keeps kill/resume runs bit-identical to uninterrupted ones).
  out.aux_ = aux_ != nullptr ? aux_->Copy() : nullptr;
  if (snapshots_ != nullptr || out.snapshots_ != nullptr) {
    // Clones of an armed warehouse serve snapshots too — and the ctor may
    // have published the pre-Clone (empty) tables under WUW_READERS, so
    // re-publish the real copied state either way.
    out.EnableSnapshotReads();
    out.PublishSnapshot();
  }
  // Paging: the ctor's env arming attached out's pager to the ctor-time
  // catalog object, which the catalog assignment above replaced — re-attach
  // (the entry set is identical: same VDAG, same creation order).  An
  // in-process-armed original propagates its arming to the clone, which is
  // what keeps kill/resume runs bit-identical to uninterrupted ones.
  if (out.paged_ == nullptr && paged_ != nullptr) {
    out.EnablePaging(paged_->options());
  } else if (out.paged_ != nullptr) {
    out.catalog_.SetPager(out.paged_.get());
  }
  return out;
}

int64_t Warehouse::join_rows(const std::string& view) const {
  auto it = join_rows_.find(view);
  return it == join_rows_.end() ? 0 : it->second;
}

int64_t Warehouse::extent_version(const std::string& name) const {
  auto it = extent_versions_.find(name);
  return it == extent_versions_.end() ? 0 : it->second;
}

void Warehouse::NoteExtentChanged(const std::string& name) {
  // The extent bytes are already rewritten when this fires: a kill here
  // models dying between the write and its version bump / journal record.
  WUW_FAULT_POINT("warehouse.note_extent_changed");
  WUW_METRIC_ADD("warehouse.extent_bumps", obs::MetricClass::kWork, 1);
  auto it = extent_versions_.find(name);
  WUW_CHECK(it != extent_versions_.end(),
            ("unknown view in NoteExtentChanged: " + name).c_str());
  ++it->second;
}

}  // namespace wuw
