#include "exec/parallel_executor.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "fault/fault_injection.h"
#include "view/comp_term.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelExecutor::ParallelExecutor(Warehouse* warehouse,
                                   ParallelExecutorOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "ParallelExecutor needs a warehouse");
  WUW_CHECK(options_.workers >= 1, "need at least one worker");
}

ParallelExecutionReport ParallelExecutor::Execute(
    const ParallelStrategy& strategy) {
  ParallelExecutionReport report;
  CompEvalOptions comp_options =
      MakeCompEvalOptions(warehouse_, options_.subplan_cache,
                          options_.skip_empty_delta_terms,
                          options_.term_workers);

  StrategyJournal* journal = nullptr;
  if (options_.journal) {
    journal = &warehouse_->journal();
    journal->Begin(strategy.Linearize(), warehouse_->batch_epoch());
  }

  int64_t stage_step_base = 0;
  for (const std::vector<Expression>& stage : strategy.stages) {
    WUW_FAULT_POINT("parallel.stage.begin");
    double stage_start = Now();
    std::vector<ExpressionReport> stage_reports(stage.size());
    std::atomic<size_t> next{0};
    // Injected-fault plumbing: the first dying worker parks its exception
    // here and flips `stop`; the others drain out at their next fetch, and
    // the barrier rethrows — the whole stage-parallel run "dies" the way a
    // one-process update window would.
    std::atomic<bool> stop{false};
    std::exception_ptr failure;
    std::mutex failure_mu;

    auto worker = [&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1);
        if (i >= stage.size()) break;
        try {
          WUW_FAULT_POINT("parallel.step.begin");
          stage_reports[i] = ExecuteExpression(
              warehouse_, stage[i], comp_options, nullptr, journal,
              stage_step_base + static_cast<int64_t>(i));
        } catch (...) {
          std::lock_guard<std::mutex> lock(failure_mu);
          if (failure == nullptr) failure = std::current_exception();
          stop.store(true, std::memory_order_relaxed);
        }
      }
    };

    size_t num_threads =
        std::min<size_t>(static_cast<size_t>(options_.workers), stage.size());
    if (num_threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(num_threads);
      for (size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back(worker);
      }
      for (std::thread& t : threads) t.join();
    }
    if (failure != nullptr) std::rethrow_exception(failure);
    stage_step_base += static_cast<int64_t>(stage.size());

    double stage_seconds = Now() - stage_start;
    report.stage_seconds.push_back(stage_seconds);
    report.total_seconds += stage_seconds;
    // Stage barrier: fold each expression's thread-local counters into the
    // run totals.  Workers only ever wrote their own stage_reports slot, so
    // nothing races and no increment is dropped.
    for (ExpressionReport& er : stage_reports) {
      report.total_linear_work += er.linear_work;
      report.totals += er.stats;
      report.per_expression.push_back(std::move(er));
    }
  }

  if (journal != nullptr) journal->MarkComplete();
  if (options_.subplan_cache != nullptr) {
    report.subplan_cache = options_.subplan_cache->stats();
  }
  warehouse_->ResetBatch();
  return report;
}

}  // namespace wuw
