#include "exec/parallel_executor.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "view/comp_term.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelExecutor::ParallelExecutor(Warehouse* warehouse,
                                   ParallelExecutorOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "ParallelExecutor needs a warehouse");
  WUW_CHECK(options_.workers >= 1, "need at least one worker");
}

ParallelExecutionReport ParallelExecutor::Execute(
    const ParallelStrategy& strategy) {
  ParallelExecutionReport report;
  CompEvalOptions comp_options;
  comp_options.skip_empty_delta_terms = options_.skip_empty_delta_terms;
  comp_options.term_workers = options_.term_workers;
  comp_options.subplan_cache = options_.subplan_cache;
  if (options_.subplan_cache != nullptr) {
    comp_options.batch_epoch = warehouse_->batch_epoch();
    comp_options.extent_version = [wh = warehouse_](const std::string& name) {
      return wh->extent_version(name);
    };
  }

  for (const std::vector<Expression>& stage : strategy.stages) {
    double stage_start = Now();
    std::vector<ExpressionReport> stage_reports(stage.size());
    std::atomic<size_t> next{0};

    auto worker = [&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= stage.size()) break;
        stage_reports[i] = ExecuteExpression(warehouse_, stage[i],
                                             comp_options, nullptr);
      }
    };

    size_t num_threads =
        std::min<size_t>(static_cast<size_t>(options_.workers), stage.size());
    if (num_threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(num_threads);
      for (size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back(worker);
      }
      for (std::thread& t : threads) t.join();
    }

    double stage_seconds = Now() - stage_start;
    report.stage_seconds.push_back(stage_seconds);
    report.total_seconds += stage_seconds;
    // Stage barrier: fold each expression's thread-local counters into the
    // run totals.  Workers only ever wrote their own stage_reports slot, so
    // nothing races and no increment is dropped.
    for (ExpressionReport& er : stage_reports) {
      report.total_linear_work += er.linear_work;
      report.totals += er.stats;
      report.per_expression.push_back(std::move(er));
    }
  }

  if (options_.subplan_cache != nullptr) {
    report.subplan_cache = options_.subplan_cache->stats();
  }
  warehouse_->ResetBatch();
  return report;
}

}  // namespace wuw
