#include "exec/parallel_executor.h"

#include <chrono>

#include "common/check.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "view/comp_term.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelExecutor::ParallelExecutor(Warehouse* warehouse,
                                   ParallelExecutorOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "ParallelExecutor needs a warehouse");
  WUW_CHECK(options_.workers >= 1, "need at least one worker");
}

ParallelExecutionReport ParallelExecutor::Execute(
    const ParallelStrategy& strategy) {
  obs::TraceSpan strategy_span("exec", "parallel-strategy");
  WUW_METRIC_ADD("exec.strategies", obs::MetricClass::kWork, 1);
  // WUW_READERS: snapshot probes race the stage workers (see read_driver).
  ReaderProbeScope reader_probes(warehouse_);
  ParallelExecutionReport report;
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
  WindowBudget* budget = options_.budget;
  const bool limited = budget != nullptr && budget->limited();
  if (budget != nullptr) budget->OpenWindow();
  CompEvalOptions comp_options = MakeCompEvalOptions(
      warehouse_, options_.subplan_cache, options_.skip_empty_delta_terms,
      options_.term_workers, pool, /*plan_observer=*/nullptr,
      budget != nullptr ? budget->token() : nullptr);

  StrategyJournal* journal = nullptr;
  if (options_.journal || limited) {
    journal = &warehouse_->journal();
    journal->Begin(strategy.Linearize(), warehouse_->batch_epoch());
  }

  bool paused = false;
  int64_t stage_step_base = 0;
  for (const std::vector<Expression>& stage : strategy.stages) {
    if (limited && budget->ShouldPause()) {
      paused = true;
      break;
    }
    WUW_FAULT_POINT("parallel.stage.begin");
    obs::TraceSpan stage_span("exec", [&] {
      return "stage[" + std::to_string(stage.size()) + "]";
    });
    WUW_METRIC_ADD("exec.stages", obs::MetricClass::kWork, 1);
    WUW_METRIC_ADD("exec.steps", obs::MetricClass::kWork,
                   static_cast<int64_t>(stage.size()));
    double stage_start = Now();
    // COW-detach the stage's install targets BEFORE fanning out: a detach
    // swaps the catalog's shared_ptr slot, and a worker doing that would
    // race with sibling workers' catalog reads (source scans, stats).  On
    // this thread it is ordered before every task.  Same detach set and
    // kWork `warehouse.cow_detaches` count as detaching lazily inside
    // ExecuteExpression — every Inst target installs exactly once per
    // stage and MutableExtent is idempotent per publish.
    for (const Expression& e : stage) {
      if (e.is_inst()) warehouse_->MutableExtent(e.view);
    }
    // WUW_MEM_MB: one evicting touch over the union of the stage's extent
    // need-sets, on the coordinator thread before fan-out — workers run
    // with paged_evict=false below, so eviction decisions (and therefore
    // paged.faults/paged.evictions) never depend on WUW_THREADS.
    warehouse_->PagedTouchStage(stage);
    std::vector<ExpressionReport> stage_reports(stage.size());
    // Expressions are claimed from the shared pool (up to options_.workers
    // slots), so stage-level, term-level, and morsel-level parallelism all
    // draw from one set of threads.  Injected-fault plumbing: the first
    // dying expression stops the unclaimed rest and the barrier rethrows —
    // the whole stage-parallel run "dies" the way a one-process update
    // window would.
    try {
      pool->ParallelTasks(stage.size(), options_.workers, [&](size_t i) {
        WUW_FAULT_POINT("parallel.step.begin");
        stage_reports[i] = ExecuteExpression(
            warehouse_, stage[i], comp_options, nullptr, journal,
            stage_step_base + static_cast<int64_t>(i),
            /*paged_evict=*/false);
      });
    } catch (const WindowCancelledError&) {
      // A deadline fired mid-stage.  In-flight expressions drained at their
      // next check site before mutating anything; steps that finished are
      // journaled.  The torn stage's reports are indistinguishable from
      // abandoned slots, so none are folded — the journal is authoritative.
      WUW_METRIC_ADD("window.steps_abandoned", obs::MetricClass::kSched, 1);
      paused = true;
      break;
    }
    stage_step_base += static_cast<int64_t>(stage.size());

    double stage_seconds = Now() - stage_start;
    report.stage_seconds.push_back(stage_seconds);
    report.total_seconds += stage_seconds;
    // Stage barrier: fold each expression's thread-local counters into the
    // run totals.  Workers only ever wrote their own stage_reports slot, so
    // nothing races and no increment is dropped.
    int64_t stage_work = 0;
    for (ExpressionReport& er : stage_reports) {
      report.total_linear_work += er.linear_work;
      stage_work += er.linear_work;
      report.totals += er.stats;
      report.per_expression.push_back(std::move(er));
    }
    if (budget != nullptr) budget->ChargeWork(stage_work);
  }

  report.steps_completed = static_cast<int64_t>(report.per_expression.size());
  if (paused) {
    report.window_result = WindowResult::kPaused;
    if (budget->work_exhausted()) {
      WUW_METRIC_ADD("window.paused", obs::MetricClass::kEngine, 1);
    } else {
      WUW_METRIC_ADD("window.deadline_paused", obs::MetricClass::kSched, 1);
    }
    obs::TraceSpan pause_span("exec", "window-paused");
    // No MarkComplete, no ResetBatch: the begun-but-incomplete journal plus
    // the pending batch are the resumable handle.
  } else {
    if (journal != nullptr) journal->MarkComplete();
    warehouse_->ResetBatch();
  }
  if (options_.subplan_cache != nullptr) {
    report.subplan_cache = options_.subplan_cache->stats();
  }
  WUW_METRIC_ADD("exec.update_window_us", obs::MetricClass::kTime,
                 static_cast<int64_t>(report.total_seconds * 1e6));
  return report;
}

}  // namespace wuw
