// The strategy executor: runs a VDAG update strategy against a Warehouse,
// mutating its state and measuring the update window.
//
// The executor is the stand-in for the paper's commercial RDBMS executing
// the per-expression stored procedures: each Comp/Inst is one call, the
// wall time of the whole sequence is the update window, and the measured
// per-expression statistics let benchmarks compare against the linear work
// metric's predictions.
#ifndef WUW_EXEC_EXECUTOR_H_
#define WUW_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator_stats.h"
#include "core/strategy.h"
#include "exec/warehouse.h"
#include "exec/window_budget.h"
#include "obs/plan_observation.h"
#include "plan/subplan_cache.h"

namespace wuw {

class ThreadPool;

struct ExecutorOptions {
  /// Check C1-C8 before executing; abort on violation.
  bool validate = true;
  /// Footnote 5 extension: skip maintenance terms whose deltas are empty.
  bool skip_empty_delta_terms = false;
  /// Footnote 5 at strategy level: before running, drop the expressions
  /// that only touch views with provably empty deltas (see
  /// core/simplify.h).  Validation then uses the empty-delta closure.
  bool simplify_empty_deltas = false;
  /// Record each view's finalized (|δV|, net) in the report — used by the
  /// oracle size estimator.
  bool capture_delta_stats = false;
  /// Optional shared-subplan memo (not owned).  Null keeps the paper's
  /// eager term-at-a-time execution.  When set, maintenance terms reuse
  /// materialized intermediates across terms and expressions; keys embed
  /// the warehouse's extent versions and batch epoch, so a cache may
  /// outlive a run and be shared across clones executing C1-C8-correct
  /// strategies over the same state (see plan/subplan_cache.h).
  SubplanCache* subplan_cache = nullptr;
  /// Record each completed step's durable effect into the warehouse's
  /// StrategyJournal, making an interrupted run resumable via
  /// ResumeStrategy (exec/recovery.h).
  bool journal = false;
  /// Thread pool for morsel-parallel operator kernels (and term workers,
  /// where enabled).  Null resolves to ThreadPool::Global() — sized by
  /// WUW_THREADS — at Execute time; pass an explicit ThreadPool(1) to
  /// force fully sequential kernels regardless of the env.  Results and
  /// OperatorStats are identical at every pool size (see
  /// parallel/thread_pool.h).
  ThreadPool* pool = nullptr;
  /// EXPLAIN sink (not owned): receives each Comp expression's plan DAG
  /// with estimated vs measured per-node rows.  Forces sequential term
  /// evaluation inside EvalComp (results are identical either way); see
  /// obs/plan_observation.h.  Null records nothing.
  obs::PlanObserver* plan_observer = nullptr;
  /// Update-window budget (not owned; see exec/window_budget.h).  A
  /// limiting budget forces journaling on and makes Execute return
  /// WindowResult::kPaused when it exhausts — the warehouse's journal is
  /// then the resumable handle (ResumeStrategy, ResumeMode::kContinueInPlace
  /// finishes the run in a later window).  An unlimited budget is pure
  /// accounting and changes nothing.  Null and with WUW_WINDOW_BUDGET set,
  /// Execute instead splits the run into budget-sized windows internally
  /// and always completes.
  WindowBudget* budget = nullptr;
};

/// Measurements for one executed expression.
struct ExpressionReport {
  Expression expression;
  double seconds = 0;
  /// Run-time counterpart of the linear work metric: Σ over terms of
  /// operand sizes (Comp), or |δV| (Inst).
  int64_t linear_work = 0;
  OperatorStats stats;
};

/// Measurements for one strategy run.
struct ExecutionReport {
  double total_seconds = 0;
  int64_t total_linear_work = 0;
  /// Operator counters summed over expressions; includes the run's
  /// subplan-cache hit/miss counts.
  OperatorStats totals;
  std::vector<ExpressionReport> per_expression;
  /// view -> (|δV| abs, net); filled when capture_delta_stats is set.
  std::unordered_map<std::string, std::pair<int64_t, int64_t>> delta_stats;
  /// Snapshot of the attached SubplanCache at run end (lifetime-cumulative
  /// counters — the cache may span runs); zeros when none was attached.
  SubplanCacheStats subplan_cache;
  /// kPaused iff a limiting ExecutorOptions::budget exhausted before the
  /// last step: only the first `steps_completed` steps ran (all journaled,
  /// none half-installed), the batch is still pending, and the warehouse's
  /// StrategyJournal is the handle a later window resumes from.
  WindowResult window_result = WindowResult::kCompleted;
  /// Steps that completed (== per_expression.size()).
  int64_t steps_completed = 0;
  /// Update windows the run spanned: 1 normally, more when the
  /// WUW_WINDOW_BUDGET env knob split the run (env mode always completes).
  int64_t windows = 1;

  std::string ToString() const;
};

/// Executes one expression against the warehouse: the common kernel of
/// the sequential Executor, the stage-parallel ParallelExecutor, and the
/// recovery path.  For Inst expressions, `delta_stats` (optional) receives
/// the installed delta's (|δV|, net).  When `journal` is non-null the
/// step's durable effect is recorded under index `step` after it completes
/// (see exec/journal.h).  `paged_evict` feeds the WUW_MEM_MB touch point
/// (Warehouse::PagedTouchExpression): true on single-threaded paths
/// (sequential executor, recovery), false from the parallel executor's
/// term workers — their stage coordinator already ran the evicting touch,
/// and worker-side eviction would make paging depend on WUW_THREADS.
ExpressionReport ExecuteExpression(Warehouse* warehouse, const Expression& e,
                                   const struct CompEvalOptions& comp_options,
                                   std::pair<int64_t, int64_t>* delta_stats,
                                   StrategyJournal* journal = nullptr,
                                   int64_t step = 0, bool paged_evict = true);

/// The CompEvalOptions an executor derives from its options + warehouse:
/// shared by Executor, ParallelExecutor, and ResumeStrategy so all three
/// key subplan-cache entries identically (batch epoch + extent versions).
struct CompEvalOptions MakeCompEvalOptions(
    Warehouse* warehouse, SubplanCache* subplan_cache,
    bool skip_empty_delta_terms, int term_workers = 1,
    ThreadPool* pool = nullptr, obs::PlanObserver* plan_observer = nullptr,
    const CancelToken* cancel = nullptr);

/// Executes strategies against one warehouse.
class Executor {
 public:
  explicit Executor(Warehouse* warehouse, ExecutorOptions options = {});

  /// Runs `strategy` to completion, consuming the pending update batch.
  /// The warehouse afterwards reflects the new database state.
  ExecutionReport Execute(const Strategy& strategy);

 private:
  Warehouse* warehouse_;
  ExecutorOptions options_;
};

}  // namespace wuw

#endif  // WUW_EXEC_EXECUTOR_H_
