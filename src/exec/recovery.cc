#include "exec/recovery.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "delta/install.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "plan/aux_view.h"
#include "view/comp_term.h"

namespace wuw {

namespace {

// Replays one journaled step's durable effect onto `warehouse`.  No join
// work runs: a Comp re-accumulates the logged raw rows, an Inst re-applies
// the logged finalized delta.  Execution is deterministic, so the replayed
// effects are bit-identical to the originals.
void ReplayEntry(const JournalEntry& entry, Warehouse* warehouse) {
  const Expression& e = entry.expression;
  if (e.is_comp()) {
    Rows raw = entry.comp_raw;  // COW tuples: cheap copy
    warehouse->accumulator(e.view)->Accumulate(std::move(raw));
    return;
  }
  Table* table = warehouse->MutableExtent(e.view);
  Install(entry.installed, table, /*stats=*/nullptr);
  warehouse->NoteExtentChanged(e.view);
  if (!warehouse->vdag().IsBaseView(e.view)) {
    // The logged delta is the finalized δV the original run installed and
    // later consumers read.  Pin it: finalizing lazily from the replayed
    // raw rows would run against the post-install extent and duplicate the
    // refresh (the window C3/C8 relied on is gone once Inst(V) lands).
    warehouse->accumulator(e.view)->RestoreFinalized(entry.installed);
  }
}

}  // namespace

ResumeReport ResumeStrategy(const StrategyJournal& journal,
                            Warehouse* warehouse, ExecutorOptions options,
                            ResumeMode mode) {
  WUW_CHECK(warehouse != nullptr, "ResumeStrategy needs a warehouse");
  WUW_CHECK(journal.begun(), "cannot resume: journal has no run recorded");
  obs::TraceSpan resume_span("exec", "resume-strategy");
  // WUW_READERS: resumed windows get the same concurrent-probe coverage as
  // first windows — readers must hold the pre-window snapshot throughout.
  ReaderProbeScope reader_probes(warehouse);

  // Copy everything out of the source journal first: the caller may pass
  // warehouse->journal() itself, which re-journaling below overwrites.
  const Strategy strategy = journal.strategy();
  const std::vector<JournalEntry> done = journal.EntriesInStepOrder();
  const int64_t total_steps =
      static_cast<int64_t>(strategy.expressions().size());
  WUW_CHECK(static_cast<int64_t>(done.size()) <= total_steps,
            "journal records more steps than the strategy has");

  ResumeReport report;

  // A limiting budget makes this window pausable too, which requires the
  // re-journal as the next handle (mirrors Executor::Execute).
  WindowBudget* budget = options.budget;
  const bool limited = budget != nullptr && budget->limited();
  if (budget != nullptr) budget->OpenWindow();

  StrategyJournal* rejournal = nullptr;
  if (options.journal || limited) {
    rejournal = &warehouse->journal();
    rejournal->Begin(strategy, warehouse->batch_epoch());
  }

  // A parallel stage that tore mid-flight can leave a non-contiguous
  // completed set (step 3 journaled, step 2 torn): mark what is done and
  // fill the gaps live.  In-stage expressions are mutually non-conflicting,
  // so replaying a later sibling before live-executing an earlier one is
  // order-irrelevant; across stages the journal is always a prefix.
  std::vector<char> completed(total_steps, 0);

  // Phase 1: replay the completed steps from their logged effects (under
  // kContinueInPlace the effects are already live, so only mark them off).
  for (const JournalEntry& entry : done) {
    // A death mid-replay is recoverable like any other: replay mutated the
    // restored state, so recovery restarts from the pre-window state again.
    WUW_FAULT_POINT("recovery.replay.step");
    WUW_CHECK(entry.step >= 0 && entry.step < total_steps,
              "journal step out of strategy range");
    WUW_CHECK(completed[entry.step] == 0, "duplicate journal step");
    completed[entry.step] = 1;
    if (mode == ResumeMode::kReplayRestored) {
      ReplayEntry(entry, warehouse);
      // Re-tally replayed Comps so the advisor sees the same window an
      // uninterrupted run would have (kContinueInPlace tallied them live).
      if (entry.expression.is_comp() && warehouse->aux_views() != nullptr) {
        warehouse->aux_views()->TallyComp(
            *warehouse->vdag().definition(entry.expression.view),
            entry.expression.over);
      }
    }
    if (rejournal != nullptr) {
      JournalEntry copy = entry;
      if (entry.expression.is_inst()) {
        // The restored warehouse's version counters need not match the dead
        // run's (LoadWarehouse restarts them); re-log what is true here.
        copy.extent_version_after =
            warehouse->extent_version(entry.expression.view);
      }
      rejournal->Record(std::move(copy));
    }
  }
  report.steps_replayed = static_cast<int64_t>(done.size());
  WUW_METRIC_ADD("resume.steps_replayed", obs::MetricClass::kWork,
                 report.steps_replayed);

  // Phase 2: execute the steps the dead run never completed, in step
  // order.  The journal already holds the simplified strategy, and the
  // original run validated it, so no re-simplification or re-validation
  // here.
  CompEvalOptions comp_options = MakeCompEvalOptions(
      warehouse, options.subplan_cache, options.skip_empty_delta_terms,
      /*term_workers=*/1,
      options.pool != nullptr ? options.pool : &ThreadPool::Global(),
      /*plan_observer=*/nullptr,
      budget != nullptr ? budget->token() : nullptr);
  bool paused = false;
  for (int64_t step = 0; step < total_steps; ++step) {
    if (completed[step]) continue;
    if (limited && budget->ShouldPause() && report.steps_executed > 0) {
      // Same step-boundary pause as Executor::Execute; the >0 guard makes
      // every resumed window complete at least one missing step, so chained
      // windows always terminate.
      paused = true;
      break;
    }
    WUW_FAULT_POINT("recovery.step.begin");
    const Expression& e = strategy.expressions()[step];
    ExpressionReport er;
    try {
      er = ExecuteExpression(warehouse, e, comp_options,
                             /*delta_stats=*/nullptr, rejournal, step);
    } catch (const WindowCancelledError&) {
      // Deadline mid-step: the step abandoned before any mutation, so the
      // re-journal exactly covers the installed state.
      WUW_METRIC_ADD("window.steps_abandoned", obs::MetricClass::kSched, 1);
      paused = true;
      break;
    }
    report.execution.total_seconds += er.seconds;
    report.execution.total_linear_work += er.linear_work;
    report.execution.totals += er.stats;
    report.execution.per_expression.push_back(std::move(er));
    if (budget != nullptr) budget->ChargeWork(er.linear_work);
    ++report.steps_executed;
  }

  WUW_METRIC_ADD("resume.steps_executed", obs::MetricClass::kWork,
                 report.steps_executed);
  report.execution.steps_completed = report.steps_executed;
  report.execution.window_result =
      paused ? WindowResult::kPaused : WindowResult::kCompleted;
  if (paused) {
    report.window_result = WindowResult::kPaused;
    if (budget->work_exhausted()) {
      WUW_METRIC_ADD("window.paused", obs::MetricClass::kEngine, 1);
    } else {
      WUW_METRIC_ADD("window.deadline_paused", obs::MetricClass::kSched, 1);
    }
    obs::TraceSpan pause_span("exec", "window-paused");
    // No MarkComplete, no ResetBatch: still resumable.
    return report;
  }
  if (rejournal != nullptr) rejournal->MarkComplete();
  if (options.subplan_cache != nullptr) {
    report.execution.subplan_cache = options.subplan_cache->stats();
  }
  warehouse->ResetBatch();
  return report;
}

}  // namespace wuw
