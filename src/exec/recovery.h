// Interrupted-strategy recovery: finish an update window that died
// mid-run.
//
// Recovery model (see exec/journal.h): the pre-window warehouse state is
// durable — an in-memory Warehouse::Clone taken before the run, or an
// io/snapshot directory written by SaveWarehouse (which persists base
// extents and the pending change batch; LoadWarehouse rematerializes the
// derived views, which is exact because the pre-window state is
// consistent).  Everything the interrupted run did in place is suspect: a
// fault may have torn an extent mid-install or left δV half-accumulated.
// ResumeStrategy therefore starts from the restored pre-window state,
// replays the journaled (completed) steps from their logged effects —
// no join work is redone — and executes only the steps the run never
// completed.  The result is bit-identical to an uninterrupted run: any
// C1-C8-correct strategy still lands on the recompute ground truth
// (the kill-at-every-step property suites assert exactly this).
#ifndef WUW_EXEC_RECOVERY_H_
#define WUW_EXEC_RECOVERY_H_

#include <cstdint>

#include "exec/executor.h"
#include "exec/journal.h"
#include "exec/warehouse.h"

namespace wuw {

/// How ResumeStrategy treats the journaled (completed) steps.
enum class ResumeMode {
  /// The warehouse was restored to the pre-window state (clone or
  /// io/snapshot): replay each journaled step's logged effect, then
  /// execute the rest.  The recovery-after-a-crash mode.
  kReplayRestored,
  /// The warehouse is the live one a budget-paused run left behind: every
  /// journaled step's effect is already installed, so nothing replays —
  /// completed steps are only marked off (and re-journaled) and the
  /// missing steps execute.  The next-update-window mode: pausing never
  /// tore state (checks precede mutations), so in-place continuation is
  /// exact.
  kContinueInPlace,
};

/// Measurements for one resumed run.
struct ResumeReport {
  /// Steps replayed from journal entries (no join work redone).  Under
  /// kContinueInPlace this counts the steps marked already-done.
  int64_t steps_replayed = 0;
  /// Steps executed live to finish the strategy.
  int64_t steps_executed = 0;
  /// Report over the live-executed steps only.
  ExecutionReport execution;
  /// kPaused iff `options.budget` exhausted again before the strategy
  /// finished — the run is still resumable (a limiting budget forces
  /// re-journaling), so windows chain until one completes.
  WindowResult window_result = WindowResult::kCompleted;
};

/// Finishes the interrupted run described by `journal` on `warehouse`.
/// Under kReplayRestored the caller must have restored `warehouse` to the
/// pre-window state (a clone taken before the original Execute, or
/// LoadWarehouse of a pre-window snapshot — the pending batch must be
/// present either way); journaled steps replay from their logged effects.
/// Under kContinueInPlace `warehouse` is the paused run's live state and
/// journaled steps are simply skipped.  Missing steps execute
/// sequentially and the batch is consumed like a normal run.
/// `options.validate` is ignored (the original run already validated);
/// `options.journal` re-journals into `warehouse`, so a resumed run that
/// dies again is itself resumable.  `options.budget` bounds the resumed
/// window exactly like Executor::Execute: on exhaustion the report says
/// kPaused and the (re-)journal is the next window's handle.
ResumeReport ResumeStrategy(const StrategyJournal& journal,
                            Warehouse* warehouse,
                            ExecutorOptions options = {},
                            ResumeMode mode = ResumeMode::kReplayRestored);

}  // namespace wuw

#endif  // WUW_EXEC_RECOVERY_H_
