// Interrupted-strategy recovery: finish an update window that died
// mid-run.
//
// Recovery model (see exec/journal.h): the pre-window warehouse state is
// durable — an in-memory Warehouse::Clone taken before the run, or an
// io/snapshot directory written by SaveWarehouse (which persists base
// extents and the pending change batch; LoadWarehouse rematerializes the
// derived views, which is exact because the pre-window state is
// consistent).  Everything the interrupted run did in place is suspect: a
// fault may have torn an extent mid-install or left δV half-accumulated.
// ResumeStrategy therefore starts from the restored pre-window state,
// replays the journaled (completed) steps from their logged effects —
// no join work is redone — and executes only the steps the run never
// completed.  The result is bit-identical to an uninterrupted run: any
// C1-C8-correct strategy still lands on the recompute ground truth
// (the kill-at-every-step property suites assert exactly this).
#ifndef WUW_EXEC_RECOVERY_H_
#define WUW_EXEC_RECOVERY_H_

#include <cstdint>

#include "exec/executor.h"
#include "exec/journal.h"
#include "exec/warehouse.h"

namespace wuw {

/// Measurements for one resumed run.
struct ResumeReport {
  /// Steps replayed from journal entries (no join work redone).
  int64_t steps_replayed = 0;
  /// Steps executed live to finish the strategy.
  int64_t steps_executed = 0;
  /// Report over the live-executed steps only.
  ExecutionReport execution;
};

/// Finishes the interrupted run described by `journal` on `warehouse`,
/// which the caller must have restored to the pre-window state (a clone
/// taken before the original Execute, or LoadWarehouse of a pre-window
/// snapshot — the pending batch must be present either way).  Replays the
/// journaled steps, executes the rest sequentially, and consumes the batch
/// like a normal run.  `options.validate` is ignored (the original run
/// already validated); `options.journal` re-journals into `warehouse`, so
/// a resumed run that dies again is itself resumable.
ResumeReport ResumeStrategy(const StrategyJournal& journal,
                            Warehouse* warehouse,
                            ExecutorOptions options = {});

}  // namespace wuw

#endif  // WUW_EXEC_RECOVERY_H_
