// Strategy-execution journaling: the redo log behind interrupted-window
// recovery.
//
// A journaled executor records, after each *completed* Comp/Inst step, the
// step's durable effect: the raw delta rows a Comp accumulated, or the
// finalized delta an Inst applied to its extent.  Because a correct
// strategy is deterministic given the pre-window state, the journal plus
// that state (a Warehouse::Clone or an io/snapshot directory) is enough to
// reconstruct the exact mid-window state without re-running any join work
// — ResumeStrategy (exec/recovery.h) replays the logged effects and then
// executes only the steps the interrupted run never completed.
//
// A step is "completed" iff its entry is in the journal.  A fault anywhere
// inside a step — mid-join, mid-install, between install and the version
// bump — leaves the step unrecorded, and recovery's snapshot restore
// discards whatever partial state the torn step left behind.
#ifndef WUW_EXEC_JOURNAL_H_
#define WUW_EXEC_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/rows.h"
#include "core/strategy.h"
#include "delta/delta_relation.h"
#include "io/env.h"

namespace wuw {

/// The durable effect of one completed strategy step.
struct JournalEntry {
  /// Index of the step in the journaled strategy (a parallel run journals
  /// against its linearization, so indices are globally ordered there too).
  int64_t step = 0;
  Expression expression;
  /// Comp steps: the raw delta rows this step accumulated into δV.
  Rows comp_raw;
  /// Inst steps: the finalized delta applied to the extent — for derived
  /// views this is also δV's finalized value, restored into the
  /// accumulator on replay so later consumers see the original delta.
  DeltaRelation installed;
  /// Target view's extent version after the step (diagnostics; versions
  /// are only comparable when recovery starts from an in-memory clone).
  int64_t extent_version_after = 0;
};

/// Append-only, thread-safe journal of one strategy run.  Owned by the
/// Warehouse being updated; executors write it when ExecutorOptions
/// (or ParallelExecutorOptions) has `journal` set.
class StrategyJournal {
 public:
  /// Starts a new run: records the strategy (post-simplification — the
  /// exact expression sequence being executed) and clears prior entries.
  void Begin(const Strategy& strategy, int64_t batch_epoch);

  /// Appends the record of a completed step.
  void Record(JournalEntry entry);

  /// Marks the run as having finished every step.
  void MarkComplete();

  /// True once Begin was called (an interrupted run stays begun).
  bool begun() const;
  /// True iff the journaled run finished every step.
  bool complete() const;

  const Strategy& strategy() const;
  int64_t batch_epoch() const;

  /// Number of completed steps.
  int64_t size() const;

  bool IsStepComplete(int64_t step) const;

  /// Completed entries sorted by step index (a parallel stage may have
  /// completed steps out of order around the torn one).
  std::vector<JournalEntry> EntriesInStepOrder() const;

  void Clear();

  // -- Incremental durability ------------------------------------------------
  //
  // An attached durable sink makes the journal survive a process kill, not
  // just an in-process unwind: Begin rewrites `path` with the fsynced
  // header (and commits the dirent with a parent-directory fsync), every
  // Record appends one fsynced frame, MarkComplete appends the completion
  // marker — the on-disk file is, at every instant, a loadable prefix of
  // the run (LoadJournal's torn-tail rule absorbs a cut mid-frame).
  // Executors need no changes: the write-through rides the existing
  // Begin/Record calls.

  /// Attaches the durable sink (env null = the current io::GetEnv()).  If
  /// a run is already in flight, its current state is written out
  /// immediately.  Returns "" or the first I/O error (also latched in
  /// durable_error()).
  std::string AttachDurable(io::Env* env, std::string path);

  /// Closes the sink; the file stays on disk.
  void DetachDurable();

  /// First durable-append failure, "" while healthy.  Fail-stop: after an
  /// error the sink is closed and later records are memory-only — the
  /// on-disk journal remains a valid (shorter) prefix, which recovery
  /// handles exactly like a torn tail.
  std::string durable_error() const;

 private:
  void DurableBeginLocked();
  void DurableAppendLocked(const JournalEntry& entry);
  void DurableCompleteLocked();

  mutable std::mutex mu_;
  bool begun_ = false;
  bool complete_ = false;
  Strategy strategy_;
  int64_t batch_epoch_ = 0;
  std::vector<JournalEntry> entries_;

  io::Env* durable_env_ = nullptr;
  std::string durable_path_;
  std::unique_ptr<io::WritableFile> durable_file_;
  std::string durable_error_;
};

// ---------------------------------------------------------------------------
// On-disk durability.
//
// Layout: a header frame (magic "WUWJRNL1", format version, batch epoch,
// and the journaled strategy) followed by one frame per record — entry
// records in Record order, then an optional completion marker.  Every
// frame is [u32 length][payload][u32 crc32(payload)], little-endian
// fixed-width integers throughout, so a reader can verify each record
// independently.
//
// Torn-tail tolerance: a write that dies mid-journal leaves a truncated or
// garbage tail.  Deserialization accepts the longest valid prefix of
// records — exactly the right recovery semantics, since dropping a suffix
// of completed-step records only makes ResumeStrategy re-execute those
// steps.  Damage inside the header (without which nothing is trustworthy)
// is a hard error instead.

/// Serializes the journal (requires begun()).
std::string SerializeJournal(const StrategyJournal& journal);

/// Decodes `bytes` into `*out` (Clear + Begin + Record...).  Returns false
/// and fills *error iff the header is damaged.  Damage in the record
/// stream truncates to the longest valid record prefix and still returns
/// true, setting `*torn` (optional) when anything was dropped.
bool DeserializeJournal(const std::string& bytes, StrategyJournal* out,
                        std::string* error, bool* torn = nullptr);

/// Atomically persists the journal to `path` through the current io::Env
/// with the full crash discipline (write → fsync → rename → fsync parent
/// dir — io::AtomicWriteFile), so a crash at any instant leaves the old
/// journal or the new one, never a mix.  Returns false and fills *error on
/// I/O failure.
bool SaveJournal(const StrategyJournal& journal, const std::string& path,
                 std::string* error);

/// Reads `path` and deserializes it (same torn-tail semantics as
/// DeserializeJournal).
bool LoadJournal(const std::string& path, StrategyJournal* out,
                 std::string* error, bool* torn = nullptr);

}  // namespace wuw

#endif  // WUW_EXEC_JOURNAL_H_
