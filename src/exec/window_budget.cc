#include "exec/window_budget.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace wuw {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::ThrowCancelled() const {
  switch (why_.load(std::memory_order_relaxed)) {
    case 1:
      throw WindowCancelledError("deadline passed");
    case 2:
      throw WindowCancelledError("check countdown fired");
    default:
      throw WindowCancelledError("cancel requested");
  }
}

void CancelToken::SlowCheck() const {
  if (SlowPoll()) ThrowCancelled();
}

bool CancelToken::SlowPoll() const {
  int s = state_.load(std::memory_order_acquire);
  if (s == kDisarmed) return false;
  if (s == kCancelled) return true;
  // Armed: evaluate the countdown, then the deadline.  Racing evaluators
  // may both observe the firing condition — both report cancelled, which
  // is the intended convergent outcome.
  if (checks_left_.load(std::memory_order_relaxed) >= 0) {
    if (checks_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      why_.store(2, std::memory_order_relaxed);
      state_.store(kCancelled, std::memory_order_release);
      return true;
    }
  }
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline > 0 && NowNs() >= deadline) {
    why_.store(1, std::memory_order_relaxed);
    state_.store(kCancelled, std::memory_order_release);
    return true;
  }
  return false;
}

void CancelToken::RequestCancel() {
  why_.store(0, std::memory_order_relaxed);
  state_.store(kCancelled, std::memory_order_release);
}

void CancelToken::ArmDeadline(double seconds) {
  deadline_ns_.store(NowNs() + static_cast<int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  state_.store(kArmed, std::memory_order_release);
}

void CancelToken::CancelAfterChecks(int64_t n) {
  checks_left_.store(n, std::memory_order_relaxed);
  state_.store(kArmed, std::memory_order_release);
}

void CancelToken::Reset() {
  deadline_ns_.store(0, std::memory_order_relaxed);
  checks_left_.store(-1, std::memory_order_relaxed);
  why_.store(0, std::memory_order_relaxed);
  state_.store(kDisarmed, std::memory_order_release);
}

void WindowBudget::OpenWindow() {
  work_spent_ = 0;
  token_.Reset();
  if (options_.deadline_seconds > 0) {
    token_.ArmDeadline(options_.deadline_seconds);
  }
}

std::string ParseWindowBudgetSpec(const std::string& spec,
                                  WindowBudgetOptions* out) {
  WindowBudgetOptions parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    std::string key = clause;
    std::string value;
    size_t eq = clause.find('=');
    if (eq != std::string::npos) {
      key = clause.substr(0, eq);
      value = clause.substr(eq + 1);
    } else {
      // Bare integer shorthand for work=<N>.
      value = key;
      key = "work";
    }

    char* rest = nullptr;
    if (key == "work") {
      long long n = std::strtoll(value.c_str(), &rest, 10);
      if (value.empty() || rest == nullptr || *rest != '\0' || n < 0) {
        return "window budget spec: bad work units '" + value +
               "' (want a non-negative integer)";
      }
      parsed.work_units = n;
    } else if (key == "deadline_ms" || key == "deadline_s") {
      double v = std::strtod(value.c_str(), &rest);
      if (value.empty() || rest == nullptr || *rest != '\0' || v <= 0) {
        return "window budget spec: bad deadline '" + value +
               "' (want a positive number)";
      }
      parsed.deadline_seconds = key == "deadline_ms" ? v / 1000.0 : v;
    } else {
      return "window budget spec: unknown clause '" + clause +
             "' (want <N>, work=<N>, deadline_ms=<M>, or deadline_s=<S>)";
    }
  }
  if (!parsed.limited()) {
    return "window budget spec: no limit given (want work= and/or deadline)";
  }
  *out = parsed;
  return "";
}

const WindowBudgetOptions* EnvWindowBudget() {
  // Parsed once; the env is fixed for the process lifetime.
  static const WindowBudgetOptions* options = []() -> WindowBudgetOptions* {
    const char* env = std::getenv("WUW_WINDOW_BUDGET");
    if (env == nullptr || *env == '\0') return nullptr;
    auto* parsed = new WindowBudgetOptions;
    std::string error = ParseWindowBudgetSpec(env, parsed);
    if (!error.empty()) {
      std::fprintf(stderr, "WUW_WINDOW_BUDGET ignored: %s\n", error.c_str());
      delete parsed;
      return nullptr;
    }
    return parsed;
  }();
  return options;
}

}  // namespace wuw
