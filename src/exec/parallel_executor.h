// Stage-parallel strategy execution (Section 9, realized).
//
// A ParallelStrategy's stages contain mutually non-conflicting expressions
// (see parallel/parallel_strategy.h): within a stage no expression reads
// state another writes, so the stage's expressions genuinely run on
// worker threads.  Stages are separated by barriers.
//
// Shared state accessed concurrently: table extents (read-only within a
// stage for any reader, by construction), base deltas (read-only), and
// delta accumulators (internally locked — two Comps of one view may
// accumulate concurrently, and two parents may race to finalize a child's
// delta).
#ifndef WUW_EXEC_PARALLEL_EXECUTOR_H_
#define WUW_EXEC_PARALLEL_EXECUTOR_H_

#include <vector>

#include "exec/executor.h"
#include "parallel/parallel_strategy.h"

namespace wuw {

class ThreadPool;

/// Measurements for one stage-parallel run.
struct ParallelExecutionReport {
  double total_seconds = 0;  // wall time across all stage barriers
  int64_t total_linear_work = 0;
  /// Operator counters over the whole run.  Each expression's counters
  /// accumulate in a thread-local slot while its stage runs and merge at
  /// the stage barrier, so totals equal the sequential executor's for the
  /// same strategy (no increments are lost to racing threads).
  OperatorStats totals;
  std::vector<double> stage_seconds;
  std::vector<ExpressionReport> per_expression;  // stage order, then index
  /// Snapshot of the attached SubplanCache at run end (zeros if none).
  SubplanCacheStats subplan_cache;
  /// kPaused iff a limiting budget exhausted at a stage barrier (or a
  /// deadline tore a stage mid-flight).  Completed steps — including steps
  /// other workers finished inside a torn stage — are journaled; the batch
  /// stays pending and ResumeStrategy finishes the run.
  WindowResult window_result = WindowResult::kCompleted;
  /// Steps folded into per_expression (torn-stage completions are
  /// journaled but not reported).
  int64_t steps_completed = 0;
};

struct ParallelExecutorOptions {
  int workers = 4;
  /// Footnote 5 extension at term level (see ExecutorOptions).
  bool skip_empty_delta_terms = false;
  /// Intra-expression parallelism: worker threads per Comp for its
  /// independent maintenance terms (see CompEvalOptions::term_workers).
  /// Lets a lone dual-stage Comp(V, all-sources) — 2^n-1 terms — use the
  /// pool even when the stage has few expressions.
  int term_workers = 1;
  /// Optional shared-subplan memo (not owned); see ExecutorOptions.  The
  /// cache locks internally, so a stage's workers share it safely.
  SubplanCache* subplan_cache = nullptr;
  /// Shared thread pool for stage workers, term workers, AND the
  /// morsel-parallel kernels — one pool for all three levels, so nesting
  /// them cannot oversubscribe.  Null resolves to ThreadPool::Global()
  /// (WUW_THREADS) at Execute time.  `workers` and `term_workers` cap how
  /// many pool slots each level may claim; the pool size caps everything.
  ThreadPool* pool = nullptr;
  /// Record completed steps into the warehouse's StrategyJournal, indexed
  /// by the strategy's linearization, so ResumeStrategy can finish an
  /// interrupted staged run sequentially.  A worker that dies mid-stage
  /// stops the stage; steps other workers completed stay journaled (they
  /// are mutually non-conflicting, so replay order within the stage is
  /// irrelevant).
  bool journal = false;
  /// Update-window budget (not owned; see exec/window_budget.h).  Work
  /// budgets pause at stage barriers; a deadline additionally cancels
  /// in-flight expressions at their next check site, abandoning the stage
  /// (steps that already completed stay journaled).  A limiting budget
  /// forces journaling on.  Unlike the sequential Executor, the
  /// WUW_WINDOW_BUDGET env knob does NOT auto-split staged runs — pass an
  /// explicit budget and resume via ResumeStrategy.
  WindowBudget* budget = nullptr;
};

/// Runs staged strategies against one warehouse with a thread pool.
class ParallelExecutor {
 public:
  ParallelExecutor(Warehouse* warehouse, ParallelExecutorOptions options);

  /// Executes all stages; consumes the pending batch.  The final state
  /// equals what the sequential Executor produces for the strategy the
  /// stages were derived from.
  ParallelExecutionReport Execute(const ParallelStrategy& strategy);

 private:
  Warehouse* warehouse_;
  ParallelExecutorOptions options_;
};

}  // namespace wuw

#endif  // WUW_EXEC_PARALLEL_EXECUTOR_H_
