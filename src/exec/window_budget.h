// Enforcing the update window: work/deadline budgets and cooperative
// cancellation.
//
// The paper's premise is that maintenance must finish inside a *limited*
// update window.  A WindowBudget makes that limit a first-class, enforced
// object with two independent axes:
//
//   * a deterministic WORK budget in linear-work units (the paper's cost
//     metric, charged from each completed step's analytic work) — pauses
//     land on exact step boundaries and reproduce bit-identically across
//     runs, pool sizes, and cache budgets;
//   * an optional wall-clock DEADLINE — inherently nondeterministic, it
//     cooperatively cancels mid-step through the CancelToken below; the
//     abandoned step's read-only work is redone on resume.
//
// A CancelToken follows the fault-point discipline (fault/fault_injection.h):
// a check site on a disarmed token costs one relaxed atomic load and a
// predictable branch, so the cancellation plumbing threaded through the
// executors, the plan layer, and the morsel kernels is free in the
// paper-fidelity configuration.  A firing check throws
// WindowCancelledError; the stack unwinds to the executor's step loop,
// which — because every check site sits BEFORE the step's first mutation —
// abandons the step cleanly: the warehouse still holds only journaled,
// fully-installed steps, and in-flight sibling morsels drain through the
// thread pool's normal first-exception path.
//
// An exhausted budget makes the executor return WindowResult::kPaused; the
// warehouse's StrategyJournal is the resumable handle (ResumeStrategy with
// ResumeMode::kContinueInPlace finishes the run in a later window).  The
// invariant, mirroring fault recovery's: pause at ANY work budget + resume
// == the uninterrupted run, bit-identical (window_budget_property_test).
//
// The `WUW_WINDOW_BUDGET` env knob (see ParseWindowBudgetSpec) arms a
// budget on any bench or test binary: the sequential executor transparently
// splits each strategy into budget-sized windows and carries the paused
// run into the next one, so the whole tier-1 suite doubles as a
// pause/resume exercise.
#ifndef WUW_EXEC_WINDOW_BUDGET_H_
#define WUW_EXEC_WINDOW_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wuw {

/// How an executor's window ended.
enum class WindowResult {
  /// Every step ran; the batch was consumed.
  kCompleted,
  /// The budget exhausted first.  Completed steps are journaled; the
  /// warehouse's StrategyJournal is the resumable handle.
  kPaused,
};

/// Thrown by CancelToken::Check when cancellation fired.  Unwinds to the
/// nearest step/stage boundary, abandoning the in-flight step cleanly.
class WindowCancelledError : public std::runtime_error {
 public:
  explicit WindowCancelledError(const std::string& why)
      : std::runtime_error("window cancelled: " + why) {}
};

/// Cooperative cancellation flag, checked at step, plan-node, term, and
/// morsel boundaries.  Disarmed (default) state costs one relaxed atomic
/// load per Check — the fault-point discipline — so tokens can be threaded
/// everywhere and cost nothing until a deadline or an explicit cancel arms
/// them.
class CancelToken {
 public:
  /// Fast path: returns immediately on a disarmed token (one relaxed
  /// load).  Armed: evaluates the deadline / check countdown and throws
  /// WindowCancelledError once cancellation fires.
  void Check() const {
    if (state_.load(std::memory_order_relaxed) == kDisarmed) return;
    SlowCheck();
  }

  /// Non-throwing variant: true iff cancellation has fired (evaluating the
  /// deadline / countdown like Check).  Same disarmed fast path.
  bool Poll() const {
    if (state_.load(std::memory_order_relaxed) == kDisarmed) return false;
    return SlowPoll();
  }

  /// Cancels immediately: every subsequent Check throws, Poll returns true.
  void RequestCancel();

  /// Arms a wall-clock deadline `seconds` from now (steady clock).
  void ArmDeadline(double seconds);

  /// Test hook: fire on the (n+1)th subsequent Check/Poll (n == 0 fires on
  /// the next one).  Deterministic on a sequential execution; under a pool
  /// the firing site is scheduling-dependent, which is exactly the
  /// robustness the cancel-anywhere property tests want to explore.
  void CancelAfterChecks(int64_t n);

  /// Back to the disarmed zero-cost state.
  void Reset();

  /// True iff cancellation already fired (no deadline/countdown
  /// evaluation — a pure state read).
  bool cancelled() const {
    return state_.load(std::memory_order_acquire) == kCancelled;
  }

 private:
  enum : int { kDisarmed = 0, kArmed = 1, kCancelled = 2 };

  [[noreturn]] void ThrowCancelled() const;
  void SlowCheck() const;
  bool SlowPoll() const;

  /// kDisarmed until a deadline/countdown/cancel arms the token; writes are
  /// release so the fields below are visible to relaxed-load checkers that
  /// take the slow path.
  mutable std::atomic<int> state_{kDisarmed};
  /// Steady-clock deadline in ns since epoch; 0 = none.
  std::atomic<int64_t> deadline_ns_{0};
  /// Remaining Check/Poll calls before firing; -1 = no countdown.
  mutable std::atomic<int64_t> checks_left_{-1};
  /// Why cancellation fired: 0 explicit, 1 deadline, 2 countdown.
  mutable std::atomic<int> why_{0};
};

/// Configuration of one window's budget.
struct WindowBudgetOptions {
  /// Linear-work units the window may spend; work is charged from
  /// completed steps' analytic linear work, so the pause boundary is
  /// deterministic.  Negative = unlimited; 0 pauses before the first step.
  int64_t work_units = -1;
  /// Wall-clock deadline per window in seconds; <= 0 = none.
  double deadline_seconds = 0;

  /// True iff this budget can ever pause a run.
  bool limited() const { return work_units >= 0 || deadline_seconds > 0; }
};

/// One update window's enforcement state: deterministic work accounting
/// plus the CancelToken the deadline (or an external caller) fires
/// through.  Single-writer: only the executing thread charges work; the
/// token is the thread-safe part.
class WindowBudget {
 public:
  explicit WindowBudget(WindowBudgetOptions options = {})
      : options_(options) {}

  /// Starts a (new or carried-over) window: zeroes the work spent, resets
  /// the token, and arms the deadline if one is configured.
  void OpenWindow();

  /// Charges a completed step's linear work against the window.
  void ChargeWork(int64_t units) { work_spent_ += units; }

  int64_t work_spent() const { return work_spent_; }

  /// Deterministic axis only: has the work budget run out?
  bool work_exhausted() const {
    return options_.work_units >= 0 && work_spent_ >= options_.work_units;
  }

  /// Should the executor pause at this step boundary?  True when the work
  /// budget is exhausted or the token has fired (deadline passed /
  /// explicit cancel).
  bool ShouldPause() { return work_exhausted() || token_.Poll(); }

  /// The token to thread through cancellation check sites.
  CancelToken* token() { return &token_; }

  const WindowBudgetOptions& options() const { return options_; }
  bool limited() const { return options_.limited(); }

 private:
  WindowBudgetOptions options_;
  int64_t work_spent_ = 0;
  CancelToken token_;
};

/// Parses a WUW_WINDOW_BUDGET spec.  Grammar (';'-separated clauses):
///   <N>                 shorthand for work=<N>
///   work=<N>            work budget in linear-work units per window
///   deadline_ms=<M>     wall-clock deadline per window, milliseconds
///   deadline_s=<S>      ... in (fractional) seconds
/// Example: "2000" or "work=5000;deadline_ms=50".  Returns an empty string
/// on success, else a description of the error (user-facing input path:
/// no aborts).
std::string ParseWindowBudgetSpec(const std::string& spec,
                                  WindowBudgetOptions* out);

/// The process-wide WUW_WINDOW_BUDGET options: parsed once on first use.
/// Returns nullptr when the knob is unset; a malformed spec warns once on
/// stderr and reads as unset (benches surface the error loudly via
/// ParseWindowBudgetSpec instead).
const WindowBudgetOptions* EnvWindowBudget();

}  // namespace wuw

#endif  // WUW_EXEC_WINDOW_BUDGET_H_
