#include "exec/executor.h"

#include <chrono>
#include <set>

#include "common/check.h"
#include "core/correctness.h"
#include "core/simplify.h"
#include "delta/install.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/read_driver.h"
#include "parallel/thread_pool.h"
#include "plan/aux_view.h"
#include "view/comp_term.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string ExecutionReport::ToString() const {
  char line[256];
  std::string out;
  for (const ExpressionReport& r : per_expression) {
    std::snprintf(line, sizeof(line), "  %-50s %9.4fs  work=%lld\n",
                  r.expression.ToString().c_str(), r.seconds,
                  static_cast<long long>(r.linear_work));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  total: %.4fs  linear work=%lld\n",
                total_seconds, static_cast<long long>(total_linear_work));
  out += line;
  if (window_result == WindowResult::kPaused) {
    std::snprintf(line, sizeof(line),
                  "  PAUSED after %lld steps (window budget exhausted; "
                  "journal holds the resumable handle)\n",
                  static_cast<long long>(steps_completed));
    out += line;
  } else if (windows > 1) {
    std::snprintf(line, sizeof(line), "  split across %lld windows\n",
                  static_cast<long long>(windows));
    out += line;
  }
  if (totals.subplan_cache_hits + totals.subplan_cache_misses > 0) {
    std::snprintf(line, sizeof(line), "  subplan cache: %s\n",
                  subplan_cache.ToString().c_str());
    out += line;
  }
  return out;
}

Executor::Executor(Warehouse* warehouse, ExecutorOptions options)
    : warehouse_(warehouse), options_(options) {
  WUW_CHECK(warehouse_ != nullptr, "Executor needs a warehouse");
}

ExpressionReport ExecuteExpression(Warehouse* warehouse, const Expression& e,
                                   const CompEvalOptions& comp_options,
                                   std::pair<int64_t, int64_t>* delta_stats,
                                   StrategyJournal* journal, int64_t step,
                                   bool paged_evict) {
  const Vdag& vdag = warehouse->vdag();
  ExpressionReport er;
  er.expression = e;
  obs::TraceSpan span("exec", [&] { return e.ToString(); });
  WUW_METRIC_ADD("exec.expressions", obs::MetricClass::kWork, 1);
  // WUW_MEM_MB: fault this step's extent need-set in and (single-threaded
  // paths) hibernate over-budget extents before the step reads anything.
  // Disarmed = one pointer test.
  warehouse->PagedTouchExpression(e, paged_evict);
  double start = Now();

  // Deltas of derived views finalize lazily on first use, against the
  // view's pre-install extent (C3/C8 guarantee the window exists).
  OperatorStats* finalize_stats = &er.stats;
  DeltaProvider provider =
      [&](const std::string& name) -> const DeltaRelation* {
    if (vdag.IsBaseView(name)) return &warehouse->base_delta(name);
    return &warehouse->accumulator(name)->Finalize(
        *warehouse->catalog().MustGetTable(name), finalize_stats);
  };

  if (e.is_comp()) {
    // Stamp the expression/step onto plan observations on the way out (only
    // ExecuteExpression knows both).
    CompEvalOptions local_options = comp_options;
    obs::PlanObserver stamped;
    if (comp_options.observer != nullptr) {
      stamped.on_comp = [&](obs::CompPlanObservation o) {
        o.expression = e.ToString();
        o.step = step + 1;
        if (comp_options.observer->on_comp != nullptr) {
          comp_options.observer->on_comp(std::move(o));
        }
      };
      local_options.observer = &stamped;
    }
    CompEvalResult result =
        EvalComp(*vdag.definition(e.view), e.over, warehouse->catalog(),
                 provider, local_options, &er.stats);
    // Advisor signal: structural (term shapes only), so a journal replay of
    // this Comp re-tallies exactly what the live run did.
    if (AuxViewRegistry* aux = warehouse->aux_views()) {
      aux->TallyComp(*vdag.definition(e.view), e.over);
    }
    // A kill here loses the computed delta before δV absorbed any of it.
    WUW_FAULT_POINT("executor.comp.accumulate");
    JournalEntry entry;
    if (journal != nullptr) {
      entry.step = step;
      entry.expression = e;
      entry.comp_raw = result.raw_delta;  // COW tuples: cheap copy
    }
    warehouse->accumulator(e.view)->Accumulate(std::move(result.raw_delta));
    er.linear_work = result.linear_operand_work;
    if (journal != nullptr) {
      // A kill here leaves δV mutated but the step unrecorded; recovery
      // restores from the pre-window state, so the orphan effect is lost
      // with the rest of the torn run.
      WUW_FAULT_POINT("executor.journal.record");
      journal->Record(std::move(entry));
    }
  } else {
    // MutableExtent, not MustGetTable: with snapshot reads armed the first
    // install after a publish detaches a private copy, so pinned readers
    // keep the pre-window extent.
    Table* table = warehouse->MutableExtent(e.view);
    const DeltaRelation* delta;
    if (vdag.IsBaseView(e.view)) {
      delta = &warehouse->base_delta(e.view);
    } else {
      delta = &warehouse->accumulator(e.view)->Finalize(*table, &er.stats);
    }
    if (delta_stats != nullptr) {
      *delta_stats = {delta->AbsCardinality(), delta->NetCardinality()};
    }
    WUW_FAULT_POINT("executor.inst.install");
    Install(*delta, table, &er.stats);
    warehouse->NoteExtentChanged(e.view);
    er.linear_work = delta->AbsCardinality();
    WUW_METRIC_ADD("exec.installs", obs::MetricClass::kWork, 1);
    WUW_METRIC_ADD("exec.rows_installed", obs::MetricClass::kWork,
                   delta->AbsCardinality());
    if (journal != nullptr) {
      WUW_FAULT_POINT("executor.journal.record");
      JournalEntry entry;
      entry.step = step;
      entry.expression = e;
      entry.installed = *delta;
      entry.extent_version_after = warehouse->extent_version(e.view);
      journal->Record(std::move(entry));
    }
  }

  er.seconds = Now() - start;
  WUW_METRIC_ADD("exec.linear_work", obs::MetricClass::kWork, er.linear_work);
  // Absorb the expression's OperatorStats into the registry: this is the
  // one choke point all three execution paths (sequential, stage-parallel,
  // recovery) share, so engine.* totals always mean the same thing.
  WUW_METRIC_ADD("engine.rows_scanned", obs::MetricClass::kEngine,
                 er.stats.rows_scanned);
  WUW_METRIC_ADD("engine.rows_produced", obs::MetricClass::kEngine,
                 er.stats.rows_produced);
  WUW_METRIC_ADD("engine.hash_probes", obs::MetricClass::kEngine,
                 er.stats.hash_probes);
  WUW_METRIC_ADD("engine.hash_build_rows", obs::MetricClass::kEngine,
                 er.stats.hash_build_rows);
  WUW_METRIC_ADD("exec.expression_us", obs::MetricClass::kTime,
                 static_cast<int64_t>(er.seconds * 1e6));
  return er;
}

CompEvalOptions MakeCompEvalOptions(Warehouse* warehouse,
                                    SubplanCache* subplan_cache,
                                    bool skip_empty_delta_terms,
                                    int term_workers, ThreadPool* pool,
                                    obs::PlanObserver* plan_observer,
                                    const CancelToken* cancel) {
  CompEvalOptions comp_options;
  comp_options.skip_empty_delta_terms = skip_empty_delta_terms;
  comp_options.term_workers = term_workers;
  comp_options.pool = pool;
  comp_options.subplan_cache = subplan_cache;
  comp_options.observer = plan_observer;
  comp_options.cancel = cancel;
  if (subplan_cache != nullptr) {
    // The epoch is fixed for the whole run (deltas were set before Execute
    // and clear only at ResetBatch); extent versions advance as installs
    // land, re-keying later scans of the rewritten extents.
    comp_options.batch_epoch = warehouse->batch_epoch();
    comp_options.extent_version = [warehouse](const std::string& name) {
      return warehouse->extent_version(name);
    };
  }
  if (warehouse->aux_views() != nullptr) {
    // Aux substitution needs the same version plumbing cache keys use;
    // wire it even without a cache so stamps stay verifiable.
    comp_options.aux_bindings = warehouse->aux_views()->snapshot();
    if (comp_options.aux_bindings != nullptr &&
        comp_options.extent_version == nullptr) {
      comp_options.batch_epoch = warehouse->batch_epoch();
      comp_options.extent_version = [warehouse](const std::string& name) {
        return warehouse->extent_version(name);
      };
    }
  }
  return comp_options;
}

ExecutionReport Executor::Execute(const Strategy& strategy) {
  const Vdag& vdag = warehouse_->vdag();

  std::set<std::string> empty_views;
  Strategy simplified;
  const Strategy* to_run = &strategy;
  if (options_.simplify_empty_deltas) {
    std::set<std::string> empty_bases;
    for (const std::string& base : vdag.BaseViews()) {
      if (warehouse_->base_delta(base).empty()) empty_bases.insert(base);
    }
    empty_views = EmptyDeltaClosure(vdag, empty_bases);
    simplified = SimplifyForEmptyDeltas(strategy, empty_views);
    to_run = &simplified;
  }
  if (options_.validate) {
    CorrectnessResult r = CheckVdagStrategy(vdag, *to_run, empty_views);
    WUW_CHECK(r.ok, ("refusing to execute incorrect strategy: " + r.violation)
                        .c_str());
  }

  obs::TraceSpan strategy_span("exec", "strategy");
  WUW_METRIC_ADD("exec.strategies", obs::MetricClass::kWork, 1);
  // WUW_READERS: concurrent snapshot probes ride along for the whole run
  // (pauses and installs included), verifying readers only ever see the
  // last committed state.  Unset = empty scope.
  ReaderProbeScope reader_probes(warehouse_);
  ExecutionReport report;
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Global();

  // Budget resolution: an explicit ExecutorOptions::budget pauses and
  // returns kPaused to the caller; the WUW_WINDOW_BUDGET env knob instead
  // splits the run into budget-sized windows transparently (auto-resume),
  // so every bench and test exercises the window machinery yet always
  // completes.
  const WindowBudgetOptions* env =
      options_.budget == nullptr ? EnvWindowBudget() : nullptr;
  WindowBudget env_budget(env != nullptr ? *env : WindowBudgetOptions{});
  WindowBudget* budget = options_.budget;
  bool auto_resume = false;
  if (budget == nullptr && env != nullptr) {
    budget = &env_budget;
    auto_resume = true;
  }
  const bool limited = budget != nullptr && budget->limited();
  if (budget != nullptr) budget->OpenWindow();

  CompEvalOptions comp_options = MakeCompEvalOptions(
      warehouse_, options_.subplan_cache, options_.skip_empty_delta_terms,
      /*term_workers=*/1, pool, options_.plan_observer,
      budget != nullptr ? budget->token() : nullptr);

  StrategyJournal* journal = nullptr;
  if (options_.journal || limited) {
    // Journal the simplified strategy: that is the exact expression
    // sequence a resume must finish.  A limiting budget forces journaling
    // on — the journal is the paused run's resumable handle.
    journal = &warehouse_->journal();
    journal->Begin(*to_run, warehouse_->batch_epoch());
  }

  const auto& exprs = to_run->expressions();
  const int64_t total_steps = static_cast<int64_t>(exprs.size());
  int64_t step = 0;
  int64_t window_steps = 0;  // steps completed in the current window
  int step_cancels = 0;      // consecutive abandons of the current step
  bool paused = false;
  while (step < total_steps) {
    if (limited && budget->ShouldPause()) {
      if (!auto_resume) {
        paused = true;
        break;
      }
      // Auto-resume: carry the run into a fresh window.  When the budget
      // exhausted before this window completed a single step (a step
      // bigger than the whole window), push on anyway — the window
      // overruns rather than livelocks.
      if (window_steps > 0) {
        if (budget->work_exhausted()) {
          WUW_METRIC_ADD("window.paused", obs::MetricClass::kEngine, 1);
          WUW_METRIC_ADD("window.resumed", obs::MetricClass::kEngine, 1);
        } else {
          WUW_METRIC_ADD("window.deadline_paused", obs::MetricClass::kSched,
                         1);
          WUW_METRIC_ADD("window.deadline_resumed", obs::MetricClass::kSched,
                         1);
        }
        obs::TraceSpan carry("exec", "window-carryover");
        budget->OpenWindow();
        ++report.windows;
        window_steps = 0;
      }
    }
    WUW_FAULT_POINT("executor.step.begin");
    WUW_METRIC_ADD("exec.steps", obs::MetricClass::kWork, 1);
    const Expression& e = exprs[static_cast<size_t>(step)];
    std::pair<int64_t, int64_t> delta_stats{0, 0};
    ExpressionReport er;
    try {
      // After two consecutive mid-step cancellations (a deadline shorter
      // than the step itself), the retry runs with checks disabled so the
      // run still terminates; only auto-resume mode ever retries.
      CompEvalOptions forced;
      const CompEvalOptions* opts = &comp_options;
      if (step_cancels >= 2) {
        forced = comp_options;
        forced.cancel = nullptr;
        opts = &forced;
      }
      er = ExecuteExpression(
          warehouse_, e, *opts,
          options_.capture_delta_stats && e.is_inst() ? &delta_stats : nullptr,
          journal, step);
    } catch (const WindowCancelledError&) {
      // The step was abandoned before its first mutation (every check site
      // precedes Accumulate/Install), so the warehouse still holds exactly
      // the journaled steps.
      WUW_METRIC_ADD("window.steps_abandoned", obs::MetricClass::kSched, 1);
      if (!auto_resume) {
        paused = true;
        break;
      }
      ++step_cancels;
      WUW_METRIC_ADD("window.deadline_paused", obs::MetricClass::kSched, 1);
      WUW_METRIC_ADD("window.deadline_resumed", obs::MetricClass::kSched, 1);
      budget->OpenWindow();
      ++report.windows;
      window_steps = 0;
      continue;  // retry the same step in the fresh window
    }
    step_cancels = 0;
    if (options_.capture_delta_stats && e.is_inst()) {
      report.delta_stats[e.view] = delta_stats;
    }
    report.total_seconds += er.seconds;
    report.total_linear_work += er.linear_work;
    report.totals += er.stats;
    report.per_expression.push_back(std::move(er));
    if (budget != nullptr) budget->ChargeWork(er.linear_work);
    ++step;
    ++window_steps;
  }

  report.steps_completed = step;
  if (paused) {
    report.window_result = WindowResult::kPaused;
    if (budget->work_exhausted()) {
      WUW_METRIC_ADD("window.paused", obs::MetricClass::kEngine, 1);
    } else {
      WUW_METRIC_ADD("window.deadline_paused", obs::MetricClass::kSched, 1);
    }
    obs::TraceSpan pause_span("exec", "window-paused");
    // No MarkComplete, no ResetBatch: the journal (begun, incomplete) plus
    // the still-pending batch are what the next window resumes from.
  } else {
    if (journal != nullptr) journal->MarkComplete();
    warehouse_->ResetBatch();
  }
  if (options_.subplan_cache != nullptr) {
    report.subplan_cache = options_.subplan_cache->stats();
  }
  WUW_METRIC_ADD("exec.update_window_us", obs::MetricClass::kTime,
                 static_cast<int64_t>(report.total_seconds * 1e6));
  return report;
}

}  // namespace wuw
