#include "exec/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "fault/fault_injection.h"
#include "obs/metrics.h"

namespace wuw {

void StrategyJournal::Begin(const Strategy& strategy, int64_t batch_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  strategy_ = strategy;
  batch_epoch_ = batch_epoch;
  entries_.clear();
  begun_ = true;
  complete_ = false;
  DurableBeginLocked();
}

void StrategyJournal::Record(JournalEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal Record before Begin");
  WUW_CHECK(!complete_, "journal Record after MarkComplete");
  WUW_METRIC_ADD("journal.entries", obs::MetricClass::kWork, 1);
  entries_.push_back(std::move(entry));
  DurableAppendLocked(entries_.back());
}

void StrategyJournal::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal MarkComplete before Begin");
  complete_ = true;
  DurableCompleteLocked();
}

bool StrategyJournal::begun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begun_;
}

bool StrategyJournal::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

const Strategy& StrategyJournal::strategy() const {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal strategy() before Begin");
  return strategy_;
}

int64_t StrategyJournal::batch_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_epoch_;
}

int64_t StrategyJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

bool StrategyJournal::IsStepComplete(int64_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalEntry& e : entries_) {
    if (e.step == step) return true;
  }
  return false;
}

std::vector<JournalEntry> StrategyJournal::EntriesInStepOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEntry> out = entries_;
  std::sort(out.begin(), out.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              return a.step < b.step;
            });
  return out;
}

void StrategyJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  begun_ = false;
  complete_ = false;
  strategy_ = Strategy();
  batch_epoch_ = 0;
  entries_.clear();
  // The sink stays attached but closed: the next Begin rewrites the file.
  if (durable_file_ != nullptr) durable_file_->Close();
  durable_file_.reset();
}

// ---------------------------------------------------------------------------
// Serialization.  Little-endian fixed-width primitives; strings and
// vectors are length-prefixed; every frame carries its own CRC32.

namespace {

constexpr char kMagic[8] = {'W', 'U', 'W', 'J', 'R', 'N', 'L', '1'};
constexpr uint32_t kFormatVersion = 1;
// Record types inside framed payloads.
constexpr uint8_t kEntryRecord = 0;
constexpr uint8_t kCompleteRecord = 1;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case TypeId::kDate:
      PutI64(out, v.AsDate());
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case TypeId::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutU32(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t.values()) PutValue(out, v);
}

void PutSchema(std::string* out, const Schema& s) {
  PutU32(out, static_cast<uint32_t>(s.num_columns()));
  for (const Column& c : s.columns()) {
    PutString(out, c.name);
    PutU8(out, static_cast<uint8_t>(c.type));
  }
}

void PutRows(std::string* out, const Rows& rows) {
  PutSchema(out, rows.schema);
  PutU64(out, rows.rows.size());
  for (const auto& [tuple, count] : rows.rows) {
    PutTuple(out, tuple);
    PutI64(out, count);
  }
}

void PutDelta(std::string* out, const DeltaRelation& delta) {
  PutSchema(out, delta.schema());
  std::vector<std::pair<Tuple, int64_t>> entries;
  entries.reserve(delta.distinct_size());
  delta.ForEach(
      [&](const Tuple& t, int64_t c) { entries.emplace_back(t, c); });
  // The map iterates in hash order; sort so serialization is deterministic
  // (two saves of the same journal are byte-identical).
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutU64(out, entries.size());
  for (const auto& [tuple, count] : entries) {
    PutTuple(out, tuple);
    PutI64(out, count);
  }
}

void PutExpression(std::string* out, const Expression& e) {
  PutU8(out, static_cast<uint8_t>(e.kind));
  PutString(out, e.view);
  PutU32(out, static_cast<uint32_t>(e.over.size()));
  for (const std::string& s : e.over) PutString(out, s);
}

void PutStrategy(std::string* out, const Strategy& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  for (const Expression& e : s.expressions()) PutExpression(out, e);
}

/// Appends [u32 len][payload][u32 crc32(payload)].
void PutFrame(std::string* out, const std::string& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
}

/// Bounds-checked little-endian reader; any overrun or type mismatch
/// latches `ok = false` and every later read returns a zero value.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  explicit ByteReader(const std::string& bytes)
      : data(reinterpret_cast<const uint8_t*>(bytes.data())),
        size(bytes.size()) {}
  ByteReader(const uint8_t* d, size_t n) : data(d), size(n) {}

  size_t remaining() const { return ok ? size - pos : 0; }

  bool Need(size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos++]) << (8 * i);
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos++]) << (8 * i);
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return std::string();
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

bool GetValue(ByteReader* r, Value* out) {
  uint8_t tag = r->U8();
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      *out = Value::Null();
      break;
    case TypeId::kInt64:
      *out = Value::Int64(r->I64());
      break;
    case TypeId::kDate:
      *out = Value::Date(r->I64());
      break;
    case TypeId::kDouble: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      break;
    }
    case TypeId::kString:
      *out = Value::String(r->Str());
      break;
    default:
      r->ok = false;
  }
  return r->ok;
}

bool GetTuple(ByteReader* r, Tuple* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;  // every value is at least one byte
  std::vector<Value> values(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetValue(r, &values[i])) return false;
  }
  *out = Tuple(std::move(values));
  return true;
}

bool GetSchema(ByteReader* r, Schema* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;
  std::vector<Column> columns(n);
  for (uint32_t i = 0; i < n; ++i) {
    columns[i].name = r->Str();
    uint8_t tag = r->U8();
    if (tag > static_cast<uint8_t>(TypeId::kDate)) {
      r->ok = false;
      return false;
    }
    columns[i].type = static_cast<TypeId>(tag);
  }
  if (!r->ok) return false;
  *out = Schema(std::move(columns));
  return true;
}

bool GetRows(ByteReader* r, Rows* out) {
  Schema schema;
  if (!GetSchema(r, &schema)) return false;
  uint64_t n = r->U64();
  if (!r->Need(n)) return false;  // every row is at least one byte
  *out = Rows(std::move(schema));
  out->rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    if (!GetTuple(r, &t)) return false;
    int64_t count = r->I64();
    out->rows.emplace_back(std::move(t), count);
  }
  return r->ok;
}

bool GetDelta(ByteReader* r, DeltaRelation* out) {
  Schema schema;
  if (!GetSchema(r, &schema)) return false;
  uint64_t n = r->U64();
  if (!r->Need(n)) return false;
  *out = DeltaRelation(std::move(schema));
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    if (!GetTuple(r, &t)) return false;
    int64_t count = r->I64();
    if (!r->ok) return false;
    out->Add(t, count);
  }
  return r->ok;
}

bool GetExpression(ByteReader* r, Expression* out) {
  uint8_t kind = r->U8();
  std::string view = r->Str();
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;
  std::vector<std::string> over(n);
  for (uint32_t i = 0; i < n; ++i) over[i] = r->Str();
  if (!r->ok) return false;
  if (kind == static_cast<uint8_t>(Expression::Kind::kComp)) {
    *out = Expression::Comp(std::move(view), std::move(over));
  } else if (kind == static_cast<uint8_t>(Expression::Kind::kInst)) {
    if (!over.empty()) {
      r->ok = false;
      return false;
    }
    *out = Expression::Inst(std::move(view));
  } else {
    r->ok = false;
    return false;
  }
  return true;
}

bool GetStrategy(ByteReader* r, Strategy* out) {
  uint32_t n = r->U32();
  if (!r->Need(n)) return false;
  std::vector<Expression> exprs(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetExpression(r, &exprs[i])) return false;
  }
  *out = Strategy(std::move(exprs));
  return true;
}

bool GetEntry(ByteReader* r, JournalEntry* out) {
  out->step = r->I64();
  if (!GetExpression(r, &out->expression)) return false;
  if (!GetRows(r, &out->comp_raw)) return false;
  if (!GetDelta(r, &out->installed)) return false;
  out->extent_version_after = r->I64();
  // A valid record consumes its whole payload: trailing garbage means the
  // payload is not what this version wrote, CRC notwithstanding.
  return r->ok && r->remaining() == 0;
}

/// Reads one [len][payload][crc] frame; false on truncation or CRC
/// mismatch (the caller treats either as the torn tail).
bool GetFrame(ByteReader* r, ByteReader* payload) {
  uint32_t len = r->U32();
  if (!r->Need(len + 4u) || len + 4u < len) return false;
  const uint8_t* start = r->data + r->pos;
  r->pos += len;
  uint32_t crc = r->U32();
  if (!r->ok || Crc32(start, len) != crc) return false;
  *payload = ByteReader(start, len);
  return true;
}

/// Header frame payload: format version, batch epoch, strategy.
std::string HeaderPayload(const Strategy& strategy, int64_t batch_epoch) {
  std::string header;
  PutU32(&header, kFormatVersion);
  PutI64(&header, batch_epoch);
  PutStrategy(&header, strategy);
  return header;
}

std::string EntryPayload(const JournalEntry& entry) {
  std::string payload;
  PutU8(&payload, kEntryRecord);
  PutI64(&payload, entry.step);
  PutExpression(&payload, entry.expression);
  PutRows(&payload, entry.comp_raw);
  PutDelta(&payload, entry.installed);
  PutI64(&payload, entry.extent_version_after);
  return payload;
}

std::string CompletePayload() {
  std::string payload;
  PutU8(&payload, kCompleteRecord);
  return payload;
}

}  // namespace

std::string SerializeJournal(const StrategyJournal& journal) {
  WUW_CHECK(journal.begun(), "cannot serialize a journal with no run");
  std::string out(kMagic, sizeof(kMagic));
  PutFrame(&out, HeaderPayload(journal.strategy(), journal.batch_epoch()));
  for (const JournalEntry& entry : journal.EntriesInStepOrder()) {
    PutFrame(&out, EntryPayload(entry));
  }
  if (journal.complete()) PutFrame(&out, CompletePayload());
  return out;
}

// ---------------------------------------------------------------------------
// Incremental durable sink (see journal.h).  All three run with mu_ held.

std::string StrategyJournal::AttachDurable(io::Env* env, std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  durable_env_ = env != nullptr ? env : io::GetEnv();
  durable_path_ = std::move(path);
  durable_file_.reset();
  durable_error_.clear();
  if (begun_) DurableBeginLocked();  // re-home an in-flight run
  return durable_error_;
}

void StrategyJournal::DetachDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_file_ != nullptr) durable_file_->Close();
  durable_file_.reset();
  durable_env_ = nullptr;
  durable_path_.clear();
  durable_error_.clear();
}

std::string StrategyJournal::durable_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_error_;
}

void StrategyJournal::DurableBeginLocked() {
  if (durable_env_ == nullptr) return;
  durable_error_.clear();
  durable_file_.reset();
  std::string error = durable_env_->NewWritableFile(durable_path_,
                                                    &durable_file_);
  if (error.empty()) {
    std::string bytes(kMagic, sizeof(kMagic));
    PutFrame(&bytes, HeaderPayload(strategy_, batch_epoch_));
    // Non-empty only when AttachDurable re-homes an in-flight run.
    for (const JournalEntry& entry : entries_) {
      PutFrame(&bytes, EntryPayload(entry));
    }
    if (complete_) PutFrame(&bytes, CompletePayload());
    error = durable_file_->Append(bytes);
    if (error.empty()) error = durable_file_->Sync();
    // One parent-directory fsync commits the dirent; every later append
    // then only needs the file fsync to be crash-safe.
    if (error.empty()) {
      error = durable_env_->SyncDir(io::ParentDir(durable_path_));
    }
  }
  if (!error.empty()) {
    durable_error_ = error;
    durable_file_.reset();
  }
}

void StrategyJournal::DurableAppendLocked(const JournalEntry& entry) {
  if (durable_file_ == nullptr) return;
  WUW_FAULT_POINT("journal.durable.append");
  std::string bytes;
  PutFrame(&bytes, EntryPayload(entry));
  std::string error = durable_file_->Append(bytes);
  if (error.empty()) error = durable_file_->Sync();
  if (!error.empty()) {
    // Fail-stop: the on-disk file keeps the longest valid prefix, which
    // LoadJournal already knows how to use.
    durable_error_ = error;
    durable_file_.reset();
  }
}

void StrategyJournal::DurableCompleteLocked() {
  if (durable_file_ == nullptr) return;
  std::string bytes;
  PutFrame(&bytes, CompletePayload());
  std::string error = durable_file_->Append(bytes);
  if (error.empty()) error = durable_file_->Sync();
  if (!error.empty()) {
    durable_error_ = error;
    durable_file_.reset();
  }
}

bool DeserializeJournal(const std::string& bytes, StrategyJournal* out,
                        std::string* error, bool* torn) {
  if (torn != nullptr) *torn = false;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = "not a journal file (bad magic)";
    return false;
  }
  ByteReader r(bytes);
  r.pos = sizeof(kMagic);
  ByteReader header(nullptr, 0);
  if (!GetFrame(&r, &header)) {
    *error = "journal header truncated or corrupt";
    return false;
  }
  uint32_t version = header.U32();
  if (version != kFormatVersion) {
    *error = "unsupported journal format version " + std::to_string(version);
    return false;
  }
  int64_t batch_epoch = header.I64();
  Strategy strategy;
  if (!GetStrategy(&header, &strategy) || header.remaining() != 0) {
    *error = "journal header strategy is corrupt";
    return false;
  }
  out->Clear();
  out->Begin(strategy, batch_epoch);

  // Record stream: accept the longest valid prefix.  Any truncation, CRC
  // mismatch, or undecodable payload ends the journal there — the dropped
  // suffix only costs re-executing those steps on resume.
  const int64_t total_steps = static_cast<int64_t>(strategy.size());
  while (r.ok && r.remaining() > 0) {
    ByteReader payload(nullptr, 0);
    if (!GetFrame(&r, &payload)) {
      if (torn != nullptr) *torn = true;
      break;
    }
    uint8_t type = payload.U8();
    if (type == kEntryRecord) {
      JournalEntry entry;
      if (!GetEntry(&payload, &entry) || entry.step < 0 ||
          entry.step >= total_steps || out->IsStepComplete(entry.step)) {
        if (torn != nullptr) *torn = true;
        break;
      }
      out->Record(std::move(entry));
    } else if (type == kCompleteRecord && payload.remaining() == 0) {
      // Only an intact final marker upgrades the run to complete; bytes
      // after it are not something this version ever wrote.
      if (r.remaining() == 0) {
        out->MarkComplete();
      } else if (torn != nullptr) {
        *torn = true;
      }
      break;
    } else {
      if (torn != nullptr) *torn = true;
      break;
    }
  }
  return true;
}

bool SaveJournal(const StrategyJournal& journal, const std::string& path,
                 std::string* error) {
  return io::AtomicWriteFile(io::GetEnv(), path, SerializeJournal(journal),
                             error);
}

bool LoadJournal(const std::string& path, StrategyJournal* out,
                 std::string* error, bool* torn) {
  std::string bytes;
  *error = io::GetEnv()->ReadFileToString(path, &bytes);
  if (!error->empty()) return false;
  if (!DeserializeJournal(bytes, out, error, torn)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace wuw
