#include "exec/journal.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace wuw {

void StrategyJournal::Begin(const Strategy& strategy, int64_t batch_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  strategy_ = strategy;
  batch_epoch_ = batch_epoch;
  entries_.clear();
  begun_ = true;
  complete_ = false;
}

void StrategyJournal::Record(JournalEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal Record before Begin");
  WUW_CHECK(!complete_, "journal Record after MarkComplete");
  WUW_METRIC_ADD("journal.entries", obs::MetricClass::kWork, 1);
  entries_.push_back(std::move(entry));
}

void StrategyJournal::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal MarkComplete before Begin");
  complete_ = true;
}

bool StrategyJournal::begun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begun_;
}

bool StrategyJournal::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

const Strategy& StrategyJournal::strategy() const {
  std::lock_guard<std::mutex> lock(mu_);
  WUW_CHECK(begun_, "journal strategy() before Begin");
  return strategy_;
}

int64_t StrategyJournal::batch_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_epoch_;
}

int64_t StrategyJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

bool StrategyJournal::IsStepComplete(int64_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalEntry& e : entries_) {
    if (e.step == step) return true;
  }
  return false;
}

std::vector<JournalEntry> StrategyJournal::EntriesInStepOrder() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEntry> out = entries_;
  std::sort(out.begin(), out.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              return a.step < b.step;
            });
  return out;
}

void StrategyJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  begun_ = false;
  complete_ = false;
  strategy_ = Strategy();
  batch_epoch_ = 0;
  entries_.clear();
}

}  // namespace wuw
