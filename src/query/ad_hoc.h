// Ad-hoc OLAP queries against the warehouse.
//
// The update window exists to serve readers: "during a warehouse update
// either OLAP queries are not processed or OLAP queries compete with the
// warehouse update for resources" (Section 1).  This module is the reader
// side — one-shot SELECT statements evaluated against the current
// materialized state, through the same parser and pipeline as view
// maintenance.
#ifndef WUW_QUERY_AD_HOC_H_
#define WUW_QUERY_AD_HOC_H_

#include <string>

#include "algebra/rows.h"
#include "exec/warehouse.h"
#include "storage/read_snapshot.h"

namespace wuw {

/// Result of an ad-hoc query.
struct QueryResult {
  Rows rows;           // materialized result (multiplicities >= 1)
  std::string error;   // non-empty on failure
  double seconds = 0;  // evaluation wall time

  bool ok() const { return error.empty(); }

  /// Render as an aligned text table (header + rows), for CLIs/examples.
  std::string ToText(size_t max_rows = 50) const;
};

/// Evaluates `sql` (a SELECT over the warehouse's views — base or derived,
/// including summary tables) against current state.  Aggregate queries
/// carry the hidden __count column like materialized aggregate views.
QueryResult ExecuteQuery(const Warehouse& warehouse, const std::string& sql);

/// Snapshot-isolated evaluation: same SELECT surface, but every source is
/// read from the pinned snapshot — safe concurrent with maintenance on the
/// owning warehouse (the zero-downtime read path).  Open the handle with
/// Warehouse::OpenSnapshot().
QueryResult ExecuteQuery(const ReadSnapshot& snapshot, const std::string& sql);

}  // namespace wuw

#endif  // WUW_QUERY_AD_HOC_H_
