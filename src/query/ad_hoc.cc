#include "query/ad_hoc.h"

#include <algorithm>
#include <chrono>

#include "parser/sql_parser.h"
#include "view/recompute.h"

namespace wuw {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string QueryResult::ToText(size_t max_rows) const {
  if (!ok()) return "error: " + error;
  // Column widths from header and visible rows.
  std::vector<size_t> widths;
  for (const Column& c : rows.schema.columns()) {
    widths.push_back(c.name.size());
  }
  size_t shown = std::min(max_rows, rows.rows.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < rows.schema.num_columns(); ++c) {
      row.push_back(rows.rows[r].first.value(c).ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t c = 0; c < widths.size(); ++c) {
    out += (c ? " | " : "") + pad(rows.schema.column(c).name, widths[c]);
  }
  out += "\n";
  for (size_t c = 0; c < widths.size(); ++c) {
    out += (c ? "-+-" : "") + std::string(widths[c], '-');
  }
  out += "\n";
  for (const auto& row : cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      out += (c ? " | " : "") + pad(row[c], widths[c]);
    }
    out += "\n";
  }
  if (rows.rows.size() > shown) {
    out += "... (" + std::to_string(rows.rows.size() - shown) + " more)\n";
  }
  out += "(" + std::to_string(rows.rows.size()) + " rows)\n";
  return out;
}

namespace {

/// Shared tail of both overloads: parse against `schema_of`, evaluate
/// against `source`, sort for deterministic output.
QueryResult RunParsedQuery(
    const std::string& sql,
    const std::function<const Schema&(const std::string&)>& schema_of,
    const TableSource& source) {
  QueryResult result;
  ParsedView parsed = ParseViewDefinition("__adhoc", sql, schema_of);
  if (!parsed.ok()) {
    result.error = parsed.error;
    return result;
  }
  double start = Now();
  Table table = RecomputeView(*parsed.definition, source, nullptr);
  result.seconds = Now() - start;
  result.rows = Rows::FromTable(table);
  // Deterministic output order.
  std::sort(result.rows.rows.begin(), result.rows.rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

}  // namespace

QueryResult ExecuteQuery(const Warehouse& warehouse, const std::string& sql) {
  const Vdag& vdag = warehouse.vdag();
  for (const std::string& src : ExtractFromSources(sql)) {
    if (!vdag.HasView(src)) {
      QueryResult result;
      result.error = "unknown view: " + src;
      return result;
    }
  }
  const Catalog& catalog = warehouse.catalog();
  return RunParsedQuery(
      sql,
      [&](const std::string& name) -> const Schema& {
        return vdag.OutputSchema(name);
      },
      [&catalog](const std::string& name) -> const Table& {
        return *catalog.MustGetTable(name);
      });
}

QueryResult ExecuteQuery(const ReadSnapshot& snapshot,
                         const std::string& sql) {
  for (const std::string& src : ExtractFromSources(sql)) {
    if (!snapshot.has_table(src)) {
      QueryResult result;
      result.error = "unknown view: " + src;
      return result;
    }
  }
  return RunParsedQuery(
      sql,
      [&](const std::string& name) -> const Schema& {
        return snapshot.table(name)->schema();
      },
      [&](const std::string& name) -> const Table& {
        return *snapshot.table(name);
      });
}

}  // namespace wuw
