// Shared plumbing of the grace-partition spill paths (WUW_MEM_MB): the
// hash join and aggregation kernels partition their inputs by the TOP
// hash bits into page-backed spill streams, then process one partition at
// a time — bounding operator memory to roughly one partition plus the
// buffer pool's budget while reproducing the resident kernels' rows, row
// order, and OperatorStats bit for bit.
//
// Record streams carry (global row index, key hash, multiplicity, tuple):
// the global index lets per-partition results merge back into the exact
// sequential order (equal keys share a hash, hence a partition, so index
// sets across partitions are disjoint), and the stored hash avoids
// re-hashing on the read side.  Each operator owns a private temp page
// file + BufferPool, so spill traffic is single-threaded and the
// `paged.faults` / `paged.evictions` / `paged.spilled_partitions`
// counters are deterministic at a fixed budget regardless of WUW_THREADS.
#ifndef WUW_ALGEBRA_SPILL_UTIL_H_
#define WUW_ALGEBRA_SPILL_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/rows.h"
#include "storage/buffer_pool.h"
#include "storage/paged_store.h"

namespace wuw {
namespace spill {

/// Analytic serialized bytes of a row set (storage/page.h size model) —
/// the deterministic quantity spill decisions compare against
/// ResolvedSpillBytes.
int64_t ApproxRowsBytes(const Rows& rows);

/// One spilled row.
struct SpillRecord {
  uint32_t idx;    ///< global input-row index
  size_t hash;     ///< full key hash
  int64_t count;   ///< multiplicity
  Tuple tuple;
};

/// Append-only partitioned spill of SpillRecords through a byte-budgeted
/// BufferPool over a private temp page file (removed on destruction).
/// Usage: Append per input row, Finish once, then ReadPartition each
/// partition.  I/O failures throw std::runtime_error; the paged.io.*
/// fault sites fire inside the page reads/writes.
class PartitionedSpill {
 public:
  PartitionedSpill(const paged::PagedOptions& options, size_t partitions);
  ~PartitionedSpill() = default;

  PartitionedSpill(const PartitionedSpill&) = delete;
  PartitionedSpill& operator=(const PartitionedSpill&) = delete;

  void Append(size_t partition, uint32_t idx, size_t hash, int64_t count,
              const Tuple& tuple);

  /// Flushes partial pages and counts the non-empty partitions into
  /// `paged.spilled_partitions`.
  void Finish();

  /// Records of `partition` in append (= global input) order.
  std::vector<SpillRecord> ReadPartition(size_t partition);

  size_t partitions() const { return parts_.size(); }
  int64_t records(size_t partition) const {
    return parts_[partition].records;
  }

 private:
  struct Part {
    std::vector<int64_t> pages;
    std::string pending;
    int64_t records = 0;
  };

  /// Moves exactly `bytes` from `part.pending` into a fresh pool page.
  void FlushChunk(Part* part, size_t bytes);

  std::unique_ptr<paged::PageFile> file_;
  std::unique_ptr<paged::BufferPool> pool_;
  std::vector<Part> parts_;
  bool finished_ = false;
};

}  // namespace spill
}  // namespace wuw

#endif  // WUW_ALGEBRA_SPILL_UTIL_H_
