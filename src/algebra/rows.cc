#include "algebra/rows.h"

#include <mutex>

#include "common/check.h"
#include "obs/metrics.h"
#include "storage/column_table.h"

namespace wuw {

/// Lazily-filled columnar mirror, shared between copies of a Rows value.
/// The mutex serializes the one-time build; readers that arrive later take
/// it briefly and return the shared table.
struct Rows::ColumnarSlot {
  std::mutex mu;
  std::shared_ptr<const ColumnTable> table;
  /// Set when conversion failed (type-violating cell): don't retry.
  bool failed = false;
};

Rows::Rows() : columnar_(std::make_shared<ColumnarSlot>()) {}

Rows::Rows(Schema s)
    : schema(std::move(s)), columnar_(std::make_shared<ColumnarSlot>()) {}

Rows::~Rows() = default;

Rows::Rows(const Rows& other)
    : schema(other.schema),
      rows(other.rows),
      columnar_(other.columnar_),
      columnar_stale_(other.columnar_stale_),
      signed_card_(other.signed_card_.load(std::memory_order_relaxed)),
      abs_card_(other.abs_card_.load(std::memory_order_relaxed)) {}

Rows::Rows(Rows&& other) noexcept
    : schema(std::move(other.schema)),
      rows(std::move(other.rows)),
      columnar_(std::move(other.columnar_)),
      columnar_stale_(other.columnar_stale_),
      signed_card_(other.signed_card_.load(std::memory_order_relaxed)),
      abs_card_(other.abs_card_.load(std::memory_order_relaxed)) {
  other.columnar_ = std::make_shared<ColumnarSlot>();
  other.columnar_stale_ = false;
  other.signed_card_.store(kCardUnset, std::memory_order_relaxed);
  other.abs_card_.store(kCardUnset, std::memory_order_relaxed);
}

Rows& Rows::operator=(const Rows& other) {
  if (this == &other) return *this;
  schema = other.schema;
  rows = other.rows;
  columnar_ = other.columnar_;
  columnar_stale_ = other.columnar_stale_;
  signed_card_.store(other.signed_card_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  abs_card_.store(other.abs_card_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  return *this;
}

Rows& Rows::operator=(Rows&& other) noexcept {
  if (this == &other) return *this;
  schema = std::move(other.schema);
  rows = std::move(other.rows);
  columnar_ = std::move(other.columnar_);
  columnar_stale_ = other.columnar_stale_;
  signed_card_.store(other.signed_card_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  abs_card_.store(other.abs_card_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  other.columnar_ = std::make_shared<ColumnarSlot>();
  other.columnar_stale_ = false;
  other.signed_card_.store(kCardUnset, std::memory_order_relaxed);
  other.abs_card_.store(kCardUnset, std::memory_order_relaxed);
  return *this;
}

namespace {

int64_t RecomputeSigned(const std::vector<std::pair<Tuple, int64_t>>& rows) {
  int64_t n = 0;
  for (const auto& [t, c] : rows) n += c;
  return n;
}

int64_t RecomputeAbs(const std::vector<std::pair<Tuple, int64_t>>& rows) {
  int64_t n = 0;
  for (const auto& [t, c] : rows) n += std::llabs(c);
  return n;
}

}  // namespace

int64_t Rows::SignedCardinality() const {
  int64_t cached = signed_card_.load(std::memory_order_relaxed);
  if (cached == kCardUnset) {
    cached = RecomputeSigned(rows);
    signed_card_.store(cached, std::memory_order_relaxed);
  }
#ifndef NDEBUG
  WUW_CHECK(cached == RecomputeSigned(rows),
            "Rows signed cardinality cache is stale "
            "(rows mutated behind Add/SetCachedCardinalities?)");
#endif
  return cached;
}

int64_t Rows::AbsCardinality() const {
  int64_t cached = abs_card_.load(std::memory_order_relaxed);
  if (cached == kCardUnset) {
    cached = RecomputeAbs(rows);
    abs_card_.store(cached, std::memory_order_relaxed);
  }
#ifndef NDEBUG
  WUW_CHECK(cached == RecomputeAbs(rows),
            "Rows abs cardinality cache is stale "
            "(rows mutated behind Add/SetCachedCardinalities?)");
#endif
  return cached;
}

void Rows::SetCachedCardinalities(int64_t signed_card, int64_t abs_card) const {
  signed_card_.store(signed_card, std::memory_order_relaxed);
  abs_card_.store(abs_card, std::memory_order_relaxed);
#ifndef NDEBUG
  WUW_CHECK(signed_card == RecomputeSigned(rows),
            "SetCachedCardinalities: wrong signed cardinality");
  WUW_CHECK(abs_card == RecomputeAbs(rows),
            "SetCachedCardinalities: wrong abs cardinality");
#endif
}

Rows Rows::FromTable(const Table& table) {
  Rows out(table.schema());
  out.rows.reserve(table.distinct_size());
  table.ForEach([&](const Tuple& t, int64_t c) {
    out.rows.emplace_back(t, c);
  });
  // Table multiplicities are strictly positive, so both cardinalities equal
  // |V| — and the table's cached columnar snapshot transfers as-is.
  out.SetCachedCardinalities(table.cardinality(), table.cardinality());
  std::shared_ptr<const ColumnTable> snapshot = table.ColumnarSnapshot();
  if (snapshot != nullptr) out.AttachColumnar(std::move(snapshot));
  return out;
}

std::shared_ptr<Rows::ColumnarSlot> Rows::FreshSlot() const {
  // Resolve staleness into a fresh slot so copies sharing the old one keep
  // their (still valid for them) cached table; the swap is guarded so
  // concurrent callers on a shared batch agree on one slot.
  std::lock_guard<std::mutex> swap_lock(columnar_mu_);
  if (columnar_stale_) {
    columnar_ = std::make_shared<ColumnarSlot>();
    columnar_stale_ = false;
  }
  return columnar_;
}

std::shared_ptr<const ColumnTable> Rows::Columnar() const {
  std::shared_ptr<ColumnarSlot> slot = FreshSlot();
  std::lock_guard<std::mutex> lock(slot->mu);
  if (slot->table != nullptr && slot->table->num_rows() == rows.size()) {
    return slot->table;
  }
  if (slot->failed && slot->table == nullptr) return nullptr;
  slot->table = ColumnTable::FromRows(schema, rows);
  slot->failed = slot->table == nullptr;
  return slot->table;
}

void Rows::AttachColumnar(std::shared_ptr<const ColumnTable> table) const {
  if (table != nullptr) {
    WUW_CHECK(table->num_rows() == rows.size(),
              "attached columnar mirror disagrees with row count");
  }
  std::shared_ptr<ColumnarSlot> slot = FreshSlot();
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->table = std::move(table);
  slot->failed = false;
}

}  // namespace wuw
